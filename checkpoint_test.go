package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dynsched/internal/sim"
)

// runWithCheckpoints compiles the scenario and runs it with a
// checkpoint sink capturing every checkpoint the engine emits.
func runWithCheckpoints(t *testing.T, sc Scenario, every int64) (*SimResult, []*sim.Checkpoint) {
	t.Helper()
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !sim.SupportsCheckpoint(c.Model, c.Process, c.Protocol) {
		t.Fatalf("scenario %q components do not support checkpointing", sc.Name)
	}
	var cps []*sim.Checkpoint
	c.Config.Checkpoint = &sim.CheckpointSpec{Every: every, Sink: func(cp *sim.Checkpoint) error {
		cps = append(cps, cp)
		return nil
	}}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res, cps
}

func resumeFrom(t *testing.T, sc Scenario, cp *sim.Checkpoint) *SimResult {
	t.Helper()
	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	c.Config.Checkpoint = &sim.CheckpointSpec{Resume: cp}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func resultJSON(t *testing.T, r *SimResult) []byte {
	t.Helper()
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCheckpointResumeBitIdentical is the durability tier's core
// invariant: a run resumed from any mid-run checkpoint produces a
// final result byte-identical to the uninterrupted run — across
// stochastic, adversarial, lossy, and trace-replay traffic.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	cases := []struct {
		name  string
		slots int64
		every int64
	}{
		{"line-stochastic", 6_000, 1_500},
		{"mac-adversarial", 6_000, 1_500},
		{"lossy-line", 6_000, 1_500},
		{"trace-replay", 2_000, 500},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := ScenarioByName(tc.name)
			if !ok {
				t.Fatalf("scenario %q not registered", tc.name)
			}
			sc.Sim.Slots = tc.slots

			c, err := sc.Compile()
			if err != nil {
				t.Fatal(err)
			}
			baseline, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want := resultJSON(t, baseline)

			withCk, cps := runWithCheckpoints(t, sc, tc.every)
			if got := resultJSON(t, withCk); !bytes.Equal(got, want) {
				t.Fatalf("checkpoint capture perturbed the run:\n got %s\nwant %s", got, want)
			}
			if len(cps) == 0 {
				t.Fatalf("no checkpoints captured over %d slots at every=%d", tc.slots, tc.every)
			}

			for _, cp := range cps {
				res := resumeFrom(t, sc, cp)
				if got := resultJSON(t, res); !bytes.Equal(got, want) {
					t.Fatalf("resume from slot %d diverged:\n got %s\nwant %s", cp.Slot, got, want)
				}
			}
		})
	}
}

// TestCheckpointRoundTripsJSON pins that a checkpoint survives the
// serialize→deserialize cycle the durable tier uses for on-disk
// checkpoint files.
func TestCheckpointRoundTripsJSON(t *testing.T) {
	sc, ok := ScenarioByName("line-stochastic")
	if !ok {
		t.Fatal("line-stochastic not registered")
	}
	sc.Sim.Slots = 4_000

	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := resultJSON(t, baseline)

	_, cps := runWithCheckpoints(t, sc, 1_000)
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}
	data, err := json.Marshal(cps[len(cps)-1])
	if err != nil {
		t.Fatal(err)
	}
	var cp sim.Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		t.Fatal(err)
	}
	res := resumeFrom(t, sc, &cp)
	if got := resultJSON(t, res); !bytes.Equal(got, want) {
		t.Fatalf("resume from round-tripped checkpoint diverged:\n got %s\nwant %s", got, want)
	}
}

// TestCheckpointResumeRejectsMismatch pins the guard rails: a
// checkpoint only resumes the run that produced it.
func TestCheckpointResumeRejectsMismatch(t *testing.T) {
	sc, ok := ScenarioByName("line-stochastic")
	if !ok {
		t.Fatal("line-stochastic not registered")
	}
	sc.Sim.Slots = 4_000
	_, cps := runWithCheckpoints(t, sc, 1_000)
	if len(cps) == 0 {
		t.Fatal("no checkpoints captured")
	}
	cp := cps[0]

	t.Run("wrong seed", func(t *testing.T) {
		bad := sc
		bad.Sim.Seed = sc.Sim.Seed + 1
		c, err := bad.Compile()
		if err != nil {
			t.Fatal(err)
		}
		c.Config.Checkpoint = &sim.CheckpointSpec{Resume: cp}
		if _, err := c.Run(context.Background()); err == nil {
			t.Fatal("resume with mismatched seed succeeded")
		}
	})
	t.Run("slot beyond horizon", func(t *testing.T) {
		c, err := sc.Compile()
		if err != nil {
			t.Fatal(err)
		}
		short := *cp
		short.Slot = sc.Sim.Slots + 1
		c.Config.Checkpoint = &sim.CheckpointSpec{Resume: &short}
		if _, err := c.Run(context.Background()); err == nil {
			t.Fatal("resume beyond the horizon succeeded")
		}
	})
}
