package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
)

// TestScenariosBitIdenticalAcrossResolveWorkers runs every registered
// scenario at intra-slot resolution worker counts {1, 2, 4, GOMAXPROCS}
// and requires byte-identical full-Result JSON against the serial run.
// This pins the tentpole contract of the parallel resolvers: worker
// count is an execution knob, never an experiment parameter — each
// link's interference sum keeps its exact serial accumulation order at
// every worker count and every chunking.
func TestScenariosBitIdenticalAcrossResolveWorkers(t *testing.T) {
	const quickSlots = 2000
	counts := []int{2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if s.Network.Links > 4096 {
				t.Skipf("skipping %d-link scale scenario in quick tests", s.Network.Links)
			}
			s.Sim.Slots = quickSlots

			serial := s
			serial.Sim.ResolveParallelism = 1
			want, err := serial.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			wantJSON, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range counts {
				par := s
				par.Sim.ResolveParallelism = workers
				if par.Hash() != serial.Hash() {
					t.Fatalf("ResolveParallelism=%d changed the scenario hash", workers)
				}
				got, err := par.Run(context.Background())
				if err != nil {
					t.Fatal(err)
				}
				gotJSON, err := json.Marshal(got)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(gotJSON, wantJSON) {
					t.Errorf("workers=%d diverged from serial\nparallel: %s\nserial:   %s",
						workers, gotJSON, wantJSON)
				}
			}
		})
	}
}
