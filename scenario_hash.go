package dynsched

// Canonical scenario fingerprints. A running service needs a stable
// content address for "the same experiment": two submissions of one
// spec — however they were built (struct literal, options, or JSON in
// any formatting) — must map to the same cache key. CanonicalJSON
// defines that form and Hash condenses it; internal/server keys its
// result cache on it.

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// CanonicalJSON renders the scenario in canonical form: object keys
// sorted, no insignificant whitespace, and numbers kept as the shortest
// JSON literals of the standard encoder (so re-encoding never drifts a
// float). Equal specs produce byte-identical canonical documents
// regardless of construction order or source formatting. Fields that
// cannot affect results are excluded: Observers are code, not data (as
// in EncodeJSON), and Sim.Parallel and Sim.ResolveParallelism are
// execution knobs — serial and parallel runs are pinned bit-identical,
// so they are the same experiment and must share a content address.
func (s Scenario) CanonicalJSON() ([]byte, error) {
	s.Observers = nil
	s.Sim.Parallel = 0
	s.Sim.ResolveParallelism = 0
	raw, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("dynsched: canonicalising scenario %q: %w", s.Name, err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber() // keep the number literals verbatim: no float drift
	var doc any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("dynsched: canonicalising scenario %q: %w", s.Name, err)
	}
	var buf bytes.Buffer
	if err := writeCanonical(&buf, doc); err != nil {
		return nil, fmt.Errorf("dynsched: canonicalising scenario %q: %w", s.Name, err)
	}
	return buf.Bytes(), nil
}

// writeCanonical re-encodes a decoded JSON document with sorted object
// keys and no whitespace, passing number literals through untouched.
func writeCanonical(buf *bytes.Buffer, v any) error {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf.WriteByte('{')
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(k)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeCanonical(buf, x[k]); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case []any:
		buf.WriteByte('[')
		for i, e := range x {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeCanonical(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	case json.Number:
		buf.WriteString(string(x))
	default: // string, bool, nil
		b, err := json.Marshal(x)
		if err != nil {
			return err
		}
		buf.Write(b)
	}
	return nil
}

// Hash returns the scenario's canonical fingerprint: the hex SHA-256 of
// CanonicalJSON. It is the content address of the experiment — name,
// network, model, traffic, protocol, simulation parameters (seed
// included) and sweep all contribute — and the cache key dynschedd
// serves identical submissions from. Hash panics only if the spec
// cannot be marshaled, which cannot happen for Scenario's field types
// once Validate has accepted the spec (NaN and ±Inf rates are
// rejected there).
func (s Scenario) Hash() string {
	doc, err := s.CanonicalJSON()
	if err != nil {
		panic(err)
	}
	sum := sha256.Sum256(doc)
	return hex.EncodeToString(sum[:])
}
