package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
)

// This file pins the tentpole's headline guarantee: the precomputed
// cross-gain tables and the zero-allocation packet lifecycle changed
// the engine's speed, not its output. Every registered scenario is run
// twice at Quick scale — once on the optimized path (gain tables,
// reusable resolvers, packet arena) and once against a reference model
// that hides every fast-path extension and re-derives each SINR
// quantity with the pre-table inline math.Pow formulas — and the full
// Result JSON must be byte-identical.

// preTableModel hides a model's fast-path extensions (RowsProvider,
// SlotResolver), forcing the engine onto the allocating Successes path,
// exactly like the weightOnlyModel shim the benchmarks use.
type preTableModel struct{ m Model }

func (w preTableModel) Name() string              { return w.m.Name() + "-pretable" }
func (w preTableModel) NumLinks() int             { return w.m.NumLinks() }
func (w preTableModel) Weight(e, e2 int) float64  { return w.m.Weight(e, e2) }
func (w preTableModel) Successes(tx []int) []bool { return w.m.Successes(tx) }

// preTableFixedPower re-derives the exact SINR test of the fixed-power
// model with the pre-table formulas: per-pair math.Pow path loss, the
// d == 0 short-circuit, and the per-call ok map.
type preTableFixedPower struct {
	preTableModel
	fp *sinr.FixedPower
}

func (w preTableFixedPower) Successes(tx []int) []bool {
	m := w.fp
	g, prm := m.Graph(), m.Params()
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, g.NumLinks())
	for _, e := range tx {
		counts[e]++
	}
	uniq := make([]int, 0, len(tx))
	for e, c := range counts {
		if c > 0 {
			uniq = append(uniq, e)
		}
	}
	ok := make(map[int]bool, len(uniq))
	for _, e := range uniq {
		if counts[e] != 1 {
			continue
		}
		interf := prm.Noise
		recv := g.Link(netgraph.LinkID(e)).To
		for _, e2 := range uniq {
			if e2 == e {
				continue
			}
			d := g.NodeDist(g.Link(netgraph.LinkID(e2)).From, recv)
			if d == 0 {
				interf = math.Inf(1)
				break
			}
			interf += m.Power(e2) / math.Pow(d, prm.Alpha)
		}
		signal := m.Power(e) / math.Pow(m.LinkLen(e), prm.Alpha)
		ok[e] = signal >= prm.Beta*interf
	}
	for i, e := range tx {
		out[i] = counts[e] == 1 && ok[e]
	}
	return out
}

// preTablePowerControl re-derives the power-control feasibility test
// with the pre-table formulas: fresh gain matrices built from math.Pow
// per call, the same fixed-point iteration bounds the model uses
// (maxIter 200, power cap 1e18), and allocation-heavy shedding.
type preTablePowerControl struct {
	preTableModel
	pc *sinr.PowerControl
}

func (w preTablePowerControl) solvable(set []int) bool {
	m := w.pc
	g := m.Graph()
	k := len(set)
	if k == 0 {
		return true
	}
	const (
		maxIter  = 200
		powerCap = 1e18
	)
	prm := m.Params()
	alpha, beta, nu := prm.Alpha, prm.Beta, prm.Noise
	gain := make([][]float64, k)
	noiseTerm := make([]float64, k)
	for i := 0; i < k; i++ {
		gain[i] = make([]float64, k)
		li := netgraph.LinkID(set[i])
		noiseTerm[i] = nu * math.Pow(m.LinkLen(set[i]), alpha)
		recv := g.Link(li).To
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			d := g.NodeDist(g.Link(netgraph.LinkID(set[j])).From, recv)
			if d == 0 {
				return false
			}
			gain[i][j] = math.Pow(m.LinkLen(set[i]), alpha) / math.Pow(d, alpha)
		}
	}
	p := make([]float64, k)
	next := make([]float64, k)
	for it := 0; it < maxIter; it++ {
		maxRel := 0.0
		for i := 0; i < k; i++ {
			s := noiseTerm[i]
			for j := 0; j < k; j++ {
				s += gain[i][j] * p[j]
			}
			next[i] = beta * s
			if next[i] > powerCap {
				return false
			}
			den := math.Max(next[i], 1e-300)
			rel := math.Abs(next[i]-p[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
		}
		p, next = next, p
		if maxRel < 1e-9 {
			return true
		}
	}
	return false
}

func (w preTablePowerControl) Successes(tx []int) []bool {
	m := w.pc
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, m.NumLinks())
	for _, e := range tx {
		counts[e]++
	}
	var set []int
	for e, c := range counts {
		if c == 1 {
			set = append(set, e)
		}
	}
	served := make(map[int]bool, len(set))
	for len(set) > 0 {
		if w.solvable(set) {
			for _, e := range set {
				served[e] = true
			}
			break
		}
		worst, worstVal := 0, -1.0
		for i, e := range set {
			sum := 0.0
			for _, e2 := range set {
				if e2 != e {
					sum += math.Max(m.Weight(e, e2), m.Weight(e2, e))
				}
			}
			if sum > worstVal {
				worst, worstVal = i, sum
			}
		}
		rest := make([]int, 0, len(set)-1)
		rest = append(rest, set[:worst]...)
		rest = append(rest, set[worst+1:]...)
		set = rest
	}
	for i, e := range tx {
		out[i] = counts[e] == 1 && served[e]
	}
	return out
}

// preTable wraps a compiled model in its reference counterpart,
// descending through Lossy wrappers (the loss RNG instance is shared,
// and both runs consume it in the same order).
func preTable(m Model) Model {
	switch v := m.(type) {
	case *sinr.FixedPower:
		return preTableFixedPower{preTableModel{v}, v}
	case *sinr.PowerControl:
		return preTablePowerControl{preTableModel{v}, v}
	case *Lossy:
		return &interference.Lossy{Inner: preTable(v.Inner), P: v.P, Rand: v.Rand}
	default:
		return preTableModel{m}
	}
}

// ---- Planner bit-identity (PR 5) ----
//
// The unified execution planner rewired Scenario.Run, Replicate and
// RunSweep into plan decomposition + pooled unit execution. These
// property tests pin the refactor's headline guarantee over every
// registered scenario: the full Result JSON of each entry point is
// byte-identical to what the pre-planner code paths produce.

// prePlannerRun is the pre-planner Scenario.Run: compile, then drive
// the engine directly.
func prePlannerRun(s Scenario) (*SimResult, error) {
	c, err := s.Compile()
	if err != nil {
		return nil, err
	}
	return c.Run(context.Background())
}

// prePlannerReplicate is the pre-planner Scenario.Replicate: the
// sim.Replicate worker pool over a per-replication build closure.
func prePlannerReplicate(s Scenario, reps int) (*ReplicateResult, error) {
	return sim.Replicate(context.Background(), s.simConfig(), reps, func(rep int, seed int64) (sim.RunInput, error) {
		sc := s
		sc.Sim.Seed = seed
		c, err := sc.Compile()
		if err != nil {
			return sim.RunInput{}, err
		}
		return sim.RunInput{Model: c.Model, Process: c.Process, Protocol: c.Protocol, Observers: c.Observers}, nil
	})
}

// prePlannerSweep is the pre-planner Scenario.RunSweep: a strictly
// serial loop applying each value to the axis.
func prePlannerSweep(s Scenario) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(s.Sweep.Values))
	for _, v := range s.Sweep.Values {
		sc := s
		sc.Sweep = SweepSpec{}
		switch s.Sweep.Axis {
		case "lambda":
			sc.Traffic.Lambda = v
		case "eps":
			sc.Protocol.Eps = v
		case "loss":
			sc.Model.Loss = v
		}
		res, err := prePlannerRun(sc)
		if err != nil {
			return out, err
		}
		out = append(out, SweepPoint{Axis: s.Sweep.Axis, Value: v, Result: res})
	}
	return out, nil
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestScenariosBitIdenticalToPrePlannerPaths runs every registered
// scenario through the planner-backed Run/Replicate/RunSweep and
// through the pre-planner reference implementations, requiring
// byte-identical full-Result JSON for each.
func TestScenariosBitIdenticalToPrePlannerPaths(t *testing.T) {
	const quickSlots = 3000
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			if s.Network.Links > 4096 {
				// Scale scenarios: planner equivalence is exercised at CI
				// size by sinr-grid-4k; the 10⁵/10⁶ entries are benchmark
				// and local-run targets (see scale_test.go).
				t.Skipf("skipping %d-link scale scenario in quick tests", s.Network.Links)
			}
			s.Sim.Slots = quickSlots

			got, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			want, err := prePlannerRun(s)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := mustJSON(t, got), mustJSON(t, want); !bytes.Equal(a, b) {
				t.Errorf("Run diverged from pre-planner path\nplanner: %s\nref:     %s", a, b)
			}

			const reps = 3
			gotRep, err := s.Replicate(context.Background(), reps)
			if err != nil {
				t.Fatal(err)
			}
			wantRep, err := prePlannerReplicate(s, reps)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := mustJSON(t, gotRep), mustJSON(t, wantRep); !bytes.Equal(a, b) {
				t.Errorf("Replicate diverged from pre-planner path\nplanner: %s\nref:     %s", a, b)
			}

			// Sweep the scenario's own injection rate: two points around
			// the registered λ exercise distinct resolved units.
			sw := s
			sw.Sweep = SweepSpec{Axis: "lambda", Values: []float64{s.Traffic.Lambda, s.Traffic.Lambda / 2}}
			gotPts, err := sw.RunSweep(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			wantPts, err := prePlannerSweep(sw)
			if err != nil {
				t.Fatal(err)
			}
			if a, b := mustJSON(t, gotPts), mustJSON(t, wantPts); !bytes.Equal(a, b) {
				t.Errorf("RunSweep diverged from pre-planner path\nplanner: %s\nref:     %s", a, b)
			}
		})
	}
}

// TestScenariosBitIdenticalToPreTablePath runs every registered
// scenario on the optimized path and on the pre-table reference path
// and requires byte-identical Result JSON.
func TestScenariosBitIdenticalToPreTablePath(t *testing.T) {
	const quickSlots = 4000
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			if s.Model.FarFloor > 0 {
				// An ε > 0 indexed backing is envelope-bound, not
				// bit-identical to the exact reference; its ε = 0 twin is
				// pinned bit-identical by TestScenariosIndexedBitIdentity
				// and its soundness by TestScenariosFarFloorSound.
				t.Skipf("skipping ε=%v indexed scenario on the exact-reference comparison", s.Model.FarFloor)
			}
			if s.Network.Links > 2048 {
				t.Skipf("skipping %d-link scale scenario in quick tests", s.Network.Links)
			}
			s.Sim.Slots = quickSlots
			fast, err := s.Compile()
			if err != nil {
				t.Fatal(err)
			}
			fastRes, err := fast.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			ref, err := s.Compile()
			if err != nil {
				t.Fatal(err)
			}
			refRes, err := SimulateContext(context.Background(), ref.Config, preTable(ref.Model), ref.Process, ref.Protocol, ref.Observers...)
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(fastRes)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(refRes)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("results diverge between gain-table and pre-table paths\nfast: %s\nref:  %s", a, b)
			}
		})
	}
}
