//go:build !race

package dynsched

const raceEnabled = false
