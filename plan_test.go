package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"dynsched/internal/sim"
)

// planScenario is the fast planner test workload.
func planScenario(name string) Scenario {
	return NewScenario(name,
		WithModel("identity"), WithTopology("line"), WithNodes(6), WithHops(5),
		WithLambda(0.4), WithAlgorithm("full-parallel"),
		WithSlots(1_500), WithSeed(1))
}

func TestPlanDecomposition(t *testing.T) {
	base := planScenario("decomp")

	// Single run: one unit, resolved to the scenario itself.
	p, err := base.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanRun || len(p.Units) != 1 {
		t.Fatalf("run plan: %+v", p)
	}
	if p.Units[0].Hash != base.Hash() {
		t.Fatal("single-run unit hash differs from the scenario hash")
	}

	// Replicate: unit r carries the derived sub-seed, so a replication
	// unit and a direct run at that seed share a content address.
	p, err = base.Plan(4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanReplicate || len(p.Units) != 4 {
		t.Fatalf("replicate plan: %+v", p)
	}
	for r, u := range p.Units {
		if u.Rep != r || u.Scenario.Sim.Seed != sim.SubSeed(base.Sim.Seed, r) {
			t.Fatalf("unit %d: %+v", r, u)
		}
		direct := base
		direct.Sim.Seed = sim.SubSeed(base.Sim.Seed, r)
		if u.Hash != direct.Hash() {
			t.Fatalf("replication unit %d hash differs from a direct run at its seed", r)
		}
	}

	// 1-D sweep: value order, resolved axis, sweep cleared.
	sw := base
	sw.Sweep = SweepSpec{Axis: "lambda", Values: []float64{0.1, 0.2, 0.3}}
	p, err = sw.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanSweep || len(p.Units) != 3 {
		t.Fatalf("sweep plan: %+v", p)
	}
	for i, u := range p.Units {
		if u.Scenario.Traffic.Lambda != sw.Sweep.Values[i] || u.Scenario.Sweep.Axis != "" {
			t.Fatalf("sweep unit %d: %+v", i, u.Scenario)
		}
	}

	// Grid: cross product in row-major order, last axis fastest.
	grid := base
	grid.Sweep = SweepSpec{Axes: []SweepAxis{
		{Axis: "lambda", Values: []float64{0.1, 0.2}},
		{Axis: "eps", Values: []float64{0.25, 0.5, 0.75}},
	}}
	p, err = grid.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanGrid || len(p.Units) != 6 {
		t.Fatalf("grid plan: %+v", p)
	}
	var got []string
	for _, u := range p.Units {
		got = append(got, u.Label())
		if u.Scenario.Traffic.Lambda != u.Coords[0].Value || u.Scenario.Protocol.Eps != u.Coords[1].Value {
			t.Fatalf("grid unit not resolved: %+v", u)
		}
	}
	want := "lambda=0.1,eps=0.25 lambda=0.1,eps=0.5 lambda=0.1,eps=0.75 " +
		"lambda=0.2,eps=0.25 lambda=0.2,eps=0.5 lambda=0.2,eps=0.75"
	if strings.Join(got, " ") != want {
		t.Fatalf("grid order:\n%s\nwant\n%s", strings.Join(got, " "), want)
	}

	// A single-entry axes list is the legacy sweep.
	one := base
	one.Sweep = SweepSpec{Axes: []SweepAxis{{Axis: "loss", Values: []float64{0, 0.1}}}}
	p, err = one.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind != PlanSweep {
		t.Fatalf("single-axis grid classified as %s", p.Kind)
	}

	// The slots axis resolves into Sim.Slots.
	sl := base
	sl.Sweep = SweepSpec{Axis: "slots", Values: []float64{1000, 2000}}
	p, err = sl.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Units[1].Scenario.Sim.Slots != 2000 {
		t.Fatalf("slots axis not applied: %+v", p.Units[1].Scenario.Sim)
	}
}

func TestPlanErrors(t *testing.T) {
	base := planScenario("plan-errors")
	if _, err := base.Plan(0); err == nil {
		t.Error("reps 0 accepted")
	}
	sw := base
	sw.Sweep = SweepSpec{Axis: "lambda", Values: []float64{0.1}}
	if _, err := sw.Plan(2); err == nil || !strings.Contains(err.Error(), "replicated sweeps") {
		t.Errorf("replicated sweep: %v", err)
	}
	// Unit-count explosion is rejected, not allocated.
	big := base
	vals := make([]float64, 300)
	for i := range vals {
		vals[i] = float64(i + 1)
	}
	big.Sweep = SweepSpec{Axes: []SweepAxis{
		{Axis: "lambda", Values: vals},
		{Axis: "eps", Values: vals},
	}}
	if _, err := big.Plan(1); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized grid: %v", err)
	}
}

func TestPlanHashDistinctAndStable(t *testing.T) {
	base := planScenario("plan-hash")
	run, _ := base.Plan(1)
	rep, _ := base.Plan(3)
	rep2, _ := base.Plan(4)
	if run.Hash() == base.Hash() {
		t.Error("run plan hash collides with the scenario hash (different document formats)")
	}
	if run.Hash() == rep.Hash() || rep.Hash() == rep2.Hash() {
		t.Error("plan hashes do not separate kind/reps")
	}
	again, _ := base.Plan(3)
	if rep.Hash() != again.Hash() {
		t.Error("plan hash unstable across decompositions")
	}
}

func TestSweepSpecValidation(t *testing.T) {
	cases := []struct {
		name string
		sw   SweepSpec
		want string
	}{
		{"both forms", SweepSpec{Axis: "lambda", Values: []float64{1}, Axes: []SweepAxis{{Axis: "eps", Values: []float64{1}}}}, "mutually exclusive"},
		{"stray values", SweepSpec{Values: []float64{1}, Axes: []SweepAxis{{Axis: "eps", Values: []float64{1}}}}, "values outside axes"},
		{"duplicate axis", SweepSpec{Axes: []SweepAxis{{Axis: "eps", Values: []float64{1}}, {Axis: "eps", Values: []float64{2}}}}, "duplicate sweep axis"},
		{"empty axis values", SweepSpec{Axes: []SweepAxis{{Axis: "eps", Values: []float64{1}}, {Axis: "loss", Values: nil}}}, "no values"},
		{"unknown grid axis", SweepSpec{Axes: []SweepAxis{{Axis: "spin", Values: []float64{1}}}}, "unknown sweep axis"},
		{"fractional slots", SweepSpec{Axis: "slots", Values: []float64{100.5}}, "whole number"},
		{"negative slots", SweepSpec{Axes: []SweepAxis{{Axis: "slots", Values: []float64{-10}}}}, "whole number"},
	}
	for _, c := range cases {
		s := NewScenario("sweep-validate")
		s.Sweep = c.sw
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
	ok := NewScenario("sweep-ok")
	ok.Sweep = SweepSpec{Axes: []SweepAxis{
		{Axis: "lambda", Values: []float64{0.1}},
		{Axis: "slots", Values: []float64{1000, 4000}},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid grid rejected: %v", err)
	}
}

// TestPlanExecuteHooks drives a sweep plan with Lookup/Store/OnUnit and
// checks the per-unit cache contract: cache hits are served without
// running, fresh results reach Store, and the completion stream is
// ordered with monotonic counts.
func TestPlanExecuteHooks(t *testing.T) {
	sw := planScenario("hooks")
	sw.Sweep = SweepSpec{Axis: "lambda", Values: []float64{0.1, 0.2, 0.3, 0.4}}
	p, err := sw.Plan(1)
	if err != nil {
		t.Fatal(err)
	}

	// First pass: run everything, capture the per-unit results.
	var mu sync.Mutex
	stored := map[string]*SimResult{}
	pr, err := p.Execute(context.Background(), ExecOptions{
		Store: func(u PlanUnit, res *SimResult) {
			mu.Lock()
			stored[u.Hash] = res
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if pr.UnitsDone != 4 || len(stored) != 4 || len(pr.Points) != 4 {
		t.Fatalf("first pass: %+v (stored %d)", pr, len(stored))
	}

	// Second pass: everything served from the lookup, nothing runs.
	// Cache provenance is visible only on the progress stream — the
	// assembled document stays byte-identical to the fresh pass.
	var dones []int
	cachedUnits := 0
	pr2, err := p.Execute(context.Background(), ExecOptions{
		Lookup: func(u PlanUnit) (*SimResult, bool) { r, ok := stored[u.Hash]; return r, ok },
		Store:  func(u PlanUnit, res *SimResult) { t.Errorf("unit %d simulated on a full cache", u.Index) },
		OnUnit: func(u PlanUnit, cached bool, err error, prog PlanProgress) {
			if !cached || err != nil {
				t.Errorf("unit %d: cached=%v err=%v", u.Index, cached, err)
			}
			dones = append(dones, prog.Done)
			cachedUnits = prog.Cached
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if cachedUnits != 4 || pr2.UnitsDone != 4 {
		t.Fatalf("second pass: cached %d, %+v", cachedUnits, pr2)
	}
	if fmt.Sprint(dones) != "[1 2 3 4]" {
		t.Fatalf("completion stream %v", dones)
	}
	a, _ := json.Marshal(pr)
	b, _ := json.Marshal(pr2)
	if !bytes.Equal(a, b) {
		t.Fatal("cache-served document diverges from fresh document")
	}

	// Third pass: one value appended — exactly one simulation runs.
	sw.Sweep.Values = append(sw.Sweep.Values, 0.5)
	p3, err := sw.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	ran := 0
	pr3, err := p3.Execute(context.Background(), ExecOptions{
		Lookup: func(u PlanUnit) (*SimResult, bool) { r, ok := stored[u.Hash]; return r, ok },
		Store:  func(u PlanUnit, res *SimResult) { mu.Lock(); ran++; mu.Unlock() },
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 1 || pr3.UnitsDone != 5 {
		t.Fatalf("incremental pass ran %d units: %+v", ran, pr3)
	}
}

// TestGridSweepEndToEnd runs a 2×2 grid through RunSweep and checks
// the points carry coordinates and independent results.
func TestGridSweepEndToEnd(t *testing.T) {
	sc := planScenario("grid-e2e")
	sc.Sweep = SweepSpec{Axes: []SweepAxis{
		{Axis: "lambda", Values: []float64{0.2, 0.4}},
		{Axis: "eps", Values: []float64{0.25, 0.5}},
	}}
	pts, err := sc.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("got %d grid points", len(pts))
	}
	for i, pt := range pts {
		if len(pt.Coords) != 2 || pt.Result == nil || pt.Axis != "" {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
	}
	// λ=0.4 rows must inject more than λ=0.2 rows at equal eps.
	if pts[2].Result.Injected <= pts[0].Result.Injected {
		t.Errorf("grid λ=0.4 injected %d, not more than λ=0.2's %d",
			pts[2].Result.Injected, pts[0].Result.Injected)
	}
}

// TestPlanReplicateCancellation pins the wrapper's partial-result
// contract: cancelling mid-replication returns the completed subset
// and an error wrapping context.Canceled.
func TestPlanReplicateCancellation(t *testing.T) {
	sc := planScenario("rep-cancel")
	sc.Sim.Slots = 2_000_000_000 // will never finish; only cancellation ends it
	sc.Sim.Parallel = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := sc.Replicate(ctx, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v", err)
	}
	if res == nil || len(res.Runs) != 0 {
		t.Fatalf("pre-cancelled replicate: %+v", res)
	}
}

// TestSimResultRemarshalStable pins the invariant the per-unit result
// cache rests on: unmarshal followed by marshal reproduces the exact
// byte sequence, so a cache-served unit result embedded into a plan
// document is indistinguishable from a freshly-computed one.
func TestSimResultRemarshalStable(t *testing.T) {
	res, err := planScenario("remarshal").Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SimResult
	if err := json.Unmarshal(first, &back); err != nil {
		t.Fatal(err)
	}
	second, err := json.Marshal(&back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, second) {
		t.Fatalf("SimResult JSON not remarshal-stable:\n%s\nvs\n%s", first, second)
	}
}
