package dynsched

// The unified execution planner. Every way this library executes work —
// a single run, N replications, a 1-D parameter sweep, a multi-axis
// grid sweep — is the same thing underneath: a set of independent,
// perfectly shardable, perfectly cacheable simulations. Scenario.Plan
// makes that explicit by decomposing a scenario into addressable work
// *units*, each a fully-resolved single-run Scenario with its own
// canonical Hash; Plan.Execute drives the units through the shared
// worker pool of internal/plan with per-unit cache short-circuiting and
// streamed completion, then aggregates the typed PlanResult document.
// Scenario.Run, Scenario.Replicate and Scenario.RunSweep are thin
// wrappers over this layer (bit-identical to their pre-planner
// behaviour), and internal/server executes every submitted job through
// it, consulting its content-addressed result cache once per unit.

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"dynsched/internal/plan"
	"dynsched/internal/sim"
)

// PlanKind classifies an execution plan's shape.
type PlanKind string

// Plan kinds.
const (
	// PlanRun is a single simulation: one unit.
	PlanRun PlanKind = "run"
	// PlanReplicate is N independent replications with derived sub-seeds.
	PlanReplicate PlanKind = "replicate"
	// PlanSweep is a one-axis parameter sweep: one unit per value.
	PlanSweep PlanKind = "sweep"
	// PlanGrid is a multi-axis sweep: one unit per cross-product point.
	PlanGrid PlanKind = "grid"
)

// MaxPlanUnits bounds a plan's unit count. A grid sweep's unit count is
// the product of its axis lengths, so an innocent-looking spec can
// explode combinatorially; Plan rejects anything beyond this rather
// than allocating without bound (relevant for server-submitted specs).
const MaxPlanUnits = 65536

// AxisValue is one resolved sweep coordinate: which axis, which value.
type AxisValue struct {
	Axis  string  `json:"axis"`
	Value float64 `json:"value"`
}

// PlanUnit is one addressable work unit: a fully-resolved single-run
// Scenario (sweep cleared, axis values applied, replication seed
// derived) together with its canonical content address. Two plans that
// resolve a unit to the same spec share the same unit hash — a sweep
// point and a direct submission of the same resolved scenario are the
// same cacheable experiment.
type PlanUnit struct {
	// Index is the unit's stable position in the plan.
	Index int
	// Rep is the replication index for replicate plans, -1 otherwise.
	Rep int
	// Coords are the resolved sweep coordinates, nil for run/replicate.
	Coords []AxisValue
	// Scenario is the fully-resolved single-run spec.
	Scenario Scenario
	// Hash is Scenario.Hash() of the resolved spec.
	Hash string

	// label caches Label's rendering — Plan's constructors fill it so
	// repeated executions of one plan never re-derive it.
	label string
}

// Label renders the unit's coordinates for streams and error messages.
func (u PlanUnit) Label() string {
	if u.label != "" {
		return u.label
	}
	if u.Rep >= 0 {
		return fmt.Sprintf("rep %d", u.Rep)
	}
	if len(u.Coords) > 0 {
		parts := make([]string, len(u.Coords))
		for i, c := range u.Coords {
			parts[i] = fmt.Sprintf("%s=%v", c.Axis, c.Value)
		}
		return strings.Join(parts, ",")
	}
	return u.Scenario.Name
}

// Plan is a scenario decomposed into executable units.
type Plan struct {
	Kind PlanKind
	// Source is the scenario the plan was built from.
	Source Scenario
	// Reps is the replication count (1 unless Kind is PlanReplicate).
	Reps int
	// Units are the addressable work units, in canonical order: value
	// order for sweeps, row-major cross-product order (last axis fastest)
	// for grids, replication order for replicate plans.
	Units []PlanUnit

	// hash caches Hash's digest — Plan's constructors fill it before the
	// plan is shared, so executions (which stamp it into every result
	// document) never re-canonicalise the source spec.
	hash string
}

// Hash is the plan's content address: the SHA-256 of the plan shape
// (kind and replication count) over the source scenario's canonical
// form. It differs from the scenario hash — a plan document and a
// single-run result are different artifacts — but is equal for any two
// submissions that decompose into the same units, however the source
// spec was formatted. internal/server caches assembled plan documents
// under it.
func (p *Plan) Hash() string {
	if p.hash != "" {
		return p.hash
	}
	doc, err := p.Source.CanonicalJSON()
	if err != nil {
		panic(err)
	}
	h := sha256.New()
	fmt.Fprintf(h, "plan:%s:reps=%d:", p.Kind, p.Reps)
	h.Write(doc)
	return hex.EncodeToString(h.Sum(nil))
}

// seal precomputes the plan-level hash and per-unit labels once, at
// construction, so every later Execute (and the server's per-job views)
// reads cached values instead of re-rendering them.
func (p *Plan) seal() *Plan {
	p.hash = ""
	p.hash = p.Hash()
	for i := range p.Units {
		p.Units[i].label = p.Units[i].Label()
	}
	return p
}

// Plan decomposes the scenario into an execution plan: a grid plan when
// the sweep spec declares multiple axes, a sweep plan for one axis, a
// replicate plan when reps > 1, and a single-run plan otherwise.
// Replicated sweeps are rejected. reps < 1 is an error.
func (s Scenario) Plan(reps int) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if reps < 1 {
		return nil, fmt.Errorf("dynsched: scenario %q: reps %d must be positive", s.Name, reps)
	}
	axes := s.Sweep.normalized()
	if len(axes) > 0 && reps > 1 {
		return nil, fmt.Errorf("dynsched: scenario %q: replicated sweeps are not supported — replicate each resolved unit instead", s.Name)
	}
	switch {
	case len(axes) > 0:
		p, err := s.sweepPlan()
		if err != nil {
			return nil, err
		}
		return p.seal(), nil
	case reps > 1:
		return s.replicatePlan(reps).seal(), nil
	default:
		return s.runPlan().seal(), nil
	}
}

// resolveUnit clears the sweep and applies the coordinates, producing a
// fully-resolved single-run spec.
func (s Scenario) resolveUnit(coords []AxisValue) Scenario {
	u := s
	u.Sweep = SweepSpec{}
	for _, c := range coords {
		applyAxis(&u, c.Axis, c.Value)
	}
	return u
}

// runPlan builds the single-run plan of the scenario, ignoring any
// sweep spec (Run has always executed the base scenario).
func (s Scenario) runPlan() *Plan {
	unit := s.resolveUnit(nil)
	return &Plan{
		Kind:   PlanRun,
		Source: s,
		Reps:   1,
		Units:  []PlanUnit{{Index: 0, Rep: -1, Scenario: unit, Hash: unit.Hash()}},
	}
}

// replicatePlan builds the N-replication plan: unit r is the scenario
// at the derived seed SubSeed(seed, r), so a replication unit and a
// direct run at that seed are the same cacheable experiment.
func (s Scenario) replicatePlan(reps int) *Plan {
	p := &Plan{Kind: PlanReplicate, Source: s, Reps: reps, Units: make([]PlanUnit, reps)}
	for r := 0; r < reps; r++ {
		unit := s.resolveUnit(nil)
		unit.Sim.Seed = sim.SubSeed(s.Sim.Seed, r)
		p.Units[r] = PlanUnit{Index: r, Rep: r, Scenario: unit, Hash: unit.Hash()}
	}
	return p
}

// sweepPlan builds the sweep (one axis) or grid (several axes) plan:
// the cross product of all axis values in row-major order, the last
// axis varying fastest. For a single axis this is exactly the legacy
// sweep order.
func (s Scenario) sweepPlan() (*Plan, error) {
	axes := s.Sweep.normalized()
	total := 1
	for _, ax := range axes {
		total *= len(ax.Values)
		if total > MaxPlanUnits {
			return nil, fmt.Errorf("dynsched: scenario %q: sweep grid exceeds %d units", s.Name, MaxPlanUnits)
		}
	}
	kind := PlanSweep
	if len(axes) > 1 {
		kind = PlanGrid
	}
	p := &Plan{Kind: kind, Source: s, Reps: 1, Units: make([]PlanUnit, total)}
	for i := 0; i < total; i++ {
		coords := make([]AxisValue, len(axes))
		rem := i
		for j := len(axes) - 1; j >= 0; j-- {
			n := len(axes[j].Values)
			coords[j] = AxisValue{Axis: axes[j].Axis, Value: axes[j].Values[rem%n]}
			rem /= n
		}
		unit := s.resolveUnit(coords)
		p.Units[i] = PlanUnit{Index: i, Rep: -1, Coords: coords, Scenario: unit, Hash: unit.Hash()}
	}
	return p, nil
}

// PlanUnitError attributes an execution failure to the plan unit that
// produced it. errors.Is/As reach through to the cause.
type PlanUnitError struct {
	Unit PlanUnit
	Err  error
}

// Error formats the failure with its unit coordinates.
func (e *PlanUnitError) Error() string {
	return fmt.Sprintf("dynsched: plan unit %d (%s): %v", e.Unit.Index, e.Unit.Label(), e.Err)
}

// Unwrap exposes the underlying error.
func (e *PlanUnitError) Unwrap() error { return e.Err }

// PlanUnitStatus is the per-unit metadata of an assembled PlanResult.
type PlanUnitStatus struct {
	Index int `json:"index"`
	// Hash is the unit's content address (its resolved Scenario.Hash).
	Hash   string      `json:"hash"`
	Coords []AxisValue `json:"coords,omitempty"`
	// Done marks units that completed cleanly.
	Done bool `json:"done"`
}

// PlanResult is the typed document a plan execution assembles: plan
// identity, per-unit status, and exactly one aggregate matching the
// plan kind. It is what dynschedd serves (and caches under the plan
// hash) for sweep, grid and replicate jobs. The document records what
// was computed, never how: cache and recovery provenance live on the
// job view (OnUnit progress, api.JobView), so the same plan yields a
// byte-identical document whether its units ran fresh, came from the
// cache, or were resumed after a crash.
type PlanResult struct {
	Kind     PlanKind `json:"kind"`
	Scenario string   `json:"scenario"`
	// Hash is the plan-level content address (Plan.Hash).
	Hash       string           `json:"hash"`
	UnitsTotal int              `json:"unitsTotal"`
	UnitsDone  int              `json:"unitsDone"`
	Units      []PlanUnitStatus `json:"units"`
	// Run holds the single-run aggregate (kind "run") — the partial
	// result when the run was cancelled mid-way.
	Run *SimResult `json:"run,omitempty"`
	// Replicate holds the across-replication aggregate (kind "replicate").
	Replicate *ReplicateResult `json:"replicate,omitempty"`
	// Points holds the completed sweep/grid points in unit order.
	Points []SweepPoint `json:"points,omitempty"`
}

// PlanMetrics is the planner's instrument bundle — units run, cached
// and failed, plus a fresh-run wall-time histogram. dynschedd builds
// one against its metrics registry and shares it across all jobs.
type PlanMetrics = plan.Metrics

// ExecOptions parameterises Plan.Execute.
type ExecOptions struct {
	// Parallel caps the unit worker pool (0 = the scenario's
	// Sim.Parallel, which itself defaults to GOMAXPROCS).
	Parallel int
	// Lookup, when set, is consulted once per unit before anything runs;
	// ok = true serves the unit from the returned result. It is called
	// serially in unit order — this is the per-unit cache hook.
	Lookup func(u PlanUnit) (*SimResult, bool)
	// Compiled, when set, may supply a pre-built compilation for a unit
	// (nil = compile fresh). It lets a caller that compiled a unit
	// eagerly — dynschedd validates submissions that way — hand the
	// work to the plan instead of redoing it. Each unit consults the
	// hook once, from its pool worker.
	Compiled func(u PlanUnit) *CompiledScenario
	// Store, when set, receives every freshly-computed unit result (not
	// cache hits). It is called from pool workers and must be safe for
	// concurrent use.
	Store func(u PlanUnit, res *SimResult)
	// OnUnit, when set, streams unit completions: cache hits first in
	// unit order, then runs in completion order. Calls are serialized
	// with monotonic counts; keep the callback cheap.
	OnUnit func(u PlanUnit, cached bool, err error, p PlanProgress)
	// Observers, when set, supplies extra per-run observers for each
	// freshly-executed unit (cache hits never run, so they get none).
	// Called once per unit from its pool worker; return fresh observer
	// instances — a unit's observers are driven from that unit's engine
	// goroutine. dynschedd attaches its engine-metrics tracing observer
	// here.
	Observers func(u PlanUnit) []SimObserver
	// Metrics, when set, counts every unit's outcome (run/cached/failed)
	// and records fresh-run wall time (see plan.Metrics).
	Metrics *PlanMetrics
	// Delegate, when set, may execute a unit on a remote runner instead
	// of the local pool (dynschedd's fleet tier). See plan.Options for
	// the token protocol; a successfully delegated unit's result flows
	// through Store exactly like a local fresh run, so caching and
	// journaling hold fleet-wide.
	Delegate func(ctx context.Context, u PlanUnit, local chan struct{}) (*SimResult, bool, error)
	// LocalParallel sizes the local-execution semaphore when Delegate is
	// set: 0 = Parallel's resolved value, negative = dispatch-only (no
	// local execution).
	LocalParallel int
	// CheckpointEvery, when positive, checkpoints each running unit
	// every so many slots (at the protocol's next frame boundary),
	// handing the snapshots to SaveCheckpoint. Units whose components
	// do not support checkpointing run uncheckpointed; results are
	// bit-identical either way.
	CheckpointEvery int64
	// SaveCheckpoint receives each unit's checkpoints. It is called
	// from pool workers and must be safe for concurrent use across
	// units (calls for one unit are serial).
	SaveCheckpoint func(u PlanUnit, cp *sim.Checkpoint) error
	// LoadCheckpoint, when set, is consulted once per freshly-run unit;
	// a non-nil checkpoint resumes the unit from it instead of slot 0.
	LoadCheckpoint func(u PlanUnit) *sim.Checkpoint
}

// PlanProgress is the plan-level completion state handed to OnUnit.
type PlanProgress struct {
	// Done counts completed units, cache hits included.
	Done int
	// Cached counts the units served from the per-unit cache.
	Cached int
	// Total is the plan's unit count.
	Total int
}

// Execute runs the plan's units across the shared worker pool, each
// unit under its own context derived from ctx, and aggregates the
// result document. Results are bit-identical for every pool size.
//
// The returned PlanResult is never nil: a cancelled plan reports the
// units that completed before the cut. The error is the first (by unit
// index) real unit failure as a *PlanUnitError — except for single-run
// plans, whose unit error is returned unwrapped — or ctx's error when
// the plan was cancelled.
func (p *Plan) Execute(ctx context.Context, opts ExecOptions) (*PlanResult, error) {
	units := make([]plan.Unit, len(p.Units))
	for i, pu := range p.Units {
		units[i] = plan.Unit{Index: i, Key: pu.Hash, Label: pu.Label()}
	}
	popts := plan.Options[*SimResult]{Parallel: opts.Parallel, Metrics: opts.Metrics}
	if popts.Parallel == 0 {
		popts.Parallel = p.Source.Sim.Parallel
	}
	if opts.Lookup != nil {
		popts.Lookup = func(u plan.Unit) (*SimResult, bool) { return opts.Lookup(p.Units[u.Index]) }
	}
	if opts.OnUnit != nil {
		popts.OnUnit = func(u plan.Unit, _ *SimResult, cached bool, err error, pr plan.Progress) {
			opts.OnUnit(p.Units[u.Index], cached, err, PlanProgress{Done: pr.Done, Cached: pr.Cached, Total: pr.Total})
		}
	}
	if opts.Delegate != nil {
		popts.LocalParallel = opts.LocalParallel
		popts.Delegate = func(dctx context.Context, u plan.Unit, local chan struct{}) (*SimResult, bool, error) {
			pu := p.Units[u.Index]
			res, ok, err := opts.Delegate(dctx, pu, local)
			if ok && err == nil && opts.Store != nil {
				opts.Store(pu, res)
			}
			return res, ok, err
		}
	}
	out, err := plan.Execute(ctx, units, popts, func(uctx context.Context, u plan.Unit) (*SimResult, error) {
		pu := p.Units[u.Index]
		var c *CompiledScenario
		if opts.Compiled != nil {
			c = opts.Compiled(pu)
		}
		if c == nil {
			var cerr error
			if c, cerr = pu.Scenario.Compile(); cerr != nil {
				return nil, cerr
			}
		}
		if opts.Observers != nil {
			c.Observers = append(c.Observers, opts.Observers(pu)...)
		}
		if (opts.CheckpointEvery > 0 || opts.LoadCheckpoint != nil) &&
			sim.SupportsCheckpoint(c.Model, c.Process, c.Protocol) {
			spec := &sim.CheckpointSpec{}
			if opts.CheckpointEvery > 0 && opts.SaveCheckpoint != nil {
				spec.Every = opts.CheckpointEvery
				spec.Sink = func(cp *sim.Checkpoint) error { return opts.SaveCheckpoint(pu, cp) }
			}
			if opts.LoadCheckpoint != nil {
				spec.Resume = opts.LoadCheckpoint(pu)
			}
			if spec.Every > 0 || spec.Resume != nil {
				c.Config.Checkpoint = spec
			}
		}
		res, rerr := c.Run(uctx)
		if rerr == nil && opts.Store != nil {
			opts.Store(pu, res)
		}
		return res, rerr
	})

	result := p.aggregate(out)
	if err != nil {
		var ue *plan.UnitError
		if errors.As(err, &ue) {
			if p.Kind == PlanRun {
				// Preserve the single run's own error shape (a cancelled
				// run's partial result travels in result.Run).
				return result, ue.Err
			}
			return result, &PlanUnitError{Unit: p.Units[ue.Unit.Index], Err: ue.Err}
		}
		return result, err
	}
	return result, nil
}

// aggregate assembles the PlanResult document from an outcome.
func (p *Plan) aggregate(out *plan.Outcome[*SimResult]) *PlanResult {
	result := &PlanResult{
		Kind:       p.Kind,
		Scenario:   p.Source.Name,
		Hash:       p.Hash(),
		UnitsTotal: len(p.Units),
		UnitsDone:  out.NumDone,
		Units:      make([]PlanUnitStatus, len(p.Units)),
	}
	for i, pu := range p.Units {
		result.Units[i] = PlanUnitStatus{
			Index:  i,
			Hash:   pu.Hash,
			Coords: pu.Coords,
			Done:   out.Done[i],
		}
	}
	switch p.Kind {
	case PlanRun:
		result.Run = out.Values[0]
	case PlanReplicate:
		rr := &ReplicateResult{StableAll: true}
		for i := range p.Units {
			if !out.Done[i] {
				continue
			}
			rr.Accumulate(sim.ReplicationOf(i, out.Values[i]))
		}
		result.Replicate = rr
	case PlanSweep, PlanGrid:
		for i, pu := range p.Units {
			if !out.Done[i] {
				continue
			}
			pt := SweepPoint{Result: out.Values[i]}
			if p.Kind == PlanSweep {
				pt.Axis, pt.Value = pu.Coords[0].Axis, pu.Coords[0].Value
			} else {
				pt.Coords = pu.Coords
			}
			result.Points = append(result.Points, pt)
		}
	}
	return result
}
