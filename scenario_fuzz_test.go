package dynsched

import (
	"encoding/json"
	"testing"
)

// FuzzParseScenario checks the service-facing parsing contract:
// arbitrary bytes must either parse into a valid scenario or return an
// error — never panic — and every accepted scenario must re-encode,
// re-parse, and fingerprint stably (the invariant the dynschedd result
// cache rests on). `go test` exercises the seed corpus; `go test
// -fuzz=FuzzParseScenario` explores from it.
func FuzzParseScenario(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`42`,
		`"scenario"`,
		`[{"name":"x"}]`,
		`{"name":"x","sim":{"slots":10}}`,
		`{"name":"x","sim":{"slots":-1}}`,
		`{"name":"x","sim":{"slots":1e999}}`,
		`{"name":"x","sim":{"slots":10},"modle":{}}`,
		`{"name":"x","sim":{"slots":10},"sweep":{"axis":"spin","values":[1]}}`,
		`{"name":"x","sim":{"slots":10},"sweep":{"axis":"lambda","values":[]}}`,
		`{"name":"x","sim":{"slots":10},"traffic":{"lambda":1e308,"pattern":"burst"}}`,
		`{"name":"x","sim":{"slots":10},"traffic":{"lambda":NaN}}`,
		"{\"name\":\"\x00\",\"sim\":{\"slots\":10}}",
		`{"name":"x","sim":{"slots":10}`,
		`{"name":"x","network":{"nodes":99999999999999999999}}`,
		`{"name":"golden","description":"pinned fingerprint fixture","network":{"topology":"line","nodes":6,"hops":5},"model":{"kind":"identity","loss":0.1},"traffic":{"pattern":"stochastic","lambda":0.35},"protocol":{"alg":"full-parallel","eps":0.25},"sim":{"slots":50000,"seed":7,"warmupFrac":0.1},"sweep":{}}`,
		// Grid-sweep specs: the multi-axis SweepSpec surface is fuzzed
		// from day one — valid grids, duplicate axes, empty value lists,
		// both forms at once, and non-integral slots values.
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[{"axis":"lambda","values":[0.1,0.2]},{"axis":"eps","values":[0.25,0.5]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[{"axis":"lambda","values":[0.1]},{"axis":"lambda","values":[0.2]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[{"axis":"loss","values":[]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axis":"eps","values":[0.1],"axes":[{"axis":"lambda","values":[0.1]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[{"axis":"slots","values":[100.5]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[{"axis":"slots","values":[1000,2000]},{"axis":"lambda","values":[0.1,1e308]}]}}`,
		`{"name":"g","sim":{"slots":10},"sweep":{"axes":[]}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc, err := ParseScenario(data)
		if err != nil {
			return // malformed input must error, and it did
		}
		// Accepted scenarios satisfy the round-trip + fingerprint
		// invariants.
		enc, err := sc.EncodeJSON()
		if err != nil {
			t.Fatalf("accepted scenario does not encode: %v", err)
		}
		back, err := ParseScenario(enc)
		if err != nil {
			t.Fatalf("encoded scenario does not re-parse: %v\n%s", err, enc)
		}
		if back.Hash() != sc.Hash() {
			t.Fatalf("hash unstable across round trip: %s vs %s", back.Hash(), sc.Hash())
		}
		doc, err := sc.CanonicalJSON()
		if err != nil {
			t.Fatalf("accepted scenario has no canonical form: %v", err)
		}
		if !json.Valid(doc) {
			t.Fatalf("canonical form is not valid JSON: %s", doc)
		}
	})
}
