module dynsched

go 1.21
