package dynsched

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestModulePath guards the seed defect that once made the whole tree
// unbuildable: go.mod must declare the module path every internal
// import in the tree assumes. If the module line and the import prefix
// ever diverge again, this fails loudly instead of `go build` failing
// at setup with "does not contain main module".
func TestModulePath(t *testing.T) {
	const wantModule = "dynsched"

	data, err := os.ReadFile("go.mod")
	if err != nil {
		t.Fatalf("reading go.mod: %v (the module file is load-bearing — do not delete it)", err)
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		t.Fatal("go.mod has no module directive")
	}
	if module != wantModule {
		t.Fatalf("go.mod declares module %q, want %q (the internal/... imports use this prefix)", module, wantModule)
	}

	// Every intra-repo import must use the declared module path as its
	// prefix — scan the whole tree, not a sample.
	fset := token.NewFileSet()
	internalImports := 0
	err = filepath.WalkDir(".", func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if name := d.Name(); name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return err
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !strings.Contains(p, "internal/") {
				continue
			}
			internalImports++
			if !strings.HasPrefix(p, module+"/") {
				t.Errorf("%s imports %q, which does not start with the module path %q", path, p, module)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if internalImports == 0 {
		t.Fatal("found no internal imports — the guard is scanning the wrong tree")
	}
}
