package dynsched

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/experiments"
	"dynsched/internal/interference"
	"dynsched/internal/journal"
	"dynsched/internal/metrics"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// ---- One benchmark per paper experiment (see DESIGN.md §4) ----
//
// Each bench runs the corresponding experiment at Quick scale; the
// cmd/experiments binary reproduces the full-scale EXPERIMENTS.md
// numbers. Benchmarks double as end-to-end regression checks: any error
// fails the bench.

func benchExperiment(b *testing.B, id string) {
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl, err := r.Run(context.Background(), experiments.Quick, int64(i)+1)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatalf("%s: empty table", id)
		}
	}
}

func BenchmarkE1Densify(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2Stability(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3Latency(b *testing.B)       { benchExperiment(b, "E3") }
func BenchmarkE4Adversarial(b *testing.B)   { benchExperiment(b, "E4") }
func BenchmarkE5LinearPower(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6UniformPower(b *testing.B)  { benchExperiment(b, "E6") }
func BenchmarkE7MAC(b *testing.B)           { benchExperiment(b, "E7") }
func BenchmarkE8ConflictGraph(b *testing.B) { benchExperiment(b, "E8") }
func BenchmarkE9LowerBound(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Ablation(b *testing.B)     { benchExperiment(b, "E10") }
func BenchmarkE11PowerControl(b *testing.B) { benchExperiment(b, "E11") }
func BenchmarkE12Radio(b *testing.B)        { benchExperiment(b, "E12") }
func BenchmarkE13Metrics(b *testing.B)      { benchExperiment(b, "E13") }
func BenchmarkE14Baselines(b *testing.B)    { benchExperiment(b, "E14") }

// ---- Micro-benchmarks for the hot paths ----

func benchSINRModel(b *testing.B, n int) *sinr.FixedPower {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	g := netgraph.RandomPairs(rng, n, 100, 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, sinr.PowerLinear, 1)
	if err != nil {
		b.Fatal(err)
	}
	m, err := sinr.NewFixedPower(g, prm, powers, sinr.WeightAffectance)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkMeasure64Links(b *testing.B) {
	m := benchSINRModel(b, 64)
	r := make([]int, 64)
	for i := range r {
		r[i] = i % 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interference.Measure(m, r)
	}
}

// weightOnlyModel hides a model's fast-path extensions (RowsProvider,
// SlotResolver), forcing the generic O(E²) Weight-call evaluation — the
// pre-sparse baseline the CSR path is measured against.
type weightOnlyModel struct{ m interference.Model }

func (w weightOnlyModel) Name() string              { return w.m.Name() + "-dense" }
func (w weightOnlyModel) NumLinks() int             { return w.m.NumLinks() }
func (w weightOnlyModel) Weight(e, e2 int) float64  { return w.m.Weight(e, e2) }
func (w weightOnlyModel) Successes(tx []int) []bool { return w.m.Successes(tx) }

func BenchmarkMeasure64LinksDense(b *testing.B) {
	m := weightOnlyModel{benchSINRModel(b, 64)}
	r := make([]int, 64)
	for i := range r {
		r[i] = i % 5
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		interference.Measure(m, r)
	}
}

// BenchmarkIncrementalMeasure64 slides a 64-request window one request
// at a time — the adversary checker's access pattern. Each step is one
// Remove, one Add, and one Measure read, O(nnz(column)) apiece, versus
// a full ‖W·R‖∞ recomputation per step for the dense baseline.
func BenchmarkIncrementalMeasure64(b *testing.B) {
	m := benchSINRModel(b, 64)
	im := interference.NewIncremental(m)
	for e := 0; e < 64; e++ {
		im.Add(e)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := i % 64
		im.Remove(e)
		im.Add(e)
		if im.Measure() <= 0 {
			b.Fatal("measure vanished")
		}
	}
}

// BenchmarkSINRSuccesses16Tx measures steady-state slot resolution —
// the path sim.Run drives via interference.ResolveFunc: a reusable
// resolver summing precomputed cross gains, zero allocations per slot.
func BenchmarkSINRSuccesses16Tx(b *testing.B) {
	m := benchSINRModel(b, 64)
	resolve := interference.ResolveFunc(m)
	tx := make([]int, 16)
	for i := range tx {
		tx[i] = i * 4
	}
	resolve(tx) // warm the resolver buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolve(tx)
	}
}

// BenchmarkSINRSuccessesAlloc16Tx measures the allocating Successes
// entry point (fresh result slice per call, pooled counting scratch).
func BenchmarkSINRSuccessesAlloc16Tx(b *testing.B) {
	m := benchSINRModel(b, 64)
	tx := make([]int, 16)
	for i := range tx {
		tx[i] = i * 4
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Successes(tx)
	}
}

func BenchmarkAffectanceMatrixBuild64(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := netgraph.RandomPairs(rng, 64, 100, 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, sinr.PowerLinear, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sinr.NewFixedPower(g, prm, powers, sinr.WeightAffectance); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStaticDecay(b *testing.B) {
	m := benchSINRModel(b, 32)
	reqs := make([]static.Request, 0, 32*8)
	for k := 0; k < 8; k++ {
		for e := 0; e < 32; e++ {
			reqs = append(reqs, static.Request{Link: e, Tag: int64(k*32 + e)})
		}
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := static.Run(rng, m, static.Decay{}, reqs, 0)
		if !res.AllServed() {
			b.Fatal("decay failed")
		}
	}
}

func BenchmarkStaticSpread(b *testing.B) {
	m := benchSINRModel(b, 32)
	reqs := make([]static.Request, 0, 32*8)
	for k := 0; k < 8; k++ {
		for e := 0; e < 32; e++ {
			reqs = append(reqs, static.Request{Link: e, Tag: int64(k*32 + e)})
		}
	}
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := static.Run(rng, m, static.Spread{}, reqs, 0)
		if !res.AllServed() {
			b.Fatal("spread failed")
		}
	}
}

func BenchmarkPowerControlSolve8(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := netgraph.RandomPairs(rng, 32, 200, 1, 3)
	pc, err := sinr.NewPowerControl(g, sinr.DefaultParams())
	if err != nil {
		b.Fatal(err)
	}
	set := []int{0, 4, 8, 12, 16, 20, 24, 28}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc.SolvePowers(set)
	}
}

// benchWarmReset resets the benchmark clock and allocation counters
// once the engine has executed the warm-up slots, so the measured
// window covers only the steady state: engine setup and cold-start
// buffer growth are excluded. Without it, small fixed iteration counts
// (-benchtime 100x, the committed-baseline convention) amortise the
// setup allocations over too few slots and report a spurious nonzero
// allocs/op on a zero-alloc steady-state path.
type benchWarmReset struct {
	BaseObserver
	b    *testing.B
	warm int64
}

func (o *benchWarmReset) OnSlot(t int64, v SlotView) {
	if t == o.warm {
		o.b.ResetTimer()
	}
}

func BenchmarkDynamicProtocolSlot(b *testing.B) {
	g := netgraph.LineNetwork(8, 1)
	model := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 7)
	proc, err := StochasticAtRate(model, []Generator{
		{Choices: []PathChoice{{Path: path, P: 0.4}}},
	}, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: FullParallel{}, M: g.NumLinks(), Lambda: 0.4, Eps: 0.25,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	res, err := SimulateContext(context.Background(), SimConfig{Slots: int64(b.N) + 64, Seed: 9},
		model, proc, proto, &benchWarmReset{b: b, warm: 63})
	if err != nil {
		b.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		b.Fatal("protocol errors")
	}
}

// BenchmarkDynamicProtocolSlotTraced is the same workload with the
// metrics tracing observer attached (sampled resolve-time histogram
// included) — the measured cost of leaving instrumentation on in
// production. Compare against BenchmarkDynamicProtocolSlot for the
// per-slot overhead; PERFORMANCE.md records the delta.
func BenchmarkDynamicProtocolSlotTraced(b *testing.B) {
	g := netgraph.LineNetwork(8, 1)
	model := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 7)
	proc, err := StochasticAtRate(model, []Generator{
		{Choices: []PathChoice{{Path: path, P: 0.4}}},
	}, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: FullParallel{}, M: g.NumLinks(), Lambda: 0.4, Eps: 0.25,
	})
	if err != nil {
		b.Fatal(err)
	}
	em := sim.NewEngineMetrics(metrics.NewRegistry())
	b.ResetTimer()
	res, err := SimulateContext(context.Background(), SimConfig{Slots: int64(b.N) + 64, Seed: 9},
		model, proc, proto, em.NewObserver(0), &benchWarmReset{b: b, warm: 63})
	if err != nil {
		b.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		b.Fatal("protocol errors")
	}
}

// BenchmarkPlanSweep64 pushes a 64-unit sweep plan through the
// execution planner's worker pool: per-unit decomposition, hashing,
// compilation and 64 short line simulations. It is the planner-layer
// throughput guard — a scheduling or per-unit-overhead regression
// shows up here before it shows up in wall-clock sweeps.
func BenchmarkPlanSweep64(b *testing.B) {
	sc := NewScenario("bench-plan-sweep",
		WithModel("identity"), WithTopology("line"), WithNodes(6), WithHops(5),
		WithAlgorithm("full-parallel"), WithSlots(500), WithSeed(1))
	values := make([]float64, 64)
	for i := range values {
		values[i] = 0.1 + 0.005*float64(i)
	}
	sc.Sweep = SweepSpec{Axis: "lambda", Values: values}
	p, err := sc.Plan(1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := p.Execute(context.Background(), ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if pr.UnitsDone != 64 {
			b.Fatalf("plan completed %d of 64 units", pr.UnitsDone)
		}
	}
}

func BenchmarkE15SpatialScale(b *testing.B) { benchExperiment(b, "E15") }

// ---- Scale benchmarks: the spatially-indexed SINR backing ----
//
// BenchmarkSlotResolve100k is part of the committed-baseline smoke set;
// BenchmarkSlotResolve1M is the headline scale target (one million
// links, 8192 concurrent transmissions per slot) and is regenerated
// with the baseline but tolerated as missing in CI smoke runs (see
// cmd/bench -allow-missing).

func benchIndexedModel(b *testing.B, n int) *sinr.FixedPower {
	b.Helper()
	rng := rand.New(rand.NewSource(5))
	g := netgraph.RandomPairs(rng, n, 10*math.Sqrt(float64(n)), 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, sinr.PowerUniform, 1)
	if err != nil {
		b.Fatal(err)
	}
	prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
	m, err := sinr.NewFixedPowerOpts(g, prm, powers, sinr.WeightMonotone,
		sinr.Options{Backing: sinr.BackIndexed, FarFloor: 0.05})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func benchSlotResolve(b *testing.B, n, k, workers int) {
	m := benchIndexedModel(b, n)
	rng := rand.New(rand.NewSource(6))
	tx := rng.Perm(n)[:k]
	resolve := m.NewResolverN(workers)
	resolve(tx) // warm the per-resolver scratch buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resolve(tx)
	}
}

// The serial benches pin workers at 1 so their ns/op baselines are
// meaningful on any machine; the parallel variant pins the intra-slot
// fan-out at 4 workers — the ≥3× scaling target on 4+ cores, measured
// against BenchmarkSlotResolve1M.
func BenchmarkSlotResolve100k(b *testing.B)       { benchSlotResolve(b, 100_000, 4096, 1) }
func BenchmarkSlotResolve1M(b *testing.B)         { benchSlotResolve(b, 1_000_000, 8192, 1) }
func BenchmarkSlotResolve1MParallel(b *testing.B) { benchSlotResolve(b, 1_000_000, 8192, 4) }

// BenchmarkSlotResolveDelta100k alternates between two transmission
// sets sharing most of their members — the cross-slot shape the
// incremental grid update serves in O(|delta|) instead of an O(k)
// rebuild. The bench fails if the delta path never engages, so it
// doubles as a regression guard on the TryUpdate precondition.
func BenchmarkSlotResolveDelta100k(b *testing.B) {
	const n, k, overlap = 100_000, 4096, 256
	m := benchIndexedModel(b, n)
	rng := rand.New(rand.NewSource(7))
	base := rng.Perm(n)[:k+overlap]
	txA, txB := base[:k], base[overlap:]
	resolve := m.NewResolverN(1)
	resolve(txA) // warm scratch and seed the grid selection
	resolve(txB)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			resolve(txA)
		} else {
			resolve(txB)
		}
	}
	b.StopTimer()
	if st := m.ResolveStats(); st.GridDeltaUpdates == 0 {
		b.Fatalf("incremental grid path never engaged: %+v", st)
	}
}

// ---- Durability benchmarks: journal appends and engine checkpoints ----

// BenchmarkJournalAppend is the journal's hot path: framing, CRC, and
// write of one unsynced ~100-byte record — the shape of a per-unit
// completion entry, the only record type dynschedd journals at volume.
// Synced records (submit/finish/shutdown) add an fsync on top, which
// dominates; PERFORMANCE.md reports both.
func BenchmarkJournalAppend(b *testing.B) {
	jn, err := journal.Open(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer jn.Close()
	payload := []byte(`{"op":"unit","id":"job-42","index":17,` +
		`"hash":"ec86773c3efd4f5a2251f53890609cec841a5ee96849b1e4735df7c681dda513"}`)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := jn.Append(payload, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint100k is the checkpoint-overhead guard: one op is
// a 100k-slot line simulation capturing a full engine checkpoint
// (RNG draw counts, in-flight packets, process/protocol/model state,
// observer sketches) every 10k slots into a discard sink. Compare
// against the same run with Checkpoint nil to price a single capture;
// PERFORMANCE.md records the measured delta.
func BenchmarkCheckpoint100k(b *testing.B) {
	sc := NewScenario("bench-checkpoint",
		WithModel("identity"), WithTopology("line"), WithNodes(6), WithHops(5),
		WithAlgorithm("full-parallel"), WithLambda(0.3), WithSlots(100_000), WithSeed(1))
	spec := &CheckpointSpec{Every: 10_000, Sink: func(*Checkpoint) error { return nil }}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := sc.Compile()
		if err != nil {
			b.Fatal(err)
		}
		c.Config.Checkpoint = spec
		if _, err := c.Run(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}
