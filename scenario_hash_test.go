package dynsched

import (
	"math"
	"strings"
	"testing"
)

// goldenScenario is the fixed fingerprint fixture. Do not change it:
// the golden test below pins its canonical bytes and hash, which is
// the byte-stability contract the dynschedd result cache keys on.
var goldenScenario = Scenario{
	Name:        "golden",
	Description: "pinned fingerprint fixture",
	Network:     NetworkSpec{Topology: "line", Nodes: 6, Hops: 5},
	Model:       ModelSpec{Kind: "identity", Loss: 0.1},
	Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.35},
	Protocol:    ProtocolSpec{Alg: "full-parallel", Eps: 0.25},
	Sim:         SimSpec{Slots: 50000, Seed: 7, WarmupFrac: 0.1},
}

const (
	goldenCanonical = `{"description":"pinned fingerprint fixture","model":{"kind":"identity","loss":0.1},"name":"golden","network":{"hops":5,"nodes":6,"topology":"line"},"protocol":{"alg":"full-parallel","eps":0.25},"sim":{"seed":7,"slots":50000,"warmupFrac":0.1},"sweep":{},"traffic":{"lambda":0.35,"pattern":"stochastic"}}`
	goldenHash      = "d46f85d47706f25168c125418ae2b706cd88fa9380796999cc5e7b6170085c7c"
)

// TestScenarioHashGolden pins the canonical encoding byte for byte:
// keys sorted, no whitespace, float literals exactly as the standard
// encoder writes them. If this test fails, every previously cached
// result in every dynschedd spill directory is invalidated — that must
// be a deliberate decision, not drift.
func TestScenarioHashGolden(t *testing.T) {
	doc, err := goldenScenario.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(doc) != goldenCanonical {
		t.Errorf("canonical JSON drifted:\n got %s\nwant %s", doc, goldenCanonical)
	}
	if h := goldenScenario.Hash(); h != goldenHash {
		t.Errorf("hash drifted: got %s want %s", h, goldenHash)
	}
}

// TestScenarioHashConstructionInvariant checks that the fingerprint
// only depends on the spec, not on how the value was built: the same
// document parsed from shuffled-key, whitespace-heavy JSON hashes
// identically to the struct literal.
func TestScenarioHashConstructionInvariant(t *testing.T) {
	shuffled := `{
		"sim":      {"warmupFrac": 0.1, "seed": 7, "slots": 50000},
		"protocol": {"eps": 0.25, "alg": "full-parallel"},
		"traffic":  {"pattern": "stochastic", "lambda": 0.35},
		"model":    {"loss": 0.1, "kind": "identity"},
		"network":  {"hops": 5, "topology": "line", "nodes": 6},
		"description": "pinned fingerprint fixture",
		"name":        "golden"
	}`
	parsed, err := ParseScenario([]byte(shuffled))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Hash() != goldenScenario.Hash() {
		t.Errorf("parsed scenario hash %s != literal hash %s", parsed.Hash(), goldenScenario.Hash())
	}

	// The indented EncodeJSON form round-trips to the same fingerprint.
	enc, err := goldenScenario.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(enc)
	if err != nil {
		t.Fatal(err)
	}
	if back.Hash() != goldenHash {
		t.Errorf("EncodeJSON round trip changed the hash: %s", back.Hash())
	}
}

// TestScenarioHashDistinguishes checks that every spec axis feeds the
// fingerprint: changing any single field must change the hash.
func TestScenarioHashDistinguishes(t *testing.T) {
	muts := map[string]func(*Scenario){
		"name":   func(s *Scenario) { s.Name = "other" },
		"nodes":  func(s *Scenario) { s.Network.Nodes = 7 },
		"model":  func(s *Scenario) { s.Model.Kind = "mac" },
		"lambda": func(s *Scenario) { s.Traffic.Lambda = 0.36 },
		"eps":    func(s *Scenario) { s.Protocol.Eps = 0.26 },
		"seed":   func(s *Scenario) { s.Sim.Seed = 8 },
		"slots":  func(s *Scenario) { s.Sim.Slots = 50001 },
	}
	for name, mut := range muts {
		s := goldenScenario
		mut(&s)
		if s.Hash() == goldenHash {
			t.Errorf("mutating %s did not change the hash", name)
		}
	}

	// Execution-only knobs are NOT part of the content address: serial
	// and parallel runs of one spec are bit-identical, so they must
	// share a cache key, and observers are code.
	s := goldenScenario
	s.Sim.Parallel = 8
	s.Observers = []ObserverFactory{func() SimObserver { return BaseObserver{} }}
	if s.Hash() != goldenHash {
		t.Errorf("Sim.Parallel/Observers changed the hash: %s", s.Hash())
	}
}

// TestScenarioValidateNonFinite pins the satellite: NaN/Inf rates and
// sweep values fail Validate with descriptive errors instead of
// failing mid-run (and would otherwise panic Hash, whose canonical
// form cannot encode NaN).
func TestScenarioValidateNonFinite(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"nan lambda", func(s *Scenario) { s.Traffic.Lambda = math.NaN() }, "traffic lambda"},
		{"inf eps", func(s *Scenario) { s.Protocol.Eps = math.Inf(1) }, "protocol eps"},
		{"nan loss", func(s *Scenario) { s.Model.Loss = math.NaN() }, "model loss"},
		{"nan warmup", func(s *Scenario) { s.Sim.WarmupFrac = math.NaN() }, "WarmupFrac"},
		{"nan sweep value", func(s *Scenario) {
			s.Sweep = SweepSpec{Axis: "lambda", Values: []float64{0.1, math.NaN()}}
		}, "sweep value 1"},
		{"inf sweep value", func(s *Scenario) {
			s.Sweep = SweepSpec{Axis: "eps", Values: []float64{math.Inf(-1)}}
		}, "sweep value 0"},
		{"values without axis", func(s *Scenario) {
			s.Sweep = SweepSpec{Values: []float64{0.1}}
		}, "no axis"},
	}
	for _, c := range cases {
		s := NewScenario("valid")
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
}
