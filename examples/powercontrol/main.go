// Powercontrol: Section 6.2's setting — the protocol picks an
// individual transmission power for every packet. The physical layer
// solves for a joint power vector before declaring a slot's
// transmissions successful, and the centralized greedy scheduler of
// Corollary 14 drives the dynamic protocol.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dynsched"
)

func main() {
	// Sixteen sender→receiver pairs scattered in a square.
	rng := rand.New(rand.NewSource(9))
	g := dynsched.NewGraph(32)
	pts := make([]dynsched.Point, 32)
	for i := 0; i < 16; i++ {
		s := dynsched.Point{X: rng.Float64() * 50, Y: rng.Float64() * 50}
		pts[2*i] = s
		pts[2*i+1] = dynsched.Point{X: s.X + 1 + rng.Float64()*2, Y: s.Y}
	}
	if err := g.SetPositions(pts); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		g.MustAddLink(dynsched.NodeID(2*i), dynsched.NodeID(2*i+1))
	}

	model, err := dynsched.NewSINRPowerControl(g, dynsched.DefaultSINRParams())
	if err != nil {
		log.Fatal(err)
	}

	// How many of the 16 pairs admit a joint power vector at once?
	fmt.Printf("single-slot capacity with power control: %d of %d links\n",
		dynsched.SlotCapacity(2, model), g.NumLinks())

	const lambda = 0.01
	proc, err := dynsched.TrafficSingleHop(model, lambda)
	if err != nil {
		log.Fatal(err)
	}
	proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
		Model:  model,
		Alg:    dynsched.GreedyPowerControl{},
		M:      g.NumLinks(),
		Lambda: lambda,
		Eps:    0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 60_000, Seed: 10},
		model, proc, proto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d/%d, stable=%v, mean latency %.0f slots (frame T=%d)\n",
		res.Delivered, res.Injected, res.Verdict.Stable,
		res.Latency.Mean(), proto.Sizing().T)
	fmt.Println("(the scheduler is centralized — Corollary 14 notes no distributed version is known)")
}
