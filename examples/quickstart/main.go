// Quickstart: declare a small multi-hop experiment as a Scenario —
// network, interference model, traffic, protocol and simulation, all in
// one value — and check that queues stay bounded: the paper's stability
// guarantee (Theorem 3) in a dozen lines of API.
package main

import (
	"context"
	"fmt"
	"log"

	"dynsched"
)

func main() {
	// A 6-node line under the packet-routing (identity) model; packets
	// travel the full 5 hops left to right, injected stochastically at
	// 40% of capacity (in interference-measure units per slot).
	sc := dynsched.NewScenario("quickstart",
		dynsched.WithModel("identity"),
		dynsched.WithTopology("line"),
		dynsched.WithNodes(6),
		dynsched.WithHops(5),
		dynsched.WithLambda(0.4),
		dynsched.WithAlgorithm("full-parallel"), // optimal for packet routing
		dynsched.WithSlots(50_000),
		dynsched.WithSeed(42),
	)

	// Compile wires the declarative spec into runnable components; the
	// frame layout is solved from the static algorithm's schedule-length
	// contract.
	c, err := sc.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame length T=%d, capacity J=%d per frame\n",
		c.Protocol.Sizing().T, c.Protocol.Sizing().J)

	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injected %d, delivered %d, still queued %d\n",
		res.Injected, res.Delivered, res.InFlight)
	fmt.Printf("mean latency %.1f slots (%.1f frames for a 5-hop packet)\n",
		res.Latency.Mean(), res.Latency.Mean()/float64(c.Protocol.Sizing().T))
	if res.Verdict.Stable {
		fmt.Println("queues bounded: the protocol is stable at this rate ✓")
	} else {
		fmt.Println("queues growing: UNSTABLE (did you raise λ beyond 1/f(m)?)")
	}
}
