// Quickstart: build a small multi-hop network, wrap a static algorithm
// into the dynamic protocol, inject stochastic traffic, and check that
// queues stay bounded — the paper's stability guarantee (Theorem 3) in
// a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	// A 6-node line; packets travel the full 5 hops left to right.
	g := dynsched.LineNetwork(6, 1)
	model := dynsched.Identity{Links: g.NumLinks()}
	path, ok := dynsched.ShortestPath(g, 0, 5)
	if !ok {
		log.Fatal("no path")
	}

	// Stochastic injection at 40% of each link's capacity (in
	// interference-measure units per slot).
	const lambda = 0.4
	proc, err := dynsched.StochasticAtRate(model, []dynsched.Generator{
		{Choices: []dynsched.PathChoice{{Path: path, P: 0.5}}},
	}, lambda)
	if err != nil {
		log.Fatal(err)
	}

	// The dynamic protocol: frames are sized automatically from the
	// static algorithm's schedule-length contract.
	proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
		Model:  model,
		Alg:    dynsched.FullParallel{}, // optimal for packet routing
		M:      g.NumLinks(),
		Lambda: lambda,
		Eps:    0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("frame length T=%d, capacity J=%d per frame\n",
		proto.Sizing().T, proto.Sizing().J)

	res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 50_000, Seed: 42},
		model, proc, proto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("injected %d, delivered %d, still queued %d\n",
		res.Injected, res.Delivered, res.InFlight)
	fmt.Printf("mean latency %.1f slots (%.1f frames for a 5-hop packet)\n",
		res.Latency.Mean(), res.Latency.Mean()/float64(proto.Sizing().T))
	if res.Verdict.Stable {
		fmt.Println("queues bounded: the protocol is stable at this rate ✓")
	} else {
		fmt.Println("queues growing: UNSTABLE (did you raise λ beyond 1/f(m)?)")
	}
}
