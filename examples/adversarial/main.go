// Adversarial: a (w, λ)-bounded window adversary fires worst-case
// bursts at a relay line. The Section 5 wrapper — a uniformly random
// initial delay below δmax for every packet — smooths any admissible
// pattern back into something the stochastic analysis handles. Running
// the same scenario with the delays disabled shows what they are
// protecting against, and a custom observer does the per-window
// adversary accounting without touching the simulation engine.
package main

import (
	"context"
	"fmt"
	"log"

	"dynsched"
)

// windowPeak tracks the largest number of packets the adversary lands
// in any single window — pluggable per-window accounting.
type windowPeak struct {
	dynsched.BaseObserver
	window int64
	cur    int64
	curWin int64
	peak   int64
}

func (w *windowPeak) OnInject(t int64, pkts []dynsched.Packet) {
	if win := t / w.window; win != w.curWin {
		w.curWin, w.cur = win, 0
	}
	w.cur += int64(len(pkts))
	if w.cur > w.peak {
		w.peak = w.cur
	}
}

func main() {
	const window = 64

	// The adversary injects its entire window budget w·λ as one burst at
	// the start of each window — admissible, but maximally spiky. The
	// whole experiment is one declarative literal.
	base := dynsched.Scenario{
		Name:     "adversarial-line",
		Network:  dynsched.NetworkSpec{Topology: "line", Nodes: 5, Hops: 4},
		Model:    dynsched.ModelSpec{Kind: "identity"},
		Traffic:  dynsched.TrafficSpec{Pattern: "burst", Lambda: 0.4, Window: window},
		Protocol: dynsched.ProtocolSpec{Alg: "full-parallel", Eps: 0.25},
		Sim:      dynsched.SimSpec{Slots: 80_000, Seed: 11},
	}

	for _, delaysOff := range []bool{false, true} {
		sc := base
		sc.Protocol.DisableDelays = delaysOff
		peak := &windowPeak{window: window}
		sc.Observers = []dynsched.ObserverFactory{
			func() dynsched.SimObserver { return peak },
		}

		c, err := sc.Compile()
		if err != nil {
			log.Fatal(err)
		}
		res, err := c.Run(context.Background())
		if err != nil {
			log.Fatal(err)
		}
		mode := "with random delays (δmax=" + fmt.Sprint(c.Protocol.Sizing().DelayMax) + " frames)"
		if delaysOff {
			mode = "delays DISABLED (ablation)"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  delivered %d/%d, failures %d, queue mean %.1f max %.1f, stable=%v\n",
			res.Delivered, res.Injected, c.Protocol.Failures,
			res.Queue.MeanV(), res.Queue.MaxV(), res.Verdict.Stable)
		fmt.Printf("  adversary peak: %d packets in one %d-slot window (budget w·λ = %.0f)\n\n",
			peak.peak, window, float64(window)*sc.Traffic.Lambda)
	}
}
