// Adversarial: a (w, λ)-bounded window adversary fires worst-case
// bursts at a relay line. The Section 5 wrapper — a uniformly random
// initial delay below δmax for every packet — smooths any admissible
// pattern back into something the stochastic analysis handles. Running
// with the delays disabled shows what they are protecting against.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	const (
		hops   = 4
		window = 64
		lambda = 0.4
	)
	g := dynsched.LineNetwork(hops+1, 1)
	model := dynsched.Identity{Links: g.NumLinks()}
	path, ok := dynsched.ShortestPath(g, 0, hops)
	if !ok {
		log.Fatal("no path")
	}

	for _, delaysOff := range []bool{false, true} {
		// The adversary injects its entire window budget w·λ as one
		// burst at the start of each window — admissible, but maximally
		// spiky.
		adv, err := dynsched.NewAdversary(model, []dynsched.Path{path},
			window, lambda, dynsched.TimingBurst)
		if err != nil {
			log.Fatal(err)
		}
		proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
			Model:         model,
			Alg:           dynsched.FullParallel{},
			M:             g.NumLinks(),
			Lambda:        lambda,
			Eps:           0.25,
			Window:        window,
			D:             hops,
			DisableDelays: delaysOff,
			Seed:          3,
		})
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 80_000, Seed: 11},
			model, adv, proto)
		if err != nil {
			log.Fatal(err)
		}
		mode := "with random delays (δmax=" + fmt.Sprint(proto.Sizing().DelayMax) + " frames)"
		if delaysOff {
			mode = "delays DISABLED (ablation)"
		}
		fmt.Printf("%s:\n", mode)
		fmt.Printf("  delivered %d/%d, failures %d, queue mean %.1f max %.1f, stable=%v\n\n",
			res.Delivered, res.Injected, proto.Failures,
			res.Queue.MeanV(), res.Queue.MaxV(), res.Verdict.Stable)
	}
}
