// The dynschedd client example: programmatic submission against a
// running daemon. It composes a Scenario in code, POSTs it to
// /v1/jobs, follows the NDJSON progress stream, and fetches the final
// result document — the same flow a dashboard or batch driver would
// use, built only on the exported dynsched and dynsched/api packages
// so it works verbatim from an external module. Start a daemon first:
//
//	go run ./cmd/dynschedd -addr :8080 &
//	go run ./examples/client -addr http://localhost:8080
//
// Submitting the same spec twice demonstrates the content-addressed
// cache: the second run reports cached=true and returns instantly.
// A second phase submits a 2×2 grid sweep as an execution plan: the
// daemon decomposes it into per-unit simulations, streams "unit"
// completion events, and on resubmission serves every unit from the
// per-unit cache (unitsCached == unitsTotal, zero simulations).
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"

	"dynsched"
	"dynsched/api"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "dynschedd base URL")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "client:", err)
		os.Exit(1)
	}
}

func run(addr string) error {
	sc := dynsched.NewScenario("client-demo",
		dynsched.WithDescription("programmatic submission example"),
		dynsched.WithModel("identity"),
		dynsched.WithTopology("line"),
		dynsched.WithNodes(6), dynsched.WithHops(5),
		dynsched.WithLambda(0.4),
		dynsched.WithAlgorithm("full-parallel"),
		dynsched.WithSlots(20_000), dynsched.WithSeed(42),
	)
	fmt.Printf("spec hash: %s\n", sc.Hash())

	for attempt := 1; attempt <= 2; attempt++ {
		job, err := submit(addr, sc)
		if err != nil {
			return err
		}
		fmt.Printf("submission %d: job %s state=%s cached=%v\n", attempt, job.ID, job.State, job.Cached)
		if !job.Cached {
			if err := follow(addr, job.ID); err != nil {
				return err
			}
		}
		if err := report(addr, job.ID); err != nil {
			return err
		}
	}
	return runSweepDemo(addr)
}

// runSweepDemo submits a grid-sweep plan twice: the first submission
// simulates every unit (streaming per-unit completions), the second is
// served entirely from the cache.
func runSweepDemo(addr string) error {
	sc := dynsched.NewScenario("client-demo-sweep",
		dynsched.WithDescription("grid-sweep plan example"),
		dynsched.WithModel("identity"),
		dynsched.WithTopology("line"),
		dynsched.WithNodes(6), dynsched.WithHops(5),
		dynsched.WithAlgorithm("full-parallel"),
		dynsched.WithSlots(10_000), dynsched.WithSeed(42),
		dynsched.WithSweepAxes(
			dynsched.SweepAxis{Axis: "lambda", Values: []float64{0.2, 0.4}},
			dynsched.SweepAxis{Axis: "eps", Values: []float64{0.25, 0.5}},
		),
	)
	for attempt := 1; attempt <= 2; attempt++ {
		job, err := submit(addr, sc)
		if err != nil {
			return err
		}
		fmt.Printf("sweep submission %d: job %s cached=%v units=%d/%d (%d from cache)\n",
			attempt, job.ID, job.Cached, job.UnitsDone, job.UnitsTotal, job.UnitsCached)
		if !job.Cached {
			if err := follow(addr, job.ID); err != nil {
				return err
			}
		}
		final, err := fetch(addr, job.ID)
		if err != nil {
			return err
		}
		var pr dynsched.PlanResult
		if err := json.Unmarshal(final.Result, &pr); err != nil {
			return err
		}
		for _, pt := range pr.Points {
			fmt.Printf("  point %v: injected=%d mean-latency=%.1f\n",
				pt.Coords, pt.Result.Injected, pt.Result.Latency.Mean())
		}
	}
	return nil
}

// submit POSTs the scenario and decodes the job view.
func submit(addr string, sc dynsched.Scenario) (*api.JobView, error) {
	body, err := json.Marshal(api.SubmitRequest{Scenario: &sc})
	if err != nil {
		return nil, err
	}
	resp, err := http.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("submit: unexpected status %s", resp.Status)
	}
	var job api.JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, err
	}
	return &job, nil
}

// follow streams the job's NDJSON events until the terminal one.
func follow(addr, id string) error {
	resp, err := http.Get(addr + "/v1/jobs/" + id + "/events")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var e api.Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			return err
		}
		switch e.Type {
		case "progress":
			fmt.Printf("  %6d/%d slots  injected=%d delivered=%d in-flight=%d mean-latency=%.1f\n",
				e.Progress.Slots, e.Progress.TotalSlots, e.Progress.Injected,
				e.Progress.Delivered, e.Progress.InFlight, e.Progress.Latency.Mean)
		case "unit":
			fmt.Printf("  unit %d/%d done  coords=%v cached=%v\n",
				e.Unit.UnitsDone, e.Unit.UnitsTotal, e.Unit.Coords, e.Unit.Cached)
		default:
			fmt.Printf("  event: %s\n", e.Type)
		}
	}
	return scanner.Err()
}

// fetch retrieves a finished job's view, result included.
func fetch(addr, id string) (*api.JobView, error) {
	resp, err := http.Get(addr + "/v1/jobs/" + id)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var job api.JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		return nil, err
	}
	if job.State != api.StateDone {
		return nil, fmt.Errorf("job %s ended %s: %s", id, job.State, job.Error)
	}
	return &job, nil
}

// report fetches the finished job and prints the headline metrics.
func report(addr, id string) error {
	job, err := fetch(addr, id)
	if err != nil {
		return err
	}
	var res dynsched.SimResult
	if err := json.Unmarshal(job.Result, &res); err != nil {
		return err
	}
	verdict := "STABLE"
	if !res.Verdict.Stable {
		verdict = "UNSTABLE"
	}
	fmt.Printf("  result: injected=%d delivered=%d mean-latency=%.1f verdict=%s\n",
		res.Injected, res.Delivered, res.Latency.Mean(), verdict)
	return nil
}
