// Radio: the broadcast (radio-network) interference model of Section
// 7.2 — a node receives only when exactly one audible neighbour
// transmits. The library derives the conflict graph automatically, and
// the dynamic protocol runs over it unchanged: the same black-box
// transformation, a different W matrix.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	g := dynsched.GridNetwork(4, 4, 1)
	model, err := dynsched.NewRadioModel(g)
	if err != nil {
		log.Fatal(err)
	}

	// How much parallelism do broadcast semantics leave on this grid?
	capacity := dynsched.SlotCapacity(1, model)
	fmt.Printf("grid with %d links; at most %d can be delivered per slot under radio semantics\n",
		g.NumLinks(), capacity)

	// Convergecast every sensor's reports to the corner sink.
	const lambda = 0.03
	proc, maxHops, err := dynsched.TrafficConvergecast(model, g, 0, lambda)
	if err != nil {
		log.Fatal(err)
	}

	inst := dynsched.NewInstance(g, maxHops)
	proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
		Model:  model,
		Alg:    dynsched.Spread{},
		M:      inst.M(),
		Lambda: lambda,
		Eps:    0.25,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 60_000, Seed: 4},
		model, proc, proto)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delivered %d of %d reports over routes up to %d hops (frame T=%d)\n",
		res.Delivered, res.Injected, maxHops, proto.Sizing().T)
	fmt.Printf("stable: %v, mean latency %.0f slots\n",
		res.Verdict.Stable, res.Latency.Mean())
}
