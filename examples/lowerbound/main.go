// Lowerbound: the Theorem 20 / Figure 1 separation, live. A network of
// m−1 interference-free short links plus one long link that succeeds
// only when everyone else is silent. With a global clock, even/odd TDM
// is effortlessly stable at per-link rate 0.45; with only local clocks,
// no acknowledgement-based protocol can coordinate the silence the long
// link needs, and its queue grows without bound already at the far
// lower rate ln(m)/m.
package main

import (
	"fmt"
	"log"
	"math"

	"dynsched"
)

func main() {
	const m = 64
	model := dynsched.Figure1Model{M: m}
	lam := math.Log(float64(m)) / float64(m)
	fmt.Printf("Figure 1 instance with m=%d links; ln(m)/m = %.3f\n\n", m, lam)

	paths := make([]dynsched.Path, m)
	for e := 0; e < m; e++ {
		paths[e] = dynsched.Path{dynsched.LinkID(e)}
	}
	bernoulli := func(rate float64) dynsched.InjectionProcess {
		gens := make([]dynsched.Generator, m)
		for i := range gens {
			gens[i] = dynsched.Generator{Choices: []dynsched.PathChoice{
				{Path: paths[i], P: rate},
			}}
		}
		proc, err := dynsched.NewStochastic(model, gens)
		if err != nil {
			log.Fatal(err)
		}
		return proc
	}

	// Global clock: TDM at a per-link rate 7× higher than ln(m)/m.
	tdm := dynsched.NewGlobalTDM(model)
	resTDM, err := dynsched.Simulate(dynsched.SimConfig{Slots: 60_000, Seed: 20},
		model, bernoulli(0.45), tdm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global clock, TDM @ λ=0.45:      stable=%v, queue mean %.0f\n",
		resTDM.Verdict.Stable, resTDM.Queue.MeanV())

	// Local clocks: greedy ack-based protocol at the modest rate ln(m)/m.
	local := dynsched.NewLocalGreedy(model)
	resLoc, err := dynsched.Simulate(dynsched.SimConfig{Slots: 60_000, Seed: 20},
		model, bernoulli(lam), local)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("local clocks, greedy @ λ=%.3f:  stable=%v, long-link queue %d (served %d)\n",
		lam, resLoc.Verdict.Stable, local.LongQueueLen(), local.LongSuccesses)

	fmt.Println("\nthe short links never see a failure, so no acknowledgement-based rule")
	fmt.Println("can teach them to pause in unison — the Θ(m/ln m) cost of missing a global clock")
}
