// Sensorgrid: a wireless sensor deployment on a grid under the physical
// (SINR) interference model with uniform transmission powers. Every
// sensor periodically reports to a sink in the corner over multi-hop
// routes; the dynamic protocol keeps the whole convergecast stable.
//
// This is the workload class the paper's introduction motivates: real
// geometry, accumulating interference, multi-hop relaying, and traffic
// arriving over time rather than as a fixed batch — declared here as
// the registered "grid-convergecast" scenario rather than hand-wired
// from the façade's primitives.
package main

import (
	"context"
	"fmt"
	"log"

	"dynsched"
)

func main() {
	sc, ok := dynsched.ScenarioByName("grid-convergecast")
	if !ok {
		log.Fatal("grid-convergecast scenario not registered")
	}

	c, err := sc.Compile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sensors, %d links, frame T=%d\n",
		c.Graph.NumNodes()-1, c.Graph.NumLinks(), c.Protocol.Sizing().T)

	res, err := c.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reports delivered: %d of %d injected\n", res.Delivered, res.Injected)
	fmt.Printf("latency: mean %.0f slots, p99 %.0f slots\n",
		res.Latency.Mean(), res.Latency.Quantile(0.99))
	fmt.Printf("failed transmissions recovered by clean-up phases: %d\n",
		c.Protocol.CleanupDelivered)
	fmt.Printf("stable: %v (queue mean %.1f, max %.1f)\n",
		res.Verdict.Stable, res.Queue.MeanV(), res.Queue.MaxV())
}
