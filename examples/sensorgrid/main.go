// Sensorgrid: a wireless sensor deployment on a grid under the physical
// (SINR) interference model with uniform transmission powers. Every
// sensor periodically reports to a sink in the corner over multi-hop
// routes; the dynamic protocol keeps the whole convergecast stable.
//
// This is the workload class the paper's introduction motivates: real
// geometry, accumulating interference, multi-hop relaying, and traffic
// arriving over time rather than as a fixed batch.
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	const side = 4
	g := dynsched.GridNetwork(side, side, 1)

	// Uniform powers: every sensor radio transmits at the same power —
	// the monotone weight matrix of Section 6.1 applies (Corollary 13).
	prm := dynsched.DefaultSINRParams()
	powers, err := dynsched.SINRPowers(g, prm, dynsched.PowerUniform, 1)
	if err != nil {
		log.Fatal(err)
	}
	model, err := dynsched.NewSINRFixedPower(g, prm, powers, dynsched.WeightMonotone)
	if err != nil {
		log.Fatal(err)
	}

	// Convergecast: every node routes to the sink at node 0.
	rt := dynsched.NewRoutingTable(g)
	var gens []dynsched.Generator
	maxHops := 0
	for v := 1; v < g.NumNodes(); v++ {
		path, ok := rt.Path(dynsched.NodeID(v), 0)
		if !ok {
			log.Fatalf("node %d cannot reach the sink", v)
		}
		if len(path) > maxHops {
			maxHops = len(path)
		}
		gens = append(gens, dynsched.Generator{
			Choices: []dynsched.PathChoice{{Path: path, P: 0.1}},
		})
	}

	// Measure-calibrated rate: λ is in ‖W·F‖∞ units, so interference
	// between reports is already priced in.
	const lambda = 0.02
	proc, err := dynsched.StochasticAtRate(model, gens, lambda)
	if err != nil {
		log.Fatal(err)
	}

	inst := dynsched.NewInstance(g, maxHops)
	proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
		Model:  model,
		Alg:    dynsched.Spread{}, // the delay-spreading SINR scheduler
		M:      inst.M(),
		Lambda: lambda,
		Eps:    0.25,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d sensors, %d links, routes up to %d hops, frame T=%d\n",
		g.NumNodes()-1, g.NumLinks(), maxHops, proto.Sizing().T)

	res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 100_000, Seed: 7},
		model, proc, proto)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("reports delivered: %d of %d injected\n", res.Delivered, res.Injected)
	fmt.Printf("latency: mean %.0f slots, p99 %.0f slots\n",
		res.Latency.Mean(), res.Latency.Quantile(0.99))
	fmt.Printf("failed transmissions recovered by clean-up phases: %d\n",
		proto.CleanupDelivered)
	fmt.Printf("stable: %v (queue mean %.1f, max %.1f)\n",
		res.Verdict.Stable, res.Queue.MeanV(), res.Queue.MaxV())
}
