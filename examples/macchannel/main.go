// Macchannel: the multiple-access channel frontier of Section 7.1.
// Eight stations share one channel; the symmetric acknowledgement-based
// protocol (Algorithm 2) is stable up to a constant fraction of 1/e,
// while stations with IDs running Round-Robin-Withholding push the
// stable rate towards the channel capacity 1 (Corollaries 16 and 18).
package main

import (
	"fmt"
	"log"

	"dynsched"
)

func main() {
	const stations = 8
	model := dynsched.MAC{Links: stations}

	gens := func() []dynsched.Generator {
		out := make([]dynsched.Generator, stations)
		for i := range out {
			out[i] = dynsched.Generator{Choices: []dynsched.PathChoice{
				{Path: dynsched.Path{dynsched.LinkID(i)}, P: 0.5},
			}}
		}
		return out
	}

	probe := func(alg dynsched.StaticAlgorithm, lambda float64) string {
		eps := (1/lambda - 1) / 2
		if eps > 0.3 {
			eps = 0.3
		}
		tMin, err := dynsched.SolveFrameLength(alg, stations, stations, lambda, eps)
		if err != nil {
			return "beyond ceiling"
		}
		t := dynsched.ConcentrationFrameLength(lambda, eps, 4.5)
		if tMin > t {
			t = tMin
		}
		proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
			Model: model, Alg: alg, M: stations,
			Lambda: lambda, Eps: eps, T: t,
		})
		if err != nil {
			return "beyond ceiling"
		}
		proc, err := dynsched.StochasticAtRate(model, gens(), lambda)
		if err != nil {
			log.Fatal(err)
		}
		res, err := dynsched.Simulate(dynsched.SimConfig{
			Slots: 30 * int64(t), Seed: 5,
		}, model, proc, proto)
		if err != nil {
			log.Fatal(err)
		}
		if res.Verdict.Stable {
			return "stable"
		}
		return "unstable"
	}

	fmt.Printf("%-8s  %-18s  %-18s\n", "λ", "symmetric (Alg 2)", "asymmetric (RRW)")
	for _, lambda := range []float64{0.05, 0.15, 0.45, 0.85} {
		fmt.Printf("%-8.2f  %-18s  %-18s\n", lambda,
			probe(dynsched.MACDecay{Delta: 0.5}, lambda),
			probe(dynsched.RoundRobinWithholding{}, lambda))
	}
	fmt.Println("\n(1/e ≈ 0.37 separates the symmetric world from the asymmetric one)")
}
