package dynsched

// The built-in scenario library: one registered Scenario per workload
// family the paper motivates, runnable by name from cmd/dynsched
// (-scenario <name>) and listable via Scenarios(). Each is a plain
// declarative literal — the model for user-defined scenarios.

func init() {
	MustRegisterScenario(Scenario{
		Name:        "line-stochastic",
		Description: "packet routing on a 6-node line at λ=0.4 (the quick-start workload)",
		Network:     NetworkSpec{Topology: "line", Nodes: 6, Hops: 5},
		Model:       ModelSpec{Kind: "identity"},
		Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.4},
		Protocol:    ProtocolSpec{Alg: "full-parallel", Eps: 0.25},
		Sim:         SimSpec{Slots: 50_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "sinr-stochastic",
		Description: "stochastic single-hop traffic on random pairs under fixed linear-power SINR",
		Network:     NetworkSpec{Topology: "pairs", Links: 16, Hops: 1},
		Model:       ModelSpec{Kind: "sinr-linear"},
		Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.05},
		Protocol:    ProtocolSpec{Alg: "spread", Eps: 0.25},
		Sim:         SimSpec{Slots: 40_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "mac-adversarial",
		Description: "burst adversary on an 8-station multiple-access channel served by Round-Robin-Withholding",
		Network:     NetworkSpec{Topology: "mac", Links: 8, Hops: 1},
		Model:       ModelSpec{Kind: "mac"},
		Traffic:     TrafficSpec{Pattern: "burst", Lambda: 0.5, Window: 64},
		Protocol:    ProtocolSpec{Alg: "rrw", Eps: 0.25},
		Sim:         SimSpec{Slots: 40_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "grid-convergecast",
		Description: "sensor-grid convergecast to a corner sink under uniform-power SINR",
		Network:     NetworkSpec{Topology: "grid-convergecast", Nodes: 16},
		Model:       ModelSpec{Kind: "sinr-uniform"},
		Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.02},
		Protocol:    ProtocolSpec{Alg: "spread", Eps: 0.25},
		Sim:         SimSpec{Slots: 50_000, Seed: 7, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "powercontrol-stochastic",
		Description: "protocol-chosen transmission powers (Section 6.2) with the greedy centralized scheduler",
		Network:     NetworkSpec{Topology: "pairs", Links: 12, Hops: 1},
		Model:       ModelSpec{Kind: "sinr-power-control"},
		Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.01},
		Protocol:    ProtocolSpec{Alg: "greedy-pc", Eps: 0.25},
		Sim:         SimSpec{Slots: 30_000, Seed: 10, WarmupFrac: 0.1},
	})

	// The sinr-grid scale family: procedurally generated sender→receiver
	// networks resolved through the spatially-indexed SINR backing. The
	// 4k entry runs everywhere (CI smoke included); the 100k and 1m
	// entries are scale targets for benchmarks and local runs — their
	// per-slot cost follows local density through the far-field
	// aggregation bound, not the link count.
	MustRegisterScenario(Scenario{
		Name:        "sinr-grid-4k",
		Description: "4096 generated uniform pairs under uniform-power SINR on the spatial index (ε=0.02)",
		Network: NetworkSpec{
			Topology:  "generator",
			Links:     4096,
			Hops:      1,
			Generator: &GeneratorSpec{Kind: "uniform", Seed: 42},
		},
		Model:    ModelSpec{Kind: "sinr-uniform", Backing: "indexed", FarFloor: 0.02},
		Traffic:  TrafficSpec{Pattern: "stochastic", Lambda: 0.05},
		Protocol: ProtocolSpec{Alg: "spread", Eps: 0.25},
		Sim:      SimSpec{Slots: 20_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "sinr-grid-100k",
		Description: "100 000 generated clustered pairs under uniform-power SINR on the spatial index (ε=0.05)",
		Network: NetworkSpec{
			Topology:  "generator",
			Links:     100_000,
			Hops:      1,
			Generator: &GeneratorSpec{Kind: "cluster", Seed: 42},
		},
		Model:    ModelSpec{Kind: "sinr-uniform", Backing: "indexed", FarFloor: 0.05},
		Traffic:  TrafficSpec{Pattern: "stochastic", Lambda: 0.05},
		Protocol: ProtocolSpec{Alg: "spread", Eps: 0.25},
		Sim:      SimSpec{Slots: 5_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "sinr-grid-1m",
		Description: "one million generated uniform pairs under uniform-power SINR on the spatial index (ε=0.05)",
		Network: NetworkSpec{
			Topology:  "generator",
			Links:     1_000_000,
			Hops:      1,
			Generator: &GeneratorSpec{Kind: "uniform", Seed: 42},
		},
		Model:    ModelSpec{Kind: "sinr-uniform", Backing: "indexed", FarFloor: 0.05},
		Traffic:  TrafficSpec{Pattern: "stochastic", Lambda: 0.05},
		Protocol: ProtocolSpec{Alg: "spread", Eps: 0.25},
		Sim:      SimSpec{Slots: 1_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(Scenario{
		Name:        "lossy-line",
		Description: "the line workload under 10% independent transmission loss",
		Network:     NetworkSpec{Topology: "line", Nodes: 6, Hops: 5},
		Model:       ModelSpec{Kind: "identity", Loss: 0.1},
		Traffic:     TrafficSpec{Pattern: "stochastic", Lambda: 0.3},
		Protocol:    ProtocolSpec{Alg: "full-parallel", Eps: 0.25},
		Sim:         SimSpec{Slots: 50_000, Seed: 1, WarmupFrac: 0.1},
	})

	MustRegisterScenario(traceReplayScenario())
}

// traceReplayScenario records 512 slots of the line workload's
// stochastic arrivals and embeds them as data: the registered scenario
// carries the concrete packets, not the process that produced them, so
// every run replays the identical byte-for-byte workload. It is the
// in-tree model for replaying captured real traffic (see ParseTrace
// for the NDJSON import path).
func traceReplayScenario() Scenario {
	rec := NewScenario("trace-recording",
		WithTopology("line"), WithNodes(6), WithHops(5),
		WithModel("identity"), WithLambda(0.4),
		WithAlgorithm("full-parallel"),
		WithSlots(512), WithSeed(21),
	)
	c, err := rec.Compile()
	if err != nil {
		panic(err)
	}
	tr := RecordInjections(c.Process, 512, 21)
	return Scenario{
		Name:        "trace-replay",
		Description: "byte-identical replay of a 512-slot recorded line workload",
		Network:     NetworkSpec{Topology: "line", Nodes: 6, Hops: 5},
		Model:       ModelSpec{Kind: "identity"},
		Traffic:     TrafficSpec{Pattern: "trace", Lambda: 0.4, Trace: tr.Records()},
		Protocol:    ProtocolSpec{Alg: "full-parallel", Eps: 0.25},
		Sim:         SimSpec{Slots: 2_000, Seed: 21, WarmupFrac: 0.1},
	}
}
