//go:build race

package dynsched

// raceEnabled reports whether the race detector is compiled in; the
// scale smoke budgets are meaningless under its slowdown.
const raceEnabled = true
