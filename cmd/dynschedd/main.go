// Command dynschedd is the dynsched simulation daemon: it serves the
// scenario library and ad-hoc Scenario specs over an HTTP/JSON API,
// runs submissions on a bounded job queue and worker pool, streams
// live progress as NDJSON, and serves repeated submissions from a
// content-addressed result cache keyed by the canonical spec hash.
//
// Examples:
//
//	dynschedd -addr :8080
//	dynschedd -addr :8080 -workers 4 -queue 128 -cache-dir /var/cache/dynschedd
//
//	curl -s localhost:8080/v1/scenarios
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"name":"sinr-stochastic"}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -sN localhost:8080/v1/jobs/job-1/events
//	curl -s -XDELETE localhost:8080/v1/jobs/job-1
//
// The first SIGINT/SIGTERM stops accepting connections, cancels the
// running simulations (their jobs end as "cancelled") and exits; a
// second signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"dynsched/internal/cli"
	"dynsched/internal/server"
)

func main() {
	so := cli.ServerOptions{Addr: ":8080"}
	cli.RegisterServerFlags(flag.CommandLine, &so)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	srv := server.New(server.Config{
		Workers:       so.Workers,
		QueueDepth:    so.QueueDepth,
		CacheEntries:  so.CacheEntries,
		CacheDir:      so.CacheDir,
		CacheDiskMax:  so.CacheDiskMax,
		ProgressEvery: so.ProgressEvery,
	})
	srv.Start(ctx)

	ln, err := net.Listen("tcp", so.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynschedd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("dynschedd listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dynschedd:", err)
		os.Exit(1)
	}
	srv.Wait()
	log.Printf("dynschedd stopped")
}
