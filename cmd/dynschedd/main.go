// Command dynschedd is the dynsched simulation daemon: it serves the
// scenario library and ad-hoc Scenario specs over an HTTP/JSON API,
// runs submissions on a bounded job queue and worker pool, streams
// live progress as NDJSON, and serves repeated submissions from a
// content-addressed result cache keyed by the canonical spec hash.
//
// With -journal-dir the daemon is durable: job lifecycle events are
// journaled, running simulations checkpoint every -checkpoint-every
// slots, and a restart against the same directories recovers every
// incomplete job — re-simulating only units whose results never
// reached the cache, and resuming interrupted simulations from their
// last checkpoint. The recovered result documents are byte-identical
// to uninterrupted ones.
//
// Every daemon serves Prometheus text metrics at GET /metrics (queue,
// workers, jobs by state, cache tiers, plan units, engine throughput,
// journal traffic — see README §Observability for the catalog) and a
// typed health document at GET /healthz; -pprof additionally serves
// net/http/pprof under /debug/pprof/ for live profiling. The
// dynschedctl companion command renders these surfaces (status,
// watch, doctor).
//
// Examples:
//
//	dynschedd -addr :8080
//	dynschedd -addr :8080 -workers 4 -queue 128 -cache-dir /var/cache/dynschedd
//	dynschedd -addr :8080 -journal-dir /var/lib/dynschedd -cache-dir /var/cache/dynschedd
//	dynschedd -addr :8080 -pprof
//
//	curl -s localhost:8080/v1/scenarios
//	curl -s -XPOST localhost:8080/v1/jobs -d '{"name":"sinr-stochastic"}'
//	curl -s localhost:8080/v1/jobs/job-1
//	curl -sN localhost:8080/v1/jobs/job-1/events
//	curl -s -XDELETE localhost:8080/v1/jobs/job-1
//	curl -s localhost:8080/metrics
//
// The first SIGINT/SIGTERM stops accepting connections and drains:
// running jobs get -shutdown-grace to finish, stragglers are dropped
// (and recovered on the next boot when journaled); a second signal
// kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"dynsched/internal/cli"
	"dynsched/internal/metrics"
	"dynsched/internal/server"
)

func main() {
	so := cli.ServerOptions{Addr: ":8080", ShutdownGrace: 10 * time.Second}
	cli.RegisterServerFlags(flag.CommandLine, &so)
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()

	if so.Join != "" {
		runRunner(ctx, so)
		return
	}

	srv, err := server.New(server.Config{
		Workers:         so.Workers,
		QueueDepth:      so.QueueDepth,
		CacheEntries:    so.CacheEntries,
		CacheDir:        so.CacheDir,
		CacheDiskMax:    so.CacheDiskMax,
		ProgressEvery:   so.ProgressEvery,
		JournalDir:      so.JournalDir,
		CheckpointEvery: so.CheckpointEvery,

		ResolveParallelism: so.ResolveParallelism,
		LeaseExpiry:        so.LeaseExpiry,
		FleetBatchMax:      so.FleetBatchMax,
		FleetLocal:         so.FleetLocal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynschedd:", err)
		os.Exit(1)
	}
	if n := srv.RecoveredJobs(); n > 0 {
		log.Printf("dynschedd recovered %d incomplete job(s) from %s", n, so.JournalDir)
	}
	srv.Start(ctx)

	ln, err := net.Listen("tcp", so.Addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynschedd:", err)
		os.Exit(1)
	}
	handler := srv.Handler()
	if so.Pprof {
		// The service mux knows nothing about pprof; wrap it so the
		// debug surface only exists when the operator asked for it.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
	}
	httpSrv := &http.Server{
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("dynschedd listening on %s", ln.Addr())
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "dynschedd:", err)
		os.Exit(1)
	}
	rep := srv.Drain(so.ShutdownGrace)
	srv.Wait()
	log.Printf("dynschedd stopped: %d running job(s) finished, %d queued and %d running dropped",
		rep.Finished, rep.DroppedQueued, rep.DroppedRunning)
}

// runRunner is the -join mode: a stateless fleet runner leasing
// plan-unit batches from the coordinator, with a minimal /healthz and
// /metrics of its own on -addr (empty = no listener).
func runRunner(ctx context.Context, so cli.ServerOptions) {
	reg := metrics.NewRegistry()
	runner := server.NewRunner(server.RunnerConfig{
		Coordinator: so.Join,
		ID:          so.RunnerID,
		Parallel:    so.Workers,
		BatchMax:    so.FleetBatchMax,
		Registry:    reg,
	})

	var httpSrv *http.Server
	if so.Addr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", reg.Handler())
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			fmt.Fprintf(w, `{"ok":true,"runner":%q,"coordinator":%q,"unitsDone":%d}`+"\n",
				runner.ID(), so.Join, runner.UnitsDone())
		})
		ln, err := net.Listen("tcp", so.Addr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynschedd:", err)
			os.Exit(1)
		}
		httpSrv = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Printf("dynschedd runner listener: %v", err)
			}
		}()
		log.Printf("dynschedd runner %s serving /healthz and /metrics on %s", runner.ID(), ln.Addr())
	}

	log.Printf("dynschedd runner %s joining fleet at %s", runner.ID(), so.Join)
	_ = runner.Run(ctx)
	if httpSrv != nil {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}
	log.Printf("dynschedd runner %s stopped after %d unit(s)", runner.ID(), runner.UnitsDone())
}
