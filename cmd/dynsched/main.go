// Command dynsched runs a single configurable simulation of the dynamic
// scheduling protocol and prints the run's metrics. It is the
// exploration tool; cmd/experiments reproduces the paper's tables.
//
// Workloads are dynsched.Scenario values: compose one from flags, run a
// registered one by name (-scenario, see -list-scenarios), or load a
// JSON scenario document (-spec). With -reps R the scenario is
// replicated R times with derived sub-seeds on a -parallel N worker
// pool, and the across-replication statistics are printed; the numbers
// are bit-identical for every N. Ctrl-C cancels the run and prints the
// partial result.
//
// Sweeps run through the execution planner: a scenario with a sweep
// spec (from -spec, a registered scenario, or the -sweep flag) is
// decomposed into one unit per value — or per cross-product point for
// multi-axis grids — and the units run on the -parallel pool, with
// per-unit completion streamed to stderr. -sweep takes
// "axis=v1,v2,..." clauses separated by ";", e.g.
// "lambda=0.1,0.2;eps=0.25,0.5" for a 2×2 grid over lambda and eps.
//
// Examples:
//
//	dynsched -scenario sinr-stochastic
//	dynsched -scenario mac-adversarial -slots 100000 -json
//	dynsched -model identity -topology line -nodes 8 -hops 6 -lambda 0.4
//	dynsched -model sinr-uniform -links 16 -lambda 0.03 -adversary burst -window 64
//	dynsched -model sinr-linear -links 32 -lambda 0.06 -reps 16 -parallel 8
//	dynsched -scenario line-stochastic -slots 20000 -sweep "lambda=0.1,0.2,0.3,0.4"
//	dynsched -scenario line-stochastic -sweep "lambda=0.2,0.4;eps=0.25,0.5" -json
//	dynsched -spec myscenario.json -queue-csv queue.csv
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dynsched"
	"dynsched/internal/cli"
	"dynsched/internal/plot"
	"dynsched/internal/sim"
)

func main() {
	o := cli.Options{
		Model: "identity", Topology: "auto", Alg: "auto",
		Nodes: 8, Links: 16, Hops: 4,
		Lambda: 0.3, Eps: 0.25, Seed: 1, Window: 64,
	}
	cli.RegisterWorkloadFlags(flag.CommandLine, &o)
	var (
		slots         int64
		queueCSV      string
		reps          int
		parallel      int
		scenarioName  string
		listScenarios bool
		asJSON        bool
	)
	flag.Int64Var(&slots, "slots", 50000, "slots to simulate")
	flag.StringVar(&queueCSV, "queue-csv", "", "write the sampled queue-length series to this CSV file")
	flag.IntVar(&reps, "reps", 1, "independent replications with derived sub-seeds (1 = single run)")
	flag.IntVar(&parallel, "parallel", 0, "worker count for -reps (0 = all CPUs, 1 = serial); results are bit-identical either way")
	flag.StringVar(&scenarioName, "scenario", "", "run a registered scenario by name (see -list-scenarios)")
	flag.BoolVar(&listScenarios, "list-scenarios", false, "list registered scenarios and exit")
	flag.BoolVar(&asJSON, "json", false, "emit the result as JSON instead of the text report")
	spec := flag.String("spec", "", "JSON scenario document; overrides flag-composed workloads")
	sweep := flag.String("sweep", "", `sweep axes as "axis=v1,v2,...[;axis=...]" (lambda, eps, loss, slots); multiple axes form a grid`)
	flag.Parse()

	if listScenarios {
		for _, s := range dynsched.Scenarios() {
			fmt.Printf("%s\t%s\n", s.Name, s.Description)
		}
		return
	}

	sc, err := resolveScenario(o, slots, parallel, scenarioName, *spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsched:", err)
		os.Exit(1)
	}
	if *sweep != "" {
		sw, err := parseSweepFlag(*sweep)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(2)
		}
		sc.Sweep = sw
	}

	ctx, stop := cli.SignalContext()
	defer stop()

	switch {
	case len(sc.Sweep.Axes) > 0 || sc.Sweep.Axis != "":
		if reps > 1 || queueCSV != "" {
			fmt.Fprintln(os.Stderr, "dynsched: a sweep cannot be combined with -reps or -queue-csv")
			os.Exit(2)
		}
		err = runSweep(ctx, sc, asJSON)
	case reps > 1:
		if queueCSV != "" {
			fmt.Fprintln(os.Stderr, "dynsched: -queue-csv records a single run's series; it cannot be combined with -reps")
			os.Exit(2)
		}
		err = runReplicated(ctx, sc, reps, asJSON)
	default:
		err = run(ctx, sc, queueCSV, asJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "dynsched:", err)
		os.Exit(1)
	}
}

// parseSweepFlag parses the -sweep grammar: semicolon-separated
// "axis=v1,v2,..." clauses. A single clause is the legacy 1-D sweep;
// several form a grid.
func parseSweepFlag(s string) (dynsched.SweepSpec, error) {
	var axes []dynsched.SweepAxis
	for _, clause := range strings.Split(s, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		axis, list, ok := strings.Cut(clause, "=")
		if !ok {
			return dynsched.SweepSpec{}, fmt.Errorf("-sweep clause %q is not axis=v1,v2,...", clause)
		}
		var values []float64
		for _, f := range strings.Split(list, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return dynsched.SweepSpec{}, fmt.Errorf("-sweep value %q on axis %q: %v", f, axis, err)
			}
			values = append(values, v)
		}
		axes = append(axes, dynsched.SweepAxis{Axis: strings.TrimSpace(axis), Values: values})
	}
	if len(axes) == 0 {
		return dynsched.SweepSpec{}, fmt.Errorf("-sweep %q declares no axes", s)
	}
	if len(axes) == 1 {
		return dynsched.SweepSpec{Axis: axes[0].Axis, Values: axes[0].Values}, nil
	}
	return dynsched.SweepSpec{Axes: axes}, nil
}

// runSweep decomposes the sweep into its execution plan, streams
// per-unit completion to stderr, and prints the point table (or the
// full PlanResult document with -json). Cancellation reports the
// completed points as a partial result.
func runSweep(ctx context.Context, sc dynsched.Scenario, asJSON bool) error {
	p, err := sc.Plan(1)
	if err != nil {
		return err
	}
	pr, runErr := p.Execute(ctx, dynsched.ExecOptions{
		OnUnit: func(u dynsched.PlanUnit, cached bool, err error, prog dynsched.PlanProgress) {
			if err != nil {
				return
			}
			fmt.Fprintf(os.Stderr, "dynsched: unit %d/%d done (%s)\n", prog.Done, prog.Total, u.Label())
		},
	})
	if runErr != nil && pr.UnitsDone == 0 {
		return runErr
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dynsched: %v — reporting the partial result\n", runErr)
	}
	if asJSON {
		if err := printJSON(pr); err != nil {
			return err
		}
		return runErr
	}
	fmt.Printf("scenario:    %s\n", sc.Name)
	fmt.Printf("plan:        %s, %d units (%d completed), hash %s\n", pr.Kind, pr.UnitsTotal, pr.UnitsDone, pr.Hash[:12])
	fmt.Printf("%-28s  %10s  %10s  %10s  %10s  %s\n", "unit", "injected", "delivered", "mean queue", "mean lat", "verdict")
	for _, pt := range pr.Points {
		label := fmt.Sprintf("%s=%v", pt.Axis, pt.Value)
		if len(pt.Coords) > 0 {
			parts := make([]string, len(pt.Coords))
			for i, c := range pt.Coords {
				parts[i] = fmt.Sprintf("%s=%v", c.Axis, c.Value)
			}
			label = strings.Join(parts, ",")
		}
		verdict := "stable"
		if !pt.Result.Verdict.Stable {
			verdict = "UNSTABLE"
		}
		fmt.Printf("%-28s  %10d  %10d  %10.1f  %10.1f  %s\n",
			label, pt.Result.Injected, pt.Result.Delivered,
			pt.Result.Queue.MeanV(), pt.Result.Latency.Mean(), verdict)
	}
	return runErr
}

// resolveScenario builds the scenario to run: a registered one by name,
// a JSON document, or the flag-composed workload. Explicitly set
// -slots/-seed/-lambda/-eps flags override a named or file scenario.
func resolveScenario(o cli.Options, slots int64, parallel int, name, specPath string) (dynsched.Scenario, error) {
	fromFlags := dynsched.Scenario{
		Name:        "cli",
		Description: "composed from cmd/dynsched flags",
		Network:     dynsched.NetworkSpec{Topology: o.Topology, Nodes: o.Nodes, Links: o.Links, Hops: o.Hops},
		Model:       dynsched.ModelSpec{Kind: o.Model, Loss: o.LossP},
		Traffic:     trafficSpec(o),
		Protocol:    dynsched.ProtocolSpec{Alg: o.Alg, Eps: o.Eps, Frame: o.Frame, DisableDelays: o.DisableDelays},
		Sim:         dynsched.SimSpec{Slots: slots, Seed: o.Seed, WarmupFrac: 0.1, Parallel: parallel},
	}
	switch {
	case name != "" && specPath != "":
		return dynsched.Scenario{}, errors.New("-scenario and -spec are mutually exclusive")
	case name != "":
		sc, ok := dynsched.ScenarioByName(name)
		if !ok {
			return dynsched.Scenario{}, fmt.Errorf("unknown scenario %q (see -list-scenarios)", name)
		}
		return applyOverrides(sc, fromFlags, parallel), nil
	case specPath != "":
		data, err := os.ReadFile(specPath)
		if err != nil {
			return dynsched.Scenario{}, err
		}
		sc, err := dynsched.ParseScenario(data)
		if err != nil {
			return dynsched.Scenario{}, err
		}
		return applyOverrides(sc, fromFlags, parallel), nil
	default:
		return fromFlags, nil
	}
}

func trafficSpec(o cli.Options) dynsched.TrafficSpec {
	pattern := "stochastic"
	if o.Adv != "" {
		pattern = o.Adv
	}
	return dynsched.TrafficSpec{Pattern: pattern, Lambda: o.Lambda, Window: o.Window}
}

// applyOverrides lets every explicitly set flag override a loaded
// scenario, so `-scenario X -slots 1000 -lambda 0.5` works as expected
// and no flag is silently ignored.
func applyOverrides(sc, fromFlags dynsched.Scenario, parallel int) dynsched.Scenario {
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	apply := map[string]func(){
		"model":     func() { sc.Model.Kind = fromFlags.Model.Kind },
		"loss":      func() { sc.Model.Loss = fromFlags.Model.Loss },
		"topology":  func() { sc.Network.Topology = fromFlags.Network.Topology },
		"nodes":     func() { sc.Network.Nodes = fromFlags.Network.Nodes },
		"links":     func() { sc.Network.Links = fromFlags.Network.Links },
		"hops":      func() { sc.Network.Hops = fromFlags.Network.Hops },
		"lambda":    func() { sc.Traffic.Lambda = fromFlags.Traffic.Lambda },
		"adversary": func() { sc.Traffic.Pattern = fromFlags.Traffic.Pattern },
		"window":    func() { sc.Traffic.Window = fromFlags.Traffic.Window },
		"alg":       func() { sc.Protocol.Alg = fromFlags.Protocol.Alg },
		"eps":       func() { sc.Protocol.Eps = fromFlags.Protocol.Eps },
		"frame":     func() { sc.Protocol.Frame = fromFlags.Protocol.Frame },
		"no-delays": func() { sc.Protocol.DisableDelays = fromFlags.Protocol.DisableDelays },
		"slots":     func() { sc.Sim.Slots = fromFlags.Sim.Slots },
		"seed":      func() { sc.Sim.Seed = fromFlags.Sim.Seed },
		"parallel":  func() { sc.Sim.Parallel = parallel },
	}
	for name, fn := range apply {
		if set[name] {
			fn()
		}
	}
	return sc
}

// runReplicated fans `reps` independent runs across the worker pool and
// prints per-replication lines plus the across-replication summary.
// Cancellation reports the completed replications as a partial result.
func runReplicated(ctx context.Context, sc dynsched.Scenario, reps int, asJSON bool) error {
	res, runErr := sc.Replicate(ctx, reps)
	if runErr != nil && (res == nil || len(res.Runs) == 0) {
		return runErr
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dynsched: %v — reporting the partial result\n", runErr)
	}
	if asJSON {
		if err := printJSON(res); err != nil {
			return err
		}
		return runErr
	}
	// Compiled only for the header's protocol/process names.
	c, err := sc.Compile()
	if err != nil {
		return err
	}
	fmt.Printf("scenario:    %s\n", sc.Name)
	fmt.Printf("protocol:    %s  injection: %s  λ=%.4f\n",
		c.Protocol.Name(), c.Process.Name(), sc.Traffic.Lambda)
	fmt.Printf("runs:        %d × %d slots, %d workers\n", reps, sc.Sim.Slots, sim.Workers(sc.Sim.Parallel, reps))
	fmt.Printf("%4s  %20s  %10s  %10s  %10s  %s\n", "rep", "seed", "mean queue", "max queue", "mean lat", "verdict")
	for _, r := range res.Runs {
		verdict := "stable"
		if !r.Stable {
			verdict = "UNSTABLE"
		}
		fmt.Printf("%4d  %20d  %10.1f  %10.1f  %10.1f  %s\n",
			r.Rep, sim.SubSeed(sc.Sim.Seed, r.Rep), r.MeanQ, r.MaxQ, r.MeanLat, verdict)
	}
	fmt.Printf("queue:       mean %.2f ± %.2f across replications\n", res.MeanQ.Mean(), res.MeanQ.Std())
	fmt.Printf("latency:     mean %.2f ± %.2f across replications\n", res.MeanLat.Mean(), res.MeanLat.Std())
	verdict := "STABLE"
	if !res.StableAll {
		verdict = "UNSTABLE (at least one replication)"
	}
	fmt.Printf("verdict:     %s\n", verdict)
	return runErr
}

func run(ctx context.Context, sc dynsched.Scenario, queueCSV string, asJSON bool) error {
	c, err := sc.Compile()
	if err != nil {
		return err
	}
	res, runErr := c.Run(ctx)
	if runErr != nil && res == nil {
		return runErr
	}
	if runErr != nil {
		fmt.Fprintf(os.Stderr, "dynsched: %v — reporting the partial result\n", runErr)
	}
	if asJSON {
		if err := printJSON(res); err != nil {
			return err
		}
		return runErr
	}

	s := c.Protocol.Sizing()
	fmt.Printf("scenario:    %s\n", sc.Name)
	fmt.Printf("network:     %d nodes, %d links, model=%s\n",
		c.Graph.NumNodes(), c.Graph.NumLinks(), c.Model.Name())
	if d := c.Diagnostics; d != nil {
		line := fmt.Sprintf("model table: backing=%s (dense threshold %d links)", d.Backing, d.DenseMaxLinks)
		if d.FarFloor > 0 {
			line += fmt.Sprintf("  far-field floor ε=%g", d.FarFloor)
		}
		if d.CellSize > 0 {
			line += fmt.Sprintf("  cell=%g", d.CellSize)
		}
		fmt.Println(line)
	}
	fmt.Printf("protocol:    %s  frame T=%d  J=%d  main=%d  cleanup=%d  δmax=%d\n",
		c.Protocol.Name(), s.T, s.J, s.MainBudget, s.CleanupBudget, s.DelayMax)
	fmt.Printf("injection:   %s  λ=%.4f\n", c.Process.Name(), c.Process.Rate())
	fmt.Printf("run:         %d slots (%d frames)\n", res.Slots, c.Protocol.FramesRun)
	fmt.Printf("packets:     injected=%d delivered=%d in-flight=%d\n",
		res.Injected, res.Delivered, res.InFlight)
	fmt.Printf("failures:    %d failed, %d clean-up hops, %d still buffered, potential Φ=%d\n",
		c.Protocol.Failures, c.Protocol.CleanupDelivered, c.Protocol.FailedQueueLen(), c.Protocol.Potential())
	fmt.Printf("latency:     %s\n", res.Latency)
	fmt.Printf("queue:       mean=%.1f max=%.1f\n", res.Queue.MeanV(), res.Queue.MaxV())
	fmt.Printf("fairness:    %.3f (Jain index over per-link service)\n", res.FairnessIndex())
	fmt.Println(plot.Series("queue  ", &res.Queue, 60))
	fmt.Println(plot.Histogram("latency", res.Latency, 60))
	verdict := "STABLE"
	if !res.Verdict.Stable {
		verdict = "UNSTABLE"
	}
	fmt.Printf("verdict:     %s (tail growth %.1f over mean %.1f)\n",
		verdict, res.Verdict.Growth, res.Verdict.TailMean)

	if queueCSV != "" {
		f, err := os.Create(queueCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Queue.WriteCSV(f, "slot", "queue"); err != nil {
			return err
		}
		fmt.Printf("queue series written to %s (%d samples)\n", queueCSV, res.Queue.Len())
	}
	if res.ProtocolErrors > 0 {
		return fmt.Errorf("%d protocol errors — this is a bug", res.ProtocolErrors)
	}
	return runErr
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
