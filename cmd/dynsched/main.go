// Command dynsched runs a single configurable simulation of the dynamic
// scheduling protocol and prints the run's metrics. It is the
// exploration tool; cmd/experiments reproduces the paper's tables.
//
// Examples:
//
//	dynsched -model identity -topology line -nodes 8 -hops 6 -lambda 0.4
//	dynsched -model sinr-linear -links 32 -lambda 0.08 -slots 100000
//	dynsched -model mac -links 8 -alg rrw -lambda 0.7
//	dynsched -model sinr-uniform -links 16 -lambda 0.03 -adversary burst -window 64
//	dynsched -model identity -lambda 0.4 -queue-csv queue.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"dynsched/internal/cli"
	"dynsched/internal/plot"
	"dynsched/internal/sim"
)

func main() {
	var (
		o        cli.Options
		slots    int64
		queueCSV string
	)
	flag.StringVar(&o.Model, "model", "identity", "interference model: identity, mac, sinr-linear, sinr-uniform, sinr-power-control")
	flag.StringVar(&o.Topology, "topology", "auto", "topology: line, grid, pairs, nested, mac, auto")
	flag.StringVar(&o.Alg, "alg", "auto", "static algorithm: full-parallel, decay, decay-adaptive, spread, densify, trivial, mac-decay, rrw, backoff, greedy-pc, auto")
	flag.IntVar(&o.Nodes, "nodes", 8, "node count (line/grid topologies)")
	flag.IntVar(&o.Links, "links", 16, "link count (pairs/nested/mac topologies)")
	flag.IntVar(&o.Hops, "hops", 4, "path length for multi-hop workloads")
	flag.Float64Var(&o.Lambda, "lambda", 0.3, "injection rate in measure units per slot")
	flag.Float64Var(&o.Eps, "eps", 0.25, "protocol headroom ε")
	flag.Int64Var(&slots, "slots", 50000, "slots to simulate")
	flag.Int64Var(&o.Seed, "seed", 1, "random seed")
	flag.StringVar(&o.Adv, "adversary", "", "adversarial timing: burst, spread, sawtooth, rotating (empty = stochastic)")
	flag.IntVar(&o.Window, "window", 64, "adversary window length w")
	flag.Float64Var(&o.LossP, "loss", 0, "independent per-transmission loss probability")
	flag.StringVar(&queueCSV, "queue-csv", "", "write the sampled queue-length series to this CSV file")
	spec := flag.String("spec", "", "JSON run specification; file values override flags")
	flag.Parse()

	if *spec != "" {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(1)
		}
		o, err = cli.ParseSpec(data, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(1)
		}
	}

	if err := run(o, slots, queueCSV); err != nil {
		fmt.Fprintln(os.Stderr, "dynsched:", err)
		os.Exit(1)
	}
}

func run(o cli.Options, slots int64, queueCSV string) error {
	w, err := cli.Build(o)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{Slots: slots, Seed: o.Seed, WarmupFrac: 0.1},
		w.Model, w.Process, w.Protocol)
	if err != nil {
		return err
	}

	s := w.Protocol.Sizing()
	fmt.Printf("network:     %d nodes, %d links, m=%d, model=%s\n",
		w.Graph.NumNodes(), w.Graph.NumLinks(), w.M, w.Model.Name())
	fmt.Printf("protocol:    %s  frame T=%d  J=%d  main=%d  cleanup=%d  δmax=%d\n",
		w.Protocol.Name(), s.T, s.J, s.MainBudget, s.CleanupBudget, s.DelayMax)
	fmt.Printf("injection:   %s  λ=%.4f\n", w.Process.Name(), w.Process.Rate())
	fmt.Printf("run:         %d slots (%d frames)\n", res.Slots, w.Protocol.FramesRun)
	fmt.Printf("packets:     injected=%d delivered=%d in-flight=%d\n",
		res.Injected, res.Delivered, res.InFlight)
	fmt.Printf("failures:    %d failed, %d clean-up hops, %d still buffered, potential Φ=%d\n",
		w.Protocol.Failures, w.Protocol.CleanupDelivered, w.Protocol.FailedQueueLen(), w.Protocol.Potential())
	fmt.Printf("latency:     %s\n", res.Latency)
	fmt.Printf("queue:       mean=%.1f max=%.1f\n", res.Queue.MeanV(), res.Queue.MaxV())
	fmt.Printf("fairness:    %.3f (Jain index over per-link service)\n", res.FairnessIndex())
	fmt.Println(plot.Series("queue  ", &res.Queue, 60))
	fmt.Println(plot.Histogram("latency", res.Latency, 60))
	verdict := "STABLE"
	if !res.Verdict.Stable {
		verdict = "UNSTABLE"
	}
	fmt.Printf("verdict:     %s (tail growth %.1f over mean %.1f)\n",
		verdict, res.Verdict.Growth, res.Verdict.TailMean)

	if queueCSV != "" {
		f, err := os.Create(queueCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Queue.WriteCSV(f, "slot", "queue"); err != nil {
			return err
		}
		fmt.Printf("queue series written to %s (%d samples)\n", queueCSV, res.Queue.Len())
	}
	if res.ProtocolErrors > 0 {
		return fmt.Errorf("%d protocol errors — this is a bug", res.ProtocolErrors)
	}
	return nil
}
