// Command dynsched runs a single configurable simulation of the dynamic
// scheduling protocol and prints the run's metrics. It is the
// exploration tool; cmd/experiments reproduces the paper's tables.
// With -reps R the run is replicated R times with derived sub-seeds on
// a -parallel N worker pool, and the across-replication statistics are
// printed; the numbers are bit-identical for every N.
//
// Examples:
//
//	dynsched -model identity -topology line -nodes 8 -hops 6 -lambda 0.4
//	dynsched -model sinr-linear -links 32 -lambda 0.08 -slots 100000
//	dynsched -model mac -links 8 -alg rrw -lambda 0.7
//	dynsched -model sinr-uniform -links 16 -lambda 0.03 -adversary burst -window 64
//	dynsched -model identity -lambda 0.4 -queue-csv queue.csv
//	dynsched -model sinr-linear -links 32 -lambda 0.06 -reps 16 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"

	"dynsched/internal/cli"
	"dynsched/internal/plot"
	"dynsched/internal/sim"
)

func main() {
	var (
		o        cli.Options
		slots    int64
		queueCSV string
		reps     int
		parallel int
	)
	flag.StringVar(&o.Model, "model", "identity", "interference model: identity, mac, sinr-linear, sinr-uniform, sinr-power-control")
	flag.StringVar(&o.Topology, "topology", "auto", "topology: line, grid, pairs, nested, mac, auto")
	flag.StringVar(&o.Alg, "alg", "auto", "static algorithm: full-parallel, decay, decay-adaptive, spread, densify, trivial, mac-decay, rrw, backoff, greedy-pc, auto")
	flag.IntVar(&o.Nodes, "nodes", 8, "node count (line/grid topologies)")
	flag.IntVar(&o.Links, "links", 16, "link count (pairs/nested/mac topologies)")
	flag.IntVar(&o.Hops, "hops", 4, "path length for multi-hop workloads")
	flag.Float64Var(&o.Lambda, "lambda", 0.3, "injection rate in measure units per slot")
	flag.Float64Var(&o.Eps, "eps", 0.25, "protocol headroom ε")
	flag.Int64Var(&slots, "slots", 50000, "slots to simulate")
	flag.Int64Var(&o.Seed, "seed", 1, "random seed")
	flag.StringVar(&o.Adv, "adversary", "", "adversarial timing: burst, spread, sawtooth, rotating (empty = stochastic)")
	flag.IntVar(&o.Window, "window", 64, "adversary window length w")
	flag.Float64Var(&o.LossP, "loss", 0, "independent per-transmission loss probability")
	flag.StringVar(&queueCSV, "queue-csv", "", "write the sampled queue-length series to this CSV file")
	flag.IntVar(&reps, "reps", 1, "independent replications with derived sub-seeds (1 = single run)")
	flag.IntVar(&parallel, "parallel", 0, "worker count for -reps (0 = all CPUs, 1 = serial); results are bit-identical either way")
	spec := flag.String("spec", "", "JSON run specification; file values override flags")
	flag.Parse()

	if *spec != "" {
		data, err := os.ReadFile(*spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(1)
		}
		o, err = cli.ParseSpec(data, o)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(1)
		}
	}

	if reps > 1 {
		if queueCSV != "" {
			fmt.Fprintln(os.Stderr, "dynsched: -queue-csv records a single run's series; it cannot be combined with -reps")
			os.Exit(2)
		}
		if err := runReplicated(o, slots, reps, parallel); err != nil {
			fmt.Fprintln(os.Stderr, "dynsched:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(o, slots, queueCSV); err != nil {
		fmt.Fprintln(os.Stderr, "dynsched:", err)
		os.Exit(1)
	}
}

// runReplicated fans `reps` independent runs across the worker pool and
// prints per-replication lines plus the across-replication summary.
func runReplicated(o cli.Options, slots int64, reps, parallel int) error {
	var name, procName string
	res, err := sim.Replicate(
		sim.Config{Slots: slots, Seed: o.Seed, WarmupFrac: 0.1, Parallel: parallel},
		reps,
		func(rep int, seed int64) (sim.RunInput, error) {
			ro := o
			ro.Seed = seed
			w, err := cli.Build(ro)
			if err != nil {
				return sim.RunInput{}, err
			}
			if rep == 0 {
				name, procName = w.Protocol.Name(), w.Process.Name()
			}
			return sim.RunInput{Model: w.Model, Process: w.Process, Protocol: w.Protocol}, nil
		})
	if err != nil {
		return err
	}
	fmt.Printf("protocol:    %s  injection: %s  λ=%.4f\n", name, procName, o.Lambda)
	fmt.Printf("runs:        %d × %d slots, %d workers\n", reps, slots, sim.Workers(parallel, reps))
	fmt.Printf("%4s  %20s  %10s  %10s  %10s  %s\n", "rep", "seed", "mean queue", "max queue", "mean lat", "verdict")
	for _, r := range res.Runs {
		verdict := "stable"
		if !r.Stable {
			verdict = "UNSTABLE"
		}
		fmt.Printf("%4d  %20d  %10.1f  %10.1f  %10.1f  %s\n",
			r.Rep, sim.SubSeed(o.Seed, r.Rep), r.MeanQ, r.MaxQ, r.MeanLat, verdict)
	}
	fmt.Printf("queue:       mean %.2f ± %.2f across replications\n", res.MeanQ.Mean(), res.MeanQ.Std())
	fmt.Printf("latency:     mean %.2f ± %.2f across replications\n", res.MeanLat.Mean(), res.MeanLat.Std())
	verdict := "STABLE"
	if !res.StableAll {
		verdict = "UNSTABLE (at least one replication)"
	}
	fmt.Printf("verdict:     %s\n", verdict)
	return nil
}

func run(o cli.Options, slots int64, queueCSV string) error {
	w, err := cli.Build(o)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{Slots: slots, Seed: o.Seed, WarmupFrac: 0.1},
		w.Model, w.Process, w.Protocol)
	if err != nil {
		return err
	}

	s := w.Protocol.Sizing()
	fmt.Printf("network:     %d nodes, %d links, m=%d, model=%s\n",
		w.Graph.NumNodes(), w.Graph.NumLinks(), w.M, w.Model.Name())
	fmt.Printf("protocol:    %s  frame T=%d  J=%d  main=%d  cleanup=%d  δmax=%d\n",
		w.Protocol.Name(), s.T, s.J, s.MainBudget, s.CleanupBudget, s.DelayMax)
	fmt.Printf("injection:   %s  λ=%.4f\n", w.Process.Name(), w.Process.Rate())
	fmt.Printf("run:         %d slots (%d frames)\n", res.Slots, w.Protocol.FramesRun)
	fmt.Printf("packets:     injected=%d delivered=%d in-flight=%d\n",
		res.Injected, res.Delivered, res.InFlight)
	fmt.Printf("failures:    %d failed, %d clean-up hops, %d still buffered, potential Φ=%d\n",
		w.Protocol.Failures, w.Protocol.CleanupDelivered, w.Protocol.FailedQueueLen(), w.Protocol.Potential())
	fmt.Printf("latency:     %s\n", res.Latency)
	fmt.Printf("queue:       mean=%.1f max=%.1f\n", res.Queue.MeanV(), res.Queue.MaxV())
	fmt.Printf("fairness:    %.3f (Jain index over per-link service)\n", res.FairnessIndex())
	fmt.Println(plot.Series("queue  ", &res.Queue, 60))
	fmt.Println(plot.Histogram("latency", res.Latency, 60))
	verdict := "STABLE"
	if !res.Verdict.Stable {
		verdict = "UNSTABLE"
	}
	fmt.Printf("verdict:     %s (tail growth %.1f over mean %.1f)\n",
		verdict, res.Verdict.Growth, res.Verdict.TailMean)

	if queueCSV != "" {
		f, err := os.Create(queueCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := res.Queue.WriteCSV(f, "slot", "queue"); err != nil {
			return err
		}
		fmt.Printf("queue series written to %s (%d samples)\n", queueCSV, res.Queue.Len())
	}
	if res.ProtocolErrors > 0 {
		return fmt.Errorf("%d protocol errors — this is a bug", res.ProtocolErrors)
	}
	return nil
}
