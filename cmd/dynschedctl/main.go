// Command dynschedctl is the dynschedd operator console: inspect a
// running daemon, follow jobs live, submit work, and diagnose common
// operational problems — the CLI face of the /healthz, /v1 and
// /metrics surfaces.
//
//	dynschedctl [-addr host:port] status
//	dynschedctl [-addr host:port] watch <jobID>
//	dynschedctl [-addr host:port] submit '<submission JSON>'   (or - for stdin)
//	dynschedctl [-addr host:port] fleet
//	dynschedctl [-addr host:port] doctor
//
// status renders queue/worker occupancy, jobs by state, cache tiers,
// throughput counters and the journal's durability state. watch
// follows a job's event stream with a progress bar (slot-level for
// single runs, unit-level for plans) and reports elided events when
// the stream was thinned. submit posts a submission document — the
// same JSON POST /v1/jobs takes — and with -watch follows it to
// completion. fleet renders the coordinator's runner roster: lease
// occupancy, merge and re-grant counters, and a per-runner throughput
// table. doctor applies health heuristics (saturated queue, cold or
// thrashing cache, stuck jobs, torn journal, starved or thrashing
// fleet, straggling runners) and exits 0 when healthy, 1 with
// warnings, 2 when the daemon is unreachable.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"dynsched/internal/cli"
	"dynsched/internal/ctl"
)

func usage(w io.Writer) {
	fmt.Fprintln(w, "usage: dynschedctl [-addr host:port] <status|watch|submit|doctor> [args]")
	flag.PrintDefaults()
}

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "dynschedd address (host:port or URL)")
	watchSubmitted := flag.Bool("watch", false, "after submit: follow the job to completion")
	sampleGap := flag.Duration("sample-gap", 2*time.Second, "doctor: gap between job-list samples for stuck-job detection")
	flag.Usage = func() { usage(os.Stderr) }
	flag.Parse()

	ctx, stop := cli.SignalContext()
	defer stop()
	c := ctl.NewClient(*addr)

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "dynschedctl:", err)
		os.Exit(1)
	}
	switch cmd, args := flag.Arg(0), flag.Args(); cmd {
	case "status":
		if err := ctl.Status(ctx, c, os.Stdout); err != nil {
			fail(err)
		}
	case "watch":
		if len(args) != 2 {
			fail(fmt.Errorf("watch needs exactly one job ID"))
		}
		if err := ctl.Watch(ctx, c, os.Stdout, args[1]); err != nil {
			fail(err)
		}
	case "submit":
		// Accept -watch on either side of the command word.
		rest := args[1:]
		for len(rest) > 0 && rest[0] == "-watch" {
			*watchSubmitted = true
			rest = rest[1:]
		}
		if len(rest) != 1 {
			fail(fmt.Errorf(`submit needs a submission document ('{"name":...}' or - for stdin)`))
		}
		body := []byte(rest[0])
		if rest[0] == "-" {
			var err error
			if body, err = io.ReadAll(os.Stdin); err != nil {
				fail(err)
			}
		}
		view, cached, err := c.Submit(ctx, body)
		if err != nil {
			fail(err)
		}
		if cached {
			fmt.Printf("%s done (served from cache)\n", view.ID)
			return
		}
		fmt.Printf("%s %s\n", view.ID, view.State)
		if *watchSubmitted {
			if err := ctl.Watch(ctx, c, os.Stdout, view.ID); err != nil {
				fail(err)
			}
		}
	case "fleet":
		if err := ctl.Fleet(ctx, c, os.Stdout); err != nil {
			fail(err)
		}
	case "doctor":
		os.Exit(ctl.Doctor(ctx, c, os.Stdout, *sampleGap))
	case "":
		usage(os.Stderr)
		os.Exit(2)
	default:
		fail(fmt.Errorf("unknown command %q (want status, watch, submit, fleet or doctor)", cmd))
	}
}
