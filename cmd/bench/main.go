// Command bench runs the repository's hot-path micro-benchmarks
// (bench_test.go and the per-package benches under internal/) with
// -benchmem, parses the results, and either writes them as a JSON
// baseline or compares them against a committed one.
//
// Refresh the committed baseline (-scale adds the heavy 1M-link and
// fleet-scaling benches, which belong in the baseline but not in CI
// smoke):
//
//	go run ./cmd/bench -benchtime 100x -scale -out BENCH_baseline.json
//
// CI regression smoke (fails on ns/op > factor× baseline or on
// allocation-count regressions, which are deterministic):
//
//	go run ./cmd/bench -benchtime 100x -compare BENCH_baseline.json
//
// The ns/op threshold is deliberately generous (default 2×): at smoke
// iteration counts timing is noisy and runners vary, so the guard is
// against order-of-magnitude regressions; allocation counts are the
// precise signal.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// microBenches is the default benchmark set: the hot-path micro
// benchmarks, not the end-to-end experiment benches (E1–E15), which are
// too slow for a smoke run.
const microBenches = "^(BenchmarkMeasure64Links|BenchmarkMeasure64LinksDense|" +
	"BenchmarkIncrementalMeasure64|BenchmarkSINRSuccesses16Tx|" +
	"BenchmarkSINRSuccessesAlloc16Tx|BenchmarkAffectanceMatrixBuild64|" +
	"BenchmarkStaticDecay|BenchmarkStaticSpread|BenchmarkPowerControlSolve8|" +
	"BenchmarkDynamicProtocolSlot|BenchmarkDynamicProtocolSlotTraced|" +
	"BenchmarkPlanSweep64|BenchmarkSlotResolve100k|BenchmarkSlotResolveDelta100k|" +
	"BenchmarkJournalAppend|BenchmarkCheckpoint100k)$"

// scaleBenches are the heavy benchmarks included only when -scale is
// set: a million-link model takes seconds to construct, which is fine
// for a baseline refresh but not for the CI regression smoke.
const scaleBenches = "BenchmarkSlotResolve1M|BenchmarkSlotResolve1MParallel|BenchmarkFleetSweep"

// Entry is one benchmark's measurement.
type Entry struct {
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// Baseline is the BENCH_baseline.json document.
type Baseline struct {
	GoVersion  string           `json:"goVersion"`
	GOOS       string           `json:"goos"`
	GOARCH     string           `json:"goarch"`
	Benchtime  string           `json:"benchtime"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op`)

// memStats is matched separately from benchLine: benchmarks reporting
// custom metrics (units/s) print them between ns/op and the -benchmem
// pair, so the allocation columns are not at a fixed offset.
var memStats = regexp.MustCompile(`\s(\d+) B/op\s+(\d+) allocs/op`)

func main() {
	var (
		bench       = flag.String("bench", microBenches, "benchmark regex passed to go test -bench")
		benchtime   = flag.String("benchtime", "100x", "go test -benchtime value (fixed -Nx counts keep allocation numbers deterministic)")
		count       = flag.Int("count", 1, "go test -count value; the minimum ns/op and maximum allocs/op across repetitions are kept, so -count 3 suppresses scheduler-preemption spikes")
		dir         = flag.String("dir", "./...", "package pattern to benchmark")
		out         = flag.String("out", "", "write the results to this JSON file")
		compare     = flag.String("compare", "", "compare the results against this JSON baseline and exit non-zero on regressions")
		nsFactor    = flag.Float64("ns-factor", 2.0, "fail when ns/op exceeds baseline by this factor")
		allocFactor = flag.Float64("alloc-factor", 1.5, "fail when allocs/op exceeds baseline by this factor (rounded up) plus the slack; a zero-alloc baseline must stay zero-alloc")
		allocSlack  = flag.Int64("alloc-slack", 0, "absolute allocs/op slack added to the factor threshold")
		allowMiss   = flag.String("allow-missing", "^("+scaleBenches+")(/.*)?$", "baseline entries matching this regex may be absent from the run without failing the comparison (the scale benches are baseline-only, too heavy for CI smoke)")
		scale       = flag.Bool("scale", false, "also run the heavy scale benchmarks ("+scaleBenches+"); use when regenerating the baseline")
	)
	flag.Parse()

	if *scale && *bench == microBenches {
		*bench = strings.TrimSuffix(microBenches, ")$") + "|" + scaleBenches + ")$"
	}

	entries, err := runBenchmarks(*dir, *bench, *benchtime, *count)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
	if len(entries) == 0 {
		fmt.Fprintln(os.Stderr, "bench: no benchmarks matched", *bench)
		os.Exit(1)
	}
	printEntries(entries)

	if *out != "" {
		b := Baseline{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			Benchtime:  *benchtime,
			Benchmarks: entries,
		}
		data, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "bench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *compare != "" {
		if failures := compareBaseline(*compare, entries, *nsFactor, *allocFactor, *allocSlack, *allowMiss); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "REGRESSION:", f)
			}
			os.Exit(1)
		}
		fmt.Println("no regressions against", *compare)
	}
}

func runBenchmarks(dir, bench, benchtime string, count int) (map[string]Entry, error) {
	if count < 1 {
		count = 1
	}
	cmd := exec.Command("go", "test", "-run", "^$", "-bench", bench, "-benchmem",
		"-benchtime", benchtime, "-count", strconv.Itoa(count), dir)
	cmd.Stderr = os.Stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go test -bench: %w\n%s", err, outBytes)
	}
	entries := map[string]Entry{}
	for _, line := range strings.Split(string(outBytes), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		ns, _ := strconv.ParseFloat(m[3], 64)
		var bytesOp, allocsOp int64
		if mm := memStats.FindStringSubmatch(line); mm != nil {
			bytesOp, _ = strconv.ParseInt(mm[1], 10, 64)
			allocsOp, _ = strconv.ParseInt(mm[2], 10, 64)
		}
		e := Entry{Iters: iters, NsPerOp: ns, BytesPerOp: bytesOp, AllocsPerOp: allocsOp}
		// With -count > 1 each benchmark reports several lines: keep the
		// minimum timing (robust against scheduler preemption) and the
		// maximum allocation counts (conservative for the regression gate).
		if prev, ok := entries[m[1]]; ok {
			if prev.NsPerOp < e.NsPerOp {
				e.NsPerOp, e.Iters = prev.NsPerOp, prev.Iters
			}
			e.BytesPerOp = max(e.BytesPerOp, prev.BytesPerOp)
			e.AllocsPerOp = max(e.AllocsPerOp, prev.AllocsPerOp)
		}
		entries[m[1]] = e
	}
	return entries, nil
}

func printEntries(entries map[string]Entry) {
	names := make([]string, 0, len(entries))
	for name := range entries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		e := entries[name]
		fmt.Printf("%-36s %12.1f ns/op %8d B/op %6d allocs/op\n", name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
	}
}

func compareBaseline(path string, entries map[string]Entry, nsFactor, allocFactor float64, allocSlack int64, allowMiss string) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{fmt.Sprintf("reading baseline: %v", err)}
	}
	var base Baseline
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("parsing baseline: %v", err)}
	}
	var missOK *regexp.Regexp
	if allowMiss != "" {
		missOK, err = regexp.Compile(allowMiss)
		if err != nil {
			return []string{fmt.Sprintf("parsing -allow-missing: %v", err)}
		}
	}
	var failures []string
	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		want := base.Benchmarks[name]
		got, ok := entries[name]
		if !ok {
			if missOK != nil && missOK.MatchString(name) {
				continue
			}
			failures = append(failures, fmt.Sprintf("%s: present in baseline but did not run (renamed or deleted?)", name))
			continue
		}
		if limit := want.NsPerOp * nsFactor; got.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %.1f ns/op exceeds %.1f (baseline %.1f × %.1f)",
				name, got.NsPerOp, limit, want.NsPerOp, nsFactor))
		}
		// A zero-alloc baseline must stay zero-alloc (with zero slack):
		// ceil rounding means the factor never excuses the first
		// reintroduced allocation on a clean benchmark.
		if limit := int64(math.Ceil(float64(want.AllocsPerOp)*allocFactor)) + allocSlack; got.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf("%s: %d allocs/op exceeds %d (baseline %d × %.1f + %d)",
				name, got.AllocsPerOp, limit, want.AllocsPerOp, allocFactor, allocSlack))
		}
	}
	return failures
}
