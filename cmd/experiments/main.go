// Command experiments reproduces the paper's results: it runs the
// experiment suite E1–E15 (see DESIGN.md for the index) and prints one
// table per experiment. Use -markdown to emit the EXPERIMENTS.md body.
// -parallel N fans independent experiments across N workers; the tables
// are bit-identical to a serial run at the same seed.
//
// Usage:
//
//	experiments [-scale quick|full] [-seed N] [-only E5] [-markdown] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"dynsched/internal/cli"
	"dynsched/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E3)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	csvDir := flag.String("csvdir", "", "also write one CSV file per experiment into this directory")
	parallel := flag.Int("parallel", 1, "worker count for concurrent experiments (0 = all CPUs, 1 = serial); output is ordered and bit-identical either way")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	runners := experiments.All()
	if *only != "" {
		r, ok := experiments.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	// Ctrl-C cancels the run context: running experiments stop at their
	// next simulation slot and unstarted ones are skipped.
	ctx, stop := cli.SignalContext()
	defer stop()
	results := experiments.RunAll(ctx, runners, scale, *seed, *parallel)

	failed := false
	for i, r := range runners {
		tbl, err := results[i].Table, results[i].Err
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) failed: %v\n", r.ID, r.Name, err)
			failed = true
			continue
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
			fmt.Printf("(%s in %v)\n\n", r.ID, results[i].Elapsed.Round(time.Millisecond))
		}
		if *csvDir != "" {
			name := filepath.Join(*csvDir, strings.ToLower(r.ID)+".csv")
			if err := os.WriteFile(name, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", name, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
