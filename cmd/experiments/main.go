// Command experiments reproduces the paper's results: it runs the
// experiment suite E1–E10 (see DESIGN.md for the index) and prints one
// table per experiment. Use -markdown to emit the EXPERIMENTS.md body.
//
// Usage:
//
//	experiments [-scale quick|full] [-seed N] [-only E5] [-markdown]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"dynsched/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: quick or full")
	seed := flag.Int64("seed", 1, "random seed")
	only := flag.String("only", "", "run a single experiment by ID (e.g. E3)")
	markdown := flag.Bool("markdown", false, "emit markdown instead of aligned text")
	csvDir := flag.String("csvdir", "", "also write one CSV file per experiment into this directory")
	parallel := flag.Bool("parallel", false, "run experiments concurrently (ordered output)")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "quick":
		scale = experiments.Quick
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "unknown scale %q (want quick or full)\n", *scaleFlag)
		os.Exit(2)
	}

	runners := experiments.All()
	if *only != "" {
		r, ok := experiments.ByID(*only)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *only)
			os.Exit(2)
		}
		runners = []experiments.Runner{r}
	}

	type outcome struct {
		tbl     *experiments.Table
		err     error
		elapsed time.Duration
	}
	results := make([]outcome, len(runners))
	if *parallel {
		var wg sync.WaitGroup
		for i, r := range runners {
			wg.Add(1)
			go func(i int, r experiments.Runner) {
				defer wg.Done()
				start := time.Now()
				tbl, err := r.Run(scale, *seed)
				results[i] = outcome{tbl: tbl, err: err, elapsed: time.Since(start)}
			}(i, r)
		}
		wg.Wait()
	} else {
		for i, r := range runners {
			start := time.Now()
			tbl, err := r.Run(scale, *seed)
			results[i] = outcome{tbl: tbl, err: err, elapsed: time.Since(start)}
		}
	}

	failed := false
	for i, r := range runners {
		tbl, err := results[i].tbl, results[i].err
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s (%s) failed: %v\n", r.ID, r.Name, err)
			failed = true
			continue
		}
		if *markdown {
			fmt.Println(tbl.Markdown())
		} else {
			fmt.Println(tbl.Format())
			fmt.Printf("(%s in %v)\n\n", r.ID, results[i].elapsed.Round(time.Millisecond))
		}
		if *csvDir != "" {
			name := filepath.Join(*csvDir, strings.ToLower(r.ID)+".csv")
			if err := os.WriteFile(name, []byte(tbl.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "writing %s: %v\n", name, err)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
}
