package dynsched

import "testing"

// TestFacadeEndToEnd exercises the public API exactly as the README's
// quick-start does: build a network, pick a model, inject traffic, run
// the dynamic protocol, and check stability.
func TestFacadeEndToEnd(t *testing.T) {
	g := LineNetwork(6, 1)
	model := Identity{Links: g.NumLinks()}
	path, ok := ShortestPath(g, 0, 5)
	if !ok {
		t.Fatal("no path")
	}
	proc, err := StochasticAtRate(model, []Generator{
		{Choices: []PathChoice{{Path: path, P: 0.5}}},
	}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: FullParallel{}, M: g.NumLinks(), Lambda: 0.4, Eps: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(SimConfig{Slots: 20000, Seed: 1}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Stable {
		t.Errorf("quick-start scenario unstable: %+v", res.Verdict)
	}
	if res.ProtocolErrors != 0 {
		t.Errorf("%d protocol errors", res.ProtocolErrors)
	}
}

// TestFacadeSINR builds the SINR path through the facade.
func TestFacadeSINR(t *testing.T) {
	g := GridNetwork(3, 3, 1)
	prm := DefaultSINRParams()
	powers, err := SINRPowers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewSINRFixedPower(g, prm, powers, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]Request, g.NumLinks())
	for e := range reqs {
		reqs[e] = Request{Link: e, Tag: int64(e)}
	}
	res := RunStatic(3, model, Spread{}, reqs, 0)
	if !res.AllServed() {
		t.Errorf("spread served %d/%d", res.NumServed(), len(reqs))
	}
	if RequestMeasure(model, reqs) <= 0 {
		t.Error("zero measure")
	}
}

// TestFacadeConflict builds the conflict-graph path through the facade.
func TestFacadeConflict(t *testing.T) {
	g := LineNetwork(5, 1)
	cg := NodeConstraintConflicts(g)
	model, err := NewConflictModel(cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	reqs := []Request{{Link: 0, Tag: 1}, {Link: 3, Tag: 2}}
	res := RunStatic(4, model, Decay{}, reqs, 0)
	if !res.AllServed() {
		t.Error("conflict-model decay failed")
	}
}

// TestFacadeLowerBound exercises the Figure 1 types.
func TestFacadeLowerBound(t *testing.T) {
	m := Figure1Model{M: 8}
	if NewGlobalTDM(m) == nil || NewLocalGreedy(m) == nil {
		t.Fatal("lower-bound constructors returned nil")
	}
}

// TestFacadeBaselines exercises the baseline constructors.
func TestFacadeBaselines(t *testing.T) {
	m := MAC{Links: 4}
	if NewMaxWeight(m) == nil || NewMACFallback(4) == nil || NewFIFOGreedy(4) == nil {
		t.Fatal("baseline constructors returned nil")
	}
}
