package dynsched

import "math/rand"

// newRand builds a seeded random source for the convenience wrappers.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
