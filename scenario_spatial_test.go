package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"strings"
	"testing"
)

// This file pins the spatial-index tentpole at the scenario layer: for
// every registered SINR scenario, the indexed backing at ε = 0 is
// bit-identical to the flat-table path — model verdicts and full Result
// JSON — and at ε > 0 every success it reports is a true SINR success.
// Scale scenarios participate through reduced-size twins with the same
// generator kind, model, and knobs.

// sinrScenario reports whether the scenario's model has a SINR backing
// to compare.
func sinrScenario(s Scenario) bool {
	return strings.HasPrefix(s.Model.Kind, "sinr-")
}

// scaledCopy caps a scenario's size so property tests stay quick: the
// generator families drop to 256 links, everything else is already
// small. The model kind, generator kind, and ε knob are preserved.
func scaledCopy(s Scenario) Scenario {
	if s.Network.Links > 1024 {
		s.Network.Links = 256
	}
	s.Sim.Slots = 1500
	return s
}

// withBacking returns a copy with the model storage overridden.
func withBacking(s Scenario, backing string, farFloor float64) Scenario {
	s.Model.Backing, s.Model.FarFloor = backing, farFloor
	return s
}

// compileModel compiles the scenario and returns its model.
func compileModel(t *testing.T, s Scenario) (*CompiledScenario, Model) {
	t.Helper()
	c, err := s.Compile()
	if err != nil {
		t.Fatalf("%s: %v", s.Name, err)
	}
	return c, c.Model
}

// TestScenariosIndexedBitIdentity: for every registered SINR scenario,
// the ε = 0 indexed backing and the flat-table path agree bit for bit —
// on random transmission slots and on the full simulation Result.
func TestScenariosIndexedBitIdentity(t *testing.T) {
	for _, reg := range Scenarios() {
		if !sinrScenario(reg) {
			continue
		}
		reg := reg
		t.Run(reg.Name, func(t *testing.T) {
			t.Parallel()
			s := scaledCopy(reg)
			flat := withBacking(s, "auto", 0)
			idx := withBacking(s, "indexed", 0)

			_, mFlat := compileModel(t, flat)
			cIdx, mIdx := compileModel(t, idx)
			if cIdx.Diagnostics == nil || cIdx.Diagnostics.Backing != "indexed" {
				t.Fatalf("indexed compile diagnostics = %+v, want indexed backing", cIdx.Diagnostics)
			}
			n := mFlat.NumLinks()
			rng := rand.New(rand.NewSource(int64(n) + 7))
			for trial := 0; trial < 150; trial++ {
				k := 1 + rng.Intn(2*n)
				tx := make([]int, k)
				for i := range tx {
					tx[i] = rng.Intn(n)
				}
				want, got := mFlat.Successes(tx), mIdx.Successes(tx)
				for i := range tx {
					if want[i] != got[i] {
						t.Fatalf("trial %d: Successes[%d] = %v on indexed, %v on flat (tx %v)", trial, i, got[i], want[i], tx)
					}
				}
			}

			resFlat, err := flat.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			resIdx, err := idx.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			a, _ := json.Marshal(resFlat)
			b, _ := json.Marshal(resIdx)
			if !bytes.Equal(a, b) {
				t.Errorf("Run results diverge between flat and indexed ε=0 backings\nflat:    %s\nindexed: %s", a, b)
			}
		})
	}
}

// TestScenariosFarFloorSound: for every registered scenario that ships
// with ε > 0, the indexed resolver's reported successes are a subset of
// the exact SINR successes on random slots (the far-field bound only
// over-estimates interference, never under-estimates it).
func TestScenariosFarFloorSound(t *testing.T) {
	tested := 0
	for _, reg := range Scenarios() {
		if !sinrScenario(reg) || reg.Model.FarFloor == 0 {
			continue
		}
		reg := reg
		tested++
		t.Run(reg.Name, func(t *testing.T) {
			t.Parallel()
			s := scaledCopy(reg)
			_, mExact := compileModel(t, withBacking(s, "auto", 0))
			_, mIdx := compileModel(t, s) // registered backing and ε
			n := mExact.NumLinks()
			rng := rand.New(rand.NewSource(int64(n) + 11))
			for trial := 0; trial < 150; trial++ {
				k := 1 + rng.Intn(n)
				tx := rng.Perm(n)[:k]
				want, got := mExact.Successes(tx), mIdx.Successes(tx)
				for i := range tx {
					if got[i] && !want[i] {
						t.Fatalf("trial %d: link %d reported success at ε=%v but fails the exact SINR test",
							trial, tx[i], s.Model.FarFloor)
					}
				}
			}
		})
	}
	if tested == 0 {
		t.Fatal("no registered scenario carries ε > 0 — the sinr-grid family should")
	}
}

// TestGeneratorSpecHashing: the generator spec hashes canonically —
// identical specs agree, every knob is hash-relevant, and the spec-less
// scenarios' hashes cannot be perturbed by the new optional fields.
func TestGeneratorSpecHashing(t *testing.T) {
	base := NewScenario("gen",
		WithModel("sinr-uniform"),
		WithLinks(64),
		WithGenerator(GeneratorSpec{Kind: "cluster", Clusters: 4, Seed: 9}),
		WithBacking("indexed", 0.01),
	)
	h1, h2 := base.Hash(), base.Hash()
	if h1 != h2 {
		t.Fatalf("generator scenario hash not deterministic: %s vs %s", h1, h2)
	}
	perturb := map[string]func(*Scenario){
		"generator kind":  func(s *Scenario) { s.Network.Generator.Kind = "uniform" },
		"generator seed":  func(s *Scenario) { s.Network.Generator.Seed = 10 },
		"generator side":  func(s *Scenario) { s.Network.Generator.Side = 500 },
		"model backing":   func(s *Scenario) { s.Model.Backing = "csr"; s.Model.FarFloor = 0 },
		"model farFloor":  func(s *Scenario) { s.Model.FarFloor = 0.02 },
		"model denseMax":  func(s *Scenario) { s.Model.DenseMax = 64 },
		"model cell size": func(s *Scenario) { s.Model.Cell = 2 },
	}
	for name, mutate := range perturb {
		c := base
		gen := *base.Network.Generator
		c.Network.Generator = &gen
		mutate(&c)
		if h := c.Hash(); h == h1 {
			t.Errorf("changing %s did not change the scenario hash", name)
		}
	}
}

// TestScenarioDiagnostics: the compiled scenario surfaces which backing
// the model resolved to.
func TestScenarioDiagnostics(t *testing.T) {
	s, ok := ScenarioByName("sinr-stochastic")
	if !ok {
		t.Fatal("sinr-stochastic not registered")
	}
	c, _ := compileModel(t, s)
	if c.Diagnostics == nil || c.Diagnostics.Backing != "dense" {
		t.Fatalf("sinr-stochastic diagnostics = %+v, want dense backing", c.Diagnostics)
	}
	grid, ok := ScenarioByName("sinr-grid-4k")
	if !ok {
		t.Fatal("sinr-grid-4k not registered")
	}
	c4k, _ := compileModel(t, scaledCopy(grid))
	if c4k.Diagnostics == nil || c4k.Diagnostics.Backing != "indexed" || c4k.Diagnostics.FarFloor != grid.Model.FarFloor {
		t.Fatalf("sinr-grid-4k diagnostics = %+v, want indexed backing at ε=%v", c4k.Diagnostics, grid.Model.FarFloor)
	}
	line, ok := ScenarioByName("line-stochastic")
	if !ok {
		t.Fatal("line-stochastic not registered")
	}
	cLine, _ := compileModel(t, line)
	if cLine.Diagnostics != nil {
		t.Fatalf("identity-model diagnostics = %+v, want nil", cLine.Diagnostics)
	}
}
