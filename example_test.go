package dynsched_test

import (
	"fmt"

	"dynsched"
)

// ExampleNewProtocol shows the full pipeline: network, model, traffic,
// protocol, simulation.
func ExampleNewProtocol() {
	g := dynsched.LineNetwork(4, 1)
	model := dynsched.Identity{Links: g.NumLinks()}
	path, _ := dynsched.ShortestPath(g, 0, 3)

	proc, err := dynsched.TrafficPaths(model, []dynsched.Path{path}, 0.3)
	if err != nil {
		fmt.Println(err)
		return
	}
	proto, err := dynsched.NewProtocol(dynsched.ProtocolConfig{
		Model: model, Alg: dynsched.FullParallel{}, M: g.NumLinks(),
		Lambda: 0.3, Eps: 0.25,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := dynsched.Simulate(dynsched.SimConfig{Slots: 20000, Seed: 1},
		model, proc, proto)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("stable:", res.Verdict.Stable)
	fmt.Println("conservation ok:", res.Injected == res.Delivered+res.InFlight)
	// Output:
	// stable: true
	// conservation ok: true
}

// ExampleRunStatic schedules a fixed batch with a static algorithm.
func ExampleRunStatic() {
	model := dynsched.Identity{Links: 3}
	reqs := []dynsched.Request{
		{Link: 0, Tag: 1}, {Link: 1, Tag: 2}, {Link: 2, Tag: 3},
		{Link: 0, Tag: 4}, {Link: 1, Tag: 5}, {Link: 2, Tag: 6},
	}
	res := dynsched.RunStatic(7, model, dynsched.FullParallel{}, reqs, 0)
	fmt.Println("all served:", res.AllServed())
	fmt.Println("slots:", res.Slots)
	// Output:
	// all served: true
	// slots: 2
}

// ExampleMeasure computes the interference measure of a request vector.
func ExampleMeasure() {
	mac := dynsched.MAC{Links: 3}
	identity := dynsched.Identity{Links: 3}
	r := []int{2, 1, 1}
	fmt.Println("MAC measure:", dynsched.Measure(mac, r))
	fmt.Println("identity measure:", dynsched.Measure(identity, r))
	// Output:
	// MAC measure: 4
	// identity measure: 2
}

// ExampleSolveFrameLength shows the stability condition in action: the
// frame equation converges below the algorithm's throughput and
// diverges above it.
func ExampleSolveFrameLength() {
	_, errLow := dynsched.SolveFrameLength(dynsched.FullParallel{}, 8, 8, 0.5, 0.25)
	_, errHigh := dynsched.SolveFrameLength(dynsched.FullParallel{}, 8, 8, 1.5, 0.25)
	fmt.Println("λ=0.5 provisionable:", errLow == nil)
	fmt.Println("λ=1.5 provisionable:", errHigh == nil)
	// Output:
	// λ=0.5 provisionable: true
	// λ=1.5 provisionable: false
}
