package dynsched

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"

	"dynsched/internal/cli"
	"dynsched/internal/inject"
	"dynsched/internal/sim"
)

// ---- Scenario specs ----
//
// A Scenario is a declarative description of one experiment: which
// network to build, which interference model to schedule against, how
// traffic arrives, which protocol serves it, and how to simulate. The
// whole composition is data — a struct literal or a JSON document —
// so new workloads are declared, not re-plumbed from the ~40 free
// functions of the façade. Compile validates the spec and wires the
// runnable components; Run/Replicate/RunSweep execute it.

// GeneratorSpec declares a seeded procedural sender→receiver network
// for the "generator" topology: a spatial placement process for the
// senders plus the link geometry. Every knob except Kind is optional —
// zero values resolve to documented defaults at build time but stay
// out of the canonical JSON, so a spec's hash depends only on what it
// pins explicitly.
type GeneratorSpec struct {
	// Kind is the sender placement: uniform, cluster, or grid.
	Kind string `json:"kind"`
	// Side is the placement square's side (0 = 10·√Links + 10).
	Side float64 `json:"side,omitempty"`
	// Clusters is the number of cluster centres (cluster kind;
	// 0 = max(1, Links/256)).
	Clusters int `json:"clusters,omitempty"`
	// Spread is the Gaussian sender spread around its centre (cluster
	// kind; 0 = Side/16).
	Spread float64 `json:"spread,omitempty"`
	// MinLen and MaxLen bound the link length (0, 0 = 1, 4).
	MinLen float64 `json:"minLen,omitempty"`
	MaxLen float64 `json:"maxLen,omitempty"`
	// Seed drives the placement; 0 falls back to Sim.Seed.
	Seed int64 `json:"seed,omitempty"`
}

// NetworkSpec selects the communication graph and routes.
type NetworkSpec struct {
	// Topology is one of line, grid, grid-convergecast, pairs, nested,
	// mac, generator, or auto (pick per model).
	Topology string `json:"topology,omitempty"`
	// Nodes sizes node-centric topologies (line, grid).
	Nodes int `json:"nodes,omitempty"`
	// Links sizes link-centric topologies (pairs, nested, mac,
	// generator).
	Links int `json:"links,omitempty"`
	// Hops is the path length for multi-hop workloads.
	Hops int `json:"hops,omitempty"`
	// Generator parameterises the "generator" topology.
	Generator *GeneratorSpec `json:"generator,omitempty"`
}

// ModelSpec selects the interference model.
type ModelSpec struct {
	// Kind is one of identity, mac, sinr-linear, sinr-uniform,
	// sinr-power-control.
	Kind string `json:"kind"`
	// Loss adds independent per-transmission loss with this probability.
	Loss float64 `json:"loss,omitempty"`
	// Backing selects the SINR interference-table storage: auto (default),
	// dense, csr, or indexed (the spatial grid; requires planar
	// positions).
	Backing string `json:"backing,omitempty"`
	// DenseMax moves the dense-vs-CSR auto threshold (0 = built-in
	// default).
	DenseMax int `json:"denseMax,omitempty"`
	// FarFloor is the indexed backing's far-field contribution floor ε:
	// 0 keeps the backing bit-identical to the flat tables, ε > 0 lets
	// per-slot cost scale with local density inside the documented
	// soundness envelope (reported successes are always true successes).
	FarFloor float64 `json:"farFloor,omitempty"`
	// Cell overrides the spatial index's cell size (0 = automatic).
	Cell float64 `json:"cell,omitempty"`
}

// TraceEvent is one packet of a recorded workload: the slot it is
// injected, its ID, and its route. It is the scenario-level alias of
// the injection layer's trace record, so recorded traffic embeds
// directly in a spec document.
type TraceEvent = inject.TraceRecord

// TrafficSpec selects the injection process.
type TrafficSpec struct {
	// Pattern is "stochastic" (the default), an adversary timing
	// (burst, spread, sawtooth, rotating), or "trace" to replay the
	// recorded packets in Trace.
	Pattern string `json:"pattern,omitempty"`
	// Lambda is the injection rate in interference-measure units/slot.
	Lambda float64 `json:"lambda"`
	// Window is the adversary window length w (adversarial patterns).
	Window int `json:"window,omitempty"`
	// Trace is the recorded workload replayed by the "trace" pattern,
	// one event per packet, slots ascending.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// ProtocolSpec selects and tunes the dynamic protocol.
type ProtocolSpec struct {
	// Alg names the static algorithm to wrap (auto = pick per model).
	Alg string `json:"alg,omitempty"`
	// Eps is the protocol headroom ε.
	Eps float64 `json:"eps,omitempty"`
	// Frame overrides the frame length T (0 = solve for it).
	Frame int `json:"frame,omitempty"`
	// DisableDelays turns off the Section 5 random initial delays
	// (ablation).
	DisableDelays bool `json:"disableDelays,omitempty"`
}

// SimSpec parameterises the simulation itself.
type SimSpec struct {
	Slots       int64   `json:"slots"`
	Seed        int64   `json:"seed"`
	WarmupFrac  float64 `json:"warmupFrac,omitempty"`
	SampleEvery int64   `json:"sampleEvery,omitempty"`
	// Parallel caps Replicate's worker pool (0 = GOMAXPROCS). It is an
	// execution knob, not part of the experiment: results are
	// bit-identical for every value, and it is excluded from Hash.
	Parallel int `json:"parallel,omitempty"`
	// ResolveParallelism sets the intra-slot interference-resolution
	// worker count (0 = model default, 1 = serial, n = n workers). Like
	// Parallel it is an execution knob, not part of the experiment:
	// per-link interference sums keep their exact serial accumulation
	// order at any worker count, so results are bit-identical for every
	// value, and it is excluded from Hash.
	ResolveParallelism int `json:"resolveParallelism,omitempty"`
}

// SweepAxis is one axis of a grid sweep: the swept parameter and its
// values.
type SweepAxis struct {
	// Axis is the swept parameter: lambda, eps, loss, or slots.
	Axis string `json:"axis"`
	// Values are the axis's sweep values. The slots axis takes positive
	// whole numbers.
	Values []float64 `json:"values"`
}

// SweepSpec declares a parameter sweep: either a single Axis with its
// Values (the legacy one-dimensional form) or a multi-axis grid via
// Axes, whose execution plan is the cross product of all axis values.
// The two forms are mutually exclusive; a single-entry Axes list is
// equivalent to the legacy form.
type SweepSpec struct {
	// Axis is the swept parameter: lambda, eps, loss, or slots.
	Axis string `json:"axis,omitempty"`
	// Values are applied to the axis one sweep unit at a time.
	Values []float64 `json:"values,omitempty"`
	// Axes declares a multi-axis grid sweep (cross product, last axis
	// varying fastest). Mutually exclusive with Axis/Values.
	Axes []SweepAxis `json:"axes,omitempty"`
}

// normalized returns the sweep as a uniform axis list: Axes when
// declared, the single legacy axis otherwise, nil for no sweep.
func (sw SweepSpec) normalized() []SweepAxis {
	if len(sw.Axes) > 0 {
		return sw.Axes
	}
	if sw.Axis != "" {
		return []SweepAxis{{Axis: sw.Axis, Values: sw.Values}}
	}
	return nil
}

// applyAxis resolves one sweep coordinate into the spec.
func applyAxis(s *Scenario, axis string, v float64) {
	switch axis {
	case "lambda":
		s.Traffic.Lambda = v
	case "eps":
		s.Protocol.Eps = v
	case "loss":
		s.Model.Loss = v
	case "slots":
		s.Sim.Slots = int64(v)
	}
}

// ObserverFactory builds a fresh SimObserver for one run. Factories —
// not instances — are attached to scenarios so every replication of a
// replicated run gets its own observer state.
type ObserverFactory func() SimObserver

// Scenario is a declarative experiment: network, model, traffic,
// protocol, simulation parameters and optional sweep axes, as one
// JSON-serialisable value. The zero value is not runnable; start from
// NewScenario (which fills the defaults) or a complete literal.
type Scenario struct {
	Name        string       `json:"name"`
	Description string       `json:"description,omitempty"`
	Network     NetworkSpec  `json:"network"`
	Model       ModelSpec    `json:"model"`
	Traffic     TrafficSpec  `json:"traffic"`
	Protocol    ProtocolSpec `json:"protocol"`
	Sim         SimSpec      `json:"sim"`
	Sweep       SweepSpec    `json:"sweep"`
	// Observers are attached to every run compiled from this scenario.
	// They are code, not data, and are skipped by JSON encoding.
	Observers []ObserverFactory `json:"-"`
}

// ScenarioOption mutates a scenario under construction.
type ScenarioOption func(*Scenario)

// NewScenario returns a scenario with the same defaults as the
// cmd/dynsched flags, customised by the given options.
func NewScenario(name string, opts ...ScenarioOption) Scenario {
	s := Scenario{
		Name:     name,
		Network:  NetworkSpec{Topology: "auto", Nodes: 8, Links: 16, Hops: 4},
		Model:    ModelSpec{Kind: "identity"},
		Traffic:  TrafficSpec{Pattern: "stochastic", Lambda: 0.3, Window: 64},
		Protocol: ProtocolSpec{Alg: "auto", Eps: 0.25},
		Sim:      SimSpec{Slots: 50_000, Seed: 1, WarmupFrac: 0.1},
	}
	for _, opt := range opts {
		opt(&s)
	}
	return s
}

// WithDescription sets the scenario's one-line description.
func WithDescription(d string) ScenarioOption { return func(s *Scenario) { s.Description = d } }

// WithTopology selects the network topology.
func WithTopology(t string) ScenarioOption { return func(s *Scenario) { s.Network.Topology = t } }

// WithNodes sets the node count for node-centric topologies.
func WithNodes(n int) ScenarioOption { return func(s *Scenario) { s.Network.Nodes = n } }

// WithLinks sets the link count for link-centric topologies.
func WithLinks(n int) ScenarioOption { return func(s *Scenario) { s.Network.Links = n } }

// WithHops sets the path length for multi-hop workloads.
func WithHops(n int) ScenarioOption { return func(s *Scenario) { s.Network.Hops = n } }

// WithGenerator switches the network to the "generator" topology with
// the given procedural spec; the link count stays Network.Links.
func WithGenerator(gen GeneratorSpec) ScenarioOption {
	return func(s *Scenario) {
		s.Network.Topology = "generator"
		s.Network.Generator = &gen
	}
}

// WithModel selects the interference model kind.
func WithModel(kind string) ScenarioOption { return func(s *Scenario) { s.Model.Kind = kind } }

// WithBacking selects the SINR table storage: auto, dense, csr, or
// indexed. FarFloor > 0 enables the indexed backing's far-field
// contribution floor ε (0 stays bit-identical to the flat tables).
func WithBacking(backing string, farFloor float64) ScenarioOption {
	return func(s *Scenario) { s.Model.Backing, s.Model.FarFloor = backing, farFloor }
}

// WithLoss adds independent per-transmission loss.
func WithLoss(p float64) ScenarioOption { return func(s *Scenario) { s.Model.Loss = p } }

// WithLambda sets the injection rate.
func WithLambda(l float64) ScenarioOption { return func(s *Scenario) { s.Traffic.Lambda = l } }

// WithAdversary switches injection to a (w, λ)-bounded adversary with
// the given timing pattern (burst, spread, sawtooth, rotating).
func WithAdversary(pattern string, window int) ScenarioOption {
	return func(s *Scenario) { s.Traffic.Pattern, s.Traffic.Window = pattern, window }
}

// WithTrace switches injection to byte-identical replay of the given
// recorded workload (see RecordInjections, InjectionTrace.Records and
// ParseTrace).
func WithTrace(events []TraceEvent) ScenarioOption {
	return func(s *Scenario) {
		s.Traffic.Pattern = "trace"
		s.Traffic.Trace = events
	}
}

// WithAlgorithm names the static algorithm the protocol wraps.
func WithAlgorithm(alg string) ScenarioOption { return func(s *Scenario) { s.Protocol.Alg = alg } }

// WithEps sets the protocol headroom ε.
func WithEps(e float64) ScenarioOption { return func(s *Scenario) { s.Protocol.Eps = e } }

// WithFrame overrides the protocol frame length T.
func WithFrame(t int) ScenarioOption { return func(s *Scenario) { s.Protocol.Frame = t } }

// WithoutDelays disables the Section 5 random initial delays.
func WithoutDelays() ScenarioOption { return func(s *Scenario) { s.Protocol.DisableDelays = true } }

// WithSlots sets the simulation length.
func WithSlots(n int64) ScenarioOption { return func(s *Scenario) { s.Sim.Slots = n } }

// WithSeed sets the run seed.
func WithSeed(seed int64) ScenarioOption { return func(s *Scenario) { s.Sim.Seed = seed } }

// WithWarmup excludes the first fraction of the run from latency stats.
func WithWarmup(frac float64) ScenarioOption { return func(s *Scenario) { s.Sim.WarmupFrac = frac } }

// WithSampleEvery sets the queue-sampling period.
func WithSampleEvery(n int64) ScenarioOption { return func(s *Scenario) { s.Sim.SampleEvery = n } }

// WithParallel caps the Replicate worker pool.
func WithParallel(n int) ScenarioOption { return func(s *Scenario) { s.Sim.Parallel = n } }

// WithResolveParallelism sets the intra-slot interference-resolution
// worker count (0 = model default, 1 = serial). Results are
// bit-identical for every value.
func WithResolveParallelism(n int) ScenarioOption {
	return func(s *Scenario) { s.Sim.ResolveParallelism = n }
}

// WithObservers attaches observer factories to every compiled run.
func WithObservers(factories ...ObserverFactory) ScenarioOption {
	return func(s *Scenario) { s.Observers = append(s.Observers, factories...) }
}

// WithSweep declares a one-dimensional sweep over lambda, eps, loss,
// or slots.
func WithSweep(axis string, values ...float64) ScenarioOption {
	return func(s *Scenario) { s.Sweep = SweepSpec{Axis: axis, Values: values} }
}

// WithSweepAxes declares a multi-axis grid sweep: the execution plan is
// the cross product of all axis values, the last axis varying fastest.
func WithSweepAxes(axes ...SweepAxis) ScenarioOption {
	return func(s *Scenario) { s.Sweep = SweepSpec{Axes: axes} }
}

// Validate checks the parts of the spec that Compile's component
// builders do not check themselves.
func (s Scenario) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("dynsched: scenario has no name")
	}
	if s.Sim.Slots <= 0 {
		return fmt.Errorf("dynsched: scenario %q: non-positive slot count %d", s.Name, s.Sim.Slots)
	}
	// The inverted range test also rejects NaN, which every plain
	// comparison lets through.
	if !(s.Sim.WarmupFrac >= 0 && s.Sim.WarmupFrac < 1) {
		return fmt.Errorf("dynsched: scenario %q: WarmupFrac %v outside [0,1)", s.Name, s.Sim.WarmupFrac)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"traffic lambda", s.Traffic.Lambda},
		{"protocol eps", s.Protocol.Eps},
		{"model loss", s.Model.Loss},
	} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) {
			return fmt.Errorf("dynsched: scenario %q: %s is %v (must be finite)", s.Name, p.name, p.v)
		}
	}
	switch s.Traffic.Pattern {
	case "", "stochastic", "burst", "spread", "sawtooth", "rotating":
		if len(s.Traffic.Trace) > 0 {
			return fmt.Errorf("dynsched: scenario %q: traffic trace needs pattern \"trace\", got %q", s.Name, s.Traffic.Pattern)
		}
	case "trace":
		if len(s.Traffic.Trace) == 0 {
			return fmt.Errorf("dynsched: scenario %q: traffic pattern \"trace\" needs a non-empty trace", s.Name)
		}
	default:
		return fmt.Errorf("dynsched: scenario %q: unknown traffic pattern %q", s.Name, s.Traffic.Pattern)
	}
	switch s.Model.Backing {
	case "", "auto", "dense", "csr", "indexed":
	default:
		return fmt.Errorf("dynsched: scenario %q: unknown model backing %q (want auto, dense, csr, or indexed)", s.Name, s.Model.Backing)
	}
	if !(s.Model.FarFloor >= 0 && s.Model.FarFloor < 1) {
		return fmt.Errorf("dynsched: scenario %q: model farFloor %v outside [0,1)", s.Name, s.Model.FarFloor)
	}
	if s.Model.FarFloor > 0 && s.Model.Backing != "indexed" {
		return fmt.Errorf("dynsched: scenario %q: model farFloor %v needs the indexed backing", s.Name, s.Model.FarFloor)
	}
	if s.Network.Generator != nil {
		if s.Network.Topology != "generator" {
			return fmt.Errorf("dynsched: scenario %q: a network generator needs topology \"generator\", got %q", s.Name, s.Network.Topology)
		}
		gen := s.Network.Generator.cliGenerator(s.Network.Links)
		if err := gen.Validate(); err != nil {
			return fmt.Errorf("dynsched: scenario %q: %v", s.Name, err)
		}
	} else if s.Network.Topology == "generator" {
		return fmt.Errorf("dynsched: scenario %q: topology \"generator\" needs a network generator spec", s.Name)
	}
	if s.Sweep.Axis != "" && len(s.Sweep.Axes) > 0 {
		return fmt.Errorf("dynsched: scenario %q: sweep axis and axes are mutually exclusive", s.Name)
	}
	axes := s.Sweep.normalized()
	if len(axes) == 0 && len(s.Sweep.Values) > 0 {
		return fmt.Errorf("dynsched: scenario %q: sweep has %d values but no axis", s.Name, len(s.Sweep.Values))
	}
	if len(s.Sweep.Axes) > 0 && len(s.Sweep.Values) > 0 {
		return fmt.Errorf("dynsched: scenario %q: sweep values outside axes entries in a grid sweep", s.Name)
	}
	seen := make(map[string]bool, len(axes))
	for _, ax := range axes {
		switch ax.Axis {
		case "lambda", "eps", "loss", "slots":
		default:
			return fmt.Errorf("dynsched: scenario %q: unknown sweep axis %q (want lambda, eps, loss, or slots)", s.Name, ax.Axis)
		}
		if seen[ax.Axis] {
			return fmt.Errorf("dynsched: scenario %q: duplicate sweep axis %q", s.Name, ax.Axis)
		}
		seen[ax.Axis] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("dynsched: scenario %q: sweep axis %q has no values", s.Name, ax.Axis)
		}
		for i, v := range ax.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("dynsched: scenario %q: sweep value %d on axis %q is %v (must be finite)", s.Name, i, ax.Axis, v)
			}
			if ax.Axis == "slots" && (v != math.Trunc(v) || v < 1 || v > 1e15) {
				return fmt.Errorf("dynsched: scenario %q: sweep value %d on axis slots is %v (must be a positive whole number)", s.Name, i, v)
			}
		}
	}
	return nil
}

// cliGenerator maps the declarative generator spec onto the workload
// builder's input, defaulting the link count to the network-level one.
func (gs GeneratorSpec) cliGenerator(links int) cli.Generator {
	return cli.Generator{
		Kind:     gs.Kind,
		Links:    links,
		Side:     gs.Side,
		Clusters: gs.Clusters,
		Spread:   gs.Spread,
		MinLen:   gs.MinLen,
		MaxLen:   gs.MaxLen,
		Seed:     gs.Seed,
	}
}

// options maps the declarative spec onto the workload builder's input.
func (s Scenario) options() cli.Options {
	adv := s.Traffic.Pattern
	if adv == "stochastic" || adv == "trace" {
		adv = ""
	}
	o := cli.Options{
		Model:         s.Model.Kind,
		Topology:      s.Network.Topology,
		Alg:           s.Protocol.Alg,
		Nodes:         s.Network.Nodes,
		Links:         s.Network.Links,
		Hops:          s.Network.Hops,
		Lambda:        s.Traffic.Lambda,
		Eps:           s.Protocol.Eps,
		Seed:          s.Sim.Seed,
		Adv:           adv,
		Window:        s.Traffic.Window,
		LossP:         s.Model.Loss,
		Frame:         s.Protocol.Frame,
		DisableDelays: s.Protocol.DisableDelays,
		Backing:       s.Model.Backing,
		DenseMaxLinks: s.Model.DenseMax,
		FarFloor:      s.Model.FarFloor,
		CellSize:      s.Model.Cell,
		Trace:         s.Traffic.Trace,

		ResolveParallelism: s.Sim.ResolveParallelism,
	}
	if s.Network.Generator != nil {
		o.Gen = s.Network.Generator.cliGenerator(s.Network.Links)
	}
	return o
}

// simConfig maps the spec's simulation parameters.
func (s Scenario) simConfig() SimConfig {
	return SimConfig{
		Slots:              s.Sim.Slots,
		Seed:               s.Sim.Seed,
		WarmupFrac:         s.Sim.WarmupFrac,
		SampleEvery:        s.Sim.SampleEvery,
		Parallel:           s.Sim.Parallel,
		ResolveParallelism: s.Sim.ResolveParallelism,
	}
}

// CompiledScenario holds the runnable components a scenario validates
// and wires together: inspect the graph or protocol sizing, then Run.
// ModelDiagnostics records which interference-table backing a compiled
// SINR model resolved to and with which knobs — inspect it (or let
// cmd/dynsched print it) to confirm a scale run actually uses the
// spatial index rather than an O(n²) table.
type ModelDiagnostics struct {
	Backing       string  `json:"backing"`
	DenseMaxLinks int     `json:"denseMaxLinks"`
	FarFloor      float64 `json:"farFloor,omitempty"`
	CellSize      float64 `json:"cellSize,omitempty"`
}

type CompiledScenario struct {
	Scenario  Scenario
	Graph     *Graph
	Model     Model
	Process   InjectionProcess
	Protocol  *Protocol
	Config    SimConfig
	Observers []SimObserver
	// Diagnostics is the model's storage record (nil for non-SINR
	// models). It is informational: it never influences results.
	Diagnostics *ModelDiagnostics
}

// Compile validates the scenario and builds its components. Each call
// builds fresh instances, so two compilations never share mutable
// state.
func (s Scenario) Compile() (*CompiledScenario, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	w, err := cli.Build(s.options())
	if err != nil {
		return nil, fmt.Errorf("dynsched: scenario %q: %w", s.Name, err)
	}
	obs := make([]SimObserver, 0, len(s.Observers))
	for _, f := range s.Observers {
		obs = append(obs, f())
	}
	var diag *ModelDiagnostics
	if w.Diag != nil {
		diag = &ModelDiagnostics{
			Backing:       w.Diag.Backing,
			DenseMaxLinks: w.Diag.DenseMaxLinks,
			FarFloor:      w.Diag.FarFloor,
			CellSize:      w.Diag.CellSize,
		}
	}
	return &CompiledScenario{
		Scenario:    s,
		Graph:       w.Graph,
		Model:       w.Model,
		Process:     w.Process,
		Protocol:    w.Protocol,
		Config:      s.simConfig(),
		Observers:   obs,
		Diagnostics: diag,
	}, nil
}

// Run executes the compiled components once.
func (c *CompiledScenario) Run(ctx context.Context) (*SimResult, error) {
	return sim.Run(ctx, c.Config, c.Model, c.Process, c.Protocol, c.Observers...)
}

// Run compiles and executes the scenario once, as a single-unit
// execution plan (any sweep spec is ignored, as it always was). A nil
// ctx means context.Background(); a cancelled context yields the
// partial result together with an error wrapping the context's error.
func (s Scenario) Run(ctx context.Context) (*SimResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	pr, err := s.runPlan().Execute(ctx, ExecOptions{Parallel: 1})
	if pr.Run == nil && err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The context was cancelled before the pool claimed the unit.
		// The engine's contract is a partial (zero-slot) result under a
		// cancelled context, so hand the call through to it.
		c, cerr := s.Compile()
		if cerr != nil {
			return nil, cerr
		}
		return c.Run(ctx)
	}
	return pr.Run, err
}

// Replicate runs the scenario `reps` times through the execution
// planner — one unit per replication, each a fully-resolved scenario
// at the derived seed SubSeed(Sim.Seed, rep) — on a pool of
// Sim.Parallel workers, rebuilding every component (and observer) per
// replication. Results are bit-identical for every pool size. When ctx
// is cancelled mid-way it returns the aggregate over the completed
// replications together with an error wrapping the context's error.
func (s Scenario) Replicate(ctx context.Context, reps int) (*ReplicateResult, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if reps < 1 {
		return nil, fmt.Errorf("dynsched: scenario %q: reps %d must be positive", s.Name, reps)
	}
	pr, err := s.replicatePlan(reps).Execute(ctx, ExecOptions{})
	if err != nil {
		var ue *PlanUnitError
		if errors.As(err, &ue) {
			return nil, ue.Err
		}
		return pr.Replicate, fmt.Errorf("dynsched: replicate cancelled with %d of %d replications completed: %w",
			len(pr.Replicate.Runs), reps, err)
	}
	return pr.Replicate, nil
}

// SweepPoint is one sweep unit's outcome. One-dimensional sweeps
// populate Axis/Value (the legacy shape); grid sweeps populate Coords
// with one entry per axis instead.
type SweepPoint struct {
	Axis   string      `json:"axis"`
	Value  float64     `json:"value"`
	Coords []AxisValue `json:"coords,omitempty"`
	Result *SimResult  `json:"result"`
}

// RunSweep decomposes the scenario's sweep into an execution plan —
// one unit per value for a single axis, one per cross-product point
// for a grid — and runs the units on a pool of Sim.Parallel workers.
// Points come back in canonical unit order and are bit-identical for
// every pool size. When ctx is cancelled mid-sweep it returns the
// completed points together with the run's error. (Observer factories
// run concurrently under a parallel pool; set Sim.Parallel to 1 for
// factories that share unsynchronised state.)
func (s Scenario) RunSweep(ctx context.Context) ([]SweepPoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if len(s.Sweep.normalized()) == 0 {
		return nil, fmt.Errorf("dynsched: scenario %q has no sweep axis", s.Name)
	}
	p, err := s.sweepPlan()
	if err != nil {
		return nil, err
	}
	pr, err := p.Execute(ctx, ExecOptions{})
	if err != nil {
		var ue *PlanUnitError
		if errors.As(err, &ue) {
			if p.Kind == PlanSweep {
				return pr.Points, fmt.Errorf("dynsched: sweep %s=%v: %w", ue.Unit.Coords[0].Axis, ue.Unit.Coords[0].Value, ue.Err)
			}
			return pr.Points, fmt.Errorf("dynsched: sweep unit %d (%s): %w", ue.Unit.Index, ue.Unit.Label(), ue.Err)
		}
		return pr.Points, fmt.Errorf("dynsched: sweep cancelled with %d of %d units completed: %w", pr.UnitsDone, pr.UnitsTotal, err)
	}
	return pr.Points, nil
}

// ---- JSON ----

// ParseScenario decodes a scenario document. Unknown keys are rejected
// so typos fail loudly, and the result is validated.
func ParseScenario(data []byte) (Scenario, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Scenario
	if err := dec.Decode(&s); err != nil {
		return Scenario{}, fmt.Errorf("dynsched: parsing scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return Scenario{}, err
	}
	return s, nil
}

// EncodeJSON renders the scenario as an indented JSON document, the
// same format ParseScenario reads.
func (s Scenario) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// ---- Registry ----

var scenarioRegistry = struct {
	mu     sync.RWMutex
	byName map[string]Scenario
	order  []string
}{byName: map[string]Scenario{}}

// RegisterScenario adds a named scenario to the process-wide registry,
// rejecting unnamed, invalid, and duplicate entries.
func RegisterScenario(s Scenario) error {
	if err := s.Validate(); err != nil {
		return err
	}
	scenarioRegistry.mu.Lock()
	defer scenarioRegistry.mu.Unlock()
	if _, dup := scenarioRegistry.byName[s.Name]; dup {
		return fmt.Errorf("dynsched: scenario %q already registered", s.Name)
	}
	scenarioRegistry.byName[s.Name] = s
	scenarioRegistry.order = append(scenarioRegistry.order, s.Name)
	return nil
}

// MustRegisterScenario is RegisterScenario, panicking on error — for
// package-level registration of built-in scenarios.
func MustRegisterScenario(s Scenario) {
	if err := RegisterScenario(s); err != nil {
		panic(err)
	}
}

// Scenarios returns every registered scenario in registration order.
func Scenarios() []Scenario {
	scenarioRegistry.mu.RLock()
	defer scenarioRegistry.mu.RUnlock()
	out := make([]Scenario, 0, len(scenarioRegistry.order))
	for _, name := range scenarioRegistry.order {
		out = append(out, scenarioRegistry.byName[name])
	}
	return out
}

// ScenarioByName looks a registered scenario up.
func ScenarioByName(name string) (Scenario, bool) {
	scenarioRegistry.mu.RLock()
	defer scenarioRegistry.mu.RUnlock()
	s, ok := scenarioRegistry.byName[name]
	return s, ok
}
