// Package dynsched is a library for dynamic packet scheduling in
// wireless networks, reproducing Thomas Kesselheim's PODC 2012 paper
// "Dynamic Packet Scheduling in Wireless Networks".
//
// The library turns algorithms for the *static* scheduling problem
// (deliver a fixed set of transmission requests in few time slots) into
// *dynamic, stable* protocols that serve packets injected over time —
// stochastically or by a bounded adversary — with bounded expected
// queues and latency. The transformation is black-box and works for any
// interference model expressible as a linear interference measure: a
// matrix W over communication links with I = ‖W·R‖∞. Instantiations
// include the SINR (physical) model with fixed or protocol-chosen
// powers, conflict graphs, the multiple-access channel, and
// packet-routing networks.
//
// # Quick start
//
// Experiments are declared as Scenario values — network, interference
// model, traffic, protocol and simulation parameters in one
// JSON-serialisable struct — then compiled and run:
//
//	sc := dynsched.NewScenario("quickstart",
//		dynsched.WithModel("identity"),
//		dynsched.WithTopology("line"),
//		dynsched.WithNodes(6), dynsched.WithHops(5),
//		dynsched.WithLambda(0.4),
//		dynsched.WithAlgorithm("full-parallel"),
//		dynsched.WithSlots(50_000), dynsched.WithSeed(1),
//	)
//	res, _ := sc.Run(ctx)
//	fmt.Println(res.Verdict.Stable, res.Latency.Mean())
//
// Named scenarios register process-wide (RegisterScenario, Scenarios,
// ScenarioByName) and run from cmd/dynsched by name; custom metrics
// attach as sim.Observer values without touching the engine. The
// underlying primitives (networks, models, injection processes,
// protocols, Simulate/Replicate) remain exported below for programs
// that need to assemble components by hand.
//
// See the examples directory for complete programs and DESIGN.md for
// the system inventory.
package dynsched

import (
	"context"
	"io"
	"math/rand"

	"dynsched/internal/baseline"
	"dynsched/internal/capacity"
	"dynsched/internal/conflict"
	"dynsched/internal/core"
	"dynsched/internal/geom"
	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/lowerbound"
	"dynsched/internal/mac"
	"dynsched/internal/netgraph"
	"dynsched/internal/radio"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
	"dynsched/internal/traffic"
)

// ---- Geometry and networks ----

// Point is a planar location.
type Point = geom.Point

// NodeID identifies a network node.
type NodeID = netgraph.NodeID

// LinkID identifies a directed communication link.
type LinkID = netgraph.LinkID

// Graph is a directed communication graph.
type Graph = netgraph.Graph

// Path is a packet's fixed route, as a sequence of link IDs.
type Path = netgraph.Path

// Instance couples a graph with the path-length bound D; its M() is the
// significant network size m = max(|E|, D).
type Instance = netgraph.Instance

// RoutingTable holds precomputed all-pairs shortest paths.
type RoutingTable = netgraph.RoutingTable

// NewGraph creates an empty graph with n nodes.
func NewGraph(n int) *Graph { return netgraph.New(n) }

// GridNetwork builds a rows×cols grid with bidirectional neighbour links.
func GridNetwork(rows, cols int, spacing float64) *Graph {
	return netgraph.GridNetwork(rows, cols, spacing)
}

// LineNetwork builds n collinear nodes with bidirectional neighbour links.
func LineNetwork(n int, spacing float64) *Graph { return netgraph.LineNetwork(n, spacing) }

// MACChannelNetwork builds n stations with one link each to a common sink.
func MACChannelNetwork(n int) *Graph { return netgraph.MACChannel(n) }

// ShortestPath returns a minimum-hop path between two nodes.
func ShortestPath(g *Graph, u, v NodeID) (Path, bool) { return netgraph.ShortestPath(g, u, v) }

// NewRoutingTable precomputes all-pairs shortest paths.
func NewRoutingTable(g *Graph) *RoutingTable { return netgraph.NewRoutingTable(g) }

// NewInstance wraps a graph with the path-length bound D.
func NewInstance(g *Graph, maxPathLen int) *Instance { return netgraph.NewInstance(g, maxPathLen) }

// ---- Interference models ----

// Model is the central abstraction: the analysis matrix W plus the
// slot-level ground truth of which simultaneous transmissions succeed.
type Model = interference.Model

// Identity is the packet-routing model (W = identity; measure = congestion).
type Identity = interference.Identity

// MAC is the multiple-access-channel model (W = all ones; one success
// per slot network-wide).
type MAC = interference.AllOnes

// Lossy wraps a model with independent per-transmission loss.
type Lossy = interference.Lossy

// Measure returns I = ‖W·R‖∞ for a request vector. Models that expose
// their matrix in CSR form (SparseWeights) are evaluated in O(nnz).
func Measure(m Model, r []int) float64 { return interference.Measure(m, r) }

// SparseWeights is a CSR (compressed sparse row) weight matrix — the
// flat-array fast path behind Measure and IncrementalMeasure.
type SparseWeights = interference.Sparse

// WeightRows extracts a model's weight matrix in CSR form (returned
// directly when the model precomputes it).
func WeightRows(m Model) *SparseWeights { return interference.SparseFromModel(m) }

// IncrementalMeasure maintains ‖W·R‖∞ under single-request Add/Remove
// updates in O(nnz(column)) per update — the sliding-window accountant
// for callers that mutate a request vector one packet at a time.
type IncrementalMeasure = interference.IncrementalMeasure

// NewIncrementalMeasure builds an incremental measure accumulator for
// the model, starting from the empty request vector.
func NewIncrementalMeasure(m Model) *IncrementalMeasure { return interference.NewIncremental(m) }

// SINRParams are the physical constants of the SINR model.
type SINRParams = sinr.Params

// PowerKind names the built-in SINR power-assignment families.
type PowerKind = sinr.PowerKind

// SINR power assignment families.
const (
	PowerUniform    = sinr.PowerUniform
	PowerLinear     = sinr.PowerLinear
	PowerSquareRoot = sinr.PowerSquareRoot
)

// WeightKind selects the Section 6.1 weight-matrix construction.
type WeightKind = sinr.WeightKind

// SINR fixed-power weight-matrix constructions.
const (
	WeightAffectance = sinr.WeightAffectance
	WeightMonotone   = sinr.WeightMonotone
)

// SINRFixedPower is the physical model with fixed per-link powers.
type SINRFixedPower = sinr.FixedPower

// SINRPowerControl is the physical model where the protocol chooses
// powers per transmission.
type SINRPowerControl = sinr.PowerControl

// DefaultSINRParams returns α=3, β=1.5, negligible noise.
func DefaultSINRParams() SINRParams { return sinr.DefaultParams() }

// SINRPowers computes per-link powers for a built-in family.
func SINRPowers(g *Graph, prm SINRParams, kind PowerKind, base float64) ([]float64, error) {
	return sinr.Powers(g, prm, kind, base)
}

// NewSINRFixedPower builds a fixed-power SINR model on a positioned graph.
func NewSINRFixedPower(g *Graph, prm SINRParams, powers []float64, kind WeightKind) (*SINRFixedPower, error) {
	return sinr.NewFixedPower(g, prm, powers, kind)
}

// NewSINRPowerControl builds the power-control SINR model of Section 6.2.
func NewSINRPowerControl(g *Graph, prm SINRParams) (*SINRPowerControl, error) {
	return sinr.NewPowerControl(g, prm)
}

// IsFadingMetric reports whether the graph's node metric is a fading
// metric for the parameters (α above the estimated doubling dimension),
// the regime where Corollary 14's ratio improves to O(log m).
func IsFadingMetric(g *Graph, prm SINRParams) bool { return sinr.IsFadingMetric(g, prm) }

// DoublingDimension estimates the doubling dimension of a finite metric
// given by its distance matrix.
func DoublingDimension(dist [][]float64) float64 { return geom.DoublingDimension(dist) }

// ConflictGraph is an undirected conflict relation over links.
type ConflictGraph = conflict.Graph

// NewConflictGraph creates a conflict graph over n links.
func NewConflictGraph(n int) *ConflictGraph { return conflict.NewGraph(n) }

// NodeConstraintConflicts builds the conflict graph in which links
// sharing an endpoint conflict.
func NodeConstraintConflicts(g *Graph) *ConflictGraph { return conflict.NodeConstraint(g) }

// Distance2MatchingConflicts builds the distance-2 matching conflict graph.
func Distance2MatchingConflicts(g *Graph) *ConflictGraph { return conflict.Distance2Matching(g) }

// ProtocolModelConflicts builds the protocol-model conflict graph with
// guard parameter delta.
func ProtocolModelConflicts(g *Graph, delta float64) *ConflictGraph {
	return conflict.ProtocolModel(g, delta)
}

// NewConflictModel adapts a conflict graph and ordering (nil = degeneracy
// order) into an interference model per Section 7.2.
func NewConflictModel(cg *ConflictGraph, order []int) (Model, error) {
	return conflict.NewModel(cg, order)
}

// ---- Static algorithms ----

// Request is a single-hop transmission demand for static scheduling.
type Request = static.Request

// StaticAlgorithm schedules a fixed set of requests.
type StaticAlgorithm = static.Algorithm

// StaticResult summarises a standalone static run.
type StaticResult = static.Result

// Decay is the 1/(4I) randomized algorithm of Theorem 19 (O(I·log n)).
type Decay = static.Decay

// Spread is the delay-spreading O(I + polylog) algorithm used for
// linear power assignments (Corollary 12).
type Spread = static.Spread

// Densify is Algorithm 1: the Section 3 transformation making schedule
// lengths linear in I for dense instances.
type Densify = static.Densify

// Trivial serves one request per slot (the universal fallback).
type Trivial = static.Trivial

// FullParallel fires every link each slot (optimal for packet routing).
type FullParallel = static.FullParallel

// GreedyPowerControl is the centralized scheduler for the power-control
// model (Corollary 14).
type GreedyPowerControl = static.GreedyPowerControl

// MACDecay is Algorithm 2, the symmetric multiple-access-channel scheme
// of Lemma 15.
type MACDecay = mac.Decay

// RoundRobinWithholding is the asymmetric deterministic MAC scheme of
// Lemma 17.
type RoundRobinWithholding = mac.RoundRobinWithholding

// RunStatic drives a static algorithm to completion (maxSlots ≤ 0 uses
// the algorithm's own budget).
func RunStatic(seed int64, m Model, alg StaticAlgorithm, reqs []Request, maxSlots int) StaticResult {
	return static.Run(newRand(seed), m, alg, reqs, maxSlots)
}

// RequestMeasure computes ‖W·R‖∞ of a request multiset.
func RequestMeasure(m Model, reqs []Request) float64 { return static.RequestMeasure(m, reqs) }

// ---- Injection ----

// Packet is an injected communication request with a fixed path.
type Packet = inject.Packet

// InjectionProcess produces the packets arriving at each slot.
type InjectionProcess = inject.Process

// Generator is one user of the stochastic injection model.
type Generator = inject.Generator

// PathChoice is a (path, probability) option of a generator.
type PathChoice = inject.PathChoice

// Stochastic is the finite-user i.i.d. injection process of Section 2.1.
type Stochastic = inject.Stochastic

// Adversary is a (w, λ)-bounded window-adversary injection process.
type Adversary = inject.Adversary

// AdversaryTiming places a pattern adversary's packets in its window.
type AdversaryTiming = inject.Timing

// Adversary timings.
const (
	TimingBurst    = inject.TimingBurst
	TimingSpread   = inject.TimingSpread
	TimingSawtooth = inject.TimingSawtooth
)

// NewStochastic builds a stochastic process and computes its rate.
func NewStochastic(m Model, gens []Generator) (*Stochastic, error) {
	return inject.NewStochastic(m, gens)
}

// StochasticAtRate scales generators to an exact injection rate λ.
func StochasticAtRate(m Model, gens []Generator, lambda float64) (*Stochastic, error) {
	return inject.StochasticAtRate(m, gens, lambda)
}

// NewAdversary builds a deterministic (w, λ)-bounded pattern adversary.
func NewAdversary(m Model, paths []Path, w int, lambda float64, timing AdversaryTiming) (Adversary, error) {
	return inject.NewPattern(m, paths, w, lambda, timing)
}

// NewRotatingAdversary builds a (w, λ)-bounded adversary that spends
// each window's whole budget on a single path, cycling across windows.
func NewRotatingAdversary(m Model, paths []Path, w int, lambda float64, timing AdversaryTiming) (Adversary, error) {
	return inject.NewRotating(m, paths, w, lambda, timing)
}

// InjectionTrace is a recorded arrival sequence replayable across runs,
// for paired protocol comparisons. Traces serialize to NDJSON
// (WriteNDJSON / ParseTrace) and embed in scenario documents as
// TraceEvent lists (Records / WithTrace).
type InjectionTrace = inject.Trace

// RecordInjections runs a process for the given horizon and captures
// every arrival.
func RecordInjections(proc InjectionProcess, slots, seed int64) *InjectionTrace {
	return inject.Record(proc, slots, newRand(seed))
}

// ParseTrace reads a workload recorded in NDJSON form — one header
// line then one line per packet, the format InjectionTrace.WriteNDJSON
// emits. ParseTrace∘WriteNDJSON is the identity, so replaying a
// shipped trace is byte-identical to replaying the recording.
func ParseTrace(r io.Reader) (*InjectionTrace, error) { return inject.TraceFromNDJSON(r) }

// ---- The dynamic protocol (the paper's contribution) ----

// ProtocolConfig parameterises the dynamic protocol.
type ProtocolConfig = core.Config

// Protocol is the frame-based dynamic scheduling protocol of Sections
// 4–5.
type Protocol = core.Protocol

// Sizing describes the protocol's derived frame layout.
type Sizing = core.Sizing

// NewProtocol builds the dynamic protocol, solving for the frame length
// when cfg.T is zero.
func NewProtocol(cfg ProtocolConfig) (*Protocol, error) { return core.New(cfg) }

// SolveFrameLength finds the smallest self-consistent frame length for
// an algorithm at rate λ with headroom ε.
func SolveFrameLength(alg StaticAlgorithm, numLinks, m int, lambda, eps float64) (int, error) {
	return core.SolveFrameLength(alg, numLinks, m, lambda, eps)
}

// ConcentrationFrameLength returns the frame length that puts the frame
// capacity `sigmas` standard deviations above the mean arrivals.
func ConcentrationFrameLength(lambda, eps, sigmas float64) int {
	return core.ConcentrationFrameLength(lambda, eps, sigmas)
}

// ---- Baselines ----

// NewMaxWeight builds the centralized Tassiulas–Ephremides reference
// scheduler.
func NewMaxWeight(m Model) *baseline.MaxWeight { return baseline.NewMaxWeight(m) }

// NewMACFallback builds the serializing O(m)-competitive fallback.
func NewMACFallback(numLinks int) *baseline.MACFallback { return baseline.NewMACFallback(numLinks) }

// NewFIFOGreedy builds the greedy per-link FIFO protocol.
func NewFIFOGreedy(numLinks int) *baseline.FIFOGreedy { return baseline.NewFIFOGreedy(numLinks) }

// ---- Lower bound (Theorem 20 / Figure 1) ----

// Figure1Model is the lower-bound instance: m−1 interference-free short
// links plus one long link requiring global silence.
type Figure1Model = lowerbound.Model

// NewGlobalTDM builds the global-clock even/odd protocol for Figure 1.
func NewGlobalTDM(m Figure1Model) *lowerbound.GlobalTDM { return lowerbound.NewGlobalTDM(m) }

// NewLocalGreedy builds the local-clock greedy protocol for Figure 1.
func NewLocalGreedy(m Figure1Model) *lowerbound.LocalGreedy { return lowerbound.NewLocalGreedy(m) }

// ---- Radio-network model (§7.2) ----

// RadioModel is the broadcast interference model: a node receives iff
// exactly one audible neighbour transmits.
type RadioModel = radio.Model

// NewRadioModel derives the radio model (and its conflict-graph W) from
// a communication graph.
func NewRadioModel(g *Graph) (*RadioModel, error) { return radio.New(g) }

// ---- Traffic workloads ----

// TrafficSingleHop injects one generator per link at the given rate.
func TrafficSingleHop(m Model, lambda float64) (*Stochastic, error) {
	return traffic.SingleHop(m, lambda)
}

// TrafficPaths spreads the rate across explicit paths.
func TrafficPaths(m Model, paths []Path, lambda float64) (*Stochastic, error) {
	return traffic.Paths(m, paths, lambda)
}

// TrafficConvergecast routes every node to a sink; it returns the
// process and the longest route.
func TrafficConvergecast(m Model, g *Graph, sink NodeID, lambda float64) (*Stochastic, int, error) {
	return traffic.Convergecast(m, g, sink, lambda)
}

// ---- Capacity references ----

// SlotCapacity estimates the largest number of links deliverable in a
// single slot (exact for ≤20 links, randomized greedy beyond).
func SlotCapacity(seed int64, m Model) int {
	return capacity.SlotCapacity(rand.New(rand.NewSource(seed)), m)
}

// MaxFeasibleMeasure estimates the optimal protocol's per-slot measure
// throughput: the largest ‖W·R‖∞ of any single-slot feasible set.
func MaxFeasibleMeasure(seed int64, m Model, rounds int) float64 {
	return capacity.MaxFeasibleMeasure(rand.New(rand.NewSource(seed)), m, rounds)
}

// ---- Simulation ----

// SimConfig parameterises a simulation run.
type SimConfig = sim.Config

// SimResult aggregates a run's metrics.
type SimResult = sim.Result

// SimProtocol is the interface dynamic protocols implement.
type SimProtocol = sim.Protocol

// Transmission is a protocol's request to send one packet on one link.
type Transmission = sim.Transmission

// SimObserver receives simulation lifecycle events (OnInject, OnSlot,
// OnDeliver, OnEnd). Attach custom observers via SimulateContext or
// Scenario observers to collect metrics the engine does not know about.
type SimObserver = sim.Observer

// BaseObserver is a no-op SimObserver for embedding, so custom
// observers implement only the events they care about.
type BaseObserver = sim.BaseObserver

// SlotView is the per-slot snapshot handed to observers.
type SlotView = sim.SlotView

// SimProgress is a live snapshot of a running simulation — slots done,
// injection/delivery counters and a streaming latency summary — as
// emitted by the progress observer and dynschedd's event stream.
type SimProgress = sim.Progress

// NewProgressObserver builds an observer that emits a SimProgress
// snapshot every `every` slots (0 = totalSlots/20) plus a final one
// when the run ends; attach it via WithObservers or SimulateContext.
// report runs on the engine goroutine: keep it cheap or hand off.
func NewProgressObserver(totalSlots, every int64, report func(SimProgress)) SimObserver {
	return sim.NewProgressObserver(totalSlots, every, report)
}

// Delivery describes one packet reaching the end of its path.
type Delivery = sim.Delivery

// Simulate runs a protocol against a model and injection process. It is
// a thin wrapper over SimulateContext with a background context.
func Simulate(cfg SimConfig, m Model, proc InjectionProcess, proto SimProtocol) (*SimResult, error) {
	return sim.Run(context.Background(), cfg, m, proc, proto)
}

// SimulateContext runs a protocol with cancellation/deadline support
// and optional extra observers. When ctx is cancelled mid-run it
// returns the partial result together with an error wrapping the
// context's error.
func SimulateContext(ctx context.Context, cfg SimConfig, m Model, proc InjectionProcess, proto SimProtocol, obs ...SimObserver) (*SimResult, error) {
	return sim.Run(ctx, cfg, m, proc, proto, obs...)
}

// Checkpoint is a resumable snapshot of a running simulation, taken at
// a protocol frame boundary: RNG positions, in-flight packets, and
// component/observer state, all JSON-serialisable. Resuming a run from
// a checkpoint produces a final result byte-identical to the
// uninterrupted run.
type Checkpoint = sim.Checkpoint

// CheckpointSpec configures checkpointing on SimConfig: take a
// snapshot every Every slots into Sink, and/or resume from Resume.
type CheckpointSpec = sim.CheckpointSpec

// CheckpointableObserver is a SimObserver whose state survives
// checkpoint/resume.
type CheckpointableObserver = sim.CheckpointableObserver

// SupportsCheckpoint reports whether a component combination can be
// checkpointed: the process and protocol must serialize their state,
// and the model must either be stateless or declare itself ready.
func SupportsCheckpoint(m Model, proc InjectionProcess, proto SimProtocol) bool {
	return sim.SupportsCheckpoint(m, proc, proto)
}

// ReplicateInput bundles one replication's components.
type ReplicateInput = sim.RunInput

// ReplicateResult aggregates independent replications.
type ReplicateResult = sim.ReplicateResult

// Replicate runs independent replications on a worker pool of
// cfg.Parallel goroutines (0 = GOMAXPROCS) with distinct derived seeds
// and aggregates the headline metrics. Results are bit-identical for
// every pool size. It is a thin wrapper over ReplicateContext with a
// background context.
func Replicate(cfg SimConfig, reps int, build func(rep int, seed int64) (ReplicateInput, error)) (*ReplicateResult, error) {
	return sim.Replicate(context.Background(), cfg, reps, build)
}

// ReplicateContext is Replicate with cancellation/deadline support:
// when ctx is cancelled mid-way it returns the completed replications
// together with an error wrapping the context's error.
func ReplicateContext(ctx context.Context, cfg SimConfig, reps int, build func(rep int, seed int64) (ReplicateInput, error)) (*ReplicateResult, error) {
	return sim.Replicate(ctx, cfg, reps, build)
}

// SubSeed derives the seed of shard i from a base seed via a SplitMix64
// step — well-separated deterministic streams for parallel shards.
func SubSeed(base int64, shard int) int64 { return sim.SubSeed(base, shard) }
