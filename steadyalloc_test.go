package dynsched

import (
	"context"
	"runtime"
	"runtime/debug"
	"testing"

	"dynsched/internal/metrics"
	"dynsched/internal/sim"
	"dynsched/internal/testenv"
)

// simulateAllocs runs the quick-start workload for the given horizon
// and returns the total heap allocations the run performed (GC off,
// single goroutine, so the Mallocs delta is exact). Observers are
// attached to the run but constructed by the caller, outside the
// measured window.
func simulateAllocs(t *testing.T, slots int64, obs ...SimObserver) uint64 {
	t.Helper()
	g := LineNetwork(8, 1)
	model := Identity{Links: g.NumLinks()}
	path, _ := ShortestPath(g, 0, 7)
	proc, err := StochasticAtRate(model, []Generator{
		{Choices: []PathChoice{{Path: path, P: 0.4}}},
	}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: FullParallel{}, M: g.NumLinks(), Lambda: 0.4, Eps: 0.25,
	})
	if err != nil {
		t.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	res, err := SimulateContext(context.Background(), SimConfig{Slots: slots, Seed: 9}, model, proc, proto, obs...)
	runtime.ReadMemStats(&after)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("protocol errors: %d", res.ProtocolErrors)
	}
	return after.Mallocs - before.Mallocs
}

// TestDynamicProtocolSteadyStateAllocs pins the zero-allocation packet
// lifecycle end to end, construction excluded: comparing a short and a
// long run of the same workload isolates the per-slot allocation rate
// from the fixed start-up and warm-up costs that the
// BenchmarkDynamicProtocolSlot baseline necessarily amortizes. In
// steady state the engine (arena, interner), the injection process, and
// the protocol (free list, recycled executions, emission record) must
// allocate nothing per slot.
func TestDynamicProtocolSteadyStateAllocs(t *testing.T) {
	testenv.SkipIfRace(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	const short, long = 4_000, 24_000
	shortAllocs := simulateAllocs(t, short)
	longAllocs := simulateAllocs(t, long)
	extra := int64(longAllocs) - int64(shortAllocs)
	perSlot := float64(extra) / float64(long-short)
	// The tolerance absorbs rare amortized growth (a buffer crossing its
	// high-water mark late); a single per-slot or per-packet allocation
	// would show up as ≥ 0.4.
	if perSlot > 0.02 {
		t.Errorf("steady state allocates %.4f objects/slot (%d extra allocs over %d slots), want ~0",
			perSlot, extra, long-short)
	}
}

// TestDynamicProtocolSteadyStateAllocsTraced is the same guard with the
// metrics tracing observer attached: instrumentation must not cost the
// hot loop its zero-allocation property. The observer accumulates into
// plain int64 fields per slot and flushes to the shared counters once,
// at OnDone; the sampled resolve-time histogram observes via binary
// search into preallocated buckets.
func TestDynamicProtocolSteadyStateAllocsTraced(t *testing.T) {
	testenv.SkipIfRace(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	em := sim.NewEngineMetrics(metrics.NewRegistry())
	const short, long = 4_000, 24_000
	shortAllocs := simulateAllocs(t, short, em.NewObserver(0))
	longAllocs := simulateAllocs(t, long, em.NewObserver(0))
	extra := int64(longAllocs) - int64(shortAllocs)
	perSlot := float64(extra) / float64(long-short)
	if perSlot > 0.02 {
		t.Errorf("traced steady state allocates %.4f objects/slot (%d extra allocs over %d slots), want ~0",
			perSlot, extra, long-short)
	}
}
