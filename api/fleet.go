package api

import (
	"encoding/json"

	"dynsched"
)

// The fleet wire types: the /v1/fleet lease protocol a worker runner
// (`dynschedd -join <coordinator>`) speaks against a coordinator, and
// the fleet section of the /healthz document.
//
// The protocol is deliberately batch-oriented so throughput amortizes
// round-trip time: a runner leases a *batch* of plan units per request
// (sized by its adaptive controller), executes them with the ordinary
// engine, and streams completed results back in batched reports over a
// reused keep-alive connection. Report bodies are gzip-compressed;
// lease responses are gzip-compressed when the client accepts it.
//
//	POST /v1/fleet/lease      lease a batch of units (long-polls up to
//	                          waitMs when none are pending)
//	POST /v1/fleet/report     report completed units, renew the
//	                          runner's outstanding leases
//	POST /v1/fleet/heartbeat  register liveness and renew leases
//	GET  /v1/units/{hash}     the coordinator's content-addressed unit
//	                          result cache (404 = not cached)

// LeaseRequest is the POST /v1/fleet/lease body.
type LeaseRequest struct {
	// Runner is the runner's self-assigned stable identity
	// (host-pid-suffix); the coordinator tracks liveness, leases and
	// throughput per runner and excludes a lease-expired runner from
	// re-leases of the units it lost.
	Runner string `json:"runner"`
	// Want is how many units the runner's batch controller asks for.
	// The coordinator may grant fewer: its fair-share cap divides
	// pending units across active runners so one runner cannot starve
	// the rest of the fleet.
	Want int `json:"want"`
	// WaitMs long-polls: when no units are pending, the coordinator
	// parks the request up to this long before answering with an empty
	// batch, so idle runners do not hot-poll.
	WaitMs int64 `json:"waitMs,omitempty"`
}

// LeasedUnit is one granted unit of a lease batch.
type LeasedUnit struct {
	// Lease is the grant's unique ID; reports must quote it. A lease
	// that expires before its report arrives is re-granted under a new
	// ID, and the late report against the stale ID is rejected — the
	// exactly-once merge guard.
	Lease uint64 `json:"lease"`
	// Hash is the unit's content address (its resolved Scenario.Hash);
	// reports echo it and the coordinator cross-checks.
	Hash string `json:"hash"`
	// Scenario is the fully-resolved single-run spec to execute.
	Scenario dynsched.Scenario `json:"scenario"`
	// NoCache tells the runner to skip its pre-execution
	// GET /v1/units/{hash} check (the submission demanded fresh runs).
	NoCache bool `json:"noCache,omitempty"`
}

// LeaseResponse is the POST /v1/fleet/lease answer. An empty Units
// slice means nothing was pending within the long-poll window.
type LeaseResponse struct {
	Units []LeasedUnit `json:"units"`
	// ExpiryMs is the lease lifetime: a runner must report or renew
	// (heartbeat) within it or the units are re-leased without it.
	ExpiryMs int64 `json:"expiryMs"`
	// Runners is the coordinator's current active-runner count — input
	// to the runner's batch controller.
	Runners int `json:"runners"`
}

// UnitReport is one completed unit in a report batch.
type UnitReport struct {
	Lease uint64 `json:"lease"`
	Hash  string `json:"hash"`
	// Result is the marshaled SimResult on success.
	Result json.RawMessage `json:"result,omitempty"`
	// Error carries an execution failure (compile error, model
	// rejection); the coordinator fails the owning plan with it.
	Error string `json:"error,omitempty"`
}

// ReportRequest is the POST /v1/fleet/report body, sent with
// Content-Encoding: gzip. Reporting renews the runner's remaining
// leases as a side effect, so a busy runner needs no separate
// heartbeat traffic.
type ReportRequest struct {
	Runner  string       `json:"runner"`
	Results []UnitReport `json:"results"`
}

// ReportResponse acknowledges a report batch.
type ReportResponse struct {
	// Merged counts results accepted and merged into their plans.
	Merged int `json:"merged"`
	// Rejected counts stale results: the lease expired and the unit was
	// re-granted (or the plan was cancelled) before the report arrived.
	// Rejection is idempotent — the unit is merged exactly once, by
	// whichever lease reports first while still valid.
	Rejected int `json:"rejected"`
	// ExpiryMs mirrors the current lease lifetime (renewal deadline).
	ExpiryMs int64 `json:"expiryMs"`
}

// HeartbeatRequest is the POST /v1/fleet/heartbeat body: pure liveness,
// renewing every lease the runner holds.
type HeartbeatRequest struct {
	Runner string `json:"runner"`
}

// HeartbeatResponse answers a heartbeat.
type HeartbeatResponse struct {
	ExpiryMs int64 `json:"expiryMs"`
	Runners  int   `json:"runners"`
}

// FleetHealth is the fleet section of the /healthz document.
type FleetHealth struct {
	// Runners is the number of active (recently heard-from) runners.
	Runners int `json:"runners"`
	// PendingUnits is how many plan units are parked awaiting a lease.
	PendingUnits int `json:"pendingUnits"`
	// Leased is how many units are currently out on a lease.
	Leased int `json:"leased"`
	// LeasedTotal counts every lease grant since boot; ReLeased counts
	// grants that re-issued a unit after its previous lease expired or
	// was released — the lease-thrash signal.
	LeasedTotal int64 `json:"leasedTotal"`
	ReLeased    int64 `json:"reLeased"`
	// Merged/Rejected count reported unit results by fate.
	Merged   int64 `json:"merged"`
	Rejected int64 `json:"rejected"`
	// RunnerDetail lists the per-runner vitals, sorted by ID.
	RunnerDetail []RunnerHealth `json:"runnerDetail,omitempty"`
}

// RunnerHealth is one runner's row in the fleet health document.
type RunnerHealth struct {
	ID string `json:"id"`
	// Leased is how many units the runner currently holds.
	Leased int `json:"leased"`
	// UnitsDone counts results this runner has had merged.
	UnitsDone int64 `json:"unitsDone"`
	// UnitsPerSec is the runner's merge throughput since it joined —
	// the straggler-detection signal.
	UnitsPerSec float64 `json:"unitsPerSec"`
	// IdleMs is how long ago the coordinator last heard from it.
	IdleMs int64 `json:"idleMs"`
}
