// Package api holds the dynschedd wire types: the JSON request,
// response and event documents of the daemon's /v1 HTTP surface.
// It is the importable client surface — external programs decode
// service responses with these types (see examples/client for the
// submit → stream → fetch flow) and internal/server serves them, so
// the two cannot drift apart.
package api

import (
	"encoding/json"

	"dynsched"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Queued and Running are transient; Done, Failed
// and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in state s will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SubmitRequest is the POST /v1/jobs body. Exactly one of Name (a
// registered scenario) and Scenario (an inline spec) must be set. A
// scenario with a sweep spec (single-axis or multi-axis grid) submits
// an execution *plan*: the server decomposes it into per-unit
// simulations, consults the result cache once per unit, and assembles
// a PlanResult document. Reps > 1 likewise submits a replicate plan.
type SubmitRequest struct {
	Name     string             `json:"name,omitempty"`
	Scenario *dynsched.Scenario `json:"scenario,omitempty"`
	// Slots and Seed, when present, override the scenario before it is
	// hashed and run — so `{"name":"sinr-stochastic","slots":2000}` is a
	// distinct cacheable experiment from the full-length one.
	//
	// Compatibility note: these were plain int64 fields through PR 4,
	// which made the zero value a "not set" sentinel — an explicit
	// `"seed":0` (a legitimate seed) or `"slots":0` (a legitimate
	// validation probe) was silently indistinguishable from absence.
	// They are pointers now so absence (null/omitted) and zero are
	// distinct; the JSON wire format of every previously expressible
	// request is unchanged.
	Slots *int64 `json:"slots,omitempty"`
	Seed  *int64 `json:"seed,omitempty"`
	// Reps, when > 1, runs the scenario as a replicate plan of that many
	// derived-seed replications (0 and 1 mean a single run).
	Reps int `json:"reps,omitempty"`
	// NoCache forces fresh simulations even when the result cache holds
	// this spec (for plans: every unit runs, nothing is looked up).
	NoCache bool `json:"noCache,omitempty"`
}

// JobView is the API representation of a job. For plan jobs (sweep,
// grid, replicate) Hash is the plan-level content address and the
// units* counters report per-unit progress; single-run jobs keep the
// scenario hash and omit the counters.
type JobView struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Scenario string `json:"scenario"`
	State    State  `json:"state"`
	Cached   bool   `json:"cached"`
	Error    string `json:"error,omitempty"`
	// UnitsTotal/UnitsDone/UnitsCached report a plan job's unit
	// progress: how many units the plan decomposed into, how many have
	// completed, and how many of those were served from the per-unit
	// result cache without simulating.
	UnitsTotal  int `json:"unitsTotal,omitempty"`
	UnitsDone   int `json:"unitsDone,omitempty"`
	UnitsCached int `json:"unitsCached,omitempty"`
	// Recovered marks a job restored from the journal after a daemon
	// restart: the submission survived the crash and was resubmitted
	// under its original ID.
	Recovered bool `json:"recovered,omitempty"`
	// ResumedFromSlot is the highest slot any of the job's simulations
	// resumed from via an on-disk engine checkpoint instead of slot 0
	// (0 = every simulation started fresh).
	ResumedFromSlot int64 `json:"resumedFromSlot,omitempty"`
	// Events is the current length of the job's event log — what a
	// fresh GET /v1/jobs/{id}/events replay would deliver before
	// following live.
	Events int `json:"events,omitempty"`
	// EventsDropped counts unit completions elided from a plan job's
	// event stream by thinning: plans beyond 512 units publish every
	// ⌈total/512⌉-th completion plus the final one, and this reports
	// how many fell between. The units* counters always reflect every
	// unit; only stream entries are elided.
	EventsDropped int `json:"eventsDropped,omitempty"`
	// Result holds the run's marshaled SimResult (single runs) or
	// PlanResult (plan jobs) once the job is done. It is the exact byte
	// sequence the result cache stores, so two submissions of one spec
	// observe bit-identical documents.
	Result json.RawMessage `json:"result,omitempty"`
}

// Event is one entry of a job's progress stream, delivered to clients
// as NDJSON by GET /v1/jobs/{id}/events. Seq is the event's position
// in the job's log, assigned contiguously from 0, so a client can
// detect gaps.
type Event struct {
	Seq  int    `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"` // queued, started, progress, unit, done, failed, cancelled
	// Cached marks a done event served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Progress carries the live snapshot of progress events.
	Progress *dynsched.SimProgress `json:"progress,omitempty"`
	// Unit carries the completion record of "unit" events (plan jobs).
	Unit  *UnitEvent `json:"unit,omitempty"`
	Error string     `json:"error,omitempty"`
}

// UnitEvent is the payload of a plan job's per-unit completion events:
// which unit finished (its index, content address and resolved sweep
// coordinates) and the plan's progress counters after it. Events are
// published serialized with strictly increasing UnitsDone — one event
// per unit for plans up to 512 units, a thinned stream (plus the final
// completion) beyond that, so a huge grid cannot grow the retained
// event log without bound. The job view's counters always reflect
// every unit.
type UnitEvent struct {
	Index int    `json:"index"`
	Hash  string `json:"hash"`
	// Coords are the unit's resolved sweep coordinates (sweep and grid
	// plans; replicate units are identified by Index, their replication
	// number).
	Coords []dynsched.AxisValue `json:"coords,omitempty"`
	// Cached marks a unit served from the per-unit result cache.
	Cached      bool `json:"cached,omitempty"`
	UnitsDone   int  `json:"unitsDone"`
	UnitsCached int  `json:"unitsCached,omitempty"`
	UnitsTotal  int  `json:"unitsTotal"`
}

// ScenarioInfo is one GET /v1/scenarios entry.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Hash        string `json:"hash"`
}

// Health is the GET /healthz document: liveness, queue occupancy and
// the durability tier's vital signs. Field names are wire-compatible
// with the pre-typed map document; QueueCapacity, WorkersBusy and
// Draining are additive.
type Health struct {
	OK     bool `json:"ok"`
	Queued int  `json:"queued"`
	// QueueCapacity is the queue bound; Queued == QueueCapacity means
	// new submissions are being rejected with 503.
	QueueCapacity int `json:"queueCapacity"`
	Jobs          int `json:"jobs"`
	// Cached/CachedDisk are the result cache's memory and disk entry
	// counts.
	Cached     int `json:"cached"`
	CachedDisk int `json:"cachedDisk"`
	Workers    int `json:"workers"`
	// WorkersBusy is the number of workers currently running a job.
	WorkersBusy int `json:"workersBusy"`
	// Draining marks a server in graceful shutdown: it rejects new
	// submissions and is letting running jobs finish.
	Draining bool `json:"draining,omitempty"`
	// Journal is present when the durable execution tier is configured.
	Journal *JournalHealth `json:"journal,omitempty"`
	// Fleet reports the coordinator's runner fleet: active runners,
	// lease-table occupancy and merge/re-lease counters.
	Fleet *FleetHealth `json:"fleet,omitempty"`
}

// JournalHealth is the durability section of the health document.
type JournalHealth struct {
	// Segments/Records/Bytes describe the live journal: segment files on
	// disk and appends since this process opened it.
	Segments int   `json:"segments"`
	Records  int64 `json:"records"`
	Bytes    int64 `json:"bytes"`
	// ReplayedRecords counts the records startup recovery replayed from
	// the previous process; ReplayTorn reports that the replayed log
	// ended in a torn (partially written) record, which was dropped.
	ReplayedRecords int64 `json:"replayedRecords"`
	ReplayTorn      bool  `json:"replayTorn"`
	// RecoveredJobs counts the incomplete jobs recovery re-enqueued.
	RecoveredJobs int `json:"recoveredJobs"`
	// CleanShutdown reports that the previous process journaled its
	// shutdown marker — false after a crash or hard kill.
	CleanShutdown bool `json:"cleanShutdown"`
}
