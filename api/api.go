// Package api holds the dynschedd wire types: the JSON request,
// response and event documents of the daemon's /v1 HTTP surface.
// It is the importable client surface — external programs decode
// service responses with these types (see examples/client for the
// submit → stream → fetch flow) and internal/server serves them, so
// the two cannot drift apart.
package api

import (
	"encoding/json"

	"dynsched"
)

// State is a job's lifecycle phase.
type State string

// Job lifecycle states. Queued and Running are transient; Done, Failed
// and Cancelled are terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether a job in state s will never change again.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// SubmitRequest is the POST /v1/jobs body. Exactly one of Name (a
// registered scenario) and Scenario (an inline spec) must be set.
type SubmitRequest struct {
	Name     string             `json:"name,omitempty"`
	Scenario *dynsched.Scenario `json:"scenario,omitempty"`
	// Slots and Seed, when non-zero, override the scenario before it is
	// hashed and run — so `{"name":"sinr-stochastic","slots":2000}` is a
	// distinct cacheable experiment from the full-length one.
	Slots int64 `json:"slots,omitempty"`
	Seed  int64 `json:"seed,omitempty"`
	// NoCache forces a fresh simulation even when the result cache
	// holds this spec.
	NoCache bool `json:"noCache,omitempty"`
}

// JobView is the API representation of a job.
type JobView struct {
	ID       string `json:"id"`
	Hash     string `json:"hash"`
	Scenario string `json:"scenario"`
	State    State  `json:"state"`
	Cached   bool   `json:"cached"`
	Error    string `json:"error,omitempty"`
	// Result holds the run's marshaled SimResult once the job is done.
	// It is the exact byte sequence the result cache stores, so two
	// submissions of one spec observe bit-identical documents.
	Result json.RawMessage `json:"result,omitempty"`
}

// Event is one entry of a job's progress stream, delivered to clients
// as NDJSON by GET /v1/jobs/{id}/events. Seq is the event's position
// in the job's log, assigned contiguously from 0, so a client can
// detect gaps.
type Event struct {
	Seq  int    `json:"seq"`
	Job  string `json:"job"`
	Type string `json:"type"` // queued, started, progress, done, failed, cancelled
	// Cached marks a done event served from the result cache.
	Cached bool `json:"cached,omitempty"`
	// Progress carries the live snapshot of progress events.
	Progress *dynsched.SimProgress `json:"progress,omitempty"`
	Error    string                `json:"error,omitempty"`
}

// ScenarioInfo is one GET /v1/scenarios entry.
type ScenarioInfo struct {
	Name        string `json:"name"`
	Description string `json:"description,omitempty"`
	Hash        string `json:"hash"`
}
