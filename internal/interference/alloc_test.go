package interference_test

import (
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/testenv"
)

// assertZeroAllocResolver pins the zero-steady-state-allocation
// guarantee of a model's slot resolver: after one warm-up call, slot
// resolution must not touch the heap.
func assertZeroAllocResolver(t *testing.T, m interference.Model, tx []int) {
	t.Helper()
	testenv.SkipIfRace(t)
	sr, ok := m.(interference.SlotResolver)
	if !ok {
		t.Fatalf("%s does not implement SlotResolver", m.Name())
	}
	resolve := sr.NewResolver()
	resolve(tx) // warm the reusable buffers
	if got := testing.AllocsPerRun(200, func() { resolve(tx) }); got != 0 {
		t.Errorf("%s resolver: %v allocs per slot, want 0", m.Name(), got)
	}
}

func TestIdentityResolverZeroAllocs(t *testing.T) {
	m := interference.Identity{Links: 64}
	tx := []int{0, 4, 8, 12, 16, 20, 24, 28, 3, 3}
	assertZeroAllocResolver(t, m, tx)
}

func TestAllOnesResolverZeroAllocs(t *testing.T) {
	m := interference.AllOnes{Links: 16}
	assertZeroAllocResolver(t, m, []int{3})
	assertZeroAllocResolver(t, m, []int{1, 2, 3})
}

func TestDenseResolverZeroAllocs(t *testing.T) {
	d := interference.NewDense("dense-test", 16)
	for e := 0; e < 16; e++ {
		for e2 := 0; e2 < 16; e2++ {
			if e != e2 {
				if err := d.Set(e, e2, 0.01); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	assertZeroAllocResolver(t, d, []int{0, 3, 7, 11, 15})
}
