// Model checkpointing. Every model in this package except Lossy is a
// pure function of its inputs and needs no checkpoint support. Lossy
// consumes randomness per successful transmission; its state is the
// RNG's position in its stream, available only when the model was
// built with NewLossy (a hand-wired Rand closure is opaque).
package interference

import (
	"encoding/json"
	"fmt"
)

type lossyState struct {
	Draws uint64 `json:"draws"`
}

// CheckpointReady reports whether the model can serialize its RNG
// state — true for NewLossy-built models. sim.SupportsCheckpoint
// consults it.
func (l *Lossy) CheckpointReady() bool { return l.Src != nil }

// CheckpointState implements sim.Checkpointable.
func (l *Lossy) CheckpointState() ([]byte, error) {
	if l.Src == nil {
		return nil, fmt.Errorf("interference: lossy model built without a counting source (use NewLossy)")
	}
	return json.Marshal(lossyState{Draws: l.Src.Draws()})
}

// RestoreState implements sim.Checkpointable.
func (l *Lossy) RestoreState(data []byte) error {
	if l.Src == nil {
		return fmt.Errorf("interference: lossy model built without a counting source (use NewLossy)")
	}
	var st lossyState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if err := l.Src.SeekTo(st.Draws); err != nil {
		return fmt.Errorf("interference: %w", err)
	}
	return nil
}
