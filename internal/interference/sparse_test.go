package interference

import (
	"math"
	"math/rand"
	"testing"
)

// denseMeasure is the reference O(E²) evaluation via Weight calls only,
// bypassing every fast path.
func denseMeasure(m Model, r []int) float64 {
	best := 0.0
	for e := 0; e < m.NumLinks(); e++ {
		sum := 0.0
		for e2, cnt := range r {
			if cnt == 0 {
				continue
			}
			sum += m.Weight(e, e2) * float64(cnt)
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// randomDense builds a Dense model with random sparse-ish weights.
func randomDense(t *testing.T, rng *rand.Rand, n int, p float64) *Dense {
	t.Helper()
	d := NewDense("rand", n)
	for e := 0; e < n; e++ {
		for e2 := 0; e2 < n; e2++ {
			if e != e2 && rng.Float64() < p {
				if err := d.Set(e, e2, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return d
}

func randomRequests(rng *rand.Rand, n int) []int {
	r := make([]int, n)
	for e := range r {
		if rng.Intn(2) == 0 {
			r[e] = rng.Intn(5)
		}
	}
	return r
}

func TestSparseMeasureMatchesDenseBitForBit(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	models := []Model{
		Identity{Links: 17},
		AllOnes{Links: 17},
		randomDense(t, rng, 17, 0.3),
		randomDense(t, rng, 17, 0.9),
	}
	for _, m := range models {
		for trial := 0; trial < 50; trial++ {
			r := randomRequests(rng, m.NumLinks())
			want := denseMeasure(m, r)
			if got := Measure(m, r); got != want {
				t.Errorf("%s: Measure = %v, dense reference = %v (must be bit-identical)", m.Name(), got, want)
			}
			s := SparseFromModel(m)
			if got := s.MulInfNorm(r); got != want {
				t.Errorf("%s: sparse MulInfNorm = %v, dense reference = %v", m.Name(), got, want)
			}
			for e := 0; e < m.NumLinks(); e++ {
				if got, ref := MeasureAt(m, r, e), s.RowDot(e, r); got != ref {
					t.Fatalf("%s: MeasureAt(%d) = %v, sparse row dot = %v", m.Name(), e, got, ref)
				}
			}
		}
	}
}

func TestSparseStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d := randomDense(t, rng, 12, 0.25)
	s := SparseFromModel(d)
	if s.NumLinks() != 12 {
		t.Fatalf("NumLinks = %d", s.NumLinks())
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	nnz := 0
	for e := 0; e < 12; e++ {
		for e2 := 0; e2 < 12; e2++ {
			if d.Weight(e, e2) != 0 {
				nnz++
			}
			if got := s.At(e, e2); got != d.Weight(e, e2) {
				t.Fatalf("At(%d,%d) = %v, want %v", e, e2, got, d.Weight(e, e2))
			}
		}
	}
	if s.NNZ() != nnz {
		t.Fatalf("NNZ = %d, want %d", s.NNZ(), nnz)
	}
	// Transposing twice is the identity.
	tt := s.Transpose().Transpose()
	for e := 0; e < 12; e++ {
		for e2 := 0; e2 < 12; e2++ {
			if s.At(e, e2) != tt.At(e, e2) {
				t.Fatalf("double transpose changed (%d,%d)", e, e2)
			}
		}
	}
	// Transpose swaps indices.
	st := s.Transpose()
	for e := 0; e < 12; e++ {
		for e2 := 0; e2 < 12; e2++ {
			if s.At(e, e2) != st.At(e2, e) {
				t.Fatalf("transpose mismatch at (%d,%d)", e, e2)
			}
		}
	}
}

func TestSparseMeasureVec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	d := randomDense(t, rng, 9, 0.4)
	f := make([]float64, 9)
	for i := range f {
		f[i] = rng.Float64()
	}
	got := MeasureVec(d, f)
	// Reference via Weight calls only.
	best := 0.0
	for e := 0; e < 9; e++ {
		sum := 0.0
		for e2, v := range f {
			if v != 0 {
				sum += d.Weight(e, e2) * v
			}
		}
		if sum > best {
			best = sum
		}
	}
	if got != best {
		t.Fatalf("MeasureVec = %v, reference = %v", got, best)
	}
}

func TestIncrementalMeasureTracksFreshEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	models := []Model{
		Identity{Links: 13},
		AllOnes{Links: 13},
		randomDense(t, rng, 13, 0.35),
	}
	for _, m := range models {
		im := NewIncremental(m)
		r := make([]int, m.NumLinks())
		for step := 0; step < 400; step++ {
			e := rng.Intn(m.NumLinks())
			if r[e] > 0 && rng.Intn(3) == 0 {
				r[e]--
				im.Remove(e)
			} else {
				r[e]++
				im.Add(e)
			}
			if got, want := im.Measure(), Measure(m, r); math.Abs(got-want) > 1e-9 {
				t.Fatalf("%s step %d: incremental %v, fresh %v", m.Name(), step, got, want)
			}
			if e2 := rng.Intn(m.NumLinks()); im.Count(e2) != r[e2] {
				t.Fatalf("%s: Count(%d) = %d, want %d", m.Name(), e2, im.Count(e2), r[e2])
			}
		}
		// Resync must not change the (exactly tracked) integer state and
		// must agree with the fresh evaluation exactly.
		im.Resync()
		if got, want := im.Measure(), Measure(m, r); math.Abs(got-want) > 1e-12 {
			t.Fatalf("%s: after Resync incremental %v, fresh %v", m.Name(), got, want)
		}
		im.Reset()
		if im.Measure() != 0 {
			t.Fatalf("%s: Reset left measure %v", m.Name(), im.Measure())
		}
	}
}

func TestIncrementalMeasureRemoveUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Remove on empty link did not panic")
		}
	}()
	NewIncremental(Identity{Links: 3}).Remove(1)
}

func TestResolverMatchesSuccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	models := []Model{
		Identity{Links: 11},
		AllOnes{Links: 11},
		randomDense(t, rng, 11, 0.4),
	}
	for _, m := range models {
		resolve := ResolveFunc(m)
		for trial := 0; trial < 200; trial++ {
			tx := make([]int, rng.Intn(9))
			for i := range tx {
				tx[i] = rng.Intn(m.NumLinks())
			}
			want := m.Successes(tx)
			got := resolve(tx)
			if len(got) != len(want) {
				t.Fatalf("%s: resolver length %d, want %d", m.Name(), len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s: tx %v: resolver %v, Successes %v", m.Name(), tx, got, want)
				}
			}
		}
	}
}
