// Package interference defines the paper's central abstraction: a linear
// interference measure given by a matrix W over communication links
// (Section 2). W[e][e'] ∈ [0,1] quantifies how much a transmission on e'
// disturbs a transmission on e, with W[e][e] = 1. For a request vector R
// (packets per link) the interference measure is
//
//	I = ‖W·R‖∞ = max_e Σ_e' W[e][e']·R(e').
//
// A Model couples the analysis matrix W with the slot-level transmission
// semantics (which simultaneous transmissions succeed). Instantiations in
// sibling packages cover the SINR model, conflict graphs, the
// multiple-access channel, and packet routing.
package interference

import (
	"fmt"
	"math"
)

// Model is an interference model over a fixed set of links 0..NumLinks-1.
//
// Weight is the analysis-side matrix W used to bound injection rates and
// compute schedules' interference measures. Successes is the
// physical-side ground truth that decides which simultaneous
// transmissions are received; for geometric models the two sides are
// deliberately distinct (W is derived from, but not identical to, the
// physics), exactly as in the paper.
type Model interface {
	// Name identifies the model in experiment output.
	Name() string
	// NumLinks returns the number of communication links.
	NumLinks() int
	// Weight returns W[e][e2], the relative interference that a
	// transmission on e2 causes at e. Weight(e, e) must be 1 and all
	// values must lie in [0, 1].
	Weight(e, e2 int) float64
	// Successes resolves one time slot. tx lists the links transmitting
	// in this slot, with multiplicity: if a link appears more than once
	// (two packets attempt the same link) all of its entries fail, since
	// each link carries at most one packet per slot. The result has one
	// entry per element of tx.
	Successes(tx []int) []bool
}

// Measure returns I = ‖W·R‖∞ for an integer request vector R indexed by
// link ID. It panics if len(R) != m.NumLinks() (programmer error).
//
// Models that expose their matrix in CSR form (RowsProvider) are
// evaluated over flat arrays in O(nnz); the all-ones MAC matrix reduces
// to the total request count. Both fast paths produce bit-identical
// results to the generic Weight-by-Weight loop: the entries each path
// skips are exact +0.0 terms of the same ascending-column summation.
func Measure(m Model, r []int) float64 {
	if len(r) != m.NumLinks() {
		panic(fmt.Sprintf("interference: request vector length %d, model has %d links", len(r), m.NumLinks()))
	}
	switch m.(type) {
	case AllOnes:
		return allOnesMeasure(r)
	case Identity:
		// W is the identity: the measure is the maximum request count.
		best := 0.0
		for _, cnt := range r {
			if v := float64(cnt); v > best {
				best = v
			}
		}
		return best
	}
	if rp, ok := m.(RowsProvider); ok {
		return rp.WeightRows().MulInfNorm(r)
	}
	best := 0.0
	for e := 0; e < len(r); e++ {
		v := MeasureAt(m, r, e)
		if v > best {
			best = v
		}
	}
	return best
}

// allOnesMeasure sums an integer vector as float64s; counts are integer
// so the sum is exact and equals every row of the all-ones product.
func allOnesMeasure(r []int) float64 {
	sum := 0.0
	for _, cnt := range r {
		sum += float64(cnt)
	}
	return sum
}

// MeasureAt returns (W·R)(e), the measure component at link e.
func MeasureAt(m Model, r []int, e int) float64 {
	if _, ok := m.(Identity); ok {
		return float64(r[e])
	}
	if rp, ok := m.(RowsProvider); ok {
		return rp.WeightRows().RowDot(e, r)
	}
	sum := 0.0
	for e2, cnt := range r {
		if cnt == 0 {
			continue
		}
		sum += m.Weight(e, e2) * float64(cnt)
	}
	return sum
}

// MeasureVec returns ‖W·F‖∞ for a fractional vector F (used for expected
// per-slot injection vectors).
func MeasureVec(m Model, f []float64) float64 {
	if len(f) != m.NumLinks() {
		panic(fmt.Sprintf("interference: vector length %d, model has %d links", len(f), m.NumLinks()))
	}
	if _, ok := m.(Identity); ok {
		best := 0.0
		for _, v := range f {
			if v > best {
				best = v
			}
		}
		return best
	}
	if rp, ok := m.(RowsProvider); ok {
		return rp.WeightRows().MulInfNormVec(f)
	}
	best := 0.0
	for e := range f {
		sum := 0.0
		for e2, v := range f {
			if v == 0 {
				continue
			}
			sum += m.Weight(e, e2) * v
		}
		if sum > best {
			best = sum
		}
	}
	return best
}

// SlotFeasible reports whether every transmission in tx succeeds when
// attempted simultaneously.
func SlotFeasible(m Model, tx []int) bool {
	for _, ok := range m.Successes(tx) {
		if !ok {
			return false
		}
	}
	return len(tx) > 0
}

// ValidateWeights checks the structural W invariants the paper assumes:
// unit diagonal and entries in [0,1]. Intended for tests; cost is O(E²).
func ValidateWeights(m Model) error {
	n := m.NumLinks()
	for e := 0; e < n; e++ {
		if d := m.Weight(e, e); d != 1 {
			return fmt.Errorf("interference: W[%d][%d] = %v, want 1", e, e, d)
		}
		for e2 := 0; e2 < n; e2++ {
			w := m.Weight(e, e2)
			if math.IsNaN(w) || w < 0 || w > 1 {
				return fmt.Errorf("interference: W[%d][%d] = %v outside [0,1]", e, e2, w)
			}
		}
	}
	return nil
}

// Requests builds a request vector for m links from a multiset of link
// IDs.
func Requests(numLinks int, links []int) []int {
	r := make([]int, numLinks)
	for _, e := range links {
		r[e]++
	}
	return r
}
