package interference

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestIdentityModel(t *testing.T) {
	m := Identity{Links: 3}
	if err := ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
	// Measure equals congestion.
	r := []int{2, 0, 5}
	if got := Measure(m, r); got != 5 {
		t.Errorf("Measure = %v, want 5", got)
	}
	// All distinct links succeed simultaneously.
	s := m.Successes([]int{0, 1, 2})
	for i, ok := range s {
		if !ok {
			t.Errorf("tx %d failed under identity", i)
		}
	}
	// Duplicate attempts on one link all fail; others unaffected.
	s = m.Successes([]int{0, 0, 1})
	if s[0] || s[1] || !s[2] {
		t.Errorf("duplicate handling wrong: %v", s)
	}
}

func TestAllOnesModel(t *testing.T) {
	m := AllOnes{Links: 4}
	if err := ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
	// Measure is the total packet count.
	if got := Measure(m, []int{1, 2, 0, 3}); got != 6 {
		t.Errorf("Measure = %v, want 6", got)
	}
	if s := m.Successes([]int{2}); !s[0] {
		t.Error("lone transmission failed on MAC")
	}
	if s := m.Successes([]int{1, 2}); s[0] || s[1] {
		t.Error("simultaneous transmissions succeeded on MAC")
	}
	if s := m.Successes(nil); len(s) != 0 {
		t.Error("empty slot produced successes")
	}
}

func TestDenseModel(t *testing.T) {
	d := NewDense("test", 3)
	if err := d.Set(0, 1, 0.6); err != nil {
		t.Fatal(err)
	}
	if err := d.Set(0, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := ValidateWeights(d); err != nil {
		t.Fatal(err)
	}
	// Link 0 fails when links 1 and 2 both transmit (0.6+0.5 ≥ 1) but
	// succeeds with either alone.
	s := d.Successes([]int{0, 1, 2})
	if s[0] {
		t.Error("link 0 should fail under combined interference")
	}
	if !s[1] || !s[2] {
		t.Error("links 1,2 should succeed (no incoming weight)")
	}
	s = d.Successes([]int{0, 1})
	if !s[0] || !s[1] {
		t.Errorf("pairwise slot should succeed: %v", s)
	}

	// Error cases.
	if err := d.Set(0, 0, 0.5); err == nil {
		t.Error("diagonal overwrite accepted")
	}
	if err := d.Set(0, 1, 1.5); err == nil {
		t.Error("weight > 1 accepted")
	}
	if err := d.Set(5, 0, 0.5); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestMeasureAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(6)
		d := NewDense("rand", n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					if err := d.Set(i, j, rng.Float64()); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		r := make([]int, n)
		for i := range r {
			r[i] = rng.Intn(4)
		}
		want := 0.0
		for e := 0; e < n; e++ {
			sum := 0.0
			for e2 := 0; e2 < n; e2++ {
				sum += d.Weight(e, e2) * float64(r[e2])
			}
			want = math.Max(want, sum)
		}
		if got := Measure(d, r); math.Abs(got-want) > 1e-9 {
			t.Fatalf("Measure = %v, brute force = %v", got, want)
		}
	}
}

func TestMeasureSubadditivityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	n := 5
	d := NewDense("prop", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := d.Set(i, j, rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	f := func(raw1, raw2 [5]uint8) bool {
		r1 := make([]int, n)
		r2 := make([]int, n)
		sum := make([]int, n)
		for i := 0; i < n; i++ {
			r1[i] = int(raw1[i] % 8)
			r2[i] = int(raw2[i] % 8)
			sum[i] = r1[i] + r2[i]
		}
		total := Measure(d, sum)
		parts := Measure(d, r1) + Measure(d, r2)
		return total <= parts+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeasureVecMatchesIntegerMeasure(t *testing.T) {
	m := AllOnes{Links: 3}
	r := []int{1, 2, 3}
	f := []float64{1, 2, 3}
	if a, b := Measure(m, r), MeasureVec(m, f); math.Abs(a-b) > 1e-12 {
		t.Errorf("Measure=%v MeasureVec=%v", a, b)
	}
}

func TestMeasurePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch should panic")
		}
	}()
	Measure(Identity{Links: 3}, []int{1})
}

func TestSlotFeasible(t *testing.T) {
	m := Identity{Links: 3}
	if !SlotFeasible(m, []int{0, 1}) {
		t.Error("distinct identity links judged infeasible")
	}
	if SlotFeasible(m, []int{0, 0}) {
		t.Error("duplicate slot judged feasible")
	}
	if SlotFeasible(m, nil) {
		t.Error("empty slot judged feasible")
	}
}

func TestRequests(t *testing.T) {
	r := Requests(4, []int{0, 2, 2, 3})
	want := []int{1, 0, 2, 1}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("Requests = %v, want %v", r, want)
		}
	}
}

func TestLossyModel(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	inner := Identity{Links: 2}
	l := &Lossy{Inner: inner, P: 0.5, Rand: rng.Float64}
	if err := ValidateWeights(l); err != nil {
		t.Fatal(err)
	}
	succ, total := 0, 2000
	for i := 0; i < total; i++ {
		if s := l.Successes([]int{0}); s[0] {
			succ++
		}
	}
	frac := float64(succ) / float64(total)
	if frac < 0.42 || frac > 0.58 {
		t.Errorf("lossy success fraction %v, want ≈0.5", frac)
	}
	// p = 0 must be transparent.
	clean := &Lossy{Inner: inner, P: 0, Rand: rng.Float64}
	if s := clean.Successes([]int{0, 1}); !s[0] || !s[1] {
		t.Error("lossless wrapper dropped transmissions")
	}
}
