package interference

// SlotResolver is an optional Model extension for hot simulation loops.
// NewResolver returns a function with the exact semantics of Successes,
// but the resolver may reuse internal buffers across calls: the
// returned slice is valid only until the next invocation and must not
// be retained. A resolver is stateful scratch, not shared state — each
// goroutine (simulation shard) must obtain its own.
type SlotResolver interface {
	NewResolver() func(tx []int) []bool
}

// ResolveFunc returns the cheapest slot-resolution function for m: the
// model's buffer-reusing resolver when it implements SlotResolver, or
// its plain Successes method otherwise. The contract on the returned
// slice matches SlotResolver (valid until the next call).
func ResolveFunc(m Model) func(tx []int) []bool {
	if sr, ok := m.(SlotResolver); ok {
		return sr.NewResolver()
	}
	return m.Successes
}

// ParallelResolver is an optional extension of SlotResolver for models
// whose slot resolution can fan the per-link work across an intra-slot
// worker pool. NewResolverN returns a resolver pinned to the given
// worker count (≥ 1; 1 means strictly serial). Implementations must be
// bit-identical to the serial resolver at every worker count — per-link
// work may be sharded, but each link's result must be produced by
// exactly the serial operation sequence.
type ParallelResolver interface {
	SlotResolver
	NewResolverN(workers int) func(tx []int) []bool
}

// ResolveFuncN is ResolveFunc with an explicit intra-slot worker-count
// override: workers = 0 defers to the model's own default (ResolveFunc),
// workers ≥ 1 requests that many workers from models implementing
// ParallelResolver. Models without intra-slot parallelism ignore the
// override — results are bit-identical either way, only wall-clock
// changes.
func ResolveFuncN(m Model, workers int) func(tx []int) []bool {
	if workers >= 1 {
		if pr, ok := m.(ParallelResolver); ok {
			return pr.NewResolverN(workers)
		}
	}
	return ResolveFunc(m)
}

// ResolveStats is a model's cumulative slot-resolution accounting,
// exposed for engine observability (never consulted by the resolution
// itself).
type ResolveStats struct {
	// Workers is the intra-slot worker count the model's default
	// resolver uses (1 = serial). Large slots shard across this many
	// claimants; slots below the parallel threshold run serially
	// regardless.
	Workers int
	// GridRebuilds counts slots whose spatial interference grid was
	// rebuilt from scratch; GridDeltaUpdates counts slots served by the
	// incremental joined/left delta path. Both stay zero for models
	// without a spatial grid.
	GridRebuilds     uint64
	GridDeltaUpdates uint64
}

// ResolveStatsProvider is implemented by models that account their
// resolver activity. Safe for concurrent use.
type ResolveStatsProvider interface {
	ResolveStats() ResolveStats
}

// ResolverScratch is the common per-resolver buffer set for models that
// resolve slots by per-link multiplicity counting: a counts vector, a
// first-occurrence link list, and a reusable result slice. Model
// packages build their SlotResolver implementations on it so the
// buffer lifecycle lives in one place.
type ResolverScratch struct {
	// Counts is the per-link multiplicity of the current slot's tx,
	// valid between Begin and End.
	Counts []int
	// Uniq lists the distinct transmitting links in first-occurrence
	// order, valid between Begin and End.
	Uniq []int
	out  []bool
}

// NewResolverScratch creates scratch for a model with numLinks links.
func NewResolverScratch(numLinks int) *ResolverScratch {
	return &ResolverScratch{Counts: make([]int, numLinks), Uniq: make([]int, 0, numLinks)}
}

// Begin counts the multiplicity of each transmitting link, collects the
// distinct links, and returns a zeroed result slice of len(tx). The
// caller must pair it with End.
func (s *ResolverScratch) Begin(tx []int) []bool {
	if cap(s.out) < len(tx) {
		s.out = make([]bool, len(tx), 2*len(tx))
	}
	s.out = s.out[:len(tx)]
	for i := range s.out {
		s.out[i] = false
	}
	s.Count(tx)
	return s.out
}

// Count fills Counts and Uniq for tx without touching the result buffer
// — for callers (such as a model's Successes slow path) that own their
// output slice but still want the shared counting scratch. Pair with
// End, exactly like Begin.
func (s *ResolverScratch) Count(tx []int) {
	s.Uniq = s.Uniq[:0]
	for _, e := range tx {
		if s.Counts[e] == 0 {
			s.Uniq = append(s.Uniq, e)
		}
		s.Counts[e]++
	}
}

// End re-zeroes the count entries touched by tx, in O(len(tx)) rather
// than O(numLinks).
func (s *ResolverScratch) End(tx []int) {
	for _, e := range tx {
		s.Counts[e] = 0
	}
}
