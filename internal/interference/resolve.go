package interference

// SlotResolver is an optional Model extension for hot simulation loops.
// NewResolver returns a function with the exact semantics of Successes,
// but the resolver may reuse internal buffers across calls: the
// returned slice is valid only until the next invocation and must not
// be retained. A resolver is stateful scratch, not shared state — each
// goroutine (simulation shard) must obtain its own.
type SlotResolver interface {
	NewResolver() func(tx []int) []bool
}

// ResolveFunc returns the cheapest slot-resolution function for m: the
// model's buffer-reusing resolver when it implements SlotResolver, or
// its plain Successes method otherwise. The contract on the returned
// slice matches SlotResolver (valid until the next call).
func ResolveFunc(m Model) func(tx []int) []bool {
	if sr, ok := m.(SlotResolver); ok {
		return sr.NewResolver()
	}
	return m.Successes
}

// ResolverScratch is the common per-resolver buffer set for models that
// resolve slots by per-link multiplicity counting: a counts vector, a
// first-occurrence link list, and a reusable result slice. Model
// packages build their SlotResolver implementations on it so the
// buffer lifecycle lives in one place.
type ResolverScratch struct {
	// Counts is the per-link multiplicity of the current slot's tx,
	// valid between Begin and End.
	Counts []int
	// Uniq lists the distinct transmitting links in first-occurrence
	// order, valid between Begin and End.
	Uniq []int
	out  []bool
}

// NewResolverScratch creates scratch for a model with numLinks links.
func NewResolverScratch(numLinks int) *ResolverScratch {
	return &ResolverScratch{Counts: make([]int, numLinks), Uniq: make([]int, 0, numLinks)}
}

// Begin counts the multiplicity of each transmitting link, collects the
// distinct links, and returns a zeroed result slice of len(tx). The
// caller must pair it with End.
func (s *ResolverScratch) Begin(tx []int) []bool {
	if cap(s.out) < len(tx) {
		s.out = make([]bool, len(tx), 2*len(tx))
	}
	s.out = s.out[:len(tx)]
	for i := range s.out {
		s.out[i] = false
	}
	s.Count(tx)
	return s.out
}

// Count fills Counts and Uniq for tx without touching the result buffer
// — for callers (such as a model's Successes slow path) that own their
// output slice but still want the shared counting scratch. Pair with
// End, exactly like Begin.
func (s *ResolverScratch) Count(tx []int) {
	s.Uniq = s.Uniq[:0]
	for _, e := range tx {
		if s.Counts[e] == 0 {
			s.Uniq = append(s.Uniq, e)
		}
		s.Counts[e]++
	}
}

// End re-zeroes the count entries touched by tx, in O(len(tx)) rather
// than O(numLinks).
func (s *ResolverScratch) End(tx []int) {
	for _, e := range tx {
		s.Counts[e] = 0
	}
}
