package interference

import (
	"fmt"
	"math"
)

// Sparse is a compressed-sparse-row (CSR) weight matrix: only the
// non-zero entries of W are stored, as flat arrays. It is the fast-path
// representation behind Measure and IncrementalMeasure — iterating a CSR
// row touches O(nnz(row)) contiguous float64s instead of making O(E)
// dynamic Weight calls, and genuinely sparse models (identity, conflict
// graphs, monotone SINR matrices) skip their zero entries entirely.
//
// Within each row, column indices are strictly increasing. A Sparse is
// immutable after construction and safe for concurrent readers.
type Sparse struct {
	n      int
	rowPtr []int32 // len n+1; row e spans [rowPtr[e], rowPtr[e+1])
	cols   []int32
	vals   []float64
}

// RowsProvider is an optional Model extension: models with a
// precomputed (or cheaply derivable) weight matrix expose it in CSR
// form so Measure, MeasureAt, MeasureVec, and IncrementalMeasure run on
// flat arrays in O(nnz) instead of O(E²) interface calls. The returned
// matrix must equal the model's Weight function entry for entry and
// must not be mutated afterwards.
type RowsProvider interface {
	WeightRows() *Sparse
}

// sparseBuilder accumulates rows in order.
type sparseBuilder struct {
	s       *Sparse
	lastRow int
}

// newSparseBuilder starts a CSR builder for an n×n matrix with a
// capacity hint of nnz entries.
func newSparseBuilder(n, nnzHint int) *sparseBuilder {
	return &sparseBuilder{
		s: &Sparse{
			n:      n,
			rowPtr: make([]int32, 1, n+1),
			cols:   make([]int32, 0, nnzHint),
			vals:   make([]float64, 0, nnzHint),
		},
		lastRow: -1,
	}
}

// add appends entry (e, e2, v). Entries must arrive in row-major order
// with strictly increasing columns within a row; zero values are
// dropped.
func (b *sparseBuilder) add(e, e2 int, v float64) {
	if v == 0 {
		return
	}
	for b.lastRow < e {
		b.lastRow++
		b.s.rowPtr = append(b.s.rowPtr, int32(len(b.s.cols)))
	}
	b.s.cols = append(b.s.cols, int32(e2))
	b.s.vals = append(b.s.vals, v)
	b.s.rowPtr[len(b.s.rowPtr)-1] = int32(len(b.s.cols))
}

// build finalises the matrix.
func (b *sparseBuilder) build() *Sparse {
	for b.lastRow < b.s.n-1 {
		b.lastRow++
		b.s.rowPtr = append(b.s.rowPtr, int32(len(b.s.cols)))
	}
	return b.s
}

// SparseFromWeights extracts an n×n CSR matrix from a weight function,
// dropping zero entries. Cost is O(n²) calls — done once per model, it
// converts every later measure evaluation to O(nnz).
func SparseFromWeights(n int, weight func(e, e2 int) float64) *Sparse {
	b := newSparseBuilder(n, n)
	for e := 0; e < n; e++ {
		for e2 := 0; e2 < n; e2++ {
			b.add(e, e2, weight(e, e2))
		}
	}
	return b.build()
}

// SparseFromModel extracts the model's weight matrix in CSR form. When
// the model provides its own rows they are returned directly.
func SparseFromModel(m Model) *Sparse {
	if rp, ok := m.(RowsProvider); ok {
		return rp.WeightRows()
	}
	return SparseFromWeights(m.NumLinks(), m.Weight)
}

// SparseDiag returns the n×n identity matrix in CSR form.
func SparseDiag(n int) *Sparse {
	s := &Sparse{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, n),
		vals:   make([]float64, n),
	}
	for i := 0; i < n; i++ {
		s.rowPtr[i+1] = int32(i + 1)
		s.cols[i] = int32(i)
		s.vals[i] = 1
	}
	return s
}

// NumLinks returns the matrix dimension.
func (s *Sparse) NumLinks() int { return s.n }

// NNZ returns the number of stored (non-zero) entries.
func (s *Sparse) NNZ() int { return len(s.cols) }

// Row returns the column indices and values of row e. The slices alias
// the matrix storage and must not be modified.
func (s *Sparse) Row(e int) ([]int32, []float64) {
	lo, hi := s.rowPtr[e], s.rowPtr[e+1]
	return s.cols[lo:hi], s.vals[lo:hi]
}

// At returns W[e][e2] by binary search over row e.
func (s *Sparse) At(e, e2 int) float64 {
	cols, vals := s.Row(e)
	lo, hi := 0, len(cols)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(cols[mid]) < e2 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(cols) && int(cols[lo]) == e2 {
		return vals[lo]
	}
	return 0
}

// RowDot returns (W·R)(e), the dot product of row e with an integer
// request vector. Summation visits columns in ascending order, matching
// the dense MeasureAt loop bit for bit (the entries both paths skip
// contribute exact +0.0 terms).
func (s *Sparse) RowDot(e int, r []int) float64 {
	cols, vals := s.Row(e)
	sum := 0.0
	for k, c := range cols {
		if cnt := r[c]; cnt != 0 {
			sum += vals[k] * float64(cnt)
		}
	}
	return sum
}

// RowDotVec returns the dot product of row e with a fractional vector.
func (s *Sparse) RowDotVec(e int, f []float64) float64 {
	cols, vals := s.Row(e)
	sum := 0.0
	for k, c := range cols {
		if v := f[c]; v != 0 {
			sum += vals[k] * v
		}
	}
	return sum
}

// MulInfNorm returns ‖W·R‖∞ for an integer request vector.
func (s *Sparse) MulInfNorm(r []int) float64 {
	if len(r) != s.n {
		panic(fmt.Sprintf("interference: request vector length %d, matrix has %d links", len(r), s.n))
	}
	best := 0.0
	for e := 0; e < s.n; e++ {
		if v := s.RowDot(e, r); v > best {
			best = v
		}
	}
	return best
}

// MulInfNormVec returns ‖W·F‖∞ for a fractional vector.
func (s *Sparse) MulInfNormVec(f []float64) float64 {
	if len(f) != s.n {
		panic(fmt.Sprintf("interference: vector length %d, matrix has %d links", len(f), s.n))
	}
	best := 0.0
	for e := 0; e < s.n; e++ {
		if v := s.RowDotVec(e, f); v > best {
			best = v
		}
	}
	return best
}

// Transpose returns Wᵀ in CSR form — equivalently, the original matrix
// in compressed-sparse-column form: row e2 of the transpose lists the
// rows e whose measure component a request on link e2 contributes to.
func (s *Sparse) Transpose() *Sparse {
	t := &Sparse{
		n:      s.n,
		rowPtr: make([]int32, s.n+1),
		cols:   make([]int32, len(s.cols)),
		vals:   make([]float64, len(s.vals)),
	}
	// Count entries per column, prefix-sum into row pointers.
	for _, c := range s.cols {
		t.rowPtr[c+1]++
	}
	for i := 0; i < s.n; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int32, s.n)
	copy(next, t.rowPtr[:s.n])
	for e := 0; e < s.n; e++ {
		lo, hi := s.rowPtr[e], s.rowPtr[e+1]
		for k := lo; k < hi; k++ {
			c := s.cols[k]
			at := next[c]
			next[c]++
			t.cols[at] = int32(e) // rows of s arrive in ascending order
			t.vals[at] = s.vals[k]
		}
	}
	return t
}

// Validate checks the structural invariants the paper assumes of W
// (unit diagonal, entries in [0,1]) plus CSR well-formedness.
func (s *Sparse) Validate() error {
	for e := 0; e < s.n; e++ {
		cols, vals := s.Row(e)
		prev := int32(-1)
		diag := 0.0
		for k, c := range cols {
			if c <= prev || int(c) >= s.n {
				return fmt.Errorf("interference: row %d has out-of-order or out-of-range column %d", e, c)
			}
			prev = c
			v := vals[k]
			if math.IsNaN(v) || v < 0 || v > 1 {
				return fmt.Errorf("interference: W[%d][%d] = %v outside [0,1]", e, c, v)
			}
			if int(c) == e {
				diag = v
			}
		}
		if diag != 1 {
			return fmt.Errorf("interference: W[%d][%d] = %v, want 1", e, e, diag)
		}
	}
	return nil
}

// IncrementalMeasure maintains I = ‖W·R‖∞ under single-request updates:
// Add(e)/Remove(e) adjust the affected measure components in
// O(nnz(column e)) instead of recomputing the full O(E²) product, and
// Measure reads the current maximum in O(1) amortised. This is the
// sliding-window accountant behind the adversary admissibility checker
// and any caller that mutates a request vector one packet at a time.
//
// The components are updated by floating-point addition and
// subtraction, so after many updates they can drift from a fresh
// evaluation by accumulated rounding (≈1 ulp per touch). Callers that
// compare against tight thresholds should Resync periodically; Add and
// Remove themselves never drift the integer request vector.
//
// Not safe for concurrent use; shards of a parallel run each own one.
type IncrementalMeasure struct {
	cols *Sparse // Wᵀ: row e lists the measure components request e touches
	r    []int
	comp []float64

	// uniform is the all-ones (multiple-access-channel) fast path, where
	// the measure is the total request count and no matrix is needed.
	uniform bool
	total   int

	maxIdx int
	maxVal float64
	dirty  bool // a decrement touched the incumbent maximum
}

// NewIncremental builds an incremental accumulator for the model's
// weight matrix, starting from the empty request vector. Construction
// extracts the matrix once (O(E²) for models without a RowsProvider);
// every later update is O(nnz(column)).
func NewIncremental(m Model) *IncrementalMeasure {
	n := m.NumLinks()
	im := &IncrementalMeasure{r: make([]int, n)}
	if _, ok := m.(AllOnes); ok {
		im.uniform = true
		return im
	}
	im.cols = SparseFromModel(m).Transpose()
	im.comp = make([]float64, n)
	return im
}

// Add records one more request on link e.
func (im *IncrementalMeasure) Add(e int) { im.update(e, 1) }

// AddN records k more requests on link e in a single column scan.
func (im *IncrementalMeasure) AddN(e, k int) {
	if k < 0 {
		panic(fmt.Sprintf("interference: AddN(%d, %d) with negative count", e, k))
	}
	if k > 0 {
		im.update(e, k)
	}
}

// Remove retracts one request on link e. It panics if none is pending
// (programmer error: the request vector would go negative).
func (im *IncrementalMeasure) Remove(e int) { im.RemoveN(e, 1) }

// RemoveN retracts k requests on link e in a single column scan. It
// panics if fewer than k are pending.
func (im *IncrementalMeasure) RemoveN(e, k int) {
	if k < 0 {
		panic(fmt.Sprintf("interference: RemoveN(%d, %d) with negative count", e, k))
	}
	if im.r[e] < k {
		panic(fmt.Sprintf("interference: RemoveN(%d, %d) with only %d pending", e, k, im.r[e]))
	}
	if k > 0 {
		im.update(e, -k)
	}
}

func (im *IncrementalMeasure) update(e, k int) {
	im.r[e] += k
	if im.uniform {
		im.total += k
		return
	}
	cols, vals := im.cols.Row(e)
	kf := float64(k)
	if k > 0 {
		for i, row := range cols {
			v := im.comp[row] + kf*vals[i]
			im.comp[row] = v
			if v > im.maxVal {
				im.maxVal, im.maxIdx = v, int(row)
			}
		}
		return
	}
	for i, row := range cols {
		im.comp[row] += kf * vals[i]
		if int(row) == im.maxIdx {
			im.dirty = true
		}
	}
}

// Measure returns the current ‖W·R‖∞.
func (im *IncrementalMeasure) Measure() float64 {
	if im.uniform {
		return float64(im.total)
	}
	if im.dirty {
		im.rescan()
	}
	return im.maxVal
}

// At returns the current measure component (W·R)(e).
func (im *IncrementalMeasure) At(e int) float64 {
	if im.uniform {
		return float64(im.total)
	}
	return im.comp[e]
}

// Count returns the current request count on link e.
func (im *IncrementalMeasure) Count(e int) int { return im.r[e] }

func (im *IncrementalMeasure) rescan() {
	im.maxIdx, im.maxVal = 0, 0
	for e, v := range im.comp {
		if v > im.maxVal {
			im.maxVal, im.maxIdx = v, e
		}
	}
	im.dirty = false
}

// Resync recomputes every component exactly from the integer request
// vector, flushing accumulated floating-point drift.
func (im *IncrementalMeasure) Resync() {
	if im.uniform {
		return
	}
	for e := range im.comp {
		im.comp[e] = 0
	}
	for e, cnt := range im.r {
		if cnt == 0 {
			continue
		}
		cols, vals := im.cols.Row(e)
		cf := float64(cnt)
		for i, row := range cols {
			im.comp[row] += vals[i] * cf
		}
	}
	im.rescan()
}

// Reset returns the accumulator to the empty request vector.
func (im *IncrementalMeasure) Reset() {
	for e := range im.r {
		im.r[e] = 0
	}
	im.total = 0
	if !im.uniform {
		for e := range im.comp {
			im.comp[e] = 0
		}
	}
	im.maxIdx, im.maxVal, im.dirty = 0, 0, false
}
