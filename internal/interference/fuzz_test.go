package interference

import (
	"math"
	"testing"
)

// FuzzMeasure drives Measure/MeasureAt with arbitrary request vectors on
// a fixed weighted model and checks the defining invariants: the
// measure is non-negative, dominates every per-link component, is zero
// iff the vector is empty, and scales linearly.
func FuzzMeasure(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(3), uint8(2))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add(uint8(250), uint8(1), uint8(9), uint8(255))

	d := NewDense("fuzz", 4)
	weights := []float64{0.1, 0.4, 0.9, 0.25, 0.6, 0.05}
	k := 0
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			if err := d.Set(i, j, weights[k%len(weights)]); err != nil {
				f.Fatal(err)
			}
			k++
		}
	}

	f.Fuzz(func(t *testing.T, a, b, c, e uint8) {
		r := []int{int(a % 16), int(b % 16), int(c % 16), int(e % 16)}
		meas := Measure(d, r)
		if meas < 0 || math.IsNaN(meas) {
			t.Fatalf("measure %v for %v", meas, r)
		}
		total := 0
		for link, cnt := range r {
			total += cnt
			if at := MeasureAt(d, r, link); at > meas+1e-9 {
				t.Fatalf("component %v at link %d exceeds measure %v", at, link, meas)
			}
			// The diagonal is 1, so the measure dominates every count.
			if float64(cnt) > meas+1e-9 {
				t.Fatalf("count %d at link %d exceeds measure %v", cnt, link, meas)
			}
		}
		if total == 0 && meas != 0 {
			t.Fatalf("empty vector has measure %v", meas)
		}
		// Linearity: doubling the vector doubles the measure.
		r2 := []int{2 * r[0], 2 * r[1], 2 * r[2], 2 * r[3]}
		if m2 := Measure(d, r2); math.Abs(m2-2*meas) > 1e-6*(1+meas) {
			t.Fatalf("doubling broke linearity: %v vs 2×%v", m2, meas)
		}
	})
}

// FuzzSuccessesInvariants checks the slot-resolution contracts on
// arbitrary transmission lists: result length matches, duplicates never
// succeed, and the MAC model never admits two successes.
func FuzzSuccessesInvariants(f *testing.F) {
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{3, 3})
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 1, 2, 2, 3, 3})

	id := Identity{Links: 4}
	mac := AllOnes{Links: 4}

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 64 {
			raw = raw[:64]
		}
		tx := make([]int, len(raw))
		counts := make(map[int]int)
		for i, b := range raw {
			tx[i] = int(b % 4)
			counts[tx[i]]++
		}
		for _, m := range []Model{id, mac} {
			out := m.Successes(tx)
			if len(out) != len(tx) {
				t.Fatalf("%s: %d results for %d attempts", m.Name(), len(out), len(tx))
			}
			okCount := 0
			for i, ok := range out {
				if ok {
					okCount++
					if counts[tx[i]] > 1 {
						t.Fatalf("%s: duplicate attempt on link %d succeeded", m.Name(), tx[i])
					}
				}
			}
			if _, isMAC := m.(AllOnes); isMAC && okCount > 1 {
				t.Fatalf("MAC admitted %d successes", okCount)
			}
		}
	})
}
