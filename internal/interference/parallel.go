package interference

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// ParallelRows runs fn(row) for every row in [0, n), fanning the rows
// out over GOMAXPROCS goroutines. Rows are claimed from an atomic
// counter, so load balances even when row costs are skewed. fn must
// only write state owned by its row; under that contract the result is
// identical to the serial loop regardless of scheduling. With a single
// processor (or n ≤ 1) the rows run inline.
func ParallelRows(n int, fn func(row int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for row := 0; row < n; row++ {
			fn(row)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				row := int(next.Add(1)) - 1
				if row >= n {
					return
				}
				fn(row)
			}
		}()
	}
	wg.Wait()
}

// SparseFromWeightsParallel is SparseFromWeights with the O(n²) weight
// evaluation fanned out across rows. The assembly order is fixed (row
// major, ascending columns), so the result is bit-identical to the
// serial extraction — only the wall-clock of construction changes.
// weight must be safe for concurrent calls on distinct rows.
func SparseFromWeightsParallel(n int, weight func(e, e2 int) float64) *Sparse {
	if runtime.GOMAXPROCS(0) <= 1 || n <= 1 {
		return SparseFromWeights(n, weight)
	}
	type rowData struct {
		cols []int32
		vals []float64
	}
	rows := make([]rowData, n)
	ParallelRows(n, func(e int) {
		var cols []int32
		var vals []float64
		for e2 := 0; e2 < n; e2++ {
			if v := weight(e, e2); v != 0 {
				cols = append(cols, int32(e2))
				vals = append(vals, v)
			}
		}
		rows[e] = rowData{cols: cols, vals: vals}
	})
	nnz := 0
	for e := range rows {
		nnz += len(rows[e].cols)
	}
	s := &Sparse{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for e := 0; e < n; e++ {
		s.cols = append(s.cols, rows[e].cols...)
		s.vals = append(s.vals, rows[e].vals...)
		s.rowPtr[e+1] = int32(len(s.cols))
	}
	return s
}

// SparseFromRowsParallel assembles a CSR matrix from a per-row emitter:
// row(e, emit) must call emit(col, v) with strictly ascending columns,
// and zero values are dropped (CSR lookups return the same exact 0).
// It is the construction path for rows whose support is discovered by a
// spatial query rather than an O(n) scan — the emitter only visits the
// candidates near row e, so assembly costs O(nnz), not O(n²). Rows are
// fanned out across GOMAXPROCS goroutines and stitched in row order, so
// the result is bit-identical to the serial emission.
func SparseFromRowsParallel(n int, row func(e int, emit func(col int32, v float64))) *Sparse {
	type rowData struct {
		cols []int32
		vals []float64
	}
	rows := make([]rowData, n)
	ParallelRows(n, func(e int) {
		var rd rowData
		prev := int32(-1)
		row(e, func(col int32, v float64) {
			if col <= prev {
				panic("interference: SparseFromRowsParallel columns not strictly ascending")
			}
			prev = col
			if v == 0 {
				return
			}
			rd.cols = append(rd.cols, col)
			rd.vals = append(rd.vals, v)
		})
		rows[e] = rd
	})
	nnz := 0
	for e := range rows {
		nnz += len(rows[e].cols)
	}
	s := &Sparse{
		n:      n,
		rowPtr: make([]int32, n+1),
		cols:   make([]int32, 0, nnz),
		vals:   make([]float64, 0, nnz),
	}
	for e := 0; e < n; e++ {
		s.cols = append(s.cols, rows[e].cols...)
		s.vals = append(s.vals, rows[e].vals...)
		s.rowPtr[e+1] = int32(len(s.cols))
	}
	return s
}
