package interference

import (
	"fmt"
	"math/rand"
	"sync"

	"dynsched/internal/randx"
)

// countDup returns, for each entry of tx, whether its link appears more
// than once in tx. Links carry at most one packet per slot, so duplicate
// attempts on a link always fail.
func countDup(numLinks int, tx []int) (counts []int) {
	counts = make([]int, numLinks)
	for _, e := range tx {
		counts[e]++
	}
	return counts
}

// Identity is the packet-routing model: W is the identity matrix, so the
// interference measure equals the congestion, and a transmission succeeds
// whenever its link carries a single packet this slot (links do not
// interfere with each other at all).
type Identity struct {
	Links int
}

var _ Model = Identity{}

// Name implements Model.
func (Identity) Name() string { return "identity" }

// NumLinks implements Model.
func (m Identity) NumLinks() int { return m.Links }

// Weight implements Model.
func (m Identity) Weight(e, e2 int) float64 {
	if e == e2 {
		return 1
	}
	return 0
}

// Successes implements Model.
func (m Identity) Successes(tx []int) []bool {
	counts := countDup(m.Links, tx)
	out := make([]bool, len(tx))
	for i, e := range tx {
		out[i] = counts[e] == 1
	}
	return out
}

// WeightRows implements RowsProvider: the identity matrix in CSR form.
func (m Identity) WeightRows() *Sparse { return SparseDiag(m.Links) }

// NewResolver implements SlotResolver.
func (m Identity) NewResolver() func(tx []int) []bool {
	s := NewResolverScratch(m.Links)
	return func(tx []int) []bool {
		out := s.Begin(tx)
		for i, e := range tx {
			out[i] = s.Counts[e] == 1
		}
		s.End(tx)
		return out
	}
}

// AllOnes is the multiple-access-channel model: every entry of W is 1, so
// the interference measure is the total number of packets, and a
// transmission succeeds only when it is the sole transmission in the
// network this slot.
type AllOnes struct {
	Links int
}

var _ Model = AllOnes{}

// Name implements Model.
func (AllOnes) Name() string { return "multiple-access-channel" }

// NumLinks implements Model.
func (m AllOnes) NumLinks() int { return m.Links }

// Weight implements Model.
func (m AllOnes) Weight(e, e2 int) float64 { return 1 }

// Successes implements Model.
func (m AllOnes) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 1 {
		out[0] = true
	}
	return out
}

// NewResolver implements SlotResolver. (AllOnes deliberately does not
// implement RowsProvider: its matrix is fully dense, and Measure
// special-cases it to the total request count instead.)
func (m AllOnes) NewResolver() func(tx []int) []bool {
	s := NewResolverScratch(m.Links)
	return func(tx []int) []bool {
		out := s.Begin(tx)
		if len(tx) == 1 {
			out[0] = true
		}
		s.End(tx)
		return out
	}
}

// Dense is an explicit weight matrix with threshold transmission
// semantics: a transmission on e succeeds when e carries one packet and
// the summed weight of all other simultaneous transmissions at e stays
// below Threshold (default 1). It serves as a generic Model for tests and
// for models whose W is computed up front.
type Dense struct {
	name      string
	w         [][]float64
	threshold float64

	rowsMu sync.Mutex
	rows   *Sparse // CSR cache, invalidated by Set, guarded by rowsMu
}

var _ Model = (*Dense)(nil)

// NewDense creates an n×n matrix model with unit diagonal, zero
// off-diagonal weights, and threshold 1.
func NewDense(name string, n int) *Dense {
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
		w[i][i] = 1
	}
	return &Dense{name: name, w: w, threshold: 1}
}

// SetThreshold overrides the success threshold.
func (d *Dense) SetThreshold(t float64) { d.threshold = t }

// Set assigns W[e][e2]. It returns an error for out-of-range indices,
// values outside [0,1], or attempts to change the unit diagonal.
func (d *Dense) Set(e, e2 int, v float64) error {
	n := len(d.w)
	if e < 0 || e >= n || e2 < 0 || e2 >= n {
		return fmt.Errorf("interference: index (%d,%d) out of range [0,%d)", e, e2, n)
	}
	if v < 0 || v > 1 {
		return fmt.Errorf("interference: weight %v outside [0,1]", v)
	}
	if e == e2 && v != 1 {
		return fmt.Errorf("interference: diagonal W[%d][%d] must stay 1", e, e2)
	}
	d.w[e][e2] = v
	d.rowsMu.Lock()
	d.rows = nil
	d.rowsMu.Unlock()
	return nil
}

// WeightRows implements RowsProvider. The CSR form is built on first
// use and cached until the next Set; the cache is mutex-guarded so
// concurrent readers (parallel shards sharing an immutable Dense) are
// safe. Set itself must still not race with readers.
func (d *Dense) WeightRows() *Sparse {
	d.rowsMu.Lock()
	defer d.rowsMu.Unlock()
	if d.rows == nil {
		d.rows = SparseFromWeights(len(d.w), func(e, e2 int) float64 { return d.w[e][e2] })
	}
	return d.rows
}

// Name implements Model.
func (d *Dense) Name() string { return d.name }

// NumLinks implements Model.
func (d *Dense) NumLinks() int { return len(d.w) }

// Weight implements Model.
func (d *Dense) Weight(e, e2 int) float64 { return d.w[e][e2] }

// Successes implements Model.
func (d *Dense) Successes(tx []int) []bool {
	counts := countDup(len(d.w), tx)
	out := make([]bool, len(tx))
	for i, e := range tx {
		if counts[e] != 1 {
			continue
		}
		sum := 0.0
		for _, e2 := range tx {
			if e2 != e {
				sum += d.w[e][e2]
			}
		}
		out[i] = sum < d.threshold
	}
	return out
}

// NewResolver implements SlotResolver.
func (d *Dense) NewResolver() func(tx []int) []bool {
	s := NewResolverScratch(len(d.w))
	return func(tx []int) []bool {
		out := s.Begin(tx)
		for i, e := range tx {
			if s.Counts[e] != 1 {
				continue
			}
			sum := 0.0
			for _, e2 := range tx {
				if e2 != e {
					sum += d.w[e][e2]
				}
			}
			out[i] = sum < d.threshold
		}
		s.End(tx)
		return out
	}
}

// Lossy wraps a model and drops each otherwise-successful transmission
// independently with probability P — the "trivial extension" to
// unreliable networks sketched in Section 9 of the paper. The random
// source is supplied per call to keep the model deterministic under
// seeded runs.
type Lossy struct {
	Inner Model
	P     float64
	// Rand returns a uniform float64 in [0,1); typically rng.Float64.
	Rand func() float64
	// Src, when set, is the draw-counting source behind Rand; it makes
	// the model checkpointable (see checkpoint.go). Construct with
	// NewLossy to get both wired consistently.
	Src *randx.CountingSource
}

// NewLossy builds a lossy wrapper whose drop decisions draw from a
// private draw-counted RNG seeded with seed, making the model
// checkpointable. The stream is identical to
// rand.New(rand.NewSource(seed)).Float64.
func NewLossy(inner Model, p float64, seed int64) *Lossy {
	src := randx.NewCounting(seed)
	return &Lossy{Inner: inner, P: p, Rand: rand.New(src).Float64, Src: src}
}

var _ Model = (*Lossy)(nil)

// Name implements Model.
func (l *Lossy) Name() string { return fmt.Sprintf("lossy(%s,p=%.2f)", l.Inner.Name(), l.P) }

// NumLinks implements Model.
func (l *Lossy) NumLinks() int { return l.Inner.NumLinks() }

// Weight implements Model.
func (l *Lossy) Weight(e, e2 int) float64 { return l.Inner.Weight(e, e2) }

// Successes implements Model.
func (l *Lossy) Successes(tx []int) []bool {
	out := l.Inner.Successes(tx)
	for i, ok := range out {
		if ok && l.Rand() < l.P {
			out[i] = false
		}
	}
	return out
}

// applyLoss overlays the loss draws on an inner resolution. The draw
// order is the slot order, exactly as in Successes, so resolver-path
// and Successes-path runs consume the identical RNG stream.
func (l *Lossy) applyLoss(out []bool) []bool {
	for i, ok := range out {
		if ok && l.Rand() < l.P {
			out[i] = false
		}
	}
	return out
}

// NewResolver implements SlotResolver by wrapping the inner model's
// resolver: the hot loop inherits the inner model's allocation-free
// resolution, with the loss overlay on top.
func (l *Lossy) NewResolver() func(tx []int) []bool {
	inner := ResolveFunc(l.Inner)
	return func(tx []int) []bool { return l.applyLoss(inner(tx)) }
}

// NewResolverN implements ParallelResolver, forwarding the worker-count
// override to the inner model. The loss overlay itself is a serial
// O(len(tx)) pass — its draw order is part of the model's determinism
// contract.
func (l *Lossy) NewResolverN(workers int) func(tx []int) []bool {
	inner := ResolveFuncN(l.Inner, workers)
	return func(tx []int) []bool { return l.applyLoss(inner(tx)) }
}

// ResolveStats implements ResolveStatsProvider by delegation.
func (l *Lossy) ResolveStats() ResolveStats {
	if sp, ok := l.Inner.(ResolveStatsProvider); ok {
		return sp.ResolveStats()
	}
	return ResolveStats{Workers: 1}
}
