package server

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"io"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"dynsched/internal/metrics"
)

// Cache is the content-addressed result store: marshaled result
// documents (sim.Result for single runs and per-plan units,
// dynsched.PlanResult for assembled plans) keyed by canonical hashes.
// Entries live in memory up to a bounded count with FIFO eviction;
// with a spill directory configured, every entry is also written to
// disk gzip-compressed (<dir>/<hash>.json.gz) and evicted or
// restarted-over entries are re-served from there. Directories written
// by pre-compression daemons are read transparently: a plain
// <hash>.json spill file serves exactly like a compressed one, new
// writes always compress. The disk tier is itself bounded by an entry
// cap with oldest-modification-time eviction, so a long-lived daemon
// cannot grow its spill directory without bound. Because simulations
// are deterministic in their spec (seed included), a cached document
// is bit-identical to what a fresh run of the same spec would produce.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	entries map[string][]byte
	order   []string // insertion order for FIFO eviction

	diskMu  sync.Mutex
	diskMax int
	disk    map[string]diskEntry
	// rawBytes/compBytes track the spill tier's size: the bytes the
	// stored documents decompress to vs what they occupy on disk (the
	// dynsched_cache_disk_bytes gauge pair; equal for legacy plain
	// files).
	rawBytes  int64
	compBytes int64

	// m, when set via instrument, counts hits/misses/evictions. All
	// paths tolerate a nil bundle, so the cache works uninstrumented.
	m *cacheMetrics
}

// diskEntry is the bookkeeping for one spill file: its format and the
// byte sizes feeding the disk-bytes gauges.
type diskEntry struct {
	gz   bool
	raw  int64
	comp int64
}

// cacheMetrics is the cache's instrument bundle (see metrics.go).
type cacheMetrics struct {
	hitsMem, hitsDisk, misses *metrics.Counter
	evictMem, evictDisk       *metrics.Counter
}

func (m *cacheMetrics) hitMemory() {
	if m != nil {
		m.hitsMem.Inc()
	}
}

func (m *cacheMetrics) hitDisk() {
	if m != nil {
		m.hitsDisk.Inc()
	}
}

func (m *cacheMetrics) miss() {
	if m != nil {
		m.misses.Inc()
	}
}

func (m *cacheMetrics) evictMemory() {
	if m != nil {
		m.evictMem.Inc()
	}
}

func (m *cacheMetrics) evictDiskN(n int) {
	if m != nil && n > 0 {
		m.evictDisk.Add(uint64(n))
	}
}

// instrument attaches the counter bundle. Call before the cache is
// shared across goroutines (the field is written without a lock).
func (c *Cache) instrument(m *cacheMetrics) { c.m = m }

// NewCache builds a cache holding up to max in-memory entries (max <= 0
// disables the memory tier) spilling to dir (empty = no disk tier),
// itself bounded to diskMax entries (0 = unbounded) with oldest-mtime
// eviction. The spill directory is created if it does not exist; if
// that fails, the disk tier is disabled — loudly, since the operator
// asked for it — rather than every write failing silently. Entries
// already in the directory (a daemon restart) are counted against the
// cap and evicted oldest-first if it is already exceeded.
func NewCache(max int, dir string, diskMax int) *Cache {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Printf("server: disabling the disk cache tier: %v", err)
			dir = ""
		}
	}
	c := &Cache{max: max, dir: dir, diskMax: diskMax, entries: map[string][]byte{}, disk: map[string]diskEntry{}}
	if dir != "" {
		if des, err := os.ReadDir(dir); err == nil {
			for _, de := range des {
				name := de.Name()
				info, err := de.Info()
				if err != nil {
					continue
				}
				switch {
				case strings.HasSuffix(name, ".json.gz"):
					hash := strings.TrimSuffix(name, ".json.gz")
					raw := gzipRawSize(filepath.Join(dir, name), info.Size())
					c.addDiskLocked(hash, diskEntry{gz: true, raw: raw, comp: info.Size()})
				case strings.HasSuffix(name, ".json"):
					hash := strings.TrimSuffix(name, ".json")
					if _, dup := c.disk[hash]; dup {
						continue // the compressed spill wins
					}
					c.addDiskLocked(hash, diskEntry{raw: info.Size(), comp: info.Size()})
				}
			}
		}
		c.diskMu.Lock()
		c.evictDiskLocked()
		c.diskMu.Unlock()
	}
	return c
}

// gzipRawSize recovers the decompressed size of a gzip spill file from
// its ISIZE trailer (the last four bytes, little-endian) without
// reading the whole file. size is the on-disk size; malformed or
// truncated files report 0 and fail later at read time.
func gzipRawSize(path string, size int64) int64 {
	if size < 4 {
		return 0
	}
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	var trailer [4]byte
	if _, err := f.ReadAt(trailer[:], size-4); err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint32(trailer[:]))
}

// addDiskLocked records one spill file. Used without the lock only
// during the single-goroutine constructor scan.
func (c *Cache) addDiskLocked(hash string, e diskEntry) {
	c.disk[hash] = e
	c.rawBytes += e.raw
	c.compBytes += e.comp
}

// removeDiskLocked drops one spill file's bookkeeping. Callers must
// hold diskMu.
func (c *Cache) removeDiskLocked(hash string) {
	e, ok := c.disk[hash]
	if !ok {
		return
	}
	delete(c.disk, hash)
	c.rawBytes -= e.raw
	c.compBytes -= e.comp
}

// entryPath returns the on-disk file for a tracked entry.
func (c *Cache) entryPath(hash string, e diskEntry) string {
	if e.gz {
		return c.gzPath(hash)
	}
	return c.path(hash)
}

// Get returns the cached document for hash. Memory is consulted first,
// then the spill directory; a disk hit is promoted back into memory.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if data, ok := c.entries[hash]; ok {
		c.mu.Unlock()
		c.m.hitMemory()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		c.m.miss()
		return nil, false
	}
	data, ok := c.readDisk(hash)
	if !ok {
		c.m.miss()
		return nil, false
	}
	c.m.hitDisk()
	c.put(hash, data, false)
	return data, true
}

// readDisk loads one spill file, decompressing the gzip format and
// falling back to a legacy plain file, whatever the bookkeeping says —
// a racing eviction or an external cleanup must read as a miss, not an
// error.
func (c *Cache) readDisk(hash string) ([]byte, bool) {
	if raw, err := os.ReadFile(c.gzPath(hash)); err == nil {
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, false
		}
		data, err := io.ReadAll(zr)
		if err != nil || zr.Close() != nil {
			return nil, false
		}
		return data, true
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put stores the document for hash in memory and, when configured, on
// disk. Disk writes are best-effort: a full or read-only spill
// directory degrades the cache, it does not fail the job.
func (c *Cache) Put(hash string, data []byte) {
	c.put(hash, data, true)
}

func (c *Cache) put(hash string, data []byte, spill bool) {
	c.mu.Lock()
	if _, dup := c.entries[hash]; !dup && c.max > 0 {
		c.entries[hash] = data
		c.order = append(c.order, hash)
		for len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
			c.m.evictMemory()
		}
	}
	c.mu.Unlock()
	if spill && c.dir != "" {
		c.diskMu.Lock()
		_, exists := c.disk[hash]
		c.diskMu.Unlock()
		if exists {
			// Content-addressed: an existing spill file already holds
			// these exact bytes (in either format).
			return
		}
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(data); err != nil {
			return
		}
		if err := zw.Close(); err != nil {
			return
		}
		// Write-then-rename so a crashed daemon never leaves a torn
		// document a restart would serve.
		tmp := c.gzPath(hash) + ".tmp"
		if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err == nil {
			if err := os.Rename(tmp, c.gzPath(hash)); err == nil {
				c.diskMu.Lock()
				if _, ok := c.disk[hash]; !ok {
					c.addDiskLocked(hash, diskEntry{gz: true, raw: int64(len(data)), comp: int64(buf.Len())})
					c.evictDiskLocked()
				}
				c.diskMu.Unlock()
			}
		}
	}
}

// evictDiskLocked trims the spill directory to the diskMax entry cap,
// removing oldest-mtime files first. Callers must hold diskMu.
func (c *Cache) evictDiskLocked() {
	if c.diskMax <= 0 || len(c.disk) <= c.diskMax {
		return
	}
	type aged struct {
		hash  string
		mtime int64
	}
	files := make([]aged, 0, len(c.disk))
	for hash, e := range c.disk {
		info, err := os.Stat(c.entryPath(hash, e))
		if err != nil {
			// The file is already gone; drop the bookkeeping entry.
			c.removeDiskLocked(hash)
			continue
		}
		files = append(files, aged{hash: hash, mtime: info.ModTime().UnixNano()})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].mtime < files[j].mtime })
	removed := 0
	for _, f := range files {
		if len(c.disk) <= c.diskMax {
			break
		}
		_ = os.Remove(c.entryPath(f.hash, c.disk[f.hash]))
		c.removeDiskLocked(f.hash)
		removed++
	}
	c.m.evictDiskN(removed)
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// DiskLen returns the number of entries in the spill directory — the
// /healthz gauge behind the -cache-disk-max cap.
func (c *Cache) DiskLen() int {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	return len(c.disk)
}

// DiskBytes returns the spill tier's size: the bytes the stored
// documents decompress to and the bytes they occupy on disk.
func (c *Cache) DiskBytes() (raw, compressed int64) {
	c.diskMu.Lock()
	defer c.diskMu.Unlock()
	return c.rawBytes, c.compBytes
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}

func (c *Cache) gzPath(hash string) string {
	return filepath.Join(c.dir, hash+".json.gz")
}
