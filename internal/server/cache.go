package server

import (
	"log"
	"os"
	"path/filepath"
	"sync"
)

// Cache is the content-addressed result store: marshaled sim.Result
// documents keyed by the canonical Scenario.Hash. Entries live in
// memory up to a bounded count with FIFO eviction; with a spill
// directory configured, every entry is also written to disk
// (<dir>/<hash>.json) and evicted or restarted-over entries are
// re-served from there. Because simulations are deterministic in their
// spec (seed included), a cached document is bit-identical to what a
// fresh run of the same spec would produce.
type Cache struct {
	mu      sync.Mutex
	max     int
	dir     string
	entries map[string][]byte
	order   []string // insertion order for FIFO eviction
}

// NewCache builds a cache holding up to max in-memory entries (max <= 0
// disables the memory tier) spilling to dir (empty = no disk tier).
// The spill directory is created if it does not exist; if that fails,
// the disk tier is disabled — loudly, since the operator asked for it —
// rather than every write failing silently.
func NewCache(max int, dir string) *Cache {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			log.Printf("server: disabling the disk cache tier: %v", err)
			dir = ""
		}
	}
	return &Cache{max: max, dir: dir, entries: map[string][]byte{}}
}

// Get returns the cached document for hash. Memory is consulted first,
// then the spill directory; a disk hit is promoted back into memory.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	if data, ok := c.entries[hash]; ok {
		c.mu.Unlock()
		return data, true
	}
	c.mu.Unlock()
	if c.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(c.path(hash))
	if err != nil {
		return nil, false
	}
	c.put(hash, data, false)
	return data, true
}

// Put stores the document for hash in memory and, when configured, on
// disk. Disk writes are best-effort: a full or read-only spill
// directory degrades the cache, it does not fail the job.
func (c *Cache) Put(hash string, data []byte) {
	c.put(hash, data, true)
}

func (c *Cache) put(hash string, data []byte, spill bool) {
	c.mu.Lock()
	if _, dup := c.entries[hash]; !dup && c.max > 0 {
		c.entries[hash] = data
		c.order = append(c.order, hash)
		for len(c.order) > c.max {
			delete(c.entries, c.order[0])
			c.order = c.order[1:]
		}
	}
	c.mu.Unlock()
	if spill && c.dir != "" {
		// Write-then-rename so a crashed daemon never leaves a torn
		// document a restart would serve.
		tmp := c.path(hash) + ".tmp"
		if err := os.WriteFile(tmp, data, 0o644); err == nil {
			_ = os.Rename(tmp, c.path(hash))
		}
	}
}

// Len returns the number of in-memory entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

func (c *Cache) path(hash string) string {
	return filepath.Join(c.dir, hash+".json")
}
