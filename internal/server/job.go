package server

import (
	"context"
	"encoding/json"
	"sync"

	"dynsched"
	"dynsched/api"
)

// The wire types live in the exported dynsched/api package so external
// clients can decode service responses; the server aliases them rather
// than redefining parallel shapes that could drift.
type (
	// State is a job's lifecycle phase.
	State = api.State
	// Event is one entry of a job's NDJSON progress stream.
	Event = api.Event
	// JobView is the API representation of a job.
	JobView = api.JobView
	// SubmitRequest is the POST /v1/jobs body.
	SubmitRequest = api.SubmitRequest
	// ScenarioInfo is one GET /v1/scenarios entry.
	ScenarioInfo = api.ScenarioInfo
	// UnitEvent is the payload of a plan job's per-unit events.
	UnitEvent = api.UnitEvent
)

// Job lifecycle states, re-exported for the server's own transitions.
const (
	StateQueued    = api.StateQueued
	StateRunning   = api.StateRunning
	StateDone      = api.StateDone
	StateFailed    = api.StateFailed
	StateCancelled = api.StateCancelled
)

// Job is one submitted simulation. All mutable state is guarded by mu;
// the event log grows append-only and cond wakes streamers when it
// does.
type Job struct {
	ID       string
	Hash     string
	Scenario dynsched.Scenario

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	cached bool
	errMsg string
	result []byte
	events []Event
	// cancelRequested makes requestCancel idempotent: only the first
	// DELETE reports having changed anything.
	cancelRequested bool
	cancel          context.CancelFunc

	// unitsTotal/unitsDone/unitsCached track a plan job's per-unit
	// progress (zero for single-run jobs). unitsTotal is set before the
	// job is visible and never changes; the other two advance under mu
	// as units complete.
	unitsTotal  int
	unitsDone   int
	unitsCached int

	// eventsDropped counts unit completions elided from the event
	// stream by thinning (plans beyond maxUnitEvents units), advanced
	// under mu alongside the units counters.
	eventsDropped int

	// recovered marks a job restored from the journal after a restart;
	// resumedFromSlot is the highest slot any of its simulations resumed
	// from via an on-disk checkpoint. reps preserves the original
	// submission's replication count for re-journaling.
	recovered       bool
	resumedFromSlot int64
	reps            int

	// shutdownDrop marks a job hard-cancelled by a draining shutdown:
	// its terminal state is NOT journaled, so the next boot recovers it.
	shutdownDrop bool

	// compiled carries the submit-time compilation (done there so bad
	// specs fail the POST synchronously) to the one worker that runs the
	// job, which clears it — no recompilation needed. Only that worker
	// touches it after construction; the queue send orders the accesses.
	compiled *dynsched.CompiledScenario

	// plan, when non-nil, marks a plan job (sweep, grid, replicate): the
	// worker executes the units through the planner instead of a single
	// simulation, consulting the result cache per unit unless noCache.
	// Like compiled, only the one worker touches it after construction.
	plan    *dynsched.Plan
	noCache bool
}

func newJob(id, hash string, sc dynsched.Scenario) *Job {
	j := &Job{ID: id, Hash: hash, Scenario: sc, state: StateQueued}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// publishLocked appends an event to the log (stamping Seq and Job) and
// wakes every waiting streamer. Callers must hold j.mu.
func (j *Job) publishLocked(e Event) {
	e.Seq = len(j.events)
	e.Job = j.ID
	j.events = append(j.events, e)
	j.cond.Broadcast()
}

// publish is publishLocked for callers not holding the lock.
func (j *Job) publish(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(e)
}

// currentState reads the job's state without building a view.
func (j *Job) currentState() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// View snapshots the job for the API. Result bytes are included only
// for done jobs and only when withResult is set.
func (j *Job) View(withResult bool) JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:              j.ID,
		Hash:            j.Hash,
		Scenario:        j.Scenario.Name,
		State:           j.state,
		Cached:          j.cached,
		Error:           j.errMsg,
		UnitsTotal:      j.unitsTotal,
		UnitsDone:       j.unitsDone,
		UnitsCached:     j.unitsCached,
		Recovered:       j.recovered,
		ResumedFromSlot: j.resumedFromSlot,
		Events:          len(j.events),
		EventsDropped:   j.eventsDropped,
	}
	if withResult && j.state == StateDone {
		v.Result = json.RawMessage(j.result)
	}
	return v
}

// event blocks until the job's i-th event exists and returns it. It
// returns ok=false when ctx is done first; the caller must have
// arranged for a broadcast on ctx cancellation (see streamEvents).
func (j *Job) event(ctx context.Context, i int) (Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i >= len(j.events) {
		if ctx.Err() != nil {
			return Event{}, false
		}
		j.cond.Wait()
	}
	return j.events[i], true
}

// requestCancel asks the job to stop. A queued job transitions to
// cancelled immediately (the worker will skip it); a running job has
// its run context cancelled and the worker publishes the terminal
// event. Terminal jobs are left untouched. It reports whether the
// request changed anything, and whether the job went terminal right
// here (so the caller can journal the outcome — the worker journals
// the running case). Because both this transition and the worker's
// queued→running transition happen under j.mu, a DELETE cannot slip
// between them: the job is either still queued (cancelled here) or
// already running (cancelled through its context).
func (j *Job) requestCancel() (changed, cancelledNow bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.cancelRequested {
		return false, false
	}
	j.cancelRequested = true
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.publishLocked(Event{Type: "cancelled"})
		cancelledNow = true
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	}
	return true, cancelledNow
}
