// The server's durable execution tier: a job journal and an on-disk
// checkpoint store, both rooted in Config.JournalDir.
//
// The journal records job lifecycle events — the submitted spec, each
// freshly-simulated unit, and the terminal state — as JSON payloads in
// an append-only, CRC-framed record log (internal/journal). On
// restart, New replays the log, restores terminal jobs to the
// registry, and resubmits every job that never reached a terminal
// state under its original ID. Recovery re-simulates only units whose
// results never reached the content-addressed cache; the per-unit
// cache lookup serves the rest, and the assembled result document is
// byte-identical to an uninterrupted run's.
//
// Deliberate asymmetry in what is journaled: a user cancellation is a
// terminal outcome and is journaled, but a shutdown- or crash-time
// cancellation is not — those jobs are meant to recover on the next
// boot.
//
// The checkpoint store holds at most one engine checkpoint per unit
// (JournalDir/checkpoints/<unit-hash>.json, written atomically), so a
// huge interrupted simulation resumes from its last frame-aligned
// snapshot instead of slot 0. Files are deleted when their unit
// completes; a stale or unreadable file is dropped, never fatal.
package server

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"dynsched"
	"dynsched/internal/journal"
	"dynsched/internal/sim"
)

// journalRecord is the JSON payload of one journal entry. Op selects
// which fields are meaningful:
//
//	submit    id, hash, spec, reps, noCache — a job entered the queue
//	unit      id, index, hash — one plan unit's fresh result reached
//	          the cache (cache-served units are not recorded; they need
//	          no recovery)
//	finish    id, state — the job reached a terminal state
//	shutdown  (none) — the process drained and exited cleanly
type journalRecord struct {
	Op      string             `json:"op"`
	ID      string             `json:"id,omitempty"`
	Hash    string             `json:"hash,omitempty"`
	Spec    *dynsched.Scenario `json:"spec,omitempty"`
	Reps    int                `json:"reps,omitempty"`
	NoCache bool               `json:"noCache,omitempty"`
	Index   int                `json:"index,omitempty"`
	State   State              `json:"state,omitempty"`
}

// replayedJob is one job's state reconstructed from the journal.
type replayedJob struct {
	id      string
	hash    string
	spec    dynsched.Scenario
	reps    int
	noCache bool
	units   int // fresh units journaled before the cut
	state   State
}

// appendRecord journals one record; sync forces it to disk before
// returning. A nil journal (durability off) is a no-op. Append errors
// are reported to the caller but the server treats them as
// non-fatal — the journal degrades, jobs still run.
func (s *Server) appendRecord(rec journalRecord, sync bool) error {
	if s.journal == nil {
		return nil
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if err := s.journal.Append(payload, sync); err != nil {
		return err
	}
	s.metrics.journalAppends.Inc()
	if sync {
		s.metrics.journalFsyncs.Inc()
	}
	return nil
}

// journalSubmit records a job entering the queue.
func (s *Server) journalSubmit(j *Job, reps int) {
	_ = s.appendRecord(journalRecord{
		Op: "submit", ID: j.ID, Hash: j.Hash,
		Spec: &j.Scenario, Reps: reps, NoCache: j.noCache,
	}, true)
}

// journalUnit records one plan unit's fresh result reaching the cache.
// Unit records are not synced: losing the tail of them costs only
// re-simulating units whose results may nonetheless be in the cache.
func (s *Server) journalUnit(j *Job, index int, hash string) {
	_ = s.appendRecord(journalRecord{Op: "unit", ID: j.ID, Index: index, Hash: hash}, false)
}

// journalFinish records a job's terminal state.
func (s *Server) journalFinish(j *Job, state State) {
	_ = s.appendRecord(journalRecord{Op: "finish", ID: j.ID, State: state}, true)
}

// recover replays the journal directory, restores the job table, and
// re-enqueues incomplete jobs. It then opens a fresh journal segment,
// re-journals the surviving incomplete jobs (the compacted snapshot),
// and prunes the replayed segments. Called from New before the worker
// pool starts, so no locking is needed.
func (s *Server) recover(dir string) error {
	jobs := map[string]*replayedJob{}
	var order []string
	stats, err := journal.Replay(dir, func(payload []byte) error {
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("decoding journal record: %w", err)
		}
		switch rec.Op {
		case "submit":
			if rec.Spec == nil || rec.ID == "" {
				return fmt.Errorf("journal submit record without spec or id")
			}
			if _, dup := jobs[rec.ID]; !dup {
				order = append(order, rec.ID)
			}
			jobs[rec.ID] = &replayedJob{
				id: rec.ID, hash: rec.Hash, spec: *rec.Spec,
				reps: rec.Reps, noCache: rec.NoCache,
			}
		case "unit":
			if rj, ok := jobs[rec.ID]; ok {
				rj.units++
			}
		case "finish":
			if rj, ok := jobs[rec.ID]; ok {
				rj.state = rec.State
			}
		case "shutdown":
			s.cleanShutdown = true
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("replaying journal: %w", err)
	}
	s.replayStats = stats

	jn, err := journal.Open(dir, 0)
	if err != nil {
		return fmt.Errorf("opening journal: %w", err)
	}
	s.journal = jn
	s.ckptDir = filepath.Join(dir, "checkpoints")

	for _, id := range order {
		rj := jobs[id]
		if n := jobIDNum(id); n > s.nextID {
			s.nextID = n
		}
		if rj.state.Terminal() {
			s.restoreTerminal(rj)
			continue
		}
		s.resubmit(rj)
	}
	if err := jn.Sync(); err != nil {
		return fmt.Errorf("syncing journal snapshot: %w", err)
	}
	if err := jn.Prune(); err != nil {
		return fmt.Errorf("pruning journal: %w", err)
	}
	return nil
}

// restoreTerminal re-registers a finished job: its state survives the
// restart and, for done jobs, the result document is served from the
// content-addressed cache when still present. Terminal jobs are not
// re-journaled — after pruning, the next restart forgets them (their
// results stay in the cache, addressed by spec hash).
func (s *Server) restoreTerminal(rj *replayedJob) {
	j := newJob(rj.id, rj.hash, rj.spec)
	j.state = rj.state
	j.recovered = true
	if rj.state == StateDone {
		if data, ok := s.cache.Get(rj.hash); ok {
			j.result = data
		}
	}
	s.register(j)
}

// resubmit re-enqueues an incomplete job under its original ID with
// recovered set, re-journaling its submit record into the compacted
// snapshot. A job whose spec no longer plans (library drift) or that
// finds the queue full turns failed with a diagnostic instead of
// silently vanishing.
func (s *Server) resubmit(rj *replayedJob) {
	j := newJob(rj.id, rj.hash, rj.spec)
	j.recovered = true
	j.noCache = rj.noCache
	j.reps = rj.reps
	p, err := rj.spec.Plan(maxInt(rj.reps, 1))
	if err != nil {
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("recovering job: %v", err)
		j.publish(Event{Type: "failed", Error: j.errMsg})
		s.register(j)
		s.journalFinish(j, StateFailed)
		s.markFinished(StateFailed)
		return
	}
	if p.Kind != dynsched.PlanRun {
		j.plan = p
		j.unitsTotal = len(p.Units)
	}
	j.publish(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		j.state = StateFailed
		j.errMsg = "recovering job: queue full at startup"
		j.publish(Event{Type: "failed", Error: j.errMsg})
		s.register(j)
		s.journalFinish(j, StateFailed)
		s.markFinished(StateFailed)
		return
	}
	s.register(j)
	s.recovered++
	s.journalSubmit(j, rj.reps)
}

// jobIDNum extracts the numeric suffix of a "job-N" ID (0 for foreign
// shapes), so allocID continues past recovered IDs.
func jobIDNum(id string) int {
	n, err := strconv.Atoi(strings.TrimPrefix(id, "job-"))
	if err != nil || n < 0 {
		return 0
	}
	return n
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---- Checkpoint store ----

// ckptPath is the unit's checkpoint file, addressed by its spec hash:
// a restarted daemon finds the same unit at the same path.
func (s *Server) ckptPath(hash string) string {
	return filepath.Join(s.ckptDir, hash+".json")
}

// saveCheckpoint atomically replaces the unit's checkpoint file.
func (s *Server) saveCheckpoint(hash string, cp *sim.Checkpoint) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.ckptDir, 0o755); err != nil {
		return err
	}
	tmp := s.ckptPath(hash) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, s.ckptPath(hash)); err != nil {
		return err
	}
	s.metrics.checkpointWrites.Inc()
	return nil
}

// loadCheckpoint returns the unit's stored checkpoint, nil when there
// is none or it does not decode — a bad checkpoint file costs a
// restart from slot 0, never a failed job.
func (s *Server) loadCheckpoint(hash string) *sim.Checkpoint {
	data, err := os.ReadFile(s.ckptPath(hash))
	if err != nil {
		return nil
	}
	var cp sim.Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil
	}
	return &cp
}

// dropCheckpoint removes the unit's checkpoint file once its result is
// durable in the cache.
func (s *Server) dropCheckpoint(hash string) {
	_ = os.Remove(s.ckptPath(hash))
}
