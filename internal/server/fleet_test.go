package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynsched"
	"dynsched/api"
)

// startRunner boots an in-process fleet runner against the coordinator
// at ts, stopped with the test.
func startRunner(t *testing.T, ts *httptest.Server, cfg RunnerConfig) *Runner {
	t.Helper()
	cfg.Coordinator = ts.URL
	if cfg.LeaseWait == 0 {
		cfg.LeaseWait = 100 * time.Millisecond
	}
	r := NewRunner(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = r.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Error("runner did not stop")
		}
	})
	return r
}

func fleetHealth(t *testing.T, ts *httptest.Server) *api.FleetHealth {
	t.Helper()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h.Fleet
}

// postLease is a raw lease round-trip, used to play a scripted (or
// zombie) runner without the Runner machinery.
func postLease(t *testing.T, ts *httptest.Server, runner string, want int, waitMs int64) api.LeaseResponse {
	t.Helper()
	body, _ := json.Marshal(api.LeaseRequest{Runner: runner, Want: want, WaitMs: waitMs})
	resp, err := http.Post(ts.URL+"/v1/fleet/lease", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lease: %s", resp.Status)
	}
	var lr api.LeaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestFleetEndToEndByteIdentity is the fleet acceptance test: the same
// sweep run on a single-node server and on a dispatch-only coordinator
// with two attached runners produces bit-identical PlanResult
// documents, every unit merging through the fleet.
func TestFleetEndToEndByteIdentity(t *testing.T) {
	sc := sweepScenario("fleet-e2e", 2_000, 0.1, 0.2, 0.3, 0.35, 0.4, 0.45)

	// Reference: a plain local server.
	_, plain := startServer(t, Config{Workers: 2, QueueDepth: 8})
	_, refJob := submitScenario(t, plain, sc)
	ref := waitForState(t, plain, refJob.ID, StateDone)

	// Fleet: a dispatch-only coordinator — every unit must complete on
	// a runner — with two workers attached.
	_, coord := startServer(t, Config{Workers: 2, QueueDepth: 8, FleetLocal: -1, LeaseExpiry: 10 * time.Second})
	startRunner(t, coord, RunnerConfig{ID: "r1", Parallel: 2})
	startRunner(t, coord, RunnerConfig{ID: "r2", Parallel: 2})

	_, job := submitScenario(t, coord, sc)
	view := waitForState(t, coord, job.ID, StateDone)

	if string(view.Result) != string(ref.Result) {
		t.Fatalf("fleet-merged PlanResult is not byte-identical to the single-node run:\nfleet: %.200s\nlocal: %.200s", view.Result, ref.Result)
	}
	if view.UnitsDone != 6 || view.UnitsCached != 0 {
		t.Fatalf("fleet run counters: %d done / %d cached, want 6/0", view.UnitsDone, view.UnitsCached)
	}
	f := fleetHealth(t, coord)
	if f == nil {
		t.Fatal("no fleet section on /healthz after a fleet run")
	}
	if f.Runners != 2 {
		t.Errorf("fleet roster %d runners, want 2", f.Runners)
	}
	if f.Merged != 6 {
		t.Errorf("fleet merged %d reports, want 6", f.Merged)
	}
	if f.Leased != 0 || f.PendingUnits != 0 {
		t.Errorf("lease table not empty after the run: %d leased, %d pending", f.Leased, f.PendingUnits)
	}
}

// TestFleetHybridCoordinator: with the default FleetLocal the
// coordinator executes its own share while a runner takes the rest —
// the job completes and the two shares add up to the unit count.
func TestFleetHybridCoordinator(t *testing.T) {
	srv, coord := startServer(t, Config{Workers: 2, QueueDepth: 8, LeaseExpiry: 10 * time.Second})
	runner := startRunner(t, coord, RunnerConfig{ID: "hy1", Parallel: 1})

	sc := sweepScenario("fleet-hybrid", 2_000, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45)
	_, job := submitScenario(t, coord, sc)
	view := waitForState(t, coord, job.ID, StateDone)
	if view.UnitsDone != 8 {
		t.Fatalf("hybrid run finished %d units, want 8", view.UnitsDone)
	}
	remote := runner.UnitsDone()
	local := int64(srv.metrics.plan.UnitsRun.Value())
	if remote+local != 8 {
		t.Fatalf("hybrid split %d remote + %d local != 8 units", remote, local)
	}
}

// TestFleetLeaseLifecycle pins the exactly-once merge protocol at the
// lease-manager level: a lease expires, the unit re-leases to another
// runner with the lapsed one excluded, the late report against the
// stale lease is rejected idempotently, and the counters come out
// exact.
func TestFleetLeaseLifecycle(t *testing.T) {
	lm := newLeaseManager(time.Hour, 64, nil)
	pu := dynsched.PlanUnit{Hash: "unit-1", Scenario: lineScenario("ll", 100, 1)}

	type outcome struct {
		res *dynsched.SimResult
		ok  bool
		err error
	}
	got := make(chan outcome, 1)
	go func() {
		res, ok, err := lm.offer(context.Background(), &fleetUnit{pu: pu}, nil)
		got <- outcome{res, ok, err}
	}()
	waitFor(t, func() bool { _, p, _ := lm.occupancy(); return p == 1 })

	grantA, _ := lm.lease(nil, "a", 8, 0)
	if len(grantA) != 1 {
		t.Fatalf("runner a granted %d units, want 1", len(grantA))
	}
	staleID := grantA[0].leaseID

	// The lease expires: the unit returns to pending, excluded from a.
	if released := lm.sweep(time.Now().Add(2 * time.Hour)); released != 1 {
		t.Fatalf("sweep released %d leases, want 1", released)
	}

	// b joins the roster; a may not re-acquire the unit it lapsed on.
	lm.renew("b")
	if again, _ := lm.lease(nil, "a", 8, 0); len(again) != 0 {
		t.Fatalf("lapsed runner re-acquired its expired unit (%d granted)", len(again))
	}
	grantB, _ := lm.lease(nil, "b", 8, 0)
	if len(grantB) != 1 {
		t.Fatalf("runner b granted %d units, want 1", len(grantB))
	}
	if grantB[0].leaseID == staleID {
		t.Fatal("re-grant reused the stale lease ID")
	}

	// The presumed-dead runner reports late — rejected, twice, with no
	// effect on the unit.
	res, _ := json.Marshal(&dynsched.SimResult{})
	for i := 0; i < 2; i++ {
		if err := lm.report("a", api.UnitReport{Lease: staleID, Hash: pu.Hash, Result: res}); err != errStaleLease {
			t.Fatalf("late report %d: err=%v, want errStaleLease", i, err)
		}
	}
	select {
	case o := <-got:
		t.Fatalf("unit completed off a stale report: %+v", o)
	default:
	}

	// b's report merges exactly once.
	if err := lm.report("b", api.UnitReport{Lease: grantB[0].leaseID, Hash: pu.Hash, Result: res}); err != nil {
		t.Fatalf("valid report rejected: %v", err)
	}
	o := <-got
	if !o.ok || o.err != nil || o.res == nil {
		t.Fatalf("offer outcome %+v, want merged result", o)
	}
	// A duplicate of the consumed lease is stale too.
	if err := lm.report("b", api.UnitReport{Lease: grantB[0].leaseID, Hash: pu.Hash, Result: res}); err != errStaleLease {
		t.Fatalf("duplicate report: err=%v, want errStaleLease", err)
	}

	snap := lm.snapshot()
	if snap.LeasedTotal != 2 || snap.ReLeased != 1 || snap.Merged != 1 || snap.Rejected != 3 {
		t.Fatalf("counters leased=%d reLeased=%d merged=%d rejected=%d, want 2/1/1/3",
			snap.LeasedTotal, snap.ReLeased, snap.Merged, snap.Rejected)
	}
	if snap.Leased != 0 || snap.PendingUnits != 0 {
		t.Fatalf("lease table not empty: %d leased, %d pending", snap.Leased, snap.PendingUnits)
	}
}

// TestFleetLeaseEscapeHatch: exclusion yields when the lapsed runner
// is the only one left — better a retry on a suspect runner than a
// unit no one may run.
func TestFleetLeaseEscapeHatch(t *testing.T) {
	lm := newLeaseManager(time.Hour, 64, nil)
	pu := dynsched.PlanUnit{Hash: "unit-esc", Scenario: lineScenario("esc", 100, 1)}
	go lm.offer(context.Background(), &fleetUnit{pu: pu}, nil)
	waitFor(t, func() bool { _, p, _ := lm.occupancy(); return p == 1 })

	if g, _ := lm.lease(nil, "solo", 8, 0); len(g) != 1 {
		t.Fatalf("initial grant %d units, want 1", len(g))
	}
	lm.sweep(time.Now().Add(2 * time.Hour))
	g, _ := lm.lease(nil, "solo", 8, 0)
	if len(g) != 1 {
		t.Fatalf("sole surviving runner was refused its expired unit (%d granted)", len(g))
	}
}

// TestDrainReleasesFleetLeases is the drain-release regression test: a
// zombie runner holds every unit of a running plan on long leases, a
// live runner is attached, and Drain must hand the zombie's units over
// (not drop the job) so the plan finishes inside the grace period.
func TestDrainReleasesFleetLeases(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 2, QueueDepth: 8, FleetLocal: -1, LeaseExpiry: time.Minute})

	sc := sweepScenario("drain-fleet", 2_000, 0.1, 0.2, 0.3)
	_, job := submitScenario(t, ts, sc)

	// The zombie leases all three units and never reports. Its lease
	// outlives any reasonable grace period.
	waitFor(t, func() bool { f := fleetHealth(t, ts); return f != nil && f.PendingUnits+f.Leased == 3 })
	lr := postLease(t, ts, "zombie", 64, 0)
	if len(lr.Units) != 3 {
		t.Fatalf("zombie leased %d units, want 3", len(lr.Units))
	}

	live := startRunner(t, ts, RunnerConfig{ID: "live", Parallel: 2})

	rep := srv.Drain(20 * time.Second)
	if rep.Finished != 1 || rep.DroppedRunning != 0 {
		t.Fatalf("drain report %+v, want the plan finished via re-lease", rep)
	}
	view := getJob(t, ts, job.ID)
	if view.State != StateDone {
		t.Fatalf("job %s after drain, want done", view.State)
	}
	if live.UnitsDone() != 3 {
		t.Errorf("live runner completed %d units, want 3", live.UnitsDone())
	}
	f := fleetHealth(t, ts)
	if f.Merged != 3 {
		t.Errorf("fleet merged %d, want 3", f.Merged)
	}
}

// TestFleetUnitCacheEndpoint pins GET /v1/units/{hash}: 404 on a cold
// hash, then the exact cached bytes once the unit result is stored.
func TestFleetUnitCacheEndpoint(t *testing.T) {
	srv, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})

	resp, err := http.Get(ts.URL + "/v1/units/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cold unit fetch: %s, want 404", resp.Status)
	}

	doc := []byte(`{"slots":1}`)
	srv.cache.Put("deadbeef", doc)
	resp, err = http.Get(ts.URL + "/v1/units/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != string(doc) {
		t.Fatalf("unit fetch: %s %q, want the exact cached document", resp.Status, body)
	}
}

// waitFor polls cond to true within a generous deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within deadline")
		}
		time.Sleep(2 * time.Millisecond)
	}
}
