package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"dynsched"
	"dynsched/api"
	"dynsched/internal/sim"
)

// startServer boots a server with its worker pool and an HTTP listener
// on a random port, both torn down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	srv.Start(ctx)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		srv.Wait()
	})
	return srv, ts
}

// lineScenario is the fast test workload: packet routing on a short
// line, milliseconds per 10k slots.
func lineScenario(name string, slots, seed int64) dynsched.Scenario {
	return dynsched.NewScenario(name,
		dynsched.WithModel("identity"),
		dynsched.WithTopology("line"),
		dynsched.WithNodes(6), dynsched.WithHops(5),
		dynsched.WithLambda(0.4),
		dynsched.WithAlgorithm("full-parallel"),
		dynsched.WithSlots(slots), dynsched.WithSeed(seed),
	)
}

func submitJSON(t *testing.T, ts *httptest.Server, body string) (int, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view JobView
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, view
}

func submitScenario(t *testing.T, ts *httptest.Server, sc dynsched.Scenario) (int, JobView) {
	t.Helper()
	body, err := json.Marshal(SubmitRequest{Scenario: &sc})
	if err != nil {
		t.Fatal(err)
	}
	return submitJSON(t, ts, string(body))
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: %s", id, resp.Status)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// streamEvents follows the job's NDJSON stream to its terminal event.
func streamEvents(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("event stream content type %q", ct)
	}
	var events []Event
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var e Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		events = append(events, e)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	return events
}

// waitForState polls the job until it reaches want or the deadline
// passes.
func waitForState(t *testing.T, ts *httptest.Server, id string, want State) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		view := getJob(t, ts, id)
		if view.State == want {
			return view
		}
		if view.State.Terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s (want %s): %+v", id, view.State, want, view)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServerEndToEnd is the acceptance test: boot dynschedd's server
// on a random port, submit the same scenario twice, and check that
// (a) streamed progress events arrive in order, (b) the second
// submission is a cache hit returning a bit-identical result.
func TestServerEndToEnd(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8, ProgressEvery: 1_000})
	sc := lineScenario("e2e", 4_000, 1)

	status, first := submitScenario(t, ts, sc)
	if status != http.StatusAccepted {
		t.Fatalf("first submission status %d", status)
	}
	if first.Cached {
		t.Fatal("first submission claims a cache hit")
	}
	if first.Hash != sc.Hash() {
		t.Fatalf("job hash %s != spec hash %s", first.Hash, sc.Hash())
	}

	// (a) The event stream replays and follows in order: contiguous
	// sequence numbers, queued → started → progress… → done, with
	// progress slot counts strictly increasing.
	events := streamEvents(t, ts, first.ID)
	if len(events) < 4 {
		t.Fatalf("only %d events: %+v", len(events), events)
	}
	for i, e := range events {
		if e.Seq != i {
			t.Fatalf("event %d has seq %d: %+v", i, e.Seq, events)
		}
		if e.Job != first.ID {
			t.Fatalf("event %d names job %q", i, e.Job)
		}
	}
	if events[0].Type != "queued" || events[1].Type != "started" {
		t.Fatalf("stream starts %s, %s", events[0].Type, events[1].Type)
	}
	if last := events[len(events)-1]; last.Type != "done" || last.Cached {
		t.Fatalf("stream ends with %+v", last)
	}
	var lastSlot int64
	progress := 0
	for _, e := range events[2 : len(events)-1] {
		if e.Type != "progress" || e.Progress == nil {
			t.Fatalf("mid-stream event %+v", e)
		}
		if e.Progress.Slots <= lastSlot {
			t.Fatalf("progress slots went %d -> %d", lastSlot, e.Progress.Slots)
		}
		lastSlot = e.Progress.Slots
		progress++
	}
	if progress < 2 {
		t.Fatalf("only %d progress events", progress)
	}

	done := getJob(t, ts, first.ID)
	if done.State != StateDone || done.Error != "" || len(done.Result) == 0 {
		t.Fatalf("finished job: %+v", done)
	}
	var res sim.Result
	if err := json.Unmarshal(done.Result, &res); err != nil {
		t.Fatal(err)
	}
	if res.Slots != 4_000 || res.Injected == 0 || res.ProtocolErrors != 0 {
		t.Fatalf("implausible result: %+v", res)
	}

	// (b) Bit-identical cache hit.
	status, second := submitScenario(t, ts, sc)
	if status != http.StatusOK {
		t.Fatalf("cached submission status %d", status)
	}
	if !second.Cached || second.State != StateDone {
		t.Fatalf("second submission not served from cache: %+v", second)
	}
	if second.ID == first.ID {
		t.Fatal("cache hit reused the job ID")
	}
	cached := getJob(t, ts, second.ID)
	if !bytes.Equal(cached.Result, done.Result) {
		t.Fatalf("cached result not bit-identical:\n%s\nvs\n%s", cached.Result, done.Result)
	}
	cachedEvents := streamEvents(t, ts, second.ID)
	if len(cachedEvents) != 1 || cachedEvents[0].Type != "done" || !cachedEvents[0].Cached {
		t.Fatalf("cached job events: %+v", cachedEvents)
	}

	// A different seed is a different experiment: no false sharing.
	status, third := submitScenario(t, ts, lineScenario("e2e", 4_000, 2))
	if status != http.StatusAccepted || third.Cached {
		t.Fatalf("distinct spec hit the cache: status %d %+v", status, third)
	}
	if third.Hash == first.Hash {
		t.Fatal("different seeds share a hash")
	}
	waitForState(t, ts, third.ID, StateDone)
	fresh := getJob(t, ts, third.ID)
	var freshRes sim.Result
	if err := json.Unmarshal(fresh.Result, &freshRes); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(freshRes, res) {
		t.Fatal("different seeds produced identical results")
	}
}

// TestServerCancel is the cancellation half of the acceptance
// criterion: DELETE ends a running job promptly.
func TestServerCancel(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 8})
	// Long enough to never finish on its own (hundreds of millions of
	// slots), so only cancellation can end it.
	status, job := submitScenario(t, ts, lineScenario("long", 500_000_000, 1))
	if status != http.StatusAccepted {
		t.Fatalf("submission status %d", status)
	}
	waitForState(t, ts, job.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+job.ID, nil)
	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE status %s", resp.Status)
	}
	waitForState(t, ts, job.ID, StateCancelled)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	events := streamEvents(t, ts, job.ID)
	if last := events[len(events)-1]; last.Type != "cancelled" {
		t.Fatalf("stream ends with %+v", last)
	}

	// Cancelling a queued job works too: saturate the single worker,
	// then kill the waiting job before it starts.
	_, runner := submitScenario(t, ts, lineScenario("long", 500_000_000, 2))
	waitForState(t, ts, runner.ID, StateRunning)
	_, queued := submitScenario(t, ts, lineScenario("long", 500_000_000, 3))
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, ts, queued.ID, StateCancelled)
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+runner.ID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitForState(t, ts, runner.ID, StateCancelled)
}

func TestServerSubmitByNameAndScenarioList(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, err := http.Get(ts.URL + "/v1/scenarios")
	if err != nil {
		t.Fatal(err)
	}
	var infos []ScenarioInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(infos) < 6 {
		t.Fatalf("only %d registered scenarios listed", len(infos))
	}
	for _, info := range infos {
		if info.Name == "" || len(info.Hash) != 64 {
			t.Fatalf("malformed scenario info %+v", info)
		}
	}

	// Registry submission with a slots override (a distinct cacheable
	// experiment from the full-length scenario).
	status, job := submitJSON(t, ts, `{"name":"line-stochastic","slots":2000}`)
	if status != http.StatusAccepted {
		t.Fatalf("submission status %d", status)
	}
	waitForState(t, ts, job.ID, StateDone)
	full, _ := dynsched.ScenarioByName("line-stochastic")
	if job.Hash == full.Hash() {
		t.Fatal("slots override did not change the content address")
	}

	status, again := submitJSON(t, ts, `{"name":"line-stochastic","slots":2000}`)
	if status != http.StatusOK || !again.Cached {
		t.Fatalf("repeat name submission not cached: status %d %+v", status, again)
	}

	// noCache forces a fresh run of a cached spec.
	status, forced := submitJSON(t, ts, `{"name":"line-stochastic","slots":2000,"noCache":true}`)
	if status != http.StatusAccepted || forced.Cached {
		t.Fatalf("noCache submission served from cache: status %d %+v", status, forced)
	}
	waitForState(t, ts, forced.ID, StateDone)
}

func TestServerSubmissionErrors(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"malformed", `{"name":`, http.StatusBadRequest},
		{"unknown field", `{"nmae":"line-stochastic"}`, http.StatusBadRequest},
		{"unknown name", `{"name":"no-such-scenario"}`, http.StatusNotFound},
		{"both", `{"name":"line-stochastic","scenario":{"name":"x","sim":{"slots":10}}}`, http.StatusBadRequest},
		{"invalid spec", `{"scenario":{"name":"x","sim":{"slots":-5}}}`, http.StatusBadRequest},
		{"uncompilable spec", `{"scenario":{"name":"x","model":{"kind":"tachyon"},"sim":{"slots":10}}}`, http.StatusBadRequest},
		{"sweep", `{"scenario":{"name":"x","sim":{"slots":10},"sweep":{"axis":"lambda","values":[0.1]}}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, _ := submitJSON(t, ts, c.body); status != c.want {
			t.Errorf("%s: status %d, want %d", c.name, status, c.want)
		}
	}
	// Unknown job endpoints 404.
	resp, err := http.Get(ts.URL + "/v1/jobs/job-999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status %s", resp.Status)
	}
}

func TestServerQueueFull(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 1})
	_, running := submitScenario(t, ts, lineScenario("long", 500_000_000, 1))
	waitForState(t, ts, running.ID, StateRunning)
	_, queued := submitScenario(t, ts, lineScenario("long", 500_000_000, 2))

	status, _ := submitScenario(t, ts, lineScenario("long", 500_000_000, 3))
	if status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submission status %d, want 503", status)
	}

	for _, id := range []string{queued.ID, running.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitForState(t, ts, id, StateCancelled)
	}
}

func TestCacheDiskSpill(t *testing.T) {
	// A not-yet-existing nested path: the cache must create it rather
	// than silently dropping every spill write.
	dir := filepath.Join(t.TempDir(), "nested", "cache")
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8, CacheEntries: 1, CacheDir: dir})

	a := lineScenario("spill-a", 2_000, 1)
	b := lineScenario("spill-b", 2_000, 2)
	_, jobA := submitScenario(t, ts, a)
	waitForState(t, ts, jobA.ID, StateDone)
	if _, err := os.Stat(filepath.Join(dir, a.Hash()+".json.gz")); err != nil {
		t.Fatalf("result not spilled to disk: %v", err)
	}

	// B evicts A from the single-entry memory tier…
	_, jobB := submitScenario(t, ts, b)
	waitForState(t, ts, jobB.ID, StateDone)

	// …but A still hits, served from the spill directory.
	status, again := submitScenario(t, ts, a)
	if status != http.StatusOK || !again.Cached {
		t.Fatalf("evicted entry not served from disk: status %d %+v", status, again)
	}
	want := getJob(t, ts, jobA.ID).Result
	got := getJob(t, ts, again.ID).Result
	if !bytes.Equal(got, want) {
		t.Fatal("disk-served result not bit-identical")
	}
}

// TestCacheRestart checks that a fresh server over the same spill
// directory — a daemon restart — serves previous results.
func TestCacheRestart(t *testing.T) {
	dir := t.TempDir()
	sc := lineScenario("restart", 2_000, 5)

	_, ts1 := startServer(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir})
	_, job := submitScenario(t, ts1, sc)
	waitForState(t, ts1, job.ID, StateDone)

	_, ts2 := startServer(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir})
	status, view := submitScenario(t, ts2, sc)
	if status != http.StatusOK || !view.Cached {
		t.Fatalf("restarted server missed the disk cache: status %d %+v", status, view)
	}
}

func TestServerHealthAndJobList(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The document round-trips through the typed wire struct...
	var health api.Health
	if err := json.Unmarshal(raw, &health); err != nil {
		t.Fatal(err)
	}
	if !health.OK || health.Workers != 1 || health.QueueCapacity != 4 || health.Draining {
		t.Fatalf("health %+v", health)
	}
	// ...and still serves every pre-typed field name, so clients built
	// against the old map document keep decoding.
	var fields map[string]any
	if err := json.Unmarshal(raw, &fields); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"ok", "queued", "queueCapacity", "jobs", "cached", "cachedDisk", "workers", "workersBusy"} {
		if _, ok := fields[key]; !ok {
			t.Errorf("health document lost the %q field: %s", key, raw)
		}
	}

	_, job := submitScenario(t, ts, lineScenario("listed", 2_000, 1))
	waitForState(t, ts, job.ID, StateDone)
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []JobView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 || views[0].ID != job.ID || len(views[0].Result) != 0 {
		t.Fatalf("job list %+v", views)
	}
}

// fetchAll is a tiny helper for the race test below.
func deleteJob(ts *httptest.Server, id string) error {
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("DELETE %s: %s", id, resp.Status)
	}
	return nil
}

// TestServerProgressEventCap pins the event-log bound: however small
// the configured progress period, one job retains at most
// maxProgressEvents progress events, so huge submissions cannot grow
// the daemon's memory (or event replays) without bound.
func TestServerProgressEventCap(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4, ProgressEvery: 1})
	// Slot counts that are not multiples of the cap would overshoot it
	// under floor division (600 slots would retain 600 events); the
	// ceil-divided period keeps every job within the bound.
	for _, slots := range []int64{600, 102_700} {
		_, job := submitScenario(t, ts, lineScenario("capped", slots, 1))
		waitForState(t, ts, job.ID, StateDone)
		progress := 0
		for _, e := range streamEvents(t, ts, job.ID) {
			if e.Type == "progress" {
				progress++
			}
		}
		if progress == 0 || progress > maxProgressEvents {
			t.Fatalf("%d slots: %d progress events retained, want (0, %d]", slots, progress, maxProgressEvents)
		}
	}
	// A small job keeps the configured fine-grained cadence.
	_, small := submitScenario(t, ts, lineScenario("fine", 300, 1))
	waitForState(t, ts, small.ID, StateDone)
	fine := 0
	for _, e := range streamEvents(t, ts, small.ID) {
		if e.Type == "progress" {
			fine++
		}
	}
	if fine != 300 { // one per slot; only the OnEnd snapshot becomes "done"
		t.Fatalf("fine-grained job retained %d progress events, want 300", fine)
	}
}
