package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"dynsched"
	"dynsched/api"
)

// maxBodyBytes bounds submission bodies; scenario specs are small.
const maxBodyBytes = 1 << 20

// Handler returns the service's HTTP surface. It is safe to serve
// before Start, but jobs only execute once the worker pool runs.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJobs)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/v1/fleet/lease", s.handleFleetLease)
	mux.HandleFunc("/v1/fleet/report", s.handleFleetReport)
	mux.HandleFunc("/v1/fleet/heartbeat", s.handleFleetHeartbeat)
	mux.HandleFunc("/v1/units/", s.handleUnitGet)
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("/metrics", s.metrics.reg.Handler())
	return mux
}

func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.jobList())
	default:
		writeError(w, http.StatusMethodNotAllowed, "use POST to submit or GET to list")
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, http.StatusRequestEntityTooLarge, "submission larger than %d bytes", maxBodyBytes)
		return
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	var req SubmitRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing submission: %v", err)
		return
	}

	var sc dynsched.Scenario
	switch {
	case req.Name != "" && req.Scenario != nil:
		writeError(w, http.StatusBadRequest, "name and scenario are mutually exclusive")
		return
	case req.Name != "":
		reg, ok := dynsched.ScenarioByName(req.Name)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown scenario %q (see GET /v1/scenarios)", req.Name)
			return
		}
		sc = reg
	case req.Scenario != nil:
		sc = *req.Scenario
	default:
		writeError(w, http.StatusBadRequest, "submission needs a name or an inline scenario")
		return
	}
	if req.Slots != nil {
		sc.Sim.Slots = *req.Slots
	}
	if req.Seed != nil {
		sc.Sim.Seed = *req.Seed
	}
	// Inject the daemon's default intra-slot resolution worker count
	// into scenarios that leave theirs unset. Hash excludes the knob, so
	// cached results stay shared between serial and parallel daemons.
	if s.cfg.ResolveParallelism > 0 && sc.Sim.ResolveParallelism == 0 {
		sc.Sim.ResolveParallelism = s.cfg.ResolveParallelism
	}
	reps := req.Reps
	if reps == 0 {
		reps = 1
	}
	// Decompose into the execution plan: one unit for a plain run, one
	// per replication/sweep value/grid point otherwise. Plan validates
	// the spec and also rejects nonsense shapes (reps < 1, replicated
	// sweeps, oversized grids) with a synchronous diagnostic.
	p, err := sc.Plan(reps)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	// Compile the first unit eagerly so unbuildable specs fail the
	// submission, not the worker: the submitter gets the diagnostic
	// synchronously. (Units differ only in resolved parameter values,
	// so the first stands in for all.) The compilation rides along to
	// the worker instead of being redone — for single runs as the job's
	// components, for plans as unit 0's.
	compiled, err := p.Units[0].Scenario.Compile()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	var j *Job
	var cached bool
	if p.Kind == dynsched.PlanRun {
		j, cached, err = s.submit(sc, compiled, req.NoCache)
	} else {
		j, cached, err = s.submitPlan(p, compiled, req.NoCache)
	}
	if errors.Is(err, errQueueFull) {
		writeError(w, http.StatusServiceUnavailable, "job queue is full (%d queued); retry later", s.queueLen())
		return
	}
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, j.View(false))
}

// handleJob routes /v1/jobs/{id} and /v1/jobs/{id}/events.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, j.View(true))
	case sub == "" && r.Method == http.MethodDelete:
		if _, cancelledNow := j.requestCancel(); cancelledNow {
			// The queued job went terminal right here; journal it (a
			// running job's outcome is journaled by its worker).
			s.journalFinish(j, StateCancelled)
			s.markFinished(StateCancelled)
		}
		writeJSON(w, http.StatusOK, j.View(false))
	case sub == "events" && r.Method == http.MethodGet:
		s.streamEvents(w, r, j)
	default:
		writeError(w, http.StatusNotFound, "unknown job endpoint %q", r.URL.Path)
	}
}

// streamEvents writes the job's event log as NDJSON — replaying what
// already happened, then following live — and returns after the
// terminal event or when the client disconnects.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// Wake blocked event waits when the client goes away: Cond has no
	// context support, so a disconnect broadcasts under the job lock.
	stop := context.AfterFunc(r.Context(), func() {
		j.mu.Lock()
		j.cond.Broadcast()
		j.mu.Unlock()
	})
	defer stop()

	enc := json.NewEncoder(w)
	for i := 0; ; i++ {
		e, ok := j.event(r.Context(), i)
		if !ok {
			return // client gone
		}
		if err := enc.Encode(e); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
		switch e.Type {
		case "done", "failed", "cancelled":
			return
		}
	}
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	all := dynsched.Scenarios()
	out := make([]ScenarioInfo, 0, len(all))
	for _, sc := range all {
		out = append(out, ScenarioInfo{Name: sc.Name, Description: sc.Description, Hash: sc.Hash()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.health())
}

// health assembles the typed /healthz document.
func (s *Server) health() api.Health {
	s.mu.Lock()
	busy := len(s.running)
	draining := s.draining
	jobs := len(s.jobs)
	s.mu.Unlock()
	doc := api.Health{
		OK:            true,
		Queued:        s.queueLen(),
		QueueCapacity: s.cfg.QueueDepth,
		Jobs:          jobs,
		Cached:        s.cache.Len(),
		CachedDisk:    s.cache.DiskLen(),
		Workers:       s.cfg.Workers,
		WorkersBusy:   busy,
		Draining:      draining,
	}
	if fh := s.fleet.snapshot(); fh.Runners > 0 || fh.LeasedTotal > 0 || fh.PendingUnits > 0 {
		// The fleet section appears once a runner has ever joined (or
		// units are parked awaiting one); a purely local server keeps
		// the pre-fleet document shape.
		doc.Fleet = fh
	}
	if s.journal != nil {
		st := s.journal.Stats()
		doc.Journal = &api.JournalHealth{
			Segments:        st.Segments,
			Records:         st.Records,
			Bytes:           st.Bytes,
			ReplayedRecords: s.replayStats.Records,
			ReplayTorn:      s.replayStats.Torn,
			RecoveredJobs:   s.recovered,
			CleanShutdown:   s.cleanShutdown,
		}
	}
	return doc
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}
