package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"dynsched"
)

// sweepScenario is lineScenario with a lambda sweep attached.
func sweepScenario(name string, slots int64, values ...float64) dynsched.Scenario {
	sc := lineScenario(name, slots, 1)
	sc.Sweep = dynsched.SweepSpec{Axis: "lambda", Values: values}
	return sc
}

// TestServerSweepJobPerUnitCache is the acceptance test for plan jobs:
// a sweep submitted twice performs zero simulations the second time,
// and a resubmission with one extra value computes exactly one unit.
func TestServerSweepJobPerUnitCache(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})
	sc := sweepScenario("sweep-e2e", 2_000, 0.1, 0.2, 0.3, 0.4)

	// First submission: 4 fresh units.
	status, first := submitScenario(t, ts, sc)
	if status != http.StatusAccepted {
		t.Fatalf("first submission status %d", status)
	}
	if first.UnitsTotal != 4 || first.Cached {
		t.Fatalf("first submission view: %+v", first)
	}
	done := waitForState(t, ts, first.ID, StateDone)
	if done.UnitsDone != 4 || done.UnitsCached != 0 {
		t.Fatalf("first run counters: %+v", done)
	}

	// The event stream is ordered: queued, started, 4 unit events with
	// unitsDone increasing by exactly one, then done.
	events := streamEvents(t, ts, first.ID)
	if events[0].Type != "queued" || events[1].Type != "started" {
		t.Fatalf("stream starts %s, %s", events[0].Type, events[1].Type)
	}
	units := 0
	for _, e := range events[2 : len(events)-1] {
		if e.Type != "unit" || e.Unit == nil {
			t.Fatalf("mid-stream event %+v", e)
		}
		units++
		if e.Unit.UnitsDone != units || e.Unit.UnitsTotal != 4 || e.Unit.Cached {
			t.Fatalf("unit event %d: %+v", units, e.Unit)
		}
		if len(e.Unit.Hash) != 64 {
			t.Fatalf("unit event carries no content address: %+v", e.Unit)
		}
	}
	if units != 4 || events[len(events)-1].Type != "done" {
		t.Fatalf("stream shape: %d unit events, final %s", units, events[len(events)-1].Type)
	}

	// The result document is a typed PlanResult with per-unit hashes
	// and one point per value, in order.
	var pr dynsched.PlanResult
	if err := json.Unmarshal(done.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Kind != dynsched.PlanSweep || len(pr.Points) != 4 || len(pr.Units) != 4 {
		t.Fatalf("plan document: kind=%s points=%d units=%d", pr.Kind, len(pr.Points), len(pr.Units))
	}
	for i, pt := range pr.Points {
		if pt.Axis != "lambda" || pt.Value != sc.Sweep.Values[i] || pt.Result == nil {
			t.Fatalf("point %d: %+v", i, pt)
		}
	}

	// Second submission of the identical spec: plan-level cache hit,
	// bit-identical document, all units reported cached.
	status, second := submitScenario(t, ts, sc)
	if status != http.StatusOK || !second.Cached {
		t.Fatalf("second submission not cached: status %d %+v", status, second)
	}
	if second.UnitsCached != 4 || second.UnitsDone != 4 {
		t.Fatalf("cached submission counters: %+v", second)
	}
	if got := getJob(t, ts, second.ID); !bytes.Equal(got.Result, done.Result) {
		t.Fatal("cached plan document not bit-identical")
	}

	// The same units submitted through the grid form (a single-entry
	// axes list): the plan hash differs — no plan-level hit — but every
	// unit is served from the per-unit cache: zero simulations.
	gridForm := lineScenario("sweep-e2e", 2_000, 1)
	gridForm.Sweep = dynsched.SweepSpec{Axes: []dynsched.SweepAxis{{Axis: "lambda", Values: sc.Sweep.Values}}}
	status, third := submitScenario(t, ts, gridForm)
	if status != http.StatusAccepted || third.Cached {
		t.Fatalf("grid-form submission: status %d %+v", status, third)
	}
	if third.Hash == first.Hash {
		t.Fatal("different sweep spellings share a plan hash")
	}
	done3 := waitForState(t, ts, third.ID, StateDone)
	if done3.UnitsDone != 4 || done3.UnitsCached != 4 {
		t.Fatalf("per-unit cache pass ran simulations: %+v", done3)
	}
	for _, e := range streamEvents(t, ts, third.ID) {
		if e.Type == "unit" && !e.Unit.Cached {
			t.Fatalf("unit %d simulated on a warm cache", e.Unit.Index)
		}
	}

	// One extra value: exactly one simulation.
	grown := sweepScenario("sweep-e2e", 2_000, 0.1, 0.2, 0.3, 0.4, 0.5)
	_, fourth := submitScenario(t, ts, grown)
	done4 := waitForState(t, ts, fourth.ID, StateDone)
	if done4.UnitsTotal != 5 || done4.UnitsDone != 5 || done4.UnitsCached != 4 {
		t.Fatalf("incremental sweep counters: %+v", done4)
	}
}

// TestServerReplicateJob: reps > 1 submits a replicate plan whose
// document aggregates the derived-seed replications, and a replication
// unit shares its content address with a direct run at that seed.
func TestServerReplicateJob(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})

	sc := lineScenario("rep-e2e", 2_000, 7)
	body, err := json.Marshal(SubmitRequest{Scenario: &sc, Reps: 3})
	if err != nil {
		t.Fatal(err)
	}
	status, job := submitJSON(t, ts, string(body))
	if status != http.StatusAccepted || job.UnitsTotal != 3 {
		t.Fatalf("replicate submission: status %d %+v", status, job)
	}
	done := waitForState(t, ts, job.ID, StateDone)
	var pr dynsched.PlanResult
	if err := json.Unmarshal(done.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Kind != dynsched.PlanReplicate || pr.Replicate == nil || len(pr.Replicate.Runs) != 3 {
		t.Fatalf("replicate document: %+v", pr)
	}

	// A direct run at replication 0's derived seed is the same cacheable
	// experiment: its submission is served from the per-unit entry the
	// replicate job stored.
	unit := lineScenario("rep-e2e", 2_000, 7)
	unit.Sim.Seed = dynsched.SubSeed(7, 0)
	status, direct := submitScenario(t, ts, unit)
	if status != http.StatusOK || !direct.Cached {
		t.Fatalf("replication unit not shared with a direct run: status %d %+v", status, direct)
	}

	// The identical replicate resubmission is a plan-level hit.
	status, again := submitJSON(t, ts, string(body))
	if status != http.StatusOK || !again.Cached || again.UnitsCached != 3 {
		t.Fatalf("replicate resubmission: status %d %+v", status, again)
	}
}

// TestServerGridJobAndCancel runs a 2-axis grid end to end, then
// cancels a long-running grid mid-flight and requires prompt
// termination (the per-unit contexts must propagate the DELETE).
func TestServerGridJobAndCancel(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})

	sc := lineScenario("grid-e2e", 2_000, 1)
	sc.Sweep = dynsched.SweepSpec{Axes: []dynsched.SweepAxis{
		{Axis: "lambda", Values: []float64{0.2, 0.4}},
		{Axis: "eps", Values: []float64{0.25, 0.5}},
	}}
	status, job := submitScenario(t, ts, sc)
	if status != http.StatusAccepted || job.UnitsTotal != 4 {
		t.Fatalf("grid submission: status %d %+v", status, job)
	}
	done := waitForState(t, ts, job.ID, StateDone)
	var pr dynsched.PlanResult
	if err := json.Unmarshal(done.Result, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Kind != dynsched.PlanGrid || len(pr.Points) != 4 {
		t.Fatalf("grid document: %+v", pr)
	}
	for i, pt := range pr.Points {
		if len(pt.Coords) != 2 || pt.Result == nil {
			t.Fatalf("grid point %d: %+v", i, pt)
		}
	}

	// Cancellation: a grid of effectively-infinite units stops promptly.
	long := lineScenario("grid-long", 500_000_000, 1)
	long.Sweep = dynsched.SweepSpec{Axes: []dynsched.SweepAxis{
		{Axis: "lambda", Values: []float64{0.2, 0.4}},
		{Axis: "eps", Values: []float64{0.25, 0.5}},
	}}
	_, running := submitScenario(t, ts, long)
	waitForState(t, ts, running.ID, StateRunning)
	start := time.Now()
	if err := deleteJob(ts, running.ID); err != nil {
		t.Fatal(err)
	}
	waitForState(t, ts, running.ID, StateCancelled)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("grid cancellation took %v", elapsed)
	}
	events := streamEvents(t, ts, running.ID)
	if last := events[len(events)-1]; last.Type != "cancelled" {
		t.Fatalf("stream ends with %+v", last)
	}
}

// TestServerUnitEventCap pins the plan-side event-log bound: a plan
// with more units than maxUnitEvents retains a thinned unit stream —
// strictly increasing counters ending at the full total — instead of
// one event per unit.
func TestServerUnitEventCap(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})
	values := make([]float64, 2*maxUnitEvents+37)
	for i := range values {
		values[i] = 0.1 + 0.0001*float64(i)
	}
	sc := sweepScenario("unit-cap", 50, values...)
	_, job := submitScenario(t, ts, sc)
	done := waitForState(t, ts, job.ID, StateDone)
	if done.UnitsDone != len(values) {
		t.Fatalf("completed %d of %d units", done.UnitsDone, len(values))
	}
	unitEvents, lastDone := 0, 0
	for _, e := range streamEvents(t, ts, job.ID) {
		if e.Type != "unit" {
			continue
		}
		unitEvents++
		if e.Unit.UnitsDone <= lastDone {
			t.Fatalf("unit counters went %d -> %d", lastDone, e.Unit.UnitsDone)
		}
		lastDone = e.Unit.UnitsDone
	}
	if unitEvents == 0 || unitEvents > maxUnitEvents {
		t.Fatalf("%d unit events retained, want (0, %d]", unitEvents, maxUnitEvents)
	}
	if lastDone != len(values) {
		t.Fatalf("final unit event reports %d done, want %d", lastDone, len(values))
	}
	// The view accounts for every elided completion, so a client can
	// report "N events elided" instead of silently showing a sparse
	// stream.
	if want := len(values) - unitEvents; done.EventsDropped != want {
		t.Fatalf("eventsDropped %d, want %d (%d units, %d stream entries)",
			done.EventsDropped, want, len(values), unitEvents)
	}
}

// TestServerSeedZeroOverride pins the satellite fix: the wire fields
// are pointers, so an explicit seed 0 override is expressible and
// distinct from omitting the field.
func TestServerSeedZeroOverride(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	status, plain := submitJSON(t, ts, `{"name":"line-stochastic","slots":2000}`)
	if status != http.StatusAccepted {
		t.Fatalf("plain submission status %d", status)
	}
	status, zero := submitJSON(t, ts, `{"name":"line-stochastic","slots":2000,"seed":0}`)
	if status != http.StatusAccepted {
		t.Fatalf("seed-0 submission status %d", status)
	}
	if zero.Hash == plain.Hash {
		t.Fatal("explicit seed 0 was treated as absent (same content address)")
	}
	reg, _ := dynsched.ScenarioByName("line-stochastic")
	reg.Sim.Slots = 2000
	reg.Sim.Seed = 0
	if zero.Hash != reg.Hash() {
		t.Fatal("seed-0 submission does not address the seed-0 experiment")
	}
	for _, id := range []string{plain.ID, zero.ID} {
		waitForState(t, ts, id, StateDone)
	}
}

// TestServerPlanSubmissionErrors: plan-shaped nonsense fails the POST
// synchronously.
func TestServerPlanSubmissionErrors(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4})
	cases := []struct {
		name string
		body string
		want int
	}{
		{"negative reps", `{"name":"line-stochastic","reps":-2}`, http.StatusBadRequest},
		{"replicated sweep", `{"reps":3,"scenario":{"name":"x","sim":{"slots":10},"sweep":{"axis":"lambda","values":[0.1]}}}`, http.StatusBadRequest},
		{"duplicate grid axes", `{"scenario":{"name":"x","sim":{"slots":10},"sweep":{"axes":[{"axis":"lambda","values":[0.1]},{"axis":"lambda","values":[0.2]}]}}}`, http.StatusBadRequest},
		{"empty axis values", `{"scenario":{"name":"x","sim":{"slots":10},"sweep":{"axes":[{"axis":"lambda","values":[]}]}}}`, http.StatusBadRequest},
		{"axis and axes", `{"scenario":{"name":"x","sim":{"slots":10},"sweep":{"axis":"eps","values":[0.1],"axes":[{"axis":"lambda","values":[0.1]}]}}}`, http.StatusBadRequest},
		{"uncompilable sweep", `{"scenario":{"name":"x","model":{"kind":"tachyon"},"sim":{"slots":10},"sweep":{"axis":"lambda","values":[0.1]}}}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if status, _ := submitJSON(t, ts, c.body); status != c.want {
			t.Errorf("%s: status %d, want %d", c.name, status, c.want)
		}
	}
}

// TestServerHealthDiskGauge: /healthz reports the spill-directory
// occupancy so operators can watch the -cache-disk-max cap.
func TestServerHealthDiskGauge(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, CacheDiskMax: 8})
	_, job := submitScenario(t, ts, lineScenario("gauge", 2_000, 1))
	waitForState(t, ts, job.ID, StateDone)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["cachedDisk"] != float64(1) {
		t.Fatalf("healthz cachedDisk = %v, want 1", health["cachedDisk"])
	}
}
