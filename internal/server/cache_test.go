package server

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestCacheFIFOEviction pins the memory tier's eviction order: under
// max pressure the oldest inserted entries leave first, and re-putting
// an existing hash does not reorder it.
func TestCacheFIFOEviction(t *testing.T) {
	c := NewCache(3, "", 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("h%d", i), []byte{byte(i)})
	}
	if c.Len() != 3 {
		t.Fatalf("memory tier holds %d entries, want 3", c.Len())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.Get(fmt.Sprintf("h%d", i)); ok {
			t.Errorf("h%d survived FIFO eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		data, ok := c.Get(fmt.Sprintf("h%d", i))
		if !ok || data[0] != byte(i) {
			t.Errorf("h%d missing after eviction round", i)
		}
	}
	// A duplicate put must not push a fresh entry out of order.
	c.Put("h2", []byte{99})
	c.Put("h5", []byte{5})
	if _, ok := c.Get("h2"); ok {
		// h2 was the oldest; inserting h5 evicts it regardless of the
		// duplicate put (FIFO is insertion-ordered, not recency-ordered).
		t.Error("duplicate put refreshed h2's FIFO position")
	}
	if data, ok := c.Get("h3"); !ok || data[0] != 3 {
		t.Error("h3 lost")
	}
}

// TestCacheDiskReserveAfterMemoryEviction pins the two-tier contract:
// an entry evicted from memory is re-served from the spill directory,
// and the disk hit is promoted back into the memory tier.
func TestCacheDiskReserveAfterMemoryEviction(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(1, dir, 0)
	c.Put("a", []byte("alpha"))
	c.Put("b", []byte("beta")) // evicts a from memory; both on disk

	if c.Len() != 1 {
		t.Fatalf("memory tier holds %d entries, want 1", c.Len())
	}
	data, ok := c.Get("a")
	if !ok || string(data) != "alpha" {
		t.Fatalf("evicted entry not re-served from disk: %q %v", data, ok)
	}
	// Promotion-on-Get: the disk hit is back in memory (and b was
	// FIFO-evicted to make room), so deleting the file does not lose it.
	if err := os.Remove(filepath.Join(dir, "a.json.gz")); err != nil {
		t.Fatal(err)
	}
	data, ok = c.Get("a")
	if !ok || string(data) != "alpha" {
		t.Fatal("disk hit was not promoted into the memory tier")
	}
	// b fell out of memory during the promotion but survives on disk.
	if data, ok := c.Get("b"); !ok || string(data) != "beta" {
		t.Fatal("b lost from both tiers")
	}
}

// TestCacheDiskCap pins the -cache-disk-max satellite: the spill
// directory is bounded, oldest-mtime entries leave first, and the
// DiskLen gauge tracks it.
func TestCacheDiskCap(t *testing.T) {
	dir := t.TempDir()
	c := NewCache(16, dir, 3)
	for i := 0; i < 6; i++ {
		hash := fmt.Sprintf("d%d", i)
		c.Put(hash, []byte{byte(i)})
		// Distinct mtimes: the filesystem clock may be coarse.
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, hash+".json.gz"), past, past); err != nil {
			t.Fatal(err)
		}
	}
	// One more put triggers eviction down to the cap.
	c.Put("d6", []byte{6})
	if got := c.DiskLen(); got != 3 {
		t.Fatalf("disk tier holds %d entries, want 3", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json.gz"))
	if err != nil || len(files) != 3 {
		t.Fatalf("spill directory holds %d files: %v", len(files), err)
	}
	for _, old := range []string{"d0", "d1", "d2", "d3"} {
		if _, err := os.Stat(filepath.Join(dir, old+".json.gz")); err == nil {
			t.Errorf("oldest entry %s survived the disk cap", old)
		}
	}
	for _, kept := range []string{"d4", "d5", "d6"} {
		if _, err := os.Stat(filepath.Join(dir, kept+".json.gz")); err != nil {
			t.Errorf("recent entry %s evicted: %v", kept, err)
		}
	}
}

// TestCacheDiskCapAtStartup: a restart over an oversized spill
// directory counts the existing entries and trims to the cap.
func TestCacheDiskCapAtStartup(t *testing.T) {
	dir := t.TempDir()
	warm := NewCache(16, dir, 0)
	for i := 0; i < 5; i++ {
		hash := fmt.Sprintf("s%d", i)
		warm.Put(hash, []byte{byte(i)})
		past := time.Now().Add(time.Duration(i-10) * time.Second)
		if err := os.Chtimes(filepath.Join(dir, hash+".json.gz"), past, past); err != nil {
			t.Fatal(err)
		}
	}
	c := NewCache(16, dir, 2)
	if got := c.DiskLen(); got != 2 {
		t.Fatalf("restarted disk tier holds %d entries, want 2", got)
	}
	if _, ok := c.Get("s4"); !ok {
		t.Error("newest entry evicted at startup")
	}
	if _, err := os.Stat(filepath.Join(dir, "s0.json.gz")); err == nil {
		t.Error("oldest entry survived the startup trim")
	}
}

// TestCacheGzipSpillAndLegacyRead pins the compressed spill format: new
// writes land as .json.gz with the compressed size smaller than the raw
// payload, a legacy uncompressed .json file from an older daemon is
// still served transparently, and DiskBytes accounts both.
func TestCacheGzipSpillAndLegacyRead(t *testing.T) {
	dir := t.TempDir()
	legacy := []byte(`{"legacy":true}`)
	if err := os.WriteFile(filepath.Join(dir, "old.json"), legacy, 0o644); err != nil {
		t.Fatal(err)
	}

	c := NewCache(1, dir, 0)
	if got := c.DiskLen(); got != 1 {
		t.Fatalf("startup scan found %d entries, want the legacy one", got)
	}
	if raw, comp := c.DiskBytes(); raw != int64(len(legacy)) || comp != int64(len(legacy)) {
		t.Fatalf("legacy accounting raw=%d comp=%d, want both %d", raw, comp, len(legacy))
	}
	if data, ok := c.Get("old"); !ok || string(data) != string(legacy) {
		t.Fatalf("legacy .json entry not served: %q %v", data, ok)
	}

	// A compressible payload spills as gzip and shrinks on disk.
	payload := bytes.Repeat([]byte(`{"k":"vvvvvvvv"}`), 256)
	c.Put("new", payload)
	c.Put("spacer", []byte("x")) // push "new" out of the memory tier
	if _, err := os.Stat(filepath.Join(dir, "new.json.gz")); err != nil {
		t.Fatalf("new entry not spilled as .json.gz: %v", err)
	}
	raw, comp := c.DiskBytes()
	wantRaw := int64(len(legacy) + len(payload) + 1)
	if raw != wantRaw {
		t.Fatalf("raw accounting %d, want %d", raw, wantRaw)
	}
	if comp >= raw {
		t.Fatalf("compressed accounting %d not below raw %d for a compressible payload", comp, raw)
	}
	if data, ok := c.Get("new"); !ok || string(data) != string(payload) {
		t.Fatal("gzip spill round-trip lost the payload")
	}

	// A restart re-scans the mixed-format directory: both formats are
	// found, raw sizes recovered from the gzip ISIZE trailer, and both
	// entries still readable.
	c2 := NewCache(1, dir, 0)
	if got := c2.DiskLen(); got != 3 {
		t.Fatalf("restart scan found %d entries, want 3", got)
	}
	raw2, comp2 := c2.DiskBytes()
	if raw2 != raw || comp2 != comp {
		t.Fatalf("restart accounting raw=%d comp=%d, want %d/%d", raw2, comp2, raw, comp)
	}
	if data, ok := c2.Get("new"); !ok || string(data) != string(payload) {
		t.Fatal("gzip entry unreadable after restart")
	}
	if data, ok := c2.Get("old"); !ok || string(data) != string(legacy) {
		t.Fatal("legacy entry unreadable after restart")
	}
}
