package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"dynsched"
)

// scrapeMetrics fetches /metrics and parses the exposition document
// into series name (with labels) -> value.
func scrapeMetrics(t *testing.T, ts *httptest.Server) map[string]float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("metrics content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	series := map[string]float64{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		series[line[:i]] = v
	}
	return series
}

// TestServerMetricsEndpoint is the observability acceptance test: after
// a sweep job and a grid-form respelling (plan-level miss, every unit a
// cache hit), GET /metrics serves a valid exposition document whose
// cache-hit, unit-latency and engine series reflect the work done.
func TestServerMetricsEndpoint(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2, QueueDepth: 8})
	sc := sweepScenario("metrics-e2e", 2_000, 0.1, 0.2, 0.3, 0.4)

	_, first := submitScenario(t, ts, sc)
	waitForState(t, ts, first.ID, StateDone)

	// The grid respelling misses the plan-level cache but serves all 4
	// units from the per-unit cache — the memory-tier hit counter is the
	// witness that no simulation ran.
	gridForm := lineScenario("metrics-e2e", 2_000, 1)
	gridForm.Sweep.Axes = []dynsched.SweepAxis{{Axis: "lambda", Values: sc.Sweep.Values}}
	_, second := submitScenario(t, ts, gridForm)
	done := waitForState(t, ts, second.ID, StateDone)
	if done.UnitsCached != 4 {
		t.Fatalf("grid respelling counters: %+v", done)
	}

	series := scrapeMetrics(t, ts)
	if len(series) < 12 {
		t.Fatalf("metrics endpoint serves %d series, want >= 12", len(series))
	}
	if got := series[`dynsched_cache_hits_total{tier="memory"}`]; got < 4 {
		t.Errorf("memory cache hits %v, want >= 4", got)
	}
	if got := series[`dynsched_plan_units_total{outcome="run"}`]; got != 4 {
		t.Errorf("units run %v, want 4", got)
	}
	if got := series[`dynsched_plan_units_total{outcome="cached"}`]; got != 4 {
		t.Errorf("units cached %v, want 4", got)
	}
	if got := series["dynsched_plan_unit_seconds_count"]; got != 4 {
		t.Errorf("unit latency observations %v, want 4", got)
	}
	// The engine observer rides along on every fresh unit: 4 units of
	// 2000 slots each.
	if got := series["dynsched_sim_slots_total"]; got != 4*2_000 {
		t.Errorf("sim slots %v, want %d", got, 4*2_000)
	}
	// Both submissions are sweeps: a single-entry axes list normalizes
	// to sweep kind, its plan hash differing only through the spelling.
	if got := series[`dynsched_jobs_submitted_total{kind="sweep"}`]; got != 2 {
		t.Errorf("sweep submissions %v, want 2", got)
	}
	if got := series[`dynsched_jobs_finished_total{state="done"}`]; got != 2 {
		t.Errorf("finished jobs %v, want 2", got)
	}
	if got := series[`dynsched_jobs{state="done"}`]; got != 2 {
		t.Errorf("jobs-by-state gauge %v, want 2", got)
	}
	if got := series["dynsched_queue_capacity"]; got != 8 {
		t.Errorf("queue capacity %v, want 8", got)
	}
	if got := series["dynsched_workers"]; got != 2 {
		t.Errorf("workers %v, want 2", got)
	}
	if series["dynsched_sim_slot_seconds_count"] < 1 {
		t.Error("no sampled slot timings recorded")
	}
}

// TestServerMetricsIsolated pins per-server registries: two servers in
// one process never share counters (the package has no global state).
func TestServerMetricsIsolated(t *testing.T) {
	_, ts1 := startServer(t, Config{Workers: 1, QueueDepth: 4})
	_, ts2 := startServer(t, Config{Workers: 1, QueueDepth: 4})

	_, job := submitScenario(t, ts1, lineScenario("iso", 2_000, 1))
	waitForState(t, ts1, job.ID, StateDone)

	if got := scrapeMetrics(t, ts1)["dynsched_sim_slots_total"]; got != 2_000 {
		t.Errorf("first server slots %v, want 2000", got)
	}
	if got := scrapeMetrics(t, ts2)["dynsched_sim_slots_total"]; got != 0 {
		t.Errorf("second server saw the first server's slots: %v", got)
	}
}
