package server

// The coordinator side of the fleet tier: a lease table distributing
// plan units to remote runners.
//
// Units enter through offer — the plan executor's Delegate hook parks
// every fresh unit here — and leave one of three ways: a runner leases
// and reports it (the normal path), an idle local worker claims it
// through the local-execution semaphore (hybrid coordinators), or the
// owning plan is cancelled. Leases carry an expiry renewed by reports
// and heartbeats; the sweeper re-queues units whose lease lapsed,
// excluding the presumed-dead runner from the re-grant so a zombie
// cannot keep re-acquiring work it never finishes. Merge is exactly
// once: a lease ID is valid for one report, a unit's content hash is
// cross-checked, and late reports against expired leases are rejected
// idempotently.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dynsched"
	"dynsched/api"
)

// Fleet unit lifecycle (fleetUnit.state, guarded by leaseManager.mu).
const (
	unitPending   = iota // parked, awaiting a lease or a local claim
	unitLeased           // out with a runner
	unitDone             // a report was merged (or failed the unit)
	unitWithdrawn        // claimed locally or abandoned by cancellation
)

// fleetUnit is one plan unit parked with the lease manager. The
// offering goroutine blocks in offer until done closes (remote
// completion) or it claims the unit back for local execution.
type fleetUnit struct {
	pu      dynsched.PlanUnit
	noCache bool

	// done closes exactly once, when a report is merged; res/err are
	// written before the close and read only after it.
	done chan struct{}
	res  *dynsched.SimResult
	err  error

	// requeued pulses (buffered, non-blocking send) when an expired
	// lease returns the unit to pending, re-arming the offerer's
	// local-claim race.
	requeued chan struct{}

	// Guarded by leaseManager.mu.
	state    int
	leaseID  uint64
	runner   string
	deadline time.Time
	excluded map[string]bool
	grants   int
}

// runnerState is the coordinator's bookkeeping for one runner.
type runnerState struct {
	id        string
	firstSeen time.Time
	lastSeen  time.Time
	leased    int
	unitsDone int64
}

// fleetCounters are the manager's monotonic totals, read into both
// /healthz and /metrics (all guarded by mu).
type fleetCounters struct {
	leasedTotal int64 // lease grants
	reLeased    int64 // grants that re-issued a previously-leased unit
	merged      int64 // reports accepted and merged
	rejected    int64 // reports rejected (stale lease, hash mismatch)
}

// leaseManager is the coordinator's lease table.
type leaseManager struct {
	expiry   time.Duration
	batchMax int

	mu      sync.Mutex
	pending []*fleetUnit
	leased  map[uint64]*fleetUnit
	runners map[string]*runnerState
	nextID  uint64
	counts  fleetCounters
	wake    chan struct{} // closed and replaced whenever pending grows

	m *serverMetrics // nil-safe: only counter hooks are touched
}

// Defaults for the lease protocol.
const (
	defaultLeaseExpiry   = 15 * time.Second
	defaultFleetBatchMax = 64
	// maxFleetInflight bounds how many units one plan parks with the
	// fleet at a time (the plan pool's virtual-worker count beyond the
	// local semaphore).
	maxFleetInflight = 256
	// runnerForgetAfter is how many expiry periods of silence before a
	// runner disappears from the fleet roster. Its leases expire first
	// (deadline <= lastSeen + expiry), so forgetting drops no units.
	runnerForgetAfter = 3
)

func newLeaseManager(expiry time.Duration, batchMax int, m *serverMetrics) *leaseManager {
	if expiry <= 0 {
		expiry = defaultLeaseExpiry
	}
	if batchMax <= 0 {
		batchMax = defaultFleetBatchMax
	}
	return &leaseManager{
		expiry:   expiry,
		batchMax: batchMax,
		leased:   map[uint64]*fleetUnit{},
		runners:  map[string]*runnerState{},
		wake:     make(chan struct{}),
		m:        m,
	}
}

// offer parks the unit for the fleet and blocks until it completes
// remotely (ok=true with the merged result or the remote failure), is
// claimed back for local execution (ok=false — the caller holds one
// token from local and must run the unit itself), or ctx is cancelled
// (ok=true with ctx's error). See plan.Options.Delegate for the token
// protocol.
func (lm *leaseManager) offer(ctx context.Context, fu *fleetUnit, local chan struct{}) (*dynsched.SimResult, bool, error) {
	fu.done = make(chan struct{})
	fu.requeued = make(chan struct{}, 1)
	lm.mu.Lock()
	fu.state = unitPending
	lm.pending = append(lm.pending, fu)
	lm.wakeLocked()
	lm.mu.Unlock()

	for {
		select {
		case <-fu.done:
			return fu.res, true, fu.err
		case <-ctx.Done():
			lm.abandon(fu)
			return nil, true, ctx.Err()
		case <-local:
			if lm.claimLocal(fu) {
				return nil, false, nil
			}
			// The unit went out on a lease between the token becoming
			// free and our claim: hand the token to another unit and
			// wait — done, cancellation, or a requeue (lease expired)
			// that re-arms the local race.
			local <- struct{}{}
			select {
			case <-fu.done:
				return fu.res, true, fu.err
			case <-ctx.Done():
				lm.abandon(fu)
				return nil, true, ctx.Err()
			case <-fu.requeued:
			}
		}
	}
}

// claimLocal withdraws a still-pending unit for local execution.
func (lm *leaseManager) claimLocal(fu *fleetUnit) bool {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	if fu.state != unitPending {
		return false
	}
	lm.removePendingLocked(fu)
	fu.state = unitWithdrawn
	return true
}

// abandon withdraws a unit whose plan was cancelled: pending units
// leave the queue, leased units have their lease invalidated so the
// eventual report is rejected.
func (lm *leaseManager) abandon(fu *fleetUnit) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	switch fu.state {
	case unitPending:
		lm.removePendingLocked(fu)
	case unitLeased:
		delete(lm.leased, fu.leaseID)
		if r := lm.runners[fu.runner]; r != nil && r.leased > 0 {
			r.leased--
		}
	}
	fu.state = unitWithdrawn
}

// removePendingLocked drops fu from the pending queue (order
// preserved). Callers must hold mu.
func (lm *leaseManager) removePendingLocked(fu *fleetUnit) {
	for i, p := range lm.pending {
		if p == fu {
			lm.pending = append(lm.pending[:i], lm.pending[i+1:]...)
			return
		}
	}
}

// wakeLocked signals every parked lease long-poll. Callers must hold mu.
func (lm *leaseManager) wakeLocked() {
	close(lm.wake)
	lm.wake = make(chan struct{})
}

// touchLocked records liveness for the runner, creating its roster
// entry on first contact. Callers must hold mu.
func (lm *leaseManager) touchLocked(id string, now time.Time) *runnerState {
	r := lm.runners[id]
	if r == nil {
		r = &runnerState{id: id, firstSeen: now}
		lm.runners[id] = r
	}
	r.lastSeen = now
	return r
}

// lease grants up to want pending units to the runner, long-polling up
// to wait when nothing is pending. The grant is capped by the batch
// bound and by a fair share — ceil(pending / active runners) — so one
// greedy runner cannot starve the fleet. Units whose previous lease
// expired on this runner are excluded from it unless it is the only
// runner left (starvation escape hatch). Returns the granted units and
// the active-runner count.
func (lm *leaseManager) lease(done <-chan struct{}, runner string, want int, wait time.Duration) ([]*fleetUnit, int) {
	if want < 1 {
		want = 1
	}
	deadline := time.Now().Add(wait)
	for {
		now := time.Now()
		lm.mu.Lock()
		lm.touchLocked(runner, now)
		active := len(lm.runners)
		var grant []*fleetUnit
		if n := len(lm.pending); n > 0 {
			quota := minInt(want, lm.batchMax)
			if share := (n + active - 1) / active; share < quota {
				quota = share
			}
			if quota < 1 {
				quota = 1
			}
			kept := lm.pending[:0]
			for _, fu := range lm.pending {
				if len(grant) < quota && (!fu.excluded[runner] || active == 1) {
					grant = append(grant, fu)
					continue
				}
				kept = append(kept, fu)
			}
			lm.pending = kept
			r := lm.runners[runner]
			for _, fu := range grant {
				lm.nextID++
				fu.state = unitLeased
				fu.leaseID = lm.nextID
				fu.runner = runner
				fu.deadline = now.Add(lm.expiry)
				fu.grants++
				lm.leased[fu.leaseID] = fu
				lm.counts.leasedTotal++
				if fu.grants > 1 {
					lm.counts.reLeased++
				}
				r.leased++
			}
		}
		wake := lm.wake
		lm.mu.Unlock()
		if len(grant) > 0 {
			lm.m.fleetLeased(len(grant))
			return grant, active
		}
		if remain := time.Until(deadline); remain <= 0 {
			return nil, active
		} else {
			timer := time.NewTimer(minDuration(remain, lm.expiry))
			select {
			case <-wake:
			case <-timer.C:
			case <-done:
				timer.Stop()
				return nil, active
			}
			timer.Stop()
		}
	}
}

// errStaleLease rejects a report whose lease is no longer valid: it
// expired and the unit was re-granted, the unit completed through
// another path, or the plan was cancelled.
var errStaleLease = errors.New("stale lease")

// report merges one unit result. Exactly-once: the lease ID is
// consumed here under the lock, the unit hash is cross-checked, and
// any later report for the same lease (or an expired one) gets
// errStaleLease — never a second merge.
func (lm *leaseManager) report(runner string, rep api.UnitReport) error {
	now := time.Now()
	lm.mu.Lock()
	fu := lm.leased[rep.Lease]
	if fu == nil || fu.state != unitLeased || fu.runner != runner || fu.pu.Hash != rep.Hash {
		lm.counts.rejected++
		lm.mu.Unlock()
		lm.m.fleetReport("rejected")
		return errStaleLease
	}
	delete(lm.leased, rep.Lease)
	fu.state = unitDone
	r := lm.touchLocked(runner, now)
	if r.leased > 0 {
		r.leased--
	}
	r.unitsDone++
	lm.counts.merged++
	lm.mu.Unlock()

	if rep.Error != "" {
		fu.err = fmt.Errorf("runner %s: %s", runner, rep.Error)
		lm.m.fleetReport("failed")
	} else {
		res := new(dynsched.SimResult)
		if err := json.Unmarshal(rep.Result, res); err != nil {
			fu.err = fmt.Errorf("runner %s: undecodable result for unit %s: %v", runner, rep.Hash, err)
			lm.m.fleetReport("failed")
		} else {
			fu.res = res
			lm.m.fleetReport("merged")
		}
	}
	close(fu.done)
	return nil
}

// renew extends every lease the runner holds and records liveness.
func (lm *leaseManager) renew(runner string) int {
	now := time.Now()
	lm.mu.Lock()
	defer lm.mu.Unlock()
	lm.touchLocked(runner, now)
	deadline := now.Add(lm.expiry)
	n := 0
	for _, fu := range lm.leased {
		if fu.runner == runner {
			fu.deadline = deadline
			n++
		}
	}
	return n
}

// sweep re-queues units whose lease expired — excluding the lapsed
// runner from the re-grant — and forgets runners silent for several
// expiry periods. Returns how many units were released.
func (lm *leaseManager) sweep(now time.Time) int {
	lm.mu.Lock()
	released := lm.releaseLocked(func(fu *fleetUnit) bool { return now.After(fu.deadline) }, true)
	for id, r := range lm.runners {
		if now.Sub(r.lastSeen) > time.Duration(runnerForgetAfter)*lm.expiry {
			delete(lm.runners, id)
		}
	}
	lm.mu.Unlock()
	lm.m.fleetReleased(released)
	return released
}

// releaseAll returns every leased unit to the pending queue without
// excluding its holder — the draining coordinator's path: reports can
// no longer be relied on, so outstanding units must become grantable
// (to surviving runners) or locally claimable again instead of
// dangling on dead leases past the drain grace.
func (lm *leaseManager) releaseAll() int {
	lm.mu.Lock()
	released := lm.releaseLocked(func(*fleetUnit) bool { return true }, false)
	lm.mu.Unlock()
	lm.m.fleetReleased(released)
	return released
}

// releaseLocked moves leased units matching expired back to pending.
// exclude marks the lapsed runner so the re-grant goes elsewhere.
// Callers must hold mu.
func (lm *leaseManager) releaseLocked(expired func(*fleetUnit) bool, exclude bool) int {
	released := 0
	for id, fu := range lm.leased {
		if !expired(fu) {
			continue
		}
		delete(lm.leased, id)
		if r := lm.runners[fu.runner]; r != nil && r.leased > 0 {
			r.leased--
		}
		if exclude {
			if fu.excluded == nil {
				fu.excluded = map[string]bool{}
			}
			fu.excluded[fu.runner] = true
		}
		fu.state = unitPending
		lm.pending = append(lm.pending, fu)
		select {
		case fu.requeued <- struct{}{}:
		default:
		}
		released++
	}
	if released > 0 {
		lm.wakeLocked()
	}
	return released
}

// snapshot assembles the /healthz fleet section.
func (lm *leaseManager) snapshot() *api.FleetHealth {
	now := time.Now()
	lm.mu.Lock()
	defer lm.mu.Unlock()
	h := &api.FleetHealth{
		Runners:      len(lm.runners),
		PendingUnits: len(lm.pending),
		Leased:       len(lm.leased),
		LeasedTotal:  lm.counts.leasedTotal,
		ReLeased:     lm.counts.reLeased,
		Merged:       lm.counts.merged,
		Rejected:     lm.counts.rejected,
	}
	for _, r := range lm.runners {
		age := now.Sub(r.firstSeen)
		if age <= 0 {
			age = time.Millisecond
		}
		h.RunnerDetail = append(h.RunnerDetail, api.RunnerHealth{
			ID:          r.id,
			Leased:      r.leased,
			UnitsDone:   r.unitsDone,
			UnitsPerSec: float64(r.unitsDone) / age.Seconds(),
			IdleMs:      now.Sub(r.lastSeen).Milliseconds(),
		})
	}
	sort.Slice(h.RunnerDetail, func(i, j int) bool { return h.RunnerDetail[i].ID < h.RunnerDetail[j].ID })
	return h
}

// occupancy reports the live gauge readings (runners, pending, leased).
func (lm *leaseManager) occupancy() (runners, pending, leased int) {
	lm.mu.Lock()
	defer lm.mu.Unlock()
	return len(lm.runners), len(lm.pending), len(lm.leased)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func minDuration(a, b time.Duration) time.Duration {
	if a < b {
		return a
	}
	return b
}
