package server

// The fleet protocol's HTTP surface: POST /v1/fleet/lease, /report
// and /heartbeat, plus GET /v1/units/{hash} — the fleet-wide unit
// result cache. Report bodies may arrive gzip-compressed
// (Content-Encoding: gzip) and lease responses are compressed when the
// runner advertises Accept-Encoding: gzip; both ride the runner's
// keep-alive connections, so a busy fleet holds one warm TCP stream
// per runner.

import (
	"compress/gzip"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"time"

	"dynsched/api"
)

// maxFleetBodyBytes bounds fleet request bodies (after decompression):
// a report batch carries up to batchMax marshaled SimResults.
const maxFleetBodyBytes = 64 << 20

// maxLeaseWait caps a lease long-poll so dead runners cannot pin
// handler goroutines much longer than a heartbeat period.
const maxLeaseWait = 30 * time.Second

// readFleetBody reads a fleet request body, transparently unwrapping
// Content-Encoding: gzip, and decodes it into v.
func readFleetBody(r *http.Request, v any) error {
	var src io.Reader = r.Body
	if strings.Contains(r.Header.Get("Content-Encoding"), "gzip") {
		zr, err := gzip.NewReader(src)
		if err != nil {
			return err
		}
		defer zr.Close()
		src = zr
	}
	body, err := io.ReadAll(io.LimitReader(src, maxFleetBodyBytes))
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

// writeFleetJSON writes v as JSON, gzip-compressed when the client
// advertised Accept-Encoding: gzip (lease responses carry full
// scenario specs — compressing them keeps batch grants cheap on the
// wire).
func writeFleetJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		writeJSON(w, status, v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Encoding", "gzip")
	w.WriteHeader(status)
	zw := gzip.NewWriter(w)
	_ = json.NewEncoder(zw).Encode(v)
	_ = zw.Close()
}

// handleFleetLease grants a batch of pending plan units to a runner,
// long-polling up to the requested wait when nothing is pending.
func (s *Server) handleFleetLease(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req api.LeaseRequest
	if err := readFleetBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing lease request: %v", err)
		return
	}
	if req.Runner == "" {
		writeError(w, http.StatusBadRequest, "lease request needs a runner id")
		return
	}
	wait := time.Duration(req.WaitMs) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > maxLeaseWait {
		wait = maxLeaseWait
	}
	grant, runners := s.fleet.lease(r.Context().Done(), req.Runner, req.Want, wait)
	resp := api.LeaseResponse{
		ExpiryMs: s.fleet.expiry.Milliseconds(),
		Runners:  runners,
	}
	for _, fu := range grant {
		resp.Units = append(resp.Units, api.LeasedUnit{
			Lease:    fu.leaseID,
			Hash:     fu.pu.Hash,
			Scenario: fu.pu.Scenario,
			NoCache:  fu.noCache,
		})
	}
	writeFleetJSON(w, r, http.StatusOK, resp)
}

// handleFleetReport merges a batch of unit results. Individual stale
// or mismatched reports are rejected idempotently — the batch never
// fails as a whole, and reporting also renews the runner's remaining
// leases.
func (s *Server) handleFleetReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req api.ReportRequest
	if err := readFleetBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing report: %v", err)
		return
	}
	if req.Runner == "" {
		writeError(w, http.StatusBadRequest, "report needs a runner id")
		return
	}
	resp := api.ReportResponse{ExpiryMs: s.fleet.expiry.Milliseconds()}
	for _, rep := range req.Results {
		if err := s.fleet.report(req.Runner, rep); err != nil {
			resp.Rejected++
		} else {
			resp.Merged++
		}
	}
	s.fleet.renew(req.Runner)
	writeFleetJSON(w, r, http.StatusOK, resp)
}

// handleFleetHeartbeat renews every lease the runner holds and keeps
// it on the fleet roster while it executes a long batch.
func (s *Server) handleFleetHeartbeat(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req api.HeartbeatRequest
	if err := readFleetBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "parsing heartbeat: %v", err)
		return
	}
	if req.Runner == "" {
		writeError(w, http.StatusBadRequest, "heartbeat needs a runner id")
		return
	}
	s.fleet.renew(req.Runner)
	runners, _, _ := s.fleet.occupancy()
	writeFleetJSON(w, r, http.StatusOK, api.HeartbeatResponse{
		ExpiryMs: s.fleet.expiry.Milliseconds(),
		Runners:  runners,
	})
}

// handleUnitGet serves the fleet-wide per-unit result cache: a runner
// asks GET /v1/units/{hash} before executing a leased unit, and a 200
// (the stored SimResult document, byte-exact) turns the unit into a
// wire-level cache hit.
func (s *Server) handleUnitGet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	hash := strings.TrimPrefix(r.URL.Path, "/v1/units/")
	if hash == "" || strings.Contains(hash, "/") {
		writeError(w, http.StatusNotFound, "unknown unit endpoint %q", r.URL.Path)
		return
	}
	data, ok := s.cache.Get(hash)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for unit %s", hash)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}
