// Package server turns the dynsched library into a long-running
// simulation service: an HTTP/JSON API over a bounded job queue, a
// worker pool that executes submitted Scenario specs with live
// progress streaming, and a content-addressed result cache keyed by
// the canonical spec hash so identical submissions are served from
// memory (or a disk spill directory) without re-simulating.
//
// The API surface (all under /v1):
//
//	POST   /v1/jobs              submit a spec ({"scenario": {...}}) or a
//	                             registered name ({"name": "..."}); 202 on
//	                             enqueue, 200 on a cache hit, 503 when the
//	                             queue is full. A sweep/grid spec or
//	                             "reps" > 1 submits an execution plan:
//	                             the job decomposes into per-unit
//	                             simulations, each consulting the result
//	                             cache by its own content address, with
//	                             "unit" completion events and
//	                             unitsTotal/unitsDone/unitsCached
//	                             counters in the job view
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job state, including the result when done
//	GET    /v1/jobs/{id}/events  NDJSON progress stream until terminal
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/scenarios         the registered scenario library
//	GET    /healthz              liveness and queue occupancy
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dynsched"
	"dynsched/internal/journal"
	"dynsched/internal/sim"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (0 = 64).
	// Submissions beyond it are rejected with 503 rather than queued
	// without bound.
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (0 = 256, negative
	// disables the memory tier).
	CacheEntries int
	// CacheDir, when set, spills every cached result to disk and serves
	// evicted entries from there across restarts.
	CacheDir string
	// CacheDiskMax bounds the spill directory to this many entries,
	// evicting oldest-mtime files first (0 = unbounded).
	CacheDiskMax int
	// ProgressEvery is the progress-event period in slots (0 = one
	// twentieth of each job's run length). An explicit period is floored
	// so no job emits more than maxProgressEvents progress events.
	ProgressEvery int64
	// MaxJobs bounds the job registry (0 = 4096); terminal jobs beyond
	// it are forgotten oldest-first. Results stay in the cache.
	MaxJobs int
	// JournalDir, when set, enables the durable execution tier: job
	// lifecycle events are journaled there (see journal.go), engine
	// checkpoints spill to its checkpoints/ subdirectory, and New
	// replays the directory to recover incomplete jobs from the last
	// process. Pair it with CacheDir so recovered plans find their
	// finished units.
	JournalDir string
	// CheckpointEvery checkpoints each running simulation every so many
	// slots (at the protocol's next frame boundary) into the journal
	// directory's checkpoint store; 0 with a JournalDir defaults to
	// 10_000, negative disables checkpointing. Ignored without a
	// JournalDir.
	CheckpointEvery int64
	// ResolveParallelism, when positive, is the intra-slot resolution
	// worker count injected into submitted scenarios that leave their
	// own Sim.ResolveParallelism at 0. An execution knob only: results
	// are bit-identical at every value and scenario hashes (and hence
	// cache keys) exclude it.
	ResolveParallelism int
	// LeaseExpiry is the fleet lease lifetime (0 = 15s): a runner that
	// neither reports nor heartbeats for this long is presumed dead and
	// its units are re-granted elsewhere.
	LeaseExpiry time.Duration
	// FleetBatchMax caps one lease grant (0 = 64 units).
	FleetBatchMax int
	// FleetLocal sizes the coordinator's own execution share of plan
	// units: 0 keeps the planner's resolved pool (the scenario's
	// Sim.Parallel, GOMAXPROCS by default), a positive value pins the
	// local slot count, and a negative value makes the coordinator
	// dispatch-only — every plan unit must complete through a runner,
	// so a fleet must be attached.
	FleetLocal int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.JournalDir != "" && c.CheckpointEvery == 0 {
		c.CheckpointEvery = 10_000
	}
	return c
}

// Server is the simulation service: job registry, bounded queue,
// worker pool and result cache behind an http.Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	queue   chan *Job
	metrics *serverMetrics
	fleet   *leaseManager

	// Durability (nil/zero when Config.JournalDir is empty).
	journal       *journal.Journal
	ckptDir       string
	replayStats   journal.ReplayStats
	cleanShutdown bool // previous process journaled a shutdown marker
	recovered     int  // jobs re-enqueued by recovery

	// drainCh, closed by Drain, stops idle workers from dequeuing.
	drainCh chan struct{}

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string
	nextID   int
	running  map[string]*Job
	draining bool

	wg sync.WaitGroup
}

// New builds a server, replaying the journal directory (when
// configured) to recover jobs from the previous process. Call Start to
// launch the worker pool and Handler to obtain the HTTP surface.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheEntries, cfg.CacheDir, cfg.CacheDiskMax),
		queue:   make(chan *Job, cfg.QueueDepth),
		drainCh: make(chan struct{}),
		jobs:    map[string]*Job{},
		running: map[string]*Job{},
	}
	s.metrics = newServerMetrics(s)
	s.fleet = newLeaseManager(cfg.LeaseExpiry, cfg.FleetBatchMax, s.metrics)
	s.cache.instrument(&cacheMetrics{
		hitsMem:   s.metrics.cacheHitsMem,
		hitsDisk:  s.metrics.cacheHitsDisk,
		misses:    s.metrics.cacheMisses,
		evictMem:  s.metrics.cacheEvictMem,
		evictDisk: s.metrics.cacheEvictDisk,
	})
	if cfg.JournalDir != "" {
		if err := s.recover(cfg.JournalDir); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	return s, nil
}

// Start launches the worker pool. Cancelling ctx stops the workers:
// running jobs are cancelled through their run contexts and queued
// jobs stay queued (the process is exiting). Wait blocks until the
// pool has drained.
func (s *Server) Start(ctx context.Context) {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
	// The fleet lease sweeper rides its own goroutine, not the worker
	// WaitGroup: it must keep re-granting expired leases through a
	// drain (Drain waits on the pool while released units finish) and
	// only stops when the Start context does.
	go s.fleetSweeper(ctx)
}

// fleetSweeper periodically re-queues expired fleet leases so units
// held by dead runners are re-granted. The tick is a quarter of the
// expiry, clamped to [5ms, 250ms] so tests with millisecond expiries
// observe prompt re-leasing without a busy loop.
func (s *Server) fleetSweeper(ctx context.Context) {
	tick := s.fleet.expiry / 4
	if tick < 5*time.Millisecond {
		tick = 5 * time.Millisecond
	}
	if tick > 250*time.Millisecond {
		tick = 250 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			s.fleet.sweep(now)
		}
	}
}

// Wait blocks until every worker has returned (after the Start context
// is cancelled).
func (s *Server) Wait() { s.wg.Wait() }

func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.drainCh:
			return
		case j := <-s.queue:
			s.runJob(ctx, j)
		}
	}
}

// DrainReport summarises a graceful shutdown: how many running jobs
// finished inside the grace period, and how many queued/running jobs
// were dropped. Dropped jobs are deliberately left unfinished in the
// journal, so a journaled server recovers them on the next boot.
type DrainReport struct {
	Finished       int
	DroppedQueued  int
	DroppedRunning int
}

// Drain gracefully shuts the worker pool down: stop dequeuing, let
// running jobs finish for up to grace, then hard-cancel the stragglers
// without journaling their terminal state. It journals the clean-
// shutdown marker and closes the journal; call it once, before
// cancelling the Start context. Safe without a journal (the report is
// still meaningful).
func (s *Server) Drain(grace time.Duration) DrainReport {
	s.mu.Lock()
	s.draining = true
	atStart := len(s.running)
	s.mu.Unlock()
	close(s.drainCh)

	// Release every unit currently leased to a runner: reports can no
	// longer be waited on across the grace window, so leased units go
	// back to pending where a surviving runner re-leases them (or an
	// idle local slot claims them) — instead of dangling on a dead
	// runner's lease until its expiry and forcing the drain to drop
	// the owning plan job. Late reports against the released leases
	// are rejected idempotently.
	s.fleet.releaseAll()

	var rep DrainReport
	// Jobs still queued will never be dequeued (workers stop at the
	// closed drainCh); count them as dropped. A worker already blocked
	// on the queue may still race one job out — that job is simply a
	// running job the drain waits for.
drainQueue:
	for {
		select {
		case <-s.queue:
			rep.DroppedQueued++
		default:
			break drainQueue
		}
	}

	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	graceExpired := false
	select {
	case <-done:
	case <-time.After(grace):
		graceExpired = true
		// Grace expired: hard-cancel what is still running. shutdownDrop
		// suppresses the finish journal record so the jobs recover.
		s.mu.Lock()
		stragglers := make([]*Job, 0, len(s.running))
		for _, j := range s.running {
			stragglers = append(stragglers, j)
		}
		s.mu.Unlock()
		for _, j := range stragglers {
			j.mu.Lock()
			j.shutdownDrop = true
			if j.cancel != nil {
				j.cancel()
			}
			j.mu.Unlock()
			rep.DroppedRunning++
		}
		<-done
	}
	if rep.Finished = atStart - rep.DroppedRunning; rep.Finished < 0 || !graceExpired {
		// Everything running at the start (plus any job a worker raced
		// out of the queue) completed inside the grace period.
		rep.Finished = atStart
	}

	if s.journal != nil {
		_ = s.appendRecord(journalRecord{Op: "shutdown"}, true)
		_ = s.journal.Close()
	}
	return rep
}

// runJob executes one queued job end to end: transition to running,
// then either a single simulation with a progress observer or a full
// execution plan with per-unit cache consultation, publishing into the
// job's event stream; finally cache and publish the result document.
func (s *Server) runJob(ctx context.Context, j *Job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.publishLocked(Event{Type: "started"})
	j.mu.Unlock()

	s.mu.Lock()
	s.running[j.ID] = j
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.running, j.ID)
		s.mu.Unlock()
	}()

	var data []byte
	var err error
	isPlan := j.plan != nil
	if isPlan {
		data, err = s.runPlan(jctx, j)
	} else {
		var res *dynsched.SimResult
		if res, err = s.simulate(jctx, j); err == nil {
			if data, err = json.Marshal(res); err != nil {
				err = fmt.Errorf("marshaling result: %v", err)
			}
		}
	}
	if err != nil {
		j.mu.Lock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.state = StateCancelled
			j.publishLocked(Event{Type: "cancelled"})
			// A user cancellation is a terminal outcome and is journaled;
			// a shutdown- or process-exit cancellation is not — the job
			// is meant to recover on the next boot.
			drop := j.shutdownDrop || ctx.Err() != nil
			j.mu.Unlock()
			if !drop {
				s.journalFinish(j, StateCancelled)
				s.markFinished(StateCancelled)
			}
			return
		}
		j.state = StateFailed
		j.errMsg = err.Error()
		j.publishLocked(Event{Type: "failed", Error: j.errMsg})
		j.mu.Unlock()
		s.journalFinish(j, StateFailed)
		s.markFinished(StateFailed)
		return
	}
	s.cache.Put(j.Hash, data)
	if s.journal != nil && !isPlan {
		s.dropCheckpoint(j.Hash)
	}

	j.mu.Lock()
	j.state = StateDone
	j.result = data
	j.publishLocked(Event{Type: "done"})
	j.mu.Unlock()
	s.journalFinish(j, StateDone)
	s.markFinished(StateDone)
}

// maxUnitEvents bounds one plan job's share of the event log, exactly
// like maxProgressEvents bounds a single run's: plans beyond the cap
// publish a thinned unit stream (every ⌈total/cap⌉-th completion plus
// the final one), so a maximal grid cannot grow the retained log —
// or every later /events replay — to tens of thousands of entries.
// The job-view counters still advance for every unit.
const maxUnitEvents = 512

// runPlan executes a plan job: every unit goes through the
// content-addressed cache (lookup before running, store after, unless
// the submission asked for noCache), completions stream into the
// job's event log as "unit" events with monotonic counters, and the
// assembled PlanResult document is returned for the plan-level cache
// entry. Unit workers run on the planner's pool, sized by the
// scenario's Sim.Parallel (0 = GOMAXPROCS). Plan jobs report progress
// at unit granularity only — the slot-level progress observer (and
// -progress-every) applies to single-run jobs, where there is exactly
// one simulation to watch.
func (s *Server) runPlan(ctx context.Context, j *Job) ([]byte, error) {
	p := j.plan
	j.plan = nil // single-run payloads; don't retain them past the run
	compiled := j.compiled
	j.compiled = nil
	stride := (len(p.Units) + maxUnitEvents - 1) / maxUnitEvents
	opts := dynsched.ExecOptions{
		Metrics: s.metrics.plan,
		Observers: func(u dynsched.PlanUnit) []dynsched.SimObserver {
			return []dynsched.SimObserver{s.metrics.sim.NewObserver(0)}
		},
		Compiled: func(u dynsched.PlanUnit) *dynsched.CompiledScenario {
			if u.Index == 0 {
				return compiled // the submit-time compilation; nil after a cache hit is fine
			}
			return nil
		},
		Store: func(u dynsched.PlanUnit, res *dynsched.SimResult) {
			if data, err := json.Marshal(res); err == nil {
				s.cache.Put(u.Hash, data)
				if s.journal != nil {
					s.journalUnit(j, u.Index, u.Hash)
					s.dropCheckpoint(u.Hash)
				}
			}
		},
		OnUnit: func(u dynsched.PlanUnit, cached bool, err error, prog dynsched.PlanProgress) {
			if err != nil {
				// The terminal failed/cancelled event carries the outcome;
				// per-unit errors are not separate stream entries.
				return
			}
			j.mu.Lock()
			j.unitsDone, j.unitsCached = prog.Done, prog.Cached
			if prog.Done%stride != 0 && prog.Done != prog.Total {
				// Thinned out of the stream; the view's counter lets
				// clients report how many completions were elided.
				j.eventsDropped++
			} else {
				j.publishLocked(Event{Type: "unit", Unit: &UnitEvent{
					Index:       u.Index,
					Hash:        u.Hash,
					Coords:      u.Coords,
					Cached:      cached,
					UnitsDone:   prog.Done,
					UnitsCached: prog.Cached,
					UnitsTotal:  prog.Total,
				}})
			}
			j.mu.Unlock()
		},
	}
	if !j.noCache {
		opts.Lookup = func(u dynsched.PlanUnit) (*dynsched.SimResult, bool) {
			data, ok := s.cache.Get(u.Hash)
			if !ok {
				return nil, false
			}
			var res dynsched.SimResult
			if err := json.Unmarshal(data, &res); err != nil {
				return nil, false
			}
			return &res, true
		}
	}
	// Fleet tier: park every fresh unit with the lease manager so
	// attached runners can lease it, while the local-execution
	// semaphore keeps this coordinator's own share of the work. The
	// pool is sized local + virtual so up to maxFleetInflight units can
	// be out with the fleet beyond what runs here; with no runners
	// attached every unit falls straight through to a local slot.
	localN := p.Source.Sim.Parallel
	if localN <= 0 {
		localN = runtime.GOMAXPROCS(0)
	}
	switch {
	case s.cfg.FleetLocal > 0:
		localN = s.cfg.FleetLocal
	case s.cfg.FleetLocal < 0:
		localN = 0
	}
	opts.Parallel = localN + minInt(len(p.Units), maxFleetInflight)
	if opts.LocalParallel = localN; localN == 0 {
		opts.LocalParallel = -1 // dispatch-only
	}
	noCache := j.noCache
	opts.Delegate = func(dctx context.Context, u dynsched.PlanUnit, local chan struct{}) (*dynsched.SimResult, bool, error) {
		return s.fleet.offer(dctx, &fleetUnit{pu: u, noCache: noCache}, local)
	}
	if s.journal != nil && s.cfg.CheckpointEvery > 0 {
		opts.CheckpointEvery = s.cfg.CheckpointEvery
		opts.SaveCheckpoint = func(u dynsched.PlanUnit, cp *sim.Checkpoint) error {
			return s.saveCheckpoint(u.Hash, cp)
		}
		opts.LoadCheckpoint = func(u dynsched.PlanUnit) *sim.Checkpoint {
			cp := s.loadCheckpoint(u.Hash)
			if cp != nil {
				j.mu.Lock()
				if cp.Slot > j.resumedFromSlot {
					j.resumedFromSlot = cp.Slot
				}
				j.mu.Unlock()
			}
			return cp
		}
	}
	pr, err := p.Execute(ctx, opts)
	if err != nil {
		return nil, err
	}
	return json.Marshal(pr)
}

// maxProgressEvents bounds one job's share of the event log: however
// small the configured period, a job emits at most this many progress
// events, so a billion-slot submission cannot grow its retained event
// log (and every later /events replay) without bound.
const maxProgressEvents = 512

// simulate runs the job's scenario — reusing the submit-time
// compilation when present — with a progress observer that publishes
// into the job's event stream.
func (s *Server) simulate(ctx context.Context, j *Job) (*dynsched.SimResult, error) {
	c := j.compiled
	j.compiled = nil // the components are single-run; don't retain them
	if c == nil {
		var err error
		if c, err = j.Scenario.Compile(); err != nil {
			return nil, err
		}
	}
	every := s.cfg.ProgressEvery
	// Ceil division: a floor-divided period would admit up to 2x-1 the
	// intended event count for slot counts just above the cap.
	if floor := (j.Scenario.Sim.Slots + maxProgressEvents - 1) / maxProgressEvents; every > 0 && every < floor {
		every = floor
	}
	progress := sim.NewProgressObserver(j.Scenario.Sim.Slots, every, func(p sim.Progress) {
		if p.Done {
			// The terminal done/cancelled/failed event carries the
			// outcome; a trailing progress snapshot would race it.
			return
		}
		snap := p
		j.publish(Event{Type: "progress", Progress: &snap})
	})
	c.Observers = append(c.Observers, progress, s.metrics.sim.NewObserver(0))
	if s.journal != nil && s.cfg.CheckpointEvery > 0 &&
		sim.SupportsCheckpoint(c.Model, c.Process, c.Protocol) {
		spec := &sim.CheckpointSpec{
			Every: s.cfg.CheckpointEvery,
			Sink:  func(cp *sim.Checkpoint) error { return s.saveCheckpoint(j.Hash, cp) },
		}
		if cp := s.loadCheckpoint(j.Hash); cp != nil {
			spec.Resume = cp
			j.mu.Lock()
			j.resumedFromSlot = cp.Slot
			j.mu.Unlock()
		}
		c.Config.Checkpoint = spec
	}
	return c.Run(ctx)
}

// submit registers and enqueues a job for the scenario, serving it
// from the result cache instead when a bit-identical spec has already
// run (unless noCache). compiled, when non-nil, is handed to the
// worker so the spec is not compiled twice. It returns the job and
// whether it was served from cache; errQueueFull when the queue is at
// capacity.
func (s *Server) submit(sc dynsched.Scenario, compiled *dynsched.CompiledScenario, noCache bool) (*Job, bool, error) {
	hash := sc.Hash()
	if !noCache {
		if data, ok := s.cache.Get(hash); ok {
			j := newJob(s.allocID(), hash, sc)
			j.state = StateDone
			j.cached = true
			j.result = data
			j.publish(Event{Type: "done", Cached: true})
			s.register(j)
			s.metrics.jobsSubmitted.With(string(dynsched.PlanRun)).Inc()
			s.markFinished(StateDone)
			return j, true, nil
		}
	}
	if s.isDraining() {
		return nil, false, errQueueFull
	}
	j := newJob(s.allocID(), hash, sc)
	j.compiled = compiled
	j.noCache = noCache
	j.reps = 1
	j.publish(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		return nil, false, errQueueFull
	}
	s.register(j)
	s.journalSubmit(j, 1)
	s.metrics.jobsSubmitted.With(string(dynsched.PlanRun)).Inc()
	return j, false, nil
}

// submitPlan registers and enqueues a plan job (sweep, grid or
// replicate), serving the assembled document from the plan-level cache
// when the identical plan already ran (unless noCache — then every
// unit simulates afresh too). Per-unit cache consultation happens in
// the worker; a plan-level miss with full per-unit hits still runs
// zero simulations. compiled, when non-nil, is unit 0's submit-time
// compilation, handed to the worker so it is not redone.
func (s *Server) submitPlan(p *dynsched.Plan, compiled *dynsched.CompiledScenario, noCache bool) (*Job, bool, error) {
	hash := p.Hash()
	if !noCache {
		if data, ok := s.cache.Get(hash); ok {
			j := newJob(s.allocID(), hash, p.Source)
			j.state = StateDone
			j.cached = true
			j.result = data
			j.unitsTotal = len(p.Units)
			j.unitsDone = len(p.Units)
			j.unitsCached = len(p.Units)
			j.publish(Event{Type: "done", Cached: true})
			s.register(j)
			s.metrics.jobsSubmitted.With(string(p.Kind)).Inc()
			s.markFinished(StateDone)
			return j, true, nil
		}
	}
	if s.isDraining() {
		return nil, false, errQueueFull
	}
	j := newJob(s.allocID(), hash, p.Source)
	j.plan = p
	j.compiled = compiled
	j.noCache = noCache
	j.reps = p.Reps
	j.unitsTotal = len(p.Units)
	j.publish(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		return nil, false, errQueueFull
	}
	s.register(j)
	s.journalSubmit(j, p.Reps)
	s.metrics.jobsSubmitted.With(string(p.Kind)).Inc()
	return j, false, nil
}

// isDraining reports whether Drain has begun; draining servers reject
// new submissions (they could never run).
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

var errQueueFull = errors.New("job queue is full")

func (s *Server) allocID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

// register adds the job to the registry, forgetting the oldest
// terminal jobs beyond the MaxJobs bound.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].currentState().Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobCount returns the number of registered jobs.
func (s *Server) jobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// job looks a registered job up.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobList snapshots every registered job in submission order.
func (s *Server) jobList() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.View(false))
	}
	return out
}

// queueLen returns the number of jobs waiting for a worker.
func (s *Server) queueLen() int { return len(s.queue) }

// RecoveredJobs reports how many incomplete jobs startup recovery
// re-enqueued from the journal.
func (s *Server) RecoveredJobs() int { return s.recovered }
