// Package server turns the dynsched library into a long-running
// simulation service: an HTTP/JSON API over a bounded job queue, a
// worker pool that executes submitted Scenario specs with live
// progress streaming, and a content-addressed result cache keyed by
// the canonical spec hash so identical submissions are served from
// memory (or a disk spill directory) without re-simulating.
//
// The API surface (all under /v1):
//
//	POST   /v1/jobs              submit a spec ({"scenario": {...}}) or a
//	                             registered name ({"name": "..."}); 202 on
//	                             enqueue, 200 on a cache hit, 503 when the
//	                             queue is full
//	GET    /v1/jobs              list jobs
//	GET    /v1/jobs/{id}         job state, including the result when done
//	GET    /v1/jobs/{id}/events  NDJSON progress stream until terminal
//	DELETE /v1/jobs/{id}         cancel a queued or running job
//	GET    /v1/scenarios         the registered scenario library
//	GET    /healthz              liveness and queue occupancy
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"dynsched"
	"dynsched/internal/sim"
)

// Config parameterises a Server.
type Config struct {
	// Workers is the simulation worker-pool size (0 = GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting to run (0 = 64).
	// Submissions beyond it are rejected with 503 rather than queued
	// without bound.
	QueueDepth int
	// CacheEntries bounds the in-memory result cache (0 = 256, negative
	// disables the memory tier).
	CacheEntries int
	// CacheDir, when set, spills every cached result to disk and serves
	// evicted entries from there across restarts.
	CacheDir string
	// ProgressEvery is the progress-event period in slots (0 = one
	// twentieth of each job's run length). An explicit period is floored
	// so no job emits more than maxProgressEvents progress events.
	ProgressEvery int64
	// MaxJobs bounds the job registry (0 = 4096); terminal jobs beyond
	// it are forgotten oldest-first. Results stay in the cache.
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server is the simulation service: job registry, bounded queue,
// worker pool and result cache behind an http.Handler.
type Server struct {
	cfg   Config
	cache *Cache
	queue chan *Job

	mu     sync.Mutex
	jobs   map[string]*Job
	order  []string
	nextID int

	wg sync.WaitGroup
}

// New builds a server. Call Start to launch the worker pool and
// Handler to obtain the HTTP surface.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:   cfg,
		cache: NewCache(cfg.CacheEntries, cfg.CacheDir),
		queue: make(chan *Job, cfg.QueueDepth),
		jobs:  map[string]*Job{},
	}
}

// Start launches the worker pool. Cancelling ctx stops the workers:
// running jobs are cancelled through their run contexts and queued
// jobs stay queued (the process is exiting). Wait blocks until the
// pool has drained.
func (s *Server) Start(ctx context.Context) {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
}

// Wait blocks until every worker has returned (after the Start context
// is cancelled).
func (s *Server) Wait() { s.wg.Wait() }

func (s *Server) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case j := <-s.queue:
			s.runJob(ctx, j)
		}
	}
}

// runJob executes one queued job end to end: transition to running,
// compile, simulate with a progress observer publishing into the
// job's event stream, cache and publish the result.
func (s *Server) runJob(ctx context.Context, j *Job) {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.cancel = cancel
	j.publishLocked(Event{Type: "started"})
	j.mu.Unlock()

	res, err := s.simulate(jctx, j)
	if err != nil {
		j.mu.Lock()
		defer j.mu.Unlock()
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			j.state = StateCancelled
			j.publishLocked(Event{Type: "cancelled"})
			return
		}
		j.state = StateFailed
		j.errMsg = err.Error()
		j.publishLocked(Event{Type: "failed", Error: j.errMsg})
		return
	}

	data, err := json.Marshal(res)
	if err != nil {
		j.mu.Lock()
		defer j.mu.Unlock()
		j.state = StateFailed
		j.errMsg = fmt.Sprintf("marshaling result: %v", err)
		j.publishLocked(Event{Type: "failed", Error: j.errMsg})
		return
	}
	s.cache.Put(j.Hash, data)

	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = data
	j.publishLocked(Event{Type: "done"})
}

// maxProgressEvents bounds one job's share of the event log: however
// small the configured period, a job emits at most this many progress
// events, so a billion-slot submission cannot grow its retained event
// log (and every later /events replay) without bound.
const maxProgressEvents = 512

// simulate runs the job's scenario — reusing the submit-time
// compilation when present — with a progress observer that publishes
// into the job's event stream.
func (s *Server) simulate(ctx context.Context, j *Job) (*dynsched.SimResult, error) {
	c := j.compiled
	j.compiled = nil // the components are single-run; don't retain them
	if c == nil {
		var err error
		if c, err = j.Scenario.Compile(); err != nil {
			return nil, err
		}
	}
	every := s.cfg.ProgressEvery
	// Ceil division: a floor-divided period would admit up to 2x-1 the
	// intended event count for slot counts just above the cap.
	if floor := (j.Scenario.Sim.Slots + maxProgressEvents - 1) / maxProgressEvents; every > 0 && every < floor {
		every = floor
	}
	progress := sim.NewProgressObserver(j.Scenario.Sim.Slots, every, func(p sim.Progress) {
		if p.Done {
			// The terminal done/cancelled/failed event carries the
			// outcome; a trailing progress snapshot would race it.
			return
		}
		snap := p
		j.publish(Event{Type: "progress", Progress: &snap})
	})
	c.Observers = append(c.Observers, progress)
	return c.Run(ctx)
}

// submit registers and enqueues a job for the scenario, serving it
// from the result cache instead when a bit-identical spec has already
// run (unless noCache). compiled, when non-nil, is handed to the
// worker so the spec is not compiled twice. It returns the job and
// whether it was served from cache; errQueueFull when the queue is at
// capacity.
func (s *Server) submit(sc dynsched.Scenario, compiled *dynsched.CompiledScenario, noCache bool) (*Job, bool, error) {
	hash := sc.Hash()
	if !noCache {
		if data, ok := s.cache.Get(hash); ok {
			j := newJob(s.allocID(), hash, sc)
			j.state = StateDone
			j.cached = true
			j.result = data
			j.publish(Event{Type: "done", Cached: true})
			s.register(j)
			return j, true, nil
		}
	}
	j := newJob(s.allocID(), hash, sc)
	j.compiled = compiled
	j.publish(Event{Type: "queued"})
	select {
	case s.queue <- j:
	default:
		return nil, false, errQueueFull
	}
	s.register(j)
	return j, false, nil
}

var errQueueFull = errors.New("job queue is full")

func (s *Server) allocID() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

// register adds the job to the registry, forgetting the oldest
// terminal jobs beyond the MaxJobs bound.
func (s *Server) register(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	if len(s.order) <= s.cfg.MaxJobs {
		return
	}
	kept := s.order[:0]
	excess := len(s.order) - s.cfg.MaxJobs
	for _, id := range s.order {
		if excess > 0 && s.jobs[id].currentState().Terminal() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

// jobCount returns the number of registered jobs.
func (s *Server) jobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.jobs)
}

// job looks a registered job up.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// jobList snapshots every registered job in submission order.
func (s *Server) jobList() []JobView {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.View(false))
	}
	return out
}

// queueLen returns the number of jobs waiting for a worker.
func (s *Server) queueLen() int { return len(s.queue) }
