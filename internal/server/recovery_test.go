package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"testing"
	"time"

	"dynsched"
	"dynsched/internal/journal"
)

// planBaseline executes the scenario's plan uninterrupted through the
// library and returns the marshaled PlanResult — the exact document a
// server job stores.
func planBaseline(t *testing.T, sc dynsched.Scenario) []byte {
	t.Helper()
	p, err := sc.Plan(1)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := p.Execute(context.Background(), dynsched.ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(pr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCrashRecoveryBitIdentical is the durability tier's acceptance
// test: kill a journaled server mid-plan, restart it against the same
// journal and cache directories, and check the recovered job finishes
// with a result document byte-identical to an uninterrupted run —
// serving the units that completed before the crash from the cache
// instead of re-simulating them.
func TestCrashRecoveryBitIdentical(t *testing.T) {
	journalDir, cacheDir := t.TempDir(), t.TempDir()
	// A 6-unit lambda sweep, each unit heavy enough that the crash
	// lands mid-plan. Parallel=1 runs the units sequentially inside
	// the plan, so "two units done" reliably means four are left.
	sc := sweepScenario("recovery-sweep", 500_000, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35)
	sc.Sim.Parallel = 1
	want := planBaseline(t, sc)

	// Server 1: one worker so units complete in order; crash once at
	// least two units are done and at most four (mid-plan either way).
	s1, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, crash := context.WithCancel(context.Background())
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	status, view := submitScenario(t, ts1, sc)
	if status != 202 {
		t.Fatalf("submit: status %d", status)
	}
	id := view.ID

	deadline := time.Now().Add(30 * time.Second)
	for {
		v := getJob(t, ts1, id)
		if v.State.Terminal() {
			t.Fatalf("job reached %s before the crash; raise the unit slot count", v.State)
		}
		if v.UnitsDone >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no unit progress before deadline: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	crash() // the process dies here: no drain, no shutdown marker
	s1.Wait()
	ts1.Close()
	_ = s1.journal.Close()

	// Server 2 on the same directories: the job must come back under
	// its original ID, marked recovered, and still incomplete.
	s2, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	if s2.RecoveredJobs() != 1 {
		t.Fatalf("recovered %d jobs, want 1", s2.RecoveredJobs())
	}
	if s2.cleanShutdown {
		t.Fatal("crash misreported as clean shutdown")
	}
	j2, ok := s2.job(id)
	if !ok {
		t.Fatalf("job %s not restored", id)
	}
	if !j2.recovered || j2.currentState().Terminal() {
		t.Fatalf("restored job: recovered=%v state=%s", j2.recovered, j2.currentState())
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	done := waitForState(t, ts2, id, StateDone)
	if !done.Recovered {
		t.Fatal("finished job lost its recovered mark")
	}
	if done.UnitsCached < 2 {
		t.Fatalf("recovery re-simulated finished units: unitsCached=%d", done.UnitsCached)
	}
	if done.UnitsDone != 6 {
		t.Fatalf("unitsDone=%d, want 6", done.UnitsDone)
	}

	j2.mu.Lock()
	got := append([]byte(nil), j2.result...)
	j2.mu.Unlock()
	if !bytes.Equal(got, want) {
		t.Fatalf("recovered result diverges from uninterrupted run:\n got %s\nwant %s", got, want)
	}
	cancel2()
	s2.Wait()
	_ = s2.journal.Close()
}

// TestTornJournalTailRecovered pins that a write torn mid-record by a
// crash is detected via its CRC and dropped — the server boots, and
// the job whose finish record was torn off recovers as incomplete.
func TestTornJournalTailRecovered(t *testing.T) {
	journalDir, cacheDir := t.TempDir(), t.TempDir()

	s1, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	_, view := submitScenario(t, ts1, lineScenario("torn", 4_000, 1))
	waitForState(t, ts1, view.ID, StateDone)
	cancel1()
	s1.Wait()
	ts1.Close()
	_ = s1.journal.Close()

	// Tear the tail: chop into the job's synced finish record.
	segs := journalSegments(t, journalDir)
	size := segs[len(segs)-1]
	if err := journal.Truncate(journalDir, size-3); err != nil {
		t.Fatal(err)
	}

	s2, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatalf("torn tail must not be fatal: %v", err)
	}
	defer s2.journal.Close()
	if !s2.replayStats.Torn {
		t.Fatal("torn tail not reported by replay")
	}
	// The finish record is gone, so the job must recover as incomplete.
	if s2.RecoveredJobs() != 1 {
		t.Fatalf("recovered %d jobs, want 1", s2.RecoveredJobs())
	}
	j, ok := s2.job(view.ID)
	if !ok || j.currentState().Terminal() {
		t.Fatalf("job %s not recovered as incomplete (ok=%v)", view.ID, ok)
	}
}

// journalSegments returns the sizes of the journal's segment files in
// name order.
func journalSegments(t *testing.T, dir string) []int64 {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		info, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, info.Size())
	}
	if len(sizes) == 0 {
		t.Fatal("no journal segments")
	}
	return sizes
}

// TestDrainDropsStragglersForRecovery pins the graceful-shutdown
// contract: running jobs that outlive the grace period are dropped
// without a journaled terminal state, the clean-shutdown marker is
// written, and the next boot recovers the dropped jobs.
func TestDrainDropsStragglersForRecovery(t *testing.T) {
	journalDir, cacheDir := t.TempDir(), t.TempDir()

	s1, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	defer ts1.Close()

	// A job far larger than the grace period, plus one stuck behind it
	// in the queue.
	_, running := submitScenario(t, ts1, lineScenario("straggler", 2_000_000_000, 1))
	waitForState(t, ts1, running.ID, StateRunning)
	_, queued := submitScenario(t, ts1, lineScenario("queued-behind", 4_000, 1))

	rep := s1.Drain(50 * time.Millisecond)
	if rep.DroppedRunning != 1 || rep.DroppedQueued != 1 {
		t.Fatalf("drain report %+v, want 1 dropped running and 1 dropped queued", rep)
	}

	// Draining servers reject new submissions.
	if status, _ := submitScenario(t, ts1, lineScenario("late", 4_000, 1)); status != 503 {
		t.Fatalf("submission during drain: status %d, want 503", status)
	}

	s2, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.journal.Close()
	if !s2.cleanShutdown {
		t.Fatal("drain did not journal the clean-shutdown marker")
	}
	if s2.RecoveredJobs() != 2 {
		t.Fatalf("recovered %d jobs, want both dropped jobs", s2.RecoveredJobs())
	}
	for _, id := range []string{running.ID, queued.ID} {
		if j, ok := s2.job(id); !ok || j.currentState().Terminal() {
			t.Fatalf("dropped job %s not recovered as incomplete", id)
		}
	}
}

// TestSingleRunResumesFromCheckpoint pins the engine-checkpoint path
// end to end: a journaled server is crashed mid-simulation after it
// has written at least one checkpoint, and the restarted server
// resumes the recovered job from that checkpoint's slot — reporting
// the resume slot in the job view, producing a result byte-identical
// to an uninterrupted run, and dropping the checkpoint file once the
// job completes.
func TestSingleRunResumesFromCheckpoint(t *testing.T) {
	journalDir, cacheDir := t.TempDir(), t.TempDir()
	sc := lineScenario("ckpt-resume", 400_000, 1)

	c, err := sc.Compile()
	if err != nil {
		t.Fatal(err)
	}
	baseline, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(baseline)
	if err != nil {
		t.Fatal(err)
	}

	s1, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir, CheckpointEvery: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	ctx1, crash := context.WithCancel(context.Background())
	s1.Start(ctx1)
	ts1 := httptest.NewServer(s1.Handler())
	_, view := submitScenario(t, ts1, sc)

	// Crash once the run has persisted a checkpoint.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, err := os.Stat(s1.ckptPath(sc.Hash())); err == nil {
			break
		}
		if v := getJob(t, ts1, view.ID); v.State.Terminal() {
			t.Fatalf("job reached %s before a checkpoint was written", v.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("no checkpoint written before deadline")
		}
		time.Sleep(time.Millisecond)
	}
	crash()
	s1.Wait()
	ts1.Close()
	_ = s1.journal.Close()

	cp := s1.loadCheckpoint(sc.Hash())
	if cp == nil || cp.Slot <= 0 {
		t.Fatalf("no usable checkpoint on disk after crash: %+v", cp)
	}

	s2, err := New(Config{Workers: 1, JournalDir: journalDir, CacheDir: cacheDir, CheckpointEvery: 2_000})
	if err != nil {
		t.Fatal(err)
	}
	if s2.RecoveredJobs() != 1 {
		t.Fatalf("recovered %d jobs, want 1", s2.RecoveredJobs())
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()

	done := waitForState(t, ts2, view.ID, StateDone)
	if done.ResumedFromSlot != cp.Slot {
		t.Fatalf("resumedFromSlot=%d, want checkpoint slot %d", done.ResumedFromSlot, cp.Slot)
	}
	j, ok := s2.job(view.ID)
	if !ok {
		t.Fatalf("job %s missing after completion", view.ID)
	}
	j.mu.Lock()
	raw := append([]byte(nil), j.result...)
	j.mu.Unlock()
	if !bytes.Equal(raw, want) {
		t.Fatalf("resumed result diverges:\n got %s\nwant %s", raw, want)
	}
	if _, err := os.Stat(s2.ckptPath(sc.Hash())); !os.IsNotExist(err) {
		t.Fatalf("checkpoint file not dropped after completion: %v", err)
	}
	cancel2()
	s2.Wait()
	_ = s2.journal.Close()
}
