package server

// Runner is the worker side of the fleet tier: a stateless process
// that joins a coordinator (`dynschedd -join URL`), leases plan-unit
// batches, executes them on its local CPUs and streams the results
// back. It holds no queue, no cache directory and no journal — kill
// one and its leases expire on the coordinator, which re-grants the
// units elsewhere.
//
// Throughput shape:
//
//   - Batched leasing with an adaptive controller: each lease asks for
//     about two round-trips' worth of work per executor — computed
//     from the runner's own unit-duration histogram and an EWMA of the
//     lease RTT — clamped to [2×parallel, BatchMax]. Fast units on a
//     slow link grow the batch; slow units shrink it toward the fair
//     minimum so re-lease exposure stays small.
//   - Prefetch: the fetcher leases the next batch while executors
//     drain the current one, so executors never idle on the wire.
//   - Compressed, keep-alive reporting: results batch up and ship as
//     one gzip POST per flush on a warm connection; reports double as
//     lease renewals.
//   - A heartbeat at a third of the lease expiry keeps long batches
//     alive even when no report is due.

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dynsched"
	"dynsched/api"
	"dynsched/internal/metrics"
	"dynsched/internal/plan"
)

// RunnerConfig parameterises a fleet runner.
type RunnerConfig struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// ID names the runner on the fleet roster; empty derives
	// host.pid.
	ID string
	// Parallel is the executor goroutine count (0 = GOMAXPROCS).
	Parallel int
	// BatchMax caps one lease grant (0 = the protocol default, 64).
	BatchMax int
	// LeaseWait is the lease long-poll duration when the coordinator
	// has nothing pending (0 = 5s).
	LeaseWait time.Duration
	// ServiceFloor, when positive, is a per-unit minimum service time:
	// a freshly-executed unit that finishes faster is held until the
	// floor elapses. It models a fixed per-unit machine capacity when
	// many runners share one host (benchmarks, capacity rehearsals);
	// production runners leave it zero.
	ServiceFloor time.Duration
	// Registry, when set, receives the runner's instruments (the
	// plan-unit counters and duration histogram feeding the batch
	// controller, plus lease/report wire counters).
	Registry *metrics.Registry
}

// Runner executes leased plan units for one coordinator.
type Runner struct {
	cfg RunnerConfig
	hc  *http.Client
	pm  *plan.Metrics

	leases    *metrics.Counter
	leaseRTT  *metrics.Histogram
	unitsDone atomic.Int64

	// expiryMs is the coordinator's lease expiry, learned from every
	// lease/report/heartbeat response.
	expiryMs atomic.Int64
	// rttNs is the EWMA lease round-trip time.
	rttNs atomic.Int64
}

// NewRunner builds a runner for the coordinator at cfg.Coordinator.
func NewRunner(cfg RunnerConfig) *Runner {
	if cfg.Parallel <= 0 {
		cfg.Parallel = runtime.GOMAXPROCS(0)
	}
	if cfg.BatchMax <= 0 {
		cfg.BatchMax = defaultFleetBatchMax
	}
	if cfg.LeaseWait <= 0 {
		cfg.LeaseWait = 5 * time.Second
	}
	if cfg.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "runner"
		}
		cfg.ID = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	if cfg.Registry == nil {
		cfg.Registry = metrics.NewRegistry()
	}
	r := &Runner{
		cfg: cfg,
		hc: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: cfg.Parallel + 2,
			IdleConnTimeout:     90 * time.Second,
		}},
		pm:       plan.NewMetrics(cfg.Registry),
		leases:   cfg.Registry.Counter("dynsched_runner_leases_total", "Lease round-trips that granted at least one unit."),
		leaseRTT: cfg.Registry.Histogram("dynsched_runner_lease_rtt_seconds", "Lease request round-trip time.", metrics.ExpBuckets(0.0001, 2, 16)),
	}
	r.expiryMs.Store(defaultLeaseExpiry.Milliseconds())
	return r
}

// ID returns the runner's fleet roster name.
func (r *Runner) ID() string { return r.cfg.ID }

// UnitsDone returns how many units this runner has completed.
func (r *Runner) UnitsDone() int64 { return r.unitsDone.Load() }

// Run joins the fleet and executes units until ctx is cancelled.
// Transient coordinator errors (restart, drain window) are retried
// with backoff; the only non-nil return is ctx's error.
func (r *Runner) Run(ctx context.Context) error {
	unitCh := make(chan api.LeasedUnit, 2*r.cfg.Parallel)
	repCh := make(chan api.UnitReport, 2*r.cfg.Parallel)

	var wg sync.WaitGroup
	// Executors.
	for i := 0; i < r.cfg.Parallel; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range unitCh {
				rep := r.execute(ctx, u)
				select {
				case repCh <- rep:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	// Reporter: batch results, flush on a short timer, ship gzipped.
	done := make(chan struct{})
	go r.reportLoop(ctx, repCh, done)
	// Heartbeat: renew leases while executing long batches.
	hbCtx, hbCancel := context.WithCancel(ctx)
	go r.heartbeatLoop(hbCtx)

	// Fetcher (this goroutine): lease the next batch while executors
	// drain the buffered one.
	backoff := 50 * time.Millisecond
	for ctx.Err() == nil {
		units, err := r.leaseOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			sleepCtx(ctx, backoff)
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		for _, u := range units {
			select {
			case unitCh <- u:
			case <-ctx.Done():
			}
		}
	}
	close(unitCh)
	wg.Wait()
	close(repCh)
	<-done
	hbCancel()
	return ctx.Err()
}

// batchWant sizes the next lease request: about two round-trips of
// work per executor, from the measured mean unit time and the EWMA
// lease RTT, clamped to [2×parallel, BatchMax].
func (r *Runner) batchWant() int {
	lo := 2 * r.cfg.Parallel
	if lo < 1 {
		lo = 1
	}
	want := lo
	if n := r.pm.UnitSeconds.Count(); n > 0 {
		mean := r.pm.UnitSeconds.Sum() / float64(n)
		rtt := float64(r.rttNs.Load()) / float64(time.Second)
		if mean > 0 && rtt > 0 {
			want = int(math.Ceil(2 * rtt * float64(r.cfg.Parallel) / mean))
		}
	}
	if want < lo {
		want = lo
	}
	if want > r.cfg.BatchMax {
		want = r.cfg.BatchMax
	}
	return want
}

// leaseOnce performs one lease round-trip and updates the RTT EWMA.
func (r *Runner) leaseOnce(ctx context.Context) ([]api.LeasedUnit, error) {
	req := api.LeaseRequest{
		Runner: r.cfg.ID,
		Want:   r.batchWant(),
		WaitMs: r.cfg.LeaseWait.Milliseconds(),
	}
	started := time.Now()
	var resp api.LeaseResponse
	if err := r.post(ctx, "/v1/fleet/lease", req, &resp, false); err != nil {
		return nil, err
	}
	rtt := time.Since(started)
	if len(resp.Units) > 0 {
		// Only granted round-trips feed the EWMA: an empty long-poll's
		// wall time measures the coordinator's queue, not the wire.
		prev := r.rttNs.Load()
		if prev == 0 {
			r.rttNs.Store(int64(rtt))
		} else {
			r.rttNs.Store((3*prev + int64(rtt)) / 4)
		}
		r.leases.Inc()
	}
	if resp.ExpiryMs > 0 {
		r.expiryMs.Store(resp.ExpiryMs)
	}
	return resp.Units, nil
}

// execute runs one leased unit: consult the fleet unit cache first
// (unless the plan forbids it), then compile and simulate, holding the
// result to the configured service floor.
func (r *Runner) execute(ctx context.Context, u api.LeasedUnit) api.UnitReport {
	rep := api.UnitReport{Lease: u.Lease, Hash: u.Hash}
	if !u.NoCache {
		if data, ok := r.fetchCached(ctx, u.Hash); ok {
			rep.Result = data
			r.pm.UnitsCached.Inc()
			r.unitsDone.Add(1)
			return rep
		}
	}
	started := time.Now()
	res, err := r.runUnit(ctx, u)
	elapsed := time.Since(started)
	if err == nil && r.cfg.ServiceFloor > elapsed {
		sleepCtx(ctx, r.cfg.ServiceFloor-elapsed)
		elapsed = time.Since(started)
	}
	if err != nil {
		rep.Error = err.Error()
		r.pm.UnitsFailed.Inc()
		return rep
	}
	data, err := json.Marshal(res)
	if err != nil {
		rep.Error = fmt.Sprintf("marshaling result: %v", err)
		r.pm.UnitsFailed.Inc()
		return rep
	}
	rep.Result = data
	r.pm.UnitsRun.Inc()
	r.pm.UnitSeconds.Observe(elapsed.Seconds())
	r.unitsDone.Add(1)
	return rep
}

// runUnit compiles and simulates one unit's scenario.
func (r *Runner) runUnit(ctx context.Context, u api.LeasedUnit) (*dynsched.SimResult, error) {
	cs, err := u.Scenario.Compile()
	if err != nil {
		return nil, err
	}
	return cs.Run(ctx)
}

// fetchCached asks the coordinator's unit cache for an already-stored
// result.
func (r *Runner) fetchCached(ctx context.Context, hash string) (json.RawMessage, bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.cfg.Coordinator+"/v1/units/"+hash, nil)
	if err != nil {
		return nil, false
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxFleetBodyBytes))
	if err != nil {
		return nil, false
	}
	return data, true
}

// reportLoop batches finished units and ships them as gzip POSTs.
// Batching is greedy, not lingering: the first finished result ships at
// once, bundled with everything else already queued. Under load the
// batches grow by themselves — results pile up in the channel while
// the previous POST is in flight — and when the runner is trickling,
// each result merges immediately instead of sitting out a timer window
// (a fixed linger adds its full delay to every plan's tail on every
// runner). Failed ships retry with backoff until the lease would have
// expired anyway; the final partial batch flushes on channel close.
func (r *Runner) reportLoop(ctx context.Context, repCh <-chan api.UnitReport, done chan<- struct{}) {
	defer close(done)
	bound := maxInt(1, r.cfg.BatchMax/2)
	for {
		var batch []api.UnitReport
		select {
		case rep, ok := <-repCh:
			if !ok {
				return
			}
			batch = append(batch, rep)
		case <-ctx.Done():
			return
		}
	drain:
		for len(batch) < bound {
			select {
			case rep, ok := <-repCh:
				if !ok {
					r.ship(ctx, batch)
					return
				}
				batch = append(batch, rep)
			default:
				break drain
			}
		}
		r.ship(ctx, batch)
	}
}

// ship POSTs one report batch, retrying transient failures while the
// leases plausibly still stand.
func (r *Runner) ship(ctx context.Context, batch []api.UnitReport) {
	req := api.ReportRequest{Runner: r.cfg.ID, Results: batch}
	deadline := time.Now().Add(time.Duration(r.expiryMs.Load()) * time.Millisecond)
	backoff := 50 * time.Millisecond
	for {
		var resp api.ReportResponse
		err := r.post(ctx, "/v1/fleet/report", req, &resp, true)
		if err == nil {
			if resp.ExpiryMs > 0 {
				r.expiryMs.Store(resp.ExpiryMs)
			}
			return
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return
		}
		sleepCtx(ctx, backoff)
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
}

// heartbeatLoop renews the runner's leases at a third of the expiry.
func (r *Runner) heartbeatLoop(ctx context.Context) {
	for {
		period := time.Duration(r.expiryMs.Load()) * time.Millisecond / 3
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		if !sleepCtx(ctx, period) {
			return
		}
		var resp api.HeartbeatResponse
		if err := r.post(ctx, "/v1/fleet/heartbeat", api.HeartbeatRequest{Runner: r.cfg.ID}, &resp, false); err == nil && resp.ExpiryMs > 0 {
			r.expiryMs.Store(resp.ExpiryMs)
		}
	}
}

// post sends one JSON request to the coordinator, optionally
// gzip-compressing the body (reports carry batches of marshaled
// results — compression is where the wire savings are).
func (r *Runner) post(ctx context.Context, path string, in, out any, compress bool) error {
	payload, err := json.Marshal(in)
	if err != nil {
		return err
	}
	var body bytes.Buffer
	if compress {
		zw := gzip.NewWriter(&body)
		if _, err := zw.Write(payload); err != nil {
			return err
		}
		if err := zw.Close(); err != nil {
			return err
		}
	} else {
		body.Write(payload)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, r.cfg.Coordinator+path, &body)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept-Encoding", "gzip")
	if compress {
		req.Header.Set("Content-Encoding", "gzip")
	}
	resp, err := r.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var src io.Reader = resp.Body
	if resp.Header.Get("Content-Encoding") == "gzip" {
		zr, err := gzip.NewReader(src)
		if err != nil {
			return err
		}
		defer zr.Close()
		src = zr
	}
	data, err := io.ReadAll(io.LimitReader(src, maxFleetBodyBytes))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", path, resp.Status, bytes.TrimSpace(data))
	}
	return json.Unmarshal(data, out)
}

// sleepCtx sleeps for d, returning false if ctx was cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
