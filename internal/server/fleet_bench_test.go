package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynsched"
)

// benchServiceFloor models a fixed-capacity worker: every unit costs at
// least this much wall time on its runner, so sweep throughput is bound
// by fleet capacity (runners × parallel) rather than by the host's
// cores. That is the quantity this benchmark measures — coordinator
// dispatch and lease-protocol throughput as runners are added — and it
// is what makes the scaling curve meaningful on a single-core CI box.
const benchServiceFloor = 10 * time.Millisecond

// BenchmarkFleetSweep drives a 64-unit no-cache sweep through a
// dispatch-only coordinator with 1, 2 and 4 single-slot runners
// attached. With the per-unit service floor dominating unit cost, ideal
// scaling is linear in runner count; the acceptance floor is ≥3.2× at
// 4 runners over 1.
func BenchmarkFleetSweep(b *testing.B) {
	lambdas := make([]float64, 64)
	for i := range lambdas {
		lambdas[i] = 0.05 + 0.005*float64(i)
	}

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv, err := New(Config{Workers: 2, QueueDepth: 8, FleetLocal: -1, LeaseExpiry: 30 * time.Second})
			if err != nil {
				b.Fatal(err)
			}
			ctx, cancel := context.WithCancel(context.Background())
			srv.Start(ctx)
			// Defers run LIFO: close the listener, then cancel, then wait
			// for the workers the cancellation releases.
			defer srv.Wait()
			defer cancel()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			for i := 0; i < workers; i++ {
				r := NewRunner(RunnerConfig{
					Coordinator:  ts.URL,
					ID:           fmt.Sprintf("bench-%d", i),
					Parallel:     1,
					ServiceFloor: benchServiceFloor,
					LeaseWait:    200 * time.Millisecond,
				})
				go r.Run(ctx)
			}

			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				id := benchSubmitSweep(b, ts, fmt.Sprintf("fleet-bench-%d-%d", workers, n), lambdas)
				benchWaitDone(b, ts, id)
			}
			b.StopTimer()
			units := float64(64 * b.N)
			b.ReportMetric(units/b.Elapsed().Seconds(), "units/s")
		})
	}
}

func benchSubmitSweep(b *testing.B, ts *httptest.Server, name string, lambdas []float64) string {
	b.Helper()
	// Few slots: the unit's simulation cost must stay negligible against
	// the service floor, or a single-core host serializes on compute and
	// the scaling curve measures the CPU, not the fleet.
	sc := lineScenario(name, 100, 7)
	sc.Sweep = dynsched.SweepSpec{Axis: "lambda", Values: lambdas}
	doc, err := json.Marshal(sc)
	if err != nil {
		b.Fatal(err)
	}
	body := fmt.Sprintf(`{"scenario":%s,"noCache":true}`, doc)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		b.Fatalf("submit: %s", resp.Status)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		b.Fatal(err)
	}
	return view.ID
}

func benchWaitDone(b *testing.B, ts *httptest.Server, id string) {
	b.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			b.Fatal(err)
		}
		var view JobView
		err = json.NewDecoder(resp.Body).Decode(&view)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		switch view.State {
		case StateDone:
			return
		case StateFailed:
			b.Fatalf("benchmark job failed: %s", view.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("job %s did not finish (state %s)", id, view.State)
		}
		time.Sleep(time.Millisecond)
	}
}
