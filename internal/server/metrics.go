// The server's instrumentation: one metrics registry per Server (so
// tests and multi-server processes never share state), populated with
// the full catalog the daemon exposes at GET /metrics. Counters are
// incremented at the few points where the instrumented thing happens;
// occupancy readings (queue depth, busy workers, jobs by state, cache
// entries) are callback gauges evaluated at scrape time against the
// server's own bookkeeping, so there is no second copy of any state.
package server

import (
	"runtime"
	"time"

	"dynsched/internal/metrics"
	"dynsched/internal/plan"
	"dynsched/internal/sim"
)

// serverMetrics bundles every instrument the server writes, plus the
// engine and planner bundles it shares with the layers below.
type serverMetrics struct {
	reg  *metrics.Registry
	sim  *sim.EngineMetrics
	plan *plan.Metrics

	jobsSubmitted *metrics.CounterVec // kind: run|replicate|sweep|grid
	jobsFinished  *metrics.CounterVec // state: done|failed|cancelled

	cacheHitsMem   *metrics.Counter
	cacheHitsDisk  *metrics.Counter
	cacheMisses    *metrics.Counter
	cacheEvictMem  *metrics.Counter
	cacheEvictDisk *metrics.Counter

	journalAppends   *metrics.Counter
	journalFsyncs    *metrics.Counter
	checkpointWrites *metrics.Counter

	fleetLeases   *metrics.Counter    // lease grants (units, not round-trips)
	fleetReleases *metrics.Counter    // leases released by expiry or drain
	fleetReports  *metrics.CounterVec // outcome: merged|failed|rejected
	fleetBatch    *metrics.Histogram  // units per lease grant
}

// fleetLeased records one lease grant of n units.
func (m *serverMetrics) fleetLeased(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.fleetLeases.Add(uint64(n))
	m.fleetBatch.Observe(float64(n))
}

// fleetReleased records n leases released (expiry sweep or drain).
func (m *serverMetrics) fleetReleased(n int) {
	if m == nil || n <= 0 {
		return
	}
	m.fleetReleases.Add(uint64(n))
}

// fleetReport records one unit report by outcome (merged, failed —
// the remote execution errored — or rejected as stale).
func (m *serverMetrics) fleetReport(outcome string) {
	if m == nil {
		return
	}
	m.fleetReports.With(outcome).Inc()
}

// newServerMetrics builds the server's registry and registers the full
// catalog. The occupancy gauges close over s and read live state at
// scrape time; s's fields they touch (cache, queue, cfg) must already
// be set.
func newServerMetrics(s *Server) *serverMetrics {
	r := metrics.NewRegistry()
	m := &serverMetrics{
		reg:  r,
		sim:  sim.NewEngineMetrics(r),
		plan: plan.NewMetrics(r),

		jobsSubmitted: r.CounterVec("dynsched_jobs_submitted_total", "Jobs accepted for execution or served from cache, by plan kind.", "kind"),
		jobsFinished:  r.CounterVec("dynsched_jobs_finished_total", "Jobs that reached a terminal state, by outcome.", "state"),

		journalAppends:   r.Counter("dynsched_journal_appends_total", "Records appended to the job journal."),
		journalFsyncs:    r.Counter("dynsched_journal_fsyncs_total", "Journal appends that forced an fsync before returning."),
		checkpointWrites: r.Counter("dynsched_checkpoint_writes_total", "Engine checkpoints written to the on-disk checkpoint store."),
	}
	hits := r.CounterVec("dynsched_cache_hits_total", "Result-cache hits, by serving tier.", "tier")
	m.cacheHitsMem = hits.With("memory")
	m.cacheHitsDisk = hits.With("disk")
	m.cacheMisses = r.Counter("dynsched_cache_misses_total", "Result-cache lookups that found nothing in either tier.")
	evict := r.CounterVec("dynsched_cache_evictions_total", "Result-cache entries evicted, by tier.", "tier")
	m.cacheEvictMem = evict.With("memory")
	m.cacheEvictDisk = evict.With("disk")

	m.fleetLeases = r.Counter("dynsched_fleet_leases_total", "Plan units granted to fleet runners (re-grants included).")
	m.fleetReleases = r.Counter("dynsched_fleet_releases_total", "Fleet leases released by expiry or drain and returned to pending.")
	m.fleetReports = r.CounterVec("dynsched_fleet_reports_total", "Fleet unit reports, by outcome: merged, failed (remote execution error), rejected (stale lease).", "outcome")
	m.fleetBatch = r.Histogram("dynsched_fleet_batch_units", "Units per fleet lease grant.", metrics.ExpBuckets(1, 2, 10))

	r.GaugeFunc("dynsched_queue_depth", "Jobs waiting for a worker.", func() float64 {
		return float64(s.queueLen())
	})
	r.GaugeFunc("dynsched_queue_capacity", "Queue bound; submissions beyond it are rejected with 503.", func() float64 {
		return float64(s.cfg.QueueDepth)
	})
	r.GaugeFunc("dynsched_workers", "Simulation worker-pool size.", func() float64 {
		return float64(s.cfg.Workers)
	})
	r.GaugeFunc("dynsched_workers_busy", "Workers currently running a job.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.running))
	})
	jobs := r.GaugeVec("dynsched_jobs", "Registered jobs, by lifecycle state.", "state")
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCancelled} {
		st := st
		jobs.Func(func() float64 { return float64(s.jobsInState(st)) }, string(st))
	}
	r.GaugeFunc("dynsched_cache_entries", "Result-cache entries held in memory.", func() float64 {
		return float64(s.cache.Len())
	})
	r.GaugeFunc("dynsched_cache_disk_entries", "Result-cache entries in the disk spill directory.", func() float64 {
		return float64(s.cache.DiskLen())
	})
	diskBytes := r.GaugeVec("dynsched_cache_disk_bytes", "Result-cache disk spill size: compressed bytes on disk vs the raw document bytes they decompress to.", "kind")
	diskBytes.Func(func() float64 { _, c := s.cache.DiskBytes(); return float64(c) }, "compressed")
	diskBytes.Func(func() float64 { raw, _ := s.cache.DiskBytes(); return float64(raw) }, "raw")
	r.GaugeFunc("dynsched_fleet_runners", "Runners on the fleet roster (heartbeated within the forget window).", func() float64 {
		n, _, _ := s.fleet.occupancy()
		return float64(n)
	})
	r.GaugeFunc("dynsched_fleet_pending_units", "Plan units parked awaiting a lease or a local slot.", func() float64 {
		_, n, _ := s.fleet.occupancy()
		return float64(n)
	})
	r.GaugeFunc("dynsched_fleet_leased_units", "Plan units currently out on a fleet lease.", func() float64 {
		_, _, n := s.fleet.occupancy()
		return float64(n)
	})
	r.GaugeFunc("dynsched_recovered_jobs", "Incomplete jobs re-enqueued from the journal at startup.", func() float64 {
		return float64(s.recovered)
	})
	start := time.Now()
	r.GaugeFunc("dynsched_uptime_seconds", "Seconds since this server was built.", func() float64 {
		return time.Since(start).Seconds()
	})
	r.GaugeFunc("go_goroutines", "Goroutines in the process.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	return m
}

// jobsInState counts registered jobs in the given state (a scrape-time
// walk; the registry is bounded by MaxJobs).
func (s *Server) jobsInState(st State) int {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	n := 0
	for _, j := range jobs {
		if j.currentState() == st {
			n++
		}
	}
	return n
}

// markFinished counts a job reaching a terminal state.
func (s *Server) markFinished(st State) {
	s.metrics.jobsFinished.With(string(st)).Inc()
}
