package server

import (
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestServerConcurrentSubmitCancel hammers the service with parallel
// submissions, duplicate specs, event streamers and racing
// cancellations. It asserts nothing deadlocks and every job reaches a
// terminal state; under -race (CI runs the suite that way) it is also
// the data-race gate for the queue, cache, and event plumbing.
func TestServerConcurrentSubmitCancel(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 4, QueueDepth: 64, ProgressEvery: 500})

	const (
		longJobs = 8 // effectively infinite; must be cancelled
		dupJobs  = 8 // one shared small spec; exercises the cache path
		fastJobs = 4 // distinct small specs run to completion
	)
	ids := make(chan string, longJobs+dupJobs+fastJobs)
	var wg sync.WaitGroup

	for i := 0; i < longJobs; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			status, job := submitScenario(t, ts, lineScenario("race-long", 500_000_000, seed))
			if status != http.StatusAccepted {
				t.Errorf("long submission status %d", status)
				return
			}
			// Cancel while queued or running — whichever the race picks.
			time.Sleep(time.Duration(seed) * time.Millisecond)
			if err := deleteJob(ts, job.ID); err != nil {
				t.Error(err)
				return
			}
			ids <- job.ID
		}(int64(i + 1))
	}
	for i := 0; i < dupJobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			status, job := submitScenario(t, ts, lineScenario("race-dup", 3_000, 99))
			if status != http.StatusAccepted && status != http.StatusOK {
				t.Errorf("duplicate submission status %d", status)
				return
			}
			// Follow the stream concurrently with the run.
			events := streamEvents(t, ts, job.ID)
			if len(events) == 0 {
				t.Error("empty event stream")
			}
			ids <- job.ID
		}()
	}
	for i := 0; i < fastJobs; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			status, job := submitScenario(t, ts, lineScenario("race-fast", 2_000, seed))
			if status != http.StatusAccepted && status != http.StatusOK {
				t.Errorf("fast submission status %d", status)
				return
			}
			ids <- job.ID
		}(int64(i + 100))
	}
	wg.Wait()
	close(ids)

	deadline := time.Now().Add(30 * time.Second)
	for id := range ids {
		for {
			view := getJob(t, ts, id)
			if view.State.Terminal() {
				if view.State == StateFailed {
					t.Errorf("job %s failed: %s", id, view.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("job %s never reached a terminal state (stuck %s)", id, view.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
