package metrics

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text exposition format — HELP and
// TYPE comments, label rendering and escaping, cumulative histogram
// buckets with the +Inf terminator, sorted family order — against a
// hand-written document. Scrapers (and the dynschedctl parser) depend
// on this exact shape.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_requests_total", "Requests served.").Add(3)
	cv := r.CounterVec("test_hits_total", "Hits by tier.", "tier")
	cv.With("memory").Add(5)
	cv.With("disk").Inc()
	r.Gauge("test_depth", "Queue depth.").Set(7)
	r.GaugeFunc("test_workers", "Workers.", func() float64 { return 4 })
	gv := r.GaugeVec("test_jobs", "Jobs by state.", "state")
	gv.With("queued").Set(2)
	gv.Func(func() float64 { return 1.5 }, "running")
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(100)
	// A label value needing escaping.
	r.CounterVec("test_weird_total", `Help with \backslash.`, "path").With("a\"b\\c\nd").Inc()

	want := strings.Join([]string{
		`# HELP test_depth Queue depth.`,
		`# TYPE test_depth gauge`,
		`test_depth 7`,
		`# HELP test_hits_total Hits by tier.`,
		`# TYPE test_hits_total counter`,
		`test_hits_total{tier="memory"} 5`,
		`test_hits_total{tier="disk"} 1`,
		`# HELP test_jobs Jobs by state.`,
		`# TYPE test_jobs gauge`,
		`test_jobs{state="queued"} 2`,
		`test_jobs{state="running"} 1.5`,
		`# HELP test_latency_seconds Latency.`,
		`# TYPE test_latency_seconds histogram`,
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 3`,
		`test_latency_seconds_bucket{le="10"} 3`,
		`test_latency_seconds_bucket{le="+Inf"} 4`,
		`test_latency_seconds_sum 101.05`,
		`test_latency_seconds_count 4`,
		`# HELP test_requests_total Requests served.`,
		`# TYPE test_requests_total counter`,
		`test_requests_total 3`,
		`# HELP test_weird_total Help with \\backslash.`,
		`# TYPE test_weird_total counter`,
		`test_weird_total{path="a\"b\\c\nd"} 1`,
		`# HELP test_workers Workers.`,
		`# TYPE test_workers gauge`,
		`test_workers 4`,
	}, "\n") + "\n"

	if got := r.Text(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestHandler asserts the HTTP surface: content type, method guard,
// and that the body is the exposition document.
func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("test_one_total", "One.").Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "test_one_total 1") {
		t.Errorf("body missing series:\n%s", body)
	}

	post, err := ts.Client().Post(ts.URL, "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Errorf("POST status %d, want 405", post.StatusCode)
	}
}

// TestHistogramBucketBoundaries pins the le semantics at the edges: a
// value exactly on a bound belongs to that bound's bucket (le is <=),
// below the first bound lands in the first bucket, and above the last
// bound only in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_edges", "Edges.", []float64{1, 2, 4})
	for _, v := range []float64{0, 1, 1.0000001, 2, 4, 4.5} {
		h.Observe(v)
	}
	text := r.Text()
	for _, want := range []string{
		`test_edges_bucket{le="1"} 2`,    // 0 and exactly 1
		`test_edges_bucket{le="2"} 4`,    // + 1.0000001 and exactly 2
		`test_edges_bucket{le="4"} 5`,    // + exactly 4
		`test_edges_bucket{le="+Inf"} 6`, // + 4.5
		`test_edges_count 6`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	if h.Count() != 6 {
		t.Errorf("count %d, want 6", h.Count())
	}
	// The sum accumulates left to right; compare with tolerance since
	// float addition is not associative.
	if got, want := h.Sum(), 0+1+1.0000001+2+4+4.5; got < want-1e-9 || got > want+1e-9 {
		t.Errorf("sum %v, want ~%v", got, want)
	}
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race (CI does) this pins
// the lock-free write paths, and the final counts pin that no
// increment is lost.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_c_total", "c")
	cv := r.CounterVec("test_cv_total", "cv", "who")
	g := r.Gauge("test_g", "g")
	h := r.Histogram("test_h", "h", ExpBuckets(0.001, 2, 10))

	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			lab := []string{"even", "odd"}[w%2]
			for i := 0; i < per; i++ {
				c.Inc()
				cv.With(lab).Inc()
				g.Add(1)
				h.Observe(float64(i%100) / 100)
			}
		}(w)
	}
	wg.Wait()

	if c.Value() != workers*per {
		t.Errorf("counter %d, want %d", c.Value(), workers*per)
	}
	if got := cv.With("even").Value() + cv.With("odd").Value(); got != workers*per {
		t.Errorf("vec total %d, want %d", got, workers*per)
	}
	if g.Value() != workers*per {
		t.Errorf("gauge %v, want %d", g.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Errorf("histogram count %d, want %d", h.Count(), workers*per)
	}
}

// TestIdempotentRegistration pins that re-creating an instrument by
// name returns the same underlying instrument.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_same_total", "same")
	a.Add(2)
	b := r.Counter("test_same_total", "same")
	if b.Value() != 2 {
		t.Errorf("re-registration returned a fresh counter (value %d)", b.Value())
	}
	h1 := r.Histogram("test_same_h", "h", []float64{1, 2})
	h1.Observe(1)
	h2 := r.Histogram("test_same_h", "h", []float64{1, 2})
	if h2.Count() != 1 {
		t.Errorf("re-registered histogram lost observations")
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(0.5, 2, 4)
	want := []float64{0.5, 1, 2, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}
