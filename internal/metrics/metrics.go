// Package metrics is a dependency-free instrumentation layer:
// lock-free counters, gauges and fixed-bucket histograms collected in
// a Registry and exposed in the Prometheus text format (# HELP/# TYPE
// comments, label support, cumulative histogram buckets).
//
// The package deliberately implements only what the daemon needs — no
// summaries, no exemplars, no push — so the whole stack can be
// instrumented without importing anything outside the standard
// library. All write paths are single atomic operations (a histogram
// observation is two), so instruments can sit on the simulation hot
// path: incrementing a counter never allocates, never locks, and is
// safe from any number of goroutines.
//
// Instruments are created through a Registry and identified by name;
// creating the same name twice returns the existing instrument (a
// type mismatch panics — that is a programming error, not a runtime
// condition). Families with labels are declared as vecs
// (CounterVec/GaugeVec) whose children are addressed by label values.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// A kind is the exposition TYPE of a metric family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down. It stores a float64 so it
// can carry ratios as well as counts.
type Gauge struct {
	bits atomic.Uint64
	fn   func() float64 // non-nil for callback-backed gauges
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the gauge's current value, consulting the callback for
// callback-backed gauges.
func (g *Gauge) Value() float64 {
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed, pre-declared buckets plus
// an implicit +Inf bucket, tracking the observation sum alongside. An
// observation is a binary search and two atomic adds — no locks, no
// allocation — so histograms can time hot-path work when sampled.
type Histogram struct {
	bounds []float64 // sorted upper bounds, exclusive of +Inf
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
	count  atomic.Uint64
}

// Observe records one value: it lands in the first bucket whose upper
// bound is >= v (Prometheus `le` semantics), or +Inf beyond the last.
func (h *Histogram) Observe(v float64) {
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(h.bounds) {
		h.counts[lo].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// ExpBuckets returns n exponentially spaced bucket bounds starting at
// start and multiplying by factor: the standard shape for latency
// histograms. start must be positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("metrics: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// child is one labelled instrument of a family.
type child struct {
	labelValues []string
	counter     *Counter
	gauge       *Gauge
	hist        *Histogram
}

// family is one named metric with its help text, type, label names and
// children (exactly one, unlabelled, for plain instruments).
type family struct {
	name       string
	help       string
	kind       kind
	labelNames []string

	mu       sync.Mutex
	children map[string]*child // keyed by joined label values
	order    []string
}

// Registry holds a set of metric families and renders them as
// Prometheus text. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup returns the family, creating it on first use and panicking on
// a kind or label-arity mismatch with an earlier registration.
func (r *Registry) lookup(name, help string, k kind, labels []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: k, labelNames: labels, children: map[string]*child{}}
		r.families[name] = f
		return f
	}
	if f.kind != k || len(f.labelNames) != len(labels) {
		panic(fmt.Sprintf("metrics: %s re-registered as %s with %d label(s), was %s with %d",
			name, k, len(labels), f.kind, len(f.labelNames)))
	}
	return f
}

// child returns the family's instrument for the given label values,
// creating it on first use.
func (f *family) child(values []string) *child {
	if len(values) != len(f.labelNames) {
		panic(fmt.Sprintf("metrics: %s needs %d label value(s), got %d", f.name, len(f.labelNames), len(values)))
	}
	key := strings.Join(values, "\x00")
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.children[key]
	if !ok {
		c = &child{labelValues: append([]string(nil), values...)}
		switch f.kind {
		case kindCounter:
			c.counter = &Counter{}
		case kindGauge:
			c.gauge = &Gauge{}
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// Counter returns the registry's counter with this name, creating it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	return r.lookup(name, help, kindCounter, nil).child(nil).counter
}

// Gauge returns the registry's settable gauge with this name.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.lookup(name, help, kindGauge, nil).child(nil).gauge
}

// GaugeFunc registers a gauge whose value is read from f at exposition
// time — the natural shape for "current depth/occupancy" readings that
// already live in the instrumented component.
func (r *Registry) GaugeFunc(name, help string, f func() float64) {
	r.lookup(name, help, kindGauge, nil).child(nil).gauge.fn = f
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec returns the labelled counter family with this name.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.lookup(name, help, kindCounter, labelNames)}
}

// With returns the child counter for the given label values.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues).counter
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec returns the labelled gauge family with this name.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.lookup(name, help, kindGauge, labelNames)}
}

// With returns the child gauge for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues).gauge
}

// Func registers a callback-backed child gauge for the label values.
func (v *GaugeVec) Func(f func() float64, labelValues ...string) {
	v.f.child(labelValues).gauge.fn = f
}

// Histogram returns the registry's histogram with this name, creating
// it with the given bucket upper bounds on first use (later calls
// reuse the existing buckets; bounds must be sorted ascending).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("metrics: %s bucket bounds are not sorted", name))
	}
	f := r.lookup(name, help, kindHistogram, nil)
	c := f.child(nil)
	f.mu.Lock()
	defer f.mu.Unlock()
	if c.hist == nil {
		c.hist = &Histogram{
			bounds: append([]float64(nil), buckets...),
			counts: make([]atomic.Uint64, len(buckets)),
		}
	}
	return c.hist
}

// WriteText renders every family in the Prometheus text exposition
// format: families sorted by name, children in creation order, each
// family preceded by its # HELP and # TYPE comments.
func (r *Registry) WriteText(w *strings.Builder) {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, f := range fams {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		for _, key := range f.order {
			c := f.children[key]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s%s %d\n", f.name, renderLabels(f.labelNames, c.labelValues), c.counter.Value())
			case kindGauge:
				fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(f.labelNames, c.labelValues), formatFloat(c.gauge.Value()))
			case kindHistogram:
				h := c.hist
				cum := uint64(0)
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", f.name, formatFloat(bound), cum)
				}
				cum += h.inf.Load()
				fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", f.name, cum)
				fmt.Fprintf(w, "%s_sum %s\n", f.name, formatFloat(h.Sum()))
				fmt.Fprintf(w, "%s_count %d\n", f.name, h.Count())
			}
		}
		f.mu.Unlock()
	}
}

// Text returns the registry's full exposition document.
func (r *Registry) Text() string {
	var b strings.Builder
	r.WriteText(&b)
	return b.String()
}

// Handler returns an http.Handler serving the exposition document —
// mount it at GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(r.Text()))
	})
}

// renderLabels renders {k="v",...}, or nothing for unlabelled
// instruments.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes a help string per the exposition format.
func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// formatFloat renders a float the way Prometheus does: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
