// Package plot renders time series and histograms as compact ASCII
// charts for the command-line tools — enough to see a queue explode or
// a latency tail without leaving the terminal.
package plot

import (
	"fmt"
	"math"
	"strings"

	"dynsched/internal/stats"
)

// blocks are the eighth-height bar glyphs, lowest to highest.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders values as a one-line unicode sparkline of at most
// width cells (values are bucketed by mean when longer).
func Sparkline(values []float64, width int) string {
	if len(values) == 0 || width < 1 {
		return ""
	}
	cells := resample(values, width)
	lo, hi := cells[0], cells[0]
	for _, v := range cells {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range cells {
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-1))
		} else if hi > 0 {
			idx = len(blocks) - 1
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// resample buckets values into exactly width cells by averaging.
func resample(values []float64, width int) []float64 {
	if len(values) <= width {
		out := make([]float64, len(values))
		copy(out, values)
		return out
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		start := i * len(values) / width
		end := (i + 1) * len(values) / width
		if end == start {
			end = start + 1
		}
		sum := 0.0
		for _, v := range values[start:end] {
			sum += v
		}
		out[i] = sum / float64(end-start)
	}
	return out
}

// Series renders a labelled sparkline with min/max annotations.
func Series(label string, s *stats.Series, width int) string {
	if s.Len() == 0 {
		return fmt.Sprintf("%s: (no samples)", label)
	}
	return fmt.Sprintf("%s: %s  [%.1f .. %.1f]",
		label, Sparkline(s.V, width), minOf(s.V), stats.Max(s.V))
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs[1:] {
		m = math.Min(m, x)
	}
	return m
}

// Histogram renders a vertical-bar summary of quantiles.
func Histogram(label string, h *stats.Histogram, width int) string {
	if h.N() == 0 {
		return fmt.Sprintf("%s: (no samples)", label)
	}
	qs := make([]float64, width)
	for i := range qs {
		qs[i] = h.Quantile(float64(i+1) / float64(width+1))
	}
	return fmt.Sprintf("%s: %s  p50=%.0f p99=%.0f max=%.0f",
		label, Sparkline(qs, width), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}
