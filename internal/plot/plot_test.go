package plot

import (
	"strings"
	"testing"
	"unicode/utf8"

	"dynsched/internal/stats"
)

func TestSparklineBasics(t *testing.T) {
	if got := Sparkline(nil, 10); got != "" {
		t.Errorf("empty input produced %q", got)
	}
	if got := Sparkline([]float64{1, 2, 3}, 0); got != "" {
		t.Errorf("zero width produced %q", got)
	}
	// Monotone ramp: last glyph strictly taller than first.
	ramp := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	runes := []rune(ramp)
	if len(runes) != 8 {
		t.Fatalf("ramp has %d cells, want 8", len(runes))
	}
	if runes[0] == runes[len(runes)-1] {
		t.Errorf("ramp endpoints identical: %q", ramp)
	}
	// Constant positive series: full blocks.
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if !strings.Contains(flat, "█") {
		t.Errorf("constant positive series rendered %q", flat)
	}
	// Constant zero series: spaces (lowest glyph).
	zero := Sparkline([]float64{0, 0}, 2)
	if strings.ContainsRune(zero, '█') {
		t.Errorf("zero series rendered %q", zero)
	}
}

func TestSparklineResamples(t *testing.T) {
	long := make([]float64, 1000)
	for i := range long {
		long[i] = float64(i)
	}
	s := Sparkline(long, 20)
	if utf8.RuneCountInString(s) != 20 {
		t.Fatalf("resampled width %d, want 20", utf8.RuneCountInString(s))
	}
}

func TestSeriesRendering(t *testing.T) {
	var s stats.Series
	for i := 0; i < 50; i++ {
		s.Append(float64(i), float64(i%7))
	}
	out := Series("queue", &s, 16)
	if !strings.HasPrefix(out, "queue: ") {
		t.Errorf("missing label: %q", out)
	}
	if !strings.Contains(out, "[0.0 .. 6.0]") {
		t.Errorf("missing range annotation: %q", out)
	}
	var empty stats.Series
	if out := Series("x", &empty, 8); !strings.Contains(out, "no samples") {
		t.Errorf("empty series rendered %q", out)
	}
}

func TestHistogramRendering(t *testing.T) {
	h := stats.NewHistogram(1, 100)
	for i := 0; i < 200; i++ {
		h.Add(float64(i % 50))
	}
	out := Histogram("latency", h, 12)
	if !strings.Contains(out, "p50=") || !strings.Contains(out, "p99=") {
		t.Errorf("missing quantiles: %q", out)
	}
	empty := stats.NewHistogram(1, 4)
	if out := Histogram("x", empty, 4); !strings.Contains(out, "no samples") {
		t.Errorf("empty histogram rendered %q", out)
	}
}
