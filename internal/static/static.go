// Package static implements algorithms for the static scheduling
// problem: given a set of single-hop transmission requests with
// interference measure I, deliver all of them in few time slots. The
// paper's dynamic protocol (package core) is a black-box transformation
// over any such algorithm, parameterised only by its schedule-length
// contract f(m)·I + g(m, n).
//
// Algorithms are exposed as slot-steppable executions so the dynamic
// protocol can interleave them with packet injection: each slot the
// execution names the requests that transmit, and afterwards it observes
// which of them were received (acknowledgement-based feedback only).
package static

import (
	"fmt"
	"math/rand"

	"dynsched/internal/interference"
)

// Request is a single-hop transmission demand on a link. Tag is opaque
// caller context (typically a packet ID).
type Request struct {
	Link int
	Tag  int64
}

// Execution is a running instance of a static algorithm, advanced one
// slot at a time by the caller.
type Execution interface {
	// Attempts returns the indices (into the request slice the execution
	// was created with) of the requests transmitting this slot. Indices
	// must be distinct; two returned requests may share a link, in which
	// case the model will fail both (link capacity one). The returned
	// slice is only valid until the next Attempts call — executions may
	// reuse it.
	Attempts(rng *rand.Rand) []int
	// Observe reports the outcome for each index returned by Attempts.
	Observe(attempted []int, success []bool)
	// Done reports whether every request has been served.
	Done() bool
	// Remaining returns the number of unserved requests.
	Remaining() int
}

// Algorithm constructs executions and advertises its schedule-length
// contract.
type Algorithm interface {
	// Name identifies the algorithm in experiment output.
	Name() string
	// NewExecution starts the algorithm on the given requests.
	NewExecution(m interference.Model, reqs []Request) Execution
	// Budget returns a slot budget within which the algorithm delivers
	// all requests with high probability, for a network with numLinks
	// links, interference measure at most meas, and at most n requests.
	// This is the f(m)·I + g(m,n) contract the dynamic protocol sizes
	// its time frames with.
	Budget(numLinks int, meas float64, n int) int
}

// Recycler is an optional Algorithm extension for hot callers that
// start executions at a steady cadence (the dynamic protocol starts two
// per frame). RecycleExecution has the semantics of NewExecution, but
// may rebuild into the buffers of prev — an execution previously
// returned by the same algorithm that the caller no longer uses. The
// returned execution behaves identically to a fresh one (same state,
// same randomness consumption); only the allocations differ. A nil or
// foreign prev falls back to a fresh execution.
type Recycler interface {
	Algorithm
	RecycleExecution(prev Execution, m interference.Model, reqs []Request) Execution
}

// MeasureBounded is implemented by algorithms that can run against a
// declared interference-measure bound instead of inspecting the request
// set. This is the distributed-fidelity hook: the paper's dynamic
// protocol executes A(J, m·J) — the parameter J = (1+ε)λT is known to
// every node from the static deployment data (λ, ε, T), whereas the
// actual measure of the live request set is global information no
// distributed node could compute.
type MeasureBounded interface {
	Algorithm
	// WithMeasureBound returns a variant of the algorithm that assumes
	// the instance measure is at most meas.
	WithMeasureBound(meas float64) Algorithm
}

// Result summarises a standalone run of a static algorithm.
type Result struct {
	// Served[i] reports whether request i was delivered.
	Served []bool
	// Slots is the number of slots consumed (up to the budget).
	Slots int
	// Attempts counts individual transmission attempts.
	Attempts int64
}

// AllServed reports whether every request was delivered.
func (r Result) AllServed() bool {
	for _, ok := range r.Served {
		if !ok {
			return false
		}
	}
	return true
}

// NumServed returns the number of delivered requests.
func (r Result) NumServed() int {
	c := 0
	for _, ok := range r.Served {
		if ok {
			c++
		}
	}
	return c
}

// Run drives an execution to completion against the model, spending at
// most maxSlots slots (maxSlots ≤ 0 means the algorithm's own budget).
func Run(rng *rand.Rand, m interference.Model, alg Algorithm, reqs []Request, maxSlots int) Result {
	if maxSlots <= 0 {
		meas := RequestMeasure(m, reqs)
		maxSlots = alg.Budget(m.NumLinks(), meas, len(reqs))
	}
	exec := alg.NewExecution(m, reqs)
	res := Result{Served: make([]bool, len(reqs))}
	resolve := interference.ResolveFunc(m)
	var tx []int
	for res.Slots < maxSlots && !exec.Done() {
		attempted := exec.Attempts(rng)
		res.Slots++
		if len(attempted) == 0 {
			continue
		}
		res.Attempts += int64(len(attempted))
		if cap(tx) < len(attempted) {
			tx = make([]int, len(attempted), 2*len(attempted))
		}
		tx = tx[:len(attempted)]
		for i, idx := range attempted {
			tx[i] = reqs[idx].Link
		}
		success := resolve(tx)
		exec.Observe(attempted, success)
		for i, idx := range attempted {
			if success[i] {
				res.Served[idx] = true
			}
		}
	}
	return res
}

// RequestMeasure computes the interference measure ‖W·R‖∞ of a request
// multiset.
func RequestMeasure(m interference.Model, reqs []Request) float64 {
	r := make([]int, m.NumLinks())
	for _, q := range reqs {
		if q.Link < 0 || q.Link >= len(r) {
			panic(fmt.Sprintf("static: request link %d out of range [0,%d)", q.Link, len(r)))
		}
		r[q.Link]++
	}
	return interference.Measure(m, r)
}

// pendingSet tracks unserved request indices grouped by link, with O(1)
// random selection and removal per link. It is the common bookkeeping of
// the randomized algorithms.
type pendingSet struct {
	byLink  [][]int // link → indices of pending requests
	pos     []int   // request index → position within its link slice, -1 when served
	links   []int   // request index → link
	pending int
}

func newPendingSet(numLinks int, reqs []Request) *pendingSet {
	p := &pendingSet{}
	p.reset(numLinks, reqs)
	return p
}

// reset rebuilds the set for a new request batch, reusing every buffer
// that is large enough. The resulting state is identical to a freshly
// constructed set.
func (p *pendingSet) reset(numLinks int, reqs []Request) {
	if cap(p.byLink) < numLinks {
		p.byLink = make([][]int, numLinks)
	} else {
		p.byLink = p.byLink[:numLinks]
		for i := range p.byLink {
			p.byLink[i] = p.byLink[i][:0]
		}
	}
	p.pos = resizeInts(p.pos, len(reqs))
	p.links = resizeInts(p.links, len(reqs))
	p.pending = len(reqs)
	for i, q := range reqs {
		p.links[i] = q.Link
		p.pos[i] = len(p.byLink[q.Link])
		p.byLink[q.Link] = append(p.byLink[q.Link], i)
	}
}

// resizeInts returns buf resized to n entries (contents unspecified),
// reallocating only when the capacity is insufficient. Growth is
// geometric (at least double), so a buffer resized to a slowly climbing
// n across frames reallocates O(log n) times rather than once per
// frame.
func resizeInts(buf []int, n int) []int {
	if cap(buf) < n {
		c := 2 * cap(buf)
		if c < n {
			c = n
		}
		return make([]int, n, c)
	}
	return buf[:n]
}

// remove marks request idx as served.
func (p *pendingSet) remove(idx int) {
	if p.pos[idx] < 0 {
		return
	}
	link := p.links[idx]
	slice := p.byLink[link]
	at := p.pos[idx]
	last := len(slice) - 1
	slice[at] = slice[last]
	p.pos[slice[at]] = at
	p.byLink[link] = slice[:last]
	p.pos[idx] = -1
	p.pending--
}

// countOn returns the number of pending requests on link e.
func (p *pendingSet) countOn(e int) int { return len(p.byLink[e]) }

// pickOn returns k distinct pending request indices on link e chosen
// uniformly at random (k clamped to the pending count).
func (p *pendingSet) pickOn(rng *rand.Rand, e, k int) []int {
	slice := p.byLink[e]
	if k > len(slice) {
		k = len(slice)
	}
	if k == 0 {
		return nil
	}
	if k == 1 {
		return []int{slice[rng.Intn(len(slice))]}
	}
	// Partial Fisher–Yates over a copy of the first positions.
	idxs := rng.Perm(len(slice))[:k]
	out := make([]int, k)
	for i, j := range idxs {
		out[i] = slice[j]
	}
	return out
}
