package static

import (
	"math/rand"

	"dynsched/internal/interference"
)

// Trivial serves requests one at a time in round-robin order. It is the
// fallback that works in every interference model (a lone transmission
// always succeeds when noise permits) and the building block of the
// multiple-access-channel baseline: schedule length exactly n.
type Trivial struct{}

var (
	_ Algorithm = Trivial{}
	_ Recycler  = Trivial{}
)

// Name implements Algorithm.
func (Trivial) Name() string { return "trivial" }

// Budget implements Algorithm: one slot per request plus retries.
func (Trivial) Budget(numLinks int, meas float64, n int) int {
	if n == 0 {
		return 1
	}
	return 2*n + 8
}

// NewExecution implements Algorithm.
func (Trivial) NewExecution(m interference.Model, reqs []Request) Execution {
	return &trivialExec{n: len(reqs), served: make([]bool, len(reqs))}
}

// RecycleExecution implements Recycler.
func (t Trivial) RecycleExecution(prev Execution, m interference.Model, reqs []Request) Execution {
	e, ok := prev.(*trivialExec)
	if !ok || e == nil {
		return t.NewExecution(m, reqs)
	}
	if cap(e.served) < len(reqs) {
		e.served = make([]bool, len(reqs))
	} else {
		e.served = e.served[:len(reqs)]
		for i := range e.served {
			e.served[i] = false
		}
	}
	e.n, e.next, e.left, e.init = len(reqs), 0, 0, false
	return e
}

type trivialExec struct {
	n      int
	next   int
	served []bool
	left   int
	init   bool
}

func (e *trivialExec) Done() bool {
	if !e.init {
		return e.n == 0
	}
	return e.left == 0
}

func (e *trivialExec) Remaining() int {
	if !e.init {
		return e.n
	}
	return e.left
}

func (e *trivialExec) Attempts(rng *rand.Rand) []int {
	if !e.init {
		e.left = e.n
		e.init = true
	}
	if e.left == 0 {
		return nil
	}
	for i := 0; i < e.n; i++ {
		idx := (e.next + i) % e.n
		if !e.served[idx] {
			e.next = (idx + 1) % e.n
			return []int{idx}
		}
	}
	return nil
}

func (e *trivialExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if success[i] && !e.served[idx] {
			e.served[idx] = true
			e.left--
		}
	}
}

// FullParallel fires the head-of-line request of every link in every
// slot. It is the optimal algorithm for the packet-routing (identity)
// model, where the schedule length equals the congestion I, and serves
// as the single-hop algorithm behind the λ < 1 packet-routing protocol
// of Section 7.
type FullParallel struct{}

var (
	_ Algorithm = FullParallel{}
	_ Recycler  = FullParallel{}
)

// Name implements Algorithm.
func (FullParallel) Name() string { return "full-parallel" }

// Budget implements Algorithm: congestion many slots, with slack for
// models that are not exactly the identity.
func (FullParallel) Budget(numLinks int, meas float64, n int) int {
	if meas < 1 {
		meas = 1
	}
	return int(meas) + 4
}

// NewExecution implements Algorithm.
func (FullParallel) NewExecution(m interference.Model, reqs []Request) Execution {
	return &fullParallelExec{pending: newPendingSet(m.NumLinks(), reqs)}
}

// RecycleExecution implements Recycler.
func (f FullParallel) RecycleExecution(prev Execution, m interference.Model, reqs []Request) Execution {
	e, ok := prev.(*fullParallelExec)
	if !ok || e == nil {
		return f.NewExecution(m, reqs)
	}
	e.pending.reset(m.NumLinks(), reqs)
	return e
}

type fullParallelExec struct {
	pending *pendingSet
	scratch []int // Attempts result buffer, reused across slots
}

func (e *fullParallelExec) Done() bool     { return e.pending.pending == 0 }
func (e *fullParallelExec) Remaining() int { return e.pending.pending }

func (e *fullParallelExec) Attempts(rng *rand.Rand) []int {
	out := e.scratch[:0]
	for link := range e.pending.byLink {
		if n := e.pending.countOn(link); n > 0 {
			// Head of line: the first pending index on the link.
			out = append(out, e.pending.byLink[link][0])
		}
	}
	e.scratch = out
	return out
}

func (e *fullParallelExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if success[i] {
			e.pending.remove(idx)
		}
	}
}
