package static

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/interference"
)

// requestsOn builds k requests on each of the given links.
func requestsOn(k int, links ...int) []Request {
	var out []Request
	tag := int64(0)
	for i := 0; i < k; i++ {
		for _, e := range links {
			out = append(out, Request{Link: e, Tag: tag})
			tag++
		}
	}
	return out
}

func TestRunTrivialOnMAC(t *testing.T) {
	m := interference.AllOnes{Links: 4}
	reqs := requestsOn(3, 0, 1, 2, 3) // 12 packets
	rng := rand.New(rand.NewSource(61))
	res := Run(rng, m, Trivial{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("trivial left %d unserved", len(reqs)-res.NumServed())
	}
	if res.Slots != len(reqs) {
		t.Errorf("trivial used %d slots for %d requests", res.Slots, len(reqs))
	}
}

func TestRunFullParallelOnIdentity(t *testing.T) {
	m := interference.Identity{Links: 3}
	reqs := requestsOn(5, 0, 1, 2)
	rng := rand.New(rand.NewSource(62))
	res := Run(rng, m, FullParallel{}, reqs, 0)
	if !res.AllServed() {
		t.Fatal("full-parallel failed on identity model")
	}
	// Congestion is 5; the schedule must be exactly 5 slots.
	if res.Slots != 5 {
		t.Errorf("slots = %d, want 5 (the congestion)", res.Slots)
	}
}

func TestRequestMeasure(t *testing.T) {
	m := interference.AllOnes{Links: 3}
	if got := RequestMeasure(m, requestsOn(2, 0, 1)); got != 4 {
		t.Errorf("measure = %v, want 4", got)
	}
	id := interference.Identity{Links: 3}
	if got := RequestMeasure(id, requestsOn(2, 0, 1)); got != 2 {
		t.Errorf("identity measure = %v, want 2", got)
	}
}

func TestDecayDeliversOnIdentity(t *testing.T) {
	m := interference.Identity{Links: 8}
	reqs := requestsOn(6, 0, 1, 2, 3, 4, 5, 6, 7)
	rng := rand.New(rand.NewSource(63))
	res := Run(rng, m, Decay{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("decay left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

func TestDecayDeliversOnDenseThreshold(t *testing.T) {
	// A weighted model where links interfere moderately.
	n := 6
	d := interference.NewDense("w", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := d.Set(i, j, 0.3); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	reqs := requestsOn(8, 0, 1, 2, 3, 4, 5)
	rng := rand.New(rand.NewSource(64))
	res := Run(rng, m(d), Decay{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("decay left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

// m is an identity adapter to keep call sites terse.
func m(x interference.Model) interference.Model { return x }

func TestDecayScheduleLengthScalesWithMeasure(t *testing.T) {
	// On the MAC model (measure = packet count), decay should finish in
	// O(I·log n): verify super-linear but bounded growth.
	rng := rand.New(rand.NewSource(65))
	model := interference.AllOnes{Links: 4}
	slotsFor := func(k int) int {
		reqs := requestsOn(k, 0, 1, 2, 3)
		res := Run(rng, model, Decay{}, reqs, 0)
		if !res.AllServed() {
			t.Fatalf("decay failed at k=%d (%d slots)", k, res.Slots)
		}
		return res.Slots
	}
	s8, s32 := slotsFor(8), slotsFor(32)
	if s32 < 2*s8 {
		t.Errorf("suspicious scaling: %d slots at I=32 vs %d at I=8", s32, s8)
	}
	ratio := float64(s32) / float64(s8)
	if ratio > 16 {
		t.Errorf("scaling ratio %v too steep for O(I log n)", ratio)
	}
}

func TestSpreadDeliversAndIsNearLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	model := interference.AllOnes{Links: 4}
	slotsFor := func(k int) int {
		reqs := requestsOn(k, 0, 1, 2, 3)
		res := Run(rng, model, Spread{}, reqs, 0)
		if !res.AllServed() {
			t.Fatalf("spread failed at k=%d: %d/%d served in %d slots",
				k, res.NumServed(), len(reqs), res.Slots)
		}
		return res.Slots
	}
	s16 := slotsFor(16)
	s64 := slotsFor(64)
	// Linear-in-I shape: quadrupling the load should scale slots by
	// roughly 4, certainly below 8.
	ratio := float64(s64) / float64(s16)
	if ratio > 8 {
		t.Errorf("spread scaling ratio %v, want ≈4", ratio)
	}
}

func TestBudgetsArePositiveAndMonotone(t *testing.T) {
	algs := []Algorithm{Trivial{}, FullParallel{}, Decay{}, Spread{},
		Densify{Inner: Decay{}}, GreedyPowerControl{}}
	for _, alg := range algs {
		b1 := alg.Budget(16, 4, 10)
		b2 := alg.Budget(16, 16, 100)
		if b1 <= 0 {
			t.Errorf("%s: non-positive budget %d", alg.Name(), b1)
		}
		if b2 < b1 {
			t.Errorf("%s: budget not monotone (%d then %d)", alg.Name(), b1, b2)
		}
		if b0 := alg.Budget(16, 1, 0); b0 <= 0 {
			t.Errorf("%s: zero-request budget %d", alg.Name(), b0)
		}
	}
}

func TestDensifyDeliversOnMAC(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	model := interference.AllOnes{Links: 3}
	alg := Densify{Inner: Trivial{}, Chi: 4}
	reqs := requestsOn(20, 0, 1, 2)
	res := Run(rng, model, alg, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("densify(trivial) left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

func TestDensifyDeliversOnIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(68))
	model := interference.Identity{Links: 6}
	alg := Densify{Inner: Decay{}, Chi: 4}
	reqs := requestsOn(30, 0, 1, 2, 3, 4, 5)
	res := Run(rng, model, alg, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("densify(decay) left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

// TestDensifyImprovesScaling is the heart of Section 3: the densified
// algorithm's schedule length grows linearly in I for dense instances,
// while the raw O(I·log n) algorithm grows super-linearly.
func TestDensifyImprovesScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(69))
	model := interference.Identity{Links: 4}
	raw := Decay{}
	dense := Densify{Inner: Decay{}, Chi: 6}
	lengths := func(alg Algorithm, k int) float64 {
		var total float64
		const reps = 3
		for r := 0; r < reps; r++ {
			reqs := requestsOn(k, 0, 1, 2, 3)
			res := Run(rng, model, alg, reqs, 0)
			if !res.AllServed() {
				t.Fatalf("%s failed at k=%d", alg.Name(), k)
			}
			total += float64(res.Slots)
		}
		return total / reps
	}
	// Per-unit-of-I slot cost at small and large I.
	rawSmall := lengths(raw, 16) / 16
	rawLarge := lengths(raw, 256) / 256
	denseSmall := lengths(dense, 16) / 16
	denseLarge := lengths(dense, 256) / 256

	// The raw algorithm's unit cost must grow noticeably (log factor).
	if rawLarge < rawSmall*1.3 {
		t.Errorf("raw decay unit cost did not grow: %.2f → %.2f", rawSmall, rawLarge)
	}
	// The densified unit cost must stay within a constant factor.
	if denseLarge > denseSmall*2.5 {
		t.Errorf("densified unit cost grew too much: %.2f → %.2f", denseSmall, denseLarge)
	}
	if math.IsNaN(denseLarge) {
		t.Fatal("densified run broken")
	}
}

func TestGreedyPowerControlOnDense(t *testing.T) {
	// Without a PowerSolver, the greedy scheduler packs by weights only.
	n := 5
	d := interference.NewDense("w", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := d.Set(i, j, 0.2); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(70))
	reqs := requestsOn(6, 0, 1, 2, 3, 4)
	res := Run(rng, d, GreedyPowerControl{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("greedy power control left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

func TestExecutionContractDoneAndRemaining(t *testing.T) {
	model := interference.Identity{Links: 2}
	for _, alg := range []Algorithm{Trivial{}, FullParallel{}, Decay{}, Spread{},
		Densify{Inner: Decay{}, Chi: 4}} {
		reqs := requestsOn(2, 0, 1)
		exec := alg.NewExecution(model, reqs)
		if exec.Done() {
			t.Errorf("%s: fresh execution claims done", alg.Name())
		}
		if exec.Remaining() != len(reqs) {
			t.Errorf("%s: remaining = %d, want %d", alg.Name(), exec.Remaining(), len(reqs))
		}
		// Empty executions are immediately done.
		empty := alg.NewExecution(model, nil)
		if !empty.Done() {
			t.Errorf("%s: empty execution not done", alg.Name())
		}
	}
}

func TestRunRespectsBudget(t *testing.T) {
	model := interference.AllOnes{Links: 2}
	reqs := requestsOn(50, 0, 1)
	rng := rand.New(rand.NewSource(71))
	res := Run(rng, model, Trivial{}, reqs, 10)
	if res.Slots > 10 {
		t.Errorf("run exceeded budget: %d slots", res.Slots)
	}
	if res.NumServed() != 10 {
		t.Errorf("served %d in 10 slots, want 10", res.NumServed())
	}
}

func TestBinomialSampler(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	// Mean of Binomial(100, 0.02) is 2.
	var sum float64
	const trials = 5000
	for i := 0; i < trials; i++ {
		sum += float64(binomial(rng, 100, 0.02))
	}
	mean := sum / trials
	if mean < 1.8 || mean > 2.2 {
		t.Errorf("binomial mean %v, want ≈2", mean)
	}
	if binomial(rng, 10, 0) != 0 || binomial(rng, 0, 0.5) != 0 {
		t.Error("degenerate binomials wrong")
	}
	if binomial(rng, 7, 1) != 7 {
		t.Error("p=1 binomial wrong")
	}
}

func TestPendingSet(t *testing.T) {
	reqs := requestsOn(3, 0, 1) // 3 on link 0, 3 on link 1 (interleaved tags)
	p := newPendingSet(2, reqs)
	if p.pending != 6 {
		t.Fatalf("pending = %d, want 6", p.pending)
	}
	if p.countOn(0) != 3 || p.countOn(1) != 3 {
		t.Fatalf("counts = %d,%d", p.countOn(0), p.countOn(1))
	}
	rng := rand.New(rand.NewSource(73))
	picked := p.pickOn(rng, 0, 2)
	if len(picked) != 2 || picked[0] == picked[1] {
		t.Fatalf("pickOn returned %v", picked)
	}
	for _, idx := range picked {
		if reqs[idx].Link != 0 {
			t.Fatalf("picked request %d on wrong link", idx)
		}
	}
	p.remove(picked[0])
	p.remove(picked[0]) // double remove is a no-op
	if p.countOn(0) != 2 || p.pending != 5 {
		t.Fatalf("after remove: countOn(0)=%d pending=%d", p.countOn(0), p.pending)
	}
	if got := p.pickOn(rng, 0, 10); len(got) != 2 {
		t.Fatalf("over-pick returned %d items, want 2", len(got))
	}
	if got := p.pickOn(rng, 0, 0); got != nil {
		t.Fatalf("zero pick returned %v", got)
	}
}

func TestAlgorithmNames(t *testing.T) {
	names := map[string]Algorithm{
		"trivial":              Trivial{},
		"full-parallel":        FullParallel{},
		"decay":                Decay{},
		"spread":               Spread{},
		"densify(decay)":       Densify{Inner: Decay{}},
		"greedy-power-control": GreedyPowerControl{},
	}
	for want, alg := range names {
		if got := alg.Name(); got != want {
			t.Errorf("Name() = %q, want %q", got, want)
		}
	}
}

func TestPaperChi(t *testing.T) {
	// χ = 6(ln m + 9); spot-check m = e (ln = 1) → 60.
	got := PaperChi(2)
	if got < 55 || got > 65 {
		t.Errorf("PaperChi(2) = %v, want ≈ 58", got)
	}
	// Monotone in m.
	if PaperChi(100) <= PaperChi(10) {
		t.Error("PaperChi not monotone")
	}
}

func TestDensifyPaperDefaultChi(t *testing.T) {
	// With Chi = 0 the paper default kicks in; the plan must still be
	// coherent (positive budgets, runnable).
	alg := Densify{Inner: Decay{}}
	model := interference.Identity{Links: 4}
	reqs := requestsOn(3, 0, 1, 2, 3)
	rng := rand.New(rand.NewSource(87))
	res := Run(rng, model, alg, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("paper-χ densify served %d/%d", res.NumServed(), len(reqs))
	}
}

func TestGreedyPowerControlRetryPath(t *testing.T) {
	// A lossy wrapper forces the replay executor into its retry phase.
	inner := interference.Identity{Links: 3}
	rng := rand.New(rand.NewSource(88))
	model := &interference.Lossy{Inner: inner, P: 0.4, Rand: rng.Float64}
	reqs := requestsOn(4, 0, 1, 2)
	res := Run(rng, model, GreedyPowerControl{}, reqs, 20*GreedyPowerControl{}.Budget(3, 4, len(reqs)))
	if !res.AllServed() {
		t.Fatalf("retry path failed: %d/%d served", res.NumServed(), len(reqs))
	}
}

func TestGreedyPowerControlThresholdKnob(t *testing.T) {
	if got := (GreedyPowerControl{}).threshold(); got != 0.5 {
		t.Errorf("default threshold %v, want 0.5", got)
	}
	if got := (GreedyPowerControl{Threshold: 0.9}).threshold(); got != 0.9 {
		t.Errorf("threshold %v, want 0.9", got)
	}
}
