package static

import (
	"math"
	"math/rand"
	"sort"

	"dynsched/internal/interference"
)

// PowerSolver is implemented by models that can decide joint power
// feasibility for a set of links (the power-control SINR model).
type PowerSolver interface {
	SolvePowers(set []int) ([]float64, bool)
}

// LinkLengther is implemented by geometric models that expose link
// lengths, used to order links shortest-first as in [32].
type LinkLengther interface {
	LinkLen(e int) float64
}

// GreedyPowerControl is the centralized scheduler standing in for the
// O(I·log n) power-control approximation of Kesselheim [32] used by
// Corollary 14. Requests are processed shortest link first and packed
// first-fit into slots: a request joins the earliest slot where (a) its
// link is not yet used, (b) every member's symmetrized weight-sum stays
// at most Threshold, and (c) — when the model can solve for powers — a
// joint power vector exists. The resulting schedule is replayed slot by
// slot; any residual failures are retried sequentially.
type GreedyPowerControl struct {
	// Threshold is the per-slot weight headroom (default 0.5).
	Threshold float64
}

var _ Algorithm = GreedyPowerControl{}

// Name implements Algorithm.
func (GreedyPowerControl) Name() string { return "greedy-power-control" }

// Budget implements Algorithm.
func (GreedyPowerControl) Budget(numLinks int, meas float64, n int) int {
	if n == 0 {
		return 1
	}
	if meas < 1 {
		meas = 1
	}
	byMeasure := int(math.Ceil(8*meas*math.Log(float64(n)+3))) + 64
	sequential := 2*n + 8
	if sequential < byMeasure {
		return sequential
	}
	return byMeasure
}

func (g GreedyPowerControl) threshold() float64 {
	if g.Threshold <= 0 {
		return 0.5
	}
	return g.Threshold
}

// NewExecution implements Algorithm. The schedule is computed eagerly —
// the algorithm is centralized by design (Corollary 14 notes no
// distributed counterpart is known).
func (g GreedyPowerControl) NewExecution(m interference.Model, reqs []Request) Execution {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	if ll, ok := m.(LinkLengther); ok {
		sort.SliceStable(order, func(a, b int) bool {
			return ll.LinkLen(reqs[order[a]].Link) < ll.LinkLen(reqs[order[b]].Link)
		})
	}
	solver, _ := m.(PowerSolver)
	thr := g.threshold()
	var slots [][]int // request indices per slot
	var slotLinks []map[int]bool
	fits := func(s int, link int) bool {
		if slotLinks[s][link] {
			return false
		}
		members := make([]int, 0, len(slots[s])+1)
		for _, ri := range slots[s] {
			members = append(members, reqs[ri].Link)
		}
		members = append(members, link)
		for _, e := range members {
			sum := 0.0
			for _, e2 := range members {
				if e2 == e {
					continue
				}
				w := m.Weight(e, e2)
				if w2 := m.Weight(e2, e); w2 > w {
					w = w2
				}
				sum += w
			}
			if sum > thr {
				return false
			}
		}
		if solver != nil {
			if _, ok := solver.SolvePowers(members); !ok {
				return false
			}
		}
		return true
	}
	for _, ri := range order {
		placed := false
		for s := range slots {
			if fits(s, reqs[ri].Link) {
				slots[s] = append(slots[s], ri)
				slotLinks[s][reqs[ri].Link] = true
				placed = true
				break
			}
		}
		if !placed {
			slots = append(slots, []int{ri})
			slotLinks = append(slotLinks, map[int]bool{reqs[ri].Link: true})
		}
	}
	return &replayExec{plan: slots, served: make([]bool, len(reqs)), remaining: len(reqs)}
}

// replayExec plays a precomputed schedule, then retries failures one at
// a time.
type replayExec struct {
	plan      [][]int
	slot      int
	served    []bool
	remaining int
	retry     []int
}

func (e *replayExec) Done() bool     { return e.remaining == 0 }
func (e *replayExec) Remaining() int { return e.remaining }

func (e *replayExec) Attempts(rng *rand.Rand) []int {
	for e.slot < len(e.plan) {
		var out []int
		for _, ri := range e.plan[e.slot] {
			if !e.served[ri] {
				out = append(out, ri)
			}
		}
		e.slot++
		if len(out) > 0 {
			return out
		}
	}
	// Retry phase: one request per slot.
	for len(e.retry) > 0 {
		ri := e.retry[0]
		e.retry = e.retry[1:]
		if !e.served[ri] {
			return []int{ri}
		}
	}
	// Refill the retry queue with whatever is still unserved.
	for ri, s := range e.served {
		if !s {
			e.retry = append(e.retry, ri)
		}
	}
	if len(e.retry) == 0 {
		return nil
	}
	ri := e.retry[0]
	e.retry = e.retry[1:]
	return []int{ri}
}

func (e *replayExec) Observe(attempted []int, success []bool) {
	for i, ri := range attempted {
		if success[i] {
			if !e.served[ri] {
				e.served[ri] = true
				e.remaining--
			}
		} else {
			e.retry = append(e.retry, ri)
		}
	}
}
