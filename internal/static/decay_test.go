package static

import (
	"math/rand"
	"testing"

	"dynsched/internal/interference"
)

func TestAdaptiveDecayBeatsFixedOnTail(t *testing.T) {
	// With a single straggler-heavy workload the adaptive variant should
	// finish no slower (usually much faster) than the paper's fixed-rate
	// algorithm: once few packets remain, its probability rises.
	model := interference.AllOnes{Links: 2}
	avgSlots := func(alg Algorithm) float64 {
		rng := rand.New(rand.NewSource(81))
		var total float64
		const reps = 5
		for r := 0; r < reps; r++ {
			reqs := requestsOn(32, 0, 1)
			res := Run(rng, model, alg, reqs, 8*Decay{}.Budget(2, 64, 64))
			if !res.AllServed() {
				t.Fatalf("%s failed", alg.Name())
			}
			total += float64(res.Slots)
		}
		return total / reps
	}
	fixed := avgSlots(Decay{})
	adaptive := avgSlots(Decay{Adaptive: true})
	if adaptive > fixed*1.1 {
		t.Errorf("adaptive decay slower than fixed: %.1f vs %.1f slots", adaptive, fixed)
	}
}

func TestDecayFixedRateHasLogTail(t *testing.T) {
	// The fixed-rate algorithm's last packet takes Θ(I) extra slots;
	// with I large and only a handful of packets it is visibly slower
	// per packet than the adaptive one. This is the scaling defect
	// Algorithm 1 exists to fix, so pin it down.
	model := interference.Identity{Links: 1}
	rng := rand.New(rand.NewSource(82))
	reqs := requestsOn(64, 0) // I = 64 on a single link
	res := Run(rng, model, Decay{}, reqs, 0)
	if !res.AllServed() {
		t.Fatal("fixed decay failed")
	}
	// A perfect scheduler finishes in 64 slots; the fixed rate 1/(4·64)
	// forces ≥ 4·64 expected slots just for the last packet's geometric
	// wait. Require a clearly super-linear total.
	if res.Slots < 2*64 {
		t.Errorf("fixed decay finished in %d slots — too fast to be the paper's algorithm", res.Slots)
	}
}

func TestDecayAggressivenessKnob(t *testing.T) {
	model := interference.Identity{Links: 4}
	rng := rand.New(rand.NewSource(83))
	reqs := requestsOn(16, 0, 1, 2, 3)
	res := Run(rng, model, Decay{Aggressiveness: 2}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("aggressive decay left %d unserved", len(reqs)-res.NumServed())
	}
}

func TestSpreadOnWeightedModel(t *testing.T) {
	// Spread must also work on a non-trivial W (threshold semantics).
	n := 8
	d := interference.NewDense("w", n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				if err := d.Set(i, j, 0.15); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(84))
	reqs := requestsOn(12, 0, 1, 2, 3, 4, 5, 6, 7)
	res := Run(rng, d, Spread{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("spread left %d/%d unserved in %d slots",
			len(reqs)-res.NumServed(), len(reqs), res.Slots)
	}
}

func TestDensifyBudgetDominatedByLinearTerm(t *testing.T) {
	// For large I the densify budget must scale ~linearly in I: check
	// the ratio Budget(16I)/Budget(I) stays well below 16·log-factor.
	alg := Densify{Inner: Decay{}, Chi: 8}
	b1 := alg.Budget(16, 256, 4096)
	b2 := alg.Budget(16, 4096, 65536)
	ratio := float64(b2) / float64(b1)
	if ratio > 24 {
		t.Errorf("densify budget ratio %.1f for 16× measure — not linear in I", ratio)
	}
	if ratio < 4 {
		t.Errorf("densify budget ratio %.1f suspiciously flat", ratio)
	}
}

func TestDecayMeasureBoundDistributedMode(t *testing.T) {
	model := interference.Identity{Links: 4}
	reqs := requestsOn(4, 0, 1, 2, 3) // true measure 4
	// Declared bound 16: the algorithm must not inspect the request set.
	alg := Decay{}.WithMeasureBound(16)
	exec := alg.NewExecution(model, reqs).(*decayExec)
	if exec.initial != 16 {
		t.Fatalf("distributed-mode initial measure %v, want the declared 16", exec.initial)
	}
	if exec.rowSums != nil {
		t.Fatal("distributed mode inspected the request set (rowSums built)")
	}
	// It still delivers, just more slowly (rate 1/64 instead of 1/16).
	rng := rand.New(rand.NewSource(85))
	res := Run(rng, model, alg, reqs, 64*Decay{}.Budget(4, 16, len(reqs)))
	if !res.AllServed() {
		t.Fatalf("bounded decay served %d/%d", res.NumServed(), len(reqs))
	}
}

func TestSpreadMeasureBound(t *testing.T) {
	model := interference.Identity{Links: 4}
	reqs := requestsOn(4, 0, 1, 2, 3)
	alg := Spread{}.WithMeasureBound(32)
	rng := rand.New(rand.NewSource(86))
	res := Run(rng, model, alg, reqs, 64*Spread{}.Budget(4, 32, len(reqs)))
	if !res.AllServed() {
		t.Fatalf("bounded spread served %d/%d", res.NumServed(), len(reqs))
	}
}
