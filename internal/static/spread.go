package static

import (
	"math"
	"math/rand"

	"dynsched/internal/interference"
)

// Spread is a delay-spreading algorithm in the style of Fanghänel,
// Kesselheim and Vöcking [21], the O(I + log²n) algorithm the paper uses
// for linear power assignments (Corollary 12). It proceeds in geometric
// rounds: round i spans ⌈c·I/2^i⌉ slots, every pending request picks one
// of them uniformly at random and transmits exactly then. The expected
// per-slot interference inside a round is a small constant, so a
// constant fraction of requests succeeds per round and the residual
// measure halves. Once the residual measure is constant, a decay-style
// tail finishes the stragglers in O(log n) slots. The total length is
// O(I + log n·log I) — linear in I with a poly-logarithmic tail, which
// is the contract the dynamic transformation needs.
type Spread struct {
	// SlotsPerUnit is the constant c: round i has ⌈c·I/2^i⌉ slots.
	// Larger values give sparser rounds (higher per-attempt success,
	// longer schedules). 0 means the default of 4.
	SlotsPerUnit float64
	// MeasureBound, when positive, seeds the round schedule with this
	// declared bound instead of measuring the request set — the
	// distributed mode where nodes know only the provisioned J.
	MeasureBound float64
}

var (
	_ MeasureBounded = Spread{}
	_ Recycler       = Spread{}
)

// WithMeasureBound implements MeasureBounded.
func (s Spread) WithMeasureBound(meas float64) Algorithm {
	s.MeasureBound = meas
	return s
}

// Name implements Algorithm.
func (Spread) Name() string { return "spread" }

func (s Spread) slotsPerUnit() float64 {
	if s.SlotsPerUnit <= 0 {
		return 4
	}
	return s.SlotsPerUnit
}

// Budget implements Algorithm: the geometric rounds sum to at most
// 2c·I + rounds, and the tail is O(log n).
func (s Spread) Budget(numLinks int, meas float64, n int) int {
	if n == 0 {
		return 1
	}
	if meas < 1 {
		meas = 1
	}
	c := s.slotsPerUnit()
	rounds := math.Ceil(math.Log2(meas)) + 1
	tail := 48*math.Log(float64(n)+3) + 32
	return int(math.Ceil(2*c*meas+c*rounds)) + int(math.Ceil(tail))
}

// NewExecution implements Algorithm.
func (s Spread) NewExecution(m interference.Model, reqs []Request) Execution {
	meas := s.MeasureBound
	if meas <= 0 {
		meas = RequestMeasure(m, reqs)
	}
	e := &spreadExec{
		model:     m,
		reqs:      reqs,
		pending:   newPendingSet(m.NumLinks(), reqs),
		c:         s.slotsPerUnit(),
		roundMeas: meas,
		delays:    make([]int, len(reqs)),
	}
	return e
}

// RecycleExecution implements Recycler.
func (s Spread) RecycleExecution(prev Execution, m interference.Model, reqs []Request) Execution {
	e, ok := prev.(*spreadExec)
	if !ok || e == nil {
		return s.NewExecution(m, reqs)
	}
	meas := s.MeasureBound
	if meas <= 0 {
		meas = RequestMeasure(m, reqs)
	}
	e.model, e.reqs = m, reqs
	e.pending.reset(m.NumLinks(), reqs)
	e.c = s.slotsPerUnit()
	e.roundMeas, e.roundLen, e.slot = meas, 0, 0
	e.delays = resizeInts(e.delays, len(reqs))
	e.inTail, e.tailP = false, 0
	return e
}

type spreadExec struct {
	model   interference.Model
	reqs    []Request
	pending *pendingSet
	c       float64

	roundMeas float64 // target residual measure of the current round
	roundLen  int     // slots in the current round, 0 before assignment
	slot      int     // next slot offset within the current round
	delays    []int   // request index → chosen slot in current round
	inTail    bool
	tailP     float64

	// out and perm are Attempts scratch, reused across slots.
	out  []int
	perm []int
}

func (e *spreadExec) Done() bool     { return e.pending.pending == 0 }
func (e *spreadExec) Remaining() int { return e.pending.pending }

// startRound assigns fresh uniform delays to all pending requests, or
// switches to the tail phase once the target measure is constant.
func (e *spreadExec) startRound(rng *rand.Rand) {
	const tailMeasure = 2
	if e.roundMeas <= tailMeasure {
		e.inTail = true
		e.tailP = 1.0 / 8
		return
	}
	e.roundLen = int(math.Ceil(e.c * e.roundMeas))
	e.slot = 0
	for link := range e.pending.byLink {
		for _, idx := range e.pending.byLink[link] {
			e.delays[idx] = rng.Intn(e.roundLen)
		}
	}
}

func (e *spreadExec) Attempts(rng *rand.Rand) []int {
	if e.pending.pending == 0 {
		return nil
	}
	if !e.inTail && e.slot >= e.roundLen {
		// Round exhausted (or never started): halve the target and restart.
		if e.roundLen > 0 {
			e.roundMeas /= 2
		}
		e.startRound(rng)
	}
	if e.inTail {
		return e.tailAttempts(rng)
	}
	out := e.out[:0]
	for link := range e.pending.byLink {
		onLink := 0
		for _, idx := range e.pending.byLink[link] {
			if e.delays[idx] == e.slot {
				out = append(out, idx)
				if onLink++; onLink == 2 {
					break // two are enough to register the collision
				}
			}
		}
	}
	e.out = out
	e.slot++
	return out
}

func (e *spreadExec) tailAttempts(rng *rand.Rand) []int {
	out := e.out[:0]
	for link := range e.pending.byLink {
		r := e.pending.countOn(link)
		if r == 0 {
			continue
		}
		k := binomial(rng, r, e.tailP)
		if k == 0 {
			continue
		}
		if k > 2 {
			k = 2
		}
		slice := e.pending.byLink[link]
		if k == 1 {
			out = append(out, slice[rng.Intn(len(slice))])
			continue
		}
		// k == 2: replicate rand.Perm(len(slice)) draw for draw into the
		// scratch buffer (pickOn's selection, without its allocations).
		perm := resizeInts(e.perm, len(slice))
		e.perm = perm
		for i := 0; i < len(slice); i++ {
			j := rng.Intn(i + 1)
			perm[i] = perm[j]
			perm[j] = i
		}
		out = append(out, slice[perm[0]], slice[perm[1]])
	}
	e.out = out
	return out
}

func (e *spreadExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if success[i] {
			e.pending.remove(idx)
		}
	}
}
