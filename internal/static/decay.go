package static

import (
	"math"
	"math/rand"

	"dynsched/internal/interference"
)

// Decay is the randomized algorithm of Theorem 19, generalized to any
// linear interference model: in each slot every pending packet transmits
// independently with probability 1/(4·I), where I is the interference
// measure of the *initial* request set, exactly as in the paper. It
// delivers n requests in O(I·log n) slots with high probability — the
// log n factor comes from the stragglers still transmitting at the
// overly cautious rate 1/(4I) when almost nothing is left, and is what
// Algorithm 1 (Densify) removes.
type Decay struct {
	// Aggressiveness divides the measure in the transmission
	// probability p = Aggressiveness/(4·I); 1 reproduces the paper's
	// 1/(4I). Values above 4 risk livelock.
	Aggressiveness float64
	// Adaptive recomputes I over the remaining requests as packets are
	// served, an optimization outside the paper that removes the log n
	// factor in the common case. Off by default for fidelity.
	Adaptive bool
	// MeasureBound, when positive, is used as the instance's measure
	// instead of computing it from the request set — the distributed
	// mode where nodes know only the provisioned bound J.
	MeasureBound float64
}

var _ MeasureBounded = Decay{}

// WithMeasureBound implements MeasureBounded.
func (d Decay) WithMeasureBound(meas float64) Algorithm {
	d.MeasureBound = meas
	return d
}

// Name implements Algorithm.
func (Decay) Name() string { return "decay" }

// Budget implements Algorithm: c·I·ln n plus a constant tail.
func (Decay) Budget(numLinks int, meas float64, n int) int {
	if n == 0 {
		return 1
	}
	if meas < 1 {
		meas = 1
	}
	return int(math.Ceil(12*meas*math.Log(float64(n)+3))) + 32
}

// NewExecution implements Algorithm.
func (d Decay) NewExecution(m interference.Model, reqs []Request) Execution {
	agg := d.Aggressiveness
	if agg <= 0 {
		agg = 1
	}
	e := &decayExec{
		model:    m,
		reqs:     reqs,
		pending:  newPendingSet(m.NumLinks(), reqs),
		agg:      agg,
		adaptive: d.Adaptive,
	}
	if d.MeasureBound > 0 && !d.Adaptive {
		// Distributed mode: trust the declared bound; no global
		// inspection of the request set.
		e.initial = d.MeasureBound
		if e.initial < 1 {
			e.initial = 1
		}
		return e
	}
	e.rowSums = make([]float64, m.NumLinks())
	// rowSums[e] = (W·R)(e) over the pending requests; kept incrementally
	// when adaptive.
	counts := make([]int, m.NumLinks())
	for _, q := range reqs {
		counts[q.Link]++
	}
	for link := 0; link < m.NumLinks(); link++ {
		for l2, c := range counts {
			if c > 0 {
				e.rowSums[link] += m.Weight(link, l2) * float64(c)
			}
		}
	}
	e.initial = e.measure()
	return e
}

type decayExec struct {
	model    interference.Model
	reqs     []Request
	pending  *pendingSet
	rowSums  []float64
	agg      float64
	adaptive bool
	initial  float64
}

func (e *decayExec) Done() bool     { return e.pending.pending == 0 }
func (e *decayExec) Remaining() int { return e.pending.pending }

// measure returns the current interference measure, floored at 1 so the
// transmission probability stays at most agg/4.
func (e *decayExec) measure() float64 {
	best := 1.0
	for link, s := range e.rowSums {
		if e.pending.countOn(link) == 0 {
			continue // the measure maximizes over links with demand
		}
		if s > best {
			best = s
		}
	}
	return best
}

// rate returns the measure used for this slot's transmission
// probability: the paper's fixed initial I, or the live value when the
// adaptive optimization is on.
func (e *decayExec) rate() float64 {
	if e.adaptive {
		return e.measure()
	}
	return e.initial
}

func (e *decayExec) Attempts(rng *rand.Rand) []int {
	if e.pending.pending == 0 {
		return nil
	}
	p := e.agg / (4 * e.rate())
	if p > 1 {
		p = 1
	}
	var out []int
	for link := range e.pending.byLink {
		r := e.pending.countOn(link)
		if r == 0 {
			continue
		}
		k := binomial(rng, r, p)
		if k == 0 {
			continue
		}
		// k ≥ 2 packets on one link collide; materialize at most two of
		// them, which is enough for the model to fail the slot on that
		// link while keeping the attempt list short.
		if k > 2 {
			k = 2
		}
		out = append(out, e.pending.pickOn(rng, link, k)...)
	}
	return out
}

func (e *decayExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if !success[i] {
			continue
		}
		e.pending.remove(idx)
		if e.adaptive {
			link := e.reqs[idx].Link
			for l := range e.rowSums {
				e.rowSums[l] -= e.model.Weight(l, link)
			}
		}
	}
}

// binomial samples Binomial(n, p). For the small n·p regime the
// algorithms operate in (n·p ≤ 1/4) it walks the probability mass
// function directly, which takes O(1) expected iterations.
func binomial(rng *rand.Rand, n int, p float64) int {
	if p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	u := rng.Float64()
	// pmf(0) = (1-p)^n, then pmf(k+1) = pmf(k)·(n-k)/(k+1)·p/(1-p).
	pmf := math.Pow(1-p, float64(n))
	if pmf == 0 {
		// Far outside the intended regime; fall back to per-trial draws.
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	ratio := p / (1 - p)
	cum := pmf
	k := 0
	for u > cum && k < n {
		pmf *= float64(n-k) / float64(k+1) * ratio
		k++
		cum += pmf
	}
	return k
}
