package static

import (
	"fmt"
	"math"
	"math/rand"

	"dynsched/internal/interference"
)

// Densify is Algorithm 1 of the paper: a transformation that turns a
// static algorithm with schedule length f(n)·I (success probability
// 1 − 1/n) into one whose length is linear in I for dense instances,
// 2·f(mχ)·I + O(f(mχ)·log n + f(n)·log n·log m), with χ = 6(ln m + 9).
//
// Each of ξ = ⌈log(I / 2φχ·log n)⌉ iterations assigns every remaining
// packet a uniformly random delay below ⌈2^{1−i}·I/χ⌉ and runs the inner
// algorithm on each delay class for f(mχ)·χ slots; the residual
// interference measure halves per iteration with high probability.
// Finally the inner algorithm runs ⌈φ⌉+1 more times on whatever remains.
type Densify struct {
	// Inner is the algorithm being transformed.
	Inner Algorithm
	// Phi is the paper's failure-probability exponent φ (error ≤ 1/n^φ).
	// Values ≤ 0 default to 1.
	Phi float64
	// Chi overrides the per-class interference budget χ. 0 means the
	// paper's 6(ln m + 9); experiments use smaller values to keep
	// schedules short at simulation scale.
	Chi float64
}

var _ Algorithm = Densify{}

// Name implements Algorithm.
func (d Densify) Name() string { return fmt.Sprintf("densify(%s)", d.Inner.Name()) }

func (d Densify) phi() float64 {
	if d.Phi <= 0 {
		return 1
	}
	return d.Phi
}

func (d Densify) chi(numLinks int) float64 {
	if d.Chi > 0 {
		return d.Chi
	}
	return 6 * (math.Log(float64(numLinks)) + 9)
}

// PaperChi returns the paper's χ = 6(ln m + 9) for a network of m links.
func PaperChi(numLinks int) float64 {
	return 6 * (math.Log(float64(numLinks)) + 9)
}

// lg is a floored-at-one base-2 logarithm, the paper's "log".
func lg(x float64) float64 {
	if x <= 2 {
		return 1
	}
	return math.Log2(x)
}

// plan holds the precomputed iteration structure shared by Budget and
// the execution.
type densifyPlan struct {
	chi          float64
	xi           int     // number of halving iterations
	psis         []int   // delay-range (bucket count) per iteration
	bucketBudget int     // slots per delay class: f(mχ)·χ
	finalReps    int     // ⌈φ⌉+1
	finalMeas    float64 // 2φχ·log n
	finalBudget  int
}

func (d Densify) makePlan(numLinks int, meas float64, n int) densifyPlan {
	phi := d.phi()
	chi := d.chi(numLinks)
	p := densifyPlan{chi: chi}
	logn := lg(float64(n))
	threshold := 2 * phi * chi * logn
	if meas > threshold {
		p.xi = int(math.Ceil(math.Log2(meas / threshold)))
	}
	for i := 1; i <= p.xi; i++ {
		psi := int(math.Ceil(math.Pow(2, float64(-i+1)) * meas / chi))
		if psi < 1 {
			psi = 1
		}
		p.psis = append(p.psis, psi)
	}
	nChi := numLinks * int(math.Ceil(chi))
	if nChi < 1 {
		nChi = 1
	}
	p.bucketBudget = d.Inner.Budget(numLinks, chi, nChi)
	p.finalReps = int(math.Ceil(phi)) + 1
	p.finalMeas = threshold
	p.finalBudget = d.Inner.Budget(numLinks, p.finalMeas, n)
	return p
}

// Budget implements Algorithm by summing the plan's slot counts.
func (d Densify) Budget(numLinks int, meas float64, n int) int {
	if n == 0 {
		return 1
	}
	p := d.makePlan(numLinks, meas, n)
	total := 0
	for _, psi := range p.psis {
		total += psi * p.bucketBudget
	}
	total += p.finalReps * p.finalBudget
	return total + 1
}

// NewExecution implements Algorithm.
func (d Densify) NewExecution(m interference.Model, reqs []Request) Execution {
	meas := RequestMeasure(m, reqs)
	return &densifyExec{
		model:     m,
		reqs:      reqs,
		served:    make([]bool, len(reqs)),
		remaining: len(reqs),
		plan:      d.makePlan(m.NumLinks(), meas, len(reqs)),
		inner:     d.Inner,
	}
}

type densifyExec struct {
	model     interference.Model
	reqs      []Request
	served    []bool
	remaining int
	plan      densifyPlan
	inner     Algorithm

	iter      int     // current halving iteration, 0-based
	buckets   [][]int // outer request indices per delay class (current iteration)
	bucket    int     // current delay class
	finalRep  int     // current final-phase repetition, 0-based
	inFinal   bool
	exec      Execution
	execMap   []int       // inner index → outer index
	execInv   map[int]int // outer index → inner index
	slotsLeft int         // slots left for the current sub-execution
	started   bool
}

func (e *densifyExec) Done() bool     { return e.remaining == 0 }
func (e *densifyExec) Remaining() int { return e.remaining }

// collectRemaining returns the indices of unserved requests.
func (e *densifyExec) collectRemaining() []int {
	out := make([]int, 0, e.remaining)
	for i, s := range e.served {
		if !s {
			out = append(out, i)
		}
	}
	return out
}

// startSub creates the inner execution on the given outer indices.
func (e *densifyExec) startSub(indices []int, budget int) {
	e.execMap = indices
	e.execInv = make(map[int]int, len(indices))
	sub := make([]Request, len(indices))
	for j, outer := range indices {
		sub[j] = e.reqs[outer]
		e.execInv[outer] = j
	}
	e.exec = e.inner.NewExecution(e.model, sub)
	e.slotsLeft = budget
}

// advance moves the plan forward until a sub-execution with slots
// remains, or the plan is exhausted.
func (e *densifyExec) advance(rng *rand.Rand) {
	for {
		if e.exec != nil && e.slotsLeft > 0 && !e.exec.Done() {
			return
		}
		e.exec = nil
		if !e.inFinal {
			if e.iter < e.plan.xi && e.buckets != nil && e.bucket+1 < len(e.buckets) {
				// Next delay class in the current iteration.
				e.bucket++
				e.startSub(e.buckets[e.bucket], e.plan.bucketBudget)
				continue
			}
			if e.started && e.iter+1 < e.plan.xi {
				e.iter++
			} else if e.started {
				e.inFinal = true
				e.finalRep = 0
				e.startSub(e.collectRemaining(), e.plan.finalBudget)
				continue
			} else {
				e.started = true
				if e.plan.xi == 0 {
					e.inFinal = true
					e.finalRep = 0
					e.startSub(e.collectRemaining(), e.plan.finalBudget)
					continue
				}
			}
			// Begin iteration e.iter: assign fresh delays to survivors.
			psi := e.plan.psis[e.iter]
			e.buckets = make([][]int, psi)
			for _, idx := range e.collectRemaining() {
				j := rng.Intn(psi)
				e.buckets[j] = append(e.buckets[j], idx)
			}
			e.bucket = 0
			e.startSub(e.buckets[0], e.plan.bucketBudget)
			continue
		}
		// Final phase.
		if e.finalRep+1 < e.plan.finalReps {
			e.finalRep++
			e.startSub(e.collectRemaining(), e.plan.finalBudget)
			continue
		}
		// Plan exhausted: keep retrying on the remaining requests so the
		// caller's overall budget, not the plan, is the binding limit.
		e.startSub(e.collectRemaining(), e.plan.finalBudget)
		return
	}
}

func (e *densifyExec) Attempts(rng *rand.Rand) []int {
	if e.remaining == 0 {
		return nil
	}
	e.advance(rng)
	if e.exec == nil {
		return nil
	}
	e.slotsLeft--
	inner := e.exec.Attempts(rng)
	out := make([]int, len(inner))
	for i, j := range inner {
		out[i] = e.execMap[j]
	}
	return out
}

func (e *densifyExec) Observe(attempted []int, success []bool) {
	if e.exec == nil {
		return
	}
	innerIdx := make([]int, 0, len(attempted))
	innerOK := make([]bool, 0, len(attempted))
	for i, outer := range attempted {
		j, ok := e.execInv[outer]
		if !ok {
			continue
		}
		innerIdx = append(innerIdx, j)
		innerOK = append(innerOK, success[i])
		if success[i] && !e.served[outer] {
			e.served[outer] = true
			e.remaining--
		}
	}
	e.exec.Observe(innerIdx, innerOK)
}
