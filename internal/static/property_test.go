package static

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsched/internal/interference"
)

// algorithmsUnderTest returns all generic algorithms (the MAC-specific
// ones live in package mac).
func algorithmsUnderTest() []Algorithm {
	return []Algorithm{
		Trivial{},
		FullParallel{},
		Decay{},
		Decay{Adaptive: true},
		Spread{},
		Densify{Inner: Decay{}, Chi: 4},
		Densify{Inner: Spread{}, Chi: 4},
		GreedyPowerControl{},
	}
}

// checkedRun drives an execution while asserting the Execution
// contract: Attempts returns distinct, in-range, still-pending indices;
// Remaining decreases exactly with acknowledged successes.
func checkedRun(t *testing.T, rng *rand.Rand, m interference.Model, alg Algorithm, reqs []Request, maxSlots int) Result {
	t.Helper()
	exec := alg.NewExecution(m, reqs)
	served := make([]bool, len(reqs))
	res := Result{Served: make([]bool, len(reqs))}
	for res.Slots < maxSlots && !exec.Done() {
		attempted := exec.Attempts(rng)
		res.Slots++
		seen := make(map[int]bool, len(attempted))
		for _, idx := range attempted {
			if idx < 0 || idx >= len(reqs) {
				t.Fatalf("%s: attempt index %d out of range", alg.Name(), idx)
			}
			if seen[idx] {
				t.Fatalf("%s: duplicate attempt index %d in one slot", alg.Name(), idx)
			}
			seen[idx] = true
			if served[idx] {
				t.Fatalf("%s: re-attempted served request %d", alg.Name(), idx)
			}
		}
		if len(attempted) == 0 {
			continue
		}
		tx := make([]int, len(attempted))
		for i, idx := range attempted {
			tx[i] = reqs[idx].Link
		}
		success := m.Successes(tx)
		before := exec.Remaining()
		exec.Observe(attempted, success)
		newly := 0
		for i, idx := range attempted {
			if success[i] && !served[idx] {
				served[idx] = true
				res.Served[idx] = true
				newly++
			}
		}
		if after := exec.Remaining(); after != before-newly {
			t.Fatalf("%s: Remaining went %d → %d after %d successes",
				alg.Name(), before, after, newly)
		}
	}
	return res
}

func TestExecutionContractProperty(t *testing.T) {
	f := func(seed int64, perLink uint8, linksRaw uint8) bool {
		links := 2 + int(linksRaw%6)
		k := 1 + int(perLink%5)
		m := interference.Identity{Links: links}
		var reqs []Request
		for e := 0; e < links; e++ {
			for i := 0; i < k; i++ {
				reqs = append(reqs, Request{Link: e, Tag: int64(e*100 + i)})
			}
		}
		rng := rand.New(rand.NewSource(seed))
		for _, alg := range algorithmsUnderTest() {
			budget := 64 * alg.Budget(links, float64(k), len(reqs))
			res := checkedRun(t, rng, m, alg, reqs, budget)
			if !res.AllServed() {
				t.Logf("%s: %d/%d served in %d slots (seed %d)",
					alg.Name(), res.NumServed(), len(reqs), res.Slots, seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestBudgetCoversTypicalRuns: the advertised Budget should cover the
// typical schedule length with room to spare — the dynamic protocol's
// frames depend on it.
func TestBudgetCoversTypicalRuns(t *testing.T) {
	m := interference.Identity{Links: 4}
	rng := rand.New(rand.NewSource(91))
	reqs := make([]Request, 0, 48)
	for e := 0; e < 4; e++ {
		for i := 0; i < 12; i++ {
			reqs = append(reqs, Request{Link: e, Tag: int64(e*100 + i)})
		}
	}
	meas := RequestMeasure(m, reqs)
	for _, alg := range algorithmsUnderTest() {
		budget := alg.Budget(4, meas, len(reqs))
		fails := 0
		const reps = 10
		for r := 0; r < reps; r++ {
			res := Run(rng, m, alg, reqs, budget)
			if !res.AllServed() {
				fails++
			}
		}
		if fails > 2 {
			t.Errorf("%s: budget %d failed %d/%d runs (I=%v, n=%d)",
				alg.Name(), budget, fails, reps, meas, len(reqs))
		}
	}
}

// TestEmptyAndSingletonInstances: degenerate inputs must not wedge any
// algorithm.
func TestEmptyAndSingletonInstances(t *testing.T) {
	m := interference.Identity{Links: 2}
	rng := rand.New(rand.NewSource(92))
	for _, alg := range algorithmsUnderTest() {
		empty := Run(rng, m, alg, nil, 10)
		if len(empty.Served) != 0 {
			t.Errorf("%s: empty run produced results", alg.Name())
		}
		one := Run(rng, m, alg, []Request{{Link: 1, Tag: 5}}, 0)
		if !one.AllServed() {
			t.Errorf("%s: failed on a singleton instance", alg.Name())
		}
	}
}
