// Package randx wraps math/rand sources with draw accounting so RNG
// state can be checkpointed and restored without changing the random
// stream. math/rand's source state is not serializable, but its
// generators are deterministic: position in the stream is fully
// determined by (seed, number of draws). A CountingSource records the
// draw count as the stream is consumed; a checkpoint stores
// (seed, draws) and resume replays the same source forward to the same
// position. The wrapper delegates every draw unchanged, so a
// rand.Rand built on a CountingSource produces bit-identical values to
// one built on the bare source — the invariant every pinned
// bit-identity test in this repo depends on.
package randx

import (
	"fmt"
	"math/rand"
)

// CountingSource is a rand.Source64 that counts draws. Both Int63 and
// Uint64 advance the underlying generator by exactly one step (true
// for math/rand's seeded source, which implements Source64), so one
// draw == one counter increment regardless of which method rand.Rand
// dispatches to.
type CountingSource struct {
	seed  int64
	src   rand.Source64
	draws uint64
}

// NewCounting returns a counting source seeded with seed.
// rand.NewSource's result always implements Source64.
func NewCounting(seed int64) *CountingSource {
	return &CountingSource{seed: seed, src: rand.NewSource(seed).(rand.Source64)}
}

// Int63 implements rand.Source.
func (c *CountingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

// Uint64 implements rand.Source64. rand.Rand uses this path for
// Uint64 (and everything derived from it) when the source implements
// Source64; delegating keeps the stream identical to the bare source.
func (c *CountingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

// Seed implements rand.Source: reseed and reset the draw count.
func (c *CountingSource) Seed(seed int64) {
	c.seed = seed
	c.src = rand.NewSource(seed).(rand.Source64)
	c.draws = 0
}

// SeedValue returns the seed the source was created (or last reseeded)
// with.
func (c *CountingSource) SeedValue() int64 { return c.seed }

// Draws returns the number of draws consumed since the last (re)seed.
func (c *CountingSource) Draws() uint64 { return c.draws }

// Skip advances the source by n draws, discarding the values. Used on
// resume to fast-forward a freshly seeded source to a checkpointed
// stream position.
func (c *CountingSource) Skip(n uint64) {
	for i := uint64(0); i < n; i++ {
		c.src.Uint64()
	}
	c.draws += n
}

// SeekTo fast-forwards the source to an absolute draw count recorded
// by a checkpoint. The source must not already be past the target —
// draws only move forward.
func (c *CountingSource) SeekTo(draws uint64) error {
	if draws < c.draws {
		return fmt.Errorf("randx: cannot seek backwards (at %d, target %d)", c.draws, draws)
	}
	c.Skip(draws - c.draws)
	return nil
}
