package randx

import (
	"math/rand"
	"testing"
)

// drawMix consumes a representative mix of rand.Rand entry points —
// every derived-draw path the engine, protocol, and models use — and
// folds the values into a comparable fingerprint.
func drawMix(r *rand.Rand, n int) []float64 {
	out := make([]float64, 0, 4*n)
	for i := 0; i < n; i++ {
		out = append(out, float64(r.Int63()%1000))
		out = append(out, r.Float64())
		out = append(out, float64(r.Intn(97)))
		out = append(out, r.NormFloat64())
	}
	return out
}

// The counting wrapper must not perturb the stream: a rand.Rand on a
// CountingSource produces exactly the values of one on the bare
// source. Every pinned bit-identity test in the repo depends on this.
func TestCountingSourcePreservesStream(t *testing.T) {
	bare := rand.New(rand.NewSource(42))
	counted := rand.New(NewCounting(42))
	want := drawMix(bare, 500)
	got := drawMix(counted, 500)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("draw %d: counted %v != bare %v", i, got[i], want[i])
		}
	}
}

// Resuming from (seed, draws) must land at the exact stream position:
// fast-forwarding a fresh source by the recorded draw count yields the
// same continuation as the original uninterrupted source.
func TestSeekToResumesStream(t *testing.T) {
	src := NewCounting(7)
	r := rand.New(src)
	drawMix(r, 313) // arbitrary, odd on purpose
	mark := src.Draws()
	want := drawMix(r, 100)

	resumed := NewCounting(7)
	if err := resumed.SeekTo(mark); err != nil {
		t.Fatalf("SeekTo: %v", err)
	}
	got := drawMix(rand.New(resumed), 100)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("resumed draw %d: %v != %v", i, got[i], want[i])
		}
	}
}

func TestSeekBackwardsRejected(t *testing.T) {
	src := NewCounting(1)
	src.Skip(10)
	if err := src.SeekTo(5); err == nil {
		t.Fatal("expected error seeking backwards")
	}
	if err := src.SeekTo(10); err != nil {
		t.Fatalf("seek to current position should be a no-op: %v", err)
	}
}

func TestSeedResetsDraws(t *testing.T) {
	src := NewCounting(3)
	rand.New(src).Float64()
	if src.Draws() == 0 {
		t.Fatal("draws not counted")
	}
	src.Seed(9)
	if src.Draws() != 0 || src.SeedValue() != 9 {
		t.Fatalf("reseed: draws=%d seed=%d", src.Draws(), src.SeedValue())
	}
}
