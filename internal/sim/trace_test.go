package sim

import (
	"context"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/metrics"
	"dynsched/internal/testenv"
)

// traceWorkload builds the small single-hop workload the observer
// tests run: the identity model under the test FIFO protocol.
func traceWorkload(t testing.TB) (interference.Model, inject.Process, Protocol) {
	t.Helper()
	m := interference.Identity{Links: 4}
	proc := singleHopProcess(t.(*testing.T), m, 4, 0.3)
	return m, proc, newFifoProto(4)
}

// TestMetricsObserverCounts pins that the tracing observer's flushed
// totals match the run's own counters exactly — the local-accumulate /
// sample-flush scheme must not lose the tail of a run.
func TestMetricsObserverCounts(t *testing.T) {
	model, proc, proto := traceWorkload(t)
	reg := metrics.NewRegistry()
	em := NewEngineMetrics(reg)
	// A sampling period that does not divide the slot count, so the
	// final flush path is exercised.
	obs := em.NewObserver(192)
	res, err := Run(context.Background(), Config{Slots: 5_000, Seed: 3}, model, proc, proto, obs)
	if err != nil {
		t.Fatal(err)
	}
	if got := em.Slots.Value(); int64(got) != res.Slots {
		t.Errorf("slots counter %d, result %d", got, res.Slots)
	}
	if got := em.Injected.Value(); int64(got) != res.Injected {
		t.Errorf("injected counter %d, result %d", got, res.Injected)
	}
	if got := em.Delivered.Value(); int64(got) != res.Delivered {
		t.Errorf("delivered counter %d, result %d", got, res.Delivered)
	}
	if em.SlotSeconds.Count() == 0 {
		t.Error("no slot-time samples recorded")
	}
	// ~one sample per window; the exact count depends on alignment but
	// must stay well under one per slot.
	if n := em.SlotSeconds.Count(); n > 5_000/192+2 {
		t.Errorf("%d slot-time samples for 5000 slots at period 192", n)
	}
}

// TestMetricsObserverSharedBundle pins that two runs flushing into one
// bundle accumulate, which is how the daemon aggregates across jobs.
func TestMetricsObserverSharedBundle(t *testing.T) {
	model, proc, proto := traceWorkload(t)
	reg := metrics.NewRegistry()
	em := NewEngineMetrics(reg)
	r1, err := Run(context.Background(), Config{Slots: 1_000, Seed: 3}, model, proc, proto, em.NewObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	model2, proc2, proto2 := traceWorkload(t)
	r2, err := Run(context.Background(), Config{Slots: 1_000, Seed: 4}, model2, proc2, proto2, em.NewObserver(0))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := em.Slots.Value(), uint64(r1.Slots+r2.Slots); got != want {
		t.Errorf("shared slots counter %d, want %d", got, want)
	}
}

// TestMetricsObserverZeroAlloc pins the observer's per-event paths as
// allocation-free: the whole point of the local-accumulate design is
// that tracing can stay attached to every simulation the daemon runs
// without disturbing the zero-alloc hot loop.
func TestMetricsObserverZeroAlloc(t *testing.T) {
	testenv.SkipIfRace(t)
	reg := metrics.NewRegistry()
	em := NewEngineMetrics(reg)
	obs := em.NewObserver(64)
	view := SlotView{InFlight: 3}
	pkts := make([]inject.Packet, 2)
	var tick int64
	if got := testing.AllocsPerRun(1000, func() {
		obs.OnInject(tick, pkts)
		obs.OnDeliver(tick, Delivery{})
		obs.OnSlot(tick, view)
		tick++
	}); got != 0 {
		t.Errorf("observer allocates %.1f objects per slot, want 0", got)
	}
}
