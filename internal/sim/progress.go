// Live progress reporting. A ProgressObserver is a stock Observer that
// condenses the run into periodic Progress snapshots — slots done,
// injection/delivery counters, a live latency summary — for callers
// that watch a simulation from outside the engine goroutine (the
// dynschedd event stream, a TUI, a log line every N slots). It is
// attached like any other observer and adds one branch per slot.
package sim

import (
	"encoding/json"

	"dynsched/internal/inject"
	"dynsched/internal/stats"
)

// Progress is a point-in-time snapshot of a running simulation.
type Progress struct {
	// Slots is the number of slots executed so far; TotalSlots is the
	// configured run length.
	Slots      int64 `json:"slots"`
	TotalSlots int64 `json:"totalSlots"`
	Injected   int64 `json:"injected"`
	Delivered  int64 `json:"delivered"`
	InFlight   int64 `json:"inFlight"`
	// Latency summarises the end-to-end latencies of the deliveries seen
	// so far (all of them — the warm-up exclusion applies to the final
	// Result, not to live progress).
	Latency stats.SummaryView `json:"latency"`
	// Done marks the final snapshot, emitted from OnEnd.
	Done bool `json:"done"`
}

// ProgressObserver emits a Progress snapshot every Every slots and a
// final one (Done=true) when the run ends. Report is called on the
// engine goroutine: keep it cheap or hand off.
type ProgressObserver struct {
	BaseObserver
	every  int64
	total  int64
	report func(Progress)

	injected  int64
	delivered int64
	lat       stats.Summary
}

// NewProgressObserver builds a progress observer for a run of
// totalSlots slots reporting every `every` slots (every <= 0 defaults
// to totalSlots/20, min 1 — about twenty snapshots per run). A nil
// report makes the observer inert.
func NewProgressObserver(totalSlots, every int64, report func(Progress)) *ProgressObserver {
	if every <= 0 {
		every = totalSlots / 20
		if every < 1 {
			every = 1
		}
	}
	return &ProgressObserver{every: every, total: totalSlots, report: report}
}

// OnInject implements Observer.
func (o *ProgressObserver) OnInject(t int64, pkts []inject.Packet) {
	o.injected += int64(len(pkts))
}

// OnDeliver implements Observer.
func (o *ProgressObserver) OnDeliver(t int64, d Delivery) {
	o.delivered++
	o.lat.Add(float64(t - d.Injected + 1))
}

// OnSlot implements Observer.
func (o *ProgressObserver) OnSlot(t int64, v SlotView) {
	if o.report == nil || (t+1)%o.every != 0 {
		return
	}
	o.report(Progress{
		Slots:      t + 1,
		TotalSlots: o.total,
		Injected:   o.injected,
		Delivered:  o.delivered,
		InFlight:   int64(v.InFlight),
		Latency:    o.lat.View(),
	})
}

type progressState struct {
	Injected  int64         `json:"injected"`
	Delivered int64         `json:"delivered"`
	Lat       stats.Summary `json:"lat"`
}

// CheckpointState implements CheckpointableObserver, so a resumed run
// reports cumulative progress counters rather than restarting from 0.
func (o *ProgressObserver) CheckpointState() ([]byte, error) {
	return json.Marshal(progressState{Injected: o.injected, Delivered: o.delivered, Lat: o.lat})
}

// RestoreState implements CheckpointableObserver.
func (o *ProgressObserver) RestoreState(data []byte) error {
	var st progressState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	o.injected, o.delivered, o.lat = st.Injected, st.Delivered, st.Lat
	return nil
}

// OnEnd implements Observer: the final snapshot is drawn from the
// Result, so a cancelled run reports the slots it actually executed.
func (o *ProgressObserver) OnEnd(r *Result) {
	if o.report == nil {
		return
	}
	o.report(Progress{
		Slots:      r.Slots,
		TotalSlots: o.total,
		Injected:   r.Injected,
		Delivered:  r.Delivered,
		InFlight:   r.InFlight,
		Latency:    o.lat.View(),
		Done:       true,
	})
}
