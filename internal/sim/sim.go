// Package sim is the discrete-time simulation engine: it advances a
// protocol slot by slot against an interference model and an injection
// process, resolves which transmissions succeed, moves packets along
// their paths, and notifies an observer pipeline that collects the
// queue-length and latency metrics the experiments report.
//
// The simulator, not the protocol, owns packet ground truth: a protocol
// may only request transmissions of packets it holds, on the next link
// of their paths. Violations are counted and the offending transmissions
// dropped, so a buggy protocol cannot corrupt an experiment silently.
package sim

import (
	"context"
	"fmt"
	"math/rand"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/randx"
	"dynsched/internal/stats"
)

// Transmission is a protocol's request to send one packet over one link.
type Transmission struct {
	Link     int
	PacketID int64
}

// Protocol is a dynamic scheduling protocol driven by the simulator.
type Protocol interface {
	// Name identifies the protocol in experiment output.
	Name() string
	// Inject hands the protocol the packets injected at slot t, before
	// Slot(t) is called.
	Inject(t int64, pkts []inject.Packet)
	// Slot returns the transmissions to attempt at slot t.
	Slot(t int64, rng *rand.Rand) []Transmission
	// Feedback reports the outcome of each attempted transmission of
	// slot t (acknowledgement-based feedback). The tx and success slices
	// are only valid for the duration of the call — the simulator reuses
	// them across slots.
	Feedback(t int64, tx []Transmission, success []bool)
}

// Config parameterises a simulation run.
type Config struct {
	// Slots is the number of time slots to simulate.
	Slots int64
	// SampleEvery sets the queue-length sampling period (0 = Slots/512,
	// min 1). The final executed slot is always sampled.
	SampleEvery int64
	// Seed seeds the run's random source.
	Seed int64
	// WarmupFrac excludes the first fraction of the run from latency
	// statistics. Must lie in [0, 1); 0 (the default) keeps everything.
	WarmupFrac float64
	// MaxLatencySlots sizes the latency histogram (0 = Slots).
	MaxLatencySlots int64
	// Parallel caps the worker pool that Replicate (not Run) fans
	// replications across: 0 means GOMAXPROCS, 1 runs serially inline.
	// Results are bit-identical for every value.
	Parallel int
	// ResolveParallelism requests an intra-slot worker count from models
	// that support parallel slot resolution (interference
	// ParallelResolver): 0 defers to the model's own default (typically
	// GOMAXPROCS), 1 forces strictly serial resolution, n uses n
	// workers. Like Parallel it is a pure execution knob — results are
	// bit-identical for every value — so it is excluded from scenario
	// hashes.
	ResolveParallelism int
	// Checkpoint configures periodic state capture and resume (nil
	// disables both). Resumed runs are bit-identical to uninterrupted
	// ones; see CheckpointSpec.
	Checkpoint *CheckpointSpec
}

// Result aggregates the metrics of one run.
type Result struct {
	// Slots is the number of slots actually executed — cfg.Slots for a
	// completed run, fewer when the context was cancelled mid-run.
	Slots     int64 `json:"slots"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	InFlight  int64 `json:"inFlight"` // packets still queued at the end

	// Latency is the per-packet latency histogram (delivery − injection),
	// excluding the warm-up period.
	Latency *stats.Histogram `json:"latency"`
	// LatencyDigest is a mergeable quantile sketch of the same
	// deliveries: unlike the histogram its shape is config-independent,
	// so digests from different runs (or plan units) always merge.
	LatencyDigest *stats.Digest `json:"latencyDigest,omitempty"`
	// HopLatency summarises latency divided by path length.
	HopLatency stats.Summary `json:"hopLatency"`
	// Queue is the sampled time series of in-flight packet counts.
	Queue stats.Series `json:"queue"`
	// Verdict classifies the queue series as stable or unstable.
	Verdict stats.StabilityVerdict `json:"verdict"`

	// ProtocolErrors counts transmissions the simulator rejected
	// (unknown packet, wrong link). Always 0 for a correct protocol.
	ProtocolErrors int64 `json:"protocolErrors"`
	// AttemptedTx and SuccessfulTx count link-level transmissions.
	AttemptedTx  int64 `json:"attemptedTx"`
	SuccessfulTx int64 `json:"successfulTx"`

	// PerLinkServed counts successful transmissions per link.
	PerLinkServed []int64 `json:"perLinkServed"`
	// PerLinkAttempts counts attempted transmissions per link.
	PerLinkAttempts []int64 `json:"perLinkAttempts"`
}

// LinkUtilization returns the fraction of slots in which link e carried
// a successful transmission.
func (r *Result) LinkUtilization(e int) float64 {
	if r.Slots == 0 || e < 0 || e >= len(r.PerLinkServed) {
		return 0
	}
	return float64(r.PerLinkServed[e]) / float64(r.Slots)
}

// FairnessIndex returns Jain's fairness index over per-link service
// counts, restricted to links that participated at all — attempted, or
// served even without a recorded attempt: 1 means perfectly even
// service, 1/k means one of k links got everything.
func (r *Result) FairnessIndex() float64 {
	var sum, sumSq float64
	n := 0
	for e, served := range r.PerLinkServed {
		attempted := e < len(r.PerLinkAttempts) && r.PerLinkAttempts[e] > 0
		if served == 0 && !attempted {
			continue
		}
		s := float64(served)
		sum += s
		sumSq += s * s
		n++
	}
	if n == 0 || sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumSq)
}

// Throughput returns delivered packets per slot.
func (r *Result) Throughput() float64 {
	if r.Slots == 0 {
		return 0
	}
	return float64(r.Delivered) / float64(r.Slots)
}

// cancelCheckMask throttles the per-slot context poll: the context is
// consulted every 1024 slots, so cancellation lands within microseconds
// of wall-clock while the hot loop stays branch-cheap.
const cancelCheckMask = 1<<10 - 1

// Run simulates the protocol against the model and injection process,
// notifying the stock metric observers plus any extras. A nil ctx is
// treated as context.Background(). When the context is cancelled or
// times out mid-run, Run stops promptly and returns the partial result
// — metrics complete up to the last executed slot, with Result.Slots
// reflecting the early stop — together with an error wrapping the
// context's error.
func Run(ctx context.Context, cfg Config, model interference.Model, proc inject.Process, proto Protocol, extra ...Observer) (*Result, error) {
	if cfg.Slots <= 0 {
		return nil, fmt.Errorf("sim: non-positive slot count %d", cfg.Slots)
	}
	if cfg.WarmupFrac < 0 || cfg.WarmupFrac >= 1 {
		return nil, fmt.Errorf("sim: WarmupFrac %v outside [0,1) — 0 keeps every latency sample, values near 1 would discard them all", cfg.WarmupFrac)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	sample := cfg.SampleEvery
	if sample <= 0 {
		sample = cfg.Slots / 512
		if sample < 1 {
			sample = 1
		}
	}
	maxLat := cfg.MaxLatencySlots
	if maxLat <= 0 {
		maxLat = cfg.Slots
	}
	latBucket := float64(maxLat) / 256
	if latBucket < 1 {
		latBucket = 1
	}
	// The engine RNG runs behind a draw-counting source so its stream
	// position can be checkpointed; the wrapper delegates every draw,
	// so the stream is identical to a bare rand.NewSource(cfg.Seed).
	src := randx.NewCounting(cfg.Seed)
	rng := rand.New(src)
	res := &Result{}
	obs := make([]Observer, 0, 3+len(extra))
	obs = append(obs,
		&latencyObserver{
			warmupEnd: int64(cfg.WarmupFrac * float64(cfg.Slots)),
			hist:      stats.NewHistogram(latBucket, 257),
			digest:    stats.NewDigest(0),
		},
		newQueueObserver(cfg.Slots, sample),
		&linkObserver{
			served:   make([]int64, model.NumLinks()),
			attempts: make([]int64, model.NumLinks()),
		},
	)
	obs = append(obs, extra...)

	// Packet ground truth lives in a free-list arena addressed by dense
	// handles, with injected paths interned (shared per distinct route):
	// the steady-state packet lifecycle — inject, transmit, deliver —
	// performs no heap allocations.
	arena := newPacketArena()
	intern := NewPathInterner()
	// Per-run slot resolver and link buffer: models that support it
	// resolve slots allocation-free (sharded across intra-slot workers
	// when requested), and the link vector is reused.
	resolve := interference.ResolveFuncN(model, cfg.ResolveParallelism)
	for _, o := range obs {
		if ro, ok := o.(ResolveObserver); ok {
			ro.OnResolve(model, cfg.ResolveParallelism)
		}
	}
	var links []int

	finish := func(executed int64) {
		res.Slots = executed
		res.InFlight = int64(arena.len())
		for _, o := range obs {
			o.OnEnd(res)
		}
	}

	// Checkpointing: resume fast-forwards to the checkpoint slot;
	// capture fires every Every slots, deferred until all aligners
	// (the frame-structured protocol) reach a serializable boundary.
	ck := cfg.Checkpoint
	capture := ck != nil && ck.Every > 0 && ck.Sink != nil
	t0 := int64(0)
	if ck != nil && ck.Resume != nil {
		var err error
		t0, err = restoreCheckpoint(ck.Resume, cfg, src, res, arena, intern, model, proc, proto, obs)
		if err != nil {
			return nil, fmt.Errorf("sim: resume from checkpoint: %w", err)
		}
	}
	ckDue := false

	for t := t0; t < cfg.Slots; t++ {
		if t&cancelCheckMask == 0 && ctx.Err() != nil {
			finish(t)
			return res, fmt.Errorf("sim: run cancelled after %d of %d slots: %w", t, cfg.Slots, ctx.Err())
		}

		// 1. Injection.
		pkts := proc.Step(t, rng)
		for _, p := range pkts {
			arena.insert(p.ID, intern.Ints(p.Path), t)
		}
		res.Injected += int64(len(pkts))
		if len(pkts) > 0 {
			proto.Inject(t, pkts)
			for _, o := range obs {
				o.OnInject(t, pkts)
			}
		}

		// 2. The protocol picks transmissions; invalid ones are dropped.
		want := proto.Slot(t, rng)
		tx := want[:0]
		for _, w := range want {
			st := arena.get(w.PacketID)
			if st == nil || st.hop >= len(st.path) || st.path[st.hop] != w.Link {
				res.ProtocolErrors++
				continue
			}
			tx = append(tx, w)
		}

		// 3. Resolve the slot physically.
		if cap(links) < len(tx) {
			links = make([]int, len(tx), 2*len(tx))
		}
		links = links[:len(tx)]
		for i, w := range tx {
			links[i] = w.Link
		}
		success := resolve(links)
		res.AttemptedTx += int64(len(tx))

		// 4. Advance packets and deliver.
		for i, w := range tx {
			if !success[i] {
				continue
			}
			res.SuccessfulTx++
			st := arena.get(w.PacketID)
			st.hop++
			if st.hop == len(st.path) {
				res.Delivered++
				d := Delivery{
					PacketID: w.PacketID,
					Link:     w.Link,
					Injected: st.injected,
					PathLen:  len(st.path),
				}
				for _, o := range obs {
					o.OnDeliver(t, d)
				}
				arena.remove(w.PacketID)
			}
		}
		proto.Feedback(t, tx, success)

		// 5. End-of-slot observation (metrics sampling lives here).
		view := SlotView{Tx: tx, Success: success, InFlight: arena.len()}
		for _, o := range obs {
			o.OnSlot(t, view)
		}

		// 6. Periodic checkpoint, once the protocol is at a boundary.
		// The final slot is skipped — the run is about to finish.
		if capture && t+1 < cfg.Slots {
			if (t+1)%ck.Every == 0 {
				ckDue = true
			}
			if ckDue && checkpointAligned(t+1, model, proc, proto) {
				ckDue = false
				cp, err := captureCheckpoint(t+1, cfg, src, res, arena, model, proc, proto, obs)
				if err == nil {
					err = ck.Sink(cp)
				}
				if err != nil {
					finish(t + 1)
					return res, fmt.Errorf("sim: checkpoint at slot %d: %w", t+1, err)
				}
			}
		}
	}
	finish(cfg.Slots)
	return res, nil
}
