package sim

import (
	"context"
	"math/rand"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// fifoProto is a minimal correct protocol: every link with queued
// packets transmits its head of line each slot.
type fifoProto struct {
	byLink [][]*fifoPkt
	held   int
}

type fifoPkt struct {
	id   int64
	path []int
	hop  int
}

func newFifoProto(links int) *fifoProto { return &fifoProto{byLink: make([][]*fifoPkt, links)} }

func (f *fifoProto) Name() string { return "test-fifo" }

func (f *fifoProto) Inject(t int64, pkts []inject.Packet) {
	for _, ip := range pkts {
		path := make([]int, len(ip.Path))
		for i, e := range ip.Path {
			path[i] = int(e)
		}
		p := &fifoPkt{id: ip.ID, path: path}
		f.byLink[path[0]] = append(f.byLink[path[0]], p)
		f.held++
	}
}

func (f *fifoProto) Slot(t int64, rng *rand.Rand) []Transmission {
	var out []Transmission
	for e := range f.byLink {
		if len(f.byLink[e]) > 0 {
			out = append(out, Transmission{Link: e, PacketID: f.byLink[e][0].id})
		}
	}
	return out
}

func (f *fifoProto) Feedback(t int64, tx []Transmission, success []bool) {
	for i, w := range tx {
		if !success[i] {
			continue
		}
		p := f.byLink[w.Link][0]
		f.byLink[w.Link] = f.byLink[w.Link][1:]
		p.hop++
		if p.hop < len(p.path) {
			next := p.path[p.hop]
			f.byLink[next] = append(f.byLink[next], p)
		} else {
			f.held--
		}
	}
}

// buggyProto transmits a wrong link for its packet.
type buggyProto struct{ fifoProto }

func (b *buggyProto) Slot(t int64, rng *rand.Rand) []Transmission {
	out := b.fifoProto.Slot(t, rng)
	for i := range out {
		out[i].Link = (out[i].Link + 1) % len(b.byLink)
	}
	return out
}

func singleHopProcess(t *testing.T, m interference.Model, links int, p float64) inject.Process {
	t.Helper()
	gens := make([]inject.Generator, links)
	for i := range gens {
		gens[i] = inject.Generator{Choices: []inject.PathChoice{
			{Path: netgraph.Path{netgraph.LinkID(i)}, P: p},
		}}
	}
	s, err := inject.NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestRunConservation(t *testing.T) {
	m := interference.Identity{Links: 4}
	proc := singleHopProcess(t, m, 4, 0.3)
	proto := newFifoProto(4)
	res, err := Run(context.Background(), Config{Slots: 5000, Seed: 121}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("conservation violated: %d delivered + %d in flight != %d injected",
			res.Delivered, res.InFlight, res.Injected)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("correct protocol produced %d errors", res.ProtocolErrors)
	}
	if res.Injected == 0 {
		t.Fatal("no packets injected")
	}
	// Identity model at λ=0.3 per link under FIFO is stable.
	if !res.Verdict.Stable {
		t.Errorf("identity FIFO at 0.3 judged unstable: %+v", res.Verdict)
	}
	// Single-hop latency on an uncontended link is small.
	if res.Latency.Mean() > 10 {
		t.Errorf("mean latency %v too large", res.Latency.Mean())
	}
}

func TestRunMultiHopLatency(t *testing.T) {
	// A 4-hop line: identity model, single generator, occasional packet.
	g := netgraph.LineNetwork(5, 1)
	m := interference.Identity{Links: g.NumLinks()}
	path, ok := netgraph.ShortestPath(g, 0, 4)
	if !ok || len(path) != 4 {
		t.Fatal("bad line path")
	}
	gens := []inject.Generator{{Choices: []inject.PathChoice{{Path: path, P: 0.05}}}}
	proc, err := inject.NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	proto := newFifoProto(g.NumLinks())
	res, err := Run(context.Background(), Config{Slots: 8000, Seed: 122}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// Uncontended 4-hop packets take exactly 4 slots (one per hop).
	if hl := res.HopLatency.Mean(); hl < 0.9 || hl > 2 {
		t.Errorf("per-hop latency %v, want ≈1", hl)
	}
}

func TestRunRejectsBuggyProtocol(t *testing.T) {
	m := interference.Identity{Links: 3}
	proc := singleHopProcess(t, m, 3, 0.4)
	proto := &buggyProto{*newFifoProto(3)}
	res, err := Run(context.Background(), Config{Slots: 300, Seed: 123}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors == 0 {
		t.Fatal("buggy protocol not detected")
	}
	if res.Delivered != 0 {
		t.Fatal("invalid transmissions were delivered")
	}
}

func TestRunOverloadDetectedUnstable(t *testing.T) {
	// MAC model (one success per slot) with total injection rate 2:
	// queues must grow and the verdict must be unstable.
	m := interference.AllOnes{Links: 4}
	proc := singleHopProcess(t, m, 4, 0.5)
	proto := newFifoProto(4)
	res, err := Run(context.Background(), Config{Slots: 4000, Seed: 124}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Stable {
		t.Errorf("overloaded MAC judged stable: %+v", res.Verdict)
	}
	if res.InFlight < 1000 {
		t.Errorf("in-flight %d suspiciously small under 2× overload", res.InFlight)
	}
}

func TestRunConfigValidation(t *testing.T) {
	m := interference.Identity{Links: 1}
	proc := singleHopProcess(t, m, 1, 0.1)
	if _, err := Run(context.Background(), Config{Slots: 0}, m, proc, newFifoProto(1)); err == nil {
		t.Fatal("zero slots accepted")
	}
}

func TestRunDeterministicUnderSeed(t *testing.T) {
	m := interference.Identity{Links: 3}
	run := func() *Result {
		proc := singleHopProcess(t, m, 3, 0.3)
		res, err := Run(context.Background(), Config{Slots: 2000, Seed: 125}, m, proc, newFifoProto(3))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Injected != b.Injected || a.Delivered != b.Delivered || a.SuccessfulTx != b.SuccessfulTx {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestWarmupExcludesEarlyLatencies(t *testing.T) {
	m := interference.Identity{Links: 2}
	proc := singleHopProcess(t, m, 2, 0.2)
	res, err := Run(context.Background(), Config{Slots: 2000, Seed: 126, WarmupFrac: 0.5}, m, proc, newFifoProto(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency.N() >= res.Delivered {
		t.Errorf("warm-up did not exclude anything: %d recorded of %d delivered",
			res.Latency.N(), res.Delivered)
	}
}

func TestReplicate(t *testing.T) {
	m := interference.Identity{Links: 3}
	res, err := Replicate(context.Background(), Config{Slots: 2000, Seed: 500}, 4,
		func(rep int, seed int64) (RunInput, error) {
			gens := make([]inject.Generator, 3)
			for i := range gens {
				gens[i] = inject.Generator{Choices: []inject.PathChoice{
					{Path: netgraph.Path{netgraph.LinkID(i)}, P: 0.3},
				}}
			}
			proc, err := inject.NewStochastic(m, gens)
			if err != nil {
				return RunInput{}, err
			}
			return RunInput{Model: m, Process: proc, Protocol: newFifoProto(3)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	if !res.StableAll {
		t.Error("uncontended identity runs unstable")
	}
	if res.MeanQ.N() != 4 || res.MeanLat.N() != 4 {
		t.Error("aggregation incomplete")
	}
	// Distinct seeds must give distinct injections (with overwhelming probability).
	if res.Runs[0].Injected == res.Runs[1].Injected &&
		res.Runs[1].Injected == res.Runs[2].Injected {
		t.Error("replications suspiciously identical")
	}
	if _, err := Replicate(context.Background(), Config{Slots: 100}, 0, nil); err == nil {
		t.Error("zero reps accepted")
	}
}

func TestPerLinkMetricsAndFairness(t *testing.T) {
	m := interference.Identity{Links: 3}
	proc := singleHopProcess(t, m, 3, 0.3)
	res, err := Run(context.Background(), Config{Slots: 4000, Seed: 127}, m, proc, newFifoProto(3))
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for e := 0; e < 3; e++ {
		if res.PerLinkServed[e] > res.PerLinkAttempts[e] {
			t.Fatalf("link %d served %d > attempted %d", e, res.PerLinkServed[e], res.PerLinkAttempts[e])
		}
		total += res.PerLinkServed[e]
		u := res.LinkUtilization(e)
		if u <= 0 || u > 1 {
			t.Fatalf("link %d utilization %v", e, u)
		}
	}
	if total != res.SuccessfulTx {
		t.Fatalf("per-link sum %d != total successes %d", total, res.SuccessfulTx)
	}
	// Symmetric workload: fairness near 1.
	if f := res.FairnessIndex(); f < 0.95 || f > 1 {
		t.Errorf("fairness %v, want ≈1 for symmetric load", f)
	}
	// Out-of-range utilization query is 0, empty result fairness is 1.
	if res.LinkUtilization(99) != 0 {
		t.Error("out-of-range utilization not 0")
	}
	empty := &Result{PerLinkServed: []int64{}, PerLinkAttempts: []int64{}}
	if empty.FairnessIndex() != 1 {
		t.Error("empty fairness not 1")
	}
}

func TestFairnessDetectsStarvation(t *testing.T) {
	// The Figure-1-style starvation shows up as a depressed index: serve
	// one link everything, another nothing (but attempted).
	r := &Result{
		Slots:           100,
		PerLinkServed:   []int64{90, 0},
		PerLinkAttempts: []int64{90, 50},
	}
	if f := r.FairnessIndex(); f > 0.55 {
		t.Errorf("fairness %v, want ≈0.5 for total starvation of one of two links", f)
	}
}
