// Worker-pool primitives for fanning independent simulation units
// (replications, experiments, parameter sweeps) across goroutines.
//
// Determinism contract: every unit i derives all of its randomness from
// its own seed (Replicate uses SubSeed(base, i)) and writes only state
// owned by index i, so results are bit-identical no matter how many
// workers run them or in which order they finish. Parallelism changes
// wall-clock time, never output.
package sim

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalises a parallelism request: n < 1 selects GOMAXPROCS,
// and the answer never exceeds the number of units.
func Workers(n, units int) int {
	if n < 1 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > units {
		n = units
	}
	if n < 1 {
		n = 1
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most `parallel`
// workers (parallel < 1 = GOMAXPROCS). With one worker it runs inline
// on the calling goroutine in index order — the exact serial path, no
// scheduling involved. fn must confine its writes to per-index state.
func ForEach(n, parallel int, fn func(i int)) {
	ForEachCtx(context.Background(), n, parallel, fn)
}

// ForEachCtx is ForEach with cancellation: once ctx is done, no new
// index is claimed (indices already running finish their fn call, which
// is expected to observe ctx itself if it is long). Completed indices
// are exactly those fn returned from; the caller distinguishes them by
// per-index state. A nil ctx is treated as context.Background().
func ForEachCtx(ctx context.Context, n, parallel int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if ctx == nil {
		ctx = context.Background()
	}
	workers := Workers(parallel, n)
	if workers == 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SubSeed derives the seed of shard i from a base seed via a SplitMix64
// step, giving well-separated streams even for adjacent bases and
// shards — the per-shard RNGs the parallel runners build from these
// share no state. The mapping is a fixed pure function: the same
// (base, shard) pair always names the same stream, which is what makes
// serial and parallel runs bit-identical.
func SubSeed(base int64, shard int) int64 {
	z := uint64(base) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
