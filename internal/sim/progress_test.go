package sim

import (
	"context"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// progressWorkload builds the small single-link workload used by the
// engine tests.
func progressWorkload(t *testing.T) (interference.Model, inject.Process, Protocol) {
	t.Helper()
	model := interference.Identity{Links: 1}
	proc, err := inject.NewStochastic(model, []inject.Generator{{
		Choices: []inject.PathChoice{{Path: netgraph.Path{0}, P: 0.4}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	return model, proc, newFifoProto(1)
}

func TestProgressObserver(t *testing.T) {
	model, proc, proto := progressWorkload(t)
	var snaps []Progress
	obs := NewProgressObserver(4_000, 1_000, func(p Progress) { snaps = append(snaps, p) })
	res, err := Run(context.Background(), Config{Slots: 4_000, Seed: 3}, model, proc, proto, obs)
	if err != nil {
		t.Fatal(err)
	}

	// 4 periodic snapshots plus the final one.
	if len(snaps) != 5 {
		t.Fatalf("got %d snapshots, want 5: %+v", len(snaps), snaps)
	}
	for i, p := range snaps[:4] {
		if want := int64(1_000 * (i + 1)); p.Slots != want {
			t.Errorf("snapshot %d at slot %d, want %d", i, p.Slots, want)
		}
		if p.Done {
			t.Errorf("snapshot %d marked done", i)
		}
		if p.TotalSlots != 4_000 {
			t.Errorf("snapshot %d total %d", i, p.TotalSlots)
		}
	}
	final := snaps[4]
	if !final.Done {
		t.Error("final snapshot not marked done")
	}
	if final.Slots != res.Slots || final.Injected != res.Injected ||
		final.Delivered != res.Delivered || final.InFlight != res.InFlight {
		t.Errorf("final snapshot %+v disagrees with result slots=%d injected=%d delivered=%d inflight=%d",
			final, res.Slots, res.Injected, res.Delivered, res.InFlight)
	}
	// Counters grow monotonically and the live latency summary counts
	// every delivery (no warm-up exclusion on progress).
	for i := 1; i < len(snaps); i++ {
		if snaps[i].Injected < snaps[i-1].Injected || snaps[i].Delivered < snaps[i-1].Delivered {
			t.Errorf("snapshot %d counters went backwards: %+v then %+v", i, snaps[i-1], snaps[i])
		}
	}
	if final.Latency.N != res.Delivered {
		t.Errorf("latency summary has %d samples, want %d deliveries", final.Latency.N, res.Delivered)
	}
	if res.Delivered > 0 && final.Latency.Mean <= 0 {
		t.Errorf("mean latency %v not positive", final.Latency.Mean)
	}
}

func TestProgressObserverCancelled(t *testing.T) {
	model, proc, proto := progressWorkload(t)
	ctx, cancel := context.WithCancel(context.Background())
	var snaps []Progress
	obs := NewProgressObserver(1_000_000, 10_000, func(p Progress) {
		snaps = append(snaps, p)
		if len(snaps) == 2 {
			cancel()
		}
	})
	res, err := Run(ctx, Config{Slots: 1_000_000, Seed: 3}, model, proc, proto, obs)
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	final := snaps[len(snaps)-1]
	if !final.Done {
		t.Fatal("no final snapshot after cancellation")
	}
	if final.Slots != res.Slots || final.Slots >= 1_000_000 {
		t.Errorf("final snapshot reports %d slots, result %d", final.Slots, res.Slots)
	}
}

func TestProgressObserverDefaults(t *testing.T) {
	// every<=0 defaults to total/20 (min 1), and a nil report is inert.
	model, proc, proto := progressWorkload(t)
	var n int
	obs := NewProgressObserver(2_000, 0, func(p Progress) { n++ })
	if _, err := Run(context.Background(), Config{Slots: 2_000, Seed: 1}, model, proc, proto, obs); err != nil {
		t.Fatal(err)
	}
	if n != 21 { // 20 periodic + final
		t.Errorf("default cadence produced %d snapshots, want 21", n)
	}
	inert := NewProgressObserver(100, 0, nil)
	if _, err := Run(context.Background(), Config{Slots: 100, Seed: 1}, model, proc, proto, inert); err != nil {
		t.Fatal(err)
	}
}
