package sim

import (
	"context"
	"math/rand"
	"reflect"
	"sync/atomic"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func TestForEachCoversEveryIndexExactlyOnce(t *testing.T) {
	for _, parallel := range []int{1, 2, 3, 8, 0, -1} {
		const n = 137
		var hits [n]atomic.Int32
		ForEach(n, parallel, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: index %d ran %d times", parallel, i, got)
			}
		}
	}
	ForEach(0, 4, func(i int) { t.Fatal("fn called for n=0") })
}

func TestWorkers(t *testing.T) {
	if got := Workers(4, 2); got != 2 {
		t.Errorf("Workers(4,2) = %d, want 2", got)
	}
	if got := Workers(1, 100); got != 1 {
		t.Errorf("Workers(1,100) = %d, want 1", got)
	}
	if got := Workers(0, 100); got < 1 {
		t.Errorf("Workers(0,100) = %d", got)
	}
}

func TestSubSeedStreamsAreDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for base := int64(0); base < 4; base++ {
		for shard := 0; shard < 64; shard++ {
			s := SubSeed(base, shard)
			if seen[s] {
				t.Fatalf("SubSeed(%d,%d) = %d collides", base, shard, s)
			}
			seen[s] = true
		}
	}
	if SubSeed(42, 7) != SubSeed(42, 7) {
		t.Fatal("SubSeed is not a pure function")
	}
}

// replicateInput builds one replication of a small identity-model run.
func replicateInput(rep int, seed int64) (RunInput, error) {
	g := netgraph.LineNetwork(6, 1)
	model := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 5)
	proc, err := inject.StochasticAtRate(model, []inject.Generator{
		{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
	}, 0.4)
	if err != nil {
		return RunInput{}, err
	}
	return RunInput{Model: model, Process: proc, Protocol: &echoProto{links: g.NumLinks()}}, nil
}

// echoProto transmits every held packet's next hop each slot — enough
// protocol to exercise the full Run loop deterministically.
type echoProto struct {
	links int
	held  []heldPkt
}

type heldPkt struct {
	id   int64
	path []int
	hop  int
}

func (p *echoProto) Name() string { return "echo" }
func (p *echoProto) Inject(t int64, pkts []inject.Packet) {
	for _, ip := range pkts {
		path := make([]int, len(ip.Path))
		for i, e := range ip.Path {
			path[i] = int(e)
		}
		p.held = append(p.held, heldPkt{id: ip.ID, path: path})
	}
}
func (p *echoProto) Slot(t int64, rng *rand.Rand) []Transmission {
	var out []Transmission
	for _, h := range p.held {
		out = append(out, Transmission{Link: h.path[h.hop], PacketID: h.id})
	}
	return out
}
func (p *echoProto) Feedback(t int64, tx []Transmission, success []bool) {
	for i, w := range tx {
		if !success[i] {
			continue
		}
		for j := range p.held {
			if p.held[j].id == w.PacketID {
				p.held[j].hop++
				if p.held[j].hop == len(p.held[j].path) {
					p.held = append(p.held[:j], p.held[j+1:]...)
				}
				break
			}
		}
	}
}

func TestReplicateBitIdenticalAcrossPoolSizes(t *testing.T) {
	cfg := Config{Slots: 4000, Seed: 99}
	var reference *ReplicateResult
	for _, parallel := range []int{1, 8, 0} {
		c := cfg
		c.Parallel = parallel
		res, err := Replicate(context.Background(), c, 6, replicateInput)
		if err != nil {
			t.Fatalf("parallel=%d: %v", parallel, err)
		}
		if reference == nil {
			reference = res
			continue
		}
		if !reflect.DeepEqual(res.Runs, reference.Runs) {
			t.Errorf("parallel=%d produced different replications:\n%+v\nvs serial\n%+v",
				parallel, res.Runs, reference.Runs)
		}
		if res.StableAll != reference.StableAll {
			t.Errorf("parallel=%d verdict %v, serial %v", parallel, res.StableAll, reference.StableAll)
		}
	}
}

func TestReplicateRejectsNonPositiveReps(t *testing.T) {
	if _, err := Replicate(context.Background(), Config{Slots: 10, Seed: 1}, 0, replicateInput); err == nil {
		t.Fatal("reps=0 accepted")
	}
}
