// The observer pipeline: metrics are not baked into the engine loop but
// collected by Observer values the engine notifies at each lifecycle
// point. The stock observers below reproduce the classic latency, queue
// and per-link metrics and write them into Result on OnEnd; callers can
// attach custom observers (per-window adversary accounting, frame
// occupancy traces, …) to Run without touching the engine.
package sim

import (
	"dynsched/internal/inject"
	"dynsched/internal/stats"
)

// SlotView is the snapshot of one resolved slot handed to observers.
// The Tx and Success slices are only valid for the duration of the
// OnSlot call — the engine reuses them across slots; copy what you keep.
type SlotView struct {
	// Tx holds the validated transmissions the protocol attempted this
	// slot; Success[i] reports whether Tx[i] went through.
	Tx      []Transmission
	Success []bool
	// InFlight is the number of packets still queued after this slot's
	// deliveries.
	InFlight int
}

// Delivery describes one packet reaching the end of its path.
type Delivery struct {
	PacketID int64
	Link     int   // the final link of the packet's path
	Injected int64 // the slot the packet was injected at
	PathLen  int   // hops travelled end to end
}

// Observer receives simulation lifecycle events. Implementations are
// driven from the engine goroutine only, so they need no locking; a
// replicated run gets a fresh observer per replication (see RunInput).
type Observer interface {
	// OnInject is called after the protocol received the slot's injected
	// packets (only on slots that inject at least one). The pkts slice
	// is only valid for the duration of the call — injection processes
	// reuse it across slots (see inject.Process.Step); copy any packets
	// you keep. The Path slices inside are stable and may be retained.
	OnInject(t int64, pkts []inject.Packet)
	// OnSlot is called at the end of every slot, after feedback.
	OnSlot(t int64, v SlotView)
	// OnDeliver is called once per packet delivered, before OnSlot.
	OnDeliver(t int64, d Delivery)
	// OnEnd is called once when the run finishes (or is cancelled), in
	// attachment order — stock observers have filled Result's metric
	// fields by the time custom observers run.
	OnEnd(r *Result)
}

// BaseObserver is a no-op Observer for embedding, so custom observers
// only implement the events they care about.
type BaseObserver struct{}

// OnInject implements Observer.
func (BaseObserver) OnInject(int64, []inject.Packet) {}

// OnSlot implements Observer.
func (BaseObserver) OnSlot(int64, SlotView) {}

// OnDeliver implements Observer.
func (BaseObserver) OnDeliver(int64, Delivery) {}

// OnEnd implements Observer.
func (BaseObserver) OnEnd(*Result) {}

// latencyObserver reproduces the packet-latency metrics: a histogram of
// end-to-end latencies and a per-hop latency summary, excluding
// deliveries during the warm-up period.
type latencyObserver struct {
	BaseObserver
	warmupEnd int64
	hist      *stats.Histogram
	hop       stats.Summary
}

func (o *latencyObserver) OnDeliver(t int64, d Delivery) {
	if t < o.warmupEnd {
		return
	}
	lat := float64(t - d.Injected + 1)
	o.hist.Add(lat)
	o.hop.Add(lat / float64(d.PathLen))
}

func (o *latencyObserver) OnEnd(r *Result) {
	r.Latency = o.hist
	r.HopLatency = o.hop
}

// queueObserver samples the in-flight packet count every `sample` slots
// and always includes the final executed slot, so the series never ends
// mid-run; the stability verdict is fitted over the sampled series.
type queueObserver struct {
	BaseObserver
	sample int64
	series stats.Series
	lastT  int64
	lastV  float64
	seen   bool
}

func (o *queueObserver) OnSlot(t int64, v SlotView) {
	o.lastT, o.lastV, o.seen = t, float64(v.InFlight), true
	if t%o.sample == 0 {
		o.series.Append(float64(t), float64(v.InFlight))
	}
}

func (o *queueObserver) OnEnd(r *Result) {
	if o.seen && o.lastT%o.sample != 0 {
		o.series.Append(float64(o.lastT), o.lastV)
	}
	r.Queue = o.series
	r.Verdict = o.series.Stability()
}

// linkObserver accumulates per-link attempt and service counts, the
// inputs of LinkUtilization and FairnessIndex.
type linkObserver struct {
	BaseObserver
	served   []int64
	attempts []int64
}

func (o *linkObserver) OnSlot(t int64, v SlotView) {
	for i, tx := range v.Tx {
		o.attempts[tx.Link]++
		if v.Success[i] {
			o.served[tx.Link]++
		}
	}
}

func (o *linkObserver) OnEnd(r *Result) {
	r.PerLinkServed = o.served
	r.PerLinkAttempts = o.attempts
}
