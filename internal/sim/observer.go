// The observer pipeline: metrics are not baked into the engine loop but
// collected by Observer values the engine notifies at each lifecycle
// point. The stock observers below reproduce the classic latency, queue
// and per-link metrics and write them into Result on OnEnd; callers can
// attach custom observers (per-window adversary accounting, frame
// occupancy traces, …) to Run without touching the engine.
package sim

import (
	"encoding/json"
	"fmt"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/stats"
)

// SlotView is the snapshot of one resolved slot handed to observers.
// The Tx and Success slices are only valid for the duration of the
// OnSlot call — the engine reuses them across slots; copy what you keep.
type SlotView struct {
	// Tx holds the validated transmissions the protocol attempted this
	// slot; Success[i] reports whether Tx[i] went through.
	Tx      []Transmission
	Success []bool
	// InFlight is the number of packets still queued after this slot's
	// deliveries.
	InFlight int
}

// Delivery describes one packet reaching the end of its path.
type Delivery struct {
	PacketID int64
	Link     int   // the final link of the packet's path
	Injected int64 // the slot the packet was injected at
	PathLen  int   // hops travelled end to end
}

// Observer receives simulation lifecycle events. Implementations are
// driven from the engine goroutine only, so they need no locking; a
// replicated run gets a fresh observer per replication (see RunInput).
type Observer interface {
	// OnInject is called after the protocol received the slot's injected
	// packets (only on slots that inject at least one). The pkts slice
	// is only valid for the duration of the call — injection processes
	// reuse it across slots (see inject.Process.Step); copy any packets
	// you keep. The Path slices inside are stable and may be retained.
	OnInject(t int64, pkts []inject.Packet)
	// OnSlot is called at the end of every slot, after feedback.
	OnSlot(t int64, v SlotView)
	// OnDeliver is called once per packet delivered, before OnSlot.
	OnDeliver(t int64, d Delivery)
	// OnEnd is called once when the run finishes (or is cancelled), in
	// attachment order — stock observers have filled Result's metric
	// fields by the time custom observers run.
	OnEnd(r *Result)
}

// ResolveObserver is an optional Observer extension notified once per
// run, before the first slot, with the interference model and the
// requested intra-slot parallelism (Config.ResolveParallelism, 0 =
// model default). Observers use it to surface resolver configuration
// and cumulative resolver statistics (interference
// ResolveStatsProvider) without touching the hot loop.
type ResolveObserver interface {
	OnResolve(model interference.Model, requested int)
}

// BaseObserver is a no-op Observer for embedding, so custom observers
// only implement the events they care about.
type BaseObserver struct{}

// OnInject implements Observer.
func (BaseObserver) OnInject(int64, []inject.Packet) {}

// OnSlot implements Observer.
func (BaseObserver) OnSlot(int64, SlotView) {}

// OnDeliver implements Observer.
func (BaseObserver) OnDeliver(int64, Delivery) {}

// OnEnd implements Observer.
func (BaseObserver) OnEnd(*Result) {}

// latencyObserver reproduces the packet-latency metrics — all of them
// streaming aggregates with bounded memory: a histogram of end-to-end
// latencies, a mergeable quantile digest of the same values, and a
// per-hop latency summary, excluding deliveries during the warm-up
// period.
type latencyObserver struct {
	BaseObserver
	warmupEnd int64
	hist      *stats.Histogram
	digest    *stats.Digest
	hop       stats.Summary
}

func (o *latencyObserver) OnDeliver(t int64, d Delivery) {
	if t < o.warmupEnd {
		return
	}
	lat := float64(t - d.Injected + 1)
	o.hist.Add(lat)
	o.digest.Add(lat)
	o.hop.Add(lat / float64(d.PathLen))
}

func (o *latencyObserver) OnEnd(r *Result) {
	r.Latency = o.hist
	r.LatencyDigest = o.digest
	r.HopLatency = o.hop
}

type latencyState struct {
	Hist   *stats.Histogram `json:"hist"`
	Digest *stats.Digest    `json:"digest"`
	Hop    stats.Summary    `json:"hop"`
}

// CheckpointState implements CheckpointableObserver.
func (o *latencyObserver) CheckpointState() ([]byte, error) {
	return json.Marshal(latencyState{Hist: o.hist, Digest: o.digest, Hop: o.hop})
}

// RestoreState implements CheckpointableObserver.
func (o *latencyObserver) RestoreState(data []byte) error {
	var st latencyState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.Hist == nil || st.Digest == nil {
		return fmt.Errorf("sim: latency checkpoint missing histogram or digest")
	}
	o.hist, o.digest, o.hop = st.Hist, st.Digest, st.Hop
	return nil
}

// maxQueueSamples bounds the queue series: when the series reaches the
// cap it is thinned to half and the sampling stride doubles, so a
// long-horizon run with a fine SampleEvery holds a bounded, evenly
// spaced series instead of an unbounded one. Default sampling
// (Slots/512) stays far under the cap, so short runs are unaffected —
// and byte-identical to the pre-cap engine.
const maxQueueSamples = 2048

// queueObserver samples the in-flight packet count every
// `sample`·`stride` slots and always includes the final executed slot,
// so the series never ends mid-run; the stability verdict is fitted
// over the sampled series.
type queueObserver struct {
	BaseObserver
	sample int64
	stride int64
	series stats.Series
	lastT  int64
	lastV  float64
	seen   bool
}

// newQueueObserver sizes the sample series for the run up front —
// slots/sample points, capped at the thinning bound — so steady-state
// sampling appends without reallocation.
func newQueueObserver(slots, sample int64) *queueObserver {
	o := &queueObserver{sample: sample, stride: 1}
	expect := slots/sample + 2
	if expect > maxQueueSamples {
		expect = maxQueueSamples
	}
	o.series.Grow(int(expect))
	return o
}

func (o *queueObserver) OnSlot(t int64, v SlotView) {
	o.lastT, o.lastV, o.seen = t, float64(v.InFlight), true
	if t%(o.sample*o.stride) == 0 {
		o.series.Append(float64(t), float64(v.InFlight))
		if o.series.Len() >= maxQueueSamples {
			o.series.Thin()
			o.stride *= 2
		}
	}
}

func (o *queueObserver) OnEnd(r *Result) {
	if o.seen && o.lastT%(o.sample*o.stride) != 0 {
		o.series.Append(float64(o.lastT), o.lastV)
	}
	r.Queue = o.series
	r.Verdict = o.series.Stability()
}

type queueState struct {
	Series stats.Series `json:"series"`
	Stride int64        `json:"stride"`
	LastT  int64        `json:"lastT"`
	LastV  float64      `json:"lastV"`
	Seen   bool         `json:"seen"`
}

// CheckpointState implements CheckpointableObserver.
func (o *queueObserver) CheckpointState() ([]byte, error) {
	return json.Marshal(queueState{Series: o.series, Stride: o.stride, LastT: o.lastT, LastV: o.lastV, Seen: o.seen})
}

// RestoreState implements CheckpointableObserver.
func (o *queueObserver) RestoreState(data []byte) error {
	var st queueState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	o.series, o.lastT, o.lastV, o.seen = st.Series, st.LastT, st.LastV, st.Seen
	o.stride = st.Stride
	if o.stride < 1 {
		o.stride = 1
	}
	return nil
}

// linkObserver accumulates per-link attempt and service counts, the
// inputs of LinkUtilization and FairnessIndex.
type linkObserver struct {
	BaseObserver
	served   []int64
	attempts []int64
}

func (o *linkObserver) OnSlot(t int64, v SlotView) {
	for i, tx := range v.Tx {
		o.attempts[tx.Link]++
		if v.Success[i] {
			o.served[tx.Link]++
		}
	}
}

func (o *linkObserver) OnEnd(r *Result) {
	r.PerLinkServed = o.served
	r.PerLinkAttempts = o.attempts
}

type linkState struct {
	Served   []int64 `json:"served"`
	Attempts []int64 `json:"attempts"`
}

// CheckpointState implements CheckpointableObserver.
func (o *linkObserver) CheckpointState() ([]byte, error) {
	return json.Marshal(linkState{Served: o.served, Attempts: o.attempts})
}

// RestoreState implements CheckpointableObserver.
func (o *linkObserver) RestoreState(data []byte) error {
	var st linkState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(st.Served) != len(o.served) || len(st.Attempts) != len(o.attempts) {
		return fmt.Errorf("sim: link checkpoint for %d links, model has %d", len(st.Served), len(o.served))
	}
	o.served, o.attempts = st.Served, st.Attempts
	return nil
}
