package sim

import (
	"math/rand"
	"testing"

	"dynsched/internal/netgraph"
	"dynsched/internal/testenv"
)

// TestPacketArenaMatchesMap drives the arena with a long random
// insert/lookup/remove workload and checks every observable against a
// reference map — the structure the arena replaced.
func TestPacketArenaMatchesMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	a := newPacketArena()
	ref := map[int64]struct {
		hop      int
		injected int64
	}{}
	path := []int{1, 2, 3}
	var ids []int64
	nextID := int64(0)
	for step := 0; step < 50_000; step++ {
		switch op := rng.Intn(10); {
		case op < 4: // insert fresh
			nextID++
			a.insert(nextID, path, int64(step))
			ref[nextID] = struct {
				hop      int
				injected int64
			}{0, int64(step)}
			ids = append(ids, nextID)
		case op < 6 && len(ids) > 0: // advance a random live packet
			id := ids[rng.Intn(len(ids))]
			if _, ok := ref[id]; !ok {
				continue
			}
			st := a.get(id)
			if st == nil {
				t.Fatalf("step %d: id %d missing from arena", step, id)
			}
			st.hop++
			r := ref[id]
			r.hop++
			ref[id] = r
		case op < 9 && len(ids) > 0: // remove a random packet
			id := ids[rng.Intn(len(ids))]
			a.remove(id)
			delete(ref, id)
		default: // re-insert an existing id (overwrite semantics)
			if len(ids) == 0 {
				continue
			}
			id := ids[rng.Intn(len(ids))]
			if _, ok := ref[id]; !ok {
				continue
			}
			a.insert(id, path, int64(step))
			ref[id] = struct {
				hop      int
				injected int64
			}{0, int64(step)}
		}
		if a.len() != len(ref) {
			t.Fatalf("step %d: arena len %d, reference %d", step, a.len(), len(ref))
		}
	}
	for id, want := range ref {
		st := a.get(id)
		if st == nil {
			t.Fatalf("id %d missing at end", id)
		}
		if st.hop != want.hop || st.injected != want.injected || st.id != id {
			t.Fatalf("id %d: state (%d,%d,%d), want (%d,%d)", id, st.id, st.hop, st.injected, want.hop, want.injected)
		}
	}
	for _, id := range ids {
		if _, ok := ref[id]; !ok {
			if a.get(id) != nil {
				t.Fatalf("removed id %d still resolvable", id)
			}
		}
	}
}

// TestPacketArenaSteadyStateZeroAllocs pins the free-list guarantee:
// once the arena has reached its high-water mark, the insert → get →
// remove packet lifecycle does not allocate.
func TestPacketArenaSteadyStateZeroAllocs(t *testing.T) {
	testenv.SkipIfRace(t)
	a := newPacketArena()
	path := []int{0, 1}
	id := int64(0)
	for i := 0; i < 512; i++ { // reach a stable table size
		id++
		a.insert(id, path, 0)
	}
	for i := int64(1); i <= 512; i++ {
		a.remove(i)
	}
	got := testing.AllocsPerRun(500, func() {
		id++
		a.insert(id, path, 7)
		st := a.get(id)
		st.hop++
		a.remove(id)
	})
	if got != 0 {
		t.Errorf("steady-state packet lifecycle: %v allocs, want 0", got)
	}
}

// TestPathInternerSharesBacking pins interning semantics: equal routes
// share one slice, distinct routes never alias, and conversion is
// correct.
func TestPathInternerSharesBacking(t *testing.T) {
	pi := NewPathInterner()
	p1 := netgraph.Path{1, 2, 3}
	p2 := netgraph.Path{1, 2, 3}
	p3 := netgraph.Path{1, 2, 4}
	p4 := netgraph.Path{1, 2}
	a, b, c, d := pi.Ints(p1), pi.Ints(p2), pi.Ints(p3), pi.Ints(p4)
	if &a[0] != &b[0] {
		t.Error("equal paths did not intern to the same backing")
	}
	if &a[0] == &c[0] {
		t.Error("distinct paths alias")
	}
	if len(d) != 2 || d[0] != 1 || d[1] != 2 {
		t.Errorf("prefix path converted to %v", d)
	}
	for i, e := range p3 {
		if c[i] != int(e) {
			t.Errorf("conversion mismatch at %d: %d vs %d", i, c[i], e)
		}
	}
	if got := testing.AllocsPerRun(200, func() { pi.Ints(p1) }); got != 0 && !testenv.RaceEnabled {
		t.Errorf("interning a known path: %v allocs, want 0", got)
	}
}
