package sim

// The packet arena: the simulator's ground-truth store for in-flight
// packets. The previous engine kept a map[int64]*pktState and allocated
// a fresh pktState (plus a path copy) per injected packet; under heavy
// traffic that put two heap allocations and a map insert/delete on
// every packet lifecycle and a hash lookup on every transmission. The
// arena replaces it with a flat slice of packet slots recycled through
// a free list, addressed by dense handles, plus a compact open-
// addressing index from packet ID to handle. Steady state allocates
// nothing: delivered packets return their slots to the free list, and
// the index reuses its cells (growing only when the live population
// exceeds every previous high-water mark).

// pktState is the simulator's ground truth for an in-flight packet.
type pktState struct {
	id       int64
	injected int64
	path     []int // interned: shared with other packets on the same route
	hop      int   // next hop index
}

// packetArena stores in-flight packets in recycled slots.
type packetArena struct {
	slots []pktState
	free  []int32

	// Open-addressing index: keys/vals form a power-of-two hash table
	// mapping packet ID → slot handle, with linear probing and
	// backward-shift deletion (no tombstones). vals[i] < 0 marks an
	// empty cell.
	keys []int64
	vals []int32
	mask uint64
	live int
}

func newPacketArena() *packetArena {
	a := &packetArena{}
	a.initIndex(64)
	return a
}

// hashID mixes a packet ID into a table position (splitmix64 finalizer).
func hashID(id int64) uint64 {
	z := uint64(id) + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (a *packetArena) initIndex(capacity int) {
	a.keys = make([]int64, capacity)
	a.vals = make([]int32, capacity)
	for i := range a.vals {
		a.vals[i] = -1
	}
	a.mask = uint64(capacity - 1)
}

// len returns the number of in-flight packets.
func (a *packetArena) len() int { return a.live }

// find returns the table position of id, or the first empty position of
// its probe sequence (with found=false) when absent.
func (a *packetArena) find(id int64) (pos uint64, found bool) {
	pos = hashID(id) & a.mask
	for {
		if a.vals[pos] < 0 {
			return pos, false
		}
		if a.keys[pos] == id {
			return pos, true
		}
		pos = (pos + 1) & a.mask
	}
}

// get returns the packet with the given ID, or nil. The pointer is
// valid until the next insert (slot storage may move when it grows).
func (a *packetArena) get(id int64) *pktState {
	pos, ok := a.find(id)
	if !ok {
		return nil
	}
	return &a.slots[a.vals[pos]]
}

// insert registers a packet, reusing a free slot when one exists. An
// already-present ID overwrites its slot in place (matching the old
// map semantics for a process that reuses IDs). The returned pointer is
// valid until the next insert.
func (a *packetArena) insert(id int64, path []int, injected int64) *pktState {
	pos, found := a.find(id)
	if found {
		st := &a.slots[a.vals[pos]]
		st.path, st.hop, st.injected = path, 0, injected
		return st
	}
	// Keep the table under 3/4 load so probe chains stay short.
	if uint64(a.live+1)*4 > uint64(len(a.keys))*3 {
		a.grow()
		pos, _ = a.find(id)
	}
	var h int32
	if n := len(a.free); n > 0 {
		h = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		a.slots = append(a.slots, pktState{})
		h = int32(len(a.slots) - 1)
	}
	st := &a.slots[h]
	st.id, st.path, st.hop, st.injected = id, path, 0, injected
	a.keys[pos], a.vals[pos] = id, h
	a.live++
	return st
}

// remove deletes the packet with the given ID, returning its slot to
// the free list. Removing an absent ID is a no-op.
func (a *packetArena) remove(id int64) {
	pos, found := a.find(id)
	if !found {
		return
	}
	h := a.vals[pos]
	a.slots[h].path = nil
	a.free = append(a.free, h)
	a.live--
	// Backward-shift deletion: close the probe chain by moving any
	// displaced entry that hashed at or before the vacated cell into it.
	i := pos
	j := pos
	for {
		a.vals[i] = -1
		for {
			j = (j + 1) & a.mask
			if a.vals[j] < 0 {
				return
			}
			k := hashID(a.keys[j]) & a.mask
			// Move entry j into the hole at i unless its home position k
			// lies cyclically within (i, j] — then it is already as close
			// to home as the probe chain allows.
			if i <= j {
				if i < k && k <= j {
					continue
				}
			} else if i < k || k <= j {
				continue
			}
			break
		}
		a.keys[i], a.vals[i] = a.keys[j], a.vals[j]
		i = j
	}
}

// grow doubles the index table and rehashes every live entry.
func (a *packetArena) grow() {
	oldKeys, oldVals := a.keys, a.vals
	a.initIndex(2 * len(oldKeys))
	for i, v := range oldVals {
		if v < 0 {
			continue
		}
		pos, _ := a.find(oldKeys[i])
		a.keys[pos], a.vals[pos] = oldKeys[i], v
	}
}
