// Engine checkpointing: a running simulation can serialize its full
// semantic state — RNG position, result counters, every in-flight
// packet, and the private state of the injection process, protocol,
// model, and observers — into a Checkpoint, and a fresh Run can resume
// from one, continuing the run bit-identically to an uninterrupted
// execution at the same seed. A billion-slot unit interrupted by a
// crash restarts from its last checkpoint instead of slot 0.
//
// RNG state is the linchpin: math/rand sources are not serializable,
// but position in the stream is (seed, draw count) — see
// internal/randx. Components follow the same idea or serialize their
// state directly via the Checkpointable interface, implemented
// structurally (sim is not imported) by internal/core, internal/inject
// and internal/interference.
//
// Not every slot is checkpointable: the dynamic protocol rebuilds its
// frame execution schedule at each frame start and holds unserializable
// mid-frame scratch state, so it implements CheckpointAligner and the
// engine defers a due checkpoint until the next frame boundary.
package sim

import (
	"encoding/json"
	"fmt"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/randx"
)

// Checkpointable is implemented by simulation components (injection
// processes, protocols, interference models) whose behaviour depends
// on accumulated state. CheckpointState serializes the component's
// semantic state; RestoreState, called on a freshly constructed
// component with an identical configuration, must bring it to the
// point where it continues bit-identically.
type Checkpointable interface {
	CheckpointState() ([]byte, error)
	RestoreState(data []byte) error
}

// CheckpointAligner is implemented by components that can only
// checkpoint at certain slots. CheckpointAligned reports whether a
// checkpoint may be taken when `next` is the next slot to execute
// (i.e. slots [0, next) are complete). The engine defers a due
// checkpoint until every aligner agrees.
type CheckpointAligner interface {
	CheckpointAligned(next int64) bool
}

// CheckpointableObserver is an Observer whose accumulated metrics can
// be checkpointed and restored. Observers that do not implement it are
// resumed with zero state — acceptable only for observers whose output
// does not feed Result (the stock metric observers all implement it).
type CheckpointableObserver interface {
	Observer
	Checkpointable
}

// CheckpointSpec configures checkpointing for a Run.
type CheckpointSpec struct {
	// Every requests a checkpoint each time this many slots complete
	// (deferred to the next aligned slot — see CheckpointAligner).
	// 0 disables capture.
	Every int64
	// Sink receives each captured checkpoint; an error aborts the run.
	// Called on the engine goroutine — keep it bounded (an fsync'd
	// file write is the intended use).
	Sink func(cp *Checkpoint) error
	// Resume, when non-nil, fast-forwards the run to the checkpoint's
	// slot before executing: slots [0, Resume.Slot) are not
	// re-simulated. The Config must be identical to the one that
	// produced the checkpoint.
	Resume *Checkpoint
}

// CheckpointPacket is one in-flight packet's serialized state.
type CheckpointPacket struct {
	ID       int64         `json:"id"`
	Injected int64         `json:"injected"`
	Hop      int           `json:"hop"`
	Path     netgraph.Path `json:"path"`
}

// Checkpoint is a full serialized engine state at a slot boundary.
type Checkpoint struct {
	// Slot is the number of completed slots; resume continues at this
	// slot.
	Slot int64 `json:"slot"`
	// Seed pins the config the checkpoint belongs to; resume under a
	// different seed is refused.
	Seed int64 `json:"seed"`
	// RNGDraws is the engine RNG's position in its stream.
	RNGDraws uint64 `json:"rngDraws"`

	Injected       int64 `json:"injected"`
	Delivered      int64 `json:"delivered"`
	ProtocolErrors int64 `json:"protocolErrors,omitempty"`
	AttemptedTx    int64 `json:"attemptedTx"`
	SuccessfulTx   int64 `json:"successfulTx"`

	// Packets are the in-flight packets, in arena order.
	Packets []CheckpointPacket `json:"packets"`

	// Process, Protocol and Model hold the components' serialized
	// private state (Model omitted for stateless models).
	Process  json.RawMessage `json:"process,omitempty"`
	Protocol json.RawMessage `json:"protocol,omitempty"`
	Model    json.RawMessage `json:"model,omitempty"`

	// Observers holds one entry per attached observer, in attachment
	// order; null entries mark observers without checkpoint support.
	Observers []json.RawMessage `json:"observers,omitempty"`
}

// SupportsCheckpoint reports whether a run built from these components
// can be checkpointed and resumed: the injection process and protocol
// must be Checkpointable, and a model that exposes readiness (the
// lossy wrapper, whose RNG must be draw-counted) must report ready.
// Stateless models need no support.
func SupportsCheckpoint(model interference.Model, proc inject.Process, proto Protocol) bool {
	if _, ok := proc.(Checkpointable); !ok {
		return false
	}
	if _, ok := proto.(Checkpointable); !ok {
		return false
	}
	if r, ok := model.(interface{ CheckpointReady() bool }); ok && !r.CheckpointReady() {
		return false
	}
	return true
}

// checkpointAligned reports whether every component that constrains
// checkpoint timing agrees that `next` is a valid boundary.
func checkpointAligned(next int64, model interference.Model, proc inject.Process, proto Protocol) bool {
	for _, c := range []any{proto, proc, model} {
		if a, ok := c.(CheckpointAligner); ok && !a.CheckpointAligned(next) {
			return false
		}
	}
	return true
}

// captureCheckpoint serializes the engine state with `next` slots
// completed.
func captureCheckpoint(next int64, cfg Config, src *randx.CountingSource, res *Result,
	arena *packetArena, model interference.Model, proc inject.Process, proto Protocol, obs []Observer) (*Checkpoint, error) {
	cp := &Checkpoint{
		Slot:           next,
		Seed:           cfg.Seed,
		RNGDraws:       src.Draws(),
		Injected:       res.Injected,
		Delivered:      res.Delivered,
		ProtocolErrors: res.ProtocolErrors,
		AttemptedTx:    res.AttemptedTx,
		SuccessfulTx:   res.SuccessfulTx,
	}
	cp.Packets = make([]CheckpointPacket, 0, arena.len())
	for i := range arena.slots {
		st := &arena.slots[i]
		if st.path == nil {
			continue
		}
		path := make(netgraph.Path, len(st.path))
		for k, e := range st.path {
			path[k] = netgraph.LinkID(e)
		}
		cp.Packets = append(cp.Packets, CheckpointPacket{
			ID: st.id, Injected: st.injected, Hop: st.hop, Path: path,
		})
	}
	var err error
	if cp.Process, err = componentState(proc, "injection process"); err != nil {
		return nil, err
	}
	if cp.Protocol, err = componentState(proto, "protocol"); err != nil {
		return nil, err
	}
	if c, ok := model.(Checkpointable); ok {
		if cp.Model, err = c.CheckpointState(); err != nil {
			return nil, fmt.Errorf("model: %w", err)
		}
	}
	cp.Observers = make([]json.RawMessage, len(obs))
	for i, o := range obs {
		if c, ok := o.(Checkpointable); ok {
			if cp.Observers[i], err = c.CheckpointState(); err != nil {
				return nil, fmt.Errorf("observer %d: %w", i, err)
			}
		}
	}
	return cp, nil
}

func componentState(v any, what string) (json.RawMessage, error) {
	c, ok := v.(Checkpointable)
	if !ok {
		return nil, fmt.Errorf("%s (%T) does not support checkpointing", what, v)
	}
	data, err := c.CheckpointState()
	if err != nil {
		return nil, fmt.Errorf("%s: %w", what, err)
	}
	return data, nil
}

// restoreCheckpoint rebuilds engine state from cp, returning the slot
// to continue from.
func restoreCheckpoint(cp *Checkpoint, cfg Config, src *randx.CountingSource, res *Result,
	arena *packetArena, intern *PathInterner, model interference.Model, proc inject.Process, proto Protocol, obs []Observer) (int64, error) {
	if cp.Seed != cfg.Seed {
		return 0, fmt.Errorf("checkpoint seed %d does not match config seed %d", cp.Seed, cfg.Seed)
	}
	if cp.Slot <= 0 || cp.Slot >= cfg.Slots {
		return 0, fmt.Errorf("checkpoint slot %d outside run of %d slots", cp.Slot, cfg.Slots)
	}
	if err := src.SeekTo(cp.RNGDraws); err != nil {
		return 0, err
	}
	res.Injected = cp.Injected
	res.Delivered = cp.Delivered
	res.ProtocolErrors = cp.ProtocolErrors
	res.AttemptedTx = cp.AttemptedTx
	res.SuccessfulTx = cp.SuccessfulTx
	for _, p := range cp.Packets {
		st := arena.insert(p.ID, intern.Ints(p.Path), p.Injected)
		st.hop = p.Hop
	}
	if err := restoreComponent(proc, cp.Process, "injection process"); err != nil {
		return 0, err
	}
	if err := restoreComponent(proto, cp.Protocol, "protocol"); err != nil {
		return 0, err
	}
	if cp.Model != nil {
		if err := restoreComponent(model, cp.Model, "model"); err != nil {
			return 0, err
		}
	}
	if len(cp.Observers) > 0 {
		if len(cp.Observers) != len(obs) {
			return 0, fmt.Errorf("checkpoint has %d observer states, run has %d observers — attach the same observers as the captured run", len(cp.Observers), len(obs))
		}
		for i, raw := range cp.Observers {
			if raw == nil || string(raw) == "null" {
				// Non-checkpointable observers capture no state; a JSON
				// round-trip through disk renders that absence as null.
				continue
			}
			c, ok := obs[i].(Checkpointable)
			if !ok {
				return 0, fmt.Errorf("observer %d (%T) has checkpoint state but no restore support", i, obs[i])
			}
			if err := c.RestoreState(raw); err != nil {
				return 0, fmt.Errorf("observer %d: %w", i, err)
			}
		}
	}
	return cp.Slot, nil
}

func restoreComponent(v any, data json.RawMessage, what string) error {
	if data == nil {
		return fmt.Errorf("checkpoint is missing %s state", what)
	}
	c, ok := v.(Checkpointable)
	if !ok {
		return fmt.Errorf("%s (%T) does not support checkpoint restore", what, v)
	}
	if err := c.RestoreState(data); err != nil {
		return fmt.Errorf("%s: %w", what, err)
	}
	return nil
}
