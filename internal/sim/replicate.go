package sim

import (
	"context"
	"errors"
	"fmt"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/stats"
)

// RunInput bundles one replication's independently constructed
// components. Replications must not share mutable state.
type RunInput struct {
	Model    interference.Model
	Process  inject.Process
	Protocol Protocol
	// Observers are extra observers attached to this replication's run;
	// build must return fresh instances per replication.
	Observers []Observer
}

// Replication is one run's headline numbers.
type Replication struct {
	Rep       int     `json:"rep"`
	Stable    bool    `json:"stable"`
	MeanQ     float64 `json:"meanQueue"`
	MaxQ      float64 `json:"maxQueue"`
	MeanLat   float64 `json:"meanLatency"`
	Delivered int64   `json:"delivered"`
	Injected  int64   `json:"injected"`
}

// ReplicateResult aggregates independent runs. Runs holds one entry per
// completed replication, sorted by replication index; a cancelled
// Replicate returns the completed subset alongside the error — on a
// parallel pool that subset need not be a prefix, so consumers must
// read Replication.Rep rather than assume Runs[i] is replication i.
type ReplicateResult struct {
	Runs      []Replication `json:"runs"`
	StableAll bool          `json:"stableAll"`
	MeanQ     stats.Summary `json:"meanQueue"`   // across-replication distribution of mean queue
	MeanLat   stats.Summary `json:"meanLatency"` // across-replication distribution of mean latency
}

// ReplicationOf summarises one completed run as its replication row.
// It is the single definition of which headline numbers a replication
// carries — Replicate and the execution planner both assemble their
// aggregates from it.
func ReplicationOf(rep int, res *Result) Replication {
	return Replication{
		Rep:       rep,
		Stable:    res.Verdict.Stable,
		MeanQ:     res.Queue.MeanV(),
		MaxQ:      res.Queue.MaxV(),
		MeanLat:   res.Latency.Mean(),
		Delivered: res.Delivered,
		Injected:  res.Injected,
	}
}

// Accumulate folds one completed replication into the aggregate.
// Callers fold rows in replication order starting from a result with
// StableAll == true (the vacuous truth over zero runs).
func (r *ReplicateResult) Accumulate(run Replication) {
	r.Runs = append(r.Runs, run)
	r.StableAll = r.StableAll && run.Stable
	r.MeanQ.Add(run.MeanQ)
	r.MeanLat.Add(run.MeanLat)
}

// Replicate runs `reps` independent simulations on a worker pool of
// cfg.Parallel goroutines (0 = GOMAXPROCS) and aggregates the headline
// metrics. Each replication r derives its own seed SubSeed(cfg.Seed, r),
// so the per-shard RNG streams share no state and the results —
// including their order — are bit-identical for every pool size, serial
// included. build is called once per replication with the replication
// index and its seed, and must return fresh instances (replications
// must not share mutable state; a model's SlotResolver scratch and any
// extra observers, for example, are per-run).
//
// A nil ctx means context.Background(). When ctx is cancelled mid-way,
// Replicate stops starting new replications, aggregates the ones that
// completed, and returns that partial result with an error wrapping the
// context's error.
func Replicate(ctx context.Context, cfg Config, reps int, build func(rep int, seed int64) (RunInput, error)) (*ReplicateResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	runs := make([]Replication, reps)
	done := make([]bool, reps)
	errs := make([]error, reps)
	ForEachCtx(ctx, reps, cfg.Parallel, func(r int) {
		seed := SubSeed(cfg.Seed, r)
		in, err := build(r, seed)
		if err != nil {
			errs[r] = err
			return
		}
		c := cfg
		c.Seed = seed
		res, err := Run(ctx, c, in.Model, in.Process, in.Protocol, in.Observers...)
		if err != nil {
			errs[r] = err
			return
		}
		runs[r] = ReplicationOf(r, res)
		done[r] = true
	})

	var firstErr error
	for _, err := range errs {
		if err != nil && !isCancellation(err) {
			firstErr = err
			break
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}

	out := &ReplicateResult{StableAll: true}
	for r := range runs {
		if !done[r] {
			continue
		}
		out.Accumulate(runs[r])
	}
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("sim: replicate cancelled with %d of %d replications completed: %w", len(out.Runs), reps, err)
	}
	return out, nil
}

// isCancellation reports whether err stems from context cancellation or
// deadline expiry rather than a genuine simulation failure.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
