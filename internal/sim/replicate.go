package sim

import (
	"fmt"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/stats"
)

// RunInput bundles one replication's independently constructed
// components. Replications must not share mutable state.
type RunInput struct {
	Model    interference.Model
	Process  inject.Process
	Protocol Protocol
}

// Replication is one run's headline numbers.
type Replication struct {
	Rep       int
	Stable    bool
	MeanQ     float64
	MaxQ      float64
	MeanLat   float64
	Delivered int64
	Injected  int64
}

// ReplicateResult aggregates R independent runs.
type ReplicateResult struct {
	Runs      []Replication
	StableAll bool
	MeanQ     stats.Summary // across-replication distribution of mean queue
	MeanLat   stats.Summary // across-replication distribution of mean latency
}

// Replicate runs `reps` independent simulations on a worker pool of
// cfg.Parallel goroutines (0 = GOMAXPROCS) and aggregates the headline
// metrics. Each replication r derives its own seed SubSeed(cfg.Seed, r),
// so the per-shard RNG streams share no state and the results —
// including their order — are bit-identical for every pool size, serial
// included. build is called once per replication with the replication
// index and its seed, and must return fresh instances (replications
// must not share mutable state; a model's SlotResolver scratch, for
// example, is per-run).
func Replicate(cfg Config, reps int, build func(rep int, seed int64) (RunInput, error)) (*ReplicateResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	out := &ReplicateResult{Runs: make([]Replication, reps), StableAll: true}
	errs := make([]error, reps)
	ForEach(reps, cfg.Parallel, func(r int) {
		seed := SubSeed(cfg.Seed, r)
		in, err := build(r, seed)
		if err != nil {
			errs[r] = err
			return
		}
		c := cfg
		c.Seed = seed
		res, err := Run(c, in.Model, in.Process, in.Protocol)
		if err != nil {
			errs[r] = err
			return
		}
		out.Runs[r] = Replication{
			Rep:       r,
			Stable:    res.Verdict.Stable,
			MeanQ:     res.Queue.MeanV(),
			MaxQ:      res.Queue.MaxV(),
			MeanLat:   res.Latency.Mean(),
			Delivered: res.Delivered,
			Injected:  res.Injected,
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, run := range out.Runs {
		out.StableAll = out.StableAll && run.Stable
		out.MeanQ.Add(run.MeanQ)
		out.MeanLat.Add(run.MeanLat)
	}
	return out, nil
}
