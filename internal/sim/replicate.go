package sim

import (
	"fmt"
	"sync"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/stats"
)

// RunInput bundles one replication's independently constructed
// components. Replications must not share mutable state.
type RunInput struct {
	Model    interference.Model
	Process  inject.Process
	Protocol Protocol
}

// Replication is one run's headline numbers.
type Replication struct {
	Rep       int
	Stable    bool
	MeanQ     float64
	MaxQ      float64
	MeanLat   float64
	Delivered int64
	Injected  int64
}

// ReplicateResult aggregates R independent runs.
type ReplicateResult struct {
	Runs      []Replication
	StableAll bool
	MeanQ     stats.Summary // across-replication distribution of mean queue
	MeanLat   stats.Summary // across-replication distribution of mean latency
}

// Replicate runs `reps` independent simulations in parallel with
// distinct seeds derived from cfg.Seed and aggregates the headline
// metrics. build is called once per replication with the replication
// index and its seed, and must return fresh instances.
func Replicate(cfg Config, reps int, build func(rep int, seed int64) (RunInput, error)) (*ReplicateResult, error) {
	if reps < 1 {
		return nil, fmt.Errorf("sim: reps %d must be positive", reps)
	}
	out := &ReplicateResult{Runs: make([]Replication, reps), StableAll: true}
	errs := make([]error, reps)
	var wg sync.WaitGroup
	for r := 0; r < reps; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			seed := cfg.Seed + int64(r)*1_000_003
			in, err := build(r, seed)
			if err != nil {
				errs[r] = err
				return
			}
			c := cfg
			c.Seed = seed
			res, err := Run(c, in.Model, in.Process, in.Protocol)
			if err != nil {
				errs[r] = err
				return
			}
			out.Runs[r] = Replication{
				Rep:       r,
				Stable:    res.Verdict.Stable,
				MeanQ:     res.Queue.MeanV(),
				MaxQ:      res.Queue.MaxV(),
				MeanLat:   res.Latency.Mean(),
				Delivered: res.Delivered,
				Injected:  res.Injected,
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for _, run := range out.Runs {
		out.StableAll = out.StableAll && run.Stable
		out.MeanQ.Add(run.MeanQ)
		out.MeanLat.Add(run.MeanLat)
	}
	return out, nil
}
