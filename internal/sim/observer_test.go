package sim

import (
	"context"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
)

// countingObserver is a custom observer exercising every hook: it
// re-derives the engine's own counters from the event stream.
type countingObserver struct {
	BaseObserver
	injected  int64
	delivered int64
	attempted int64
	succeeded int64
	slots     int64
	lastQ     int
	ended     bool
}

func (o *countingObserver) OnInject(t int64, pkts []inject.Packet) {
	o.injected += int64(len(pkts))
}

func (o *countingObserver) OnSlot(t int64, v SlotView) {
	o.slots++
	o.attempted += int64(len(v.Tx))
	for _, s := range v.Success {
		if s {
			o.succeeded++
		}
	}
	o.lastQ = v.InFlight
}

func (o *countingObserver) OnDeliver(t int64, d Delivery) { o.delivered++ }

func (o *countingObserver) OnEnd(r *Result) { o.ended = true }

func TestCustomObserverSeesEveryEvent(t *testing.T) {
	m := interference.Identity{Links: 3}
	proc := singleHopProcess(t, m, 3, 0.3)
	obs := &countingObserver{}
	res, err := Run(context.Background(), Config{Slots: 3000, Seed: 99}, m, proc, newFifoProto(3), obs)
	if err != nil {
		t.Fatal(err)
	}
	if !obs.ended {
		t.Fatal("OnEnd never called")
	}
	if obs.injected != res.Injected {
		t.Errorf("observer saw %d injected, engine %d", obs.injected, res.Injected)
	}
	if obs.delivered != res.Delivered {
		t.Errorf("observer saw %d delivered, engine %d", obs.delivered, res.Delivered)
	}
	if obs.attempted != res.AttemptedTx || obs.succeeded != res.SuccessfulTx {
		t.Errorf("observer saw %d/%d tx, engine %d/%d",
			obs.succeeded, obs.attempted, res.SuccessfulTx, res.AttemptedTx)
	}
	if obs.slots != res.Slots {
		t.Errorf("observer saw %d slots, engine ran %d", obs.slots, res.Slots)
	}
	if int64(obs.lastQ) != res.InFlight {
		t.Errorf("final in-flight mismatch: observer %d, engine %d", obs.lastQ, res.InFlight)
	}
}

func TestQueueSeriesIncludesFinalSlot(t *testing.T) {
	m := interference.Identity{Links: 2}
	proc := singleHopProcess(t, m, 2, 0.3)
	// 1000 slots at SampleEvery 300 samples t=0,300,600,900; the fix
	// appends the final slot 999 so the series covers the whole run.
	res, err := Run(context.Background(), Config{Slots: 1000, Seed: 7, SampleEvery: 300},
		m, proc, newFifoProto(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Queue.Len() != 5 {
		t.Fatalf("got %d samples, want 5 (4 periodic + final slot)", res.Queue.Len())
	}
	if last := res.Queue.T[res.Queue.Len()-1]; last != 999 {
		t.Errorf("final sample at t=%v, want 999", last)
	}
	// When the final slot falls on the sampling grid it must not be
	// duplicated: 1001 slots at period 250 sample t=0,250,500,750,1000 —
	// the final slot 1000 is already on the grid, so OnEnd appends
	// nothing.
	res2, err := Run(context.Background(), Config{Slots: 1001, Seed: 7, SampleEvery: 250},
		m, proc, newFifoProto(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := res2.Queue.T
	if len(ts) != 5 {
		t.Fatalf("got %d samples, want 5 (no duplicated final slot): %v", len(ts), ts)
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] <= ts[i-1] {
			t.Fatalf("non-monotone sample times %v", ts)
		}
	}
	if last := ts[len(ts)-1]; last != 1000 {
		t.Errorf("final sample at t=%v, want 1000", last)
	}
}

func TestWarmupFracValidated(t *testing.T) {
	m := interference.Identity{Links: 1}
	proc := singleHopProcess(t, m, 1, 0.1)
	for _, bad := range []float64{-0.1, 1, 1.5} {
		if _, err := Run(context.Background(), Config{Slots: 100, WarmupFrac: bad},
			m, proc, newFifoProto(1)); err == nil {
			t.Errorf("WarmupFrac %v accepted", bad)
		}
	}
	// The boundary 0 remains valid.
	if _, err := Run(context.Background(), Config{Slots: 100, Seed: 1},
		m, proc, newFifoProto(1)); err != nil {
		t.Errorf("WarmupFrac 0 rejected: %v", err)
	}
}

func TestFairnessIndexHandComputed(t *testing.T) {
	// Jain's index on a hand-computed 3-link case: served (4, 2, 0) with
	// the zero-served link still attempted. sum=6, sumSq=20, n=3:
	// J = 36 / (3·20) = 0.6.
	r := &Result{
		PerLinkServed:   []int64{4, 2, 0},
		PerLinkAttempts: []int64{5, 3, 2},
	}
	if f := r.FairnessIndex(); f < 0.5999 || f > 0.6001 {
		t.Errorf("fairness %v, want 0.6", f)
	}
	// A link served without a recorded attempt still counts (guard
	// ordering: served-but-unattempted must not be skipped). served
	// (3, 3, 0): the third link neither attempted nor served is excluded,
	// J = 36 / (2·18) = 1.
	r2 := &Result{
		PerLinkServed:   []int64{3, 3, 0},
		PerLinkAttempts: []int64{0, 0, 0},
	}
	if f := r2.FairnessIndex(); f != 1 {
		t.Errorf("fairness %v, want 1 for two evenly served links", f)
	}
	// Served slice longer than attempts must not panic and must include
	// the extra served link.
	r3 := &Result{
		PerLinkServed:   []int64{2, 2},
		PerLinkAttempts: []int64{1},
	}
	if f := r3.FairnessIndex(); f != 1 {
		t.Errorf("fairness %v, want 1", f)
	}
}
