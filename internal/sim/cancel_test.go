package sim

import (
	"context"
	"dynsched/internal/interference"
	"errors"
	"testing"
	"time"
)

// TestRunCancelledMidRun cancels the context from another goroutine
// while the engine is inside a run far too long to ever finish, and
// checks Run returns promptly with a partial result. Run under -race
// this also proves the engine/canceller interaction is race-clean.
func TestRunCancelledMidRun(t *testing.T) {
	m := interference.Identity{Links: 2}
	proc := singleHopProcess(t, m, 2, 0.1)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := Run(ctx, Config{Slots: 1 << 40, Seed: 3}, m, proc, newFifoProto(2))
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("cancelled run returned no partial result")
	}
	if res.Slots <= 0 || res.Slots >= 1<<40 {
		t.Errorf("partial result executed %d slots", res.Slots)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Errorf("partial result violates conservation: %d+%d != %d",
			res.Delivered, res.InFlight, res.Injected)
	}
	// Partial metrics are still composed: the queue series exists and
	// ends at the last executed slot.
	if res.Queue.Len() == 0 {
		t.Error("partial result has empty queue series")
	} else if last := res.Queue.T[res.Queue.Len()-1]; int64(last) != res.Slots-1 {
		t.Errorf("queue series ends at t=%v, want %d", last, res.Slots-1)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
}

// TestRunDeadlineExceeded drives cancellation through a deadline.
func TestRunDeadlineExceeded(t *testing.T) {
	m := interference.Identity{Links: 1}
	proc := singleHopProcess(t, m, 1, 0.1)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Millisecond)
	defer cancel()
	res, err := Run(ctx, Config{Slots: 1 << 40, Seed: 4}, m, proc, newFifoProto(1))
	if err == nil {
		t.Fatal("deadline-exceeded run returned no error")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not wrap context.DeadlineExceeded", err)
	}
	if res == nil || res.Slots <= 0 {
		t.Fatal("no partial result")
	}
}

// TestReplicateCancelled cancels mid-replication on a parallel pool and
// checks the partial aggregate comes back with a wrapping error.
func TestReplicateCancelled(t *testing.T) {
	m := interference.Identity{Links: 2}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := Replicate(ctx, Config{Slots: 1 << 40, Seed: 5, Parallel: 4}, 64,
		func(rep int, seed int64) (RunInput, error) {
			return RunInput{Model: m, Process: singleHopProcess(t, m, 2, 0.1), Protocol: newFifoProto(2)}, nil
		})
	if err == nil {
		t.Fatal("cancelled replicate returned no error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial replicate result")
	}
	if len(res.Runs) >= 64 {
		t.Errorf("expected a strict subset of replications, got %d/64", len(res.Runs))
	}
}

// TestReplicateCompletesWithAliveContext pins that a live context
// changes nothing: all replications complete and aggregate.
func TestReplicateCompletesWithAliveContext(t *testing.T) {
	m := interference.Identity{Links: 2}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	res, err := Replicate(ctx, Config{Slots: 500, Seed: 6, Parallel: 2}, 3,
		func(rep int, seed int64) (RunInput, error) {
			return RunInput{Model: m, Process: singleHopProcess(t, m, 2, 0.1), Protocol: newFifoProto(2)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(res.Runs))
	}
}
