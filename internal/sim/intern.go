package sim

import "dynsched/internal/netgraph"

// PathInterner converts injection paths (netgraph.Path, []LinkID) into
// the []int form the engine and protocols index with, sharing one
// canonical slice per distinct route. Injection processes draw from a
// small fixed set of paths, so after warm-up every conversion is a hash
// probe with zero allocations — the per-packet path copy the engine
// used to make is gone, and a million packets on the same route share
// one backing array.
//
// Interned slices are shared: callers must treat them as immutable.
// An interner is single-goroutine state (one per run), like the rest of
// the engine's scratch.
type PathInterner struct {
	byHash map[uint64][][]int
}

// NewPathInterner returns an empty interner.
func NewPathInterner() *PathInterner {
	return &PathInterner{byHash: make(map[uint64][][]int)}
}

// Ints returns the canonical []int form of p, converting and caching it
// on first sight. Hash collisions fall back to content comparison, so
// distinct routes never alias.
func (pi *PathInterner) Ints(p netgraph.Path) []int {
	var h uint64 = 14695981039346656037 // FNV-1a over the link IDs
	for _, e := range p {
		h ^= uint64(e)
		h *= 1099511628211
	}
	for _, cand := range pi.byHash[h] {
		if len(cand) != len(p) {
			continue
		}
		match := true
		for i, e := range p {
			if cand[i] != int(e) {
				match = false
				break
			}
		}
		if match {
			return cand
		}
	}
	cp := make([]int, len(p))
	for i, e := range p {
		cp[i] = int(e)
	}
	pi.byHash[h] = append(pi.byHash[h], cp)
	return cp
}
