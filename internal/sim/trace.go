// Engine tracing: a zero-allocation observer that streams the hot
// loop's vital signs — slots executed, packets injected/delivered,
// and a sampled per-slot wall-time histogram — into shared
// internal/metrics instruments, so an operator can read slots/sec and
// engine latency off GET /metrics while simulations run.
//
// The design keeps the per-slot cost to one integer decrement:
// counters accumulate in plain (engine-goroutine-local) fields and
// are flushed to the shared atomics only at sample points, and slot
// timing captures two time.Now() readings per sample window (the
// duration of exactly one slot every SampleEvery slots). Nothing on
// the OnInject/OnDeliver/OnSlot paths allocates, which is pinned by
// the repository's steady-state allocation guards with the observer
// attached.
package sim

import (
	"time"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/metrics"
)

// EngineMetrics is the bundle of shared engine instruments. One bundle
// serves any number of concurrent simulations: each run attaches its
// own Observer (per-run sampling state), all flushing into the same
// counters and histogram.
type EngineMetrics struct {
	Slots       *metrics.Counter
	Injected    *metrics.Counter
	Delivered   *metrics.Counter
	SlotSeconds *metrics.Histogram

	// Intra-slot resolution instruments: the worker count the most
	// recently started run resolves with, and the cumulative
	// delta-vs-rebuild accounting of spatially-indexed resolvers.
	ResolveWorkers   *metrics.Gauge
	GridRebuilds     *metrics.Counter
	GridDeltaUpdates *metrics.Counter
}

// slotSecondsBuckets spans ~100ns to ~0.4s: identity-model slots
// resolve in hundreds of nanoseconds, million-link indexed slots in
// tens of microseconds, and anything past a millisecond is worth
// seeing in detail on the way to the +Inf bucket.
var slotSecondsBuckets = metrics.ExpBuckets(1e-7, 4, 12)

// NewEngineMetrics registers the engine instruments on r (idempotent —
// re-registering returns the same instruments).
func NewEngineMetrics(r *metrics.Registry) *EngineMetrics {
	return &EngineMetrics{
		Slots:       r.Counter("dynsched_sim_slots_total", "Simulation slots executed across all runs."),
		Injected:    r.Counter("dynsched_sim_injected_total", "Packets injected across all runs."),
		Delivered:   r.Counter("dynsched_sim_delivered_total", "Packets delivered across all runs."),
		SlotSeconds: r.Histogram("dynsched_sim_slot_seconds", "Sampled wall time of one simulation slot (injection, resolution, delivery, observers).", slotSecondsBuckets),
		ResolveWorkers: r.Gauge("dynsched_sim_resolve_workers",
			"Intra-slot resolver worker count of the most recently started run (1 = serial)."),
		GridRebuilds: r.Counter("dynsched_sim_grid_rebuilds_total",
			"Spatial interference grids rebuilt from scratch across all runs."),
		GridDeltaUpdates: r.Counter("dynsched_sim_grid_delta_updates_total",
			"Spatial interference grid slots served by the incremental joined/left delta path across all runs."),
	}
}

// DefaultTraceSample is the default sampling period of the tracing
// observer: one timed slot (and one counter flush) per this many
// slots.
const DefaultTraceSample = 256

// MetricsObserver streams one run's engine activity into an
// EngineMetrics bundle. It holds per-run state only, so a fresh
// observer is needed per simulation (NewObserver); the shared bundle
// side is atomic and safe across concurrently running simulations.
type MetricsObserver struct {
	BaseObserver
	m     *EngineMetrics
	every int64

	// Locally accumulated deltas, flushed at sample points and OnEnd.
	slots     int64
	injected  int64
	delivered int64

	countdown int64
	armed     bool
	start     time.Time

	// Resolver accounting: the model's cumulative grid counters at run
	// start, so OnEnd adds exactly this run's contribution to the
	// shared counters.
	statsProv    interference.ResolveStatsProvider
	baseRebuilds uint64
	baseDeltas   uint64
}

// NewObserver returns a fresh per-run tracing observer flushing into
// the bundle every sampleEvery slots (0 = DefaultTraceSample).
func (m *EngineMetrics) NewObserver(sampleEvery int64) *MetricsObserver {
	if sampleEvery <= 0 {
		sampleEvery = DefaultTraceSample
	}
	return &MetricsObserver{m: m, every: sampleEvery, countdown: sampleEvery}
}

// OnResolve implements ResolveObserver: it publishes the run's
// intra-slot worker count to the gauge and snapshots the model's
// cumulative grid counters so OnEnd can flush this run's delta. (When
// several runs share one model concurrently, the attribution of grid
// counter increments between them is approximate; the shared totals
// stay exact.)
func (o *MetricsObserver) OnResolve(model interference.Model, requested int) {
	workers := 1
	if requested > 0 {
		workers = requested
	}
	if sp, ok := model.(interference.ResolveStatsProvider); ok {
		st := sp.ResolveStats()
		if requested == 0 {
			workers = st.Workers
		}
		o.statsProv = sp
		o.baseRebuilds = st.GridRebuilds
		o.baseDeltas = st.GridDeltaUpdates
	}
	o.m.ResolveWorkers.Set(float64(workers))
}

// OnInject implements Observer.
func (o *MetricsObserver) OnInject(t int64, pkts []inject.Packet) {
	o.injected += int64(len(pkts))
}

// OnDeliver implements Observer.
func (o *MetricsObserver) OnDeliver(t int64, d Delivery) {
	o.delivered++
}

// OnSlot implements Observer. At each sample point it flushes the
// local counters, records the start of the next slot, and one slot
// later observes that slot's duration into the histogram — so the
// histogram holds the wall time of complete, representative slots
// while the steady-state path costs a single decrement.
func (o *MetricsObserver) OnSlot(t int64, v SlotView) {
	o.slots++
	if o.armed {
		o.m.SlotSeconds.Observe(time.Since(o.start).Seconds())
		o.armed = false
	}
	o.countdown--
	if o.countdown <= 0 {
		o.flush()
		o.countdown = o.every
		o.start = time.Now()
		o.armed = true
	}
}

// OnEnd implements Observer: the tail of the local counters reaches
// the shared bundle even for runs shorter than one sample window, and
// the run's grid delta-vs-rebuild contribution lands in the shared
// counters.
func (o *MetricsObserver) OnEnd(r *Result) {
	o.armed = false
	o.flush()
	if o.statsProv != nil {
		st := o.statsProv.ResolveStats()
		if d := st.GridRebuilds - o.baseRebuilds; d > 0 {
			o.m.GridRebuilds.Add(d)
		}
		if d := st.GridDeltaUpdates - o.baseDeltas; d > 0 {
			o.m.GridDeltaUpdates.Add(d)
		}
		o.statsProv = nil
	}
}

// flush moves the locally accumulated deltas into the shared atomics.
func (o *MetricsObserver) flush() {
	if o.slots > 0 {
		o.m.Slots.Add(uint64(o.slots))
		o.slots = 0
	}
	if o.injected > 0 {
		o.m.Injected.Add(uint64(o.injected))
		o.injected = 0
	}
	if o.delivered > 0 {
		o.m.Delivered.Add(uint64(o.delivered))
		o.delivered = 0
	}
}
