package core

import (
	"context"
	"math/rand"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/mac"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// lineSetup builds an n-node identity-model line network with k-hop
// left-to-right paths injected at rate lambda.
func lineSetup(t *testing.T, nodes, hops int, lambda float64) (interference.Model, inject.Process, int) {
	t.Helper()
	g := netgraph.LineNetwork(nodes, 1)
	m := interference.Identity{Links: g.NumLinks()}
	path, ok := netgraph.ShortestPath(g, 0, netgraph.NodeID(hops))
	if !ok {
		t.Fatal("line path missing")
	}
	// Split the load across four generators so super-critical rates
	// remain expressible (a single generator caps at one packet/slot).
	gens := make([]inject.Generator, 4)
	for i := range gens {
		gens[i] = inject.Generator{Choices: []inject.PathChoice{{Path: path, P: 0.25}}}
	}
	proc, err := inject.StochasticAtRate(m, gens, lambda)
	if err != nil {
		t.Fatal(err)
	}
	inst := netgraph.NewInstance(g, hops)
	return m, proc, inst.M()
}

func TestSolveFrameLength(t *testing.T) {
	// FullParallel has f(m) = 1: any λ < 1/(1+ε) admits a frame.
	tLen, err := SolveFrameLength(static.FullParallel{}, 8, 8, 0.5, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if tLen < 8 {
		t.Errorf("frame length %d suspiciously small", tLen)
	}
	// λ beyond the algorithm's throughput must diverge.
	if _, err := SolveFrameLength(static.FullParallel{}, 8, 8, 1.2, 0.25); err == nil {
		t.Error("impossible rate accepted")
	}
}

func TestNewValidation(t *testing.T) {
	m := interference.Identity{Links: 4}
	if _, err := New(Config{Alg: static.FullParallel{}, M: 4, Lambda: 0.5}); err == nil {
		t.Error("missing model accepted")
	}
	if _, err := New(Config{Model: m, M: 4, Lambda: 0.5}); err == nil {
		t.Error("missing algorithm accepted")
	}
	if _, err := New(Config{Model: m, Alg: static.FullParallel{}, M: 0, Lambda: 0.5}); err == nil {
		t.Error("zero M accepted")
	}
	// An explicit frame too small for its phases must be rejected.
	if _, err := New(Config{Model: m, Alg: static.FullParallel{}, M: 4, Lambda: 0.5, T: 2}); err == nil {
		t.Error("tiny frame accepted")
	}
}

func TestStableOnIdentityLine(t *testing.T) {
	model, proc, m := lineSetup(t, 6, 5, 0.5)
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.5, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 40000, Seed: 131}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if res.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if !res.Verdict.Stable {
		t.Errorf("unstable at safe rate: %+v", res.Verdict)
	}
	// Conservation.
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatalf("conservation: %d + %d != %d", res.Delivered, res.InFlight, res.Injected)
	}
	// Throughput should approach the injection thanks to stability.
	if res.Delivered < res.Injected*8/10 {
		t.Errorf("delivered only %d of %d", res.Delivered, res.Injected)
	}
}

func TestLatencyLinearInFrames(t *testing.T) {
	// Theorem 8: expected latency O(d·T). Check a d-hop packet's mean
	// latency stays within a small multiple of d·T.
	model, proc, m := lineSetup(t, 9, 8, 0.4)
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.4, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 60000, Seed: 132, WarmupFrac: 0.2}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	T := float64(proto.Sizing().T)
	d := 8.0
	mean := res.Latency.Mean()
	if mean > 4*d*T {
		t.Errorf("mean latency %v exceeds 4·d·T = %v", mean, 4*d*T)
	}
	if mean < T {
		t.Errorf("mean latency %v below one frame %v — too good to be true", mean, T)
	}
}

func TestStableOnMACWithRRW(t *testing.T) {
	m := interference.AllOnes{Links: 6}
	gens := make([]inject.Generator, 6)
	for i := range gens {
		gens[i] = inject.Generator{Choices: []inject.PathChoice{
			{Path: netgraph.Path{netgraph.LinkID(i)}, P: 1},
		}}
	}
	proc, err := inject.StochasticAtRate(m, gens, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(Config{Model: m, Alg: mac.RoundRobinWithholding{}, M: 6, Lambda: 0.6, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 50000, Seed: 133}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("RRW dynamic protocol unstable at λ=0.6: %+v", res.Verdict)
	}
	if res.Delivered < res.Injected*7/10 {
		t.Errorf("delivered %d of %d", res.Delivered, res.Injected)
	}
}

func TestOverloadIsUnstable(t *testing.T) {
	// Drive the same protocol far beyond capacity and expect growth.
	model, proc, m := lineSetup(t, 4, 3, 1.6)
	// Provision the protocol for λ = 0.5 but inject 1.6.
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.5, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 30000, Seed: 134}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict.Stable {
		t.Errorf("3× overload judged stable: %+v", res.Verdict)
	}
}

func TestCleanupRecoversLostPackets(t *testing.T) {
	// A lossy channel makes main-phase transmissions fail occasionally;
	// the clean-up phase must deliver those packets eventually.
	base, proc, m := lineSetup(t, 5, 4, 0.3)
	rng := rand.New(rand.NewSource(135))
	model := &interference.Lossy{Inner: base, P: 0.02, Rand: rng.Float64}
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.3, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 120000, Seed: 136}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if proto.Failures == 0 {
		t.Fatal("lossy channel produced no failures — test ineffective")
	}
	if proto.CleanupDelivered == 0 {
		t.Fatal("clean-up phase never delivered anything")
	}
	// Most packets should still get through.
	if res.Delivered < res.Injected*6/10 {
		t.Errorf("delivered only %d of %d with failures=%d cleanup=%d",
			res.Delivered, res.Injected, proto.Failures, proto.CleanupDelivered)
	}
}

func TestDisableCleanupStrandsFailedPackets(t *testing.T) {
	base, proc, m := lineSetup(t, 5, 4, 0.3)
	rng := rand.New(rand.NewSource(137))
	model := &interference.Lossy{Inner: base, P: 0.02, Rand: rng.Float64}
	proto, err := New(Config{
		Model: model, Alg: static.FullParallel{}, M: m,
		Lambda: 0.3, Eps: 0.25, DisableCleanup: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), sim.Config{Slots: 60000, Seed: 138}, model, proc, proto); err != nil {
		t.Fatal(err)
	}
	if proto.Failures == 0 {
		t.Skip("no failures occurred; nothing to strand")
	}
	if proto.CleanupDelivered != 0 {
		t.Fatal("cleanup disabled but packets were cleaned up")
	}
	if proto.FailedQueueLen() == 0 {
		t.Error("failed packets vanished without a clean-up phase")
	}
}

func TestAdversarialWrapperStable(t *testing.T) {
	g := netgraph.LineNetwork(5, 1)
	model := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 4)
	const w = 32
	adv, err := inject.NewPattern(model, []netgraph.Path{path}, w, 0.4, inject.TimingBurst)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(Config{
		Model: model, Alg: static.FullParallel{}, M: 8,
		Lambda: 0.4, Eps: 0.25, Window: w, D: 4, DelayMax: 8, Seed: 139,
	})
	if err != nil {
		t.Fatal(err)
	}
	if proto.Sizing().DelayMax != 8 {
		t.Fatalf("DelayMax = %d, want 8", proto.Sizing().DelayMax)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 60000, Seed: 140}, model, adv, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("adversarial run unstable: %+v", res.Verdict)
	}
	if res.Delivered < res.Injected*7/10 {
		t.Errorf("delivered %d of %d", res.Delivered, res.Injected)
	}
}

func TestDelayMaxDerivedFromPaper(t *testing.T) {
	m := interference.Identity{Links: 4}
	proto, err := New(Config{
		Model: m, Alg: static.FullParallel{}, M: 4,
		Lambda: 0.4, Eps: 0.5, Window: 10, D: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// δmax = ⌈2(D+w)/ε⌉ = ⌈2·14/0.5⌉ = 56.
	if got := proto.Sizing().DelayMax; got != 56 {
		t.Errorf("DelayMax = %d, want 56", got)
	}
	// DisableDelays suppresses it.
	noDelay, err := New(Config{
		Model: m, Alg: static.FullParallel{}, M: 4,
		Lambda: 0.4, Eps: 0.5, Window: 10, D: 4, DisableDelays: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if noDelay.Sizing().DelayMax != 0 {
		t.Errorf("DisableDelays left DelayMax = %d", noDelay.Sizing().DelayMax)
	}
}

func TestSizingInvariants(t *testing.T) {
	model, _, m := lineSetup(t, 6, 5, 0.5)
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.5, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	s := proto.Sizing()
	if s.MainBudget+s.CleanupBudget > s.T {
		t.Fatalf("phases %d+%d exceed frame %d", s.MainBudget, s.CleanupBudget, s.T)
	}
	if s.J < 1 {
		t.Fatalf("J = %d", s.J)
	}
}

func TestRecentFrames(t *testing.T) {
	model, proc, m := lineSetup(t, 5, 4, 0.4)
	proto, err := New(Config{Model: model, Alg: static.FullParallel{}, M: m, Lambda: 0.4, Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(context.Background(), sim.Config{Slots: 5000, Seed: 161}, model, proc, proto); err != nil {
		t.Fatal(err)
	}
	frames := proto.RecentFrames(10)
	if len(frames) != 10 {
		t.Fatalf("got %d frames, want 10", len(frames))
	}
	// Frames are consecutive and ascending.
	for i := 1; i < len(frames); i++ {
		if frames[i].Frame != frames[i-1].Frame+1 {
			t.Fatalf("frames not consecutive: %d then %d", frames[i-1].Frame, frames[i].Frame)
		}
	}
	// Under steady traffic most frames schedule and serve packets.
	servedTotal := 0
	for _, fr := range frames {
		if fr.Active < 0 || fr.MainServed > fr.Active*5 {
			t.Fatalf("implausible frame stat %+v", fr)
		}
		servedTotal += fr.MainServed
	}
	if servedTotal == 0 {
		t.Error("no main-phase service in the recent frames")
	}
	// Asking for more frames than exist returns what exists.
	if all := proto.RecentFrames(1 << 20); len(all) == 0 {
		t.Error("RecentFrames with huge k returned nothing")
	}
}

func TestDynamicWithMeasureBoundedAlgorithms(t *testing.T) {
	// End-to-end with Decay and Spread, which take the distributed
	// measure-bound path A(J, mJ) / A(1, mJ) inside the protocol.
	model, proc, m := lineSetup(t, 5, 4, 0.01)
	for _, alg := range []static.Algorithm{static.Decay{}, static.Spread{}} {
		proto, err := New(Config{Model: model, Alg: alg, M: m, Lambda: 0.01, Eps: 0.25, Seed: 162})
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		res, err := sim.Run(context.Background(), sim.Config{Slots: 60 * int64(proto.Sizing().T), Seed: 163}, model, proc, proto)
		if err != nil {
			t.Fatal(err)
		}
		if res.ProtocolErrors != 0 {
			t.Fatalf("%s: %d protocol errors", alg.Name(), res.ProtocolErrors)
		}
		if !res.Verdict.Stable {
			t.Errorf("%s: unstable at λ=0.01: %+v", alg.Name(), res.Verdict)
		}
		if res.Delivered < res.Injected*6/10 {
			t.Errorf("%s: delivered %d of %d", alg.Name(), res.Delivered, res.Injected)
		}
	}
}
