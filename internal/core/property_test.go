package core

import (
	"context"
	"math/rand"
	"testing"
	"testing/quick"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
	"dynsched/internal/stats"
)

// TestConservationProperty: for random small workloads, the protocol
// never loses or duplicates packets, never produces protocol errors,
// and its internal queue accounting matches the simulator's.
func TestConservationProperty(t *testing.T) {
	f := func(seed int64, hopsRaw, lambdaRaw uint8) bool {
		hops := 1 + int(hopsRaw%5)
		lambda := 0.1 + float64(lambdaRaw%5)*0.1 // 0.1 .. 0.5
		g := netgraph.LineNetwork(hops+1, 1)
		model := interference.Identity{Links: g.NumLinks()}
		path, ok := netgraph.ShortestPath(g, 0, netgraph.NodeID(hops))
		if !ok {
			return false
		}
		proc, err := inject.StochasticAtRate(model, []inject.Generator{
			{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
		}, lambda)
		if err != nil {
			return false
		}
		proto, err := New(Config{
			Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
			Lambda: lambda, Eps: 0.25, Seed: seed,
		})
		if err != nil {
			return false
		}
		res, err := sim.Run(context.Background(), sim.Config{Slots: 4000, Seed: seed}, model, proc, proto)
		if err != nil {
			return false
		}
		if res.ProtocolErrors != 0 {
			t.Logf("seed %d: %d protocol errors", seed, res.ProtocolErrors)
			return false
		}
		if res.Delivered+res.InFlight != res.Injected {
			t.Logf("seed %d: conservation %d+%d != %d", seed, res.Delivered, res.InFlight, res.Injected)
			return false
		}
		if int64(proto.QueueLen()) != res.InFlight {
			t.Logf("seed %d: protocol holds %d, simulator says %d in flight",
				seed, proto.QueueLen(), res.InFlight)
			return false
		}
		if proto.FailedQueueLen() > proto.QueueLen() {
			t.Logf("seed %d: failed buffer exceeds total queue", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPotentialGeometricDecay samples the paper's potential Φ once per
// frame under a lossy channel and checks the Lemma 7 shape: the
// distribution's tail decays fast (p99 within a small multiple of the
// mean, no runaway mass).
func TestPotentialGeometricDecay(t *testing.T) {
	const hops = 4
	g := netgraph.LineNetwork(hops+1, 1)
	base := interference.Identity{Links: g.NumLinks()}
	lossRng := rand.New(rand.NewSource(201))
	model := &interference.Lossy{Inner: base, P: 0.03, Rand: lossRng.Float64}
	path, _ := netgraph.ShortestPath(g, 0, hops)
	proc, err := inject.StochasticAtRate(model, []inject.Generator{
		{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(Config{
		Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
		Lambda: 0.3, Eps: 0.25, Seed: 202,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Drive the simulation manually so Φ can be sampled per frame.
	T := int64(proto.Sizing().T)
	rng := rand.New(rand.NewSource(203))
	var samples []float64
	var id int64
	for tSlot := int64(0); tSlot < 3000*T/10; tSlot++ {
		pkts := proc.Step(tSlot, rng)
		for i := range pkts {
			id++
			pkts[i].ID = id
		}
		if len(pkts) > 0 {
			proto.Inject(tSlot, pkts)
		}
		tx := proto.Slot(tSlot, rng)
		links := make([]int, len(tx))
		for i, w := range tx {
			links[i] = w.Link
		}
		proto.Feedback(tSlot, tx, model.Successes(links))
		if tSlot%T == T-1 {
			samples = append(samples, float64(proto.Potential()))
		}
	}
	if proto.Failures == 0 {
		t.Fatal("no failures; the potential was never exercised")
	}
	mean := stats.Mean(samples)
	p99 := stats.Quantile(samples, 0.99)
	maxV := stats.Max(samples)
	// A geometric-tailed Φ has p99 ≈ mean·ln(100)/ln(1/(1-q)) — bounded
	// by a modest multiple. A drifting Φ would have max ≫ p99 ≫ mean.
	if p99 > 40*(mean+1) {
		t.Errorf("Φ p99 = %v with mean %v — tail too heavy for Lemma 7", p99, mean)
	}
	if maxV > 100*(mean+1) {
		t.Errorf("Φ max = %v with mean %v — potential drifting upward", maxV, mean)
	}
}

// TestFrameAccountingAcrossRates: the solved frame always fits its two
// phases and J grows monotonically with λ.
func TestFrameAccountingAcrossRates(t *testing.T) {
	model := interference.Identity{Links: 8}
	prevJ := 0
	for _, lambda := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		proto, err := New(Config{
			Model: model, Alg: static.FullParallel{}, M: 8,
			Lambda: lambda, Eps: 0.25,
		})
		if err != nil {
			t.Fatalf("λ=%v: %v", lambda, err)
		}
		s := proto.Sizing()
		if s.MainBudget+s.CleanupBudget > s.T {
			t.Fatalf("λ=%v: phases overflow frame", lambda)
		}
		if s.J < prevJ {
			t.Errorf("J decreased from %d to %d at λ=%v", prevJ, s.J, lambda)
		}
		prevJ = s.J
	}
}

// TestDeterministicUnderSeed: identical seeds must give identical runs.
func TestDeterministicUnderSeed(t *testing.T) {
	run := func() (int64, int64, int64) {
		g := netgraph.LineNetwork(5, 1)
		model := interference.Identity{Links: g.NumLinks()}
		path, _ := netgraph.ShortestPath(g, 0, 4)
		proc, err := inject.StochasticAtRate(model, []inject.Generator{
			{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
		}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		proto, err := New(Config{
			Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
			Lambda: 0.4, Eps: 0.25, Seed: 77,
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(context.Background(), sim.Config{Slots: 6000, Seed: 78}, model, proc, proto)
		if err != nil {
			t.Fatal(err)
		}
		return res.Injected, res.Delivered, res.SuccessfulTx
	}
	i1, d1, s1 := run()
	i2, d2, s2 := run()
	if i1 != i2 || d1 != d2 || s1 != s2 {
		t.Fatalf("same-seed runs diverged: (%d,%d,%d) vs (%d,%d,%d)", i1, d1, s1, i2, d2, s2)
	}
}

// TestLyapunovDriftNegative reproduces the heart of the Theorem 3 proof
// empirically: the potential Φ (remaining hops of failed packets) has
// negative conditional drift whenever it is positive (Lemmas 4–7). A
// lossy channel feeds a steady failure stream; the drift estimator
// buckets per-frame Φ samples and checks each positive bucket.
func TestLyapunovDriftNegative(t *testing.T) {
	const hops = 4
	g := netgraph.LineNetwork(hops+1, 1)
	base := interference.Identity{Links: g.NumLinks()}
	lossRng := rand.New(rand.NewSource(211))
	model := &interference.Lossy{Inner: base, P: 0.03, Rand: lossRng.Float64}
	path, _ := netgraph.ShortestPath(g, 0, hops)
	proc, err := inject.StochasticAtRate(model, []inject.Generator{
		{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
	}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(Config{
		Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
		Lambda: 0.3, Eps: 0.25, Seed: 212,
	})
	if err != nil {
		t.Fatal(err)
	}
	T := int64(proto.Sizing().T)
	rng := rand.New(rand.NewSource(213))
	drift := stats.NewDriftEstimator(0, 2, 5, 10)
	var id int64
	for tSlot := int64(0); tSlot < 60000*T/18; tSlot++ {
		pkts := proc.Step(tSlot, rng)
		for i := range pkts {
			id++
			pkts[i].ID = id
		}
		if len(pkts) > 0 {
			proto.Inject(tSlot, pkts)
		}
		tx := proto.Slot(tSlot, rng)
		links := make([]int, len(tx))
		for i, w := range tx {
			links[i] = w.Link
		}
		proto.Feedback(tSlot, tx, model.Successes(links))
		if tSlot%T == T-1 {
			drift.Observe(float64(proto.Potential()))
		}
	}
	if proto.Failures < 20 {
		t.Fatalf("only %d failures; drift estimate unsupported", proto.Failures)
	}
	if !drift.NegativeAboveZero(25) {
		t.Errorf("positive drift detected above Φ=0: %s", drift.String())
	}
}
