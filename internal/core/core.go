// Package core implements the paper's primary contribution: the
// black-box transformation of a static scheduling algorithm into a
// stable dynamic packet-scheduling protocol (Sections 4 and 5).
//
// Time is divided into frames of T slots. Each frame runs the static
// algorithm twice:
//
//   - Main phase (T' = f(m)·J + g(m, m·J) slots, J = (1+ε)λT): the
//     algorithm is executed on the next hop of every live packet, with
//     the intent that each packet advances one hop per frame.
//   - Clean-up phase (the remaining slots): packets that failed — the
//     frame was overloaded or the algorithm's internal randomness lost
//     them — sit in per-edge failure buffers. Each edge with a non-empty
//     buffer independently offers its longest-failed packet with
//     probability 1/m, and the algorithm runs on the offered singletons.
//
// A packet that fails once is served exclusively by clean-up phases from
// then on (its remaining hops all go through the buffers), exactly as in
// the paper's potential-function analysis. For adversarial injection
// (Section 5) every packet additionally waits a uniformly random number
// of frames below δmax = ⌈2(D+w)/ε⌉ before entering the system.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/randx"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// Config parameterises the dynamic protocol.
type Config struct {
	// Model is the interference model the protocol schedules against.
	Model interference.Model
	// Alg is the static algorithm being transformed.
	Alg static.Algorithm
	// M is the significant network size m = max(|E|, D).
	M int
	// Lambda is the injection rate the protocol is provisioned for.
	Lambda float64
	// Eps is the paper's ε: the protocol targets λ = (1−ε)/f(m), and
	// frame capacity J = (1+ε)·λ·T. Values outside (0, 1/2] default to 1/2.
	Eps float64
	// T overrides the frame length; 0 solves for the smallest
	// self-consistent frame (see SolveFrameLength).
	T int
	// CleanupProb overrides the per-edge clean-up selection probability;
	// 0 means the paper's 1/m.
	CleanupProb float64

	// Window, when positive, enables the adversarial-injection wrapper
	// of Section 5 with window length w.
	Window int
	// D is the path-length bound (needed to size δmax when Window > 0;
	// 0 falls back to M).
	D int
	// DelayMax overrides δmax in frames; 0 means ⌈2(D+w)/ε⌉ scaled by
	// DelayScale.
	DelayMax int
	// DelayScale shrinks the paper's δmax for simulation-scale runs
	// (0 = 1, i.e. the paper's value).
	DelayScale float64

	// DisableCleanup turns off the clean-up phase (failure ablation).
	DisableCleanup bool
	// DisableDelays turns off the adversarial random initial delays
	// while keeping Window semantics (ablation).
	DisableDelays bool

	// Seed seeds the protocol's private randomness (initial delays).
	Seed int64
}

func (c Config) eps() float64 {
	if c.Eps <= 0 || c.Eps > 0.5 {
		return 0.5
	}
	return c.Eps
}

// Sizing describes the frame layout the protocol derived from its
// configuration.
type Sizing struct {
	T             int // frame length
	J             int // per-frame capacity (1+ε)λT
	MainBudget    int // T': slots of the main phase
	CleanupBudget int // slots of the clean-up phase execution
	DelayMax      int // adversarial initial-delay bound, in frames
}

// SolveFrameLength finds the smallest frame length T such that the main
// phase A(J, m·J) with J = (1+ε)λT and the clean-up phase A(1, m·J) both
// fit: T ≥ Budget(J, mJ) + Budget(1, mJ). The fixed point exists exactly
// when the algorithm's per-measure cost satisfies f(m)·(1+ε)·λ < 1 —
// the paper's stability condition λ < 1/f(m) with its ε-headroom.
func SolveFrameLength(alg static.Algorithm, numLinks, m int, lambda, eps float64) (int, error) {
	if lambda <= 0 {
		return 0, fmt.Errorf("core: non-positive injection rate %v", lambda)
	}
	t := 16
	for iter := 0; iter < 200; iter++ {
		j := frameJ(lambda, eps, t)
		need := alg.Budget(numLinks, float64(j), m*j) + alg.Budget(numLinks, 1, m*j)
		if need <= t {
			return t, nil
		}
		if need > 1<<26 {
			return 0, fmt.Errorf("core: frame length diverges (λ=%v exceeds the algorithm's stable throughput 1/f(m))", lambda)
		}
		t = need
	}
	return 0, fmt.Errorf("core: frame length failed to converge for λ=%v", lambda)
}

// ConcentrationFrameLength returns the frame length needed for the
// per-frame capacity J = (1+ε)λT to sit `sigmas` standard deviations
// above the mean arrival measure λT (Poisson-scale concentration):
// ε·λT ≥ sigmas·√(λT) ⟺ T ≥ sigmas²/(ε²·λ). This is the practical
// counterpart of the paper's T ≥ 100·f(m)/ε³ condition — without it,
// frames overflow constantly and failed packets swamp the clean-up
// phase. Combine with SolveFrameLength via max.
func ConcentrationFrameLength(lambda, eps, sigmas float64) int {
	if lambda <= 0 || eps <= 0 {
		return 1
	}
	return int(math.Ceil(sigmas * sigmas / (eps * eps * lambda)))
}

func frameJ(lambda, eps float64, t int) int {
	j := int(math.Ceil((1 + eps) * lambda * float64(t)))
	if j < 1 {
		j = 1
	}
	return j
}

// pkt is the protocol's view of one packet.
type pkt struct {
	id            int64
	path          []int
	hop           int
	failed        bool
	delivered     bool
	failSlot      int64
	activateFrame int64
}

// Protocol is the dynamic scheduling protocol. It implements
// sim.Protocol.
type Protocol struct {
	cfg    Config
	sizing Sizing
	name   string

	// mainAlg and cleanupAlg are the phase-specific algorithm variants
	// (measure-bounded when the algorithm supports it).
	mainAlg    static.Algorithm
	cleanupAlg static.Algorithm

	// live holds every undelivered packet in injection order (packet IDs
	// are fresh per the Process contract, so injection order is ID order
	// for the built-in processes). Delivered packets are compacted out —
	// and their structs recycled — at the next main-phase start.
	live     []*pkt
	queueLen int
	// failBuf[e] holds failed packets whose next hop is link e, ordered
	// by failure time (oldest first).
	failBuf [][]*pkt

	// rngSrc counts the private RNG's draws so the protocol can be
	// checkpointed (see checkpoint.go); rng draws through it.
	rngSrc *randx.CountingSource
	rng    *rand.Rand // protocol-private randomness (initial delays)

	frame     int64
	exec      static.Execution // current phase execution (nil when idle)
	execPkts  []*pkt           // request index → packet
	execHops  []int            // request index → hop at phase start
	inCleanup bool
	// mainExecCache and cleanupExecCache hold the previous phase
	// executions for algorithms that support recycling (static.Recycler).
	mainExecCache    static.Execution
	cleanupExecCache static.Execution
	// emitIDs and emitIdx record the packet ID and execution request
	// index of each transmission the last Slot call emitted, in order;
	// Feedback maps the simulator's (possibly filtered) outcome slice
	// back to request indices by walking this record.
	emitIDs []int64
	emitIdx []int

	// Counters for experiments and tests.
	Failures         int64 // fail events (first failures only)
	CleanupDelivered int64 // hops completed in clean-up phases
	FramesRun        int64

	// frameLog is a bounded ring of recent per-frame statistics.
	frameLog   []FrameStat
	frameHead  int
	frameCount int
	curFrame   FrameStat

	// Per-slot scratch, reused across calls (the simulator does not
	// retain the slices Slot and Feedback hand around).
	txScratch  []sim.Transmission
	idxScratch []int
	okScratch  []bool
	// memberScratch backs the per-frame main-phase member list; it is
	// only ever read through execPkts, which buildExec repoints every
	// phase before the scratch is reused.
	memberScratch []*pkt
	// reqScratch and hopScratch back the per-phase execution inputs,
	// repointed by every buildExec before reuse; selScratch backs the
	// clean-up selection.
	reqScratch []static.Request
	hopScratch []int
	selScratch []*pkt

	// interner shares one []int per distinct injected route, and pktFree
	// recycles pkt structs: the steady-state packet lifecycle allocates
	// nothing. Delivered packets stay on live (flagged) until the next
	// main-phase start — stale execPkts entries may still point at them
	// until buildExec repoints the execution — and only then join the
	// free list for reuse by Inject.
	interner *sim.PathInterner
	pktFree  []*pkt
}

// FrameStat summarises one frame of protocol activity.
type FrameStat struct {
	Frame      int64 // frame index
	Active     int   // packets scheduled in the main phase
	MainServed int   // hops completed in the main phase
	Failed     int   // packets newly marked failed this frame
	Cleanup    int   // hops completed in the clean-up phase
	Potential  int   // Φ at frame end
}

// frameLogCap bounds the per-frame history kept for introspection.
const frameLogCap = 512

// recordFrame appends the finished frame's statistics to the ring.
func (p *Protocol) recordFrame() {
	p.curFrame.Potential = p.Potential()
	if len(p.frameLog) < frameLogCap {
		p.frameLog = append(p.frameLog, p.curFrame)
	} else {
		p.frameLog[p.frameHead] = p.curFrame
		p.frameHead = (p.frameHead + 1) % frameLogCap
	}
	p.frameCount++
}

// RecentFrames returns up to k most recent completed frames' statistics,
// oldest first.
func (p *Protocol) RecentFrames(k int) []FrameStat {
	n := len(p.frameLog)
	if k > n {
		k = n
	}
	out := make([]FrameStat, 0, k)
	for i := n - k; i < n; i++ {
		out = append(out, p.frameLog[(p.frameHead+i)%n])
	}
	return out
}

var _ sim.Protocol = (*Protocol)(nil)

// New builds the protocol, solving for the frame length when cfg.T is 0.
func New(cfg Config) (*Protocol, error) {
	if cfg.Model == nil || cfg.Alg == nil {
		return nil, fmt.Errorf("core: config needs Model and Alg")
	}
	if cfg.M < 1 {
		return nil, fmt.Errorf("core: network size M=%d must be positive", cfg.M)
	}
	eps := cfg.eps()
	t := cfg.T
	if t == 0 {
		var err error
		t, err = SolveFrameLength(cfg.Alg, cfg.Model.NumLinks(), cfg.M, cfg.Lambda, eps)
		if err != nil {
			return nil, err
		}
	}
	j := frameJ(cfg.Lambda, eps, t)
	mainBudget := cfg.Alg.Budget(cfg.Model.NumLinks(), float64(j), cfg.M*j)
	cleanupBudget := cfg.Alg.Budget(cfg.Model.NumLinks(), 1, cfg.M*j)
	if mainBudget+cleanupBudget > t {
		return nil, fmt.Errorf("core: frame length %d too small for phases %d+%d", t, mainBudget, cleanupBudget)
	}
	// Distributed fidelity: when the algorithm supports it, run the main
	// phase against the known bound J and the clean-up phase against 1,
	// exactly as the paper's A(J, m·J) and A(1, m·J) executions — no
	// global inspection of the live request set.
	mainAlg, cleanupAlg := cfg.Alg, cfg.Alg
	if mb, ok := cfg.Alg.(static.MeasureBounded); ok {
		mainAlg = mb.WithMeasureBound(float64(j))
		cleanupAlg = mb.WithMeasureBound(1)
	}
	s := Sizing{T: t, J: j, MainBudget: mainBudget, CleanupBudget: cleanupBudget}
	if cfg.Window > 0 && !cfg.DisableDelays {
		s.DelayMax = cfg.DelayMax
		if s.DelayMax == 0 {
			d := cfg.D
			if d == 0 {
				d = cfg.M
			}
			scale := cfg.DelayScale
			if scale <= 0 {
				scale = 1
			}
			s.DelayMax = int(math.Ceil(2 * float64(d+cfg.Window) / eps * scale))
		}
		if s.DelayMax < 1 {
			s.DelayMax = 1
		}
	}
	rngSrc := randx.NewCounting(cfg.Seed ^ 0x6b43a9b5)
	return &Protocol{
		cfg:        cfg,
		sizing:     s,
		name:       fmt.Sprintf("dynamic(%s)", cfg.Alg.Name()),
		mainAlg:    mainAlg,
		cleanupAlg: cleanupAlg,
		failBuf:    make([][]*pkt, cfg.Model.NumLinks()),
		rngSrc:     rngSrc,
		rng:        rand.New(rngSrc),
		interner:   sim.NewPathInterner(),
	}, nil
}

// Name implements sim.Protocol.
func (p *Protocol) Name() string { return p.name }

// Sizing returns the derived frame layout.
func (p *Protocol) Sizing() Sizing { return p.sizing }

// QueueLen returns the number of undelivered packets the protocol holds.
func (p *Protocol) QueueLen() int { return p.queueLen }

// FailedQueueLen returns the total size of the failure buffers.
func (p *Protocol) FailedQueueLen() int {
	n := 0
	for _, buf := range p.failBuf {
		n += len(buf)
	}
	return n
}

// Potential returns the paper's Lyapunov potential Φ: the summed number
// of remaining hops over all failed packets (Section 4.1). The
// stability proof shows Pr[Φ ≥ k] ≤ (1 − 1/m²J)^k at all times; the
// experiments sample this to check the geometric decay empirically.
func (p *Protocol) Potential() int {
	phi := 0
	for _, buf := range p.failBuf {
		for _, st := range buf {
			phi += len(st.path) - st.hop
		}
	}
	return phi
}

// Inject implements sim.Protocol. Under the adversarial wrapper each
// packet draws its uniform initial delay here, at injection time.
// Paths are interned (shared per distinct route, never mutated) and pkt
// structs come from the free list, so steady-state injection performs
// no allocations.
func (p *Protocol) Inject(t int64, pkts []inject.Packet) {
	frame := t / int64(p.sizing.T)
	for _, ip := range pkts {
		st := p.allocPkt()
		st.id, st.path = ip.ID, p.interner.Ints(ip.Path)
		st.activateFrame = frame + 1
		if p.sizing.DelayMax > 1 {
			st.activateFrame += int64(p.rng.Intn(p.sizing.DelayMax))
		}
		p.live = append(p.live, st)
		p.queueLen++
	}
}

// pktChunk is how many pkt structs an empty free list allocates at
// once: growth costs one allocation per chunk instead of one per
// packet, which matters when many short protocol instances start cold
// (plan sweeps run dozens per document).
const pktChunk = 64

// allocPkt returns a zeroed pkt, recycled from the free list when one
// is available; an empty list is refilled a chunk at a time.
func (p *Protocol) allocPkt() *pkt {
	if len(p.pktFree) == 0 {
		chunk := make([]pkt, pktChunk)
		for i := range chunk {
			p.pktFree = append(p.pktFree, &chunk[i])
		}
	}
	n := len(p.pktFree)
	st := p.pktFree[n-1]
	p.pktFree = p.pktFree[:n-1]
	*st = pkt{}
	return st
}

// Slot implements sim.Protocol.
func (p *Protocol) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	frame := t / int64(p.sizing.T)
	offset := int(t % int64(p.sizing.T))
	if offset == 0 {
		if p.FramesRun > 0 {
			p.recordFrame()
		}
		p.frame = frame
		p.FramesRun++
		p.curFrame = FrameStat{Frame: frame}
		p.startMainPhase(rng)
		p.curFrame.Active = len(p.execPkts)
	}
	switch {
	case offset < p.sizing.MainBudget:
		// Main phase.
	case offset == p.sizing.MainBudget:
		p.endMainPhase(t)
		p.startCleanupPhase(rng)
	case offset >= p.sizing.MainBudget+p.sizing.CleanupBudget:
		p.exec = nil // frame tail: idle
	}
	if p.exec == nil || p.exec.Done() {
		p.emitIDs, p.emitIdx = p.emitIDs[:0], p.emitIdx[:0]
		return nil
	}
	attempts := p.exec.Attempts(rng)
	out := p.txScratch[:0]
	ids := p.emitIDs[:0]
	idxs := p.emitIdx[:0]
	for _, idx := range attempts {
		st := p.execPkts[idx]
		out = append(out, sim.Transmission{Link: st.path[st.hop], PacketID: st.id})
		ids = append(ids, st.id)
		idxs = append(idxs, idx)
	}
	p.txScratch, p.emitIDs, p.emitIdx = out, ids, idxs
	return out
}

// startMainPhase builds the main-phase execution over all live,
// activated, unfailed packets, ordered by packet ID so runs are
// deterministic under a fixed seed. The live list is compacted in the
// same pass: delivered packets drop out and their structs return to the
// free list (no execution references them once buildExec repoints
// below). Injection order already is ID order for processes that assign
// fresh increasing IDs, so the sort usually reduces to a verification
// scan.
func (p *Protocol) startMainPhase(rng *rand.Rand) {
	p.inCleanup = false
	members := p.memberScratch[:0]
	w := 0
	for _, st := range p.live {
		if st.delivered {
			p.pktFree = append(p.pktFree, st)
			continue
		}
		p.live[w] = st
		w++
		if !st.failed && st.activateFrame <= p.frame {
			members = append(members, st)
		}
	}
	clear(p.live[w:])
	p.live = p.live[:w]
	p.memberScratch = members
	if !slices.IsSortedFunc(members, pktByID) {
		slices.SortFunc(members, pktByID)
	}
	p.buildExec(members)
}

// pktByID orders packets by ID; IDs are unique, so it never returns 0.
func pktByID(a, b *pkt) int {
	if a.id < b.id {
		return -1
	}
	return 1
}

// endMainPhase marks every unserved main-phase packet as failed and
// moves it into the failure buffer of its pending link.
func (p *Protocol) endMainPhase(t int64) {
	if p.inCleanup || p.exec == nil {
		return
	}
	for i, st := range p.execPkts {
		if st == nil || st.failed {
			continue
		}
		if st.delivered {
			continue // delivered during the phase
		}
		if p.execServed(i) {
			continue
		}
		st.failed = true
		st.failSlot = t
		p.Failures++
		p.curFrame.Failed++
		p.pushFailed(st)
	}
	p.exec = nil
}

// execServed reports whether request idx succeeded: the packet's hop
// advanced past the hop it was enqueued with.
func (p *Protocol) execServed(idx int) bool {
	return p.execHops[idx] < p.execPkts[idx].hop
}

// startCleanupPhase performs the random per-edge selection and builds
// the clean-up execution.
func (p *Protocol) startCleanupPhase(rng *rand.Rand) {
	p.inCleanup = true
	p.exec = nil
	if p.cfg.DisableCleanup {
		return
	}
	prob := p.cfg.CleanupProb
	if prob <= 0 {
		prob = 1 / float64(p.cfg.M)
	}
	selected := p.selScratch[:0]
	for e := range p.failBuf {
		if len(p.failBuf[e]) == 0 {
			continue
		}
		if rng.Float64() < prob {
			selected = append(selected, p.failBuf[e][0]) // longest-failed first
		}
	}
	p.selScratch = selected
	if len(selected) > 0 {
		p.buildExec(selected)
	}
}

func (p *Protocol) buildExec(members []*pkt) {
	if len(members) == 0 {
		p.exec = nil
		p.execPkts = nil
		p.execHops = nil
		return
	}
	// The request and hop buffers are reused across phases: by the time
	// buildExec runs, the previous phase's execution has been discarded.
	reqs := p.reqScratch[:0]
	hops := p.hopScratch[:0]
	for _, st := range members {
		reqs = append(reqs, static.Request{Link: st.path[st.hop], Tag: st.id})
		hops = append(hops, st.hop)
	}
	p.reqScratch, p.hopScratch = reqs, hops
	p.execPkts = members
	p.execHops = hops
	alg, cache := p.mainAlg, &p.mainExecCache
	if p.inCleanup {
		alg, cache = p.cleanupAlg, &p.cleanupExecCache
	}
	// Algorithms that support it rebuild into the previous same-phase
	// execution's buffers (dead since the last buildExec of this phase
	// kind); the recycled execution behaves identically to a fresh one.
	if r, ok := alg.(static.Recycler); ok {
		p.exec = r.RecycleExecution(*cache, p.cfg.Model, reqs)
		*cache = p.exec
	} else {
		p.exec = alg.NewExecution(p.cfg.Model, reqs)
	}
}

// pushFailed inserts st into the failure buffer of its pending link,
// keeping the buffer ordered by failure time (oldest first).
func (p *Protocol) pushFailed(st *pkt) {
	e := st.path[st.hop]
	buf := p.failBuf[e]
	at := sort.Search(len(buf), func(i int) bool {
		if buf[i].failSlot != st.failSlot {
			return buf[i].failSlot > st.failSlot
		}
		return buf[i].id > st.id
	})
	buf = append(buf, nil)
	copy(buf[at+1:], buf[at:])
	buf[at] = st
	p.failBuf[e] = buf
}

// removeFailed removes st from the failure buffer of link e.
func (p *Protocol) removeFailed(e int, st *pkt) {
	buf := p.failBuf[e]
	for i, cur := range buf {
		if cur == st {
			p.failBuf[e] = append(buf[:i], buf[i+1:]...)
			return
		}
	}
}

// Feedback implements sim.Protocol. The simulator's tx slice is an
// order-preserving subset of what Slot emitted (invalid requests are
// dropped, never reordered), so the emission record maps each outcome
// back to its execution request index with one forward walk — no
// per-packet map.
func (p *Protocol) Feedback(t int64, tx []sim.Transmission, success []bool) {
	if p.exec == nil {
		return
	}
	idxs := p.idxScratch[:0]
	oks := p.okScratch[:0]
	j := 0
	for i, w := range tx {
		for j < len(p.emitIDs) && p.emitIDs[j] != w.PacketID {
			j++
		}
		if j == len(p.emitIDs) {
			break // not something this execution emitted
		}
		idx := p.emitIdx[j]
		j++
		idxs = append(idxs, idx)
		oks = append(oks, success[i])
		if !success[i] {
			continue
		}
		st := p.execPkts[idx]
		prevLink := st.path[st.hop]
		st.hop++
		if st.failed {
			p.CleanupDelivered++
			p.curFrame.Cleanup++
			p.removeFailed(prevLink, st)
			if st.hop < len(st.path) {
				p.pushFailed(st) // remaining hops stay in clean-up service
			}
		} else {
			p.curFrame.MainServed++
		}
		if st.hop == len(st.path) {
			// The execution may still reference st until the next phase
			// boundary; it stays on live (flagged) for recycling there.
			st.delivered = true
			p.queueLen--
		}
	}
	p.idxScratch, p.okScratch = idxs, oks
	p.exec.Observe(idxs, oks)
}
