package core

import (
	"context"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// TestGoldenRun pins the exact behaviour of a seeded reference run.
// These numbers change only when the protocol's logic or its use of
// randomness changes — which should always be a conscious decision, so
// update them deliberately when it is and investigate when it is not.
func TestGoldenRun(t *testing.T) {
	g := netgraph.LineNetwork(6, 1)
	model := interference.Identity{Links: g.NumLinks()}
	path, ok := netgraph.ShortestPath(g, 0, 5)
	if !ok {
		t.Fatal("no path")
	}
	proc, err := inject.StochasticAtRate(model, []inject.Generator{
		{Choices: []inject.PathChoice{{Path: path, P: 0.5}}},
	}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := New(Config{
		Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
		Lambda: 0.4, Eps: 0.25, Seed: 424242,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(context.Background(), sim.Config{Slots: 10000, Seed: 424242}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}

	// The derived frame layout is pure arithmetic — pin it exactly.
	s := proto.Sizing()
	if s.T != 18 || s.J != 9 || s.MainBudget != 13 || s.CleanupBudget != 5 {
		t.Errorf("sizing changed: %+v (was T=18 J=9 main=13 cleanup=5)", s)
	}

	// Behavioural counters are deterministic under the fixed seeds.
	if res.Injected != 3968 {
		t.Errorf("injected = %d (was 3968)", res.Injected)
	}
	if res.Delivered != 3934 {
		t.Errorf("delivered = %d (was 3934)", res.Delivered)
	}
	if res.ProtocolErrors != 0 {
		t.Errorf("protocol errors = %d", res.ProtocolErrors)
	}
	if got := res.Injected - res.Delivered - res.InFlight; got != 0 {
		t.Errorf("conservation residue %d", got)
	}
}
