// Protocol checkpointing. The protocol satisfies sim's Checkpointable
// and CheckpointAligner interfaces structurally (sim defines them; core
// implements the same method set).
//
// Mid-frame, the protocol holds unserializable state: a live
// static.Execution with algorithm-internal scratch, emission records,
// and phase caches. At a frame boundary all of that is dead — Slot at
// offset 0 rebuilds the execution from the live packet list — so the
// semantic state reduces to: the undelivered packets (delivered ones
// are compacted at the next main-phase start and referenced by nothing
// that survives the boundary), the failure buffers (always a subset of
// the live list, in failure order), the private RNG's stream position,
// and the frame counters. CheckpointAligned therefore admits only
// frame-boundary slots, and the engine defers due checkpoints to them.
//
// The frame-statistics ring (RecentFrames) is deliberately not
// serialized: it is introspection-only and feeds no Result field, so a
// resumed run reports only frames executed since the resume.
package core

import (
	"encoding/json"
	"fmt"

	"dynsched/internal/netgraph"
)

// pktRec is one live packet's serialized protocol state.
type pktRec struct {
	ID            int64 `json:"id"`
	Path          []int `json:"path"`
	Hop           int   `json:"hop"`
	Failed        bool  `json:"failed,omitempty"`
	FailSlot      int64 `json:"failSlot,omitempty"`
	ActivateFrame int64 `json:"activateFrame"`
}

// protoState is the protocol's serialized frame-boundary state.
type protoState struct {
	FramesRun        int64         `json:"framesRun"`
	Failures         int64         `json:"failures"`
	CleanupDelivered int64         `json:"cleanupDelivered"`
	RNGDraws         uint64        `json:"rngDraws"`
	Cur              FrameStat     `json:"cur"`
	Live             []pktRec      `json:"live"`
	FailBuf          map[int][]int `json:"failBuf,omitempty"` // link → indices into Live, failure order
}

// CheckpointAligned implements sim.CheckpointAligner: the protocol can
// only serialize with `next` at a frame boundary, where no execution
// state is live.
func (p *Protocol) CheckpointAligned(next int64) bool {
	return next%int64(p.sizing.T) == 0
}

// CheckpointState implements sim.Checkpointable. Must only be called
// at a slot admitted by CheckpointAligned.
func (p *Protocol) CheckpointState() ([]byte, error) {
	st := protoState{
		FramesRun:        p.FramesRun,
		Failures:         p.Failures,
		CleanupDelivered: p.CleanupDelivered,
		RNGDraws:         p.rngSrc.Draws(),
		Cur:              p.curFrame,
	}
	// Serialize undelivered packets only: delivered ones are awaiting
	// compaction and nothing that survives a frame boundary refers to
	// them. Their index in the serialized list keys the failure
	// buffers.
	index := make(map[*pkt]int, len(p.live))
	for _, pk := range p.live {
		if pk.delivered {
			continue
		}
		index[pk] = len(st.Live)
		st.Live = append(st.Live, pktRec{
			ID: pk.id, Path: pk.path, Hop: pk.hop,
			Failed: pk.failed, FailSlot: pk.failSlot, ActivateFrame: pk.activateFrame,
		})
	}
	for e, buf := range p.failBuf {
		if len(buf) == 0 {
			continue
		}
		if st.FailBuf == nil {
			st.FailBuf = make(map[int][]int)
		}
		idxs := make([]int, len(buf))
		for i, pk := range buf {
			k, ok := index[pk]
			if !ok {
				return nil, fmt.Errorf("core: failure buffer of link %d references a packet missing from the live list", e)
			}
			idxs[i] = k
		}
		st.FailBuf[e] = idxs
	}
	return json.Marshal(st)
}

// RestoreState implements sim.Checkpointable: called on a freshly
// constructed Protocol with an identical Config, it rebuilds the
// frame-boundary state so the next Slot call continues bit-identically.
func (p *Protocol) RestoreState(data []byte) error {
	var st protoState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if len(p.live) != 0 || p.FramesRun != 0 {
		return fmt.Errorf("core: RestoreState requires a fresh protocol")
	}
	if err := p.rngSrc.SeekTo(st.RNGDraws); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	p.FramesRun = st.FramesRun
	p.Failures = st.Failures
	p.CleanupDelivered = st.CleanupDelivered
	p.curFrame = st.Cur
	p.live = make([]*pkt, len(st.Live))
	for i, rec := range st.Live {
		path := make(netgraph.Path, len(rec.Path))
		for k, e := range rec.Path {
			path[k] = netgraph.LinkID(e)
		}
		p.live[i] = &pkt{
			id: rec.ID, path: p.interner.Ints(path), hop: rec.Hop,
			failed: rec.Failed, failSlot: rec.FailSlot, activateFrame: rec.ActivateFrame,
		}
	}
	p.queueLen = len(p.live)
	for e, idxs := range st.FailBuf {
		if e < 0 || e >= len(p.failBuf) {
			return fmt.Errorf("core: checkpoint failure buffer for link %d, protocol has %d links", e, len(p.failBuf))
		}
		buf := make([]*pkt, len(idxs))
		for i, k := range idxs {
			if k < 0 || k >= len(p.live) {
				return fmt.Errorf("core: checkpoint failure buffer index %d out of range", k)
			}
			buf[i] = p.live[k]
		}
		p.failBuf[e] = buf
	}
	return nil
}
