package mac

import (
	"math/rand"
	"testing"

	"dynsched/internal/static"
)

func reqsOn(links ...int) []static.Request {
	out := make([]static.Request, len(links))
	for i, e := range links {
		out[i] = static.Request{Link: e, Tag: int64(i)}
	}
	return out
}

func manyReqs(n, stations int) []static.Request {
	out := make([]static.Request, n)
	for i := range out {
		out[i] = static.Request{Link: i % stations, Tag: int64(i)}
	}
	return out
}

func TestDecayDeliversAll(t *testing.T) {
	model := Model(8)
	rng := rand.New(rand.NewSource(91))
	for _, n := range []int{1, 5, 40, 200} {
		reqs := manyReqs(n, 8)
		res := static.Run(rng, model, Decay{}, reqs, 0)
		if !res.AllServed() {
			t.Fatalf("n=%d: %d/%d served in %d slots", n, res.NumServed(), n, res.Slots)
		}
	}
}

func TestDecayBudgetNearLinear(t *testing.T) {
	// Lemma 15: (1+δ)e·n + O(log²n). With δ = 0.5 the linear
	// coefficient is ≈ 4.1; budgets should track that plus the tail.
	d := Decay{Delta: 0.5}
	b1k := d.Budget(8, 1000, 1000)
	b8k := d.Budget(8, 8000, 8000)
	ratio := float64(b8k) / float64(b1k)
	if ratio > 8.5 || ratio < 4 {
		t.Errorf("budget ratio %.2f for 8× packets, want ≈8 or less", ratio)
	}
}

func TestDecayScheduleLengthMatchesLemma15(t *testing.T) {
	// The measured schedule should be around (1+δ)e·n for large n.
	model := Model(4)
	rng := rand.New(rand.NewSource(92))
	const n = 400
	var total float64
	const reps = 3
	for r := 0; r < reps; r++ {
		res := static.Run(rng, model, Decay{Delta: 0.5}, manyReqs(n, 4), 0)
		if !res.AllServed() {
			t.Fatal("decay failed")
		}
		total += float64(res.Slots)
	}
	mean := total / reps
	perPacket := mean / n
	// e ≈ 2.72 is the theoretical floor for symmetric protocols; with
	// δ = 0.5 the paper's bound is ≈ 4.1 plus tail.
	if perPacket < 2.0 {
		t.Errorf("%.2f slots/packet — faster than the 1/e capacity bound allows", perPacket)
	}
	if perPacket > 8 {
		t.Errorf("%.2f slots/packet — far beyond Lemma 15's (1+δ)e", perPacket)
	}
}

func TestRoundRobinWithholding(t *testing.T) {
	model := Model(5)
	rng := rand.New(rand.NewSource(93))
	reqs := manyReqs(37, 5)
	res := static.Run(rng, model, RoundRobinWithholding{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("RRW served %d/%d in %d slots", res.NumServed(), len(reqs), res.Slots)
	}
	// Lemma 17: n + m slots suffice.
	if res.Slots > 37+5 {
		t.Errorf("RRW used %d slots, bound is n+m = 42", res.Slots)
	}
}

func TestRoundRobinWithholdingEmptyStations(t *testing.T) {
	model := Model(4)
	rng := rand.New(rand.NewSource(94))
	// Only stations 1 and 3 hold packets.
	reqs := reqsOn(1, 3, 3, 1, 1)
	res := static.Run(rng, model, RoundRobinWithholding{}, reqs, 0)
	if !res.AllServed() {
		t.Fatalf("RRW with gaps served %d/%d", res.NumServed(), len(reqs))
	}
}

func TestRRWDeterministicOrder(t *testing.T) {
	// Station 0's packets must all precede station 1's.
	model := Model(2)
	reqs := []static.Request{{Link: 1, Tag: 10}, {Link: 0, Tag: 20}, {Link: 0, Tag: 21}}
	exec := RoundRobinWithholding{}.NewExecution(model, reqs)
	rng := rand.New(rand.NewSource(95))
	var servedOrder []int64
	for !exec.Done() {
		att := exec.Attempts(rng)
		if len(att) == 0 {
			exec.Observe(nil, nil)
			continue
		}
		if len(att) != 1 {
			t.Fatalf("RRW attempted %d transmissions in one slot", len(att))
		}
		servedOrder = append(servedOrder, reqs[att[0]].Tag)
		exec.Observe(att, []bool{true})
	}
	want := []int64{20, 21, 10}
	for i := range want {
		if servedOrder[i] != want[i] {
			t.Fatalf("service order %v, want %v", servedOrder, want)
		}
	}
}

func TestDecayParamsSanity(t *testing.T) {
	d := Decay{}
	xi, rounds, s, stage2 := d.params(1000)
	if xi != len(rounds) {
		t.Fatalf("xi=%d but %d rounds", xi, len(rounds))
	}
	if s < 4 || stage2 < 8 {
		t.Errorf("degenerate stage-two parameters s=%v stage2=%d", s, stage2)
	}
	// Round lengths decay geometrically.
	for i := 1; i < len(rounds); i++ {
		if rounds[i] > rounds[i-1] {
			t.Fatalf("round lengths not decreasing: %v", rounds)
		}
	}
	if _, rounds0, _, _ := d.params(0); rounds0 != nil {
		t.Error("params(0) produced rounds")
	}
}

func TestBackoffDeliversAll(t *testing.T) {
	model := Model(4)
	rng := rand.New(rand.NewSource(96))
	for _, n := range []int{1, 10, 80} {
		reqs := manyReqs(n, 4)
		res := static.Run(rng, model, Backoff{}, reqs, 0)
		if !res.AllServed() {
			t.Fatalf("backoff n=%d: served %d/%d in %d slots", n, res.NumServed(), n, res.Slots)
		}
	}
}

func TestBackoffSlowerThanDecayUnderLoad(t *testing.T) {
	// The motivation for Algorithm 2: backoff's completion time under a
	// large batch is worse than the decay scheme's near-linear schedule.
	model := Model(4)
	const n = 300
	avg := func(alg static.Algorithm) float64 {
		rng := rand.New(rand.NewSource(97))
		var total float64
		const reps = 3
		for r := 0; r < reps; r++ {
			res := static.Run(rng, model, alg, manyReqs(n, 4), 0)
			if !res.AllServed() {
				t.Fatalf("%s failed", alg.Name())
			}
			total += float64(res.Slots)
		}
		return total / reps
	}
	backoff := avg(Backoff{})
	decay := avg(Decay{Delta: 0.5})
	if backoff < decay {
		t.Logf("note: backoff (%.0f slots) beat decay (%.0f) on this workload — acceptable at small n", backoff, decay)
	}
	// Both must at least respect the e·n capacity floor loosely.
	if decay < float64(n) {
		t.Errorf("decay finished in %.0f slots for %d packets — impossible on a MAC", decay, n)
	}
}

func TestBackoffBudgetPositive(t *testing.T) {
	b := Backoff{}
	if b.Budget(4, 10, 100) <= 0 || b.Budget(4, 1, 0) <= 0 {
		t.Fatal("degenerate backoff budgets")
	}
	// Windows double up to the cap.
	e := b.NewExecution(Model(2), reqsOn(0, 0, 1)).(*backoffExec)
	e.Observe([]int{0}, []bool{false})
	if e.window[0] != 4 {
		t.Fatalf("window after one collision = %d, want 4", e.window[0])
	}
}

func TestMACNamesAndRemaining(t *testing.T) {
	if (Decay{}).Name() != "mac-decay" ||
		(RoundRobinWithholding{}).Name() != "round-robin-withholding" ||
		(Backoff{}).Name() != "binary-backoff" {
		t.Error("algorithm names changed")
	}
	model := Model(3)
	for _, alg := range []static.Algorithm{Decay{}, RoundRobinWithholding{}, Backoff{}} {
		exec := alg.NewExecution(model, reqsOn(0, 1, 2))
		if exec.Remaining() != 3 {
			t.Errorf("%s: remaining = %d, want 3", alg.Name(), exec.Remaining())
		}
	}
	if Model(3).Name() != "multiple-access-channel" {
		t.Error("model name changed")
	}
}

func TestDecayPhiKnob(t *testing.T) {
	if got := (Decay{Phi: 2}).phi(); got != 2 {
		t.Errorf("phi = %v, want 2", got)
	}
	if got := (Decay{Phi: 0.2}).phi(); got != 1 {
		t.Errorf("phi floor = %v, want 1", got)
	}
	if got := (Backoff{InitialWindow: 8}).initial(); got != 8 {
		t.Errorf("initial window = %v, want 8", got)
	}
	if got := (Backoff{MaxWindow: 64}).maxWindow(); got != 64 {
		t.Errorf("max window = %v, want 64", got)
	}
}
