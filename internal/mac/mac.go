// Package mac implements the multiple-access-channel instantiation of
// Section 7.1: all W entries are 1, the interference measure is the
// total packet count, and only a lone transmission succeeds. It provides
// the paper's Algorithm 2 (a symmetric, acknowledgement-based decay
// scheme, Lemma 15) and Round-Robin-Withholding (the asymmetric
// deterministic scheme of Lemma 17), which the dynamic transformation
// turns into stable protocols for λ < 1/e and λ < 1 respectively
// (Corollaries 16 and 18).
package mac

import (
	"math"
	"math/rand"

	"dynsched/internal/interference"
	"dynsched/internal/static"
)

// E is Euler's number, the threshold constant of Corollary 16.
const E = math.E

// Model returns the multiple-access-channel interference model for n
// stations (links).
func Model(n int) interference.Model { return interference.AllOnes{Links: n} }

// Decay is Algorithm 2: a symmetric algorithm for the multiple-access
// channel that transmits n packets in (1+δ)e·n + O(φ²·log²n) slots with
// probability at least 1 − 1/n^φ (Lemma 15).
//
// Stage one runs ξ rounds; in round i each surviving packet picks a slot
// uniformly below (1 − 1/(e(1+δ)))^i·n and transmits exactly then, so a
// 1/(e(1+δ)) fraction succeeds per round in expectation. Once the
// survivor count is O(log n), stage two has each packet transmit
// independently with probability 1/s per slot for s·e·(φ+1)·ln n slots.
type Decay struct {
	// Delta is the paper's δ > 0 (throughput slack). ≤ 0 defaults to 0.5.
	Delta float64
	// Phi is the paper's φ ≥ 1 (failure exponent). < 1 defaults to 1.
	Phi float64
}

var _ static.Algorithm = Decay{}

// Name implements static.Algorithm.
func (Decay) Name() string { return "mac-decay" }

func (d Decay) delta() float64 {
	if d.Delta <= 0 {
		return 0.5
	}
	return d.Delta
}

func (d Decay) phi() float64 {
	if d.Phi < 1 {
		return 1
	}
	return d.Phi
}

// params computes the stage structure for n packets. The paper sets the
// stage-two survivor target s = 2φ·ln n·2e²(1+δ)²/δ² — a proof-driven
// constant in the thousands even for n = 100. We keep its Θ(log n)
// shape but shrink the constant so that simulations exercise both
// stages; the Lemma 15 contract (1+δ)e·n + O(φ²·log²n) is preserved.
func (d Decay) params(n int) (xi int, roundLen []int, s float64, stage2 int) {
	if n == 0 {
		return 0, nil, 1, 0
	}
	delta, phi := d.delta(), d.phi()
	q := 1 / (E * (1 + delta)) // per-round success fraction
	lnn := math.Log(float64(n) + 1)
	s = 4 * phi * lnn
	if s < 8 {
		s = 8
	}
	// Round i has length (1−q)^i·n, matching the expected survivor
	// count entering it; stop once the target drops to s.
	cur := float64(n) * (1 - q)
	for cur > s {
		roundLen = append(roundLen, int(math.Floor(cur)))
		cur *= 1 - q
		xi++
		if xi > 10_000 { // safety net; unreachable for sane δ
			break
		}
	}
	stage2 = int(math.Ceil(s * E * (phi + 1) * lnn))
	if stage2 < 8 {
		stage2 = 8
	}
	return xi, roundLen, s, stage2
}

// Budget implements static.Algorithm per Lemma 15:
// (1+δ)e·n + O(φ²·log²n). Under the multiple-access channel's all-ones
// matrix the interference measure *is* the packet count, so the budget
// is computed for min(n, ⌈meas⌉) packets — this is what lets the
// dynamic transformation's frames stay proportional to J rather than
// to the worst-case packet bound m·J.
func (d Decay) Budget(numLinks int, meas float64, n int) int {
	n = effectivePackets(meas, n)
	if n == 0 {
		return 1
	}
	_, roundLen, _, stage2 := d.params(n)
	total := stage2
	for _, l := range roundLen {
		total += l
	}
	// Stage two may need to repeat when stage one underperforms; double
	// the tail for headroom.
	return total + stage2 + 8
}

// effectivePackets bounds the packet count by the all-ones measure.
func effectivePackets(meas float64, n int) int {
	if m := int(math.Ceil(meas)); m < n {
		return m
	}
	return n
}

// NewExecution implements static.Algorithm.
func (d Decay) NewExecution(m interference.Model, reqs []static.Request) static.Execution {
	_, roundLen, s, stage2 := d.params(len(reqs))
	return &decayExec{
		served:    make([]bool, len(reqs)),
		remaining: len(reqs),
		roundLen:  roundLen,
		s:         s,
		stage2:    stage2,
	}
}

type decayExec struct {
	served    []bool
	remaining int

	roundLen []int
	round    int
	slot     int   // offset within current round
	picks    []int // request → chosen slot in current round (-1 served)
	assigned bool

	s      float64
	stage2 int
}

func (e *decayExec) Done() bool     { return e.remaining == 0 }
func (e *decayExec) Remaining() int { return e.remaining }

func (e *decayExec) Attempts(rng *rand.Rand) []int {
	if e.remaining == 0 {
		return nil
	}
	for e.round < len(e.roundLen) {
		if !e.assigned {
			l := e.roundLen[e.round]
			e.picks = make([]int, len(e.served))
			for i := range e.picks {
				if e.served[i] {
					e.picks[i] = -1
				} else {
					e.picks[i] = rng.Intn(l)
				}
			}
			e.slot = 0
			e.assigned = true
		}
		if e.slot < e.roundLen[e.round] {
			var out []int
			for i, p := range e.picks {
				if p == e.slot {
					out = append(out, i)
				}
			}
			e.slot++
			return out
		}
		e.round++
		e.assigned = false
	}
	// Stage two: independent transmission with probability 1/s.
	var out []int
	p := 1 / e.s
	for i, served := range e.served {
		if !served && rng.Float64() < p {
			out = append(out, i)
		}
	}
	return out
}

func (e *decayExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if success[i] && !e.served[idx] {
			e.served[idx] = true
			e.remaining--
			if e.picks != nil {
				e.picks[idx] = -1
			}
		}
	}
}

// RoundRobinWithholding is the asymmetric deterministic algorithm of
// Lemma 17 (used before by Chlebus et al. [13]): stations transmit in ID
// order, each draining its packets; one silent slot hands the channel to
// the next station. It transmits n packets in n + m slots and is stable
// for every λ < 1 after the dynamic transformation (Corollary 18).
//
// The implementation replays the deterministic schedule directly; the
// silence-detection handshake it abstracts requires stations to hear the
// channel, which the multiple-access channel provides by assumption.
type RoundRobinWithholding struct{}

var _ static.Algorithm = RoundRobinWithholding{}

// Name implements static.Algorithm.
func (RoundRobinWithholding) Name() string { return "round-robin-withholding" }

// Budget implements static.Algorithm: n packets plus one silent slot per
// station (Lemma 17's n + m), with the packet count bounded by the
// all-ones measure as in Decay.Budget.
func (RoundRobinWithholding) Budget(numLinks int, meas float64, n int) int {
	return effectivePackets(meas, n) + numLinks + 4
}

// NewExecution implements static.Algorithm.
func (RoundRobinWithholding) NewExecution(m interference.Model, reqs []static.Request) static.Execution {
	// Group request indices by station (link), in station order.
	byStation := make([][]int, m.NumLinks())
	for i, q := range reqs {
		byStation[q.Link] = append(byStation[q.Link], i)
	}
	return &rrwExec{byStation: byStation, remaining: len(reqs)}
}

type rrwExec struct {
	byStation [][]int
	station   int
	silent    bool // next slot is the hand-over silence
	remaining int
}

func (e *rrwExec) Done() bool     { return e.remaining == 0 }
func (e *rrwExec) Remaining() int { return e.remaining }

func (e *rrwExec) Attempts(rng *rand.Rand) []int {
	if e.remaining == 0 {
		return nil
	}
	for e.station < len(e.byStation) {
		if e.silent {
			// Hand-over slot: nobody transmits.
			e.silent = false
			e.station++
			return nil
		}
		q := e.byStation[e.station]
		if len(q) == 0 {
			e.silent = false
			e.station++
			continue
		}
		return []int{q[0]}
	}
	// All stations drained but failures remain (possible only under a
	// lossy channel): cycle again.
	e.station = 0
	return nil
}

func (e *rrwExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if !success[i] {
			continue
		}
		q := e.byStation[e.station]
		if len(q) > 0 && q[0] == idx {
			e.byStation[e.station] = q[1:]
			e.remaining--
			if len(e.byStation[e.station]) == 0 {
				e.silent = true // advertise hand-over next slot
			}
		}
	}
}
