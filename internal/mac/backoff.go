package mac

import (
	"math"
	"math/rand"

	"dynsched/internal/interference"
	"dynsched/internal/static"
)

// Backoff is binary exponential backoff, the classic acknowledgement-
// based contention scheme analysed by Håstad, Leighton and Rogoff [29].
// Each packet draws its next attempt uniformly from a window that
// doubles after every collision (capped at MaxWindow). It is included
// as the historical baseline the paper's Algorithm 2 improves on:
// backoff's throughput degrades as load approaches capacity, and it has
// no high-probability schedule-length contract, which shows up as much
// looser Budget values.
type Backoff struct {
	// InitialWindow is the first backoff window (default 2).
	InitialWindow int
	// MaxWindow caps the doubling (default 4096).
	MaxWindow int
}

var _ static.Algorithm = Backoff{}

// Name implements static.Algorithm.
func (Backoff) Name() string { return "binary-backoff" }

func (b Backoff) initial() int {
	if b.InitialWindow < 1 {
		return 2
	}
	return b.InitialWindow
}

func (b Backoff) maxWindow() int {
	if b.MaxWindow < 2 {
		return 4096
	}
	return b.MaxWindow
}

// Budget implements static.Algorithm. Backoff has no whp guarantee; the
// budget reflects its empirical O(n·log n) behaviour at moderate load
// with generous slack.
func (b Backoff) Budget(numLinks int, meas float64, n int) int {
	n = effectivePackets(meas, n)
	if n == 0 {
		return 1
	}
	return int(math.Ceil(6*float64(n)*math.Log2(float64(n)+2))) + 64
}

// NewExecution implements static.Algorithm.
func (b Backoff) NewExecution(m interference.Model, reqs []static.Request) static.Execution {
	e := &backoffExec{
		window:    make([]int, len(reqs)),
		next:      make([]int, len(reqs)),
		served:    make([]bool, len(reqs)),
		remaining: len(reqs),
		initial:   b.initial(),
		max:       b.maxWindow(),
	}
	for i := range e.window {
		e.window[i] = e.initial
		e.next[i] = -1 // drawn lazily on the first slot
	}
	return e
}

type backoffExec struct {
	window    []int // current backoff window per request
	next      []int // slots until the next attempt (-1 = undrawn)
	served    []bool
	remaining int
	initial   int
	max       int
}

func (e *backoffExec) Done() bool     { return e.remaining == 0 }
func (e *backoffExec) Remaining() int { return e.remaining }

func (e *backoffExec) Attempts(rng *rand.Rand) []int {
	if e.remaining == 0 {
		return nil
	}
	var out []int
	for i := range e.next {
		if e.served[i] {
			continue
		}
		if e.next[i] < 0 {
			e.next[i] = rng.Intn(e.window[i])
		}
		if e.next[i] == 0 {
			out = append(out, i)
		} else {
			e.next[i]--
		}
	}
	return out
}

func (e *backoffExec) Observe(attempted []int, success []bool) {
	for i, idx := range attempted {
		if success[i] {
			if !e.served[idx] {
				e.served[idx] = true
				e.remaining--
			}
			continue
		}
		// Collision: double the window and redraw.
		if e.window[idx] < e.max {
			e.window[idx] *= 2
		}
		e.next[idx] = -1
	}
}
