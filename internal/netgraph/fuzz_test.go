package netgraph

import "testing"

// FuzzPathValidate feeds arbitrary link sequences to Path.Validate on a
// fixed graph and cross-checks its verdict against a reference chaining
// check — Validate must never panic and never accept a broken path.
func FuzzPathValidate(f *testing.F) {
	f.Add([]byte{0})
	f.Add([]byte{0, 1, 2})
	f.Add([]byte{})
	f.Add([]byte{7, 7, 7})

	g := LineNetwork(5, 1) // 8 links

	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) > 32 {
			raw = raw[:32]
		}
		p := make(Path, len(raw))
		for i, b := range raw {
			p[i] = LinkID(int(b) % 10) // may exceed the 8 valid links
		}
		err := p.Validate(g)

		// Reference check.
		ok := len(p) > 0
		for i, id := range p {
			if id < 0 || int(id) >= g.NumLinks() {
				ok = false
				break
			}
			if i > 0 && g.Link(p[i-1]).To != g.Link(id).From {
				ok = false
				break
			}
		}
		if ok != (err == nil) {
			t.Fatalf("Validate = %v but reference says ok=%v for %v", err, ok, p)
		}
		if err == nil {
			// Valid paths expose endpoints without panicking.
			_ = p.Source(g)
			_ = p.Dest(g)
		}
	})
}

// FuzzShortestPath checks that BFS results are always valid paths with
// matching endpoints, on arbitrary node pairs.
func FuzzShortestPath(f *testing.F) {
	f.Add(uint8(0), uint8(4))
	f.Add(uint8(2), uint8(2))
	g := GridNetwork(3, 3, 1)

	f.Fuzz(func(t *testing.T, a, b uint8) {
		u := NodeID(int(a) % g.NumNodes())
		v := NodeID(int(b) % g.NumNodes())
		p, ok := ShortestPath(g, u, v)
		if !ok {
			t.Fatalf("grid is connected but %d→%d failed", u, v)
		}
		if u == v {
			if len(p) != 0 {
				t.Fatalf("self path %v", p)
			}
			return
		}
		if err := p.Validate(g); err != nil {
			t.Fatalf("invalid path: %v", err)
		}
		if p.Source(g) != u || p.Dest(g) != v {
			t.Fatalf("endpoints %d→%d for query %d→%d", p.Source(g), p.Dest(g), u, v)
		}
	})
}
