package netgraph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for debugging and
// documentation. Positions, when present, are emitted as `pos` pin
// attributes (usable with `neato -n`).
func (g *Graph) WriteDOT(w io.Writer, name string) error {
	if name == "" {
		name = "network"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  node [shape=circle fontsize=10];\n")
	for v := 0; v < g.numNodes; v++ {
		if g.pos != nil {
			p := g.pos[v]
			fmt.Fprintf(&b, "  n%d [pos=\"%g,%g!\"];\n", v, p.X, p.Y)
		} else {
			fmt.Fprintf(&b, "  n%d;\n", v)
		}
	}
	for _, l := range g.links {
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"e%d\" fontsize=8];\n", l.From, l.To, l.ID)
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}
