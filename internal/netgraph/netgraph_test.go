package netgraph

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dynsched/internal/geom"
)

func TestAddLink(t *testing.T) {
	g := New(3)
	id, err := g.AddLink(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Errorf("first link ID %d, want 0", id)
	}
	// Duplicates return the existing ID.
	id2, err := g.AddLink(0, 1)
	if err != nil || id2 != id {
		t.Errorf("duplicate AddLink = (%d, %v), want (%d, nil)", id2, err, id)
	}
	// The reverse direction is a distinct link.
	rev, err := g.AddLink(1, 0)
	if err != nil || rev == id {
		t.Errorf("reverse link = (%d, %v)", rev, err)
	}
	if g.NumLinks() != 2 {
		t.Errorf("NumLinks = %d, want 2", g.NumLinks())
	}
	if _, err := g.AddLink(0, 5); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := g.AddLink(1, 1); err == nil {
		t.Error("self-loop accepted")
	}
}

func TestAdjacency(t *testing.T) {
	g := New(4)
	a := g.MustAddLink(0, 1)
	b := g.MustAddLink(0, 2)
	c := g.MustAddLink(2, 0)
	if out := g.Out(0); len(out) != 2 || out[0] != a || out[1] != b {
		t.Errorf("Out(0) = %v", out)
	}
	if in := g.In(0); len(in) != 1 || in[0] != c {
		t.Errorf("In(0) = %v", in)
	}
	if id, ok := g.FindLink(0, 2); !ok || id != b {
		t.Errorf("FindLink(0,2) = (%d,%v)", id, ok)
	}
	if _, ok := g.FindLink(1, 0); ok {
		t.Error("FindLink found a non-existent link")
	}
}

func TestPositionsAndDistances(t *testing.T) {
	g := New(2)
	if g.HasPositions() {
		t.Error("new graph claims positions")
	}
	if err := g.SetPositions([]geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Error("SetPositions accepted wrong length")
	}
	if err := g.SetPositions([]geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}}); err != nil {
		t.Fatal(err)
	}
	id := g.MustAddLink(0, 1)
	if d := g.LinkDist(id); math.Abs(d-5) > 1e-12 {
		t.Errorf("LinkDist = %v, want 5", d)
	}
	// Sender of id → receiver of id is the link itself.
	if d := g.SenderReceiverDist(id, id); math.Abs(d-5) > 1e-12 {
		t.Errorf("SenderReceiverDist(id,id) = %v, want 5", d)
	}
}

func TestPosPanicsWithoutPositions(t *testing.T) {
	g := New(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Pos without positions should panic")
		}
	}()
	g.Pos(0)
}

func TestPathValidate(t *testing.T) {
	g := New(4)
	a := g.MustAddLink(0, 1)
	b := g.MustAddLink(1, 2)
	c := g.MustAddLink(3, 2)

	if err := (Path{a, b}).Validate(g); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
	if err := (Path{a, c}).Validate(g); err == nil {
		t.Error("disconnected path accepted")
	}
	if err := (Path{}).Validate(g); err == nil {
		t.Error("empty path accepted")
	}
	if err := (Path{LinkID(99)}).Validate(g); err == nil {
		t.Error("out-of-range link accepted")
	}
	p := Path{a, b}
	if p.Source(g) != 0 || p.Dest(g) != 2 {
		t.Errorf("source/dest = %d/%d, want 0/2", p.Source(g), p.Dest(g))
	}
}

func TestShortestPath(t *testing.T) {
	g := LineNetwork(5, 1)
	p, ok := ShortestPath(g, 0, 4)
	if !ok {
		t.Fatal("no path found on line network")
	}
	if len(p) != 4 {
		t.Errorf("path length %d, want 4", len(p))
	}
	if err := p.Validate(g); err != nil {
		t.Errorf("shortest path invalid: %v", err)
	}
	if p.Source(g) != 0 || p.Dest(g) != 4 {
		t.Errorf("endpoints %d→%d, want 0→4", p.Source(g), p.Dest(g))
	}
	// Same-node path.
	if p, ok := ShortestPath(g, 2, 2); !ok || len(p) != 0 {
		t.Errorf("self path = (%v, %v)", p, ok)
	}
	// Unreachable.
	iso := New(2)
	if _, ok := ShortestPath(iso, 0, 1); ok {
		t.Error("found path in edgeless graph")
	}
}

func TestRoutingTableMatchesBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomGeometric(rng, 30, 10, 3.5)
	rt := NewRoutingTable(g)
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			direct, okDirect := ShortestPath(g, u, v)
			stored, okStored := rt.Path(u, v)
			if okDirect != okStored {
				t.Fatalf("reachability mismatch %d→%d: %v vs %v", u, v, okDirect, okStored)
			}
			if okDirect && len(direct) != len(stored) {
				t.Fatalf("path length mismatch %d→%d: %d vs %d", u, v, len(direct), len(stored))
			}
			if okStored && len(stored) > 0 {
				if err := stored.Validate(g); err != nil {
					t.Fatalf("stored path invalid: %v", err)
				}
				if stored.Source(g) != u || stored.Dest(g) != v {
					t.Fatalf("stored path endpoints wrong for %d→%d", u, v)
				}
			}
		}
	}
	if rt.Diameter() < 1 {
		t.Errorf("diameter %d suspiciously small", rt.Diameter())
	}
}

func TestInstanceM(t *testing.T) {
	g := LineNetwork(5, 1) // 8 links
	in := NewInstance(g, 4)
	if in.M() != 8 {
		t.Errorf("M = %d, want 8 (links dominate)", in.M())
	}
	in2 := NewInstance(g, 20)
	if in2.M() != 20 {
		t.Errorf("M = %d, want 20 (D dominates)", in2.M())
	}
	if NewInstance(g, -1).D != 1 {
		t.Error("negative D not clamped")
	}
}

func TestGridNetwork(t *testing.T) {
	g := GridNetwork(3, 3, 2)
	if g.NumNodes() != 9 {
		t.Fatalf("nodes = %d, want 9", g.NumNodes())
	}
	// 12 undirected grid edges, two directions each.
	if g.NumLinks() != 24 {
		t.Errorf("links = %d, want 24", g.NumLinks())
	}
	// Corner-to-corner path exists with 4 hops.
	p, ok := ShortestPath(g, 0, 8)
	if !ok || len(p) != 4 {
		t.Errorf("corner path = (%v, %v), want length 4", p, ok)
	}
	for _, l := range g.Links() {
		if d := g.LinkDist(l.ID); math.Abs(d-2) > 1e-12 {
			t.Errorf("grid link %d length %v, want 2", l.ID, d)
		}
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := RandomPairs(rng, 20, 100, 1, 4)
	if g.NumLinks() != 20 {
		t.Fatalf("links = %d, want 20", g.NumLinks())
	}
	for i := 0; i < 20; i++ {
		d := g.LinkDist(LinkID(i))
		if d < 1-1e-9 || d > 4+1e-9 {
			t.Errorf("pair %d length %v outside [1,4]", i, d)
		}
	}
}

func TestMACChannelAndStar(t *testing.T) {
	g := MACChannel(5)
	if g.NumLinks() != 5 || g.NumNodes() != 6 {
		t.Errorf("MACChannel: %d links, %d nodes", g.NumLinks(), g.NumNodes())
	}
	s := Star(4, 3)
	if s.NumLinks() != 8 {
		t.Errorf("Star links = %d, want 8", s.NumLinks())
	}
	for _, l := range s.Links() {
		if d := s.LinkDist(l.ID); math.Abs(d-3) > 1e-9 {
			t.Errorf("star link length %v, want 3", d)
		}
	}
}

func TestDumbbellPaths(t *testing.T) {
	g := LineNetwork(6, 1)
	ps, err := DumbbellPaths(g, 5)
	if err != nil || len(ps) != 1 || len(ps[0]) != 5 {
		t.Errorf("DumbbellPaths = (%v, %v)", ps, err)
	}
	if _, err := DumbbellPaths(g, 9); err == nil {
		t.Error("impossible hop count accepted")
	}
}

func TestNestedChain(t *testing.T) {
	g := NestedChain(5, 2)
	if g.NumLinks() != 5 {
		t.Fatalf("links = %d, want 5", g.NumLinks())
	}
	for i := 0; i < 5; i++ {
		want := math.Pow(2, float64(i))
		if d := g.LinkDist(LinkID(i)); math.Abs(d-want) > 1e-9 {
			t.Errorf("link %d length %v, want %v", i, d, want)
		}
	}
	// Degenerate growth is clamped, not accepted.
	g2 := NestedChain(3, 0.5)
	if d := g2.LinkDist(2); math.Abs(d-4) > 1e-9 {
		t.Errorf("clamped growth produced length %v, want 4", d)
	}
}

func TestRing(t *testing.T) {
	g := Ring(6, 10)
	if g.NumLinks() != 12 {
		t.Fatalf("links = %d, want 12", g.NumLinks())
	}
	// All ring links have equal length (the hexagon side).
	want := g.LinkDist(0)
	for _, l := range g.Links() {
		if d := g.LinkDist(l.ID); math.Abs(d-want) > 1e-9 {
			t.Errorf("ring link %d length %v, want %v", l.ID, d, want)
		}
	}
	// The ring is strongly connected with diameter n/2.
	p, ok := ShortestPath(g, 0, 3)
	if !ok || len(p) != 3 {
		t.Errorf("antipodal path = (%v, %v), want 3 hops", p, ok)
	}
}

func TestBinaryTree(t *testing.T) {
	g := BinaryTree(3, 1) // 15 nodes
	if g.NumNodes() != 15 {
		t.Fatalf("nodes = %d, want 15", g.NumNodes())
	}
	if g.NumLinks() != 28 { // 14 undirected edges × 2
		t.Fatalf("links = %d, want 28", g.NumLinks())
	}
	// Leaf 14's path to the root has 3 hops.
	p, ok := ShortestPath(g, 14, 0)
	if !ok || len(p) != 3 {
		t.Errorf("leaf-to-root path = (%v, %v), want 3 hops", p, ok)
	}
}

func TestSetMetric(t *testing.T) {
	g := New(3)
	good := [][]float64{
		{0, 1, 2},
		{1, 0, 1.5},
		{2, 1.5, 0},
	}
	if err := g.SetMetric(good); err != nil {
		t.Fatal(err)
	}
	if !g.HasMetric() || !g.HasDistances() {
		t.Fatal("metric not registered")
	}
	if d := g.NodeDist(0, 2); d != 2 {
		t.Errorf("NodeDist(0,2) = %v, want 2", d)
	}
	id := g.MustAddLink(0, 1)
	if d := g.LinkDist(id); d != 1 {
		t.Errorf("LinkDist = %v, want 1", d)
	}
	// Bad metrics are rejected.
	bad := [][]float64{
		{0, 1},
		{1, 0},
	}
	if err := g.SetMetric(bad); err == nil {
		t.Error("wrong-size metric accepted")
	}
	asym := [][]float64{
		{0, 1, 2},
		{3, 0, 1},
		{2, 1, 0},
	}
	if err := g.SetMetric(asym); err == nil {
		t.Error("asymmetric metric accepted")
	}
	negDiag := [][]float64{
		{1, 1, 2},
		{1, 0, 1},
		{2, 1, 0},
	}
	if err := g.SetMetric(negDiag); err == nil {
		t.Error("non-zero diagonal accepted")
	}
}

func TestMetricGraphSupportsSINR(t *testing.T) {
	// A three-link "general metric" instance with no planar embedding:
	// distances chosen to satisfy the triangle inequality but not be
	// Euclidean. The SINR model must build and behave sanely.
	g := New(6)
	const n = 6
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	set := func(i, j int, d float64) {
		dist[i][j] = d
		dist[j][i] = d
	}
	// Three sender-receiver pairs (0,1), (2,3), (4,5): short links far apart.
	set(0, 1, 1)
	set(2, 3, 1)
	set(4, 5, 1)
	for _, pair := range [][2]int{{0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {2, 4}, {2, 5}, {3, 4}, {3, 5}} {
		set(pair[0], pair[1], 50)
	}
	if err := g.SetMetric(dist); err != nil {
		t.Fatal(err)
	}
	g.MustAddLink(0, 1)
	g.MustAddLink(2, 3)
	g.MustAddLink(4, 5)
	if !g.HasPositions() && !g.HasMetric() {
		t.Fatal("no distances")
	}
	if d := g.SenderReceiverDist(0, 1); d != 50 {
		t.Fatalf("cross distance %v, want 50", d)
	}
}

func TestWriteDOT(t *testing.T) {
	g := LineNetwork(3, 1)
	var b strings.Builder
	if err := g.WriteDOT(&b, "line"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{`digraph "line"`, "n0 -> n1", "n1 -> n0", `pos="1,0!"`} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Abstract graphs emit nodes without pins.
	a := MACChannel(2)
	b.Reset()
	if err := a.WriteDOT(&b, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "pos=") {
		t.Error("abstract graph emitted positions")
	}
	if !strings.Contains(b.String(), `digraph "network"`) {
		t.Error("default name not applied")
	}
}
