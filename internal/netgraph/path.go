package netgraph

import (
	"errors"
	"fmt"
)

// Path is a sequence of link IDs a packet traverses in order. Paths may
// revisit nodes (the paper allows it) but consecutive links must connect.
type Path []LinkID

// Validate checks that the path is non-empty and consecutive links chain.
func (p Path) Validate(g *Graph) error {
	if len(p) == 0 {
		return errors.New("netgraph: empty path")
	}
	for i, id := range p {
		if id < 0 || int(id) >= g.NumLinks() {
			return fmt.Errorf("netgraph: path hop %d: link %d out of range", i, id)
		}
		if i > 0 && g.Link(p[i-1]).To != g.Link(id).From {
			return fmt.Errorf("netgraph: path hops %d→%d disconnected (link %d ends at %d, link %d starts at %d)",
				i-1, i, p[i-1], g.Link(p[i-1]).To, id, g.Link(id).From)
		}
	}
	return nil
}

// Source returns the first node of the path.
func (p Path) Source(g *Graph) NodeID { return g.Link(p[0]).From }

// Dest returns the final node of the path.
func (p Path) Dest(g *Graph) NodeID { return g.Link(p[len(p)-1]).To }

// ShortestPath returns a minimum-hop path from u to v using BFS over
// links, or false if v is unreachable. For u == v it returns an empty
// path and true.
func ShortestPath(g *Graph, u, v NodeID) (Path, bool) {
	if u == v {
		return Path{}, true
	}
	// prev[w] is the link that first reached node w.
	prev := make([]LinkID, g.NumNodes())
	for i := range prev {
		prev[i] = -1
	}
	queue := []NodeID{u}
	visited := make([]bool, g.NumNodes())
	visited[u] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(cur) {
			next := g.Link(id).To
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = id
			if next == v {
				return reconstruct(g, prev, u, v), true
			}
			queue = append(queue, next)
		}
	}
	return nil, false
}

func reconstruct(g *Graph, prev []LinkID, u, v NodeID) Path {
	var rev Path
	for cur := v; cur != u; {
		id := prev[cur]
		rev = append(rev, id)
		cur = g.Link(id).From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// RoutingTable precomputes shortest paths between all node pairs. It is
// intended for the moderate graph sizes the experiments use.
type RoutingTable struct {
	g     *Graph
	paths map[[2]NodeID]Path
}

// NewRoutingTable builds the all-pairs table by running BFS from every
// source node.
func NewRoutingTable(g *Graph) *RoutingTable {
	rt := &RoutingTable{g: g, paths: make(map[[2]NodeID]Path)}
	for u := NodeID(0); int(u) < g.NumNodes(); u++ {
		rt.bfsFrom(u)
	}
	return rt
}

func (rt *RoutingTable) bfsFrom(u NodeID) {
	g := rt.g
	prev := make([]LinkID, g.NumNodes())
	for i := range prev {
		prev[i] = -1
	}
	visited := make([]bool, g.NumNodes())
	visited[u] = true
	queue := []NodeID{u}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, id := range g.Out(cur) {
			next := g.Link(id).To
			if visited[next] {
				continue
			}
			visited[next] = true
			prev[next] = id
			rt.paths[[2]NodeID{u, next}] = reconstruct(g, prev, u, next)
			queue = append(queue, next)
		}
	}
}

// Path returns the stored shortest path from u to v.
func (rt *RoutingTable) Path(u, v NodeID) (Path, bool) {
	if u == v {
		return Path{}, true
	}
	p, ok := rt.paths[[2]NodeID{u, v}]
	return p, ok
}

// Diameter returns the longest shortest-path hop count over connected
// pairs, or 0 for a graph with no reachable pairs.
func (rt *RoutingTable) Diameter() int {
	d := 0
	for _, p := range rt.paths {
		if len(p) > d {
			d = len(p)
		}
	}
	return d
}

// Instance couples a graph with the path-length bound D and exposes the
// significant network size m = max(|E|, D) from Section 2.
type Instance struct {
	G *Graph
	D int
}

// NewInstance builds an instance; D below 1 is raised to 1.
func NewInstance(g *Graph, maxPathLen int) *Instance {
	if maxPathLen < 1 {
		maxPathLen = 1
	}
	return &Instance{G: g, D: maxPathLen}
}

// M returns the significant network size m = max(|E|, D).
func (in *Instance) M() int {
	if in.G.NumLinks() > in.D {
		return in.G.NumLinks()
	}
	return in.D
}
