package netgraph

import (
	"fmt"
	"math"
	"math/rand"

	"dynsched/internal/geom"
)

// GridNetwork builds a rows×cols grid with the given spacing. Each pair
// of horizontally or vertically adjacent nodes is connected by links in
// both directions.
func GridNetwork(rows, cols int, spacing float64) *Graph {
	g := New(rows * cols)
	if err := g.SetPositions(geom.Grid(rows, cols, spacing)); err != nil {
		panic(err) // sizes match by construction
	}
	node := func(r, c int) NodeID { return NodeID(r*cols + c) }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				g.MustAddLink(node(r, c), node(r, c+1))
				g.MustAddLink(node(r, c+1), node(r, c))
			}
			if r+1 < rows {
				g.MustAddLink(node(r, c), node(r+1, c))
				g.MustAddLink(node(r+1, c), node(r, c))
			}
		}
	}
	return g
}

// LineNetwork builds n nodes on a line with bidirectional links between
// neighbours.
func LineNetwork(n int, spacing float64) *Graph {
	g := New(n)
	if err := g.SetPositions(geom.Line(n, spacing)); err != nil {
		panic(err)
	}
	for i := 0; i+1 < n; i++ {
		g.MustAddLink(NodeID(i), NodeID(i+1))
		g.MustAddLink(NodeID(i+1), NodeID(i))
	}
	return g
}

// RandomGeometric places n nodes uniformly in a side×side square and
// connects every ordered pair within the given radius.
func RandomGeometric(rng *rand.Rand, n int, side, radius float64) *Graph {
	g := New(n)
	pts := geom.Uniform(rng, n, side)
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && pts[i].Dist(pts[j]) <= radius {
				g.MustAddLink(NodeID(i), NodeID(j))
			}
		}
	}
	return g
}

// RandomPairs builds n disjoint sender→receiver links: senders are
// uniform in the side×side square and each receiver sits at a uniform
// angle and a length uniform in [minLen, maxLen] from its sender. This
// is the standard topology for static SINR scheduling experiments.
func RandomPairs(rng *rand.Rand, n int, side, minLen, maxLen float64) *Graph {
	if maxLen < minLen {
		minLen, maxLen = maxLen, minLen
	}
	g := New(2 * n)
	pts := make([]geom.Point, 2*n)
	for i := 0; i < n; i++ {
		s := geom.Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		length := minLen + rng.Float64()*(maxLen-minLen)
		angle := rng.Float64() * 2 * 3.141592653589793
		r := geom.Point{X: s.X + length*cos(angle), Y: s.Y + length*sin(angle)}
		pts[2*i], pts[2*i+1] = s, r
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(2*i), NodeID(2*i+1))
	}
	return g
}

// PairsAt builds disjoint sender→receiver links from explicit sender
// positions: each receiver sits at a uniform angle and a length uniform
// in [minLen, maxLen] from its sender, drawn from rng in sender order.
// It is RandomPairs with the sender placement factored out, so
// procedural generators (clustered, gridded, …) can supply their own
// spatial processes and still share the link geometry.
func PairsAt(rng *rand.Rand, senders []geom.Point, minLen, maxLen float64) *Graph {
	if maxLen < minLen {
		minLen, maxLen = maxLen, minLen
	}
	n := len(senders)
	g := New(2 * n)
	pts := make([]geom.Point, 2*n)
	for i, s := range senders {
		length := minLen + rng.Float64()*(maxLen-minLen)
		angle := rng.Float64() * 2 * 3.141592653589793
		r := geom.Point{X: s.X + length*cos(angle), Y: s.Y + length*sin(angle)}
		pts[2*i], pts[2*i+1] = s, r
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(2*i), NodeID(2*i+1))
	}
	return g
}

// NestedChain builds n collinear sender→receiver pairs with
// exponentially growing lengths: link i has length growth^i and starts
// one unit after the previous link ends. This is the classic hard
// instance for uniform transmission powers — each short link's sender
// sits close to all longer links' receivers relative to their lengths,
// so the monotone interference measure concentrates on the long links —
// while linear power assignments handle it gracefully.
func NestedChain(n int, growth float64) *Graph {
	if growth < 1.1 {
		growth = 2
	}
	g := New(2 * n)
	pts := make([]geom.Point, 2*n)
	x := 0.0
	length := 1.0
	for i := 0; i < n; i++ {
		pts[2*i] = geom.Point{X: x}
		pts[2*i+1] = geom.Point{X: x + length}
		x += length + 1
		length *= growth
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(2*i), NodeID(2*i+1))
	}
	return g
}

// Ring builds n nodes on a circle with bidirectional neighbour links.
func Ring(n int, radius float64) *Graph {
	g := New(n)
	pts := make([]geom.Point, n)
	for i := range pts {
		angle := 2 * math.Pi * float64(i) / float64(n)
		pts[i] = geom.Point{X: radius * math.Cos(angle), Y: radius * math.Sin(angle)}
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		g.MustAddLink(NodeID(i), NodeID(j))
		g.MustAddLink(NodeID(j), NodeID(i))
	}
	return g
}

// BinaryTree builds a complete binary tree of the given depth with
// bidirectional parent-child links; node 0 is the root. Positions place
// each level on its own row, which keeps sibling subtrees apart for
// geometric models.
func BinaryTree(depth int, spacing float64) *Graph {
	n := (1 << (depth + 1)) - 1
	g := New(n)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		level := 0
		for (1<<(level+1))-1 <= i {
			level++
		}
		posInLevel := i - ((1 << level) - 1)
		width := float64(int(1) << depth)
		step := width / float64(int(1)<<level)
		pts[i] = geom.Point{
			X: (float64(posInLevel) + 0.5) * step * spacing,
			Y: float64(level) * spacing,
		}
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 1; i < n; i++ {
		parent := NodeID((i - 1) / 2)
		g.MustAddLink(parent, NodeID(i))
		g.MustAddLink(NodeID(i), parent)
	}
	return g
}

// MACChannel builds the abstract multiple-access-channel topology: n
// stations, each with one link to a common sink. Geometry is omitted;
// only the all-ones interference model is meaningful on this graph.
func MACChannel(n int) *Graph {
	g := New(n + 1)
	sink := NodeID(n)
	for i := 0; i < n; i++ {
		g.MustAddLink(NodeID(i), sink)
	}
	return g
}

// Star builds a bidirectional star with n leaves around node 0.
func Star(n int, spacing float64) *Graph {
	g := New(n + 1)
	pts := make([]geom.Point, n+1)
	pts[0] = geom.Point{}
	for i := 1; i <= n; i++ {
		angle := 2 * 3.141592653589793 * float64(i-1) / float64(n)
		pts[i] = geom.Point{X: spacing * cos(angle), Y: spacing * sin(angle)}
	}
	if err := g.SetPositions(pts); err != nil {
		panic(err)
	}
	for i := 1; i <= n; i++ {
		g.MustAddLink(0, NodeID(i))
		g.MustAddLink(NodeID(i), 0)
	}
	return g
}

// DumbbellPaths returns k node-disjoint-free paths crossing a line
// network end to end; it is a convenience for latency experiments and
// returns an error if the graph is not a line built by LineNetwork.
func DumbbellPaths(g *Graph, hops int) ([]Path, error) {
	if hops < 1 || hops >= g.NumNodes() {
		return nil, fmt.Errorf("netgraph: %d hops impossible on %d nodes", hops, g.NumNodes())
	}
	p, ok := ShortestPath(g, 0, NodeID(hops))
	if !ok {
		return nil, fmt.Errorf("netgraph: node %d unreachable from 0", hops)
	}
	return []Path{p}, nil
}

// cos and sin wrap math for terse builder code.
func cos(x float64) float64 { return math.Cos(x) }
func sin(x float64) float64 { return math.Sin(x) }
