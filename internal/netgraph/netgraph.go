// Package netgraph models the communication network of the paper: a
// directed graph whose vertices are radio nodes and whose edges are the
// possible communication links. Packets follow fixed paths of links; the
// significant network size is m = max(|E|, D) where D bounds the path
// length (Section 2 of the paper).
package netgraph

import (
	"fmt"

	"dynsched/internal/geom"
)

// NodeID identifies a network node.
type NodeID int

// LinkID identifies a directed communication link. LinkIDs are dense:
// they index arrays of size Graph.NumLinks().
type LinkID int

// Link is a directed communication link between two nodes.
type Link struct {
	ID   LinkID
	From NodeID
	To   NodeID
}

// Graph is a directed communication graph. Nodes may carry positions in
// the plane (required by geometric interference models, ignored by
// abstract ones such as the multiple-access channel), or an explicit
// distance matrix for general metric spaces (Section 6.2 distinguishes
// fading metrics from general metrics; the SINR models work over either).
type Graph struct {
	numNodes int
	pos      []geom.Point
	dist     [][]float64 // explicit metric, row-major; nil unless set
	links    []Link
	out      [][]LinkID
	in       [][]LinkID
	byPair   map[[2]NodeID]LinkID
}

// New creates a graph with n nodes and no links.
func New(n int) *Graph {
	return &Graph{
		numNodes: n,
		out:      make([][]LinkID, n),
		in:       make([][]LinkID, n),
		byPair:   make(map[[2]NodeID]LinkID),
	}
}

// SetPositions assigns planar positions to all nodes. It returns an
// error if the slice length does not match the node count.
func (g *Graph) SetPositions(pts []geom.Point) error {
	if len(pts) != g.numNodes {
		return fmt.Errorf("netgraph: %d positions for %d nodes", len(pts), g.numNodes)
	}
	g.pos = make([]geom.Point, len(pts))
	copy(g.pos, pts)
	return nil
}

// HasPositions reports whether nodes carry planar positions.
func (g *Graph) HasPositions() bool { return g.pos != nil }

// SetMetric assigns an explicit node-distance matrix (a general metric
// space). The matrix must be n×n, symmetric, non-negative, with zero
// diagonal. Geometric models consult the metric when set, falling back
// to planar positions otherwise.
func (g *Graph) SetMetric(dist [][]float64) error {
	if len(dist) != g.numNodes {
		return fmt.Errorf("netgraph: %d metric rows for %d nodes", len(dist), g.numNodes)
	}
	for i := range dist {
		if len(dist[i]) != g.numNodes {
			return fmt.Errorf("netgraph: metric row %d has %d entries", i, len(dist[i]))
		}
		if dist[i][i] != 0 {
			return fmt.Errorf("netgraph: metric diagonal (%d,%d) = %v, want 0", i, i, dist[i][i])
		}
		for j := range dist[i] {
			if dist[i][j] < 0 {
				return fmt.Errorf("netgraph: negative distance (%d,%d)", i, j)
			}
			if dist[i][j] != dist[j][i] {
				return fmt.Errorf("netgraph: asymmetric distance (%d,%d)", i, j)
			}
		}
	}
	g.dist = dist
	return nil
}

// HasMetric reports whether an explicit distance matrix is set.
func (g *Graph) HasMetric() bool { return g.dist != nil }

// HasDistances reports whether node distances are available from either
// source (explicit metric or planar positions).
func (g *Graph) HasDistances() bool { return g.dist != nil || g.pos != nil }

// NodeDist returns the distance between two nodes, from the explicit
// metric when set and from planar positions otherwise. It panics if the
// graph has neither (programmer error: a geometric model was built on
// an abstract graph).
func (g *Graph) NodeDist(u, v NodeID) float64 {
	if g.dist != nil {
		return g.dist[u][v]
	}
	return g.Pos(u).Dist(g.Pos(v))
}

// Pos returns the position of node v. It panics if positions were never
// set (programmer error: a geometric model was built on an abstract graph).
func (g *Graph) Pos(v NodeID) geom.Point {
	if g.pos == nil {
		panic("netgraph: graph has no positions")
	}
	return g.pos[v]
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.numNodes }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddLink adds a directed link from u to v and returns its ID. Adding a
// duplicate (same ordered pair) returns the existing ID. It returns an
// error for out-of-range endpoints or self-loops.
func (g *Graph) AddLink(u, v NodeID) (LinkID, error) {
	if u < 0 || int(u) >= g.numNodes || v < 0 || int(v) >= g.numNodes {
		return 0, fmt.Errorf("netgraph: link endpoints (%d,%d) out of range [0,%d)", u, v, g.numNodes)
	}
	if u == v {
		return 0, fmt.Errorf("netgraph: self-loop at node %d", u)
	}
	if id, ok := g.byPair[[2]NodeID{u, v}]; ok {
		return id, nil
	}
	id := LinkID(len(g.links))
	g.links = append(g.links, Link{ID: id, From: u, To: v})
	g.out[u] = append(g.out[u], id)
	g.in[v] = append(g.in[v], id)
	g.byPair[[2]NodeID{u, v}] = id
	return id, nil
}

// MustAddLink is AddLink for construction code with known-good inputs.
func (g *Graph) MustAddLink(u, v NodeID) LinkID {
	id, err := g.AddLink(u, v)
	if err != nil {
		panic(err)
	}
	return id
}

// Link returns the link with the given ID.
func (g *Graph) Link(id LinkID) Link { return g.links[id] }

// Links returns all links. The caller must not modify the result.
func (g *Graph) Links() []Link { return g.links }

// Out returns the IDs of links leaving v. The caller must not modify it.
func (g *Graph) Out(v NodeID) []LinkID { return g.out[v] }

// In returns the IDs of links entering v. The caller must not modify it.
func (g *Graph) In(v NodeID) []LinkID { return g.in[v] }

// FindLink returns the link from u to v, if present.
func (g *Graph) FindLink(u, v NodeID) (LinkID, bool) {
	id, ok := g.byPair[[2]NodeID{u, v}]
	return id, ok
}

// LinkDist returns the length of link id. It panics if the graph has
// neither a metric nor positions.
func (g *Graph) LinkDist(id LinkID) float64 {
	l := g.links[id]
	return g.NodeDist(l.From, l.To)
}

// SenderReceiverDist returns the distance from the sender of a to the
// receiver of b — the cross-link distance d(s_a, r_b) that interference
// computations need.
func (g *Graph) SenderReceiverDist(a, b LinkID) float64 {
	return g.NodeDist(g.links[a].From, g.links[b].To)
}
