package geom

import "math"

// Geometry is the frame of a grid index — origin, cell size, and cell
// counts — made explicit and comparable so callers can detect when two
// selections index into the same lattice. Equal Geometry values assign
// every point the same cell coordinates, which is what makes
// incremental index updates (Update) value-transparent: the updated
// index is bit-identical to a fresh FillGeom over the new selection.
type Geometry struct {
	MinX, MinY float64
	Cell       float64
	Cols, Rows int
}

// StableGeometry derives the grid geometry for a selection the way
// FillGeom expects it, but quantized for cross-slot stability: the
// automatic cell size is rounded up to the next power of two and the
// origin is snapped down onto the cell lattice. The result is a pure
// function of the selection's bounding box and size — no history — so
// a simulation slot resolves identically whether it was reached by a
// fresh run or a checkpoint resume. The quantization means consecutive
// selections whose bounding boxes wobble within the same lattice cells
// produce the *same* Geometry, which is what lets the incremental path
// reuse the previous slot's cell assignments.
//
// An explicit cellSize > 0 is used verbatim (snapped origin, no
// rounding) unless it would explode the cell count relative to the
// selection — the same guard Fill applies — in which case the quantized
// automatic size takes over.
func StableGeometry(pts []Point, sel []int32, cellSize float64) Geometry {
	k := len(sel)
	if k == 0 {
		return Geometry{}
	}
	min, max := pts[sel[0]], pts[sel[0]]
	for _, id := range sel[1:] {
		p := pts[id]
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	w, h := max.X-min.X, max.Y-min.Y
	auto := autoCell(w, h, k)
	cell := cellSize
	if cell <= 0 || !(cell < math.Inf(1)) {
		cell = quantCell(auto)
	} else if cell < auto && (w/cell+1)*(h/cell+1) > 4*float64(k)+64 {
		cell = quantCell(auto)
	}
	minX := math.Floor(min.X/cell) * cell
	minY := math.Floor(min.Y/cell) * cell
	return Geometry{
		MinX: minX,
		MinY: minY,
		Cell: cell,
		Cols: int((max.X-minX)/cell) + 1,
		Rows: int((max.Y-minY)/cell) + 1,
	}
}

// quantCell rounds a positive cell size up to the next power of two,
// the quantization that keeps StableGeometry stable under bounding-box
// jitter. Non-finite or non-positive inputs fall back to 1.
func quantCell(c float64) float64 {
	if !(c > 0) || math.IsInf(c, 1) {
		return 1
	}
	return math.Ldexp(1, int(math.Ceil(math.Log2(c))))
}

// FillGeom rebuilds the index over the selected points inside an
// explicit geometry (normally from StableGeometry), reusing all
// internal buffers like Fill. sel must be non-nil and every selected
// point should lie inside the geometry's bounding box (stragglers are
// clamped onto the border cells, as in Fill). Weight sums are
// accumulated in selection order, so for an ascending selection the
// per-cell sums are in ascending id order — the invariant Update
// preserves.
func (g *GridIndex) FillGeom(pts []Point, sel []int32, wt []float64, geo Geometry) {
	k := len(sel)
	g.count = k
	g.geo = geo
	g.hasGeo = true
	g.selCopy = append(g.selCopy[:0], sel...)
	if k == 0 {
		g.cols, g.rows = 0, 0
		g.start = growInt32s(&g.start, 1)
		g.start[0] = 0
		g.ids = g.ids[:0]
		return
	}
	g.minX, g.minY, g.cell = geo.MinX, geo.MinY, geo.Cell
	g.cols, g.rows = geo.Cols, geo.Rows
	ncells := g.cols * g.rows

	start := growInt32s(&g.start, ncells+1)
	for i := range start {
		start[i] = 0
	}
	cellOf := growInt32s(&g.cellOf, k)
	for i := 0; i < k; i++ {
		cx, cy := g.clampCell(pts[sel[i]])
		c := int32(cy*g.cols + cx)
		cellOf[i] = c
		start[c+1]++
	}
	for c := 0; c < ncells; c++ {
		start[c+1] += start[c]
	}
	ids := growInt32s(&g.ids, k)
	for i := 0; i < k; i++ {
		c := cellOf[i]
		ids[start[c]] = sel[i]
		start[c]++
	}
	for c := ncells; c > 0; c-- {
		start[c] = start[c-1]
	}
	start[0] = 0

	cellWt := growFloat64s(&g.cellWt, ncells)
	for i := range cellWt {
		cellWt[i] = 0
	}
	if wt != nil {
		for i := 0; i < k; i++ {
			cellWt[cellOf[i]] += wt[sel[i]]
		}
	}
}

// SelectionDelta returns the size of the symmetric difference between
// two ascending id selections — the number of points that joined plus
// the number that left. Callers use it to decide between an
// incremental Update and a full rebuild.
func SelectionDelta(prev, cur []int32) int {
	d := 0
	i, j := 0, 0
	for i < len(prev) && j < len(cur) {
		switch {
		case prev[i] == cur[j]:
			i++
			j++
		case prev[i] < cur[j]:
			d++
			i++
		default:
			d++
			j++
		}
	}
	return d + (len(prev) - i) + (len(cur) - j)
}

// TryUpdate transitions the index to a new ascending selection without
// rebuilding, and reports whether it did. The delta path applies only
// when the index was last built by FillGeom (or a previous TryUpdate),
// its stored geometry equals geo, and the symmetric difference between
// the stored and new selections is at most maxDelta — otherwise it
// returns false and the caller rebuilds with FillGeom. Because the
// index verifies its own precondition against the selection it actually
// holds, a stale caller can never corrupt it.
//
// Surviving points keep their previous cell assignment (no coordinate
// arithmetic at all); only joining points are located with clampCell.
// The bucket arrays are then repacked with a counting sort — integer
// work only — and per-cell weight sums are recomputed from scratch for
// exactly the cells a joining or leaving point touched, in ascending
// member order. The resulting index state (buckets, order, weights) is
// bit-identical to FillGeom(pts, newSel, wt, geo): the delta path is an
// optimization, never a semantic fork. Floating-point work is
// O(|delta| + touched-cell members); the repack is O(|newSel| + cells)
// integer work.
func (g *GridIndex) TryUpdate(pts []Point, newSel []int32, wt []float64, geo Geometry, maxDelta int) bool {
	if !g.hasGeo || g.geo != geo || len(newSel) == 0 {
		return false
	}
	if SelectionDelta(g.selCopy, newSel) > maxDelta {
		return false
	}
	prevSel := g.selCopy
	k := len(newSel)
	ncells := g.cols * g.rows
	g.count = k

	// Touched-cell set, deduplicated with generation stamps. The mark
	// buffer is zero on (re)allocation and g.gen only grows, so stale
	// stamps can never collide with the current generation.
	g.gen++
	if len(g.mark) < ncells {
		g.mark = make([]int64, ncells)
	}
	g.touch = g.touch[:0]

	// Merge the two ascending selections: survivors reuse their cell,
	// joiners are located, both joiners' and leavers' cells are marked.
	cellOf2 := growInt32s(&g.cellOf2, k)
	i, j := 0, 0
	for i < len(prevSel) && j < len(newSel) {
		switch {
		case prevSel[i] == newSel[j]:
			cellOf2[j] = g.cellOf[i]
			i++
			j++
		case prevSel[i] < newSel[j]:
			g.touchCell(g.cellOf[i])
			i++
		default:
			cx, cy := g.clampCell(pts[newSel[j]])
			c := int32(cy*g.cols + cx)
			cellOf2[j] = c
			g.touchCell(c)
			j++
		}
	}
	for ; i < len(prevSel); i++ {
		g.touchCell(g.cellOf[i])
	}
	for ; j < len(newSel); j++ {
		cx, cy := g.clampCell(pts[newSel[j]])
		c := int32(cy*g.cols + cx)
		cellOf2[j] = c
		g.touchCell(c)
	}

	// Counting-sort repack into the swap buffers. newSel is ascending,
	// so each cell's bucket comes out in ascending id order — the same
	// order a fresh fill produces.
	start2 := growInt32s(&g.start2, ncells+1)
	for c := range start2 {
		start2[c] = 0
	}
	for idx := 0; idx < k; idx++ {
		start2[cellOf2[idx]+1]++
	}
	for c := 0; c < ncells; c++ {
		start2[c+1] += start2[c]
	}
	ids2 := growInt32s(&g.ids2, k)
	for idx := 0; idx < k; idx++ {
		c := cellOf2[idx]
		ids2[start2[c]] = newSel[idx]
		start2[c]++
	}
	for c := ncells; c > 0; c-- {
		start2[c] = start2[c-1]
	}
	start2[0] = 0
	g.start, g.start2 = start2, g.start
	g.ids, g.ids2 = ids2, g.ids
	g.cellOf, g.cellOf2 = cellOf2, g.cellOf

	// Re-sum the touched cells from their (ascending) members — the
	// exact accumulation order of a fresh fill, so the sums match bit
	// for bit. Untouched cells kept their membership and their sum.
	if wt != nil {
		for _, c := range g.touch {
			sum := 0.0
			for _, id := range g.ids[g.start[c]:g.start[c+1]] {
				sum += wt[id]
			}
			g.cellWt[c] = sum
		}
	} else {
		for _, c := range g.touch {
			g.cellWt[c] = 0
		}
	}
	g.selCopy = append(g.selCopy[:0], newSel...)
	return true
}

// touchCell adds c to the touched-cell set if not already present this
// generation.
func (g *GridIndex) touchCell(c int32) {
	if g.mark[c] != g.gen {
		g.mark[c] = g.gen
		g.touch = append(g.touch, c)
	}
}
