// Package geom provides the two-dimensional Euclidean substrate the SINR
// model lives in: points, distances, and the node-placement generators
// used to build experiment topologies (grids, uniform scatters, clustered
// deployments, and lines).
package geom

import (
	"fmt"
	"math"
	"math/rand"
)

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
func (p Point) Dist(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// DistSq returns the squared Euclidean distance between p and q.
func (p Point) DistSq(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Add returns p translated by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Scale returns p scaled by s.
func (p Point) Scale(s float64) Point { return Point{p.X * s, p.Y * s} }

// String formats the point with two decimals.
func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.X, p.Y) }

// Grid places rows×cols points with the given spacing, starting at the
// origin and proceeding row-major.
func Grid(rows, cols int, spacing float64) []Point {
	pts := make([]Point, 0, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			pts = append(pts, Point{X: float64(c) * spacing, Y: float64(r) * spacing})
		}
	}
	return pts
}

// Line places n points on the x-axis with the given spacing.
func Line(n int, spacing float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: float64(i) * spacing}
	}
	return pts
}

// Uniform places n points uniformly at random in the side×side square.
func Uniform(rng *rand.Rand, n int, side float64) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return pts
}

// Clusters places n points in k clusters: cluster centers are uniform in
// the side×side square and members are offset by a Gaussian of the given
// standard deviation. Points are assigned to clusters round-robin so all
// clusters have nearly equal size.
func Clusters(rng *rand.Rand, n, k int, side, stddev float64) []Point {
	if k < 1 {
		k = 1
	}
	centers := Uniform(rng, k, side)
	pts := make([]Point, n)
	for i := range pts {
		c := centers[i%k]
		pts[i] = Point{
			X: c.X + rng.NormFloat64()*stddev,
			Y: c.Y + rng.NormFloat64()*stddev,
		}
	}
	return pts
}

// BoundingBox returns the min and max corners of pts. It returns zero
// points for an empty slice.
func BoundingBox(pts []Point) (min, max Point) {
	if len(pts) == 0 {
		return
	}
	min, max = pts[0], pts[0]
	for _, p := range pts[1:] {
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	return
}
