package geom

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// bruteWithin is the reference for Within: a linear scan.
func bruteWithin(pts []Point, sel []int32, p Point, r float64) []int32 {
	var out []int32
	ids := sel
	if ids == nil {
		ids = make([]int32, len(pts))
		for i := range ids {
			ids[i] = int32(i)
		}
	}
	for _, id := range ids {
		if p.DistSq(pts[id]) <= r*r {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestGridIndexWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(400)
		side := 1 + rng.Float64()*100
		pts := Uniform(rng, n, side)
		g := NewGridIndex(pts, 0)
		for q := 0; q < 10; q++ {
			p := Point{X: (rng.Float64()*1.4 - 0.2) * side, Y: (rng.Float64()*1.4 - 0.2) * side}
			r := rng.Float64() * side / 2
			got := g.Within(p, r, pts, nil)
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			want := bruteWithin(pts, nil, p, r)
			if len(got) != len(want) {
				t.Fatalf("trial %d: Within returned %d ids, brute force %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d: Within[%d] = %d, want %d", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGridIndexSubsetFill(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	pts := Uniform(rng, 300, 50)
	wt := make([]float64, len(pts))
	for i := range wt {
		wt[i] = 1 + rng.Float64()
	}
	sel := make([]int32, 0, 150)
	for i := 0; i < len(pts); i += 2 {
		sel = append(sel, int32(i))
	}
	var g GridIndex
	g.Fill(pts, sel, wt, 0)
	if g.Count() != len(sel) {
		t.Fatalf("Count = %d, want %d", g.Count(), len(sel))
	}
	// Every selected id appears in exactly the cell containing it, and
	// cell weights sum to the selection's total weight.
	var totalWt float64
	for _, id := range sel {
		totalWt += wt[id]
	}
	var seen int
	var sumWt float64
	for cy := 0; cy < g.rows; cy++ {
		for cx := 0; cx < g.cols; cx++ {
			for _, id := range g.CellIDs(cx, cy) {
				if id%2 != 0 {
					t.Fatalf("unselected id %d in index", id)
				}
				if gx, gy := g.CellAt(pts[id]); gx != cx || gy != cy {
					t.Fatalf("id %d bucketed in (%d,%d) but located in (%d,%d)", id, cx, cy, gx, gy)
				}
				seen++
			}
			sumWt += g.CellWeight(cx, cy)
		}
	}
	if seen != len(sel) {
		t.Fatalf("index holds %d ids, want %d", seen, len(sel))
	}
	if math.Abs(sumWt-totalWt) > 1e-9*totalWt {
		t.Fatalf("cell weights sum to %v, want %v", sumWt, totalWt)
	}
	// Refill with a different subset reuses buffers and stays correct.
	g.Fill(pts, sel[:10], wt, 0)
	if g.Count() != 10 {
		t.Fatalf("refill Count = %d, want 10", g.Count())
	}
	got := g.Within(pts[sel[3]], 1e-9, pts, nil)
	found := false
	for _, id := range got {
		if id == sel[3] {
			found = true
		}
	}
	if !found {
		t.Fatalf("refilled index lost point %d", sel[3])
	}
}

func TestGridIndexRingsPartitionAndOuterDist(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	pts := Uniform(rng, 500, 40)
	g := NewGridIndex(pts, 0)
	p := Point{X: 13, Y: 29}
	cx, cy := g.CellAt(p)
	seen := make(map[int32]int)
	total := 0
	var ring, next []int32
	for r := 0; ; r++ {
		var cont bool
		ring, cont = g.RingCells(cx, cy, r, ring[:0])
		for _, ci := range ring {
			seen[ci]++
			total += len(g.CellIDsAt(ci))
		}
		// Every cell on ring r+1.. is at distance ≥ OuterDist(r).
		if odr, ok := g.OuterDist(p, cx, cy, r); ok {
			next, _ = g.RingCells(cx, cy, r+1, next[:0])
			for _, ci := range next {
				if d2 := g.CellMinDistSqAt(p, ci); math.Sqrt(d2) < odr-1e-9 {
					t.Fatalf("ring %d cell %d at %.4f < OuterDist %.4f",
						r+1, ci, math.Sqrt(d2), odr)
				}
			}
		}
		if !cont {
			break
		}
		if r > g.MaxRing(cx, cy)+1 {
			t.Fatalf("RingCells did not terminate by MaxRing+1 (r=%d)", r)
		}
	}
	for cell, count := range seen {
		if count != 1 {
			t.Fatalf("cell %v visited %d times", cell, count)
		}
	}
	if total != len(pts) {
		t.Fatalf("rings covered %d points, want %d", total, len(pts))
	}
}

func TestFarFieldBound(t *testing.T) {
	// The bound dominates the true contribution of any point arrangement
	// at distance ≥ minDist.
	rng := rand.New(rand.NewSource(19))
	const alpha = 3.0
	for trial := 0; trial < 100; trial++ {
		minDist := 1 + rng.Float64()*10
		var remaining, true1 float64
		for i := 0; i < 50; i++ {
			p := rng.Float64() * 5
			d := minDist * (1 + rng.Float64()*3)
			remaining += p
			true1 += p / math.Pow(d, alpha)
		}
		if b := FarFieldBound(alpha, remaining, minDist); true1 > b {
			t.Fatalf("true tail %v exceeds bound %v", true1, b)
		}
	}
	if b := FarFieldBound(3, 0, 1); b != 0 {
		t.Fatalf("zero remainder bound = %v", b)
	}
	if b := FarFieldBound(3, 1, 0); !math.IsInf(b, 1) {
		t.Fatalf("zero-distance bound = %v, want +Inf", b)
	}
}

func TestFarFieldSeriesBound(t *testing.T) {
	// α > 2 (fading): the series converges and dominates an explicit
	// ring-by-ring tail with the capped per-cell weight.
	const alpha, cap1, cell = 3.0, 2.0, 1.5
	b := FarFieldSeriesBound(alpha, cap1, cell, 4)
	if math.IsInf(b, 1) || b <= 0 {
		t.Fatalf("series bound = %v, want finite positive", b)
	}
	explicit := 0.0
	for rho := 4; rho < 10_000; rho++ {
		explicit += 8 * float64(rho) * cap1 / math.Pow(float64(rho-1)*cell, alpha)
	}
	if explicit > b {
		t.Fatalf("explicit tail %v exceeds series bound %v", explicit, b)
	}
	// Starting further out shrinks the tail.
	if b8 := FarFieldSeriesBound(alpha, cap1, cell, 8); b8 >= b {
		t.Fatalf("bound from ring 8 (%v) not below bound from ring 4 (%v)", b8, b)
	}
	// α ≤ 2: no fading, the far field cannot be truncated.
	if b2 := FarFieldSeriesBound(2, cap1, cell, 4); !math.IsInf(b2, 1) {
		t.Fatalf("α=2 bound = %v, want +Inf", b2)
	}
}

func TestDoublingDimensionSampledAgreesWithExact(t *testing.T) {
	// Just above the exact threshold the sampled estimator must stay in
	// the same regime as the exhaustive one: the plane reads ≈ 2, far
	// below a star metric of the same size.
	rng := rand.New(rand.NewSource(23))
	grid := DistanceMatrix(Grid(10, 10, 1)) // 100 > doublingExactMax
	dGrid := DoublingDimension(grid)
	exactGrid := doublingExact(grid)
	if math.Abs(dGrid-exactGrid) > 1.5 {
		t.Errorf("sampled grid dimension %v far from exact %v", dGrid, exactGrid)
	}
	if dGrid < 1 || dGrid > 4.5 {
		t.Errorf("sampled 10×10 grid dimension %v, want ≈2", dGrid)
	}
	uni := DistanceMatrix(Uniform(rng, 400, 100))
	dUni := DoublingDimension(uni)
	if dUni < 1 || dUni > 5 {
		t.Errorf("sampled uniform dimension %v, want small constant", dUni)
	}
	const n = 200
	star := make([][]float64, n)
	for i := range star {
		star[i] = make([]float64, n)
		for j := range star[i] {
			if i != j {
				star[i][j] = 2
			}
		}
	}
	if dStar := DoublingDimension(star); dStar < 6 {
		t.Errorf("sampled star dimension %v, want ≥ 6 (grows with n)", dStar)
	}
	// Deterministic: same input, same estimate.
	if a, b := DoublingDimension(uni), DoublingDimension(uni); a != b {
		t.Errorf("sampled estimate not deterministic: %v vs %v", a, b)
	}
}

func TestDoublingDimensionExactPathUnchanged(t *testing.T) {
	// Pin the small-input values: the sampled refactor must not perturb
	// the exact estimator the original tests (and IsFadingMetric at
	// experiment sizes) rely on.
	for _, tc := range []struct {
		name string
		pts  []Point
		want float64
	}{
		{"line8", Line(8, 1), doublingExact(DistanceMatrix(Line(8, 1)))},
		{"grid5", Grid(5, 5, 1), doublingExact(DistanceMatrix(Grid(5, 5, 1)))},
	} {
		d := DistanceMatrix(tc.pts)
		if got := DoublingDimension(d); got != tc.want {
			t.Errorf("%s: DoublingDimension = %v, exact = %v (must be identical below threshold)", tc.name, got, tc.want)
		}
	}
}
