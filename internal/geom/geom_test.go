package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDist(t *testing.T) {
	tests := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 1}, 0},
		{Point{-1, 0}, Point{1, 0}, 2},
	}
	for _, tc := range tests {
		if got := tc.p.Dist(tc.q); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("Dist(%v,%v) = %v, want %v", tc.p, tc.q, got, tc.want)
		}
	}
}

func TestDistProperties(t *testing.T) {
	symmetric := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		return math.Abs(p.Dist(q)-q.Dist(p)) < 1e-9
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		if anyBad(ax, ay, bx, by, cx, cy) {
			return true
		}
		a, b, c := Point{ax, ay}, Point{bx, by}, Point{cx, cy}
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-6*(1+a.Dist(b)+b.Dist(c))
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Error(err)
	}
	distSq := func(ax, ay, bx, by float64) bool {
		if anyBad(ax, ay, bx, by) {
			return true
		}
		p, q := Point{ax, ay}, Point{bx, by}
		d := p.Dist(q)
		return math.Abs(d*d-p.DistSq(q)) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(distSq, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.Abs(x) > 1e150 {
			return true
		}
	}
	return false
}

func TestGrid(t *testing.T) {
	pts := Grid(2, 3, 1.5)
	if len(pts) != 6 {
		t.Fatalf("got %d points, want 6", len(pts))
	}
	if pts[0] != (Point{0, 0}) {
		t.Errorf("pts[0] = %v, want origin", pts[0])
	}
	if pts[5] != (Point{3, 1.5}) {
		t.Errorf("pts[5] = %v, want (3,1.5)", pts[5])
	}
	// Neighbouring grid points are exactly spacing apart.
	if d := pts[0].Dist(pts[1]); math.Abs(d-1.5) > 1e-12 {
		t.Errorf("grid spacing %v, want 1.5", d)
	}
}

func TestLine(t *testing.T) {
	pts := Line(4, 2)
	if len(pts) != 4 {
		t.Fatalf("got %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if p.Y != 0 || math.Abs(p.X-float64(i)*2) > 1e-12 {
			t.Errorf("pts[%d] = %v", i, p)
		}
	}
}

func TestUniformStaysInside(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pts := Uniform(rng, 500, 10)
	for _, p := range pts {
		if p.X < 0 || p.X >= 10 || p.Y < 0 || p.Y >= 10 {
			t.Fatalf("point %v outside square", p)
		}
	}
}

func TestClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pts := Clusters(rng, 100, 4, 100, 1)
	if len(pts) != 100 {
		t.Fatalf("got %d points, want 100", len(pts))
	}
	// Points assigned to the same cluster should be near each other:
	// points i and i+4 share a cluster (round-robin assignment).
	var within, across float64
	for i := 0; i+4 < 100; i += 4 {
		within += pts[i].Dist(pts[i+4])
	}
	for i := 0; i+1 < 20; i++ {
		across += pts[i].Dist(pts[i+1])
	}
	if within/25 > across/19 {
		t.Errorf("within-cluster mean distance %v not below across-cluster %v", within/25, across/19)
	}
	// k < 1 must not panic and must produce n points.
	if got := Clusters(rng, 7, 0, 10, 1); len(got) != 7 {
		t.Errorf("Clusters with k=0 returned %d points", len(got))
	}
}

func TestBoundingBox(t *testing.T) {
	min, max := BoundingBox([]Point{{1, 5}, {-2, 3}, {4, -1}})
	if min != (Point{-2, -1}) || max != (Point{4, 5}) {
		t.Errorf("bbox = %v..%v", min, max)
	}
	if min, max := BoundingBox(nil); min != (Point{}) || max != (Point{}) {
		t.Errorf("empty bbox = %v..%v, want zeros", min, max)
	}
}

func TestAddScale(t *testing.T) {
	p := Point{1, 2}.Add(Point{3, -1}).Scale(2)
	if p != (Point{8, 2}) {
		t.Errorf("got %v, want (8,2)", p)
	}
}

func TestDoublingDimension(t *testing.T) {
	// Points on a line: doubling dimension ≈ 1 (allowing greedy slack).
	line := DistanceMatrix(Line(32, 1))
	dLine := DoublingDimension(line)
	if dLine < 0.5 || dLine > 2.5 {
		t.Errorf("line doubling dimension %v, want ≈1", dLine)
	}
	// A dense grid: dimension ≈ 2 (greedy covering inflates slightly).
	grid := DistanceMatrix(Grid(6, 6, 1))
	dGrid := DoublingDimension(grid)
	if dGrid < 1.5 || dGrid > 4 {
		t.Errorf("grid doubling dimension %v, want ≈2", dGrid)
	}
	// A star metric: dimension grows with the point count, clearly above
	// the grid's.
	const n = 32
	star := make([][]float64, n)
	for i := range star {
		star[i] = make([]float64, n)
		for j := range star[i] {
			if i != j {
				star[i][j] = 2 // w_i = w_j = 1
			}
		}
	}
	dStar := DoublingDimension(star)
	if dStar < 4 { // covering a ball of radius 2 needs ~n balls of radius 1
		t.Errorf("star doubling dimension %v, want ≥ log2(%d) = 5", dStar, n)
	}
	// Degenerate inputs.
	if d := DoublingDimension(nil); d != 0 {
		t.Errorf("empty metric dimension %v", d)
	}
}
