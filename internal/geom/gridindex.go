package geom

import "math"

// GridIndex buckets a set of points into a uniform grid so that spatial
// queries — "who is near q?" — cost time proportional to the local
// density instead of the point count. It is the substrate of the
// spatially-indexed interference resolvers: cells are visited in
// Chebyshev rings of growing radius around a query cell, near cells are
// summed exactly, and everything beyond the visited rings is closed in
// aggregate with FarFieldBound.
//
// The index is rebuildable in place: Fill reuses every internal buffer,
// so re-indexing a fresh subset each simulation slot performs no
// steady-state allocations. A filled index is immutable until the next
// Fill and safe for concurrent readers.
type GridIndex struct {
	minX, minY float64
	cell       float64
	cols, rows int
	count      int

	start  []int32   // CSR-style cell offsets, len cols*rows+1
	ids    []int32   // bucketed point ids, grouped by cell
	cellWt []float64 // per-cell weight sums, len cols*rows (zeros without weights)

	cellOf []int32 // scratch: cell index per selected point

	// Incremental-update state (see TryUpdate): the geometry frame and
	// selection the index currently holds — so a delta transition can
	// verify its precondition instead of trusting the caller — plus
	// swap buffers for the repack and a generation-stamped touched-cell
	// set. hasGeo is true only after FillGeom; the legacy Fill clears
	// it, so indexes built outside an explicit frame never delta-update.
	geo     Geometry
	hasGeo  bool
	selCopy []int32
	start2  []int32
	ids2    []int32
	cellOf2 []int32
	touch   []int32
	mark    []int64
	gen     int64
}

// NewGridIndex builds an index over all of pts. A cellSize of 0 picks
// one automatically so the grid holds roughly one point per cell.
func NewGridIndex(pts []Point, cellSize float64) *GridIndex {
	g := &GridIndex{}
	g.Fill(pts, nil, nil, cellSize)
	return g
}

// Fill rebuilds the index over the selected points, reusing all internal
// buffers. sel lists indices into pts (nil selects every point); wt, when
// non-nil, assigns pts[i] the weight wt[i] and per-cell weight sums are
// accumulated in selection order (deterministic). A cellSize of 0 sizes
// cells so the grid has about as many cells as selected points; a
// positive cellSize is used verbatim unless it would explode the cell
// count, in which case it is widened to keep the grid proportional to
// the selection.
func (g *GridIndex) Fill(pts []Point, sel []int32, wt []float64, cellSize float64) {
	g.hasGeo = false
	k := len(sel)
	if sel == nil {
		k = len(pts)
	}
	g.count = k
	if k == 0 {
		g.cols, g.rows = 0, 0
		g.start = growInt32s(&g.start, 1)
		g.start[0] = 0
		g.ids = g.ids[:0]
		return
	}
	at := func(i int) Point {
		if sel == nil {
			return pts[i]
		}
		return pts[sel[i]]
	}
	// Bounding box of the selection.
	min, max := at(0), at(0)
	for i := 1; i < k; i++ {
		p := at(i)
		if p.X < min.X {
			min.X = p.X
		}
		if p.Y < min.Y {
			min.Y = p.Y
		}
		if p.X > max.X {
			max.X = p.X
		}
		if p.Y > max.Y {
			max.Y = p.Y
		}
	}
	w, h := max.X-min.X, max.Y-min.Y
	cell := cellSize
	auto := autoCell(w, h, k)
	if cell <= 0 || !(cell < math.Inf(1)) {
		cell = auto
	} else if cell < auto && (w/cell+1)*(h/cell+1) > 4*float64(k)+64 {
		// A too-fine explicit cell would allocate far more cells than
		// points; widen to the automatic choice.
		cell = auto
	}
	g.minX, g.minY, g.cell = min.X, min.Y, cell
	g.cols = int(w/cell) + 1
	g.rows = int(h/cell) + 1
	ncells := g.cols * g.rows

	start := growInt32s(&g.start, ncells+1)
	for i := range start {
		start[i] = 0
	}
	cellOf := growInt32s(&g.cellOf, k)
	for i := 0; i < k; i++ {
		p := at(i)
		cx, cy := g.clampCell(p)
		c := int32(cy*g.cols + cx)
		cellOf[i] = c
		start[c+1]++
	}
	for c := 0; c < ncells; c++ {
		start[c+1] += start[c]
	}
	ids := growInt32s(&g.ids, k)
	// Second pass places ids in cell order while preserving the selection
	// order within each cell; start is restored by the shift below.
	for i := 0; i < k; i++ {
		c := cellOf[i]
		ids[start[c]] = int32(i)
		if sel != nil {
			ids[start[c]] = sel[i]
		}
		start[c]++
	}
	for c := ncells; c > 0; c-- {
		start[c] = start[c-1]
	}
	start[0] = 0

	cellWt := growFloat64s(&g.cellWt, ncells)
	for i := range cellWt {
		cellWt[i] = 0
	}
	if wt != nil {
		for i := 0; i < k; i++ {
			id := int32(i)
			if sel != nil {
				id = sel[i]
			}
			cellWt[cellOf[i]] += wt[id]
		}
	}
}

// autoCell picks a cell size giving roughly one selected point per cell.
func autoCell(w, h float64, k int) float64 {
	area := w * h
	if area > 0 {
		return math.Sqrt(area / float64(k))
	}
	// Degenerate (collinear or single-point) selections: spread the
	// longer extent over k cells, with 1 as the final fallback.
	if ext := math.Max(w, h); ext > 0 {
		return ext / float64(k)
	}
	return 1
}

// clampCell maps p to grid coordinates, clamping points outside the
// indexed bounding box onto the border cells.
func (g *GridIndex) clampCell(p Point) (cx, cy int) {
	cx = int((p.X - g.minX) / g.cell)
	cy = int((p.Y - g.minY) / g.cell)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cols {
		cx = g.cols - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.rows {
		cy = g.rows - 1
	}
	return cx, cy
}

// CellAt returns the (clamped) grid cell containing p.
func (g *GridIndex) CellAt(p Point) (cx, cy int) { return g.clampCell(p) }

// Count returns the number of indexed points.
func (g *GridIndex) Count() int { return g.count }

// CellSize returns the side length of one grid cell.
func (g *GridIndex) CellSize() float64 { return g.cell }

// CellIDs returns the ids bucketed into cell (cx, cy), in selection
// order. The slice aliases internal storage; do not modify it.
func (g *GridIndex) CellIDs(cx, cy int) []int32 {
	c := cy*g.cols + cx
	return g.ids[g.start[c]:g.start[c+1]]
}

// CellWeight returns the weight sum of cell (cx, cy) — zero when the
// index was filled without weights or the cell is empty.
func (g *GridIndex) CellWeight(cx, cy int) float64 {
	return g.cellWt[cy*g.cols+cx]
}

// CellMinDistSq returns the squared distance from p to the closest point
// of cell (cx, cy)'s box — 0 when p lies inside it. It lower-bounds the
// distance from p to every point bucketed in the cell.
func (g *GridIndex) CellMinDistSq(p Point, cx, cy int) float64 {
	x0 := g.minX + float64(cx)*g.cell
	y0 := g.minY + float64(cy)*g.cell
	var dx, dy float64
	if p.X < x0 {
		dx = x0 - p.X
	} else if p.X > x0+g.cell {
		dx = p.X - (x0 + g.cell)
	}
	if p.Y < y0 {
		dy = y0 - p.Y
	} else if p.Y > y0+g.cell {
		dy = p.Y - (y0 + g.cell)
	}
	return dx*dx + dy*dy
}

// RingCells appends to dst the indices of every grid cell on the
// Chebyshev ring of radius r around (cx, cy) — the boundary of the
// (2r+1)×(2r+1) cell square — clipped to the grid, in a fixed
// deterministic order (top row, bottom row, then the side columns). It
// returns the extended slice and false once the whole grid lies strictly
// inside the ring, i.e. no ring of radius ≥ r can contain cells; callers
// use that to terminate ring expansion. Reusing dst across calls keeps
// ring iteration allocation-free in steady state.
func (g *GridIndex) RingCells(cx, cy, r int, dst []int32) ([]int32, bool) {
	if r == 0 {
		if cx >= 0 && cx < g.cols && cy >= 0 && cy < g.rows {
			dst = append(dst, int32(cy*g.cols+cx))
		}
		return dst, true
	}
	if cx-r < 0 && cx+r > g.cols-1 && cy-r < 0 && cy+r > g.rows-1 {
		return dst, false
	}
	x0, x1 := cx-r, cx+r
	y0, y1 := cy-r, cy+r
	cx0, cx1 := clampInt(x0, 0, g.cols-1), clampInt(x1, 0, g.cols-1)
	if y0 >= 0 {
		row := int32(y0 * g.cols)
		for x := cx0; x <= cx1; x++ {
			dst = append(dst, row+int32(x))
		}
	}
	if y1 <= g.rows-1 {
		row := int32(y1 * g.cols)
		for x := cx0; x <= cx1; x++ {
			dst = append(dst, row+int32(x))
		}
	}
	iy0, iy1 := clampInt(y0+1, 0, g.rows-1), clampInt(y1-1, 0, g.rows-1)
	if y0+1 <= y1-1 {
		if x0 >= 0 {
			for y := iy0; y <= iy1; y++ {
				dst = append(dst, int32(y*g.cols+x0))
			}
		}
		if x1 <= g.cols-1 {
			for y := iy0; y <= iy1; y++ {
				dst = append(dst, int32(y*g.cols+x1))
			}
		}
	}
	return dst, true
}

// CellIDsAt, CellWeightAt and CellMinDistSqAt are the flat-index forms
// of CellIDs/CellWeight/CellMinDistSq for cells obtained from RingCells.

// CellIDsAt returns the ids bucketed into the flat-indexed cell.
func (g *GridIndex) CellIDsAt(ci int32) []int32 {
	return g.ids[g.start[ci]:g.start[ci+1]]
}

// CellWeightAt returns the weight sum of the flat-indexed cell.
func (g *GridIndex) CellWeightAt(ci int32) float64 { return g.cellWt[ci] }

// CellMinDistSqAt returns CellMinDistSq for a flat cell index.
func (g *GridIndex) CellMinDistSqAt(p Point, ci int32) float64 {
	return g.CellMinDistSq(p, int(ci)%g.cols, int(ci)/g.cols)
}

// OuterDist returns a lower bound on the distance from p to any indexed
// cell strictly outside the rings of radius ≤ r around (cx, cy), and
// whether any such cell exists. It is the distance that makes
// FarFieldBound rigorous for the not-yet-visited remainder.
func (g *GridIndex) OuterDist(p Point, cx, cy, r int) (float64, bool) {
	d := math.Inf(1)
	any := false
	if cx-r > 0 { // cells to the left of the square remain
		any = true
		d = math.Min(d, math.Max(0, p.X-(g.minX+float64(cx-r)*g.cell)))
	}
	if cx+r < g.cols-1 { // right
		any = true
		d = math.Min(d, math.Max(0, (g.minX+float64(cx+r+1)*g.cell)-p.X))
	}
	if cy-r > 0 { // below
		any = true
		d = math.Min(d, math.Max(0, p.Y-(g.minY+float64(cy-r)*g.cell)))
	}
	if cy+r < g.rows-1 { // above
		any = true
		d = math.Min(d, math.Max(0, (g.minY+float64(cy+r+1)*g.cell)-p.Y))
	}
	if !any {
		return 0, false
	}
	return d, true
}

// MaxRing returns the largest ring radius around (cx, cy) that still
// touches the grid; rings beyond it are empty.
func (g *GridIndex) MaxRing(cx, cy int) int {
	m := cx
	if v := g.cols - 1 - cx; v > m {
		m = v
	}
	if cy > m {
		m = cy
	}
	if v := g.rows - 1 - cy; v > m {
		m = v
	}
	return m
}

// Within appends to dst the ids of every indexed point within Euclidean
// distance radius of p (inclusive) and returns the extended slice. Cells
// are pruned by their box distance, so the cost is proportional to the
// number of cells and points near p, not the index size.
func (g *GridIndex) Within(p Point, radius float64, pts []Point, dst []int32) []int32 {
	if g.count == 0 || !(radius >= 0) {
		return dst
	}
	r2 := radius * radius
	cx, cy := g.clampCell(p)
	maxRing := g.MaxRing(cx, cy)
	var ring []int32
	for r := 0; r <= maxRing; r++ {
		var cont bool
		ring, cont = g.RingCells(cx, cy, r, ring[:0])
		for _, ci := range ring {
			if g.CellMinDistSqAt(p, ci) > r2 {
				continue
			}
			for _, id := range g.CellIDsAt(ci) {
				if p.DistSq(pts[id]) <= r2 {
					dst = append(dst, id)
				}
			}
		}
		if !cont {
			break
		}
		// Once even the closest unvisited cell is beyond the radius, no
		// further ring can contribute.
		if od, ok := g.OuterDist(p, cx, cy, r); !ok || od > radius {
			break
		}
	}
	return dst
}

// FarFieldBound bounds the aggregate path-loss contribution of a remote
// point mass: if points with total weight (transmission power) remaining
// all sit at distance ≥ minDist from the query, their summed contribution
// Σ pᵢ/d(i)^α is at most remaining/minDist^α. This is the far-field
// closure of the ring expansion: visited rings are summed (exactly or
// per-cell), the unvisited remainder is charged in one term.
//
// The bound is tight exactly when the remainder is concentrated at
// minDist; its usefulness in the plane comes from Corollary 14's fading
// condition α > 2 (the doubling dimension of Euclidean 2-space, see
// DoublingDimension): then ring masses grow like ρ (the boundary of a
// doubling ball) while per-point contributions decay like ρ^{-α}, so the
// true tail decays geometrically and a constant number of rings pushes
// the bound below any fixed floor ε. FarFieldSeriesBound states that
// analytic form.
func FarFieldBound(alpha, remaining, minDist float64) float64 {
	if remaining <= 0 {
		return 0
	}
	if minDist <= 0 {
		return math.Inf(1)
	}
	return remaining / math.Pow(minDist, alpha)
}

// FarFieldSeriesBound bounds the total path-loss contribution of every
// grid cell on rings ≥ fromRing around a query cell, assuming no cell
// carries more than cellWeightCap total power: ring ρ has 8ρ cells at
// distance ≥ (ρ-1)·cellSize, so the tail is at most
//
//	Σ_{ρ≥fromRing} 8ρ · cellWeightCap / ((ρ-1)·cellSize)^α,
//
// which converges exactly when α > 2 — the α-vs-doubling-dimension
// condition of Corollary 14 (the plane's doubling dimension is 2; a ring
// of radius ρ holds Θ(ρ^{dim}) = Θ(ρ²)/Θ(ρ) cells on its boundary). For
// α ≤ 2 the series diverges and the bound is +Inf: without the fading
// condition the far field cannot be truncated.
func FarFieldSeriesBound(alpha, cellWeightCap, cellSize float64, fromRing int) float64 {
	if cellWeightCap <= 0 {
		return 0
	}
	if alpha <= 2 || cellSize <= 0 || fromRing < 2 {
		return math.Inf(1)
	}
	total := 0.0
	for rho := fromRing; ; rho++ {
		term := 8 * float64(rho) * cellWeightCap / math.Pow(float64(rho-1)*cellSize, alpha)
		total += term
		// The terms decay like ρ^{1-α}; once a term is negligible
		// relative to the accumulated sum, close the remainder with the
		// integral comparison Σ_{ρ>R} ρ^{1-α} ≤ R^{2-α}/(α-2).
		if term < 1e-12*total {
			rhoF := float64(rho)
			total += 8 * cellWeightCap * 2 * math.Pow(rhoF*cellSize, 2-alpha) / ((alpha - 2) * math.Pow(cellSize, 2))
			return total
		}
	}
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// growInt32s resizes *buf to n entries, reallocating only on capacity
// growth, and returns the resized slice.
func growInt32s(buf *[]int32, n int) []int32 {
	if cap(*buf) < n {
		*buf = make([]int32, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// growFloat64s is growInt32s for float64 buffers.
func growFloat64s(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}
