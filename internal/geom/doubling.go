package geom

import "math"

// DoublingDimension estimates the doubling dimension of a finite metric
// given by its distance matrix: the smallest k such that every ball of
// radius r can be covered by 2^k balls of radius r/2. Corollary 14's
// "fading metrics" are those whose path-loss exponent α exceeds this
// dimension; the Euclidean plane has doubling dimension 2, star metrics
// grow with the point count.
//
// The estimator checks every (center, radius) pair induced by the
// distance set and covers greedily, so it returns an upper bound on the
// true dimension that is exact up to the greedy covering's slack.
func DoublingDimension(dist [][]float64) float64 {
	n := len(dist)
	if n <= 1 {
		return 0
	}
	worst := 1
	for c := 0; c < n; c++ {
		for p := 0; p < n; p++ {
			r := dist[c][p]
			if r == 0 {
				continue
			}
			// Points inside ball B(c, r).
			var ball []int
			for q := 0; q < n; q++ {
				if dist[c][q] <= r {
					ball = append(ball, q)
				}
			}
			// Greedy cover with balls of radius r/2 centered at points.
			covered := make(map[int]bool, len(ball))
			count := 0
			for len(covered) < len(ball) {
				// Pick the uncovered point covering the most uncovered
				// peers.
				best, bestGain := -1, -1
				for _, u := range ball {
					if covered[u] {
						continue
					}
					gain := 0
					for _, v := range ball {
						if !covered[v] && dist[u][v] <= r/2 {
							gain++
						}
					}
					if gain > bestGain {
						best, bestGain = u, gain
					}
				}
				for _, v := range ball {
					if dist[best][v] <= r/2 {
						covered[v] = true
					}
				}
				count++
			}
			if count > worst {
				worst = count
			}
		}
	}
	return math.Log2(float64(worst))
}

// DistanceMatrix builds the pairwise Euclidean distance matrix of pts.
func DistanceMatrix(pts []Point) [][]float64 {
	n := len(pts)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = pts[i].Dist(pts[j])
		}
	}
	return out
}
