package geom

import (
	"math"
	"math/rand"
	"sort"
)

// doublingExactMax is the largest point count estimated exhaustively.
// The exact estimator enumerates every (center, radius) pair and covers
// greedily — quartic-ish work that is exact up to greedy slack but
// unusable past a few hundred points. Above the threshold the estimator
// switches to deterministic sampling of centers and radii with the same
// greedy covering per sampled ball.
const doublingExactMax = 80

// DoublingDimension estimates the doubling dimension of a finite metric
// given by its distance matrix: the smallest k such that every ball of
// radius r can be covered by 2^k balls of radius r/2. Corollary 14's
// "fading metrics" are those whose path-loss exponent α exceeds this
// dimension; the Euclidean plane has doubling dimension 2, star metrics
// grow with the point count.
//
// Up to doublingExactMax points every (center, radius) pair induced by
// the distance set is checked, so the result is exact up to the greedy
// covering's slack. Larger inputs are estimated from a deterministic
// sample of centers and radius quantiles — still an upper-bound-style
// greedy cover per ball, evaluated on O(sample · n) distances instead of
// all pairs.
func DoublingDimension(dist [][]float64) float64 {
	n := len(dist)
	if n <= 1 {
		return 0
	}
	if n <= doublingExactMax {
		return doublingExact(dist)
	}
	return doublingSampled(dist)
}

// doublingExact enumerates every (center, radius) pair and returns the
// log2 of the worst greedy cover count.
func doublingExact(dist [][]float64) float64 {
	n := len(dist)
	worst := 1
	var ball []int
	for c := 0; c < n; c++ {
		for p := 0; p < n; p++ {
			r := dist[c][p]
			if r == 0 {
				continue
			}
			// Points inside ball B(c, r).
			ball = ball[:0]
			for q := 0; q < n; q++ {
				if dist[c][q] <= r {
					ball = append(ball, q)
				}
			}
			if count := coverGreedy(dist, ball, r/2); count > worst {
				worst = count
			}
		}
	}
	return math.Log2(float64(worst))
}

// coverGreedy covers ball with radius-r balls centered at ball points,
// greedily picking the uncovered point that covers the most uncovered
// peers, and returns the number of balls used.
func coverGreedy(dist [][]float64, ball []int, r float64) int {
	covered := make(map[int]bool, len(ball))
	count := 0
	for len(covered) < len(ball) {
		best, bestGain := -1, -1
		for _, u := range ball {
			if covered[u] {
				continue
			}
			gain := 0
			for _, v := range ball {
				if !covered[v] && dist[u][v] <= r {
					gain++
				}
			}
			if gain > bestGain {
				best, bestGain = u, gain
			}
		}
		for _, v := range ball {
			if dist[best][v] <= r {
				covered[v] = true
			}
		}
		count++
	}
	return count
}

// doublingSampled estimates the dimension from a deterministic sample:
// up to 48 centers, and per center up to 10 radius quantiles of its
// distance row. Each sampled ball is covered by a maximal r/2-net (first
// uncovered point becomes a net center), which is a 2-approximation of
// the optimal cover — the same guarantee class as the exact path's
// greedy — in O(|ball| · cover) time instead of O(|ball|² · cover).
func doublingSampled(dist [][]float64) float64 {
	n := len(dist)
	const (
		maxCenters = 48
		maxRadii   = 10
	)
	// Deterministic PRNG: the estimate is a pure function of the input.
	rng := rand.New(rand.NewSource(int64(n)*2654435761 + 1))
	centers := samplePoints(rng, n, maxCenters)
	worst := 1
	var ball []int
	radii := make([]float64, 0, n)
	for _, c := range centers {
		// Radius quantiles of the center's distance row.
		radii = radii[:0]
		for q := 0; q < n; q++ {
			if d := dist[c][q]; d > 0 {
				radii = append(radii, d)
			}
		}
		if len(radii) == 0 {
			continue
		}
		sort.Float64s(radii)
		steps := maxRadii
		if len(radii) < steps {
			steps = len(radii)
		}
		prev := math.NaN()
		for s := 1; s <= steps; s++ {
			r := radii[(len(radii)*s-1)/steps]
			if r == prev {
				continue
			}
			prev = r
			ball = ball[:0]
			for q := 0; q < n; q++ {
				if dist[c][q] <= r {
					ball = append(ball, q)
				}
			}
			if count := coverNet(dist, ball, r/2); count > worst {
				worst = count
			}
		}
	}
	return math.Log2(float64(worst))
}

// coverNet covers ball with radius-r balls via a maximal net: scan the
// ball once, opening a new net center at every point not yet covered.
// Net centers are pairwise > r apart, so their count lower-bounds any
// packing and upper-bounds the optimal cover within a factor the
// doubling definition absorbs (the classic net argument).
func coverNet(dist [][]float64, ball []int, r float64) int {
	covered := make([]bool, len(ball))
	count := 0
	for i, u := range ball {
		if covered[i] {
			continue
		}
		count++
		for j := i; j < len(ball); j++ {
			if !covered[j] && dist[u][ball[j]] <= r {
				covered[j] = true
			}
		}
	}
	return count
}

// samplePoints draws up to k distinct indices from [0, n) — all of them
// when n ≤ k — in deterministic order.
func samplePoints(rng *rand.Rand, n, k int) []int {
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	return rng.Perm(n)[:k]
}

// DistanceMatrix builds the pairwise Euclidean distance matrix of pts.
func DistanceMatrix(pts []Point) [][]float64 {
	n := len(pts)
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			out[i][j] = pts[i].Dist(pts[j])
		}
	}
	return out
}
