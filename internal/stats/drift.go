package stats

import (
	"fmt"
	"sort"
	"strings"
)

// DriftEstimator reproduces the paper's Lyapunov argument empirically:
// feed it the potential Φ sampled once per time frame and it estimates
// the conditional drift E[ΔΦ | Φ ∈ bucket]. Lemmas 4–7 prove the drift
// is negative whenever Φ > 0, which is what makes the protocol's Markov
// chain ergodic; Estimate lets experiments check exactly that.
type DriftEstimator struct {
	prev    float64
	started bool
	// transitions[i] aggregates ΔΦ observed from states in bucket i.
	buckets []float64 // bucket upper bounds (last = +inf)
	sums    []float64
	counts  []int64
}

// NewDriftEstimator creates an estimator with the given bucket upper
// bounds (ascending); an implicit overflow bucket is appended.
func NewDriftEstimator(bounds ...float64) *DriftEstimator {
	sorted := append([]float64(nil), bounds...)
	sort.Float64s(sorted)
	return &DriftEstimator{
		buckets: sorted,
		sums:    make([]float64, len(sorted)+1),
		counts:  make([]int64, len(sorted)+1),
	}
}

// Observe records the next potential sample.
func (d *DriftEstimator) Observe(phi float64) {
	if d.started {
		i := d.bucketOf(d.prev)
		d.sums[i] += phi - d.prev
		d.counts[i]++
	}
	d.prev = phi
	d.started = true
}

func (d *DriftEstimator) bucketOf(phi float64) int {
	for i, ub := range d.buckets {
		if phi <= ub {
			return i
		}
	}
	return len(d.buckets)
}

// Drift returns the estimated mean ΔΦ from states in bucket i and the
// number of observations backing it.
func (d *DriftEstimator) Drift(i int) (mean float64, n int64) {
	if i < 0 || i >= len(d.sums) || d.counts[i] == 0 {
		return 0, 0
	}
	return d.sums[i] / float64(d.counts[i]), d.counts[i]
}

// NumBuckets returns the bucket count including the overflow bucket.
func (d *DriftEstimator) NumBuckets() int { return len(d.sums) }

// NegativeAboveZero reports whether every bucket that excludes Φ = 0
// and has at least minSamples observations shows non-positive drift —
// the empirical ergodicity check. Buckets with too few samples are
// skipped (they carry no evidence either way).
func (d *DriftEstimator) NegativeAboveZero(minSamples int64) bool {
	for i := range d.sums {
		if i == 0 && len(d.buckets) > 0 && d.buckets[0] == 0 {
			continue // the Φ = 0 bucket may drift upward (arrivals)
		}
		if d.counts[i] < minSamples {
			continue
		}
		if d.sums[i]/float64(d.counts[i]) > 0 {
			return false
		}
	}
	return true
}

// String formats the per-bucket drifts.
func (d *DriftEstimator) String() string {
	var b strings.Builder
	lo := "-inf"
	for i := range d.sums {
		hi := "+inf"
		if i < len(d.buckets) {
			hi = fmt.Sprintf("%g", d.buckets[i])
		}
		mean, n := d.Drift(i)
		fmt.Fprintf(&b, "Φ∈(%s,%s]: drift %.3f (n=%d)  ", lo, hi, mean, n)
		lo = hi
	}
	return strings.TrimSpace(b.String())
}
