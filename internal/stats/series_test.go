package stats

import (
	"math/rand"
	"strings"
	"testing"
)

func TestLinearFitRecoversLine(t *testing.T) {
	var s Series
	for i := 0; i < 100; i++ {
		s.Append(float64(i), 3*float64(i)+7)
	}
	fit := s.LinearFit()
	if !almostEq(fit.Slope, 3, 1e-9) {
		t.Errorf("slope = %v, want 3", fit.Slope)
	}
	if !almostEq(fit.Intercept, 7, 1e-9) {
		t.Errorf("intercept = %v, want 7", fit.Intercept)
	}
	if !almostEq(fit.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	var empty Series
	if fit := empty.LinearFit(); fit.Slope != 0 || fit.Intercept != 0 {
		t.Errorf("empty fit = %+v, want zero", fit)
	}
	var vertical Series
	vertical.Append(5, 1)
	vertical.Append(5, 3)
	if fit := vertical.LinearFit(); fit.Slope != 0 || !almostEq(fit.Intercept, 2, 1e-12) {
		t.Errorf("vertical fit = %+v, want slope 0 intercept 2", fit)
	}
	var constant Series
	for i := 0; i < 10; i++ {
		constant.Append(float64(i), 4)
	}
	if fit := constant.LinearFit(); !almostEq(fit.R2, 1, 1e-12) {
		t.Errorf("constant series R2 = %v, want 1", fit.R2)
	}
}

func TestTail(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	tail := s.Tail(0.5)
	if tail.Len() != 5 {
		t.Fatalf("tail length %d, want 5", tail.Len())
	}
	if tail.T[0] != 5 {
		t.Errorf("tail starts at %v, want 5", tail.T[0])
	}
	if full := s.Tail(2); full.Len() != 10 {
		t.Errorf("clamped tail length %d, want 10", full.Len())
	}
}

func TestStabilityVerdicts(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	// Flat noisy queue: stable.
	var flat Series
	for i := 0; i < 200; i++ {
		flat.Append(float64(i*100), 50+10*rng.Float64())
	}
	if v := flat.Stability(); !v.Stable {
		t.Errorf("flat series judged unstable: %+v", v)
	}

	// Linearly growing queue: unstable.
	var growing Series
	for i := 0; i < 200; i++ {
		growing.Append(float64(i*100), float64(i)*2+5*rng.Float64())
	}
	if v := growing.Stability(); v.Stable {
		t.Errorf("growing series judged stable: %+v", v)
	}

	// Transient spike that drains: stable.
	var spike Series
	for i := 0; i < 200; i++ {
		q := 0.0
		if i < 50 {
			q = float64(50 - i)
		}
		spike.Append(float64(i*100), q+rng.Float64())
	}
	if v := spike.Stability(); !v.Stable {
		t.Errorf("draining series judged unstable: %+v", v)
	}

	// Tiny series: stable by default.
	var tiny Series
	tiny.Append(0, 3)
	if v := tiny.Stability(); !v.Stable {
		t.Errorf("tiny series judged unstable: %+v", v)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(10, 10)
	for i := 1; i <= 100; i++ {
		h.Add(float64(i))
	}
	if h.N() != 100 {
		t.Fatalf("N = %d, want 100", h.N())
	}
	if !almostEq(h.Mean(), 50.5, 1e-9) {
		t.Errorf("Mean = %v, want 50.5", h.Mean())
	}
	if h.Max() != 100 {
		t.Errorf("Max = %v, want 100", h.Max())
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Errorf("median estimate %v outside [40,60]", med)
	}
	// Overflow handling.
	h.Add(1e9)
	if q := h.Quantile(1); q != 1e9 {
		t.Errorf("overflow quantile = %v, want 1e9", q)
	}
}

func TestHistogramPanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewHistogram(0, 10) should panic")
		}
	}()
	NewHistogram(0, 10)
}

func TestWriteCSV(t *testing.T) {
	var s Series
	s.Append(1, 2.5)
	s.Append(2, 3)
	var b strings.Builder
	if err := s.WriteCSV(&b, "slot", "queue"); err != nil {
		t.Fatal(err)
	}
	want := "slot,queue\n1,2.5\n2,3\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}
