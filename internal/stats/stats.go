// Package stats provides the small statistical toolkit used by the
// simulator and the experiment harness: streaming moments, quantiles,
// histograms, time series with stability detection, and least-squares
// fits used to verify the growth rates the paper claims.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds streaming mean/variance/min/max using Welford's method.
// The zero value is ready to use.
type Summary struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// AddN records the same observation n times.
func (s *Summary) AddN(x float64, n int64) {
	for i := int64(0); i < n; i++ {
		s.Add(x)
	}
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean, or 0 with no observations.
func (s *Summary) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance.
func (s *Summary) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Summary) Std() float64 { return math.Sqrt(s.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 with no observations.
func (s *Summary) Max() float64 { return s.max }

// SummaryView is a Summary's headline numbers in exported, JSON-ready
// form — for progress events and other wire payloads where the
// mergeable internal state (m2) is noise. Unlike Summary's own
// MarshalJSON it is lossy: a view cannot be folded back into an
// accumulator.
type SummaryView struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// View returns the summary's headline numbers.
func (s Summary) View() SummaryView {
	return SummaryView{N: s.n, Mean: s.Mean(), Std: s.Std(), Min: s.min, Max: s.max}
}

// Merge folds other into s, as if all of other's observations had been
// added to s directly.
func (s *Summary) Merge(other *Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n := s.n + other.n
	d := other.mean - s.mean
	mean := s.mean + d*float64(other.n)/float64(n)
	m2 := s.m2 + other.m2 + d*d*float64(s.n)*float64(other.n)/float64(n)
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
	s.n, s.mean, s.m2 = n, mean, m2
}

// String formats the summary for experiment tables.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3f std=%.3f min=%.3f max=%.3f",
		s.n, s.Mean(), s.Std(), s.min, s.max)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation. It returns 0 for an empty slice. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns the quantiles of xs at each probability in qs,
// sorting only once.
func Quantiles(xs []float64, qs ...float64) []float64 {
	out := make([]float64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
