package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a fixed-width-bucket histogram over [0, Width·Buckets),
// with an overflow bucket for larger values. It is used to record packet
// latencies without retaining every sample.
type Histogram struct {
	width    float64
	counts   []int64
	overflow int64
	sum      float64
	n        int64
	max      float64
}

// NewHistogram creates a histogram with the given bucket width and count.
// It panics if width ≤ 0 or buckets ≤ 0 (programmer error).
func NewHistogram(width float64, buckets int) *Histogram {
	if width <= 0 || buckets <= 0 {
		panic(fmt.Sprintf("stats: invalid histogram shape width=%v buckets=%d", width, buckets))
	}
	return &Histogram{width: width, counts: make([]int64, buckets)}
}

// Add records one observation. Negative values clamp to bucket 0.
func (h *Histogram) Add(x float64) {
	h.n++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	if x < 0 {
		x = 0
	}
	i := int(x / h.width)
	if i >= len(h.counts) {
		h.overflow++
		return
	}
	h.counts[i]++
}

// N returns the number of observations.
func (h *Histogram) N() int64 { return h.n }

// Mean returns the exact mean of all observations (tracked separately
// from the buckets, so it is not subject to bucketing error).
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Max returns the largest observation.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile using bucket midpoints.
// Observations in the overflow bucket are treated as the recorded max.
func (h *Histogram) Quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	target := int64(math.Ceil(q * float64(h.n)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return (float64(i) + 0.5) * h.width
		}
	}
	return h.max
}

// Merge folds other into h. Both histograms must share a shape
// (bucket width and count) — true for any two runs of the same
// simulation config, which is what plan-level aggregation merges.
// The merge is exact: identical to streaming both inputs into one
// histogram.
func (h *Histogram) Merge(other *Histogram) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.width != h.width || len(other.counts) != len(h.counts) {
		return fmt.Errorf("stats: cannot merge histograms with shapes %v×%d and %v×%d",
			h.width, len(h.counts), other.width, len(other.counts))
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.overflow += other.overflow
	h.sum += other.sum
	h.n += other.n
	if other.max > h.max {
		h.max = other.max
	}
	return nil
}

// String renders a compact textual summary.
func (h *Histogram) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.n, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	return b.String()
}
