package stats

import (
	"encoding/json"
	"testing"
)

func TestHistogramJSONRoundTrip(t *testing.T) {
	h := NewHistogram(2, 8)
	for _, x := range []float64{0.5, 1.5, 3, 7, 100} { // 100 overflows
		h.Add(x)
	}
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var back Histogram
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != h.N() || back.Mean() != h.Mean() || back.Max() != h.Max() {
		t.Fatalf("round trip changed aggregates: %v vs %v", back.String(), h.String())
	}
	if back.Quantile(0.5) != h.Quantile(0.5) || back.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatal("round trip changed quantiles")
	}
}

func TestHistogramJSONRejectsInvalid(t *testing.T) {
	var h Histogram
	if err := json.Unmarshal([]byte(`{"width":0,"counts":[]}`), &h); err == nil {
		t.Fatal("invalid histogram document accepted")
	}
}

func TestSummaryJSONRoundTrip(t *testing.T) {
	var s Summary
	for _, x := range []float64{1, 2, 3, 10} {
		s.Add(x)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != s.N() || back.Mean() != s.Mean() || back.Std() != s.Std() ||
		back.Min() != s.Min() || back.Max() != s.Max() {
		t.Fatalf("round trip changed summary: %+v vs %+v", back, s)
	}
	// Continuing to accumulate after a round trip must behave identically.
	s.Add(5)
	back.Add(5)
	if back.Mean() != s.Mean() || back.Std() != s.Std() {
		t.Fatal("post-round-trip accumulation diverged")
	}
}
