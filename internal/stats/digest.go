// Digest is a mergeable streaming quantile sketch with bounded
// memory, in the DDSketch family: values are counted in
// logarithmically-spaced buckets, giving a guaranteed relative error
// on every quantile regardless of how many samples stream through.
// Unlike Series it never grows with the run length, and unlike
// Histogram its shape does not depend on a configured range — two
// digests with the same accuracy can always be merged, which is what
// makes per-unit results aggregable across a sharded plan.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultDigestAlpha is the default relative accuracy: quantile
// estimates are within ±1% of the true value.
const DefaultDigestAlpha = 0.01

// Digest is a log-bucketed quantile sketch. The zero value is not
// usable; construct with NewDigest. Buckets are sparse: memory is
// O(log(max/min)/alpha), independent of sample count.
type Digest struct {
	alpha  float64
	gamma  float64 // (1+alpha)/(1-alpha)
	lg     float64 // log(gamma), cached
	counts map[int]int64
	zero   int64 // samples with x <= 0 (latencies are >= 1; robustness)
	n      int64
	sum    float64
	min    float64
	max    float64
}

// NewDigest creates a digest with the given relative accuracy
// (0 < alpha < 1); alpha <= 0 uses DefaultDigestAlpha. Digests must
// share an alpha to be merged.
func NewDigest(alpha float64) *Digest {
	if alpha <= 0 {
		alpha = DefaultDigestAlpha
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("stats: invalid digest alpha %v", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Digest{
		alpha:  alpha,
		gamma:  gamma,
		lg:     math.Log(gamma),
		counts: make(map[int]int64),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

func (d *Digest) bucket(x float64) int {
	return int(math.Ceil(math.Log(x) / d.lg))
}

// Add records one observation.
func (d *Digest) Add(x float64) { d.AddN(x, 1) }

// AddN records an observation with multiplicity w.
func (d *Digest) AddN(x float64, w int64) {
	if w <= 0 {
		return
	}
	d.n += w
	d.sum += x * float64(w)
	if x < d.min {
		d.min = x
	}
	if x > d.max {
		d.max = x
	}
	if x <= 0 {
		d.zero += w
		return
	}
	d.counts[d.bucket(x)] += w
}

// N returns the number of observations.
func (d *Digest) N() int64 { return d.n }

// Mean returns the exact mean (tracked outside the buckets).
func (d *Digest) Mean() float64 {
	if d.n == 0 {
		return 0
	}
	return d.sum / float64(d.n)
}

// Min and Max return the exact extremes (0 when empty).
func (d *Digest) Min() float64 {
	if d.n == 0 {
		return 0
	}
	return d.min
}

// Max returns the largest observation (0 when empty).
func (d *Digest) Max() float64 {
	if d.n == 0 {
		return 0
	}
	return d.max
}

// Quantile estimates the q-quantile (q clamped to [0,1]) within the
// digest's relative accuracy. Bucket i covers (gamma^(i-1), gamma^i];
// the estimate is the bucket's geometric midpoint clamped to the
// observed extremes.
func (d *Digest) Quantile(q float64) float64 {
	if d.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(d.n)))
	if target < 1 {
		target = 1
	}
	if target <= d.zero {
		return 0
	}
	cum := d.zero
	keys := make([]int, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		cum += d.counts[k]
		if cum >= target {
			est := 2 * math.Pow(d.gamma, float64(k)) / (d.gamma + 1)
			if est < d.min {
				est = d.min
			}
			if est > d.max {
				est = d.max
			}
			return est
		}
	}
	return d.max
}

// Merge folds other into d. Both must have been built with the same
// alpha (same bucket boundaries); merging is exact — the result is
// identical to having streamed both inputs into one digest.
func (d *Digest) Merge(other *Digest) error {
	if other == nil || other.n == 0 {
		return nil
	}
	if other.alpha != d.alpha {
		return fmt.Errorf("stats: cannot merge digests with alpha %v and %v", d.alpha, other.alpha)
	}
	d.n += other.n
	d.sum += other.sum
	d.zero += other.zero
	if other.min < d.min {
		d.min = other.min
	}
	if other.max > d.max {
		d.max = other.max
	}
	for k, c := range other.counts {
		d.counts[k] += c
	}
	return nil
}

// digestJSON is the wire form. Buckets are sorted [index, count]
// pairs so the encoding is deterministic — result documents that
// embed a digest stay byte-stable across marshals.
type digestJSON struct {
	Alpha   float64    `json:"alpha"`
	N       int64      `json:"n"`
	Sum     float64    `json:"sum"`
	Min     float64    `json:"min"`
	Max     float64    `json:"max"`
	Zero    int64      `json:"zero,omitempty"`
	Buckets [][2]int64 `json:"buckets,omitempty"`
}

// MarshalJSON encodes the digest's full state deterministically.
func (d *Digest) MarshalJSON() ([]byte, error) {
	doc := digestJSON{Alpha: d.alpha, N: d.n, Sum: d.sum, Zero: d.zero}
	if d.n > 0 {
		doc.Min, doc.Max = d.min, d.max
	}
	keys := make([]int, 0, len(d.counts))
	for k := range d.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		doc.Buckets = append(doc.Buckets, [2]int64{int64(k), d.counts[k]})
	}
	return json.Marshal(doc)
}

// UnmarshalJSON restores a digest encoded by MarshalJSON.
func (d *Digest) UnmarshalJSON(data []byte) error {
	var doc digestJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Alpha <= 0 || doc.Alpha >= 1 {
		return fmt.Errorf("stats: invalid digest document alpha=%v", doc.Alpha)
	}
	*d = *NewDigest(doc.Alpha)
	d.n, d.sum, d.zero = doc.N, doc.Sum, doc.Zero
	if d.n > 0 {
		d.min, d.max = doc.Min, doc.Max
	}
	for _, b := range doc.Buckets {
		d.counts[int(b[0])] = b[1]
	}
	return nil
}
