package stats

import (
	"fmt"
	"io"
	"math"
)

// Series is a time series of (t, value) samples, typically queue lengths
// sampled during a simulation. It supports the linear-regression slope
// test used to classify a run as stable or unstable.
type Series struct {
	T []float64
	V []float64
}

// Append adds one sample.
func (s *Series) Append(t, v float64) {
	s.T = append(s.T, t)
	s.V = append(s.V, v)
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.T) }

// Grow ensures capacity for at least n further samples, so a caller
// that knows its sample count up front appends without reallocation.
func (s *Series) Grow(n int) {
	if n <= 0 || cap(s.T)-len(s.T) >= n {
		return
	}
	t := make([]float64, len(s.T), len(s.T)+n)
	copy(t, s.T)
	s.T = t
	v := make([]float64, len(s.V), len(s.V)+n)
	copy(v, s.V)
	s.V = v
}

// Thin halves the series in place, keeping every second sample
// starting from the first. Long-horizon runs call this when the
// series outgrows a cap: the retained points remain evenly spaced
// (stride doubles), so linear fits and stability verdicts stay
// meaningful while memory stays bounded.
func (s *Series) Thin() {
	w := 0
	for i := 0; i < len(s.T); i += 2 {
		s.T[w] = s.T[i]
		s.V[w] = s.V[i]
		w++
	}
	s.T = s.T[:w]
	s.V = s.V[:w]
}

// Tail returns the sub-series containing the last fraction frac of the
// samples (by count). frac is clamped to (0, 1].
func (s *Series) Tail(frac float64) *Series {
	if frac <= 0 {
		frac = 1e-9
	}
	if frac > 1 {
		frac = 1
	}
	start := len(s.T) - int(math.Ceil(frac*float64(len(s.T))))
	if start < 0 {
		start = 0
	}
	return &Series{T: s.T[start:], V: s.V[start:]}
}

// MeanV returns the mean of the values.
func (s *Series) MeanV() float64 { return Mean(s.V) }

// MaxV returns the maximum of the values.
func (s *Series) MaxV() float64 { return Max(s.V) }

// WriteCSV writes the series as two-column CSV with the given headers.
func (s *Series) WriteCSV(w io.Writer, tName, vName string) error {
	if _, err := fmt.Fprintf(w, "%s,%s\n", tName, vName); err != nil {
		return err
	}
	for i := range s.T {
		if _, err := fmt.Fprintf(w, "%g,%g\n", s.T[i], s.V[i]); err != nil {
			return err
		}
	}
	return nil
}

// Fit holds an ordinary-least-squares line fit v ≈ Slope·t + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// LinearFit computes the OLS fit of the series. A degenerate series
// (fewer than two points, or zero time variance) yields a zero fit.
func (s *Series) LinearFit() Fit {
	n := float64(len(s.T))
	if n < 2 {
		return Fit{}
	}
	mt := Mean(s.T)
	mv := Mean(s.V)
	var sxx, sxy, syy float64
	for i := range s.T {
		dt := s.T[i] - mt
		dv := s.V[i] - mv
		sxx += dt * dt
		sxy += dt * dv
		syy += dv * dv
	}
	if sxx == 0 {
		return Fit{Intercept: mv}
	}
	slope := sxy / sxx
	fit := Fit{Slope: slope, Intercept: mv - slope*mt}
	if syy > 0 {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	} else {
		fit.R2 = 1 // constant series perfectly fit by horizontal line
	}
	return fit
}

// StabilityVerdict classifies a queue-length series. A run is judged
// unstable when the queue keeps growing over the second half of the run:
// the fitted slope over the tail, multiplied by the tail duration,
// exceeds both an absolute floor and a fraction of the tail mean.
type StabilityVerdict struct {
	Stable    bool
	TailMean  float64
	TailSlope float64
	Growth    float64 // slope × tail duration, in queue-length units
}

// Stability classifies the series using its second half.
func (s *Series) Stability() StabilityVerdict {
	tail := s.Tail(0.5)
	v := StabilityVerdict{TailMean: tail.MeanV()}
	if tail.Len() < 2 {
		v.Stable = true
		return v
	}
	fit := tail.LinearFit()
	dur := tail.T[tail.Len()-1] - tail.T[0]
	v.TailSlope = fit.Slope
	v.Growth = fit.Slope * dur
	// Growing by more than half the tail mean — and by at least a
	// handful of packets in absolute terms, so sampling noise on
	// near-empty queues cannot trip the detector — indicates a queue
	// that does not stabilise.
	v.Stable = !(v.Growth > 5 && v.Growth > 0.5*v.TailMean)
	return v
}
