package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummaryBasics(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.Var() != 0 {
		t.Fatalf("zero-value summary not empty: %v", s.String())
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d, want 8", s.N())
	}
	if !almostEq(s.Mean(), 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if !almostEq(s.Var(), 32.0/7, 1e-12) {
		t.Errorf("Var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
}

func TestSummaryAddN(t *testing.T) {
	var a, b Summary
	a.AddN(3, 5)
	for i := 0; i < 5; i++ {
		b.Add(3)
	}
	if a.N() != b.N() || !almostEq(a.Mean(), b.Mean(), 1e-12) {
		t.Fatalf("AddN mismatch: %v vs %v", a.String(), b.String())
	}
}

func TestSummaryMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	check := func(n1, n2 int) {
		var all, a, b Summary
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64()*3 + 1
			all.Add(x)
			a.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64()*0.5 - 2
			all.Add(x)
			b.Add(x)
		}
		a.Merge(&b)
		if a.N() != all.N() {
			t.Fatalf("merged N = %d, want %d", a.N(), all.N())
		}
		if !almostEq(a.Mean(), all.Mean(), 1e-9) {
			t.Errorf("merged mean %v, want %v", a.Mean(), all.Mean())
		}
		if !almostEq(a.Var(), all.Var(), 1e-9) {
			t.Errorf("merged var %v, want %v", a.Var(), all.Var())
		}
		if a.Min() != all.Min() || a.Max() != all.Max() {
			t.Errorf("merged min/max %v/%v, want %v/%v", a.Min(), a.Max(), all.Min(), all.Max())
		}
	}
	check(10, 20)
	check(0, 5)
	check(5, 0)
	check(1, 1)
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	}
	for _, tc := range tests {
		if got := Quantile(xs, tc.q); !almostEq(got, tc.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	// The input must not be reordered.
	if xs[0] != 5 {
		t.Errorf("Quantile mutated its input: %v", xs)
	}
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("Quantile(nil) = %v, want 0", got)
	}
}

func TestQuantilesMatchesSingle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	multi := Quantiles(xs, qs...)
	for i, q := range qs {
		if single := Quantile(xs, q); !almostEq(multi[i], single, 1e-12) {
			t.Errorf("Quantiles[%v] = %v, Quantile = %v", q, multi[i], single)
		}
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		got := Quantile(xs, q)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMax(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-slice helpers should return 0")
	}
	if got := Mean([]float64{1, 2, 3}); !almostEq(got, 2, 1e-12) {
		t.Errorf("Mean = %v, want 2", got)
	}
	if got := Max([]float64{1, 7, 3}); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
}

func TestSummaryWelfordAgainstNaive(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if math.Abs(x) < 1e6 && !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		var s Summary
		for _, x := range xs {
			s.Add(x)
		}
		mean := Mean(xs)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		naive := ss / float64(len(xs)-1)
		scale := math.Max(1, math.Abs(naive))
		return almostEq(s.Var(), naive, 1e-6*scale) && almostEq(s.Mean(), mean, 1e-6*math.Max(1, math.Abs(mean)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDriftEstimator(t *testing.T) {
	d := NewDriftEstimator(0, 5)
	// Feed a mean-reverting walk: above 0, drift is -1; at 0, +2.
	seq := []float64{0, 2, 1, 0, 2, 1, 0, 2, 1, 0, 8, 7, 6, 5, 4, 3, 2, 1, 0}
	for _, phi := range seq {
		d.Observe(phi)
	}
	if !d.NegativeAboveZero(1) {
		t.Errorf("mean-reverting walk judged drifting: %s", d.String())
	}
	// The Φ=0 bucket should show positive drift (arrivals).
	mean, n := d.Drift(0)
	if n == 0 || mean <= 0 {
		t.Errorf("Φ=0 bucket drift = %v (n=%d), want positive", mean, n)
	}
	// A runaway walk fails the check.
	up := NewDriftEstimator(0)
	for phi := 0.0; phi < 20; phi++ {
		up.Observe(phi)
	}
	if up.NegativeAboveZero(1) {
		t.Errorf("runaway walk judged stable: %s", up.String())
	}
	if up.NumBuckets() != 2 {
		t.Errorf("buckets = %d, want 2", up.NumBuckets())
	}
	// Degenerate queries return zero.
	if m, n := d.Drift(99); m != 0 || n != 0 {
		t.Error("out-of-range bucket not zero")
	}
}

func TestAccessorsAndStringers(t *testing.T) {
	var s Summary
	s.Add(3)
	s.Add(5)
	if s.Std() <= 0 {
		t.Error("Std not positive for varied data")
	}
	if str := s.String(); str == "" || !almostEq(s.Mean(), 4, 1e-12) {
		t.Errorf("String/Mean wrong: %q", str)
	}
	h := NewHistogram(1, 4)
	if h.Mean() != 0 {
		t.Error("empty histogram mean not 0")
	}
	h.Add(2)
	if h.String() == "" {
		t.Error("histogram String empty")
	}
	var series Series
	series.Append(0, 3)
	series.Append(1, 9)
	if series.MaxV() != 9 {
		t.Errorf("MaxV = %v", series.MaxV())
	}
	d := NewDriftEstimator(0)
	d.Observe(1)
	d.Observe(0)
	if d.String() == "" {
		t.Error("drift String empty")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errWrite }

var errWrite = errors.New("sink closed")

func TestWriteCSVPropagatesErrors(t *testing.T) {
	var s Series
	s.Append(1, 2)
	if err := s.WriteCSV(failWriter{}, "t", "v"); err == nil {
		t.Fatal("write error swallowed")
	}
}
