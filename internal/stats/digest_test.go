package stats

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestDigestRelativeAccuracy(t *testing.T) {
	d := NewDigest(0.01)
	rng := rand.New(rand.NewSource(1))
	vals := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		x := math.Exp(rng.NormFloat64()*2) + 1 // heavy-tailed latencies
		vals = append(vals, x)
		d.Add(x)
	}
	sortFloats(vals)
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 0.999} {
		idx := int(math.Ceil(q*float64(len(vals)))) - 1
		truth := vals[idx]
		got := d.Quantile(q)
		if rel := math.Abs(got-truth) / truth; rel > 0.02 {
			t.Errorf("q=%v: got %v, truth %v (rel err %v)", q, got, truth, rel)
		}
	}
	if d.N() != 20000 {
		t.Fatalf("n=%d", d.N())
	}
}

func sortFloats(v []float64) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// Merging two digests must be exact: identical to streaming every
// sample into a single digest.
func TestDigestMergeExact(t *testing.T) {
	a, b, all := NewDigest(0.01), NewDigest(0.01), NewDigest(0.01)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 1000
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	// Bucket counts and extremes merge exactly; the running sum can
	// differ in the last ulp from addition order.
	if !sameModuloSum(t, a, all) {
		t.Fatal("merged digest differs from single-stream digest")
	}
}

// sameModuloSum compares two JSON-marshalable sketches field-for-field
// with the floating-point "sum" compared within 1e-9 relative
// tolerance (summation order differs between merged and single-stream
// accumulation).
func sameModuloSum(t *testing.T, a, b interface{ MarshalJSON() ([]byte, error) }) bool {
	t.Helper()
	var da, db map[string]json.RawMessage
	ba, _ := a.MarshalJSON()
	bb, _ := b.MarshalJSON()
	json.Unmarshal(ba, &da)
	json.Unmarshal(bb, &db)
	var sa, sb float64
	json.Unmarshal(da["sum"], &sa)
	json.Unmarshal(db["sum"], &sb)
	if math.Abs(sa-sb) > 1e-9*math.Max(math.Abs(sa), 1) {
		t.Errorf("sums differ: %v vs %v", sa, sb)
		return false
	}
	delete(da, "sum")
	delete(db, "sum")
	for k, v := range da {
		if string(db[k]) != string(v) {
			t.Errorf("field %q differs: %s vs %s", k, v, db[k])
			return false
		}
	}
	return len(da) == len(db)
}

func TestDigestMergeAlphaMismatch(t *testing.T) {
	a, b := NewDigest(0.01), NewDigest(0.05)
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("expected alpha mismatch error")
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	d := NewDigest(0.01)
	for _, x := range []float64{0, 1, 1, 2.5, 300, 1e6} {
		d.Add(x)
	}
	enc, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(enc, &back); err != nil {
		t.Fatal(err)
	}
	enc2, _ := json.Marshal(&back)
	if string(enc) != string(enc2) {
		t.Fatalf("round trip drifted:\n %s\n %s", enc, enc2)
	}
	if back.N() != d.N() || back.Quantile(0.5) != d.Quantile(0.5) || back.Max() != d.Max() {
		t.Fatal("restored digest differs")
	}
}

func TestDigestEmpty(t *testing.T) {
	d := NewDigest(0)
	if d.Quantile(0.5) != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Fatal("empty digest should report zeros")
	}
}

func TestHistogramMergeExact(t *testing.T) {
	a, b, all := NewHistogram(2, 16), NewHistogram(2, 16), NewHistogram(2, 16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		x := rng.Float64() * 40 // exercises overflow too
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if !sameModuloSum(t, a, all) {
		t.Fatal("merged histogram differs from single-stream histogram")
	}
	bad := NewHistogram(3, 16)
	bad.Add(1)
	if err := a.Merge(bad); err == nil {
		t.Fatal("expected shape mismatch error")
	}
}

func TestSeriesThin(t *testing.T) {
	var s Series
	for i := 0; i < 11; i++ {
		s.Append(float64(i*10), float64(i))
	}
	s.Thin()
	if s.Len() != 6 {
		t.Fatalf("len=%d", s.Len())
	}
	for i := 0; i < 6; i++ {
		if s.T[i] != float64(i*20) || s.V[i] != float64(i*2) {
			t.Fatalf("sample %d: (%v,%v)", i, s.T[i], s.V[i])
		}
	}
}
