// JSON round-tripping for the accumulator types whose fields are
// unexported (Histogram, Summary), so simulation results — and the
// Scenario API's result documents — serialize losslessly.
package stats

import (
	"encoding/json"
	"fmt"
)

type histogramJSON struct {
	Width    float64 `json:"width"`
	Counts   []int64 `json:"counts"`
	Overflow int64   `json:"overflow,omitempty"`
	Sum      float64 `json:"sum"`
	N        int64   `json:"n"`
	Max      float64 `json:"max"`
}

// MarshalJSON encodes the histogram's full state.
func (h *Histogram) MarshalJSON() ([]byte, error) {
	return json.Marshal(histogramJSON{
		Width:    h.width,
		Counts:   h.counts,
		Overflow: h.overflow,
		Sum:      h.sum,
		N:        h.n,
		Max:      h.max,
	})
}

// UnmarshalJSON restores a histogram encoded by MarshalJSON.
func (h *Histogram) UnmarshalJSON(data []byte) error {
	var doc histogramJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.Width <= 0 || len(doc.Counts) == 0 {
		return fmt.Errorf("stats: invalid histogram document width=%v buckets=%d", doc.Width, len(doc.Counts))
	}
	h.width = doc.Width
	h.counts = doc.Counts
	h.overflow = doc.Overflow
	h.sum = doc.Sum
	h.n = doc.N
	h.max = doc.Max
	return nil
}

type summaryJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON encodes the summary's full state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores a summary encoded by MarshalJSON.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var doc summaryJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	s.n, s.mean, s.m2, s.min, s.max = doc.N, doc.Mean, doc.M2, doc.Min, doc.Max
	return nil
}
