package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E11PowerControl reproduces Corollary 14: when the protocol may choose
// an individual power per transmission, the centralized greedy
// scheduler (the [32]-style algorithm) yields a stable protocol whose
// rate degrades at most poly-logarithmically in m. The physical side
// really solves for joint power vectors — transmissions succeed only if
// a feasible power assignment exists for the scheduled set.
func E11PowerControl(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{8, 16, 32}
	slots := int64(40000)
	if scale == Quick {
		sizes = []int{8, 16}
		slots = 12000
	}
	rates := []float64{0.004, 0.008, 0.012, 0.018, 0.025, 0.035, 0.05}

	tbl := &Table{
		ID:    "E11",
		Title: "Power control: max stable rate with protocol-chosen powers",
		Claim: "Cor 14: a stable O(log²m)-competitive (O(log m) in fading metrics) centralized " +
			"protocol exists when powers are chosen per transmission",
		Columns: []string{"m (links)", "max stable λ", "frame T at λ*"},
	}

	for _, m := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		side := 10 * float64(intSqrtE11(m))
		g := netgraph.RandomPairs(rng, m, side, 1, 4)
		model, err := sinr.NewPowerControl(g, sinr.DefaultParams())
		if err != nil {
			return nil, err
		}
		alg := static.GreedyPowerControl{}
		best, err := maxStableRate(ctx, rates, slots, seed, model,
			func(lambda float64) (sim.Protocol, inject.Process, error) {
				proto, err := core.New(core.Config{
					Model: model, Alg: alg, M: m, Lambda: lambda, Eps: 0.25, Seed: seed,
				})
				if err != nil {
					return nil, nil, err
				}
				proc, err := singleHopGenerators(model, lambda)
				if err != nil {
					return nil, nil, err
				}
				return proto, proc, nil
			})
		if err != nil {
			return nil, err
		}
		frameT := "-"
		if best > 0 {
			if t, err := core.SolveFrameLength(alg, model.NumLinks(), m, best, 0.25); err == nil {
				frameT = fmtI(t)
			}
		}
		tbl.AddRow(fmtI(m), fmtF(best), frameT)
	}
	tbl.AddNote("the scheduler is centralized, as the paper notes for this setting; feasibility " +
		"is decided by the fixed-point power solver, shedding the most-interfered link on failure")
	return tbl, nil
}

func intSqrtE11(n int) int {
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
