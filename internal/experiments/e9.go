package experiments

import (
	"context"
	"math"

	"dynsched/internal/lowerbound"
	"dynsched/internal/sim"
)

// E9LowerBound reproduces Theorem 20 / Figure 1: on the instance with
// m−1 interference-free short links and one long link needing global
// silence, a global clock makes even/odd TDM stable at per-link rate
// 0.45, while the natural local-clock acknowledgement-based protocol
// starves the long link already at λ = ln m / m — a Θ(m/ln m) gap.
func E9LowerBound(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{16, 64, 256}
	slots := int64(60000)
	if scale == Quick {
		sizes = []int{16, 64}
		slots = 15000
	}

	tbl := &Table{
		ID:    "E9",
		Title: "Figure 1 instance: global clock vs local clocks",
		Claim: "Thm 20: no local-clock ack-based protocol is m/(2 ln m)-competitive; " +
			"global TDM is stable at λ=0.45 while local-greedy starves the long link at λ=ln m/m",
		Columns: []string{
			"m", "λ = ln m/m",
			"TDM@0.45", "TDM long-queue",
			"local@λ", "local long-queue", "local long-served", "local fairness",
		},
	}

	for _, m := range sizes {
		model := lowerbound.Model{M: m}
		_, paths := lowerbound.Network(m)
		lam := math.Log(float64(m)) / float64(m)

		// Global TDM at the high rate 0.45 per link.
		tdmProc, err := lowerbound.PerLinkBernoulli(model, paths, 0.45)
		if err != nil {
			return nil, err
		}
		tdm := lowerbound.NewGlobalTDM(model)
		tdmRes, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed + int64(m)}, model, tdmProc, tdm)
		if err != nil {
			return nil, err
		}

		// Local greedy at the much lower rate ln m / m.
		locProc, err := lowerbound.PerLinkBernoulli(model, paths, lam)
		if err != nil {
			return nil, err
		}
		loc := lowerbound.NewLocalGreedy(model)
		locRes, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed + int64(m)}, model, locProc, loc)
		if err != nil {
			return nil, err
		}

		longQ := tdm.QueueLen() // total; for TDM the long queue is what remains
		tbl.AddRow(
			fmtI(m), fmtF(lam),
			fmtB(tdmRes.Verdict.Stable), fmtI(longQ),
			fmtB(locRes.Verdict.Stable), fmtI(loc.LongQueueLen()), fmtI(int(loc.LongSuccesses)),
			fmtF(locRes.FairnessIndex()),
		)
	}
	tbl.AddNote("the local protocol is fine on short links but the long link's queue grows ≈ λ·slots; " +
		"with a global clock the same rate (and far higher) is trivially stable")
	tbl.AddNote("'local fairness' is Jain's index over per-link service — the starved long link " +
		"drags it below 1 even while m−1 short links hum along")
	return tbl, nil
}
