// Package experiments contains one runner per paper claim (E1–E15 in
// DESIGN.md). Each runner builds its workload, executes the relevant
// protocols or algorithms, and returns a Table whose rows mirror what
// the paper's theorems predict — schedule-length scaling, stability
// frontiers, competitive ratios, latency growth, and the lower-bound
// separation. The cmd/experiments binary prints all tables;
// bench_test.go wires each runner into a benchmark.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Scale selects the experiment size.
type Scale int

// Experiment scales. Quick keeps every experiment under roughly a
// second for use in benchmarks and CI; Full reproduces the numbers
// recorded in EXPERIMENTS.md.
const (
	Quick Scale = iota + 1
	Full
)

// String returns the scale name.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// Table is one experiment's result set.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-text note rendered under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Format renders the table as aligned ASCII text.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavoured markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	if t.Claim != "" {
		fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat(" --- |", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "*Note:* %s\n\n", n)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (cells containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Columns)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, cell := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(cell, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(cell, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(cell)
		}
	}
	b.WriteByte('\n')
}

// Runner is one experiment.
type Runner struct {
	ID   string
	Name string
	Run  func(ctx context.Context, scale Scale, seed int64) (*Table, error)
}

// All returns every experiment in order.
func All() []Runner {
	return []Runner{
		{ID: "E1", Name: "densification", Run: E1Densify},
		{ID: "E2", Name: "stochastic stability", Run: E2Stability},
		{ID: "E3", Name: "latency vs path length", Run: E3Latency},
		{ID: "E4", Name: "adversarial injection", Run: E4Adversarial},
		{ID: "E5", Name: "linear-power competitiveness", Run: E5LinearPower},
		{ID: "E6", Name: "uniform-power competitiveness", Run: E6UniformPower},
		{ID: "E7", Name: "MAC thresholds", Run: E7MAC},
		{ID: "E8", Name: "conflict-graph schedule length", Run: E8ConflictGraph},
		{ID: "E9", Name: "global vs local clocks", Run: E9LowerBound},
		{ID: "E10", Name: "ablations", Run: E10Ablation},
		{ID: "E11", Name: "power-control competitiveness", Run: E11PowerControl},
		{ID: "E12", Name: "radio-network model", Run: E12Radio},
		{ID: "E13", Name: "fading vs general metrics", Run: E13Metrics},
		{ID: "E14", Name: "baseline comparison", Run: E14Baselines},
		{ID: "E15", Name: "spatial-index scale", Run: E15SpatialScale},
	}
}

// ByID returns the runner with the given ID.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

func fmtF(v float64) string  { return fmt.Sprintf("%.3f", v) }
func fmtF1(v float64) string { return fmt.Sprintf("%.1f", v) }
func fmtI(v int) string      { return fmt.Sprintf("%d", v) }
func fmtB(stable bool) string {
	if stable {
		return "stable"
	}
	return "UNSTABLE"
}
