package experiments

import (
	"context"
	"strconv"
	"strings"
	"testing"
)

// runQuick executes a runner at Quick scale with a fixed seed.
func runQuick(t *testing.T, id string) *Table {
	t.Helper()
	r, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tbl, err := r.Run(context.Background(), Quick, 7)
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if len(tbl.Rows) == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	for i, row := range tbl.Rows {
		if len(row) != len(tbl.Columns) {
			t.Fatalf("%s row %d has %d cells for %d columns", id, i, len(row), len(tbl.Columns))
		}
	}
	return tbl
}

// cell parses a numeric table cell.
func cell(t *testing.T, tbl *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(tbl.Rows[row][col], 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q not numeric: %v", row, col, tbl.Rows[row][col], err)
	}
	return v
}

func TestAllRegistered(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("registered %d experiments, want 15", len(all))
	}
	seen := map[string]bool{}
	for _, r := range all {
		if seen[r.ID] {
			t.Fatalf("duplicate ID %s", r.ID)
		}
		seen[r.ID] = true
		if r.Run == nil {
			t.Fatalf("%s has no runner", r.ID)
		}
	}
	if _, ok := ByID("e3"); !ok {
		t.Error("ByID not case-insensitive")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID invented an experiment")
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID: "T", Title: "demo", Claim: "c",
		Columns: []string{"a", "bb"},
	}
	tbl.AddRow("1", "2")
	tbl.AddNote("n=%d", 3)
	text := tbl.Format()
	for _, want := range []string{"T — demo", "claim: c", "a", "bb", "note: n=3"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format missing %q:\n%s", want, text)
		}
	}
	md := tbl.Markdown()
	for _, want := range []string{"### T — demo", "| a | bb |", "| 1 | 2 |", "*Note:* n=3"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
}

func TestE1ShapeDensificationFlattens(t *testing.T) {
	tbl := runQuick(t, "E1")
	last := len(tbl.Rows) - 1
	rawSmall, rawLarge := cell(t, tbl, 0, 4), cell(t, tbl, last, 4)
	densSmall, densLarge := cell(t, tbl, 0, 6), cell(t, tbl, last, 6)
	// Densified unit cost must grow strictly slower than raw unit cost.
	rawGrowth := rawLarge / rawSmall
	densGrowth := densLarge / densSmall
	if densGrowth > rawGrowth {
		t.Errorf("densification did not flatten scaling: raw ×%.2f, densified ×%.2f\n%s",
			rawGrowth, densGrowth, tbl.Format())
	}
}

func TestE2ShapeStableBelowCapacityUnstableAbove(t *testing.T) {
	tbl := runQuick(t, "E2")
	last := len(tbl.Rows) - 1
	// All rows except the overload row must be stable.
	for i := 0; i < last; i++ {
		if tbl.Rows[i][5] != "stable" {
			t.Errorf("row %d (load %s) unstable:\n%s", i, tbl.Rows[i][0], tbl.Format())
		}
	}
	if tbl.Rows[last][5] != "UNSTABLE" {
		t.Errorf("overload row judged stable:\n%s", tbl.Format())
	}
}

func TestE3ShapeLatencyLinearInHops(t *testing.T) {
	tbl := runQuick(t, "E3")
	// latency/(d·T) must stay within a small constant band.
	for i := range tbl.Rows {
		norm := cell(t, tbl, i, 4)
		if norm < 0.3 || norm > 6 {
			t.Errorf("row %d: latency/(d·T) = %v outside [0.3, 6]:\n%s", i, norm, tbl.Format())
		}
	}
}

func TestE4ShapeAllTimingsStable(t *testing.T) {
	tbl := runQuick(t, "E4")
	for i, row := range tbl.Rows {
		if row[1] == "on" && row[5] != "stable" {
			t.Errorf("delayed variant %s unstable (row %d):\n%s", row[0], i, tbl.Format())
		}
	}
}

func TestE5ShapeConstantCompetitive(t *testing.T) {
	tbl := runQuick(t, "E5")
	for i := range tbl.Rows {
		if rate := cell(t, tbl, i, 1); rate <= 0 {
			t.Errorf("m=%s: no stable rate found:\n%s", tbl.Rows[i][0], tbl.Format())
		}
	}
	// The stable rate must not collapse with size: allow a 4× dip.
	first, lastV := cell(t, tbl, 0, 1), cell(t, tbl, len(tbl.Rows)-1, 1)
	if lastV < first/4 {
		t.Errorf("stable rate collapsed from %v to %v:\n%s", first, lastV, tbl.Format())
	}
}

func TestE6ShapeLogSquaredCompetitive(t *testing.T) {
	tbl := runQuick(t, "E6")
	// Columns: 0 m, 1 λ*uniform, 2 pkts, 3 λ*sqrt, 4 pkts, 5 λ*linear,
	// 6 pkts, 7 uniform·log²m.
	for i := range tbl.Rows {
		if norm := cell(t, tbl, i, 7); norm <= 0 {
			t.Errorf("m=%s: λ·log²m = %v:\n%s", tbl.Rows[i][0], norm, tbl.Format())
		}
	}
}

func TestE7ShapeAsymmetricBeatsSymmetric(t *testing.T) {
	tbl := runQuick(t, "E7")
	// Columns: 0 = λ, 1 = symmetric, 2 = asymmetric.
	for _, row := range tbl.Rows {
		switch row[0] {
		case "0.050", "0.100":
			// Low rates must work for both protocols.
			if row[1] != "stable" || row[2] != "stable" {
				t.Errorf("λ=%s not stable for both (%s / %s):\n%s", row[0], row[1], row[2], tbl.Format())
			}
		case "0.450", "0.700":
			// The gap: symmetric is past its 1/e-ish ceiling, RRW still fine.
			if row[1] == "stable" {
				t.Errorf("symmetric protocol stable at λ=%s — beyond its ceiling:\n%s", row[0], tbl.Format())
			}
			if row[2] != "stable" {
				t.Errorf("RRW not stable at λ=%s (%s):\n%s", row[0], row[2], tbl.Format())
			}
		case "1.200":
			if row[2] == "stable" {
				t.Errorf("overload row stable:\n%s", tbl.Format())
			}
		}
	}
}

func TestE8ShapeNormalizedConstant(t *testing.T) {
	tbl := runQuick(t, "E8")
	var lo, hi float64
	for i := range tbl.Rows {
		norm := cell(t, tbl, i, 4)
		if i == 0 || norm < lo {
			lo = norm
		}
		if i == 0 || norm > hi {
			hi = norm
		}
	}
	if lo <= 0 {
		t.Fatalf("normalized cost ≤ 0:\n%s", tbl.Format())
	}
	if hi/lo > 8 {
		t.Errorf("slots/(I·ln n) varies ×%.1f — not O(I·log n):\n%s", hi/lo, tbl.Format())
	}
}

func TestE9ShapeSeparation(t *testing.T) {
	tbl := runQuick(t, "E9")
	for i, row := range tbl.Rows {
		if row[2] != "stable" {
			t.Errorf("row %d: global TDM unstable:\n%s", i, tbl.Format())
		}
		longQ := cell(t, tbl, i, 5)
		if longQ < 50 {
			t.Errorf("row %d: local long-queue %v too small — starvation not visible:\n%s",
				i, longQ, tbl.Format())
		}
	}
}

func TestE10ShapeCleanupMatters(t *testing.T) {
	tbl := runQuick(t, "E10")
	byName := map[string][]string{}
	for _, row := range tbl.Rows {
		byName[row[0]] = row
	}
	paper, ok1 := byName["paper (prob 1/m)"]
	none, ok2 := byName["no clean-up"]
	if !ok1 || !ok2 {
		t.Fatalf("missing variants:\n%s", tbl.Format())
	}
	if paper[2] == "0" {
		t.Errorf("paper variant cleaned up nothing:\n%s", tbl.Format())
	}
	if none[2] != "0" {
		t.Errorf("no-clean-up variant served clean-up packets:\n%s", tbl.Format())
	}
	// Stranded buffer must exceed the paper variant's.
	paperBuf, _ := strconv.Atoi(paper[3])
	noneBuf, _ := strconv.Atoi(none[3])
	if noneBuf <= paperBuf {
		t.Errorf("no-clean-up buffer %d not larger than paper's %d:\n%s",
			noneBuf, paperBuf, tbl.Format())
	}
}

func TestE11ShapePowerControlStable(t *testing.T) {
	tbl := runQuick(t, "E11")
	for i := range tbl.Rows {
		if rate := cell(t, tbl, i, 1); rate <= 0 {
			t.Errorf("m=%s: no stable power-control rate found:\n%s", tbl.Rows[i][0], tbl.Format())
		}
	}
}

func TestE6ShapePowerFamilyOrdering(t *testing.T) {
	tbl := runQuick(t, "E6")
	for i := range tbl.Rows {
		uniform := cell(t, tbl, i, 1)
		linear := cell(t, tbl, i, 5)
		if uniform <= 0 || linear <= 0 {
			t.Errorf("m=%s: degenerate rates (uniform %v, linear %v):\n%s",
				tbl.Rows[i][0], uniform, linear, tbl.Format())
		}
		// On the constant-density random instances the linear family
		// must not lose to uniform by more than one probe step. The
		// nested-chain rows are excluded: there every pair of links is
		// Θ(1)-coupled under *any* power family (the geometry is
		// adversarial for everyone), so no ordering is implied.
		if !strings.Contains(tbl.Rows[i][0], "nested") && linear < uniform*0.7 {
			t.Errorf("m=%s: linear %v below uniform %v:\n%s",
				tbl.Rows[i][0], linear, uniform, tbl.Format())
		}
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("1", `x,"y"`)
	got := tbl.CSV()
	want := "a,b\n1,\"x,\"\"y\"\"\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}

func TestE12ShapeRadioStable(t *testing.T) {
	tbl := runQuick(t, "E12")
	for i := range tbl.Rows {
		if rho := cell(t, tbl, i, 2); rho < 1 || rho > 8 {
			t.Errorf("grid %s: ρ = %v outside plausible range:\n%s", tbl.Rows[i][0], rho, tbl.Format())
		}
		if rate := cell(t, tbl, i, 4); rate <= 0 {
			t.Errorf("grid %s: no stable rate:\n%s", tbl.Rows[i][0], tbl.Format())
		}
	}
}

func TestE5ShapeRatioColumn(t *testing.T) {
	tbl := runQuick(t, "E5")
	for i := range tbl.Rows {
		if opt := cell(t, tbl, i, 2); opt <= 0 {
			t.Errorf("m=%s: OPT = %v:\n%s", tbl.Rows[i][0], opt, tbl.Format())
		}
		if ratio := cell(t, tbl, i, 3); ratio <= 0 || ratio > 1.5 {
			t.Errorf("m=%s: ratio %v implausible:\n%s", tbl.Rows[i][0], ratio, tbl.Format())
		}
	}
}

func TestE13ShapeMetrics(t *testing.T) {
	tbl := runQuick(t, "E13")
	// Columns: 0 m, 1 euclid dd, 2 euclid λ*, 3 euclid cap, 4 star dd,
	// 5 star λ*, 6 star cap.
	for i := range tbl.Rows {
		euclid := cell(t, tbl, i, 2)
		star := cell(t, tbl, i, 5)
		if euclid <= 0 {
			t.Errorf("m=%s: no stable Euclidean rate:\n%s", tbl.Rows[i][0], tbl.Format())
		}
		if star <= 0 {
			t.Errorf("m=%s: no stable star-metric rate:\n%s", tbl.Rows[i][0], tbl.Format())
		}
		// Cor 14 allows the general metric at most a log-factor penalty;
		// it must not collapse to a tiny fraction.
		if star < euclid/8 {
			t.Errorf("m=%s: star rate %v collapsed vs euclid %v:\n%s",
				tbl.Rows[i][0], star, euclid, tbl.Format())
		}
	}
}

func TestE14ShapeBaselines(t *testing.T) {
	tbl := runQuick(t, "E14")
	find := func(workloadPrefix, proto string) []string {
		for _, row := range tbl.Rows {
			if strings.HasPrefix(row[0], workloadPrefix) && row[1] == proto {
				return row
			}
		}
		t.Fatalf("row %s/%s missing:\n%s", workloadPrefix, proto, tbl.Format())
		return nil
	}
	// On the identity line everyone sensible is stable; the serializing
	// fallback is not (aggregate rate 0.4·4 hops ≈ 1.6 > 1).
	for _, proto := range []string{"dynamic (paper)", "max-weight", "fifo-greedy", "shortest-in-system"} {
		if row := find("line", proto); row[5] != "stable" {
			t.Errorf("identity line: %s unstable:\n%s", proto, tbl.Format())
		}
	}
	if row := find("line", "mac-fallback"); row[5] != "UNSTABLE" {
		t.Errorf("mac-fallback should drown on the line workload:\n%s", tbl.Format())
	}
	// Under SINR the interference-aware protocols survive; fifo-greedy
	// self-jams.
	if row := find("pairs", "dynamic (paper)"); row[5] != "stable" {
		t.Errorf("dynamic protocol unstable on SINR:\n%s", tbl.Format())
	}
	if row := find("pairs", "max-weight"); row[5] != "stable" {
		t.Errorf("max-weight unstable on SINR:\n%s", tbl.Format())
	}
}

func TestE15ShapeSpatialScale(t *testing.T) {
	tbl := runQuick(t, "E15")
	if len(tbl.Rows) != 2 {
		t.Fatalf("want 2 size rows at Quick scale, got %d:\n%s", len(tbl.Rows), tbl.Format())
	}
	// Columns: 0 links, 1 active k, 2 near/tx, 3 flat terms/tx,
	// 4 work ratio, 5 success rate, 6 agree. Quick sizes are all small
	// enough for the exact comparator, so the agreement check must have
	// run everywhere; any disagreement is an error from the runner
	// itself.
	var near []float64
	for i, row := range tbl.Rows {
		n := cell(t, tbl, i, 2)
		if n <= 0 {
			t.Errorf("n=%s: near/tx = %v:\n%s", row[0], n, tbl.Format())
		}
		near = append(near, n)
		if flat := cell(t, tbl, i, 3); n > flat {
			t.Errorf("n=%s: exact-summation set %v exceeds the flat cost %v:\n%s", row[0], n, flat, tbl.Format())
		}
		if succ := cell(t, tbl, i, 5); succ <= 0 {
			t.Errorf("n=%s: success rate %v:\n%s", row[0], succ, tbl.Format())
		}
		if row[6] != "true" {
			t.Errorf("n=%s: agreement column = %q:\n%s", row[0], row[6], tbl.Format())
		}
	}
	// The tentpole claim: the exact-summation set tracks local density,
	// so quadrupling n (and k with it) must not quadruple near/tx.
	if last, first := near[len(near)-1], near[0]; last > 2.5*first {
		t.Errorf("near/tx grew %v → %v with n — not density-bound:\n%s", first, last, tbl.Format())
	}
}
