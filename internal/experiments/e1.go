package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E1Densify reproduces the Section 3 claim (Theorem 1): applying
// Algorithm 1 to an O(I·log n) algorithm yields schedule lengths that
// are linear in I for dense instances, while the raw algorithm's
// per-unit-of-I cost keeps growing with the packet count. The workload
// is a fixed SINR network with linear powers and k packets on every
// link, k doubling across rows.
func E1Densify(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	numLinks := 24
	perLinkSteps := []int{1, 4, 16, 64}
	reps := 3
	if scale == Quick {
		numLinks = 12
		perLinkSteps = []int{1, 4, 16}
		reps = 1
	}
	_, model, err := sinrPairs(rng, numLinks, sinr.PowerLinear, sinr.WeightAffectance)
	if err != nil {
		return nil, err
	}
	raw := static.Decay{}
	densified := static.Densify{Inner: static.Decay{}, Chi: 6}
	spread := static.Spread{}

	tbl := &Table{
		ID:    "E1",
		Title: "Schedule length per unit of interference measure, raw vs densified",
		Claim: "Thm 1: densification makes the schedule length linear in I for dense instances; " +
			"the raw O(I·log n) algorithm's unit cost grows with n",
		Columns: []string{"packets/link", "n", "I", "raw slots", "raw/I", "densified slots", "dens/I", "spread slots", "spread/I"},
	}

	measure := func(alg static.Algorithm, reqs []static.Request) (float64, error) {
		total := 0.0
		for r := 0; r < reps; r++ {
			budgetCap := 64 * alg.Budget(numLinks, static.RequestMeasure(model, reqs), len(reqs))
			res := static.Run(rng, model, alg, reqs, budgetCap)
			if !res.AllServed() {
				tbl.AddNote("%s left %d requests unserved at n=%d", alg.Name(), len(reqs)-res.NumServed(), len(reqs))
			}
			total += float64(res.Slots)
		}
		return total / float64(reps), nil
	}

	for _, k := range perLinkSteps {
		reqs := singleHopLoad(numLinks, k)
		meas := static.RequestMeasure(model, reqs)
		rawSlots, err := measure(raw, reqs)
		if err != nil {
			return nil, err
		}
		denseSlots, err := measure(densified, reqs)
		if err != nil {
			return nil, err
		}
		spreadSlots, err := measure(spread, reqs)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(
			fmtI(k), fmtI(len(reqs)), fmtF1(meas),
			fmtF1(rawSlots), fmtF(rawSlots/meas),
			fmtF1(denseSlots), fmtF(denseSlots/meas),
			fmtF1(spreadSlots), fmtF(spreadSlots/meas),
		)
	}
	tbl.AddNote("the paper predicts raw/I to grow ~log n while dens/I and spread/I flatten to a constant")
	return tbl, nil
}
