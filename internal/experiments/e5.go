package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/capacity"
	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E5LinearPower reproduces Corollary 12: with linear power assignments
// the dynamic protocol is constant-competitive — the largest stable
// injection rate, divided by the single-slot optimal measure rate, does
// not degrade as the network grows. (The lower bound of [21] says any
// single-slot feasible set has measure O(1) under linear powers, so the
// optimum is O(1) measure units per slot.)
func E5LinearPower(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{8, 16, 32, 64}
	slots := int64(30000)
	if scale == Quick {
		sizes = []int{8, 16}
		slots = 10000
	}
	rates := []float64{0.02, 0.04, 0.06, 0.09, 0.12, 0.16, 0.20, 0.26, 0.32}

	tbl := &Table{
		ID:    "E5",
		Title: "Max stable injection rate vs network size, linear powers",
		Claim: "Cor 12: constant-competitive — the stable rate divided by the single-slot " +
			"optimal measure rate stays ~flat in m",
		Columns: []string{"m (links)", "max stable λ", "OPT measure/slot", "λ*/OPT", "frame T at λ*"},
	}

	for _, m := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		_, model, err := sinrPairs(rng, m, sinr.PowerLinear, sinr.WeightAffectance)
		if err != nil {
			return nil, err
		}
		// The optimal protocol cannot sustain more measure per slot than
		// the largest measure a single feasible slot carries.
		opt := capacity.MaxFeasibleMeasure(rng, model, 24)
		alg := static.Spread{}
		best, err := maxStableRate(ctx, rates, slots, seed, model,
			func(lambda float64) (sim.Protocol, inject.Process, error) {
				proto, err := core.New(core.Config{
					Model: model, Alg: alg, M: m, Lambda: lambda, Eps: 0.25, Seed: seed,
				})
				if err != nil {
					return nil, nil, err
				}
				proc, err := singleHopGenerators(model, lambda)
				if err != nil {
					return nil, nil, err
				}
				return proto, proc, nil
			})
		if err != nil {
			return nil, err
		}
		frameT := "-"
		if best > 0 {
			if t, err := core.SolveFrameLength(alg, model.NumLinks(), m, best, 0.25); err == nil {
				frameT = fmtI(t)
			}
		}
		ratio := 0.0
		if opt > 0 {
			ratio = best / opt
		}
		tbl.AddRow(fmtI(m), fmtF(best), fmtF(opt), fmtF(ratio), frameT)
	}
	tbl.AddNote("rates probed: %v", rates)
	tbl.AddNote("OPT is estimated by randomized-greedy max-measure feasible sets; constant " +
		"competitiveness shows as a λ*/OPT column that does not trend to 0 with m")
	return tbl, nil
}
