package experiments

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// errNoPath flags a workload whose routing failed; it indicates a bug
// in the topology builder, not a runtime condition.
var errNoPath = errors.New("experiments: required path does not exist")

// sinrPairs builds an n-link random sender→receiver instance with the
// given power family and weight matrix, scattering pairs in a square
// sized to keep density comparable across n (area ∝ n).
func sinrPairs(rng *rand.Rand, n int, kind sinr.PowerKind, wk sinr.WeightKind) (*netgraph.Graph, *sinr.FixedPower, error) {
	side := 10 * math.Sqrt(float64(n))
	g := netgraph.RandomPairs(rng, n, side, 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, kind, 1)
	if err != nil {
		return nil, nil, err
	}
	// Pick a noise level that leaves isolated links a 2× margin.
	prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
	model, err := sinr.NewFixedPower(g, prm, powers, wk)
	if err != nil {
		return nil, nil, err
	}
	return g, model, nil
}

// singleHopLoad builds k requests on every link of the model's network.
func singleHopLoad(numLinks, perLink int) []static.Request {
	reqs := make([]static.Request, 0, numLinks*perLink)
	tag := int64(0)
	for i := 0; i < perLink; i++ {
		for e := 0; e < numLinks; e++ {
			reqs = append(reqs, static.Request{Link: e, Tag: tag})
			tag++
		}
	}
	return reqs
}

// singleHopGenerators creates one generator per link injecting on the
// link's single-hop path; probabilities are scaled to hit rate lambda
// in the model's measure units.
func singleHopGenerators(m interference.Model, lambda float64) (inject.Process, error) {
	gens := make([]inject.Generator, m.NumLinks())
	for e := range gens {
		gens[e] = inject.Generator{Choices: []inject.PathChoice{
			{Path: netgraph.Path{netgraph.LinkID(e)}, P: 0.5},
		}}
	}
	return inject.StochasticAtRate(m, gens, lambda)
}

// multiHopGenerators injects along the given paths, scaled to rate
// lambda; each path gets ceil(lambda)+1 generators so super-critical
// rates remain expressible.
func multiHopGenerators(m interference.Model, paths []netgraph.Path, lambda float64) (inject.Process, error) {
	perPath := int(lambda) + 2
	var gens []inject.Generator
	for _, p := range paths {
		for i := 0; i < perPath; i++ {
			gens = append(gens, inject.Generator{Choices: []inject.PathChoice{
				{Path: p, P: 1.0 / float64(perPath+1)},
			}})
		}
	}
	return inject.StochasticAtRate(m, gens, lambda)
}

// maxStableRate probes the given protocol family for the largest
// injection rate (in measure units) that stays stable: for each rate in
// rates (ascending) it provisions a protocol via build and simulates;
// it returns the largest stable rate, or 0 if none is.
func maxStableRate(
	ctx context.Context,
	rates []float64,
	slots int64,
	seed int64,
	model interference.Model,
	build func(lambda float64) (sim.Protocol, inject.Process, error),
) (float64, error) {
	best := 0.0
	for _, rate := range rates {
		proto, proc, err := build(rate)
		if err != nil {
			// Frame divergence: the algorithm cannot sustain this rate.
			break
		}
		res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed}, model, proc, proto)
		if err != nil {
			return 0, err
		}
		if !res.Verdict.Stable {
			break
		}
		best = rate
	}
	return best, nil
}
