package experiments

import (
	"context"
	"math"
	"math/rand"

	"dynsched/internal/conflict"
	"dynsched/internal/netgraph"
	"dynsched/internal/static"
)

// E8ConflictGraph reproduces Theorem 19: the 1/(4I) transmission
// algorithm on a conflict graph finishes n requests in O(I·log n) slots
// with high probability. The workload uses node-constraint conflict
// graphs of random geometric networks; the normalized column
// slots/(I·ln n) should stay roughly constant across sizes.
func E8ConflictGraph(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	loads := []int{4, 16, 64, 256}
	numNodes := 24
	reps := 3
	if scale == Quick {
		loads = []int{4, 16, 64}
		numNodes = 12
		reps = 1
	}
	rng := rand.New(rand.NewSource(seed))
	g := netgraph.RandomGeometric(rng, numNodes, 10, 4)
	if g.NumLinks() == 0 {
		return nil, errNoPath
	}
	cg := conflict.NodeConstraint(g)
	order := cg.DegeneracyOrder()
	model, err := conflict.NewModel(cg, order)
	if err != nil {
		return nil, err
	}
	rho := cg.Rho(order, 20)

	tbl := &Table{
		ID:      "E8",
		Title:   "Conflict-graph scheduling: slots vs I·ln n (Theorem 19 algorithm)",
		Claim:   "Thm 19: the 1/(4I) algorithm needs O(I·log n) slots whp",
		Columns: []string{"packets/link", "n", "I", "slots", "slots/(I·ln n)"},
	}
	tbl.AddNote("node-constraint conflict graph on %d links; inductive independence ρ = %d (degeneracy order)",
		g.NumLinks(), rho)

	for _, k := range loads {
		reqs := singleHopLoad(g.NumLinks(), k)
		meas := static.RequestMeasure(model, reqs)
		var total float64
		for r := 0; r < reps; r++ {
			res := static.Run(rng, model, static.Decay{}, reqs, 64*static.Decay{}.Budget(g.NumLinks(), meas, len(reqs)))
			if !res.AllServed() {
				tbl.AddNote("k=%d: %d requests unserved", k, len(reqs)-res.NumServed())
			}
			total += float64(res.Slots)
		}
		slots := total / float64(reps)
		norm := slots / (meas * math.Log(float64(len(reqs))+2))
		tbl.AddRow(fmtI(k), fmtI(len(reqs)), fmtF1(meas), fmtF1(slots), fmtF(norm))
	}
	return tbl, nil
}
