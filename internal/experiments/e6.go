package experiments

import (
	"context"
	"math"
	"math/rand"

	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E6UniformPower reproduces Corollary 13's contrast with Corollary 12:
// with monotone sub-linear assignments (uniform and square-root powers)
// the guaranteed competitive ratio degrades to O(log²m), whereas linear
// powers are constant-competitive. The table reports the max stable
// rate per family and size; the paper predicts
// λ*(linear) ≥ λ*(sqrt) ≥ λ*(uniform), with the uniform/sqrt columns
// allowed to decay like 1/log²m but no faster.
func E6UniformPower(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{8, 16, 32, 64}
	slots := int64(30000)
	if scale == Quick {
		sizes = []int{8, 16}
		slots = 10000
	}
	rates := []float64{0.01, 0.02, 0.03, 0.05, 0.07, 0.09, 0.12, 0.16, 0.20}

	type family struct {
		name string
		kind sinr.PowerKind
		wk   sinr.WeightKind
	}
	families := []family{
		{"uniform", sinr.PowerUniform, sinr.WeightMonotone},
		{"sqrt", sinr.PowerSquareRoot, sinr.WeightMonotone},
		{"linear", sinr.PowerLinear, sinr.WeightAffectance},
	}

	tbl := &Table{
		ID:    "E6",
		Title: "Max stable injection rate vs network size, by power family",
		Claim: "Cor 13 (vs Cor 12): monotone sub-linear powers are O(log²m)-competitive — " +
			"λ*(uniform)·log²m stays bounded away from 0, and linear powers dominate in " +
			"physical packets/slot",
		Columns: []string{
			"m (links)",
			"λ* uniform", "pkts/slot", "λ* sqrt", "pkts/slot", "λ* linear", "pkts/slot",
			"uniform·log²m",
		},
	}

	// packetRate converts a measure-unit rate into the physical
	// packets/slot the single-hop workload injects at that rate.
	packetRate := func(model interference.Model, lambda float64) float64 {
		if lambda <= 0 {
			return 0
		}
		proc, err := singleHopGenerators(model, lambda)
		if err != nil {
			return 0
		}
		return proc.(*inject.Stochastic).PacketRate()
	}

	for _, m := range sizes {
		row := []string{fmtI(m)}
		var uniformBest float64
		for _, fam := range families {
			rng := rand.New(rand.NewSource(seed + int64(m)))
			_, model, err := sinrPairs(rng, m, fam.kind, fam.wk)
			if err != nil {
				return nil, err
			}
			alg := static.Spread{}
			best, err := maxStableRate(ctx, rates, slots, seed, model,
				func(lambda float64) (sim.Protocol, inject.Process, error) {
					proto, err := core.New(core.Config{
						Model: model, Alg: alg, M: m, Lambda: lambda, Eps: 0.25, Seed: seed,
					})
					if err != nil {
						return nil, nil, err
					}
					proc, err := singleHopGenerators(model, lambda)
					if err != nil {
						return nil, nil, err
					}
					return proto, proc, nil
				})
			if err != nil {
				return nil, err
			}
			if fam.name == "uniform" {
				uniformBest = best
			}
			row = append(row, fmtF(best), fmtF(packetRate(model, best)))
		}
		log2m := math.Log2(float64(m))
		row = append(row, fmtF(uniformBest*log2m*log2m))
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.AddNote("λ* is flat across families by design — it is denominated in each model's own " +
		"measure units, and the protocol always achieves Θ(1/f(m)) of them; the physical " +
		"pkts/slot column is where the W matrices differ: a tighter matrix (linear/affectance) " +
		"prices each packet lower, admitting more physical traffic per measure unit")
	tbl.AddNote("random sender–receiver pairs at constant density; at this scale uniform powers " +
		"often match their O(log²m) guarantee with room to spare — the guarantee is an upper bound " +
		"on the degradation, and the ordering linear ≥ sqrt ≥ uniform is the paper-predicted shape")

	// Second workload: the nested chain, where link lengths span a
	// geometric range. This is the hard case for uniform powers — the
	// monotone measure concentrates on the long links — while linear
	// powers are indifferent to length diversity.
	for _, m := range sizes {
		if m > 32 {
			continue // link lengths overflow float precision headroom past 2^32
		}
		g := netgraph.NestedChain(m, 2)
		row := []string{fmtI(m) + " nested"}
		var uniformBest float64
		for _, fam := range families {
			prm := sinr.DefaultParams()
			powers, err := sinr.Powers(g, prm, fam.kind, 1)
			if err != nil {
				return nil, err
			}
			prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
			model, err := sinr.NewFixedPower(g, prm, powers, fam.wk)
			if err != nil {
				return nil, err
			}
			alg := static.Spread{}
			best, err := maxStableRate(ctx, rates, slots, seed, model,
				func(lambda float64) (sim.Protocol, inject.Process, error) {
					proto, err := core.New(core.Config{
						Model: model, Alg: alg, M: m, Lambda: lambda, Eps: 0.25, Seed: seed,
					})
					if err != nil {
						return nil, nil, err
					}
					proc, err := singleHopGenerators(model, lambda)
					if err != nil {
						return nil, nil, err
					}
					return proto, proc, nil
				})
			if err != nil {
				return nil, err
			}
			if fam.name == "uniform" {
				uniformBest = best
			}
			row = append(row, fmtF(best), fmtF(packetRate(model, best)))
		}
		log2m := math.Log2(float64(m))
		row = append(row, fmtF(uniformBest*log2m*log2m))
		tbl.Rows = append(tbl.Rows, row)
	}
	tbl.AddNote("'nested' rows use the exponential-length chain, where every pair of links is " +
		"Θ(1)-coupled regardless of power family (the affectance matrix approaches all-ones) — " +
		"the stable rate in measure units then reflects MAC-like serialization for everyone")
	return tbl, nil
}
