package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/capacity"
	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/netgraph"
	"dynsched/internal/radio"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// E12Radio exercises the radio-network model of Section 7.2: broadcast
// semantics (a node receives iff exactly one audible neighbour
// transmits) on grid graphs. The derived conflict graphs have small
// inductive independence ρ, so the framework yields stable protocols
// whose measure-rate does not collapse with size — and the single-slot
// capacity reference shows how much parallelism radio semantics leave.
func E12Radio(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sides := []int{3, 4, 5}
	slots := int64(40000)
	if scale == Quick {
		sides = []int{3, 4}
		slots = 12000
	}
	rates := []float64{0.01, 0.02, 0.03, 0.05, 0.07, 0.10, 0.14}

	tbl := &Table{
		ID:    "E12",
		Title: "Radio-network model: conflict structure and stable rates on grids",
		Claim: "§7.2: the radio model's conflict graph has small inductive independence on " +
			"disk-like graphs, so the transformation yields stable O(ρ·log m)-competitive protocols",
		Columns: []string{"grid", "links m", "ρ", "slot capacity", "max stable λ"},
	}

	for _, side := range sides {
		g := netgraph.GridNetwork(side, side, 1)
		model, err := radio.New(g)
		if err != nil {
			return nil, err
		}
		cg := model.ConflictGraph()
		order := cg.DegeneracyOrder()
		rho := cg.Rho(order, 18)
		rng := rand.New(rand.NewSource(seed + int64(side)))
		cap := capacity.SlotCapacity(rng, model)

		alg := static.Spread{}
		best, err := maxStableRate(ctx, rates, slots, seed, model,
			func(lambda float64) (sim.Protocol, inject.Process, error) {
				proto, err := core.New(core.Config{
					Model: model, Alg: alg, M: g.NumLinks(),
					Lambda: lambda, Eps: 0.25, Seed: seed,
				})
				if err != nil {
					return nil, nil, err
				}
				proc, err := singleHopGenerators(model, lambda)
				if err != nil {
					return nil, nil, err
				}
				return proto, proc, nil
			})
		if err != nil {
			return nil, err
		}
		tbl.AddRow(
			fmtI(side)+"×"+fmtI(side), fmtI(g.NumLinks()),
			fmtI(rho), fmtI(cap), fmtF(best),
		)
	}
	tbl.AddNote("slot capacity = size of the largest set of links deliverable in one slot " +
		"under exact radio semantics (branch-and-bound for ≤20 links, randomized greedy beyond)")
	return tbl, nil
}
