package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/capacity"
	"dynsched/internal/core"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E2Stability reproduces Theorem 3: the dynamic protocol keeps expected
// queue lengths bounded for every injection rate it is provisioned for
// (λ < 1/f(m)), and degrades to unbounded queues once the offered load
// exceeds the provisioning. Workload: single-hop SINR traffic with
// linear powers; the protocol wraps the Spread algorithm.
func E2Stability(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	rng := rand.New(rand.NewSource(seed))
	numLinks := 24
	frames := int64(80)
	if scale == Quick {
		numLinks = 10
		frames = 40
	}
	_, model, err := sinrPairs(rng, numLinks, sinr.PowerLinear, sinr.WeightAffectance)
	if err != nil {
		return nil, err
	}
	alg := static.Spread{}

	// The provisioning capacity: the largest λ for which the frame
	// equation converges (≈ 1/f(m) with the ε headroom).
	capRate := 0.0
	for _, probe := range []float64{0.02, 0.04, 0.06, 0.08, 0.10, 0.12, 0.16, 0.20} {
		if _, err := core.SolveFrameLength(alg, numLinks, numLinks, probe, 0.25); err == nil {
			capRate = probe
		}
	}
	if capRate == 0 {
		capRate = 0.02
	}

	tbl := &Table{
		ID:    "E2",
		Title: "Queue behaviour vs offered load (dynamic protocol over Spread)",
		Claim: "Thm 3: expected queue lengths are bounded for every λ the protocol is provisioned for; " +
			"overload beyond the provisioning grows queues linearly",
		Columns: []string{"load/capacity", "λ (measure/slot)", "mean queue", "max queue", "tail growth", "verdict"},
	}
	tbl.AddNote("capacity = largest λ with a convergent frame equation: %.3f measure/slot", capRate)

	// The overload row must exceed the *physical* single-slot optimum —
	// beyond it no protocol whatsoever can be stable — not merely the
	// protocol's provisioning (Spread's conservative budget leaves real
	// headroom above the provisioned λ on easy instances).
	opt := capacity.MaxFeasibleMeasure(rng, model, 24)
	overload := 1.3 * opt / capRate
	fractions := []float64{0.25, 0.5, 0.75, 0.9, overload}
	for _, frac := range fractions {
		lambda := frac * capRate
		// Always provision for the capacity; offered load varies.
		proto, err := core.New(core.Config{
			Model: model, Alg: alg, M: numLinks,
			Lambda: capRate, Eps: 0.25, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		proc, err := singleHopGenerators(model, lambda)
		if err != nil {
			return nil, err
		}
		// Run a fixed number of frames so the horizon scales with the
		// solved frame length and the stability signal is meaningful.
		// The overload row needs far fewer frames (queues grow ≥30% of
		// arrivals per frame) and injects vastly more packets, so keep
		// it short.
		rowFrames := frames
		if frac > 1 {
			rowFrames = frames / 4
		}
		slots := rowFrames * int64(proto.Sizing().T)
		res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed + int64(frac*100)}, model, proc, proto)
		if err != nil {
			return nil, err
		}
		tbl.AddRow(
			fmtF(frac), fmtF(lambda),
			fmtF1(res.Queue.MeanV()), fmtF1(res.Queue.MaxV()),
			fmtF1(res.Verdict.Growth), fmtB(res.Verdict.Stable),
		)
	}
	return tbl, nil
}
