package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/baseline"
	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E14Baselines positions the paper's protocol against the related-work
// baselines on identical recorded arrival traces (paired comparison):
//
//   - max-weight (Tassiulas–Ephremides [40]): the centralized,
//     throughput-optimal reference the paper says it approximates;
//   - FIFO-greedy and shortest-in-system ([3]): interference-blind
//     packet-routing policies — fine on the identity model, broken under
//     real interference;
//   - the MAC fallback: the trivial O(m)-competitive serialization.
//
// Two workloads: a packet-routing line (everyone should be stable) and
// a SINR pairs network (only interference-aware protocols survive).
func E14Baselines(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	slots := int64(60000)
	if scale == Quick {
		slots = 16000
	}

	tbl := &Table{
		ID:    "E14",
		Title: "Dynamic protocol vs baselines on identical arrival traces",
		Claim: "§1.2/related work: the transformation approximates the centralized max-weight " +
			"optimum distributedly; interference-blind policies fail off the identity model",
		Columns: []string{"workload", "protocol", "delivered/injected", "mean queue", "mean latency", "verdict"},
	}

	type contender struct {
		name  string
		build func() sim.Protocol
	}

	run := func(workload string, model interference.Model, trace *inject.Trace, cs []contender) error {
		for _, c := range cs {
			res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed}, model, trace.Replay(), c.build())
			if err != nil {
				return err
			}
			frac := 0.0
			if res.Injected > 0 {
				frac = float64(res.Delivered) / float64(res.Injected)
			}
			tbl.AddRow(workload, c.name, fmtF(frac),
				fmtF1(res.Queue.MeanV()), fmtF1(res.Latency.Mean()), fmtB(res.Verdict.Stable))
		}
		return nil
	}

	// Workload 1: identity-model line, 4-hop flows at λ = 0.4.
	{
		const hops = 4
		g := netgraph.LineNetwork(hops+1, 1)
		model := interference.Identity{Links: g.NumLinks()}
		path, ok := netgraph.ShortestPath(g, 0, hops)
		if !ok {
			return nil, errNoPath
		}
		proc, err := multiHopGenerators(model, []netgraph.Path{path}, 0.4)
		if err != nil {
			return nil, err
		}
		trace := inject.Record(proc, slots, rand.New(rand.NewSource(seed)))
		dyn := func() sim.Protocol {
			p, err := core.New(core.Config{
				Model: model, Alg: static.FullParallel{}, M: g.NumLinks(),
				Lambda: 0.4, Eps: 0.25, Seed: seed,
			})
			if err != nil {
				panic(err) // provisioning verified by tests; cannot fail here
			}
			return p
		}
		cs := []contender{
			{"dynamic (paper)", dyn},
			{"max-weight", func() sim.Protocol { return baseline.NewMaxWeight(model) }},
			{"fifo-greedy", func() sim.Protocol { return baseline.NewFIFOGreedy(g.NumLinks()) }},
			{"shortest-in-system", func() sim.Protocol { return baseline.NewSIS(g.NumLinks()) }},
			{"mac-fallback", func() sim.Protocol { return baseline.NewMACFallback(g.NumLinks()) }},
		}
		if err := run("line/identity λ=0.4", model, trace, cs); err != nil {
			return nil, err
		}
	}

	// Workload 2: SINR pairs with linear powers at a safe measure rate.
	{
		rng := rand.New(rand.NewSource(seed + 1))
		_, model, err := sinrPairs(rng, 16, sinr.PowerLinear, sinr.WeightAffectance)
		if err != nil {
			return nil, err
		}
		const lambda = 0.06
		proc, err := singleHopGenerators(model, lambda)
		if err != nil {
			return nil, err
		}
		trace := inject.Record(proc, slots, rand.New(rand.NewSource(seed+2)))
		dyn := func() sim.Protocol {
			p, err := core.New(core.Config{
				Model: model, Alg: static.Spread{}, M: 16,
				Lambda: lambda, Eps: 0.25, Seed: seed,
			})
			if err != nil {
				panic(err)
			}
			return p
		}
		cs := []contender{
			{"dynamic (paper)", dyn},
			{"max-weight", func() sim.Protocol { return baseline.NewMaxWeight(model) }},
			{"fifo-greedy", func() sim.Protocol { return baseline.NewFIFOGreedy(model.NumLinks()) }},
			{"mac-fallback", func() sim.Protocol { return baseline.NewMACFallback(model.NumLinks()) }},
		}
		if err := run("pairs/SINR λ=0.06", model, trace, cs); err != nil {
			return nil, err
		}
	}
	tbl.AddNote("all protocols in a workload replay the same recorded arrivals — differences " +
		"are purely scheduling, not arrival noise")
	tbl.AddNote("fifo-greedy fires every backlogged link each slot: optimal for the identity " +
		"model, self-jamming under SINR where simultaneous neighbours collide persistently")
	return tbl, nil
}
