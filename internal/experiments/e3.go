package experiments

import (
	"context"
	"dynsched/internal/core"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// E3Latency reproduces Theorem 8: the expected latency of a packet with
// path length d is O(d·T). Workload: a line network under the identity
// (packet-routing) model with paths of doubling hop counts; the table
// reports latency/(d·T), which the theorem predicts to be a constant
// (≈ 1, since an unfailed packet takes one hop per frame).
func E3Latency(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	hops := []int{1, 2, 4, 8, 16}
	slots := int64(120000)
	if scale == Quick {
		hops = []int{1, 2, 4, 8}
		slots = 30000
	}
	maxHops := hops[len(hops)-1]
	g := netgraph.LineNetwork(maxHops+1, 1)
	model := interference.Identity{Links: g.NumLinks()}
	inst := netgraph.NewInstance(g, maxHops)
	const lambda = 0.3

	reps := 4
	if scale == Quick {
		reps = 2
	}

	tbl := &Table{
		ID:    "E3",
		Title: "Packet latency vs path length (dynamic protocol, identity model)",
		Claim: "Thm 8: E[latency] = O(d·T) — the normalized column latency/(d·T) stays constant",
		Columns: []string{
			"d (hops)", "T (frame)", "mean latency", "± std (reps)", "latency/(d·T)",
		},
	}

	for _, d := range hops {
		path, ok := netgraph.ShortestPath(g, 0, netgraph.NodeID(d))
		if !ok {
			continue
		}
		// The frame length is deterministic in the configuration; solve it
		// once up front (the replication builder runs concurrently).
		frameT, err := core.SolveFrameLength(static.FullParallel{}, model.NumLinks(), inst.M(), lambda, 0.25)
		if err != nil {
			return nil, err
		}
		rep, err := sim.Replicate(ctx, sim.Config{
			Slots: slots, Seed: seed + int64(d), WarmupFrac: 0.2,
		}, reps, func(r int, repSeed int64) (sim.RunInput, error) {
			proto, err := core.New(core.Config{
				Model: model, Alg: static.FullParallel{}, M: inst.M(),
				Lambda: lambda, Eps: 0.25, Seed: repSeed,
			})
			if err != nil {
				return sim.RunInput{}, err
			}
			proc, err := multiHopGenerators(model, []netgraph.Path{path}, lambda)
			if err != nil {
				return sim.RunInput{}, err
			}
			return sim.RunInput{Model: model, Process: proc, Protocol: proto}, nil
		})
		if err != nil {
			return nil, err
		}
		mean := rep.MeanLat.Mean()
		tbl.AddRow(
			fmtI(d), fmtI(frameT),
			fmtF1(mean), fmtF1(rep.MeanLat.Std()),
			fmtF(mean/(float64(d)*float64(frameT))),
		)
	}
	tbl.AddNote("each row aggregates %d independent replications (mean ± across-replication std)", reps)
	tbl.AddNote("a packet waits for the next frame and then crosses one hop per frame; " +
		"the constant includes the initial wait, so values slightly above 1 are expected for small d")
	return tbl, nil
}
