package experiments

import (
	"context"
	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// E4Adversarial reproduces Theorem 11: with random initial delays, the
// protocol stays stable under every (w, λ)-bounded adversary with λ
// below its provisioning, regardless of the adversary's timing pattern.
// It also runs the delays-off ablation: burstiness then hits a single
// frame and failures spike.
func E4Adversarial(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	slots := int64(80000)
	w := 64
	if scale == Quick {
		slots = 20000
		w = 32
	}
	const hops = 4
	g := netgraph.LineNetwork(hops+1, 1)
	model := interference.Identity{Links: g.NumLinks()}
	inst := netgraph.NewInstance(g, hops)
	path, ok := netgraph.ShortestPath(g, 0, hops)
	if !ok {
		return nil, errNoPath
	}
	const lambda = 0.4

	tbl := &Table{
		ID:    "E4",
		Title: "Adversarial injection: timing patterns × delay randomization",
		Claim: "Thm 11: random initial delays below δmax make the protocol stable under any " +
			"(w,λ)-bounded adversary; queues stay bounded for burst, spread, and sawtooth timings",
		Columns: []string{"timing", "delays", "mean queue", "max queue", "failures", "verdict"},
	}

	run := func(timing inject.Timing, disableDelays bool) error {
		adv, err := inject.NewPattern(model, []netgraph.Path{path}, w, lambda, timing)
		if err != nil {
			return err
		}
		proto, err := core.New(core.Config{
			Model: model, Alg: static.FullParallel{}, M: inst.M(),
			Lambda: lambda, Eps: 0.25,
			Window: w, D: hops, DelayMax: 2 * w, DisableDelays: disableDelays,
			Seed: seed,
		})
		if err != nil {
			return err
		}
		res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed + int64(timing)}, model, adv, proto)
		if err != nil {
			return err
		}
		delays := "on"
		if disableDelays {
			delays = "off"
		}
		tbl.AddRow(
			timing.String(), delays,
			fmtF1(res.Queue.MeanV()), fmtF1(res.Queue.MaxV()),
			fmtI(int(proto.Failures)), fmtB(res.Verdict.Stable),
		)
		return nil
	}

	for _, timing := range []inject.Timing{inject.TimingBurst, inject.TimingSpread, inject.TimingSawtooth} {
		if err := run(timing, false); err != nil {
			return nil, err
		}
	}
	// Ablation: burst timing with the Section 5 delays turned off.
	if err := run(inject.TimingBurst, true); err != nil {
		return nil, err
	}
	tbl.AddNote("window w=%d, λ=%.2f; the delays-off row shows the queue pressure the "+
		"randomized delays exist to spread out", w, lambda)
	return tbl, nil
}
