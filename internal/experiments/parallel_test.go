package experiments

import (
	"context"
	"reflect"
	"testing"
)

// TestRunAllParallelBitIdentical is the engine's determinism contract:
// fanning experiments across a worker pool must not change a single
// cell of their tables. E2 (SINR stability, replication-heavy) and E7
// (MAC thresholds) are the two runners named in the PR's acceptance
// criteria; E1 rides along as a cheap third sample.
func TestRunAllParallelBitIdentical(t *testing.T) {
	var runners []Runner
	for _, id := range []string{"E1", "E2", "E7"} {
		r, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s not registered", id)
		}
		runners = append(runners, r)
	}
	serial := RunAll(context.Background(), runners, Quick, 7, 1)
	parallel := RunAll(context.Background(), runners, Quick, 7, 8)
	if len(serial) != len(parallel) {
		t.Fatalf("outcome counts differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		id := serial[i].Runner.ID
		if serial[i].Err != nil || parallel[i].Err != nil {
			t.Fatalf("%s errors: serial %v, parallel %v", id, serial[i].Err, parallel[i].Err)
		}
		s, p := serial[i].Table, parallel[i].Table
		if !reflect.DeepEqual(s.Columns, p.Columns) || !reflect.DeepEqual(s.Rows, p.Rows) {
			t.Errorf("%s tables diverge between serial and parallel runs:\nserial:\n%s\nparallel:\n%s",
				id, s.Format(), p.Format())
		}
		if !reflect.DeepEqual(s.Notes, p.Notes) {
			t.Errorf("%s notes diverge: %v vs %v", id, s.Notes, p.Notes)
		}
	}
}

// TestRunAllReportsErrors checks that a failing runner surfaces its
// error without disturbing its neighbours.
func TestRunAllReportsErrors(t *testing.T) {
	boom := Runner{ID: "EX", Name: "exploding", Run: func(context.Context, Scale, int64) (*Table, error) {
		return nil, errSentinel
	}}
	ok, _ := ByID("E1")
	out := RunAll(context.Background(), []Runner{boom, ok}, Quick, 1, 2)
	if out[0].Err != errSentinel {
		t.Errorf("runner error not surfaced: %v", out[0].Err)
	}
	if out[1].Err != nil || out[1].Table == nil {
		t.Errorf("healthy runner disturbed: err=%v", out[1].Err)
	}
}

type sentinelError struct{}

func (sentinelError) Error() string { return "sentinel" }

var errSentinel = sentinelError{}

// TestRunAllCancelled checks a cancelled context skips unstarted
// experiments and marks them with the context error.
func TestRunAllCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r, _ := ByID("E1")
	out := RunAll(ctx, []Runner{r, r}, Quick, 1, 1)
	for i := range out {
		if out[i].Err == nil {
			t.Errorf("outcome %d has no error despite pre-cancelled context", i)
		}
	}
}
