package experiments

import (
	"context"
	"fmt"

	"dynsched/internal/core"
	"dynsched/internal/interference"
	"dynsched/internal/mac"
	"dynsched/internal/plan"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// E7MAC reproduces Corollaries 16 and 18 on the multiple-access
// channel: the symmetric (ID-free, acknowledgement-based) protocol
// built from Algorithm 2 is stable up to a constant fraction of 1/e,
// while the asymmetric Round-Robin-Withholding protocol is stable for
// rates approaching 1. Both collapse above 1, the channel capacity.
//
// Each rate gets its own ε = min(0.3, (1/λ−1)/2) — the largest headroom
// that still leaves (1+ε)λ < 1 — and a frame length that combines the
// fixed-point equation with the concentration bound, mirroring the
// paper's "sufficiently large T" requirement.
func E7MAC(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	stations := 8
	minFrames := int64(60)
	if scale == Quick {
		stations = 6
		minFrames = 25
	}
	model := interference.AllOnes{Links: stations}

	tbl := &Table{
		ID:    "E7",
		Title: "Multiple-access channel stability frontier, symmetric vs asymmetric",
		Claim: "Cor 16/18: symmetric stable for a constant fraction of 1/e, asymmetric for λ " +
			"approaching 1; nothing survives λ > 1",
		Columns: []string{"λ (packets/slot)", "symmetric (Alg 2)", "asymmetric (RRW)"},
	}

	type outcome struct {
		ok      bool
		skipped bool
	}
	probe := func(ctx context.Context, alg static.Algorithm, lambda, overload float64) (outcome, error) {
		eps := (1/lambda - 1) / 2
		if eps > 0.3 {
			eps = 0.3
		}
		if eps <= 0 {
			return outcome{skipped: true}, nil
		}
		tMin, err := core.SolveFrameLength(alg, stations, stations, lambda, eps)
		if err != nil {
			return outcome{skipped: true}, nil // frame equation diverges: over the throughput ceiling
		}
		t := core.ConcentrationFrameLength(lambda, eps, 4.5)
		if tMin > t {
			t = tMin
		}
		proto, err := core.New(core.Config{
			Model: model, Alg: alg, M: stations,
			Lambda: lambda, Eps: eps, T: t, Seed: seed,
		})
		if err != nil {
			return outcome{skipped: true}, nil
		}
		rate := lambda
		if overload > 0 {
			rate = overload
		}
		proc, err := singleHopGenerators(model, rate)
		if err != nil {
			return outcome{}, err
		}
		slots := minFrames * int64(t)
		res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed}, model, proc, proto)
		if err != nil {
			// A cancelled simulation must not masquerade as a probed
			// ceiling: surface the error so the table is dropped.
			return outcome{}, err
		}
		return outcome{ok: res.Verdict.Stable}, nil
	}
	render := func(o outcome) string {
		if o.skipped {
			return "not provisionable"
		}
		return fmtB(o.ok)
	}

	// Every probe is an independent, pure unit — a textbook execution
	// plan. Decompose the frontier into units and run them through the
	// shared planner pool; the table is assembled from the indexed
	// outcome, so it is bit-identical to the old serial loop for every
	// pool size.
	symmetric := mac.Decay{Delta: 0.5}
	asymmetric := mac.RoundRobinWithholding{}
	lambdas := []float64{0.05, 0.10, 0.15, 0.20, 0.45, 0.70, 0.85}
	type probeSpec struct {
		alg              static.Algorithm
		lambda, overload float64
	}
	var specs []probeSpec
	units := make([]plan.Unit, 0, 2*len(lambdas)+1)
	addUnit := func(name string, ps probeSpec) {
		units = append(units, plan.Unit{
			Index: len(specs),
			Key:   fmt.Sprintf("e7:%s:%v:%v", name, ps.lambda, ps.overload),
			Label: fmt.Sprintf("%s λ=%v", name, ps.lambda),
		})
		specs = append(specs, ps)
	}
	for _, lambda := range lambdas {
		addUnit("sym", probeSpec{alg: symmetric, lambda: lambda})
		addUnit("asym", probeSpec{alg: asymmetric, lambda: lambda})
	}
	// Overload: provision RRW for 0.85 but drive at 1.2 packets/slot to
	// show the channel capacity binds for everyone.
	addUnit("overload", probeSpec{alg: asymmetric, lambda: 0.85, overload: 1.2})

	out, err := plan.Execute(ctx, units, plan.Options[outcome]{}, func(uctx context.Context, u plan.Unit) (outcome, error) {
		ps := specs[u.Index]
		return probe(uctx, ps.alg, ps.lambda, ps.overload)
	})
	if err != nil {
		return nil, err
	}
	for i, lambda := range lambdas {
		tbl.AddRow(fmtF(lambda), render(out.Values[2*i]), render(out.Values[2*i+1]))
	}
	tbl.AddRow("1.200", "-", render(out.Values[len(specs)-1]))
	tbl.AddNote("symmetric protocol uses δ=0.5 (Algorithm 2's round schedule self-sustains only " +
		"for e^{-1/(1-q)} ≥ q, i.e. δ ≳ 0.45); its ceiling is thus ≈ 1/((1+δ)(1+ε)e) ≈ 0.19 — a " +
		"constant fraction of the paper's asymptotic 1/e ≈ 0.368")
	tbl.AddNote("'not provisionable' = the frame-length equation diverges at that λ (throughput ceiling)")
	return tbl, nil
}
