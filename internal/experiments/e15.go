package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"dynsched/internal/geom"
	"dynsched/internal/netgraph"
	"dynsched/internal/sinr"
)

// E15SpatialScale measures the tentpole guarantee of the spatially-
// indexed interference backing: the work a slot resolution performs per
// transmission follows local density, not the network size. The metric
// is deterministic — for every transmission the experiment counts the
// concurrent senders inside the ε-radius r(ε) = (p_max·β/(ε·S))^{1/α},
// the set the indexed resolver sums exactly (everything beyond is
// charged through per-cell aggregates and the closed-form far-field
// bound). The flat table, by contrast, touches every one of the k
// concurrent transmitters per receiver. Every instance keeps density
// constant (area ∝ n) and every slot activates the same fraction of
// links, so across rows the only change is the network size. Wall-clock
// numbers live in BenchmarkSlotResolve100k/1M; experiment tables must
// stay bit-identical across runs and pool sizes.
//
// Correctness rides along where the O(n²) table is affordable: ε = 0
// must agree with the flat path exactly, and the ε > 0 resolver must
// never report a success the exact SINR test rejects.
func E15SpatialScale(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{512, 2048}
	exactMax := 2048 // largest n for which the O(n²) table is built
	slots := 40
	if scale == Full {
		sizes = []int{4096, 16384, 65536, 262144}
		exactMax = 4096
		slots = 60
	}
	const eps = 0.05

	tbl := &Table{
		ID:    "E15",
		Title: "Spatially-indexed slot resolution: exact-summation work per transmission vs network size",
		Claim: "with a contribution floor ε the indexed backing sums only the senders within r(ε) — " +
			"a local-density constant — while the flat table touches all k concurrent transmitters",
		Columns: []string{"links", "active k", "near/tx (ε=0.05)", "flat terms/tx", "work ratio", "success", "agree ε=0"},
	}

	for _, n := range sizes {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(seed + int64(n)))
		side := 10 * math.Sqrt(float64(n))
		g := netgraph.RandomPairs(rng, n, side, 1, 4)
		prm := sinr.DefaultParams()
		powers, err := sinr.Powers(g, prm, sinr.PowerUniform, 1)
		if err != nil {
			return nil, err
		}
		prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
		indexed, err := sinr.NewFixedPowerOpts(g, prm, powers, sinr.WeightMonotone,
			sinr.Options{Backing: sinr.BackIndexed, FarFloor: eps})
		if err != nil {
			return nil, err
		}
		pmax := 0.0
		for _, p := range powers {
			pmax = math.Max(pmax, p)
		}

		// The slot workload: each slot activates a fixed 1/16 of the
		// links, so per-slot load per transmission is comparable across
		// sizes.
		k := n / 16
		slotTx := make([][]int, slots)
		for s := range slotTx {
			slotTx[s] = rng.Perm(n)[:k]
		}

		resolve := indexed.NewResolver()
		successes := 0
		nearTotal := 0
		sendPts := make([]geom.Point, k)
		var within []int32
		for _, tx := range slotTx {
			for _, ok := range resolve(tx) {
				if ok {
					successes++
				}
			}
			// Replay the resolver's truncation geometry: senders within
			// r(ε) of each receiver are summed exactly; the remainder is
			// covered by cell aggregates plus the far-field bound.
			for i, e := range tx {
				sendPts[i] = g.Pos(g.Link(netgraph.LinkID(e)).From)
			}
			grid := geom.NewGridIndex(sendPts, side/math.Sqrt(float64(k)))
			for _, e := range tx {
				link := g.Link(netgraph.LinkID(e))
				signal := powers[e] / math.Pow(g.LinkDist(link.ID), prm.Alpha)
				rex := math.Pow(pmax*prm.Beta/(eps*signal), 1/prm.Alpha)
				within = grid.Within(g.Pos(link.To), rex, sendPts, within[:0])
				nearTotal += len(within)
			}
		}
		nearPerTx := float64(nearTotal) / float64(slots*k)
		succRate := float64(successes) / float64(slots*k)

		agreeCell := "-"
		if n <= exactMax {
			flat, err := sinr.NewFixedPowerOpts(g, prm, powers, sinr.WeightMonotone,
				sinr.Options{Backing: sinr.BackCSR})
			if err != nil {
				return nil, err
			}
			zero, err := sinr.NewFixedPowerOpts(g, prm, powers, sinr.WeightMonotone,
				sinr.Options{Backing: sinr.BackIndexed})
			if err != nil {
				return nil, err
			}
			rZero, rFlat, rIdx := zero.NewResolver(), flat.NewResolver(), indexed.NewResolver()
			for _, tx := range slotTx {
				wantV, zeroV, idxV := rFlat(tx), rZero(tx), rIdx(tx)
				for i := range tx {
					if zeroV[i] != wantV[i] {
						return nil, fmt.Errorf("E15: ε=0 indexed diverged from the flat path at n=%d link %d", n, tx[i])
					}
					if idxV[i] && !wantV[i] {
						return nil, fmt.Errorf("E15: ε=%g reported a false success at n=%d link %d", eps, n, tx[i])
					}
				}
			}
			agreeCell = "true"
		}
		tbl.AddRow(fmtI(n), fmtI(k), fmtF1(nearPerTx), fmtI(k),
			fmtF1(float64(k)/math.Max(nearPerTx, 1)), fmtF(succRate), agreeCell)
	}
	tbl.AddNote("near/tx counts the concurrent senders inside r(ε) — the exact-summation set; "+
		"the indexed resolver additionally reads O(cells) aggregates for the far field (ε=%g)", eps)
	tbl.AddNote("flat terms/tx is the per-receiver cost of the precomputed table path: one add per concurrent transmitter")
	tbl.AddNote("'-' marks sizes where the O(n²) comparator table is impractical; wall-clock numbers: BenchmarkSlotResolve100k/1M")
	return tbl, nil
}
