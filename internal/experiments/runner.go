package experiments

import (
	"time"

	"dynsched/internal/sim"
)

// Outcome is one experiment's result within a suite run.
type Outcome struct {
	Runner  Runner
	Table   *Table
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments on a worker pool of `parallel`
// goroutines (0 = GOMAXPROCS, 1 = serial inline) and returns the
// outcomes in runner order.
//
// Every experiment is a pure function of (scale, seed) that builds its
// own models, RNGs, and protocols — no state is shared across runners —
// so the tables are bit-identical for every pool size. Only Elapsed
// (wall-clock, which gains contention under parallelism) may differ
// between serial and parallel runs.
func RunAll(runners []Runner, scale Scale, seed int64, parallel int) []Outcome {
	out := make([]Outcome, len(runners))
	sim.ForEach(len(runners), parallel, func(i int) {
		r := runners[i]
		start := time.Now()
		tbl, err := r.Run(scale, seed)
		out[i] = Outcome{Runner: r, Table: tbl, Err: err, Elapsed: time.Since(start)}
	})
	return out
}
