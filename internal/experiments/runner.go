package experiments

import (
	"context"
	"time"

	"dynsched/internal/sim"
)

// Outcome is one experiment's result within a suite run.
type Outcome struct {
	Runner  Runner
	Table   *Table
	Err     error
	Elapsed time.Duration
}

// RunAll executes the given experiments on a worker pool of `parallel`
// goroutines (0 = GOMAXPROCS, 1 = serial inline) and returns the
// outcomes in runner order. A nil ctx means context.Background(); when
// ctx is cancelled, running experiments stop at their next simulation
// slot, unstarted experiments are skipped, and every outcome without a
// table carries the context's error.
//
// Every experiment is a pure function of (scale, seed) that builds its
// own models, RNGs, and protocols — no state is shared across runners —
// so the tables are bit-identical for every pool size. Only Elapsed
// (wall-clock, which gains contention under parallelism) may differ
// between serial and parallel runs.
func RunAll(ctx context.Context, runners []Runner, scale Scale, seed int64, parallel int) []Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]Outcome, len(runners))
	sim.ForEachCtx(ctx, len(runners), parallel, func(i int) {
		r := runners[i]
		start := time.Now()
		tbl, err := r.Run(ctx, scale, seed)
		out[i] = Outcome{Runner: r, Table: tbl, Err: err, Elapsed: time.Since(start)}
	})
	if err := ctx.Err(); err != nil {
		for i := range out {
			if out[i].Table == nil && out[i].Err == nil {
				out[i] = Outcome{Runner: runners[i], Err: err}
			}
		}
	}
	return out
}
