package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/core"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/static"
)

// E10Ablation probes the design choices the paper's analysis leans on:
// (a) the clean-up phase — without it, packets lost to channel noise
// are stranded forever; (b) the per-edge selection probability 1/m —
// selecting too aggressively causes collisions between clean-up
// packets, selecting never starves them. Workload: identity-model line
// with a 2% lossy channel to generate a steady failure stream.
func E10Ablation(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	slots := int64(150000)
	if scale == Quick {
		slots = 40000
	}
	const hops = 4
	const lambda = 0.3
	g := netgraph.LineNetwork(hops+1, 1)
	base := interference.Identity{Links: g.NumLinks()}
	inst := netgraph.NewInstance(g, hops)
	path, ok := netgraph.ShortestPath(g, 0, hops)
	if !ok {
		return nil, errNoPath
	}

	tbl := &Table{
		ID:    "E10",
		Title: "Ablations: clean-up phase and selection probability (2% lossy channel)",
		Claim: "Sections 4.1/9: the clean-up phase with per-edge probability 1/m keeps failed " +
			"packets' buffers bounded; removing it strands every lost packet",
		Columns: []string{
			"variant", "failures", "cleanup-served", "failed-buffer end",
			"delivered/injected", "queue verdict",
		},
	}

	type variant struct {
		name           string
		cleanupProb    float64
		disableCleanup bool
	}
	variants := []variant{
		{name: "paper (prob 1/m)"},
		{name: "aggressive (prob 1)", cleanupProb: 1},
		{name: "timid (prob 1/m²)", cleanupProb: 1 / float64(inst.M()*inst.M())},
		{name: "no clean-up", disableCleanup: true},
	}

	for i, v := range variants {
		rng := rand.New(rand.NewSource(seed + int64(i)))
		model := &interference.Lossy{Inner: base, P: 0.02, Rand: rng.Float64}
		proto, err := core.New(core.Config{
			Model: model, Alg: static.FullParallel{}, M: inst.M(),
			Lambda: lambda, Eps: 0.25,
			CleanupProb: v.cleanupProb, DisableCleanup: v.disableCleanup,
			Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		proc, err := multiHopGenerators(model, []netgraph.Path{path}, lambda)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(ctx, sim.Config{Slots: slots, Seed: seed + int64(i)}, model, proc, proto)
		if err != nil {
			return nil, err
		}
		frac := float64(res.Delivered) / float64(max64(res.Injected, 1))
		tbl.AddRow(
			v.name,
			fmtI(int(proto.Failures)), fmtI(int(proto.CleanupDelivered)),
			fmtI(proto.FailedQueueLen()),
			fmtF(frac), fmtB(res.Verdict.Stable),
		)
	}
	tbl.AddNote("the timid variant drains failures ~m× slower; without the clean-up phase " +
		"every channel loss is permanent — failed-buffer = failures — so the failed population " +
		"grows linearly forever even while the total-queue verdict looks calm over a finite run")
	return tbl, nil
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
