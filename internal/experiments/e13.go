package experiments

import (
	"context"
	"math/rand"

	"dynsched/internal/capacity"
	"dynsched/internal/core"
	"dynsched/internal/geom"
	"dynsched/internal/inject"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
)

// E13Metrics contrasts Corollary 14's two regimes: fading metrics
// (the Euclidean plane with α above the doubling dimension, giving the
// O(log m) guarantee) versus general metrics (here a star metric, whose
// doubling dimension grows with m, giving only O(log²m)). The same
// power-control machinery runs over both — the library's metric
// abstraction is exactly the paper's.
func E13Metrics(ctx context.Context, scale Scale, seed int64) (*Table, error) {
	sizes := []int{8, 16, 24}
	slots := int64(40000)
	if scale == Quick {
		sizes = []int{8, 16}
		slots = 12000
	}
	rates := []float64{0.004, 0.008, 0.012, 0.018, 0.025, 0.035, 0.05}

	tbl := &Table{
		ID:    "E13",
		Title: "Power control in fading (Euclidean) vs general (star) metrics",
		Claim: "Cor 14: O(log m)-competitive in fading metrics (α above the doubling dimension), " +
			"O(log²m) in general metrics — general metrics may cost more but at most a log factor",
		Columns: []string{
			"m (links)",
			"euclid dd", "euclid λ*", "euclid capacity",
			"star dd", "star λ*", "star capacity",
		},
	}

	probe := func(g *netgraph.Graph, m int) (float64, int, error) {
		model, err := sinr.NewPowerControl(g, sinr.DefaultParams())
		if err != nil {
			return 0, 0, err
		}
		rng := rand.New(rand.NewSource(seed + int64(m)))
		cap := capacity.SlotCapacity(rng, model)
		alg := static.GreedyPowerControl{}
		best, err := maxStableRate(ctx, rates, slots, seed, model,
			func(lambda float64) (sim.Protocol, inject.Process, error) {
				proto, err := core.New(core.Config{
					Model: model, Alg: alg, M: m, Lambda: lambda, Eps: 0.25, Seed: seed,
				})
				if err != nil {
					return nil, nil, err
				}
				proc, err := singleHopGenerators(model, lambda)
				if err != nil {
					return nil, nil, err
				}
				return proto, proc, nil
			})
		if err != nil {
			return 0, 0, err
		}
		return best, cap, nil
	}

	for _, m := range sizes {
		rng := rand.New(rand.NewSource(seed + int64(m)))
		euclid := netgraph.RandomPairs(rng, m, 10*float64(intSqrtE11(m)), 1, 4)
		eRate, eCap, err := probe(euclid, m)
		if err != nil {
			return nil, err
		}
		eDD := geom.DoublingDimension(nodeDistances(euclid))
		star, err := starMetricPairs(rng, m)
		if err != nil {
			return nil, err
		}
		sRate, sCap, err := probe(star, m)
		if err != nil {
			return nil, err
		}
		sDD := geom.DoublingDimension(nodeDistances(star))
		tbl.AddRow(fmtI(m),
			fmtF1(eDD), fmtF(eRate), fmtI(eCap),
			fmtF1(sDD), fmtF(sRate), fmtI(sCap))
	}
	tbl.AddNote("dd = estimated doubling dimension; α = 3, so the Euclidean instances are " +
		"fading metrics (dd < α) while the star's dd grows past α with m — the Corollary 14 split")
	tbl.AddNote("star metric: d(u,v) = w_u + w_v with random weights; links pair adjacent leaves")
	return tbl, nil
}

// nodeDistances materializes a graph's node-distance matrix.
func nodeDistances(g *netgraph.Graph) [][]float64 {
	n := g.NumNodes()
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i != j {
				out[i][j] = g.NodeDist(netgraph.NodeID(i), netgraph.NodeID(j))
			}
		}
	}
	return out
}

// starMetricPairs builds m sender→receiver links over a star metric:
// node v sits at weight w_v from an implicit hub and
// d(u, v) = w_u + w_v. Pairs use small weights (short links) scattered
// among larger ones so joint scheduling is non-trivial.
func starMetricPairs(rng *rand.Rand, m int) (*netgraph.Graph, error) {
	n := 2 * m
	g := netgraph.New(n)
	w := make([]float64, n)
	for i := range w {
		w[i] = 0.5 + rng.Float64()*2 // weights in [0.5, 2.5]
	}
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = w[i] + w[j]
			}
		}
	}
	if err := g.SetMetric(dist); err != nil {
		return nil, err
	}
	for i := 0; i < m; i++ {
		g.MustAddLink(netgraph.NodeID(2*i), netgraph.NodeID(2*i+1))
	}
	return g, nil
}
