package sinr

import (
	"math"
	"sort"

	"dynsched/internal/geom"
	"dynsched/internal/interference"
)

// Floor-sparse analysis-matrix construction for the indexed backing.
//
// The weight matrices of Sections 6.1/6.2 are dense in principle, but in
// a fading metric (α above the plane's doubling dimension, Corollary 14)
// almost all entries are negligible: the affectance of a link decays
// like d^{-α} in the cross distance. With a contribution floor ε > 0 the
// indexed backing therefore stores only the entries that can reach ε.
// For every row a conservative candidate radius is derived from the
// floor — any pair beyond it is provably below ε — the candidates are
// collected from a static spatial index in O(local density), evaluated
// with exactly the same floating-point expression as the dense build,
// and kept when they reach the floor. Construction costs O(n + nnz)
// index work instead of O(n²) pair evaluations.

// buildWeightsFloorSparse constructs the fixed-power analysis matrix
// with entries below the contribution floor dropped. Rows whose SINR
// margin is non-positive make every affectance 1 and admit no radius
// cutoff; such degenerate instances fall back to the exact dense build.
func (m *FixedPower) buildWeightsFloorSparse() {
	n := m.g.NumLinks()
	eps := m.opts.FarFloor
	alpha, beta := m.prm.Alpha, m.prm.Beta
	betaNoise := beta * m.prm.Noise
	minMargin := math.Inf(1)
	for e := 0; e < n; e++ {
		if mg := m.signals[e] - betaNoise; mg < minMargin {
			minMargin = mg
		}
	}
	if !(minMargin > 0) {
		// A non-positive margin saturates whole rows at affectance 1:
		// no floor radius exists, so build exactly.
		m.buildWeightsExact()
		return
	}
	senderIdx := geom.NewGridIndex(m.sendPos, m.opts.CellSize)
	var recvIdx *geom.GridIndex
	if m.kind == WeightMonotone {
		recvIdx = geom.NewGridIndex(m.recvPos, m.opts.CellSize)
	}
	invAlpha := 1 / alpha
	m.w = nil
	m.rows = interference.SparseFromRowsParallel(n, func(e int, emit func(int32, float64)) {
		margin := m.signals[e] - betaNoise
		// a_p(e2 → e) ≥ ε needs gain ≥ ε·margin/β, i.e. the interfering
		// sender within rFwd of e's receiver (pmax bounds its power).
		rFwd := math.Pow(beta*m.pmax/(eps*margin), invAlpha)
		cand := senderIdx.Within(m.recvPos[e], rFwd, m.sendPos, nil)
		if m.kind == WeightMonotone {
			// The reverse term a_p(e → e2) is evaluated against e2's
			// margin; minMargin gives the conservative shared radius for
			// e's fixed transmit power.
			rRev := math.Pow(beta*m.powers[e]/(eps*minMargin), invAlpha)
			cand = recvIdx.Within(m.sendPos[e], rRev, m.recvPos, cand)
		}
		cand = append(cand, int32(e)) // the unit diagonal is always stored
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		prev := int32(-1)
		for _, c := range cand {
			if c == prev {
				continue
			}
			prev = c
			e2 := int(c)
			if e2 == e {
				emit(c, 1)
				continue
			}
			var v float64
			switch m.kind {
			case WeightAffectance:
				v = affectanceFromGain(m.gainAt(e, e2), m.signals[e], betaNoise, beta)
			case WeightMonotone:
				if m.lens[e] <= m.lens[e2] {
					a1 := affectanceFromGain(m.gainAt(e2, e), m.signals[e2], betaNoise, beta)
					a2 := affectanceFromGain(m.gainAt(e, e2), m.signals[e], betaNoise, beta)
					v = math.Max(a1, a2)
				}
			}
			if v >= eps {
				emit(c, v)
			}
		}
	})
}

// buildWeightsFloorSparse constructs the power-control distance-ratio
// matrix with entries below the contribution floor dropped. An entry
// dOwn/cp1 + dOwn/cp2 reaches ε only if one term reaches ε/2, which
// bounds both cross distances by d(ℓ)·(2/ε)^{1/α} — the candidate
// radius served by the static sender and receiver indexes.
func (m *PowerControl) buildWeightsFloorSparse() {
	n := m.g.NumLinks()
	eps := m.opts.FarFloor
	alpha := m.prm.Alpha
	senderIdx := geom.NewGridIndex(m.sendPos, m.opts.CellSize)
	recvIdx := geom.NewGridIndex(m.recvPos, m.opts.CellSize)
	scale := math.Pow(2/eps, 1/alpha)
	m.w = nil
	m.rows = interference.SparseFromRowsParallel(n, func(e int, emit func(int32, float64)) {
		radius := m.lens[e] * scale
		cand := senderIdx.Within(m.recvPos[e], radius, m.sendPos, nil)
		cand = recvIdx.Within(m.sendPos[e], radius, m.recvPos, cand)
		cand = append(cand, int32(e))
		sort.Slice(cand, func(i, j int) bool { return cand[i] < cand[j] })
		dOwn := m.lenAlpha[e]
		prev := int32(-1)
		for _, c := range cand {
			if c == prev {
				continue
			}
			prev = c
			e2 := int(c)
			if e2 == e {
				emit(c, 1)
				continue
			}
			if m.lens[e] > m.lens[e2] {
				continue // charged to the shorter link only
			}
			v := 0.0
			if cp := m.crossAt(e2, e); cp >= 0 {
				v += dOwn / cp
			} else {
				v = 1
			}
			if cp := m.crossAt(e, e2); cp >= 0 {
				v += dOwn / cp
			} else {
				v = 1
			}
			v = math.Min(1, v)
			if v >= eps {
				emit(c, v)
			}
		}
	})
}
