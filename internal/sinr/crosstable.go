package sinr

import (
	"dynsched/internal/interference"
)

// crossDenseMaxLinks is the largest link count for which cross-link
// tables are stored densely: an n×n float64 table costs 8n² bytes, so
// the cap keeps a single table at ≤ 32 MiB. Above it the table switches
// to a CSR backing that stores only non-zero entries — for geometric
// instances at that scale many cross gains underflow to exactly zero,
// and the CSR lookup returns that same exact zero for the dropped
// entries, so both backings produce bit-identical sums.
const crossDenseMaxLinks = 2048

// crossTable is a precomputed table over ordered link pairs, indexed as
// (at, src) — by convention "at" is the receiving (charged) link and
// "src" the interfering one. It is built once at model construction so
// the per-slot hot loops never call math.Pow, and is immutable (hence
// safe for concurrent readers) afterwards.
//
// Dense tables are flat row-major float64 slices; large tables are
// backed by the CSR container, where absent entries read as exact 0 —
// the value the entry function produced for them (only exact zeros are
// dropped at build time).
type crossTable struct {
	n     int
	dense []float64 // row-major [at*n + src]; nil when CSR-backed
	rows  *interference.Sparse
}

// buildCrossTable evaluates entry(at, src) for every ordered pair,
// fanning rows out across GOMAXPROCS goroutines. entry must be safe for
// concurrent calls and deterministic; the table stores its results
// verbatim (including ±Inf and sentinel values), so later lookups are
// bit-identical to calling entry directly.
func buildCrossTable(n int, entry func(at, src int) float64) *crossTable {
	return buildCrossTableOpts(n, Options{}, entry)
}

// buildCrossTableOpts is buildCrossTable with the backing decided by
// model options: BackDense and BackCSR force their storage, BackAuto
// switches on the (possibly overridden) dense cap. Every backing stores
// the same entry values, so lookups are bit-identical across all three.
func buildCrossTableOpts(n int, opt Options, entry func(at, src int) float64) *crossTable {
	t := &crossTable{n: n}
	dense := n <= opt.denseMax()
	switch opt.Backing {
	case BackDense:
		dense = true
	case BackCSR:
		dense = false
	}
	if dense {
		t.dense = make([]float64, n*n)
		interference.ParallelRows(n, func(at int) {
			row := t.dense[at*n : (at+1)*n]
			for src := 0; src < n; src++ {
				row[src] = entry(at, src)
			}
		})
		return t
	}
	t.rows = buildCrossCSR(n, entry)
	return t
}

// buildCrossCSR is the CSR backing used above crossDenseMaxLinks; split
// out so tests can exercise it at small n.
func buildCrossCSR(n int, entry func(at, src int) float64) *interference.Sparse {
	return interference.SparseFromWeightsParallel(n, entry)
}

// at returns the table entry for (at, src). CSR-backed tables return
// exact 0 for dropped entries — the value they were built with.
func (t *crossTable) at(at, src int) float64 {
	if t.dense != nil {
		return t.dense[at*t.n+src]
	}
	return t.rows.At(at, src)
}

// denseRow returns the contiguous row for the receiving link, or nil
// when the table is CSR-backed. Hot loops grab the row once and index
// it directly, avoiding the per-entry bounds arithmetic of at.
func (t *crossTable) denseRow(at int) []float64 {
	if t.dense == nil {
		return nil
	}
	return t.dense[at*t.n : (at+1)*t.n]
}

// csrRow returns the stored columns and values of the receiving link's
// row (CSR backing only; call denseRow first). Columns are strictly
// ascending, so callers with an ascending source list can merge-join
// instead of binary-searching per entry.
func (t *crossTable) csrRow(at int) ([]int32, []float64) {
	return t.rows.Row(at)
}

// gather fills dst[j] with the entry for (at, srcs[j]). On a CSR
// backing an ascending srcs list is merge-joined in one pass (out-of-
// order entries fall back to a binary search), with absent entries
// reading as exact 0 — the value they were built with.
func (t *crossTable) gather(at int, srcs []int, dst []float64) {
	if row := t.denseRow(at); row != nil {
		for j, src := range srcs {
			dst[j] = row[src]
		}
		return
	}
	cols, vals := t.csrRow(at)
	k, prev := 0, -1
	for j, src := range srcs {
		if src < prev {
			dst[j] = t.rows.At(at, src)
			continue
		}
		prev = src
		for k < len(cols) && int(cols[k]) < src {
			k++
		}
		if k < len(cols) && int(cols[k]) == src {
			dst[j] = vals[k]
		} else {
			dst[j] = 0
		}
	}
}
