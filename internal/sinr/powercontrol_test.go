package sinr

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/geom"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func pcModel(t *testing.T, g *netgraph.Graph) *PowerControl {
	t.Helper()
	m, err := NewPowerControl(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPowerControlWeightInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := netgraph.RandomPairs(rng, 12, 60, 1, 6)
	m := pcModel(t, g)
	if err := interference.ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePowersSatisfiesSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := netgraph.RandomPairs(rng, 12, 120, 1, 3)
	m := pcModel(t, g)
	prm := m.prm
	solved := 0
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(5)
		seen := make(map[int]bool)
		var set []int
		for len(set) < k {
			e := rng.Intn(g.NumLinks())
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		powers, ok := m.SolvePowers(set)
		if !ok {
			continue
		}
		solved++
		// Every member must meet the SINR constraint under these powers.
		for i, e := range set {
			le := netgraph.LinkID(e)
			signal := powers[i] / math.Pow(g.LinkDist(le), prm.Alpha)
			interf := prm.Noise
			for j, e2 := range set {
				if i == j {
					continue
				}
				d := g.Pos(g.Link(netgraph.LinkID(e2)).From).Dist(g.Pos(g.Link(le).To))
				interf += powers[j] / math.Pow(d, prm.Alpha)
			}
			if signal < prm.Beta*interf*(1-1e-6) {
				t.Fatalf("trial %d: link %d violates SINR under solved powers (signal %v < β·I %v)",
					trial, e, signal, prm.Beta*interf)
			}
		}
	}
	if solved == 0 {
		t.Fatal("SolvePowers never succeeded; instance generator too dense")
	}
}

func TestSolvePowersSingleton(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := netgraph.RandomPairs(rng, 5, 50, 1, 4)
	m := pcModel(t, g)
	for e := 0; e < g.NumLinks(); e++ {
		if _, ok := m.SolvePowers([]int{e}); !ok {
			t.Errorf("singleton set {%d} unsolvable", e)
		}
	}
	if _, ok := m.SolvePowers(nil); !ok {
		t.Error("empty set unsolvable")
	}
}

func TestSolvePowersInfeasibleWhenColocated(t *testing.T) {
	// Two links whose senders sit on top of the other's receiver cannot
	// both satisfy any power assignment with β ≥ 1: each interferer is
	// as close to the receiver as the intended sender is far.
	g := netgraph.New(4)
	if err := g.SetPositions([]geom.Point{{X: 0}, {X: 10}, {X: 10}, {X: 0}}); err != nil {
		t.Fatal(err)
	}
	g.MustAddLink(0, 1) // 0 → 10
	g.MustAddLink(2, 3) // 10 → 0 (sender collocated with link 0's receiver)
	m := pcModel(t, g)
	if _, ok := m.SolvePowers([]int{0, 1}); ok {
		t.Error("collocated crossing links judged jointly feasible")
	}
}

func TestPowerControlSuccessesShedsNotAll(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	g := netgraph.RandomPairs(rng, 10, 30, 1, 4) // dense: some shedding likely
	m := pcModel(t, g)
	tx := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	succ := m.Successes(tx)
	any := false
	for _, ok := range succ {
		any = any || ok
	}
	if !any {
		t.Error("power control served no link at all in a dense slot")
	}
	// Duplicates still fail.
	s := m.Successes([]int{0, 0})
	if s[0] || s[1] {
		t.Error("duplicate attempts succeeded")
	}
}

func TestPowerControlSuccessesRespectSINR(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	g := netgraph.RandomPairs(rng, 8, 200, 1, 2) // sparse: most slots feasible
	m := pcModel(t, g)
	tx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	succ := m.Successes(tx)
	served := 0
	for _, ok := range succ {
		if ok {
			served++
		}
	}
	if served < 6 {
		t.Errorf("sparse instance served only %d/8 links", served)
	}
}
