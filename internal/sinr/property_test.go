package sinr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// TestAffectanceRangeProperty: affectance always lies in [0, 1], for
// random geometries and every built-in power family.
func TestAffectanceRangeProperty(t *testing.T) {
	prm := DefaultParams()
	f := func(seed int64, kindPick uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := netgraph.RandomPairs(rng, 6, 30, 0.5, 5)
		kind := []PowerKind{PowerUniform, PowerLinear, PowerSquareRoot}[int(kindPick)%3]
		powers, err := Powers(g, prm, kind, 1)
		if err != nil {
			return false
		}
		for a := 0; a < g.NumLinks(); a++ {
			for b := 0; b < g.NumLinks(); b++ {
				v := Affectance(g, prm, powers, netgraph.LinkID(a), netgraph.LinkID(b))
				if v < 0 || v > 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestWeightInvariantsProperty: every fixed-power model construction
// satisfies the W structural invariants on random instances.
func TestWeightInvariantsProperty(t *testing.T) {
	prm := DefaultParams()
	f := func(seed int64, monotone bool) bool {
		rng := rand.New(rand.NewSource(seed))
		g := netgraph.RandomPairs(rng, 8, 40, 1, 4)
		kind, wk := PowerLinear, WeightAffectance
		if monotone {
			kind, wk = PowerUniform, WeightMonotone
		}
		powers, err := Powers(g, prm, kind, 1)
		if err != nil {
			return false
		}
		m, err := NewFixedPower(g, prm, powers, wk)
		if err != nil {
			return false
		}
		return interference.ValidateWeights(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestSuccessMonotoneInInterferers: adding transmitters can only turn
// successes into failures, never the reverse — the physical layer's
// fundamental monotonicity.
func TestSuccessMonotoneInInterferers(t *testing.T) {
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(71))
	g := netgraph.RandomPairs(rng, 12, 50, 1, 4)
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		perm := rng.Perm(g.NumLinks())
		k := 2 + rng.Intn(6)
		sub := perm[:k/2+1]
		super := perm[:k]
		subOK := m.Successes(sub)
		superOK := m.Successes(super)
		for i, e := range sub {
			// Find e's verdict in the superset.
			for j, e2 := range super {
				if e2 == e && superOK[j] && !subOK[i] {
					t.Fatalf("trial %d: link %d failed in subset but succeeded in superset", trial, e)
				}
			}
		}
	}
}

// TestPowerControlWeightZeroTowardLonger: the §6.2 matrix charges
// interference to the shorter link only.
func TestPowerControlWeightZeroTowardLonger(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := netgraph.RandomPairs(rng, 10, 40, 1, 5)
	m, err := NewPowerControl(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 10; a++ {
		for b := 0; b < 10; b++ {
			if a == b {
				continue
			}
			da, db := g.LinkDist(netgraph.LinkID(a)), g.LinkDist(netgraph.LinkID(b))
			if da > db && m.Weight(a, b) != 0 {
				t.Fatalf("W[%d][%d] = %v but link %d is longer", a, b, m.Weight(a, b), a)
			}
		}
	}
}

// TestSolvePowersSubsetFeasible: if a set admits powers, so does every
// subset (fewer interferers can only help).
func TestSolvePowersSubsetFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := netgraph.RandomPairs(rng, 10, 80, 1, 3)
	m, err := NewPowerControl(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 50; trial++ {
		perm := rng.Perm(10)
		k := 2 + rng.Intn(5)
		set := perm[:k]
		if _, ok := m.SolvePowers(set); !ok {
			continue
		}
		sub := set[:k-1]
		if _, ok := m.SolvePowers(sub); !ok {
			t.Fatalf("trial %d: superset feasible but subset %v is not", trial, sub)
		}
	}
}
