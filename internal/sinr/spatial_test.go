package sinr

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"dynsched/internal/netgraph"
)

// indexedOpts is the standard indexed-backing option set used by tests.
func indexedOpts(eps float64) Options {
	return Options{Backing: BackIndexed, FarFloor: eps}
}

// randomSlots drives count random slots (with duplicates allowed) through
// both resolvers and demands identical verdicts.
func requireSameSlots(t *testing.T, rng *rand.Rand, a, b slotModel, n, count int) {
	t.Helper()
	resA, resB := a.NewResolver(), b.NewResolver()
	for trial := 0; trial < count; trial++ {
		k := 1 + rng.Intn(2*n)
		tx := make([]int, k)
		for i := range tx {
			tx[i] = rng.Intn(n)
		}
		wantS, gotS := a.Successes(tx), b.Successes(tx)
		wantR, gotR := resA(tx), resB(tx)
		for i := range tx {
			if wantS[i] != gotS[i] {
				t.Fatalf("trial %d: Successes[%d] = %v, want %v (tx %v)", trial, i, gotS[i], wantS[i], tx)
			}
			if wantR[i] != gotR[i] {
				t.Fatalf("trial %d: resolver[%d] = %v, want %v (tx %v)", trial, i, gotR[i], wantR[i], tx)
			}
		}
	}
}

// slotModel is the slice of the model API the comparison tests need.
type slotModel interface {
	Successes(tx []int) []bool
	NewResolver() func(tx []int) []bool
}

// TestFixedPowerIndexedZeroFloorBitIdentity: at ε = 0 the indexed backing
// must be bit-identical to the table backings — same Successes, same
// resolver verdicts, same weight matrix, entry for entry.
func TestFixedPowerIndexedZeroFloorBitIdentity(t *testing.T) {
	prm := DefaultParams()
	prm.Noise = 1e-4
	for _, tc := range []struct {
		name string
		kind WeightKind
		pk   PowerKind
	}{
		{"affectance/linear", WeightAffectance, PowerLinear},
		{"monotone/uniform", WeightMonotone, PowerUniform},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(101))
			g := netgraph.RandomPairs(rng, 48, 70, 1, 4)
			powers, err := Powers(g, prm, tc.pk, 1)
			if err != nil {
				t.Fatal(err)
			}
			table, err := NewFixedPower(g, prm, powers, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			indexed, err := NewFixedPowerOpts(g, prm, powers, tc.kind, indexedOpts(0))
			if err != nil {
				t.Fatal(err)
			}
			n := g.NumLinks()
			requireSameSlots(t, rng, table, indexed, n, 200)
			for e := 0; e < n; e++ {
				for e2 := 0; e2 < n; e2++ {
					if w1, w2 := table.Weight(e, e2), indexed.Weight(e, e2); w1 != w2 {
						t.Fatalf("W[%d][%d]: table %v, indexed %v (bit-identity broken)", e, e2, w1, w2)
					}
				}
			}
			if got := indexed.Table().Backing; got != "indexed" {
				t.Fatalf("Table().Backing = %q, want indexed", got)
			}
		})
	}
}

// TestPowerControlIndexedZeroFloorBitIdentity: the power-control model's
// indexed backing at ε = 0 matches the table model bit for bit —
// feasibility verdicts, shedding decisions, solved powers, and weights.
func TestPowerControlIndexedZeroFloorBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	g := netgraph.RandomPairs(rng, 40, 60, 1, 4)
	prm := DefaultParams()
	table, err := NewPowerControl(g, prm)
	if err != nil {
		t.Fatal(err)
	}
	indexed, err := NewPowerControlOpts(g, prm, indexedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumLinks()
	requireSameSlots(t, rng, table, indexed, n, 120)
	for e := 0; e < n; e++ {
		for e2 := 0; e2 < n; e2++ {
			if w1, w2 := table.Weight(e, e2), indexed.Weight(e, e2); w1 != w2 {
				t.Fatalf("W[%d][%d]: table %v, indexed %v (bit-identity broken)", e, e2, w1, w2)
			}
		}
	}
	for trial := 0; trial < 40; trial++ {
		perm := rng.Perm(n)
		set := perm[:2+rng.Intn(6)]
		sort.Ints(set)
		p1, ok1 := table.SolvePowers(set)
		p2, ok2 := indexed.SolvePowers(set)
		if ok1 != ok2 {
			t.Fatalf("trial %d: feasibility differs: table %v, indexed %v", trial, ok1, ok2)
		}
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("trial %d: power[%d]: table %v, indexed %v", trial, i, p1[i], p2[i])
			}
		}
	}
}

// TestFixedPowerFarFloorSoundness: at ε > 0 the indexed estimate
// Î = near + tail must dominate the true interference at every receiver
// (the measured tail never exceeds the stated bound), so every success
// the indexed resolver reports is a true SINR success.
func TestFixedPowerFarFloorSoundness(t *testing.T) {
	prm := DefaultParams()
	prm.Noise = 1e-4
	rng := rand.New(rand.NewSource(107))
	g := netgraph.RandomPairs(rng, 96, 120, 1, 4)
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := NewFixedPower(g, prm, powers, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumLinks()
	for _, eps := range []float64{1e-6, 1e-3, 0.05} {
		m, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, indexedOpts(eps))
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 60; trial++ {
			k := 2 + rng.Intn(n)
			tx := rng.Perm(n)[:k]
			sort.Ints(tx)
			// Reproduce the resolver's slot setup to read Î directly.
			sc := m.scratch.Get().(*fpScratch)
			sc.rs.Count(tx)
			sort.Ints(sc.rs.Uniq)
			sel := sc.sel[:0]
			ptotal := 0.0
			for _, e := range sc.rs.Uniq {
				sel = append(sel, int32(e))
				ptotal += m.powers[e]
			}
			sc.sel = sel
			sc.grid.Fill(m.sendPos, sel, m.powers, m.opts.CellSize)
			var ring []int32
			for _, e := range tx {
				near, tail := m.indexedInterference(sc, e, ptotal, &ring)
				truth := prm.Noise
				for _, e2 := range tx {
					if e2 != e {
						truth += m.powers[e2] / math.Pow(m.sendPos[e2].Dist(m.recvPos[e]), prm.Alpha)
					}
				}
				if est := near + tail; est < truth*(1-1e-12) {
					t.Fatalf("eps=%g trial %d link %d: estimate %v below true interference %v", eps, trial, e, est, truth)
				}
				if near > truth*(1+1e-12) {
					t.Fatalf("eps=%g trial %d link %d: near part %v exceeds true interference %v", eps, trial, e, near, truth)
				}
			}
			sc.rs.End(tx)
			m.scratch.Put(sc)
			// End to end: indexed success ⊆ exact success.
			got, want := m.Successes(tx), exact.Successes(tx)
			for i := range tx {
				if got[i] && !want[i] {
					t.Fatalf("eps=%g trial %d: link %d reported success but fails the exact SINR test", eps, trial, tx[i])
				}
			}
		}
	}
}

// TestFixedPowerFloorSparseWeights: the ε > 0 analysis matrix keeps every
// dense entry that reaches the floor — bit-identical — and drops only
// entries provably below it.
func TestFixedPowerFloorSparseWeights(t *testing.T) {
	prm := DefaultParams()
	prm.Noise = 1e-4
	rng := rand.New(rand.NewSource(109))
	g := netgraph.RandomPairs(rng, 64, 90, 1, 4)
	const eps = 1e-3
	for _, tc := range []struct {
		name string
		kind WeightKind
		pk   PowerKind
	}{
		{"affectance/linear", WeightAffectance, PowerLinear},
		{"monotone/uniform", WeightMonotone, PowerUniform},
	} {
		t.Run(tc.name, func(t *testing.T) {
			powers, err := Powers(g, prm, tc.pk, 1)
			if err != nil {
				t.Fatal(err)
			}
			dense, err := NewFixedPower(g, prm, powers, tc.kind)
			if err != nil {
				t.Fatal(err)
			}
			sparse, err := NewFixedPowerOpts(g, prm, powers, tc.kind, indexedOpts(eps))
			if err != nil {
				t.Fatal(err)
			}
			checkFloorSparse(t, g.NumLinks(), eps, dense.Weight, sparse.Weight)
			if rows := sparse.WeightRows(); rows.NNZ() >= g.NumLinks()*g.NumLinks() {
				t.Fatalf("floor-sparse matrix is not sparse: %d entries", rows.NNZ())
			}
		})
	}
}

// TestPowerControlFloorSparseWeights: same contract for the §6.2
// distance-ratio matrix.
func TestPowerControlFloorSparseWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	g := netgraph.RandomPairs(rng, 64, 90, 1, 4)
	prm := DefaultParams()
	const eps = 1e-3
	dense, err := NewPowerControl(g, prm)
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := NewPowerControlOpts(g, prm, indexedOpts(eps))
	if err != nil {
		t.Fatal(err)
	}
	checkFloorSparse(t, g.NumLinks(), eps, dense.Weight, sparse.Weight)
}

// checkFloorSparse verifies the floor-sparse contract entry by entry:
// every stored entry equals the dense value bit for bit, every dropped
// off-diagonal entry is below the floor in the dense matrix.
func checkFloorSparse(t *testing.T, n int, eps float64, dense, sparse func(e, e2 int) float64) {
	t.Helper()
	kept, dropped := 0, 0
	for e := 0; e < n; e++ {
		for e2 := 0; e2 < n; e2++ {
			d, s := dense(e, e2), sparse(e, e2)
			if s != 0 {
				if s != d {
					t.Fatalf("W[%d][%d]: sparse %v, dense %v (stored entries must match bitwise)", e, e2, s, d)
				}
				kept++
				continue
			}
			if e == e2 {
				t.Fatalf("diagonal W[%d][%d] dropped", e, e2)
			}
			if d >= eps {
				t.Fatalf("W[%d][%d] = %v ≥ floor %v but was dropped", e, e2, d, eps)
			}
			dropped++
		}
	}
	if kept == 0 || dropped == 0 {
		t.Fatalf("degenerate instance: %d kept, %d dropped entries — tune the test geometry", kept, dropped)
	}
}

// TestOptionsBackingSelection pins the configurable dense/CSR threshold
// and forced backings.
func TestOptionsBackingSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	g := netgraph.RandomPairs(rng, 24, 40, 1, 4)
	prm := DefaultParams()
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	build := func(opt Options) *FixedPower {
		t.Helper()
		m, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, opt)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	// Default: n = 24 is far below crossDenseMaxLinks, so dense.
	if m := build(Options{}); m.gain.dense == nil || m.Table().Backing != "dense" {
		t.Fatalf("default backing = %q (dense table: %v), want dense", m.Table().Backing, m.gain.dense != nil)
	}
	// Lowering the threshold flips the same instance to CSR.
	if m := build(Options{DenseMaxLinks: 8}); m.gain.rows == nil || m.Table().Backing != "csr" {
		t.Fatalf("DenseMaxLinks=8 backing = %q, want csr", m.Table().Backing)
	}
	if m := build(Options{DenseMaxLinks: 8}); m.Table().DenseMaxLinks != 8 {
		t.Fatalf("TableInfo.DenseMaxLinks = %d, want 8", m.Table().DenseMaxLinks)
	}
	// Forced backings override the threshold in both directions.
	if m := build(Options{Backing: BackCSR}); m.gain.rows == nil {
		t.Fatal("BackCSR did not force the CSR backing")
	}
	if m := build(Options{Backing: BackDense, DenseMaxLinks: 2}); m.gain.dense == nil {
		t.Fatal("BackDense did not force the dense backing")
	}
	// All four backings agree on outcomes.
	table := build(Options{})
	for _, opt := range []Options{{Backing: BackCSR}, {Backing: BackIndexed}} {
		requireSameSlots(t, rng, table, build(opt), g.NumLinks(), 50)
	}
}

// TestOptionsValidation pins the option error paths and ParseBacking.
func TestOptionsValidation(t *testing.T) {
	for s, want := range map[string]Backing{
		"": BackAuto, "auto": BackAuto, "dense": BackDense,
		"csr": BackCSR, "indexed": BackIndexed,
	} {
		got, err := ParseBacking(s)
		if err != nil || got != want {
			t.Fatalf("ParseBacking(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseBacking("mmap"); err == nil {
		t.Fatal("ParseBacking accepted an unknown backing")
	}
	for name, opt := range map[string]Options{
		"farfloor without indexed": {FarFloor: 0.1},
		"farfloor ≥ 1":             {Backing: BackIndexed, FarFloor: 1},
		"negative farfloor":        {Backing: BackIndexed, FarFloor: -0.1},
		"negative cell":            {Backing: BackIndexed, CellSize: -1},
		"negative threshold":       {DenseMaxLinks: -1},
	} {
		if err := opt.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", name, opt)
		}
	}
	rng := rand.New(rand.NewSource(131))
	g := netgraph.RandomPairs(rng, 8, 20, 1, 4)
	prm := DefaultParams()
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	// A metric override has no planar geometry to index.
	dm := make([][]float64, g.NumNodes())
	for i := range dm {
		dm[i] = make([]float64, g.NumNodes())
		for j := range dm[i] {
			if i != j {
				dm[i][j] = g.NodeDist(netgraph.NodeID(i), netgraph.NodeID(j))
			}
		}
	}
	gm := netgraph.New(g.NumNodes())
	for e := 0; e < g.NumLinks(); e++ {
		l := g.Link(netgraph.LinkID(e))
		gm.MustAddLink(l.From, l.To)
	}
	gm.SetMetric(dm)
	if _, err := NewFixedPowerOpts(gm, prm, powers, WeightMonotone, indexedOpts(0)); err == nil {
		t.Fatal("indexed backing accepted a metric-only graph")
	}
	if _, err := NewPowerControlOpts(gm, prm, indexedOpts(0)); err == nil {
		t.Fatal("power-control indexed backing accepted a metric-only graph")
	}
}
