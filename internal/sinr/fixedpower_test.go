package sinr

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/geom"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func linearModel(t *testing.T, g *netgraph.Graph) *FixedPower {
	t.Helper()
	prm := DefaultParams()
	p, err := Powers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, p, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func uniformModel(t *testing.T, g *netgraph.Graph) *FixedPower {
	t.Helper()
	prm := DefaultParams()
	p, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, p, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestFixedPowerWeightInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := netgraph.RandomPairs(rng, 15, 60, 1, 5)
	for _, m := range []*FixedPower{linearModel(t, g), uniformModel(t, g)} {
		if err := interference.ValidateWeights(m); err != nil {
			t.Errorf("%s: %v", m.Name(), err)
		}
	}
}

func TestFixedPowerConstructorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	g := netgraph.RandomPairs(rng, 3, 50, 1, 2)
	prm := DefaultParams()
	p, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFixedPower(g, prm, p[:2], WeightAffectance); err == nil {
		t.Error("wrong power count accepted")
	}
	if _, err := NewFixedPower(g, prm, p, WeightKind(0)); err == nil {
		t.Error("bad weight kind accepted")
	}
	bad := append([]float64(nil), p...)
	bad[0] = 0
	if _, err := NewFixedPower(g, prm, bad, WeightAffectance); err == nil {
		t.Error("zero power accepted")
	}
	noPos := netgraph.New(2)
	noPos.MustAddLink(0, 1)
	if _, err := NewFixedPower(noPos, prm, []float64{1}, WeightAffectance); err == nil {
		t.Error("graph without positions accepted")
	}
}

// TestSINRSuccessMatchesAffectanceSum verifies the exact correspondence
// the analysis relies on: with fixed powers and no affectance caps
// binding, a transmission succeeds iff the summed affectance of the
// other transmissions at its link is at most 1.
func TestSINRSuccessMatchesAffectanceSum(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	g := netgraph.RandomPairs(rng, 10, 40, 1, 3)
	prm := DefaultParams()
	powers, err := Powers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 100; trial++ {
		k := 1 + rng.Intn(6)
		seen := make(map[int]bool)
		var set []int
		for len(set) < k {
			e := rng.Intn(g.NumLinks())
			if !seen[e] {
				seen[e] = true
				set = append(set, e)
			}
		}
		succ := m.Successes(set)
		for i, e := range set {
			sum := 0.0
			capped := false
			for _, e2 := range set {
				if e2 == e {
					continue
				}
				a := Affectance(g, prm, powers, netgraph.LinkID(e2), netgraph.LinkID(e))
				if a == 1 {
					capped = true
				}
				sum += a
			}
			if capped {
				continue // the min{1,·} cap breaks the exact equivalence
			}
			want := sum <= 1
			if succ[i] != want {
				t.Fatalf("trial %d link %d: success=%v but affectance sum=%v", trial, e, succ[i], sum)
			}
		}
	}
}

func TestIsolatedLinksAllSucceed(t *testing.T) {
	// Far-apart pairs: everything transmits simultaneously and succeeds.
	g := pairGraph(t, 8, 500, 1)
	m := linearModel(t, g)
	tx := []int{0, 1, 2, 3, 4, 5, 6, 7}
	for i, ok := range m.Successes(tx) {
		if !ok {
			t.Errorf("isolated link %d failed", i)
		}
	}
}

func TestCrowdedLinksInterfere(t *testing.T) {
	// Pairs packed closely: parallel transmission must fail somewhere.
	g := pairGraph(t, 6, 1.5, 1)
	m := uniformModel(t, g)
	tx := []int{0, 1, 2, 3, 4, 5}
	all := true
	for _, ok := range m.Successes(tx) {
		all = all && ok
	}
	if all {
		t.Error("tightly packed links all succeeded — interference model broken")
	}
	// But each alone succeeds.
	for e := 0; e < 6; e++ {
		if s := m.Successes([]int{e}); !s[0] {
			t.Errorf("lone link %d failed", e)
		}
	}
}

func TestDuplicateAttemptsFail(t *testing.T) {
	g := pairGraph(t, 2, 100, 1)
	m := linearModel(t, g)
	s := m.Successes([]int{0, 0, 1})
	if s[0] || s[1] {
		t.Error("duplicate attempts on a link succeeded")
	}
	if !s[2] {
		t.Error("independent link failed alongside duplicates")
	}
}

func TestMonotoneWeightChargesShorterLink(t *testing.T) {
	// Build two pairs with distinct lengths; the monotone matrix must
	// be zero from the shorter toward the longer link's row... i.e.
	// W[longer][shorter] = 0 and W[shorter][longer] ≥ 0.
	g := netgraph.New(4)
	pts := []geom.Point{{X: 0}, {X: 1}, {X: 10}, {X: 14}}
	if err := g.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	short := g.MustAddLink(0, 1) // length 1
	long := g.MustAddLink(2, 3)  // length 4
	m := uniformModel(t, g)
	if w := m.Weight(int(long), int(short)); w != 0 {
		t.Errorf("W[long][short] = %v, want 0 (interference charged to the shorter link)", w)
	}
	if w := m.Weight(int(short), int(long)); w < 0 {
		t.Errorf("W[short][long] = %v", w)
	}
}

func TestLinkLen(t *testing.T) {
	g := pairGraph(t, 3, 50, 2.5)
	m := linearModel(t, g)
	for e := 0; e < 3; e++ {
		if l := m.LinkLen(e); math.Abs(l-2.5) > 1e-9 {
			t.Errorf("LinkLen(%d) = %v, want 2.5", e, l)
		}
	}
}
