package sinr

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/netgraph"
)

// TestFixedPowerGainTableMatchesFormula pins the tentpole bit-identity
// guarantee at its root: every gain table entry equals the expression
// the pre-table hot loop evaluated inline — p(ℓ')/d(s', r)^α — bit for
// bit. Everything downstream (Successes, the resolver, the weight
// matrices) sums these same values in the same order, so equality here
// is what makes the end-to-end results byte-identical.
func TestFixedPowerGainTableMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := netgraph.RandomPairs(rng, 48, 80, 1, 4)
	prm := DefaultParams()
	powers, err := Powers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumLinks()
	for e := 0; e < n; e++ {
		recv := g.Link(netgraph.LinkID(e)).To
		for e2 := 0; e2 < n; e2++ {
			d := g.NodeDist(g.Link(netgraph.LinkID(e2)).From, recv)
			want := powers[e2] / math.Pow(d, prm.Alpha)
			got := m.gain.at(e, e2)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("gain[%d][%d] = %v, want %v (bit-identity broken)", e, e2, got, want)
			}
		}
	}
}

// TestFixedPowerWeightsMatchAffectance pins that the table-driven weight
// build reproduces the Affectance-based construction bit for bit, for
// both weight kinds.
func TestFixedPowerWeightsMatchAffectance(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := netgraph.RandomPairs(rng, 40, 80, 1, 4)
	prm := DefaultParams()
	prm.Noise = 1e-6
	for _, tc := range []struct {
		kind WeightKind
		pk   PowerKind
	}{{WeightAffectance, PowerLinear}, {WeightMonotone, PowerUniform}} {
		powers, err := Powers(g, prm, tc.pk, 1)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewFixedPower(g, prm, powers, tc.kind)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumLinks()
		for e := 0; e < n; e++ {
			for e2 := 0; e2 < n; e2++ {
				var want float64
				switch {
				case e == e2:
					want = 1
				case tc.kind == WeightAffectance:
					want = Affectance(g, prm, powers, netgraph.LinkID(e2), netgraph.LinkID(e))
				default:
					if m.lens[e] <= m.lens[e2] {
						a1 := Affectance(g, prm, powers, netgraph.LinkID(e), netgraph.LinkID(e2))
						a2 := Affectance(g, prm, powers, netgraph.LinkID(e2), netgraph.LinkID(e))
						want = math.Max(a1, a2)
					}
				}
				if got := m.Weight(e, e2); got != want {
					t.Fatalf("%s W[%d][%d] = %v, want %v (bit-identity broken)", kindName(tc.kind), e, e2, got, want)
				}
			}
		}
	}
}

// referenceFixedSuccesses is the pre-table Successes implementation,
// kept verbatim (map bookkeeping and all) as the oracle for the
// table-driven fast paths.
func referenceFixedSuccesses(m *FixedPower, tx []int) []bool {
	g, prm := m.Graph(), m.Params()
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, g.NumLinks())
	for _, e := range tx {
		counts[e]++
	}
	uniq := make([]int, 0, len(tx))
	for e, c := range counts {
		if c > 0 {
			uniq = append(uniq, e)
		}
	}
	ok := make(map[int]bool, len(uniq))
	for _, e := range uniq {
		if counts[e] != 1 {
			continue
		}
		interf := prm.Noise
		recv := g.Link(netgraph.LinkID(e)).To
		for _, e2 := range uniq {
			if e2 == e {
				continue
			}
			d := g.NodeDist(g.Link(netgraph.LinkID(e2)).From, recv)
			if d == 0 {
				interf = math.Inf(1)
				break
			}
			interf += m.Power(e2) / math.Pow(d, prm.Alpha)
		}
		signal := m.Power(e) / math.Pow(m.LinkLen(e), prm.Alpha)
		ok[e] = signal >= prm.Beta*interf
	}
	for i, e := range tx {
		out[i] = counts[e] == 1 && ok[e]
	}
	return out
}

// TestFixedPowerSuccessesMatchesReference drives random slots through
// Successes, the resolver, and the pre-table reference, demanding
// identical outcomes — including duplicate links and co-located nodes.
func TestFixedPowerSuccessesMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := netgraph.RandomPairs(rng, 32, 40, 1, 4)
	prm := DefaultParams()
	prm.Noise = 1e-3
	powers, err := Powers(g, prm, PowerSquareRoot, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	resolve := m.NewResolver()
	for trial := 0; trial < 300; trial++ {
		k := 1 + rng.Intn(20)
		tx := make([]int, k)
		for i := range tx {
			tx[i] = rng.Intn(g.NumLinks())
		}
		want := referenceFixedSuccesses(m, tx)
		got := m.Successes(tx)
		res := resolve(tx)
		for i := range tx {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Successes[%d] = %v, reference %v (tx %v)", trial, i, got[i], want[i], tx)
			}
			if res[i] != want[i] {
				t.Fatalf("trial %d: resolver[%d] = %v, reference %v (tx %v)", trial, i, res[i], want[i], tx)
			}
		}
	}
}

// TestCrossTableCSRBackingMatchesDense pins that the CSR backing above
// the dense threshold returns the same entries as the dense backing —
// including dropped exact zeros and stored sentinels.
func TestCrossTableCSRBackingMatchesDense(t *testing.T) {
	const n = 12
	entry := func(at, src int) float64 {
		switch (at*n + src) % 5 {
		case 0:
			return 0 // dropped by CSR; must read back as exact 0
		case 1:
			return -1 // sentinel; must be stored
		case 2:
			return math.Inf(1)
		default:
			return float64(at*n+src) * 0.5
		}
	}
	dense := buildCrossTable(n, entry)
	if dense.dense == nil {
		t.Fatal("small table should be dense-backed")
	}
	// Force the CSR path by building through the same helper the large
	// tables use.
	big := crossTable{n: n, rows: buildCrossCSR(n, entry)}
	for at := 0; at < n; at++ {
		for src := 0; src < n; src++ {
			d, c := dense.at(at, src), big.at(at, src)
			if d != c && !(math.IsNaN(d) && math.IsNaN(c)) {
				t.Fatalf("entry (%d,%d): dense %v, csr %v", at, src, d, c)
			}
		}
	}
}
