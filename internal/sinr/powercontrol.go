package sinr

import (
	"fmt"
	"math"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// PowerControl is the SINR model of Section 6.2 in which the protocol may
// choose an individual power for every transmission. Its analysis matrix
// is the distance-ratio construction
//
//	W[ℓ][ℓ'] = min{1, d(ℓ)^α/d(s,r')^α + d(ℓ)^α/d(s',r)^α}   if d(ℓ) ≤ d(ℓ'),
//	W[ℓ][ℓ'] = 0                                              otherwise,
//
// and its physical side decides success by actually solving for a power
// vector: a set S admits powers exactly when the linear system
// p ≥ β(A·p + ν·d^α) has a finite non-negative solution, which the model
// finds by fixed-point iteration (the minimal solution when the spectral
// radius of βA is below one). Links for which no joint power vector
// exists are shed greedily, most-interfered first.
type PowerControl struct {
	g    *netgraph.Graph
	prm  Params
	lens []float64
	w    [][]float64
	rows *interference.Sparse

	// maxIter and powerCap bound the fixed-point iteration.
	maxIter  int
	powerCap float64
}

var (
	_ interference.Model        = (*PowerControl)(nil)
	_ interference.RowsProvider = (*PowerControl)(nil)
)

// NewPowerControl builds a power-control SINR model on g.
func NewPowerControl(g *netgraph.Graph, prm Params) (*PowerControl, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if !g.HasDistances() {
		return nil, fmt.Errorf("sinr: graph has neither positions nor a metric")
	}
	n := g.NumLinks()
	m := &PowerControl{
		g:        g,
		prm:      prm,
		lens:     make([]float64, n),
		maxIter:  200,
		powerCap: 1e18,
	}
	for i := 0; i < n; i++ {
		m.lens[i] = g.LinkDist(netgraph.LinkID(i))
		if m.lens[i] <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive length", i)
		}
	}
	m.buildWeights()
	return m, nil
}

func (m *PowerControl) buildWeights() {
	n := m.g.NumLinks()
	m.w = make([][]float64, n)
	alpha := m.prm.Alpha
	for e := 0; e < n; e++ {
		m.w[e] = make([]float64, n)
		for e2 := 0; e2 < n; e2++ {
			if e == e2 {
				m.w[e][e2] = 1
				continue
			}
			if m.lens[e] > m.lens[e2] {
				continue // charged to the shorter link only
			}
			le, le2 := netgraph.LinkID(e), netgraph.LinkID(e2)
			dOwn := math.Pow(m.lens[e], alpha)
			dToTheirRecv := m.g.SenderReceiverDist(le, le2)     // d(s, r')
			dFromTheirSender := m.g.SenderReceiverDist(le2, le) // d(s', r)
			v := 0.0
			if dToTheirRecv > 0 {
				v += dOwn / math.Pow(dToTheirRecv, alpha)
			} else {
				v = 1
			}
			if dFromTheirSender > 0 {
				v += dOwn / math.Pow(dFromTheirSender, alpha)
			} else {
				v = 1
			}
			m.w[e][e2] = math.Min(1, v)
		}
	}
	// The shorter-link-only charging rule zeroes roughly half the matrix;
	// expose the CSR form for O(nnz) measure evaluation.
	m.rows = interference.SparseFromWeights(n, func(e, e2 int) float64 { return m.w[e][e2] })
}

// WeightRows implements interference.RowsProvider.
func (m *PowerControl) WeightRows() *interference.Sparse { return m.rows }

// Name implements interference.Model.
func (m *PowerControl) Name() string { return "sinr-power-control" }

// NumLinks implements interference.Model.
func (m *PowerControl) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model.
func (m *PowerControl) Weight(e, e2 int) float64 { return m.w[e][e2] }

// Graph returns the underlying communication graph.
func (m *PowerControl) Graph() *netgraph.Graph { return m.g }

// LinkLen returns the length of link e (shortest-first ordering hook for
// centralized schedulers).
func (m *PowerControl) LinkLen(e int) float64 { return m.lens[e] }

// SolvePowers attempts to find a power vector under which every link in
// set succeeds simultaneously. It returns the powers and true on
// success, or nil and false when no such vector exists (within the
// iteration budget).
func (m *PowerControl) SolvePowers(set []int) ([]float64, bool) {
	k := len(set)
	if k == 0 {
		return nil, true
	}
	alpha, beta, nu := m.prm.Alpha, m.prm.Beta, m.prm.Noise
	// gain[i][j]: normalized interference coupling from set[j]'s sender
	// into set[i]'s receiver, scaled by set[i]'s own path loss.
	gain := make([][]float64, k)
	noiseTerm := make([]float64, k)
	for i := 0; i < k; i++ {
		gain[i] = make([]float64, k)
		li := netgraph.LinkID(set[i])
		noiseTerm[i] = nu * math.Pow(m.lens[set[i]], alpha)
		recv := m.g.Link(li).To
		for j := 0; j < k; j++ {
			if i == j {
				continue
			}
			d := m.g.NodeDist(m.g.Link(netgraph.LinkID(set[j])).From, recv)
			if d == 0 {
				return nil, false // co-located interferer: unservable
			}
			gain[i][j] = math.Pow(m.lens[set[i]], alpha) / math.Pow(d, alpha)
		}
	}
	// Fixed-point iteration for the minimal solution of
	// p = β(gain·p + noiseTerm); diverges iff ρ(β·gain) ≥ 1.
	p := make([]float64, k)
	next := make([]float64, k)
	for it := 0; it < m.maxIter; it++ {
		maxRel := 0.0
		for i := 0; i < k; i++ {
			s := noiseTerm[i]
			for j := 0; j < k; j++ {
				s += gain[i][j] * p[j]
			}
			next[i] = beta * s
			if next[i] > m.powerCap {
				return nil, false
			}
			den := math.Max(next[i], 1e-300)
			rel := math.Abs(next[i]-p[i]) / den
			if rel > maxRel {
				maxRel = rel
			}
		}
		p, next = next, p
		if maxRel < 1e-9 {
			out := make([]float64, k)
			copy(out, p)
			// Scale up marginally so the ≥ comparisons hold strictly
			// despite floating-point rounding.
			for i := range out {
				out[i] *= 1 + 1e-9
				if out[i] == 0 {
					out[i] = beta * noiseTerm[i] * (1 + 1e-9)
				}
			}
			return out, true
		}
	}
	return nil, false
}

// Successes implements interference.Model. Duplicate attempts on a link
// fail; among the remaining links the model solves for a joint power
// vector, shedding the most-interfered link until the residual set is
// feasible. Shed links fail, the rest succeed.
func (m *PowerControl) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, m.g.NumLinks())
	for _, e := range tx {
		counts[e]++
	}
	var set []int
	for e, c := range counts {
		if c == 1 {
			set = append(set, e)
		}
	}
	served := make(map[int]bool, len(set))
	for len(set) > 0 {
		if _, ok := m.SolvePowers(set); ok {
			for _, e := range set {
				served[e] = true
			}
			break
		}
		set = m.shedWorst(set)
	}
	for i, e := range tx {
		out[i] = counts[e] == 1 && served[e]
	}
	return out
}

// shedWorst removes the link that suffers the largest summed weight from
// the rest of the set — the one the analysis matrix identifies as most
// interfered.
func (m *PowerControl) shedWorst(set []int) []int {
	worst, worstVal := 0, -1.0
	for i, e := range set {
		sum := 0.0
		for _, e2 := range set {
			if e2 != e {
				// Use the symmetrized coupling so long links can be shed too.
				sum += math.Max(m.w[e][e2], m.w[e2][e])
			}
		}
		if sum > worstVal {
			worst, worstVal = i, sum
		}
	}
	out := make([]int, 0, len(set)-1)
	out = append(out, set[:worst]...)
	out = append(out, set[worst+1:]...)
	return out
}
