package sinr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dynsched/internal/geom"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// PowerControl is the SINR model of Section 6.2 in which the protocol may
// choose an individual power for every transmission. Its analysis matrix
// is the distance-ratio construction
//
//	W[ℓ][ℓ'] = min{1, d(ℓ)^α/d(s,r')^α + d(ℓ)^α/d(s',r)^α}   if d(ℓ) ≤ d(ℓ'),
//	W[ℓ][ℓ'] = 0                                              otherwise,
//
// and its physical side decides success by actually solving for a power
// vector: a set S admits powers exactly when the linear system
// p ≥ β(A·p + ν·d^α) has a finite non-negative solution, which the model
// finds by fixed-point iteration (the minimal solution when the spectral
// radius of βA is below one). Links for which no joint power vector
// exists are shed greedily, most-interfered first.
type PowerControl struct {
	g    *netgraph.Graph
	prm  Params
	opts Options
	info TableInfo
	lens []float64
	// lenAlpha[e] = d(ℓ)^α, the per-link path-loss power.
	lenAlpha []float64
	// cross.at(e, e2) = d(s', r)^α for ℓ = e, ℓ' = e2: the α-th power of
	// the cross distance from e2's sender to e's receiver, precomputed so
	// the feasibility solver and the weight build never call math.Pow.
	// A zero cross distance (co-located interferer) is stored as the -1
	// sentinel, since Pow values are otherwise non-negative. Nil under
	// the indexed backing, which evaluates entries on demand — the same
	// operations, so bit-identical values.
	cross *crossTable

	// Indexed-backing state: per-link endpoint positions.
	sendPos []geom.Point
	recvPos []geom.Point

	// The analysis matrix. Table backings build it eagerly; the indexed
	// backing builds it on first use — exact at ε = 0, floor-sparse
	// through the spatial index at ε > 0.
	weightsOnce sync.Once
	w           [][]float64
	rows        *interference.Sparse

	// maxIter and powerCap bound the fixed-point iteration.
	maxIter  int
	powerCap float64

	// scratch pools pcScratch values so Successes and SolvePowers stay
	// allocation-free in steady state even on a model shared across
	// goroutines.
	scratch sync.Pool
}

var (
	_ interference.Model                = (*PowerControl)(nil)
	_ interference.RowsProvider         = (*PowerControl)(nil)
	_ interference.SlotResolver         = (*PowerControl)(nil)
	_ interference.ParallelResolver     = (*PowerControl)(nil)
	_ interference.ResolveStatsProvider = (*PowerControl)(nil)
	_ chunkRunner                       = (*pcScratch)(nil)
)

// pcScratch phase modes: which row body runChunks executes.
const (
	pcModeGain = iota
	pcModeIter
	pcModeShed
)

// pcScratch is the reusable buffer set of one feasibility computation:
// slot counting, the candidate set, a per-link served mark, and the
// flat k×k gain system of the fixed-point solver. It doubles as the
// solver's parallel fan-out job (chunkRunner): the gain-row build, each
// fixed-point iteration pass, and the shed sums shard across rows with
// per-worker scratch, and the serial early-returns become atomic flags
// checked after the pass — same boolean outcomes, scratch-only
// divergence, so results are bit-identical at every worker count.
type pcScratch struct {
	rs     *interference.ResolverScratch
	set    []int
	served []bool
	gain   []float64 // flat k×k
	noise  []float64
	p      []float64
	next   []float64

	m       *PowerControl
	workers int
	job     parJob
	mode    int
	curSet  []int
	wcross  [][]float64 // per-worker gathered table rows
	wmax    []float64   // per-worker iteration max-relative-change
	shedSum []float64   // per-candidate symmetrized interference sums
	failed  atomic.Bool // gain build hit a co-located pair
	capped  atomic.Bool // iteration exceeded the power cap
}

// runChunks implements chunkRunner for the solver's active phase.
func (sc *pcScratch) runChunks(slot int) {
	for {
		lo, hi := sc.job.claim()
		if lo < 0 {
			return
		}
		switch sc.mode {
		case pcModeGain:
			sc.m.gainRows(sc, slot, lo, hi)
		case pcModeIter:
			sc.m.iterRows(sc, slot, lo, hi)
		default:
			sc.m.shedSums(sc, lo, hi)
		}
	}
}

// ensureWorkerBufs sizes the per-worker scratch slices for the
// resolver's worker count (always at least one slot, for the serial
// path).
func (sc *pcScratch) ensureWorkerBufs() {
	slots := sc.workers
	if slots < 1 {
		slots = 1
	}
	for len(sc.wcross) < slots {
		sc.wcross = append(sc.wcross, nil)
	}
	for len(sc.wmax) < slots {
		sc.wmax = append(sc.wmax, 0)
	}
}

// NewPowerControl builds a power-control SINR model on g with default
// options. The O(n²) cross-distance table and weight matrix are
// precomputed in parallel; the results are bit-identical to the serial
// per-pair evaluation.
func NewPowerControl(g *netgraph.Graph, prm Params) (*PowerControl, error) {
	return NewPowerControlOpts(g, prm, Options{})
}

// NewPowerControlOpts is NewPowerControl with explicit storage options.
// Under the indexed backing (which requires planar positions) no cross
// table is materialised — cross distances are evaluated on demand with
// the identical operations, and the analysis matrix is built lazily:
// exactly at FarFloor = 0, floor-sparse through the spatial index
// otherwise. The physical feasibility solve is exact in every backing;
// only the analysis matrix carries the ε envelope.
func NewPowerControlOpts(g *netgraph.Graph, prm Params, opt Options) (*PowerControl, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !g.HasDistances() {
		return nil, fmt.Errorf("sinr: graph has neither positions nor a metric")
	}
	n := g.NumLinks()
	m := &PowerControl{
		g:        g,
		prm:      prm,
		opts:     opt,
		info:     opt.tableInfo(n),
		lens:     make([]float64, n),
		lenAlpha: make([]float64, n),
		maxIter:  200,
		powerCap: 1e18,
	}
	for i := 0; i < n; i++ {
		m.lens[i] = g.LinkDist(netgraph.LinkID(i))
		if m.lens[i] <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive length", i)
		}
		m.lenAlpha[i] = math.Pow(m.lens[i], prm.Alpha)
	}
	if opt.Backing == BackIndexed {
		if !g.HasPositions() || g.HasMetric() {
			return nil, fmt.Errorf("sinr: the indexed backing requires planar node positions (no metric override)")
		}
		m.sendPos = make([]geom.Point, n)
		m.recvPos = make([]geom.Point, n)
		for e := 0; e < n; e++ {
			l := g.Link(netgraph.LinkID(e))
			m.sendPos[e] = g.Pos(l.From)
			m.recvPos[e] = g.Pos(l.To)
		}
	} else {
		m.cross = buildCrossTableOpts(n, opt, func(at, src int) float64 {
			d := g.SenderReceiverDist(netgraph.LinkID(src), netgraph.LinkID(at))
			if d == 0 {
				return -1 // sentinel: exact zero distance, not an underflowed power
			}
			return math.Pow(d, prm.Alpha)
		})
		m.ensureWeights()
	}
	m.scratch.New = func() any {
		return &pcScratch{
			rs:      interference.NewResolverScratch(n),
			set:     make([]int, 0, n),
			served:  make([]bool, n),
			m:       m,
			workers: effectiveWorkers(opt.Parallelism),
		}
	}
	return m, nil
}

// crossAt returns d(s_src, r_at)^α, or the -1 sentinel for an exactly
// zero cross distance: a table read when a table exists, the identical
// formula on demand under the indexed backing.
func (m *PowerControl) crossAt(at, src int) float64 {
	if m.cross != nil {
		return m.cross.at(at, src)
	}
	d := m.sendPos[src].Dist(m.recvPos[at])
	if d == 0 {
		return -1
	}
	return math.Pow(d, m.prm.Alpha)
}

// ensureWeights builds the analysis matrix on first use.
func (m *PowerControl) ensureWeights() {
	m.weightsOnce.Do(func() {
		if m.opts.Backing == BackIndexed && m.opts.FarFloor > 0 {
			m.buildWeightsFloorSparse()
			return
		}
		m.buildWeightsExact()
	})
}

// buildWeightsExact derives the distance-ratio matrix — from the
// precomputed tables when they exist, from the identical on-demand
// evaluation under the indexed backing — fanned out across rows. Entry
// for entry it matches the direct construction bit for bit.
func (m *PowerControl) buildWeightsExact() {
	n := m.g.NumLinks()
	m.w = make([][]float64, n)
	interference.ParallelRows(n, func(e int) {
		row := make([]float64, n)
		row[e] = 1
		dOwn := m.lenAlpha[e]
		for e2 := 0; e2 < n; e2++ {
			if e == e2 {
				continue
			}
			if m.lens[e] > m.lens[e2] {
				continue // charged to the shorter link only
			}
			// d(s, r')^α with ℓ = e, ℓ' = e2 is crossAt(e2, e); the -1
			// sentinel marks an exactly-zero cross distance.
			v := 0.0
			if cp := m.crossAt(e2, e); cp >= 0 {
				v += dOwn / cp
			} else {
				v = 1
			}
			if cp := m.crossAt(e, e2); cp >= 0 {
				v += dOwn / cp
			} else {
				v = 1
			}
			row[e2] = math.Min(1, v)
		}
		m.w[e] = row
	})
	// The shorter-link-only charging rule zeroes roughly half the matrix;
	// expose the CSR form for O(nnz) measure evaluation.
	m.rows = interference.SparseFromWeightsParallel(n, func(e, e2 int) float64 { return m.w[e][e2] })
}

// WeightRows implements interference.RowsProvider.
func (m *PowerControl) WeightRows() *interference.Sparse {
	m.ensureWeights()
	return m.rows
}

// Name implements interference.Model.
func (m *PowerControl) Name() string { return "sinr-power-control" }

// NumLinks implements interference.Model.
func (m *PowerControl) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model.
func (m *PowerControl) Weight(e, e2 int) float64 {
	m.ensureWeights()
	if m.w != nil {
		return m.w[e][e2]
	}
	return m.rows.At(e, e2)
}

// weightAt is Weight for internal hot paths that know the matrix is
// already built.
func (m *PowerControl) weightAt(e, e2 int) float64 {
	if m.w != nil {
		return m.w[e][e2]
	}
	return m.rows.At(e, e2)
}

// Table reports which backing the model resolved to and with which
// knobs — the run-diagnostics record.
func (m *PowerControl) Table() TableInfo { return m.info }

// Graph returns the underlying communication graph.
func (m *PowerControl) Graph() *netgraph.Graph { return m.g }

// Params returns the physical constants.
func (m *PowerControl) Params() Params { return m.prm }

// LinkLen returns the length of link e (shortest-first ordering hook for
// centralized schedulers).
func (m *PowerControl) LinkLen(e int) float64 { return m.lens[e] }

// solveInto runs the fixed-point iteration for set over the scratch
// buffers. On success the minimal solution is left in sc.p (unscaled)
// and the noise terms in sc.noise; the caller decides whether to copy
// them out. No allocations occur once the scratch has grown to the
// working set size. Large systems shard the gain-row build and each
// iteration pass across the worker pool; every row is produced by its
// one claimant with the serial operation sequence, and the convergence
// test reduces per-worker maxima over the same value set, so the
// returned outcome — and the solution on success — are bit-identical
// at every worker count.
func (m *PowerControl) solveInto(sc *pcScratch, set []int) bool {
	k := len(set)
	if k == 0 {
		return true
	}
	growFloats(&sc.gain, k*k)
	growFloats(&sc.noise, k)
	sc.curSet = set
	sc.ensureWorkerBufs()

	// Phase 1: build the gain rows. A co-located pair makes the set
	// unservable; serially that was an early return, in parallel it is
	// a flag checked after the pass — same false outcome either way.
	sc.failed.Store(false)
	if sc.workers > 1 && k >= parallelMinRows {
		sc.mode = pcModeGain
		runParallel(&sc.job, sc, k, sc.workers)
	} else {
		m.gainRows(sc, 0, 0, k)
	}
	if sc.failed.Load() {
		return false
	}

	// Phase 2: fixed-point iteration for the minimal solution of
	// p = β(gain·p + noiseTerm); diverges iff ρ(β·gain) ≥ 1. Each pass
	// reads p and writes disjoint next entries, so rows fan out; the
	// swap and the convergence decision stay serial.
	p := growFloats(&sc.p, k)
	next := growFloats(&sc.next, k)
	for i := range p {
		p[i] = 0
	}
	par := sc.workers > 1 && k >= parallelMinIterRows
	for it := 0; it < m.maxIter; it++ {
		sc.capped.Store(false)
		maxRel := 0.0
		if par {
			for w := range sc.wmax {
				sc.wmax[w] = 0
			}
			sc.mode = pcModeIter
			runParallel(&sc.job, sc, k, sc.workers)
			if sc.capped.Load() {
				return false
			}
			for _, v := range sc.wmax {
				if v > maxRel {
					maxRel = v
				}
			}
		} else {
			sc.wmax[0] = 0
			m.iterRows(sc, 0, 0, k)
			if sc.capped.Load() {
				return false
			}
			maxRel = sc.wmax[0]
		}
		p, next = next, p
		sc.p, sc.next = p, next
		if maxRel < 1e-9 {
			return true
		}
	}
	return false
}

// gainRows fills gain rows [lo, hi): gain[i*k+j] is the normalized
// interference coupling from set[j]'s sender into set[i]'s receiver,
// scaled by set[i]'s own path loss — read straight from the precomputed
// tables (set is ascending, so a CSR backing gathers each row in one
// merge pass), or evaluated on demand under the indexed backing. slot
// selects the worker's private gathered-row buffer.
func (m *PowerControl) gainRows(sc *pcScratch, slot, lo, hi int) {
	set := sc.curSet
	k := len(set)
	nu := m.prm.Noise
	crossRow := growFloats(&sc.wcross[slot], k)
	for i := lo; i < hi; i++ {
		if sc.failed.Load() {
			return
		}
		lenA := m.lenAlpha[set[i]]
		sc.noise[i] = nu * lenA
		row := sc.gain[i*k : (i+1)*k]
		if m.cross != nil {
			m.cross.gather(set[i], set, crossRow)
		} else {
			for j, src := range set {
				crossRow[j] = m.crossAt(set[i], src)
			}
		}
		for j := 0; j < k; j++ {
			if i == j {
				row[j] = 0
				continue
			}
			cp := crossRow[j]
			if cp < 0 {
				sc.failed.Store(true) // co-located interferer: unservable
				return
			}
			row[j] = lenA / cp
		}
	}
}

// iterRows runs one fixed-point pass over rows [lo, hi), accumulating
// the worker's maximum relative change into wmax[slot]. Exceeding the
// power cap sets the capped flag; the whole iteration then reports
// divergence exactly as the serial early return did.
func (m *PowerControl) iterRows(sc *pcScratch, slot, lo, hi int) {
	k := len(sc.curSet)
	beta := m.prm.Beta
	p, next, noiseTerm := sc.p, sc.next, sc.noise
	maxRel := sc.wmax[slot]
	for i := lo; i < hi; i++ {
		if sc.capped.Load() {
			return
		}
		s := noiseTerm[i]
		row := sc.gain[i*k : (i+1)*k]
		for j := 0; j < k; j++ {
			s += row[j] * p[j]
		}
		v := beta * s
		next[i] = v
		if v > m.powerCap {
			sc.capped.Store(true)
			return
		}
		den := math.Max(v, 1e-300)
		rel := math.Abs(v-p[i]) / den
		if rel > maxRel {
			maxRel = rel
		}
	}
	sc.wmax[slot] = maxRel
}

// growFloats resizes *buf to n entries, reallocating only when the
// capacity is insufficient, and returns the resized slice.
func growFloats(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// SolvePowers attempts to find a power vector under which every link in
// set succeeds simultaneously. It returns the powers and true on
// success, or nil and false when no such vector exists (within the
// iteration budget).
func (m *PowerControl) SolvePowers(set []int) ([]float64, bool) {
	k := len(set)
	if k == 0 {
		return nil, true
	}
	sc := m.scratch.Get().(*pcScratch)
	ok := m.solveInto(sc, set)
	if !ok {
		m.scratch.Put(sc)
		return nil, false
	}
	out := make([]float64, k)
	copy(out, sc.p)
	// Scale up marginally so the ≥ comparisons hold strictly
	// despite floating-point rounding.
	for i := range out {
		out[i] *= 1 + 1e-9
		if out[i] == 0 {
			out[i] = m.prm.Beta * sc.noise[i] * (1 + 1e-9)
		}
	}
	m.scratch.Put(sc)
	return out, true
}

// fillSuccesses resolves one counted slot into out: build the ascending
// set of singly-requested links, shed the most-interfered link until the
// residual set admits a joint power vector, and mark the survivors.
func (m *PowerControl) fillSuccesses(sc *pcScratch, tx []int, out []bool) {
	sort.Ints(sc.rs.Uniq)
	set := sc.set[:0]
	for _, e := range sc.rs.Uniq {
		if sc.rs.Counts[e] == 1 {
			set = append(set, e)
		}
	}
	if len(set) > 0 {
		// Shedding consults the analysis matrix; make sure it exists
		// before the hot loop (lazy under the indexed backing).
		m.ensureWeights()
	}
	for len(set) > 0 {
		if m.solveInto(sc, set) {
			break
		}
		set = m.shedWorst(sc, set)
	}
	for _, e := range set {
		sc.served[e] = true
	}
	for i, e := range tx {
		out[i] = sc.rs.Counts[e] == 1 && sc.served[e]
	}
	for _, e := range set {
		sc.served[e] = false
	}
}

// Successes implements interference.Model. Duplicate attempts on a link
// fail; among the remaining links the model solves for a joint power
// vector, shedding the most-interfered link until the residual set is
// feasible. Shed links fail, the rest succeed.
func (m *PowerControl) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	sc := m.scratch.Get().(*pcScratch)
	sc.rs.Count(tx)
	m.fillSuccesses(sc, tx, out)
	sc.rs.End(tx)
	m.scratch.Put(sc)
	return out
}

// NewResolver implements interference.SlotResolver: identical slot
// semantics to Successes — the feasibility computation is deterministic
// — with every buffer reused across slots, so steady-state resolution
// performs no allocations. Large solver systems shard across the
// intra-slot worker pool per Options.Parallelism (default GOMAXPROCS);
// results are bit-identical at every worker count.
func (m *PowerControl) NewResolver() func(tx []int) []bool {
	return m.NewResolverN(effectiveWorkers(m.opts.Parallelism))
}

// NewResolverN implements interference.ParallelResolver: a resolver
// pinned to an explicit intra-slot worker count (1 = strictly serial).
func (m *PowerControl) NewResolverN(workers int) func(tx []int) []bool {
	sc := m.scratch.New().(*pcScratch)
	if workers < 1 {
		workers = 1
	}
	sc.workers = workers
	return func(tx []int) []bool {
		out := sc.rs.Begin(tx)
		m.fillSuccesses(sc, tx, out)
		sc.rs.End(tx)
		return out
	}
}

// ResolveStats implements interference.ResolveStatsProvider. The
// power-control model has no spatial slot grid, so only the worker
// count is reported.
func (m *PowerControl) ResolveStats() interference.ResolveStats {
	return interference.ResolveStats{Workers: effectiveWorkers(m.opts.Parallelism)}
}

// shedWorst removes the link that suffers the largest summed weight from
// the rest of the set — the one the analysis matrix identifies as most
// interfered. The removal is in place (order-preserving), so no
// allocation occurs. The per-candidate sums shard across workers (each
// candidate's sum is accumulated wholly by one claimant, in set order);
// the first-maximum argmax scan stays serial, so the shed choice is
// bit-identical at every worker count.
func (m *PowerControl) shedWorst(sc *pcScratch, set []int) []int {
	k := len(set)
	sums := growFloats(&sc.shedSum, k)
	sc.curSet = set
	if sc.workers > 1 && k >= parallelMinRows {
		sc.mode = pcModeShed
		runParallel(&sc.job, sc, k, sc.workers)
	} else {
		m.shedSums(sc, 0, k)
	}
	worst, worstVal := 0, -1.0
	for i, sum := range sums {
		if sum > worstVal {
			worst, worstVal = i, sum
		}
	}
	copy(set[worst:], set[worst+1:])
	return set[:len(set)-1]
}

// shedSums fills the symmetrized interference sums for candidates
// [lo, hi).
func (m *PowerControl) shedSums(sc *pcScratch, lo, hi int) {
	set := sc.curSet
	for i := lo; i < hi; i++ {
		e := set[i]
		sum := 0.0
		for _, e2 := range set {
			if e2 != e {
				// Use the symmetrized coupling so long links can be shed too.
				sum += math.Max(m.weightAt(e, e2), m.weightAt(e2, e))
			}
		}
		sc.shedSum[i] = sum
	}
}
