package sinr

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"dynsched/internal/netgraph"
)

// lowerParallelThresholds drops the parallel fan-out thresholds so the
// concurrent paths engage on test-sized inputs, restoring them on
// cleanup.
func lowerParallelThresholds(t *testing.T) {
	t.Helper()
	minTx, minRows, minIter := parallelMinTx, parallelMinRows, parallelMinIterRows
	parallelMinTx, parallelMinRows, parallelMinIterRows = 8, 8, 8
	t.Cleanup(func() {
		parallelMinTx, parallelMinRows, parallelMinIterRows = minTx, minRows, minIter
	})
}

// resolverWorkerCounts is the worker-count sweep every parallel
// bit-identity test runs: serial, small, typical, and whatever this
// machine would auto-select.
func resolverWorkerCounts() []int {
	counts := []int{1, 2, 4}
	if g := runtime.GOMAXPROCS(0); g != 1 && g != 2 && g != 4 {
		counts = append(counts, g)
	}
	return counts
}

// randomTxSlots draws count transmission sets of varying size over n
// links, reusing the generator so consecutive sets overlap the way a
// protocol's frames do.
func randomTxSlots(rng *rand.Rand, n, count int) [][]int {
	slots := make([][]int, count)
	for i := range slots {
		k := 1 + rng.Intn(n)
		slots[i] = append([]int(nil), rng.Perm(n)[:k]...)
	}
	return slots
}

// TestFixedPowerParallelBitIdentity: the fixed-power resolver returns
// byte-identical success vectors at every worker count, on the dense
// table, the exact indexed (ε = 0), and the far-floor indexed (ε > 0)
// backings.
func TestFixedPowerParallelBitIdentity(t *testing.T) {
	lowerParallelThresholds(t)
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(211))
	g := netgraph.RandomPairs(rng, 96, 120, 1, 4)
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	prm.Noise = MaxNoise(g, prm, powers, 0.5)
	for _, bc := range []struct {
		name string
		opt  Options
	}{
		{"table", Options{}},
		{"indexed-exact", indexedOpts(0)},
		{"indexed-floor", indexedOpts(0.05)},
	} {
		t.Run(bc.name, func(t *testing.T) {
			m, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, bc.opt)
			if err != nil {
				t.Fatal(err)
			}
			slots := randomTxSlots(rand.New(rand.NewSource(212)), g.NumLinks(), 60)
			serial := m.NewResolverN(1)
			want := make([][]bool, len(slots))
			for i, tx := range slots {
				want[i] = append([]bool(nil), serial(tx)...)
			}
			for _, workers := range resolverWorkerCounts() {
				resolve := m.NewResolverN(workers)
				for i, tx := range slots {
					got := resolve(tx)
					for j := range got {
						if got[j] != want[i][j] {
							t.Fatalf("workers=%d slot %d link %d: got %v, serial %v",
								workers, i, tx[j], got[j], want[i][j])
						}
					}
				}
			}
		})
	}
}

// TestPowerControlParallelBitIdentity: the power-control resolver —
// gain rows, fixed-point iterations, and shedding — returns identical
// success vectors at every worker count.
func TestPowerControlParallelBitIdentity(t *testing.T) {
	lowerParallelThresholds(t)
	rng := rand.New(rand.NewSource(213))
	g := netgraph.RandomPairs(rng, 64, 90, 1, 4)
	m, err := NewPowerControlOpts(g, DefaultParams(), indexedOpts(0))
	if err != nil {
		t.Fatal(err)
	}
	slots := randomTxSlots(rand.New(rand.NewSource(214)), g.NumLinks(), 40)
	serial := m.NewResolverN(1)
	want := make([][]bool, len(slots))
	for i, tx := range slots {
		want[i] = append([]bool(nil), serial(tx)...)
	}
	for _, workers := range resolverWorkerCounts() {
		resolve := m.NewResolverN(workers)
		for i, tx := range slots {
			got := resolve(tx)
			for j := range got {
				if got[j] != want[i][j] {
					t.Fatalf("workers=%d slot %d link %d: got %v, serial %v",
						workers, i, tx[j], got[j], want[i][j])
				}
			}
		}
	}
}

// TestGridDeltaPathMatchesRebuild drives one resolver through slot
// sequences with small joined/left deltas — the shape the incremental
// grid update targets — and checks both that the delta path actually
// engaged and that its results match a fresh model resolving the same
// slots with rebuilt grids.
func TestGridDeltaPathMatchesRebuild(t *testing.T) {
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(215))
	g := netgraph.RandomPairs(rng, 256, 200, 1, 4)
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	prm.Noise = MaxNoise(g, prm, powers, 0.5)
	m, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, indexedOpts(0.05))
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, indexedOpts(0.05))
	if err != nil {
		t.Fatal(err)
	}

	// Evolve one base selection by a handful of joins/leaves per slot.
	n := g.NumLinks()
	members := map[int]bool{}
	for _, e := range rng.Perm(n)[:128] {
		members[e] = true
	}
	resolve := m.NewResolverN(1)
	for slot := 0; slot < 50; slot++ {
		for i := 0; i < 6; i++ {
			e := rng.Intn(n)
			members[e] = !members[e]
		}
		tx := make([]int, 0, len(members))
		for e, in := range members {
			if in {
				tx = append(tx, e)
			}
		}
		got := resolve(tx)
		want := fresh.NewResolverN(1)(tx) // fresh resolver: rebuilt grid every slot
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("slot %d link %d: delta path %v, rebuild %v", slot, tx[j], got[j], want[j])
			}
		}
	}
	st := m.ResolveStats()
	if st.GridDeltaUpdates == 0 {
		t.Fatalf("delta path never engaged: stats %+v", st)
	}
	if fst := fresh.ResolveStats(); fst.GridDeltaUpdates != 0 {
		t.Fatalf("fresh-resolver control unexpectedly delta-updated: stats %+v", fst)
	}
}

// TestParallelPoolStress hammers the shared worker pool from many
// resolvers on many goroutines at once. Its job is to give the race
// detector something to chew on (go test -race) and to verify results
// stay correct under contention for parked workers.
func TestParallelPoolStress(t *testing.T) {
	lowerParallelThresholds(t)
	prm := DefaultParams()
	rng := rand.New(rand.NewSource(216))
	g := netgraph.RandomPairs(rng, 64, 90, 1, 4)
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	prm.Noise = MaxNoise(g, prm, powers, 0.5)
	m, err := NewFixedPowerOpts(g, prm, powers, WeightMonotone, indexedOpts(0.05))
	if err != nil {
		t.Fatal(err)
	}
	pc, err := NewPowerControlOpts(g, DefaultParams(), indexedOpts(0))
	if err != nil {
		t.Fatal(err)
	}

	slots := randomTxSlots(rand.New(rand.NewSource(217)), g.NumLinks(), 20)
	wantFP := make([][]bool, len(slots))
	wantPC := make([][]bool, len(slots))
	fpSerial, pcSerial := m.NewResolverN(1), pc.NewResolverN(1)
	for i, tx := range slots {
		wantFP[i] = append([]bool(nil), fpSerial(tx)...)
		wantPC[i] = append([]bool(nil), pcSerial(tx)...)
	}

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for w := 0; w < goroutines; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// Mixed worker counts so sends race for parked workers.
			fp := m.NewResolverN(2 + id%3)
			pcr := pc.NewResolverN(2 + (id+1)%3)
			for round := 0; round < 8; round++ {
				for i, tx := range slots {
					for j, ok := range fp(tx) {
						if ok != wantFP[i][j] {
							errs <- "fixed-power result diverged under pool contention"
							return
						}
					}
					for j, ok := range pcr(tx) {
						if ok != wantPC[i][j] {
							errs <- "power-control result diverged under pool contention"
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
